package magg

import (
	"repro/internal/epochstore"
	"repro/internal/hfta"
	"repro/internal/lfta"
)

// Lower-level runtime building blocks, for callers that want to drive the
// two levels directly instead of through Engine: custom sinks, multiple
// LFTA shards (Gigascope's one-LFTA-per-interface deployment), or
// bounded-capacity simulation.

// LFTA executes one configuration at the low level: raw-table probes,
// cascading evictions, end-of-epoch flushes, exact operation counts.
type LFTA = lfta.Runtime

// Eviction is an entry transferred from the LFTA to the HFTA.
type Eviction = lfta.Eviction

// Sink receives evictions, typically an HFTA aggregator's Sink.
type Sink = lfta.Sink

// BatchSink receives batches of evictions from a runtime's eviction
// buffer (LFTA.SetBatchSink); typically Aggregator.ConsumeBatch. Batches
// alias runtime-owned memory valid only during the call.
type BatchSink = lfta.BatchSink

// AggSpec describes one aggregate slot (operation + input attribute;
// input -1 is count(*)).
type AggSpec = lfta.AggSpec

// CountStar is the count(*) aggregate list.
var CountStar = lfta.CountStar

// NewLFTA builds a low-level runtime for a configuration and allocation.
func NewLFTA(cfg *Config, alloc Alloc, aggs []AggSpec, seed uint64, sink Sink) (*LFTA, error) {
	return lfta.New(cfg, alloc, aggs, seed, sink)
}

// ShardedLFTA runs several independent LFTA instances over one stream,
// partitioned by group hash; see its RunParallel for multi-core execution.
type ShardedLFTA = lfta.Sharded

// NewShardedLFTA builds n shards each executing cfg. For the fast path,
// install per-shard eviction buffers with SetBatchSink
// (Aggregator.ConsumeBatch is a concurrency-safe batch sink); a plain
// concurrency-safe Sink also works with RunParallel.
func NewShardedLFTA(cfg *Config, alloc Alloc, aggs []AggSpec, seed uint64, sink Sink, n int) (*ShardedLFTA, error) {
	return lfta.NewSharded(cfg, alloc, aggs, seed, sink, n)
}

// Aggregator is the HFTA: it merges evicted partials into exact per-epoch
// query answers.
type Aggregator = hfta.Aggregator

// NewAggregator builds an HFTA for the query relations and aggregates.
func NewAggregator(queries []Relation, aggs []AggSpec) (*Aggregator, error) {
	return hfta.New(queries, aggs)
}

// Reference computes exact query answers directly over records — the
// oracle the two-level pipeline is verified against.
func Reference(recs []Record, queries []Relation, aggs []AggSpec, epochLen uint32) []Row {
	return hfta.Reference(recs, queries, aggs, epochLen)
}

// RowsEqual reports whether two row sets are identical.
func RowsEqual(a, b []Row) bool { return hfta.Equal(a, b) }

// EpochStoreFS is the filesystem interface all EpochStore I/O goes
// through; substitute one (e.g. NewEpochStoreFaultFS) to test durability
// under injected failures.
type EpochStoreFS = epochstore.FS

// EpochStoreFaults select the failures a fault-injecting filesystem
// returns: every-Nth write/short-write/fsync/rename/open errors, plus a
// simulated power cut after a byte budget.
type EpochStoreFaults = epochstore.Faults

// NewEpochStoreFaultFS wraps inner (nil for the real filesystem) with
// seeded, deterministic fault injection for crash testing an EpochStore.
func NewEpochStoreFaultFS(inner EpochStoreFS, f EpochStoreFaults) *epochstore.FaultFS {
	return epochstore.NewFaultFS(inner, f)
}
