package magg

import (
	"testing"
)

func TestFacadeLFTAPipeline(t *testing.T) {
	recs, queries, groups := facadeWorkload(t)
	plan, err := Plan(queries, groups, 20000, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregator(queries, CountStar)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewLFTA(plan.Config, plan.Alloc, CountStar, 3, agg.Sink())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(NewSliceSource(recs), 10); err != nil {
		t.Fatal(err)
	}
	want := Reference(recs, queries, CountStar, 10)
	if !RowsEqual(agg.AllRows(), want) {
		t.Error("facade pipeline differs from reference")
	}
}

func TestFacadeShardedParallel(t *testing.T) {
	recs, queries, groups := facadeWorkload(t)
	plan, err := Plan(queries, groups, 20000, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregator(queries, CountStar)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShardedLFTA(plan.Config, plan.Alloc, CountStar, 3, agg.ConcurrentSink(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := s.RunParallel(NewSliceSource(recs), 10)
	if err != nil {
		t.Fatal(err)
	}
	if ops.Records != uint64(len(recs)) {
		t.Errorf("records = %d", ops.Records)
	}
	if !RowsEqual(agg.AllRows(), Reference(recs, queries, CountStar, 10)) {
		t.Error("sharded facade pipeline differs from reference")
	}
}
