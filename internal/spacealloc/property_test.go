package spacealloc

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/stream"
)

// randomWorkload draws a random query set over 4 attributes, a random
// phantom subset of its feeding graph, and consistent group counts
// measured from a random universe.
func randomWorkload(t *testing.T, rng *rand.Rand) (*feedgraph.Config, feedgraph.GroupCounts) {
	t.Helper()
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 500+rng.Intn(2500), uint32(20+rng.Intn(200)))
	if err != nil {
		t.Fatal(err)
	}
	// 2-4 distinct random non-empty query relations.
	nq := 2 + rng.Intn(3)
	seen := map[attr.Set]bool{}
	var queries []attr.Set
	for len(queries) < nq {
		q := attr.Set(rng.Intn(15) + 1) // non-empty subset of ABCD
		if !seen[q] {
			seen[q] = true
			queries = append(queries, q)
		}
	}
	g, err := feedgraph.New(queries)
	if err != nil {
		t.Fatal(err)
	}
	var phantoms []attr.Set
	for _, ph := range g.Phantoms {
		if rng.Intn(2) == 0 {
			phantoms = append(phantoms, ph)
		}
	}
	cfg, err := feedgraph.NewConfig(queries, phantoms)
	if err != nil {
		t.Fatal(err)
	}
	groups := feedgraph.GroupCounts{}
	for _, r := range cfg.Rels {
		groups[r] = float64(u.GroupCount(r))
	}
	return cfg, groups
}

// TestESLowerBoundsHeuristicsProperty: on random configurations and group
// counts, no heuristic beats the fine-grained exhaustive optimum, and
// every allocation respects the budget and per-table minimums.
func TestESLowerBoundsHeuristicsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow in -short mode")
	}
	rng := rand.New(rand.NewSource(2024))
	p := cost.DefaultParams()
	for trial := 0; trial < 40; trial++ {
		cfg, groups := randomWorkload(t, rng)
		m := 10000 + rng.Intn(90000)
		es, err := Exhaustive(cfg, groups, m, p, DefaultGranularity)
		if err != nil {
			continue // budget may be infeasible for this config; fine
		}
		cES, err := cost.PerRecord(cfg, groups, es, p)
		if err != nil {
			t.Fatal(err)
		}
		if used := es.SpaceUnits(); used > m+feedgraph.EntrySize(attr.MustParseSet("ABCD")) {
			t.Errorf("trial %d %q: ES uses %d of %d units", trial, cfg, used, m)
		}
		for _, s := range []Scheme{SL, SR, PL, PR} {
			alloc, err := Allocate(s, cfg, groups, m, p)
			if err != nil {
				t.Errorf("trial %d %q/%s: %v", trial, cfg, s, err)
				continue
			}
			if used := alloc.SpaceUnits(); used > m {
				t.Errorf("trial %d %q/%s: budget exceeded (%d > %d)", trial, cfg, s, used, m)
			}
			for _, r := range cfg.Rels {
				if alloc[r] < 1 {
					t.Errorf("trial %d %q/%s: %v got no bucket", trial, cfg, s, r)
				}
			}
			c, err := cost.PerRecord(cfg, groups, alloc, p)
			if err != nil {
				t.Fatal(err)
			}
			// 1% slack: ES works at finite granularity.
			if c < cES*0.99 {
				t.Errorf("trial %d %q: %s cost %v beats ES %v", trial, cfg, s, c, cES)
			}
		}
	}
}

// TestShrinkShiftProperty: on random workloads, both repairs meet any
// reachable constraint and never return a more expensive E_u than asked.
func TestShrinkShiftProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow in -short mode")
	}
	rng := rand.New(rand.NewSource(77))
	p := cost.DefaultParams()
	for trial := 0; trial < 25; trial++ {
		cfg, groups := randomWorkload(t, rng)
		m := 20000 + rng.Intn(60000)
		alloc, err := Allocate(SL, cfg, groups, m, p)
		if err != nil {
			continue
		}
		eu, err := cost.EndOfEpoch(cfg, groups, alloc, p)
		if err != nil {
			t.Fatal(err)
		}
		frac := 0.75 + rng.Float64()*0.2
		ep := eu * frac
		if out, err := Shrink(cfg, groups, alloc, p, ep); err == nil {
			got, _ := cost.EndOfEpoch(cfg, groups, out, p)
			if got > ep*1.0001 {
				t.Errorf("trial %d %q: shrink E_u %v > %v", trial, cfg, got, ep)
			}
		}
		if out, err := Shift(cfg, groups, alloc, p, ep); err == nil {
			got, _ := cost.EndOfEpoch(cfg, groups, out, p)
			if got > ep*1.0001 {
				t.Errorf("trial %d %q: shift E_u %v > %v", trial, cfg, got, ep)
			}
		}
	}
}
