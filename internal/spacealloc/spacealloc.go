// Package spacealloc implements the paper's space-allocation analysis and
// heuristics (Section 5): given a configuration of relations to
// instantiate in the LFTA and a memory budget M (in 4-byte units), decide
// how many buckets each hash table gets.
//
// Analytic results (Section 5.1, generalized to variable entry sizes h_R
// and flow lengths l_R per Section 5.3):
//
//   - no phantoms: optimal buckets are b_i ∝ √(g_i/(h_i·l_i)), i.e. space
//     proportional to √(g_i·h_i/l_i);
//   - one phantom feeding all queries: the closed-form solution of the
//     quadratic Equation 19 (Equations 20/21); the phantom always receives
//     more than half the space.
//
// Heuristics for deeper ("unsolvable") configurations (Section 5.2):
// SL and SR collapse phantom subtrees into supernodes bottom-up, allocate
// across the top level optimally, and recursively decompose each
// supernode with the exact two-level solution; PL and PR allocate
// proportionally to g (equal collision rates) and √(g·h) respectively.
// ES finds the optimum at a fixed granularity: the paper enumerates
// allocations at 1% of M; because subtree costs factor linearly in the
// tuple rate fed to them, the same optimum is computed here exactly by a
// bottom-up min-plus dynamic program (see DESIGN.md §6), with a
// brute-force enumerator retained in tests as a cross-check oracle.
package spacealloc

import (
	"fmt"
	"math"

	"repro/internal/attr"
	"repro/internal/collision"
	"repro/internal/cost"
	"repro/internal/feedgraph"
)

// Scheme identifies a space-allocation strategy.
type Scheme string

// The paper's allocation schemes.
const (
	SL Scheme = "SL" // supernode, linear group combination
	SR Scheme = "SR" // supernode, square-root combination
	PL Scheme = "PL" // proportional to g (equal collision rates)
	PR Scheme = "PR" // proportional to √(g·h)
	ES Scheme = "ES" // exhaustive (1% granularity optimum, via DP)
)

// Allocate dispatches on the scheme.
func Allocate(s Scheme, cfg *feedgraph.Config, groups feedgraph.GroupCounts, m int, p cost.Params) (cost.Alloc, error) {
	switch s {
	case SL:
		return Supernode(cfg, groups, m, p, false)
	case SR:
		return Supernode(cfg, groups, m, p, true)
	case PL:
		return Proportional(cfg, groups, m, p, false)
	case PR:
		return Proportional(cfg, groups, m, p, true)
	case ES:
		return Exhaustive(cfg, groups, m, p, DefaultGranularity)
	default:
		return nil, fmt.Errorf("spacealloc: unknown scheme %q", s)
	}
}

// weights returns, per relation, the clustered-group weight G_R = g_R/l_R
// used throughout the analysis (x_R ≈ μ·G_R/b_R). Flow lengths apply to
// raw relations only, matching cost.Rates.
func weights(cfg *feedgraph.Config, groups feedgraph.GroupCounts, p cost.Params) (map[attr.Set]float64, error) {
	out := make(map[attr.Set]float64, len(cfg.Rels))
	for _, r := range cfg.Rels {
		g, err := groups.Get(r)
		if err != nil {
			return nil, err
		}
		if g <= 0 {
			return nil, fmt.Errorf("spacealloc: group count for %v is %v", r, g)
		}
		l := 1.0
		if p.FlowLen != nil && cfg.IsRaw(r) {
			if fl := p.FlowLen(r); fl > 1 {
				l = fl
			}
		}
		out[r] = g / l
	}
	return out, nil
}

func checkBudget(cfg *feedgraph.Config, m int) error {
	min := 0
	for _, r := range cfg.Rels {
		min += feedgraph.EntrySize(r)
	}
	if m < min {
		return fmt.Errorf("spacealloc: budget %d units cannot give every one of %d relations a bucket (need ≥ %d)", m, len(cfg.Rels), min)
	}
	return nil
}

// roundAlloc converts target space shares (in units, summing to ≤ m) into
// a bucket allocation guaranteeing every relation at least one bucket and
// never exceeding m units in total. Leftover units from rounding are
// handed to the largest-share relations first.
func roundAlloc(cfg *feedgraph.Config, shares map[attr.Set]float64, m int) cost.Alloc {
	alloc := make(cost.Alloc, len(cfg.Rels))
	used := 0
	for _, r := range cfg.Rels {
		h := feedgraph.EntrySize(r)
		b := int(shares[r]) / h
		if b < 1 {
			b = 1
		}
		alloc[r] = b
		used += b * h
	}
	// Spend rounding slack where the (fractional) share was cut the most.
	for used < m {
		var best attr.Set
		bestLoss := -math.MaxFloat64
		for _, r := range cfg.Rels {
			h := feedgraph.EntrySize(r)
			if used+h > m {
				continue
			}
			loss := shares[r] - float64(alloc[r]*h)
			if loss > bestLoss {
				bestLoss = loss
				best = r
			}
		}
		if best == 0 {
			break
		}
		alloc[best]++
		used += feedgraph.EntrySize(best)
	}
	return alloc
}

// Proportional implements PL (sqrt = false): buckets proportional to G_R,
// equalizing modeled collision rates; and PR (sqrt = true): space
// proportional to √(G_R·h_R), the flat-configuration optimum applied
// indiscriminately to every relation.
func Proportional(cfg *feedgraph.Config, groups feedgraph.GroupCounts, m int, p cost.Params, sqrt bool) (cost.Alloc, error) {
	if err := checkBudget(cfg, m); err != nil {
		return nil, err
	}
	w, err := weights(cfg, groups, p)
	if err != nil {
		return nil, err
	}
	shares := make(map[attr.Set]float64, len(cfg.Rels))
	total := 0.0
	for _, r := range cfg.Rels {
		h := float64(feedgraph.EntrySize(r))
		var s float64
		if sqrt {
			s = math.Sqrt(w[r] * h)
		} else {
			s = w[r] * h // buckets ∝ G ⇒ space ∝ G·h
		}
		shares[r] = s
		total += s
	}
	for r := range shares {
		shares[r] = shares[r] / total * float64(m)
	}
	return roundAlloc(cfg, shares, m), nil
}

// FlatOptimal solves the no-phantom case optimally: space shares
// proportional to √(G_i·h_i). It requires a configuration of depth 1.
func FlatOptimal(cfg *feedgraph.Config, groups feedgraph.GroupCounts, m int, p cost.Params) (cost.Alloc, error) {
	if cfg.Depth() != 1 {
		return nil, fmt.Errorf("spacealloc: FlatOptimal needs a flat configuration, got depth %d", cfg.Depth())
	}
	return Proportional(cfg, groups, m, p, true)
}

// twoLevelShares solves the one-phantom-feeding-all case analytically
// (Equations 19-21 generalized): given the phantom's weight G0 and entry
// size h0, children weights G_i and sizes h_i, and budget m, it returns
// the space (in units) for the phantom and for each child.
//
// Derivation (x = μG/b): with b_i = β·√(G_i/h_i), the stationarity
// conditions reduce to f·c1·β² + 2·c2'·S·β − c2'·m = 0 where
// S = Σ√(G_i·h_i) and c2' = μ·c2·(child cost coefficient); the positive
// root gives β, children get space h_i·b_i, and the phantom keeps the
// rest — always more than half (the paper's observation).
//
// childCost generalizes c2: for a child that is itself a supernode, the
// coefficient is the derivative scale of its internal cost; for plain
// query children it is exactly c2.
func twoLevelShares(h0 float64, gs, hs, childCost []float64, m float64, p cost.Params) (phantomSpace float64, childSpace []float64) {
	f := float64(len(gs))
	s := 0.0
	for i := range gs {
		s += math.Sqrt(gs[i] * hs[i] * childCost[i] / p.C2)
	}
	mu := collision.Mu
	// f·c1·β² + 2·μ·c2·S·β − μ·c2·M = 0  (Equation 19 rearranged)
	a := f * p.C1
	b := 2 * mu * p.C2 * s
	c := -mu * p.C2 * m
	beta := (-b + math.Sqrt(b*b-4*a*c)) / (2 * a)
	childSpace = make([]float64, len(gs))
	used := 0.0
	for i := range gs {
		childSpace[i] = beta * math.Sqrt(gs[i]*hs[i]*childCost[i]/p.C2)
		used += childSpace[i]
	}
	phantomSpace = m - used
	if phantomSpace < h0 {
		// Degenerate budget: keep one bucket for the phantom and scale
		// children into the remainder.
		scale := (m - h0) / used
		if scale < 0 {
			scale = 0
		}
		for i := range childSpace {
			childSpace[i] *= scale
		}
		phantomSpace = h0
	}
	return phantomSpace, childSpace
}

// TwoLevelOptimal solves configurations with exactly one phantom feeding
// all queries (Section 5.1) under the linear rate approximation.
func TwoLevelOptimal(cfg *feedgraph.Config, groups feedgraph.GroupCounts, m int, p cost.Params) (cost.Alloc, error) {
	if err := checkBudget(cfg, m); err != nil {
		return nil, err
	}
	raws := cfg.Raws()
	if cfg.Depth() != 2 || len(raws) != 1 {
		return nil, fmt.Errorf("spacealloc: TwoLevelOptimal needs one phantom feeding all queries, got %q", cfg)
	}
	w, err := weights(cfg, groups, p)
	if err != nil {
		return nil, err
	}
	root := raws[0]
	kids := cfg.Children(root)
	gs := make([]float64, len(kids))
	hs := make([]float64, len(kids))
	cc := make([]float64, len(kids))
	for i, k := range kids {
		gs[i] = w[k]
		hs[i] = float64(feedgraph.EntrySize(k))
		cc[i] = p.C2
	}
	ps, cs := twoLevelShares(float64(feedgraph.EntrySize(root)), gs, hs, cc, float64(m), p)
	shares := map[attr.Set]float64{root: ps}
	for i, k := range kids {
		shares[k] = cs[i]
	}
	return roundAlloc(cfg, shares, m), nil
}

// Supernode implements SL (sqrtCombine = false) and SR (true), the
// paper's analysis-guided heuristics: bottom-up, each phantom and its
// children collapse into a supernode whose group mass is the linear sum
// (SL) or square-root sum (SR) of its members'; the resulting flat
// configuration is allocated optimally (∝ √(G·h)); then every supernode's
// space is split by the exact two-level solution, recursively.
func Supernode(cfg *feedgraph.Config, groups feedgraph.GroupCounts, m int, p cost.Params, sqrtCombine bool) (cost.Alloc, error) {
	if err := checkBudget(cfg, m); err != nil {
		return nil, err
	}
	w, err := weights(cfg, groups, p)
	if err != nil {
		return nil, err
	}

	// Effective (G·h) mass of each subtree, combined per SL or SR.
	var mass func(r attr.Set) float64 // returns combined G·h of subtree
	mass = func(r attr.Set) float64 {
		own := w[r] * float64(feedgraph.EntrySize(r))
		kids := cfg.Children(r)
		if len(kids) == 0 {
			return own
		}
		if sqrtCombine {
			s := math.Sqrt(own)
			for _, k := range kids {
				s += math.Sqrt(mass(k))
			}
			return s * s
		}
		s := own
		for _, k := range kids {
			s += mass(k)
		}
		return s
	}

	// Top level: optimal flat allocation across raw subtrees ∝ √(G·h).
	raws := cfg.Raws()
	total := 0.0
	rootShare := make(map[attr.Set]float64, len(raws))
	for _, r := range raws {
		s := math.Sqrt(mass(r))
		rootShare[r] = s
		total += s
	}
	shares := make(map[attr.Set]float64, len(cfg.Rels))
	var decompose func(r attr.Set, space float64)
	decompose = func(r attr.Set, space float64) {
		kids := cfg.Children(r)
		if len(kids) == 0 {
			shares[r] = space
			return
		}
		gs := make([]float64, len(kids))
		hs := make([]float64, len(kids))
		cc := make([]float64, len(kids))
		for i, k := range kids {
			// A child subtree behaves like a pseudo-query whose g·h is
			// its combined mass; entry size folds into the mass, so pass
			// h = 1 and G = mass.
			gs[i] = mass(k)
			hs[i] = 1
			cc[i] = p.C2
		}
		ps, cs := twoLevelShares(float64(feedgraph.EntrySize(r)), gs, hs, cc, space, p)
		shares[r] = ps
		for i, k := range kids {
			decompose(k, cs[i])
		}
	}
	for _, r := range raws {
		decompose(r, rootShare[r]/total*float64(m))
	}
	return roundAlloc(cfg, shares, m), nil
}

// DefaultGranularity is the paper's ES step: 1% of M.
const DefaultGranularity = 100

// Exhaustive computes the minimum-cost allocation at a granularity of
// m/steps units via the bottom-up min-plus dynamic program. It optimizes
// the same objective as cost.PerRecord with the model rate of Params.
func Exhaustive(cfg *feedgraph.Config, groups feedgraph.GroupCounts, m int, p cost.Params, steps int) (cost.Alloc, error) {
	if err := checkBudget(cfg, m); err != nil {
		return nil, err
	}
	if steps < 2 {
		return nil, fmt.Errorf("spacealloc: need at least 2 steps, got %d", steps)
	}
	w, err := weights(cfg, groups, p) // G_R = g_R/l_R
	if err != nil {
		return nil, err
	}
	rate := func(r attr.Set, buckets int) float64 {
		// w already folds the raw-only flow lengths in: l_R = g_R/w_R.
		x := collision.Rate(groups[r], float64(buckets))
		if p.Rate != nil {
			x = p.Rate(groups[r], float64(buckets))
		}
		return collision.Clustered(x, groups[r]/w[r])
	}
	unit := float64(m) / float64(steps)

	const inf = math.MaxFloat64 / 4

	// f[r][t] = min cost per tuple fed into r's subtree using t units of
	// granularity; choice[r][t] = units kept for r's own table.
	f := make(map[attr.Set][]float64, len(cfg.Rels))
	choice := make(map[attr.Set][]int, len(cfg.Rels))
	childSplit := make(map[attr.Set][][]int, len(cfg.Rels)) // per t-for-children: units per child

	var solve func(r attr.Set)
	solve = func(r attr.Set) {
		kids := cfg.Children(r)
		for _, k := range kids {
			solve(k)
		}
		h := feedgraph.EntrySize(r)
		fr := make([]float64, steps+1)
		ch := make([]int, steps+1)

		// Combined children cost: min-plus convolution, tracking splits.
		var gsum []float64
		var splits [][]int
		if len(kids) > 0 {
			gsum = make([]float64, steps+1)
			splits = make([][]int, steps+1)
			for t := 0; t <= steps; t++ {
				splits[t] = make([]int, len(kids))
			}
			first := f[kids[0]]
			for t := 0; t <= steps; t++ {
				gsum[t] = first[t]
				splits[t][0] = t
			}
			for ki := 1; ki < len(kids); ki++ {
				fk := f[kids[ki]]
				next := make([]float64, steps+1)
				nsplit := make([][]int, steps+1)
				for t := 0; t <= steps; t++ {
					next[t] = inf
					for tk := 0; tk <= t; tk++ {
						if gsum[t-tk] >= inf || fk[tk] >= inf {
							continue
						}
						if v := gsum[t-tk] + fk[tk]; v < next[t] {
							next[t] = v
							ns := append([]int(nil), splits[t-tk][:ki]...)
							ns = append(ns, tk)
							for len(ns) < len(kids) {
								ns = append(ns, 0)
							}
							nsplit[t] = ns
						}
					}
					if nsplit[t] == nil {
						nsplit[t] = make([]int, len(kids))
					}
				}
				gsum, splits = next, nsplit
			}
		}

		for t := 0; t <= steps; t++ {
			fr[t] = inf
			minOwn := 1
			for own := minOwn; own <= t; own++ {
				buckets := int(float64(own) * unit / float64(h))
				if buckets < 1 {
					continue
				}
				x := rate(r, buckets)
				v := p.C1
				if cfg.IsQuery(r) {
					v += x * p.C2
				}
				if len(kids) > 0 {
					rest := t - own
					if gsum[rest] >= inf {
						continue
					}
					v += x * gsum[rest]
				}
				if v < fr[t] {
					fr[t] = v
					ch[t] = own
				}
			}
		}
		f[r] = fr
		choice[r] = ch
		if len(kids) > 0 {
			childSplit[r] = splits
		}
	}

	raws := cfg.Raws()
	for _, r := range raws {
		solve(r)
	}

	// Top level: min-plus convolution across raw subtrees.
	type topState struct {
		cost  float64
		split []int
	}
	cur := topState{cost: 0, split: nil}
	top := make([]topState, steps+1)
	for t := range top {
		top[t] = topState{cost: inf}
	}
	top[0] = cur
	for ri, r := range raws {
		next := make([]topState, steps+1)
		for t := range next {
			next[t] = topState{cost: inf}
		}
		fr := f[r]
		for t := 0; t <= steps; t++ {
			if top[t].cost >= inf {
				continue
			}
			for tr := 0; t+tr <= steps; tr++ {
				if fr[tr] >= inf {
					continue
				}
				v := top[t].cost + fr[tr]
				if v < next[t+tr].cost {
					ns := append([]int(nil), top[t].split...)
					for len(ns) < ri {
						ns = append(ns, 0)
					}
					ns = append(ns, tr)
					next[t+tr] = topState{cost: v, split: ns}
				}
			}
		}
		top = next
	}
	best := top[steps]
	if best.cost >= inf {
		return nil, fmt.Errorf("spacealloc: no feasible ES allocation with %d steps for %q", steps, cfg)
	}

	// Recover the allocation.
	alloc := make(cost.Alloc, len(cfg.Rels))
	var assign func(r attr.Set, t int)
	assign = func(r attr.Set, t int) {
		own := choice[r][t]
		h := feedgraph.EntrySize(r)
		buckets := int(float64(own) * unit / float64(h))
		if buckets < 1 {
			buckets = 1
		}
		alloc[r] = buckets
		kids := cfg.Children(r)
		if len(kids) == 0 {
			return
		}
		split := childSplit[r][t-own]
		for i, k := range kids {
			assign(k, split[i])
		}
	}
	for i, r := range raws {
		assign(r, best.split[i])
	}
	return alloc, nil
}

// BruteForce enumerates every allocation of `steps` granularity units to
// the configuration's relations (compositions of steps over |Rels| parts)
// and returns the cheapest. Exponential; retained as the test oracle for
// Exhaustive. It refuses configurations with more than 4 relations or
// more than 60 steps.
func BruteForce(cfg *feedgraph.Config, groups feedgraph.GroupCounts, m int, p cost.Params, steps int) (cost.Alloc, error) {
	if len(cfg.Rels) > 4 {
		return nil, fmt.Errorf("spacealloc: BruteForce limited to 4 relations, got %d", len(cfg.Rels))
	}
	if steps > 60 {
		return nil, fmt.Errorf("spacealloc: BruteForce limited to 60 steps, got %d", steps)
	}
	unit := float64(m) / float64(steps)
	rels := cfg.Rels
	bestCost := math.MaxFloat64
	var bestAlloc cost.Alloc
	var rec func(i, left int, alloc cost.Alloc)
	rec = func(i, left int, alloc cost.Alloc) {
		if i == len(rels)-1 {
			h := feedgraph.EntrySize(rels[i])
			b := int(float64(left) * unit / float64(h))
			if b < 1 {
				return
			}
			alloc[rels[i]] = b
			c, err := cost.PerRecord(cfg, groups, alloc, p)
			if err == nil && c < bestCost {
				bestCost = c
				bestAlloc = alloc.Clone()
			}
			return
		}
		for t := 1; t <= left-(len(rels)-1-i); t++ {
			h := feedgraph.EntrySize(rels[i])
			b := int(float64(t) * unit / float64(h))
			if b < 1 {
				continue
			}
			alloc[rels[i]] = b
			rec(i+1, left-t, alloc)
		}
	}
	rec(0, steps, cost.Alloc{})
	if bestAlloc == nil {
		return nil, fmt.Errorf("spacealloc: no feasible brute-force allocation")
	}
	return bestAlloc, nil
}
