package spacealloc

import (
	"math"
	"testing"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
)

func sets(names ...string) []attr.Set {
	out := make([]attr.Set, len(names))
	for i, n := range names {
		out[i] = attr.MustParseSet(n)
	}
	return out
}

func groupsOf(m map[string]float64) feedgraph.GroupCounts {
	gc := feedgraph.GroupCounts{}
	for k, v := range m {
		gc[attr.MustParseSet(k)] = v
	}
	return gc
}

// paperGroups approximates the real dataset's group counts for the
// relations used across the paper's configurations.
func paperGroups() feedgraph.GroupCounts {
	return groupsOf(map[string]float64{
		"A": 552, "B": 430, "C": 610, "D": 380,
		"AB": 1846, "AC": 1300, "AD": 1100, "BC": 980, "BD": 870, "CD": 1240,
		"ABC": 2117, "ABD": 1900, "ACD": 2000, "BCD": 1700,
		"ABCD": 2837,
	})
}

func perRecord(t *testing.T, cfg *feedgraph.Config, gc feedgraph.GroupCounts, a cost.Alloc, p cost.Params) float64 {
	t.Helper()
	c, err := cost.PerRecord(cfg, gc, a, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFlatOptimalSqrtRule(t *testing.T) {
	// Two queries with equal entry size: space ratio must be √(g1/g2).
	cfg, _ := feedgraph.NewConfig(sets("AB", "CD"), nil)
	gc := groupsOf(map[string]float64{"AB": 400, "CD": 1600})
	p := cost.DefaultParams()
	alloc, err := FlatOptimal(cfg, gc, 30000, p)
	if err != nil {
		t.Fatal(err)
	}
	ab, cd := alloc[attr.MustParseSet("AB")], alloc[attr.MustParseSet("CD")]
	ratio := float64(cd) / float64(ab)
	if math.Abs(ratio-2) > 0.05 { // √(1600/400) = 2
		t.Errorf("bucket ratio = %v; want 2", ratio)
	}
	// Budget is fully used (within one entry of rounding).
	if used := alloc.SpaceUnits(); used > 30000 || used < 30000-3 {
		t.Errorf("allocation uses %d of 30000 units", used)
	}
	// And FlatOptimal refuses deep configurations.
	deep, _ := feedgraph.NewConfig(sets("A", "B"), sets("AB"))
	if _, err := FlatOptimal(deep, paperGroups(), 30000, p); err == nil {
		t.Error("FlatOptimal accepted a 2-level configuration")
	}
}

func TestFlatOptimalBeatsAlternatives(t *testing.T) {
	// Against the model cost, the √(g·h) rule must beat PL and equal-split
	// on a flat configuration with heterogeneous group counts.
	cfg, _ := feedgraph.NewConfig(sets("A", "BC", "D"), nil)
	gc := groupsOf(map[string]float64{"A": 552, "BC": 980, "D": 380})
	p := cost.DefaultParams()
	m := 20000
	opt, err := FlatOptimal(cfg, gc, m, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Proportional(cfg, gc, m, p, false)
	if err != nil {
		t.Fatal(err)
	}
	cOpt, cPL := perRecord(t, cfg, gc, opt, p), perRecord(t, cfg, gc, pl, p)
	if cOpt > cPL*1.01 {
		t.Errorf("optimal %v worse than PL %v", cOpt, cPL)
	}
	// Sanity: equal split also not better.
	eq := cost.Alloc{}
	for _, r := range cfg.Rels {
		eq[r] = m / 3 / feedgraph.EntrySize(r)
	}
	if cEq := perRecord(t, cfg, gc, eq, p); cOpt > cEq*1.01 {
		t.Errorf("optimal %v worse than equal split %v", cOpt, cEq)
	}
}

// TestTwoLevelOptimalAgainstES: the closed-form solution for one phantom
// feeding all queries must be within a couple of percent of the
// fine-grained exhaustive optimum when both are evaluated under the model
// cost. The paper reports ≤ 2% (Section 6.2.1).
func TestTwoLevelOptimalAgainstES(t *testing.T) {
	queries := sets("A", "B", "C")
	cfg, _ := feedgraph.NewConfig(queries, sets("ABC"))
	gc := groupsOf(map[string]float64{"A": 552, "B": 430, "C": 610, "ABC": 2117})
	p := cost.DefaultParams()
	for _, m := range []int{20000, 60000, 100000} {
		analytic, err := TwoLevelOptimal(cfg, gc, m, p)
		if err != nil {
			t.Fatal(err)
		}
		es, err := Exhaustive(cfg, gc, m, p, 200)
		if err != nil {
			t.Fatal(err)
		}
		ca, ce := perRecord(t, cfg, gc, analytic, p), perRecord(t, cfg, gc, es, p)
		if ca > ce*1.03 {
			t.Errorf("M=%d: analytic cost %v vs ES %v (%.1f%% worse)", m, ca, ce, (ca/ce-1)*100)
		}
		// Paper: the phantom always takes more than half the space.
		ph := analytic[attr.MustParseSet("ABC")] * feedgraph.EntrySize(attr.MustParseSet("ABC"))
		if float64(ph) < float64(m)*0.5 {
			t.Errorf("M=%d: phantom got %d units (less than half of %d)", m, ph, m)
		}
	}
	// Rejects non-2-level shapes.
	flat, _ := feedgraph.NewConfig(queries, nil)
	if _, err := TwoLevelOptimal(flat, gc, 20000, p); err == nil {
		t.Error("flat configuration accepted")
	}
}

// TestSupernodeOptimalOnTwoLevel: SL and SR must reproduce the exact
// two-level solution for one phantom feeding all queries (the paper notes
// both are optimal for this case).
func TestSupernodeOptimalOnTwoLevel(t *testing.T) {
	queries := sets("A", "B", "C")
	cfg, _ := feedgraph.NewConfig(queries, sets("ABC"))
	gc := groupsOf(map[string]float64{"A": 552, "B": 430, "C": 610, "ABC": 2117})
	p := cost.DefaultParams()
	m := 40000
	want, err := TwoLevelOptimal(cfg, gc, m, p)
	if err != nil {
		t.Fatal(err)
	}
	cWant := perRecord(t, cfg, gc, want, p)
	for _, sqrt := range []bool{false, true} {
		got, err := Supernode(cfg, gc, m, p, sqrt)
		if err != nil {
			t.Fatal(err)
		}
		cGot := perRecord(t, cfg, gc, got, p)
		if math.Abs(cGot-cWant)/cWant > 0.02 {
			t.Errorf("sqrt=%v: supernode cost %v vs two-level optimal %v", sqrt, cGot, cWant)
		}
	}
}

// TestESMatchesBruteForce cross-checks the DP against exhaustive
// enumeration on small configurations.
func TestESMatchesBruteForce(t *testing.T) {
	p := cost.DefaultParams()
	for _, tc := range []struct {
		notation string
		groups   map[string]float64
	}{
		{"AB(A B)", map[string]float64{"A": 552, "B": 430, "AB": 1846}},
		{"A B C", map[string]float64{"A": 552, "B": 430, "C": 610}},
		{"ABC(AB C)", map[string]float64{"AB": 1846, "C": 610, "ABC": 2117}},
	} {
		cfg, err := feedgraph.ParseConfig(tc.notation, nil)
		if err != nil {
			t.Fatal(err)
		}
		gc := groupsOf(tc.groups)
		m := 20000
		steps := 50
		dp, err := Exhaustive(cfg, gc, m, p, steps)
		if err != nil {
			t.Fatalf("%s: %v", tc.notation, err)
		}
		bf, err := BruteForce(cfg, gc, m, p, steps)
		if err != nil {
			t.Fatalf("%s: %v", tc.notation, err)
		}
		cDP, cBF := perRecord(t, cfg, gc, dp, p), perRecord(t, cfg, gc, bf, p)
		if math.Abs(cDP-cBF)/cBF > 1e-9 {
			t.Errorf("%s: DP cost %v != brute force %v", tc.notation, cDP, cBF)
		}
	}
}

// TestESBeatsHeuristics: on the paper's "unsolvable" configurations the
// fine-grained ES must be at least as good as every heuristic, and SL
// should be the closest heuristic most of the time (Tables 2-3).
func TestESBeatsHeuristics(t *testing.T) {
	p := cost.DefaultParams()
	gc := paperGroups()
	notations := []string{
		"(ABC(AC(A C) B))",
		"AB(A B) CD(C D)",
		"(ABCD(ABC(A BC(B C)) D))",
		"(ABCD(AB BCD(BC BD CD)))",
	}
	slWins := 0
	for _, notation := range notations {
		cfg, err := feedgraph.ParseConfig(notation, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := 40000
		es, err := Exhaustive(cfg, gc, m, p, DefaultGranularity)
		if err != nil {
			t.Fatalf("%s: %v", notation, err)
		}
		cES := perRecord(t, cfg, gc, es, p)
		costs := map[Scheme]float64{}
		for _, s := range []Scheme{SL, SR, PL, PR} {
			alloc, err := Allocate(s, cfg, gc, m, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", notation, s, err)
			}
			c := perRecord(t, cfg, gc, alloc, p)
			costs[s] = c
			if c < cES*0.999 {
				t.Errorf("%s: heuristic %s cost %v beats ES %v", notation, s, c, cES)
			}
		}
		if costs[SL] <= costs[SR] && costs[SL] <= costs[PL] && costs[SL] <= costs[PR] {
			slWins++
		}
		// SL within a modest factor of optimal on paper configurations.
		if costs[SL] > cES*1.25 {
			t.Errorf("%s: SL cost %v is %.0f%% above ES %v", notation, costs[SL], (costs[SL]/cES-1)*100, cES)
		}
	}
	if slWins < len(notations)-1 {
		t.Errorf("SL was best in only %d of %d configurations", slWins, len(notations))
	}
}

func TestAllocateUnknownScheme(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("A"), nil)
	if _, err := Allocate("XX", cfg, paperGroups(), 1000, cost.DefaultParams()); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestBudgetTooSmall(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("AB", "BC", "BD", "CD"), sets("ABCD"))
	p := cost.DefaultParams()
	if _, err := Supernode(cfg, paperGroups(), 10, p, false); err == nil {
		t.Error("impossible budget accepted")
	}
	if _, err := Exhaustive(cfg, paperGroups(), 10, p, 100); err == nil {
		t.Error("impossible budget accepted by ES")
	}
	if _, err := Exhaustive(cfg, paperGroups(), 40000, p, 1); err == nil {
		t.Error("ES with 1 step accepted")
	}
}

func TestAllSchemesRespectBudgetAndMinimums(t *testing.T) {
	gc := paperGroups()
	p := cost.DefaultParams()
	for _, notation := range []string{
		"A B C D",
		"ABC(A B C)",
		"(ABCD(AB BCD(BC BD CD)))",
		"AB(A B) CD(C D)",
	} {
		cfg, err := feedgraph.ParseConfig(notation, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []int{20000, 100000} {
			for _, s := range []Scheme{SL, SR, PL, PR, ES} {
				alloc, err := Allocate(s, cfg, gc, m, p)
				if err != nil {
					t.Errorf("%s/%s/M=%d: %v", notation, s, m, err)
					continue
				}
				if used := alloc.SpaceUnits(); used > m+5 { // ES rounding may add a bucket
					t.Errorf("%s/%s/M=%d: uses %d units", notation, s, m, used)
				}
				for _, r := range cfg.Rels {
					if alloc[r] < 1 {
						t.Errorf("%s/%s: relation %v got %d buckets", notation, s, r, alloc[r])
					}
				}
			}
		}
	}
}

func TestFlowLengthShiftsSpaceAway(t *testing.T) {
	// A clustered relation (high l) needs less space: its share must drop
	// relative to the same relation without clustering.
	cfg, _ := feedgraph.NewConfig(sets("A", "B"), nil)
	gc := groupsOf(map[string]float64{"A": 1000, "B": 1000})
	p := cost.DefaultParams()
	base, err := FlatOptimal(cfg, gc, 20000, p)
	if err != nil {
		t.Fatal(err)
	}
	p.FlowLen = func(r attr.Set) float64 {
		if r == attr.MustParseSet("A") {
			return 25
		}
		return 1
	}
	clustered, err := FlatOptimal(cfg, gc, 20000, p)
	if err != nil {
		t.Fatal(err)
	}
	a := attr.MustParseSet("A")
	if clustered[a] >= base[a] {
		t.Errorf("clustered A kept %d buckets (was %d); expected fewer", clustered[a], base[a])
	}
}

func TestShrinkMeetsConstraint(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("AB", "BC", "BD", "CD"), sets("BCD"))
	gc := paperGroups()
	p := cost.DefaultParams()
	alloc, err := Allocate(SL, cfg, gc, 40000, p)
	if err != nil {
		t.Fatal(err)
	}
	eu, err := cost.EndOfEpoch(cfg, gc, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.95, 0.85} {
		ep := eu * frac
		out, err := Shrink(cfg, gc, alloc, p, ep)
		if err != nil {
			t.Fatalf("frac %v: %v", frac, err)
		}
		got, _ := cost.EndOfEpoch(cfg, gc, out, p)
		if got > ep {
			t.Errorf("frac %v: E_u %v exceeds constraint %v", frac, got, ep)
		}
		// Shrink must not grow any table.
		for r, b := range out {
			if b > alloc[r] {
				t.Errorf("shrink grew %v from %d to %d", r, alloc[r], b)
			}
		}
	}
	// Already satisfied: unchanged.
	same, err := Shrink(cfg, gc, alloc, p, eu*2)
	if err != nil {
		t.Fatal(err)
	}
	for r := range alloc {
		if same[r] != alloc[r] {
			t.Error("satisfied constraint still modified the allocation")
		}
	}
}

func TestShiftMeetsConstraint(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("AB", "BC", "BD", "CD"), sets("BCD"))
	gc := paperGroups()
	p := cost.DefaultParams()
	alloc, err := Allocate(SL, cfg, gc, 40000, p)
	if err != nil {
		t.Fatal(err)
	}
	eu, _ := cost.EndOfEpoch(cfg, gc, alloc, p)
	ep := eu * 0.95
	out, err := Shift(cfg, gc, alloc, p, ep)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := cost.EndOfEpoch(cfg, gc, out, p)
	if got > ep {
		t.Errorf("E_u %v exceeds constraint %v", got, ep)
	}
	// Shift must preserve (approximately) the total budget.
	if used, orig := out.SpaceUnits(), alloc.SpaceUnits(); used > orig || float64(used) < float64(orig)*0.9 {
		t.Errorf("shift changed budget from %d to %d", orig, used)
	}
	// Without phantoms, Shift falls back to Shrink.
	flat, _ := feedgraph.NewConfig(sets("AB", "BC"), nil)
	fa, err := Allocate(SL, flat, gc, 20000, p)
	if err != nil {
		t.Fatal(err)
	}
	feu, _ := cost.EndOfEpoch(flat, gc, fa, p)
	fOut, err := Shift(flat, gc, fa, p, feu*0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := cost.EndOfEpoch(flat, gc, fOut, p); got > feu*0.9 {
		t.Errorf("fallback shrink missed constraint: %v > %v", got, feu*0.9)
	}
}
