package spacealloc

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/collision"
	"repro/internal/cost"
	"repro/internal/feedgraph"
)

// affineParams makes the cost model use exactly the affine law the
// analysis assumes, so ES and the analytic solution optimize the same
// objective.
func affineParams() cost.Params {
	p := cost.DefaultParams()
	p.Rate = func(g, b float64) float64 {
		x := collision.LinearAlpha + collision.Mu*g/b
		if x > 1 {
			return 1
		}
		return x
	}
	return p
}

func TestTwoLevelOptimalAffineMatchesES(t *testing.T) {
	queries := sets("A", "B", "C")
	cfg, err := feedgraph.NewConfig(queries, sets("ABC"))
	if err != nil {
		t.Fatal(err)
	}
	gc := groupsOf(map[string]float64{"A": 552, "B": 430, "C": 610, "ABC": 2117})
	p := affineParams()
	for _, m := range []int{20000, 40000, 100000} {
		affine, err := TwoLevelOptimalAffine(cfg, gc, m, p)
		if err != nil {
			t.Fatal(err)
		}
		es, err := Exhaustive(cfg, gc, m, p, 200)
		if err != nil {
			t.Fatal(err)
		}
		cAffine := perRecord(t, cfg, gc, affine, p)
		cES := perRecord(t, cfg, gc, es, p)
		if cAffine > cES*1.02 {
			t.Errorf("M=%d: affine analytic cost %v vs ES %v", m, cAffine, cES)
		}
	}
}

func TestTwoLevelOptimalAffineVsLinear(t *testing.T) {
	// Under the affine objective, the affine solution must be at least
	// as good as the linear-approximation solution (which neglects α).
	queries := sets("A", "B", "C", "D")
	cfg, err := feedgraph.NewConfig(queries, sets("ABCD"))
	if err != nil {
		t.Fatal(err)
	}
	gc := groupsOf(map[string]float64{
		"A": 552, "B": 430, "C": 610, "D": 380, "ABCD": 2837,
	})
	p := affineParams()
	const m = 40000
	affine, err := TwoLevelOptimalAffine(cfg, gc, m, p)
	if err != nil {
		t.Fatal(err)
	}
	linear, err := TwoLevelOptimal(cfg, gc, m, p)
	if err != nil {
		t.Fatal(err)
	}
	cA := perRecord(t, cfg, gc, affine, p)
	cL := perRecord(t, cfg, gc, linear, p)
	if cA > cL*1.005 {
		t.Errorf("affine solution %v worse than linear approximation %v", cA, cL)
	}
	// The paper's observation must survive the refinement: the phantom
	// keeps more than half of the space.
	ph := affine[attr.MustParseSet("ABCD")] * feedgraph.EntrySize(attr.MustParseSet("ABCD"))
	if float64(ph) < float64(m)*0.5 {
		t.Errorf("affine phantom share = %d of %d units", ph, m)
	}
}

func TestTwoLevelOptimalAffineValidation(t *testing.T) {
	flat, _ := feedgraph.NewConfig(sets("A", "B"), nil)
	gc := groupsOf(map[string]float64{"A": 10, "B": 10})
	if _, err := TwoLevelOptimalAffine(flat, gc, 1000, affineParams()); err == nil {
		t.Error("flat configuration accepted")
	}
	two, _ := feedgraph.NewConfig(sets("A", "B"), sets("AB"))
	gc2 := groupsOf(map[string]float64{"A": 10, "B": 10, "AB": 20})
	if _, err := TwoLevelOptimalAffine(two, gc2, 3, affineParams()); err == nil {
		t.Error("impossible budget accepted")
	}
}
