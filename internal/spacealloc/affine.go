package spacealloc

import (
	"fmt"
	"math"

	"repro/internal/attr"
	"repro/internal/collision"
	"repro/internal/cost"
	"repro/internal/feedgraph"
)

// Section 5.3 of the paper revisits the linear-rate simplification: with
// the full affine law x = α + μ·g/b (Equation 16), the stationarity
// conditions of the one-phantom case produce a quartic equation, "which
// can be solved" but is unwieldy. TwoLevelOptimalAffine computes that
// optimum without quartic root selection by exploiting the problem's
// structure: for any fixed phantom size b0, the additive α shifts every
// child rate by a constant, so the inner minimization over the children
// is the same as in the linear case (b_i ∝ √(G_i/h_i)); the remaining
// problem is one-dimensional in b0 and is solved by bracketed
// golden-section search over a coarse scan's best bracket.

// TwoLevelOptimalAffine solves configurations with exactly one phantom
// feeding all queries under the affine rate x = α + μ·G/b.
func TwoLevelOptimalAffine(cfg *feedgraph.Config, groups feedgraph.GroupCounts, m int, p cost.Params) (cost.Alloc, error) {
	if err := checkBudget(cfg, m); err != nil {
		return nil, err
	}
	raws := cfg.Raws()
	if cfg.Depth() != 2 || len(raws) != 1 {
		return nil, fmt.Errorf("spacealloc: TwoLevelOptimalAffine needs one phantom feeding all queries, got %q", cfg)
	}
	w, err := weights(cfg, groups, p)
	if err != nil {
		return nil, err
	}
	root := raws[0]
	kids := cfg.Children(root)
	h0 := float64(feedgraph.EntrySize(root))
	sPrime := 0.0 // Σ √(G_i·h_i)
	sumG := 0.0   // Σ G_i (for the α contribution)
	hs := make([]float64, len(kids))
	for i, k := range kids {
		hi := float64(feedgraph.EntrySize(k))
		hs[i] = hi
		sPrime += math.Sqrt(w[k] * hi)
		sumG += w[k]
	}
	const (
		alpha = collision.LinearAlpha
		mu    = collision.Mu
	)
	f := float64(len(kids))

	minChild := 0.0
	for _, hi := range hs {
		minChild += hi // one bucket per child at least
	}
	b0Max := (float64(m) - minChild) / h0
	if b0Max < 1 {
		return nil, fmt.Errorf("spacealloc: budget %d too small for %q", m, cfg)
	}

	rate := func(g, b float64) float64 {
		x := alpha + mu*g/b
		if x > 1 {
			return 1
		}
		return x
	}
	// e(b0): phantom rate times (probe work + children eviction work),
	// with the children allocated optimally in the leftover space.
	eval := func(b0 float64) float64 {
		x0 := rate(w[root], b0)
		left := float64(m) - h0*b0
		beta := left / sPrime
		sumChildRates := float64(len(kids))*alpha + mu/beta*sPrime // Σ α + μG_i/(β√(G_i/h_i))
		// Clamp child rates at 1 individually only matters in degenerate
		// corners; the α+μ form stays below 1 in the useful range.
		return p.C1 + f*x0*p.C1 + x0*sumChildRates*p.C2
	}

	// Coarse scan to bracket the minimum, then golden-section refine.
	const scanPoints = 256
	bestB0, bestE := 1.0, math.Inf(1)
	for i := 0; i <= scanPoints; i++ {
		b0 := 1 + (b0Max-1)*float64(i)/scanPoints
		if e := eval(b0); e < bestE {
			bestB0, bestE = b0, e
		}
	}
	lo := math.Max(1, bestB0-(b0Max-1)/scanPoints)
	hi := math.Min(b0Max, bestB0+(b0Max-1)/scanPoints)
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := eval(c), eval(d)
	for i := 0; i < 80 && b-a > 1e-6*(hi-lo)+1e-9; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = eval(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = eval(d)
		}
	}
	b0 := (a + b) / 2

	left := float64(m) - h0*b0
	beta := left / sPrime
	shares := map[attr.Set]float64{root: h0 * b0}
	for i, k := range kids {
		bi := beta * math.Sqrt(w[k]/hs[i])
		shares[k] = bi * hs[i]
	}
	return roundAlloc(cfg, shares, m), nil
}
