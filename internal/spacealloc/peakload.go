package spacealloc

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
)

// Peak-load repair (Section 6.3.4): the end-of-epoch update cost E_u of a
// chosen allocation must stay below the peak-load constraint E_p. Two
// repair methods are provided. Shrink scales every table down
// proportionally, freeing load at the cost of higher collision rates
// everywhere. Shift moves space from the queries to the phantoms: since
// c2 ≫ c1, most of E_u is the M_R·c2 term of the query tables, so
// shrinking queries while growing phantoms reduces E_u without giving up
// the total budget. The paper finds shift better when E_p is close to
// E_u, and shrink better when E_p ≪ E_u.

// Shrink returns the largest proportional scale-down of alloc whose
// end-of-epoch cost fits under ep, found by binary search on the scale
// factor. Every table keeps at least one bucket.
func Shrink(cfg *feedgraph.Config, groups feedgraph.GroupCounts, alloc cost.Alloc, p cost.Params, ep float64) (cost.Alloc, error) {
	eu, err := cost.EndOfEpoch(cfg, groups, alloc, p)
	if err != nil {
		return nil, err
	}
	if eu <= ep {
		return alloc.Clone(), nil
	}
	scaled := func(s float64) cost.Alloc {
		out := make(cost.Alloc, len(alloc))
		for r, b := range alloc {
			nb := int(float64(b) * s)
			if nb < 1 {
				nb = 1
			}
			out[r] = nb
		}
		return out
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		eu, err := cost.EndOfEpoch(cfg, groups, scaled(mid), p)
		if err != nil {
			return nil, err
		}
		if eu <= ep {
			lo = mid
		} else {
			hi = mid
		}
	}
	out := scaled(lo)
	if eu, _ := cost.EndOfEpoch(cfg, groups, out, p); eu > ep {
		// Even the minimal tables exceed the constraint.
		if eu2, _ := cost.EndOfEpoch(cfg, groups, scaled(0), p); eu2 > ep {
			return nil, fmt.Errorf("spacealloc: peak-load constraint %v unreachable (min E_u = %v)", ep, eu2)
		}
		return scaled(0), nil
	}
	return out, nil
}

// Shift repeatedly moves a small slice of space (step fraction of the
// queries' current space, default 2%) from the query tables to the
// phantom tables until the end-of-epoch cost fits under ep. Without
// phantoms it falls back to Shrink.
func Shift(cfg *feedgraph.Config, groups feedgraph.GroupCounts, alloc cost.Alloc, p cost.Params, ep float64) (cost.Alloc, error) {
	eu, err := cost.EndOfEpoch(cfg, groups, alloc, p)
	if err != nil {
		return nil, err
	}
	if eu <= ep {
		return alloc.Clone(), nil
	}
	phantoms := cfg.Phantoms()
	if len(phantoms) == 0 {
		return Shrink(cfg, groups, alloc, p, ep)
	}
	queries := make([]attr.Set, 0, len(cfg.Rels))
	for _, r := range cfg.Rels {
		if cfg.IsQuery(r) {
			queries = append(queries, r)
		}
	}
	out := alloc.Clone()
	const step = 0.02
	for iter := 0; iter < 200; iter++ {
		eu, err := cost.EndOfEpoch(cfg, groups, out, p)
		if err != nil {
			return nil, err
		}
		if eu <= ep {
			return out, nil
		}
		// Take step of each query's space, pool the freed units.
		freed := 0
		movable := false
		for _, q := range queries {
			h := feedgraph.EntrySize(q)
			take := int(float64(out[q]) * step)
			if take < 1 {
				take = 1
			}
			if out[q]-take < 1 {
				take = out[q] - 1
			}
			if take <= 0 {
				continue
			}
			out[q] -= take
			freed += take * h
			movable = true
		}
		if !movable {
			// Queries are at minimum size; fall back to shrinking the
			// phantoms too.
			return Shrink(cfg, groups, out, p, ep)
		}
		// Grow phantoms proportionally to their current sizes.
		totalPh := 0
		for _, ph := range phantoms {
			totalPh += out[ph] * feedgraph.EntrySize(ph)
		}
		for _, ph := range phantoms {
			h := feedgraph.EntrySize(ph)
			share := float64(out[ph]*h) / float64(totalPh)
			out[ph] += int(share * float64(freed) / float64(h))
		}
	}
	return nil, fmt.Errorf("spacealloc: shift did not reach peak-load constraint %v", ep)
}
