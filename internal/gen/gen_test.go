package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/stream"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestUniformUniverse(t *testing.T) {
	schema := stream.MustSchema(3)
	u, err := UniformUniverse(rng(1), schema, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Size() != 500 {
		t.Fatalf("Size = %d", u.Size())
	}
	if g := u.GroupCount(schema.Universe()); g != 500 {
		t.Errorf("full-width GroupCount = %d; want 500", g)
	}
	// Projections can only shrink the group count.
	if g := u.GroupCount(attr.MustParseSet("A")); g > 500 || g <= 0 {
		t.Errorf("GroupCount(A) = %d", g)
	}
	if _, err := UniformUniverse(rng(1), schema, 0, 0); err == nil {
		t.Error("g = 0 accepted")
	}
	if _, err := UniformUniverse(rng(1), stream.MustSchema(1), 10, 3); err == nil {
		t.Error("impossible pool accepted")
	}
}

func TestGroupCountMonotone(t *testing.T) {
	schema := stream.MustSchema(4)
	u, err := UniformUniverse(rng(2), schema, 1000, 50)
	if err != nil {
		t.Fatal(err)
	}
	// g is monotone under subset: R ⊆ S implies g_R ≤ g_S.
	rels := []string{"A", "AB", "ABC", "ABCD", "B", "BD", "ABD"}
	for _, rs := range rels {
		for _, ss := range rels {
			r, s := attr.MustParseSet(rs), attr.MustParseSet(ss)
			if r.SubsetOf(s) && u.GroupCount(r) > u.GroupCount(s) {
				t.Errorf("g(%v) = %d > g(%v) = %d violates monotonicity",
					r, u.GroupCount(r), s, u.GroupCount(s))
			}
		}
	}
}

func TestNestedUniverseHitsPrefixCards(t *testing.T) {
	schema := stream.MustSchema(4)
	cards := []int{552, 1846, 2117, 2837}
	u, err := NestedUniverse(rng(3), schema, cards, 1500)
	if err != nil {
		t.Fatal(err)
	}
	prefixes := []string{"A", "AB", "ABC", "ABCD"}
	for i, p := range prefixes {
		if g := u.GroupCount(attr.MustParseSet(p)); g != cards[i] {
			t.Errorf("g(%s) = %d; want %d", p, g, cards[i])
		}
	}
}

func TestNestedUniverseValidation(t *testing.T) {
	schema := stream.MustSchema(2)
	if _, err := NestedUniverse(rng(1), schema, []int{5}, 0); err == nil {
		t.Error("wrong cardinality count accepted")
	}
	if _, err := NestedUniverse(rng(1), schema, []int{5, 3}, 0); err == nil {
		t.Error("decreasing cardinalities accepted")
	}
	if _, err := NestedUniverse(rng(1), schema, []int{0, 3}, 0); err == nil {
		t.Error("zero cardinality accepted")
	}
}

func TestUniformRecords(t *testing.T) {
	schema := stream.MustSchema(2)
	u, _ := UniformUniverse(rng(4), schema, 100, 0)
	recs := Uniform(rng(5), u, 10000, 60)
	if len(recs) != 10000 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Time != 0 || recs[len(recs)-1].Time != 59 {
		t.Errorf("timestamps span [%d, %d]; want [0, 59]", recs[0].Time, recs[len(recs)-1].Time)
	}
	if g := CountGroups(recs, schema.Universe()); g > 100 {
		t.Errorf("records use %d groups; universe has 100", g)
	}
	// With 10000 draws from 100 groups, all groups should appear.
	if g := CountGroups(recs, schema.Universe()); g != 100 {
		t.Errorf("only %d of 100 groups appeared in 10000 uniform draws", g)
	}
}

func TestZipfSkew(t *testing.T) {
	schema := stream.MustSchema(1)
	u, _ := UniformUniverse(rng(6), schema, 1000, 0)
	recs, err := Zipf(rng(7), u, 50000, 0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	hist := GroupHistogram(recs, schema.Universe())
	// Heavy skew: the top group should carry far more than the uniform
	// share (50 records/group).
	if hist[0] < 500 {
		t.Errorf("top group has %d records; expected heavy skew", hist[0])
	}
	if _, err := Zipf(rng(7), u, 10, 0, 0.5); err == nil {
		t.Error("invalid zipf exponent accepted")
	}
}

func TestFlowsClusteredness(t *testing.T) {
	schema := stream.MustSchema(4)
	u, _ := UniformUniverse(rng(8), schema, 500, 0)
	cfg := FlowConfig{NumRecords: 30000, Duration: 60, MeanFlowLen: 20, Concurrency: 8}
	ft, err := Flows(rng(9), u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Records) != cfg.NumRecords {
		t.Fatalf("got %d records", len(ft.Records))
	}
	la := ft.AvgFlowLength()
	if la < 10 || la > 40 {
		t.Errorf("average flow length %v far from configured mean 20", la)
	}
	// Clusteredness: consecutive records repeat the same group far more
	// often than independent draws from 500 groups would (~0.2%).
	same := 0
	for i := 1; i < len(ft.Records); i++ {
		equal := true
		for j := range ft.Records[i].Attrs {
			if ft.Records[i].Attrs[j] != ft.Records[i-1].Attrs[j] {
				equal = false
				break
			}
		}
		if equal {
			same++
		}
	}
	frac := float64(same) / float64(len(ft.Records)-1)
	if frac < 0.05 {
		t.Errorf("adjacent-same-group fraction %v; trace not clustered", frac)
	}

	// OnePerFlow de-clusters: one record per flow.
	flat := ft.OnePerFlow()
	if len(flat) != len(ft.Flows) {
		t.Errorf("OnePerFlow emitted %d records for %d flows", len(flat), len(ft.Flows))
	}
}

func TestFlowsValidation(t *testing.T) {
	schema := stream.MustSchema(1)
	u, _ := UniformUniverse(rng(10), schema, 10, 0)
	if _, err := Flows(rng(1), u, FlowConfig{NumRecords: 0, MeanFlowLen: 5}); err == nil {
		t.Error("zero records accepted")
	}
	if _, err := Flows(rng(1), u, FlowConfig{NumRecords: 10, MeanFlowLen: 0.5}); err == nil {
		t.Error("sub-1 mean flow length accepted")
	}
}

func TestPaperTraceStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("paper trace generation is slow in -short mode")
	}
	u, ft, err := PaperTrace(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Records) != 860000 {
		t.Fatalf("paper trace has %d records; want 860000", len(ft.Records))
	}
	for i, p := range []string{"A", "AB", "ABC", "ABCD"} {
		if g := u.GroupCount(attr.MustParseSet(p)); g != PaperUniverseCards[i] {
			t.Errorf("g(%s) = %d; want %d", p, g, PaperUniverseCards[i])
		}
	}
	// All groups the records use must come from the universe.
	if g := CountGroups(ft.Records, attr.MustParseSet("ABCD")); g > u.Size() {
		t.Errorf("trace uses %d groups; universe has %d", g, u.Size())
	}
	// Duration 62 seconds.
	last := ft.Records[len(ft.Records)-1].Time
	if last != 61 {
		t.Errorf("last timestamp %d; want 61", last)
	}
	// Strong clusteredness.
	if la := ft.AvgFlowLength(); la < 5 {
		t.Errorf("average flow length %v; want clustered trace", la)
	}
}

func TestDeterminism(t *testing.T) {
	schema := stream.MustSchema(3)
	u1, _ := UniformUniverse(rng(99), schema, 200, 100)
	u2, _ := UniformUniverse(rng(99), schema, 200, 100)
	for i := range u1.Tuples {
		for j := range u1.Tuples[i] {
			if u1.Tuples[i][j] != u2.Tuples[i][j] {
				t.Fatal("same seed produced different universes")
			}
		}
	}
	r1 := Uniform(rng(7), u1, 100, 10)
	r2 := Uniform(rng(7), u2, 100, 10)
	for i := range r1 {
		if r1[i].Time != r2[i].Time || r1[i].Attrs[0] != r2[i].Attrs[0] {
			t.Fatal("same seed produced different record streams")
		}
	}
}

func TestGroupHistogramSumsToN(t *testing.T) {
	schema := stream.MustSchema(2)
	u, _ := UniformUniverse(rng(11), schema, 50, 0)
	recs := Uniform(rng(12), u, 5000, 0)
	hist := GroupHistogram(recs, schema.Universe())
	total := 0
	for i, c := range hist {
		total += c
		if i > 0 && hist[i-1] < c {
			t.Fatal("histogram not sorted descending")
		}
	}
	if total != 5000 {
		t.Errorf("histogram sums to %d; want 5000", total)
	}
}

func TestGeometricFlowLengthMean(t *testing.T) {
	// The realized mean flow length should be near the configured mean.
	schema := stream.MustSchema(1)
	u, _ := UniformUniverse(rng(13), schema, 50, 0)
	for _, mean := range []float64{1, 5, 30} {
		ft, err := Flows(rng(14), u, FlowConfig{NumRecords: 50000, MeanFlowLen: mean, Concurrency: 4})
		if err != nil {
			t.Fatal(err)
		}
		la := ft.AvgFlowLength()
		if math.Abs(la-mean) > mean*0.3+1 {
			t.Errorf("mean %v: realized flow length %v", mean, la)
		}
	}
}
