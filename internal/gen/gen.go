// Package gen generates the workloads of the paper's experimental study:
// uniform random streams, Zipf-skewed streams, and clustered netflow-like
// packet traces.
//
// The paper's "real dataset" is a tcpdump capture of 860,000 TCP headers
// over 62 seconds with 2837 distinct (srcIP, dstIP, srcPort, dstPort)
// groups, strong flow clusteredness, and per-relation group counts between
// 552 and 2837. That capture is not distributable, so PaperTrace builds a
// seeded synthetic stand-in that reproduces exactly the statistics the
// optimization problem observes: the per-relation group counts, the record
// volume, the duration, and the flow-level clusteredness (packets of a
// flow share all four attributes and arrive near each other in time). See
// DESIGN.md §5 for the substitution argument.
package gen

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/attr"
	"repro/internal/stream"
)

// Universe is a set of distinct full-width group tuples; records are drawn
// from it. It fixes the group counts g_R of every relation R, the primary
// input of the paper's cost model.
type Universe struct {
	Schema stream.Schema
	Tuples [][]uint32

	groupCounts map[attr.Set]int // lazily filled cache
}

// NewUniverse wraps a set of tuples. Duplicate tuples are removed.
func NewUniverse(schema stream.Schema, tuples [][]uint32) (*Universe, error) {
	seen := make(map[string]bool, len(tuples))
	var uniq [][]uint32
	for _, tup := range tuples {
		if len(tup) != schema.NumAttrs {
			return nil, fmt.Errorf("gen: tuple arity %d, schema wants %d", len(tup), schema.NumAttrs)
		}
		k := keyString(tup)
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, tup)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("gen: universe needs at least one tuple")
	}
	return &Universe{Schema: schema, Tuples: uniq, groupCounts: make(map[attr.Set]int)}, nil
}

func keyString(vals []uint32) string {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], v)
	}
	return string(buf)
}

// Size returns the number of distinct full-width groups (g of the widest
// relation).
func (u *Universe) Size() int { return len(u.Tuples) }

// GroupCount returns the number of distinct projections of the universe
// onto rel: the paper's g_R. Results are cached.
func (u *Universe) GroupCount(rel attr.Set) int {
	if rel.IsEmpty() {
		return 0
	}
	if g, ok := u.groupCounts[rel]; ok {
		return g
	}
	seen := make(map[string]bool, len(u.Tuples))
	buf := make([]uint32, 0, rel.Size())
	for _, tup := range u.Tuples {
		buf = rel.Project(tup, buf)
		seen[keyString(buf)] = true
	}
	g := len(seen)
	u.groupCounts[rel] = g
	return g
}

// GroupCounts computes g_R for every relation in rels.
func (u *Universe) GroupCounts(rels []attr.Set) map[attr.Set]int {
	out := make(map[attr.Set]int, len(rels))
	for _, r := range rels {
		out[r] = u.GroupCount(r)
	}
	return out
}

// UniformUniverse draws g distinct full-width tuples uniformly from a
// per-attribute value pool of the given size (0 means 2^32). It reproduces
// the paper's synthetic setup of "tuples uniformly at random with a given
// number of groups".
func UniformUniverse(rng *rand.Rand, schema stream.Schema, g int, pool uint32) (*Universe, error) {
	if g <= 0 {
		return nil, fmt.Errorf("gen: need g > 0, got %d", g)
	}
	if pool > 0 {
		max := math.Pow(float64(pool), float64(schema.NumAttrs))
		if float64(g) > max {
			return nil, fmt.Errorf("gen: cannot draw %d distinct tuples from pool %d^%d", g, pool, schema.NumAttrs)
		}
	}
	seen := make(map[string]bool, g)
	tuples := make([][]uint32, 0, g)
	for len(tuples) < g {
		tup := make([]uint32, schema.NumAttrs)
		for i := range tup {
			if pool > 0 {
				tup[i] = uint32(rng.Int63n(int64(pool)))
			} else {
				tup[i] = rng.Uint32()
			}
		}
		k := keyString(tup)
		if !seen[k] {
			seen[k] = true
			tuples = append(tuples, tup)
		}
	}
	return NewUniverse(schema, tuples)
}

// NestedUniverse builds a universe whose *prefix* relations have exactly
// the requested cardinalities: prefixCards[i] is the number of distinct
// projections onto the first i+1 attributes, so prefixCards must be
// non-decreasing and prefixCards[0] distinct values of attribute A exist.
// This is how we hit the paper's published real-data cardinalities
// (552, 1846, 2117, 2837 for A, AB, ABC, ABCD).
//
// Construction: level 0 has prefixCards[0] distinct A values; level i
// extends the prefixCards[i-1] prefixes to prefixCards[i] distinct
// (i+1)-wide prefixes by giving every prefix one child and distributing
// the surplus children at random. Child values are drawn from a pool of
// valuePool distinct values per attribute (0 = unbounded), which controls
// how many distinct values non-prefix relations like B or CD see.
func NestedUniverse(rng *rand.Rand, schema stream.Schema, prefixCards []int, valuePool uint32) (*Universe, error) {
	if len(prefixCards) != schema.NumAttrs {
		return nil, fmt.Errorf("gen: %d prefix cardinalities for %d attributes", len(prefixCards), schema.NumAttrs)
	}
	for i, c := range prefixCards {
		if c <= 0 {
			return nil, fmt.Errorf("gen: prefix cardinality %d must be positive", i)
		}
		if i > 0 && c < prefixCards[i-1] {
			return nil, fmt.Errorf("gen: prefix cardinalities must be non-decreasing (got %d after %d)", c, prefixCards[i-1])
		}
	}

	drawValue := func() uint32 {
		if valuePool > 0 {
			return uint32(rng.Int63n(int64(valuePool)))
		}
		return rng.Uint32()
	}

	// Level 0: distinct A values.
	level := make([][]uint32, 0, prefixCards[0])
	seen := map[uint32]bool{}
	for len(level) < prefixCards[0] {
		v := drawValue()
		if !seen[v] {
			seen[v] = true
			level = append(level, []uint32{v})
		}
	}

	for i := 1; i < schema.NumAttrs; i++ {
		want := prefixCards[i]
		// Every existing prefix gets at least one child; the surplus
		// children go to random prefixes.
		children := make([]int, len(level))
		for j := range children {
			children[j] = 1
		}
		for extra := want - len(level); extra > 0; extra-- {
			children[rng.Intn(len(level))]++
		}
		next := make([][]uint32, 0, want)
		for j, pfx := range level {
			used := map[uint32]bool{}
			for c := 0; c < children[j]; c++ {
				var v uint32
				for {
					v = drawValue()
					if !used[v] {
						used[v] = true
						break
					}
				}
				child := make([]uint32, i+1)
				copy(child, pfx)
				child[i] = v
				next = append(next, child)
			}
		}
		level = next
	}
	return NewUniverse(schema, level)
}

// Uniform draws n records uniformly from the universe's groups, with
// timestamps spread evenly across [0, duration).
func Uniform(rng *rand.Rand, u *Universe, n int, duration uint32) []stream.Record {
	recs := make([]stream.Record, n)
	for i := range recs {
		tup := u.Tuples[rng.Intn(len(u.Tuples))]
		recs[i] = stream.Record{Attrs: tup, Time: timestamp(i, n, duration)}
	}
	return recs
}

// Zipf draws n records from the universe under a Zipf(s) popularity skew
// over groups (s > 1), modelling heavy-hitter traffic mixes.
func Zipf(rng *rand.Rand, u *Universe, n int, duration uint32, s float64) ([]stream.Record, error) {
	if s <= 1 {
		return nil, fmt.Errorf("gen: zipf exponent must be > 1, got %v", s)
	}
	z := rand.NewZipf(rng, s, 1, uint64(len(u.Tuples)-1))
	if z == nil {
		return nil, fmt.Errorf("gen: bad zipf parameters (s=%v, g=%d)", s, len(u.Tuples))
	}
	// Shuffle the rank→group mapping so popularity is independent of the
	// order in which the universe was constructed.
	perm := rng.Perm(len(u.Tuples))
	recs := make([]stream.Record, n)
	for i := range recs {
		tup := u.Tuples[perm[z.Uint64()]]
		recs[i] = stream.Record{Attrs: tup, Time: timestamp(i, n, duration)}
	}
	return recs, nil
}

func timestamp(i, n int, duration uint32) uint32 {
	if duration == 0 || n == 0 {
		return 0
	}
	return uint32(uint64(i) * uint64(duration) / uint64(n))
}

// FlowConfig parameterizes the clustered flow trace generator.
type FlowConfig struct {
	NumRecords  int     // total packets to emit
	Duration    uint32  // stream time units spanned by the trace
	MeanFlowLen float64 // mean packets per flow (geometric length distribution)
	Concurrency int     // max simultaneously active flows (interleaving degree)
	Skew        float64 // 0 = flows pick groups uniformly; >1 = Zipf exponent
}

// FlowTrace is a generated clustered trace: the packet records plus the
// flow structure they were derived from (one tuple per flow, in flow start
// order), which experiments use to "collapse clusteredness" as the paper
// does for Figure 5.
type FlowTrace struct {
	Schema  stream.Schema
	Records []stream.Record
	Flows   [][]uint32
}

// AvgFlowLength returns the realized l_a of the trace.
func (ft *FlowTrace) AvgFlowLength() float64 {
	if len(ft.Flows) == 0 {
		return 0
	}
	return float64(len(ft.Records)) / float64(len(ft.Flows))
}

// OnePerFlow returns a de-clustered copy of the trace with exactly one
// record per flow, reproducing the paper's flow-collapsing step used to
// validate the random-data collision model on real data.
func (ft *FlowTrace) OnePerFlow() []stream.Record {
	recs := make([]stream.Record, len(ft.Flows))
	for i, tup := range ft.Flows {
		recs[i] = stream.Record{Attrs: tup, Time: timestamp(i, len(ft.Flows), ft.recordsDuration())}
	}
	return recs
}

func (ft *FlowTrace) recordsDuration() uint32 {
	if len(ft.Records) == 0 {
		return 0
	}
	return ft.Records[len(ft.Records)-1].Time + 1
}

// Flows generates a clustered packet trace: flows start over time, each
// bound to one group of the universe and to a geometrically distributed
// packet count with the configured mean; at every step one of the active
// flows (at most Concurrency of them) emits the next packet. Packets of
// one flow therefore share all attribute values and are interleaved with
// only a bounded number of other flows — the clusteredness the paper's
// Section 4.3 models.
func Flows(rng *rand.Rand, u *Universe, cfg FlowConfig) (*FlowTrace, error) {
	if cfg.NumRecords <= 0 {
		return nil, fmt.Errorf("gen: NumRecords must be positive")
	}
	if cfg.MeanFlowLen < 1 {
		return nil, fmt.Errorf("gen: MeanFlowLen must be at least 1, got %v", cfg.MeanFlowLen)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}

	pickGroup := func() []uint32 { return u.Tuples[rng.Intn(len(u.Tuples))] }
	if cfg.Skew > 1 {
		z := rand.NewZipf(rng, cfg.Skew, 1, uint64(len(u.Tuples)-1))
		perm := rng.Perm(len(u.Tuples))
		pickGroup = func() []uint32 { return u.Tuples[perm[z.Uint64()]] }
	}

	// Geometric flow length with mean m: P(len = k) = p(1-p)^(k-1),
	// p = 1/m.
	p := 1 / cfg.MeanFlowLen
	flowLen := func() int {
		if p >= 1 {
			return 1
		}
		// Inverse CDF sampling.
		uv := rng.Float64()
		k := int(math.Ceil(math.Log(1-uv) / math.Log(1-p)))
		if k < 1 {
			k = 1
		}
		return k
	}

	type activeFlow struct {
		tuple     []uint32
		remaining int
	}

	trace := &FlowTrace{Schema: u.Schema}
	trace.Records = make([]stream.Record, 0, cfg.NumRecords)
	var active []activeFlow
	for len(trace.Records) < cfg.NumRecords {
		// Admit new flows while below the concurrency bound; always admit
		// when nothing is active.
		for len(active) == 0 || len(active) < cfg.Concurrency && rng.Float64() < 0.3 {
			tup := pickGroup()
			active = append(active, activeFlow{tuple: tup, remaining: flowLen()})
			trace.Flows = append(trace.Flows, tup)
		}
		i := rng.Intn(len(active))
		trace.Records = append(trace.Records, stream.Record{
			Attrs: active[i].tuple,
			Time:  timestamp(len(trace.Records), cfg.NumRecords, cfg.Duration),
		})
		active[i].remaining--
		if active[i].remaining == 0 {
			active[i] = active[len(active)-1]
			active = active[:len(active)-1]
		}
	}
	return trace, nil
}

// PaperUniverseCards are the per-prefix group cardinalities of the paper's
// real dataset: A=552, AB=1846, ABC=2117, ABCD=2837 (Section 6.1).
var PaperUniverseCards = []int{552, 1846, 2117, 2837}

// PaperTraceConfig mirrors the paper's real dataset statistics: 860,000
// records over 62 seconds. The mean flow length follows from the record
// count and the number of groups revisited by flows.
var PaperTraceConfig = FlowConfig{
	NumRecords:  860000,
	Duration:    62,
	MeanFlowLen: 30, // ≈ 28k flows; strong clusteredness like TCP traffic
	Concurrency: 64,
	Skew:        0,
}

// PaperUniverse builds the surrogate group universe for the paper's real
// dataset from a seed.
func PaperUniverse(seed int64) (*Universe, error) {
	rng := rand.New(rand.NewSource(seed))
	schema := stream.MustSchema(4)
	// Pool of 1500 values per attribute keeps non-prefix relations (B, C,
	// CD, ...) in the same few-hundred-to-few-thousand group range the
	// paper reports for its extracted relations.
	return NestedUniverse(rng, schema, PaperUniverseCards, 1500)
}

// PaperTrace builds the full surrogate for the paper's tcpdump capture:
// the universe plus a clustered 860k-record flow trace over it.
func PaperTrace(seed int64) (*Universe, *FlowTrace, error) {
	u, err := PaperUniverse(seed)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	ft, err := Flows(rng, u, PaperTraceConfig)
	if err != nil {
		return nil, nil, err
	}
	return u, ft, nil
}

// CountGroups counts the distinct projections of a record batch onto rel;
// the measured g_R of a dataset.
func CountGroups(recs []stream.Record, rel attr.Set) int {
	seen := make(map[string]bool)
	buf := make([]uint32, 0, rel.Size())
	for i := range recs {
		buf = rel.Project(recs[i].Attrs, buf)
		seen[keyString(buf)] = true
	}
	return len(seen)
}

// GroupHistogram returns the per-group record counts of a batch projected
// onto rel, sorted descending; useful for skew diagnostics in examples.
func GroupHistogram(recs []stream.Record, rel attr.Set) []int {
	counts := make(map[string]int)
	buf := make([]uint32, 0, rel.Size())
	for i := range recs {
		buf = rel.Project(recs[i].Attrs, buf)
		counts[keyString(buf)]++
	}
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
