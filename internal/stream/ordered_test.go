package stream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func timesOf(recs []Record) []uint32 {
	out := make([]uint32, len(recs))
	for i, r := range recs {
		out[i] = r.Time
	}
	return out
}

func TestOrderedSourcePassesOrderedStream(t *testing.T) {
	in := []Record{mkRec(0, 1), mkRec(1, 2), mkRec(1, 3), mkRec(5, 4)}
	o := NewOrderedSource(NewSliceSource(in), 2)
	out, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Time < out[i-1].Time {
			t.Fatalf("order violated: %v", timesOf(out))
		}
	}
	if o.Late() != 0 {
		t.Errorf("Late = %d on an ordered stream", o.Late())
	}
}

func TestOrderedSourceReorders(t *testing.T) {
	// Timestamps 3,1,2 with slack 3: all fit in the window and come out
	// sorted.
	in := []Record{mkRec(3, 1), mkRec(1, 2), mkRec(2, 3), mkRec(4, 4)}
	o := NewOrderedSource(NewSliceSource(in), 3)
	out, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 2, 3, 4}
	got := timesOf(out)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("times = %v; want %v", got, want)
		}
	}
	if o.Late() != 0 {
		t.Errorf("Late = %d", o.Late())
	}
}

func TestOrderedSourceDropsLate(t *testing.T) {
	// With slack 1, the record at t=0 arriving after t=10 has passed the
	// watermark (10-1=9) and must be dropped.
	in := []Record{mkRec(5, 1), mkRec(10, 2), mkRec(0, 3), mkRec(11, 4)}
	o := NewOrderedSource(NewSliceSource(in), 1)
	out, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	if o.Late() != 1 {
		t.Errorf("Late = %d; want 1", o.Late())
	}
	for i := 1; i < len(out); i++ {
		if out[i].Time < out[i-1].Time {
			t.Fatalf("order violated: %v", timesOf(out))
		}
	}
	if len(out) != 3 {
		t.Errorf("emitted %d records; want 3", len(out))
	}
}

// Property: for any input and slack, the output is sorted, and output
// count + late count equals input count.
func TestOrderedSourceProperty(t *testing.T) {
	f := func(seed int64, slackRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		slack := uint32(slackRaw % 16)
		n := 200
		in := make([]Record, n)
		tm := uint32(0)
		for i := range in {
			// Mostly advancing time with occasional back-jumps.
			if rng.Intn(4) == 0 && tm > 3 {
				in[i] = mkRec(tm-uint32(rng.Intn(4)), uint32(i))
			} else {
				in[i] = mkRec(tm, uint32(i))
			}
			if rng.Intn(2) == 0 {
				tm++
			}
		}
		o := NewOrderedSource(NewSliceSource(in), slack)
		out, err := Collect(o)
		if err != nil {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].Time < out[i-1].Time {
				return false
			}
		}
		return uint64(len(out))+o.Late() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with slack at least the maximum displacement, nothing is
// dropped and the output is a sorted permutation of the input.
func TestOrderedSourceLosslessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100
		in := make([]Record, n)
		for i := range in {
			base := uint32(i)
			jitter := uint32(rng.Intn(5))
			tm := uint32(0)
			if base > jitter {
				tm = base - jitter
			}
			in[i] = mkRec(tm, uint32(i))
		}
		o := NewOrderedSource(NewSliceSource(in), 8) // > max displacement
		out, err := Collect(o)
		if err != nil || o.Late() != 0 || len(out) != n {
			return false
		}
		seen := map[uint32]bool{}
		for _, r := range out {
			if seen[r.Attrs[0]] {
				return false
			}
			seen[r.Attrs[0]] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
