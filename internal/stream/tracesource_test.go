package stream

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceSourceRoundTrip(t *testing.T) {
	schema := MustSchema(3)
	recs := []Record{
		mkRec(0, 1, 2, 3),
		mkRec(5, 4, 5, 6),
		mkRec(9, 7, 8, 9),
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, schema, recs); err != nil {
		t.Fatal(err)
	}
	src, err := NewTraceSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if src.Schema().NumAttrs != 3 {
		t.Errorf("schema attrs = %d", src.Schema().NumAttrs)
	}
	if src.Remaining() != 3 {
		t.Errorf("Remaining = %d", src.Remaining())
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i].Time != recs[i].Time || got[i].Attrs[1] != recs[i].Attrs[1] {
			t.Errorf("record %d mismatch: %+v", i, got[i])
		}
	}
	// Exhausted source keeps returning false without error.
	if _, ok := src.Next(); ok {
		t.Error("exhausted source returned a record")
	}
	if src.Err() != nil {
		t.Errorf("Err = %v", src.Err())
	}
}

func TestTraceSourceRecordsAreIndependent(t *testing.T) {
	// Each record must own its attribute slice (no buffer aliasing).
	schema := MustSchema(2)
	recs := []Record{mkRec(0, 1, 2), mkRec(1, 3, 4)}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, schema, recs); err != nil {
		t.Fatal(err)
	}
	src, err := NewTraceSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := src.Next()
	r2, _ := src.Next()
	if r1.Attrs[0] != 1 || r2.Attrs[0] != 3 {
		t.Errorf("records alias each other: %v %v", r1.Attrs, r2.Attrs)
	}
}

func TestTraceSourceErrors(t *testing.T) {
	if _, err := NewTraceSource(strings.NewReader("BOGUS")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated body: header promises 2 records, body holds 1.
	schema := MustSchema(1)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, schema, []Record{mkRec(0, 1), mkRec(1, 2)}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	src, err := NewTraceSource(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if src.Err() == nil {
		t.Error("truncation not reported")
	}
	if n != 1 {
		t.Errorf("read %d records before truncation; want 1", n)
	}
}

func TestOpenTraceSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.magt")
	schema := MustSchema(2)
	recs := []Record{mkRec(0, 1, 2), mkRec(1, 3, 4)}
	if err := WriteTraceFile(path, schema, recs); err != nil {
		t.Fatal(err)
	}
	src, err := OpenTraceSource(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if err := src.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := OpenTraceSource(filepath.Join(dir, "missing.magt")); err == nil {
		t.Error("missing file accepted")
	}
	// A non-trace file fails at open and must not leak the handle (no
	// direct way to assert the leak; this exercises the cleanup path).
	bad := filepath.Join(dir, "bad.magt")
	if err := os.WriteFile(bad, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTraceSource(bad); err == nil {
		t.Error("non-trace file accepted")
	}
}
