package stream

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/attr"
)

func mkRec(t uint32, vals ...uint32) Record {
	return Record{Attrs: vals, Time: t}
}

func TestNewSchema(t *testing.T) {
	if _, err := NewSchema(0); err == nil {
		t.Error("NewSchema(0) should fail")
	}
	if _, err := NewSchema(27); err == nil {
		t.Error("NewSchema(27) should fail")
	}
	s, err := NewSchema(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Universe() != attr.MustParseSet("ABCD") {
		t.Errorf("Universe = %v", s.Universe())
	}
	if s.AttrName(2) != "C" {
		t.Errorf("AttrName(2) = %q", s.AttrName(2))
	}
	if err := s.Validate(mkRec(0, 1, 2, 3)); err == nil {
		t.Error("Validate should reject 3-attr record for 4-attr schema")
	}
	if err := s.Validate(mkRec(0, 1, 2, 3, 4)); err != nil {
		t.Errorf("Validate rejected valid record: %v", err)
	}
}

func TestSliceSource(t *testing.T) {
	recs := []Record{mkRec(0, 1), mkRec(1, 2), mkRec(2, 3)}
	src := NewSliceSource(recs)
	if src.Len() != 3 {
		t.Fatalf("Len = %d", src.Len())
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].Attrs[0] != 3 {
		t.Fatalf("Collect = %v", got)
	}
	if _, ok := src.Next(); ok {
		t.Error("exhausted source returned a record")
	}
	src.Reset()
	if r, ok := src.Next(); !ok || r.Attrs[0] != 1 {
		t.Error("Reset did not rewind")
	}
}

func TestChanAndFuncSource(t *testing.T) {
	ch := make(chan Record, 2)
	ch <- mkRec(5, 9)
	close(ch)
	cs := ChanSource{C: ch}
	if r, ok := cs.Next(); !ok || r.Time != 5 {
		t.Errorf("ChanSource.Next = %v, %v", r, ok)
	}
	if _, ok := cs.Next(); ok {
		t.Error("closed channel source returned a record")
	}

	n := 0
	fs := FuncSource(func() (Record, bool) {
		if n >= 2 {
			return Record{}, false
		}
		n++
		return mkRec(uint32(n), uint32(n)), true
	})
	recs, _ := Collect(fs)
	if len(recs) != 2 {
		t.Errorf("FuncSource produced %d records", len(recs))
	}
}

func TestEpochOf(t *testing.T) {
	e := Epoch{Length: 60}
	cases := []struct{ t, want uint32 }{{0, 0}, {59, 0}, {60, 1}, {121, 2}}
	for _, c := range cases {
		if got := e.Of(c.t); got != c.want {
			t.Errorf("Of(%d) = %d; want %d", c.t, got, c.want)
		}
	}
	if (Epoch{Length: 0}).Of(12345) != 0 {
		t.Error("unbounded epoch must always be 0")
	}
}

func TestClock(t *testing.T) {
	c := NewClock(10)
	if c.Started() {
		t.Error("fresh clock claims started")
	}
	e, rolled := c.Advance(3)
	if e != 0 || rolled {
		t.Fatalf("first Advance = %d, %v", e, rolled)
	}
	if e, rolled = c.Advance(9); e != 0 || rolled {
		t.Fatalf("same-epoch Advance = %d, %v", e, rolled)
	}
	if e, rolled = c.Advance(10); e != 1 || !rolled {
		t.Fatalf("boundary Advance = %d, %v", e, rolled)
	}
	if e, rolled = c.Advance(35); e != 3 || !rolled {
		t.Fatalf("skip Advance = %d, %v", e, rolled)
	}
	if c.Current() != 3 {
		t.Fatalf("Current = %d", c.Current())
	}
}

func TestGroupKey(t *testing.T) {
	rec := mkRec(0, 10, 20, 30, 40)
	if got := GroupKey(attr.MustParseSet("AC"), rec); got != "10|30" {
		t.Errorf("GroupKey = %q", got)
	}
	if got := GroupKey(attr.MustParseSet("B"), rec); got != "20" {
		t.Errorf("GroupKey = %q", got)
	}
}

func TestBinaryTraceRoundTrip(t *testing.T) {
	schema := MustSchema(3)
	recs := []Record{
		mkRec(0, 1, 2, 3),
		mkRec(7, 4294967295, 0, 42),
		mkRec(100, 5, 6, 7),
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, schema, recs); err != nil {
		t.Fatal(err)
	}
	gotSchema, got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotSchema.NumAttrs != 3 {
		t.Fatalf("schema round trip: %d attrs", gotSchema.NumAttrs)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records; want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Time != recs[i].Time {
			t.Fatalf("record %d time mismatch", i)
		}
		for j := range recs[i].Attrs {
			if got[i].Attrs[j] != recs[i].Attrs[j] {
				t.Fatalf("record %d attr %d mismatch", i, j)
			}
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, _, err := ReadTrace(strings.NewReader("BOGUS-HEADER")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	// Valid header, truncated body.
	schema := MustSchema(2)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, schema, []Record{mkRec(1, 2, 3)}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestWriteTraceRejectsBadRecord(t *testing.T) {
	schema := MustSchema(2)
	var buf bytes.Buffer
	err := WriteTrace(&buf, schema, []Record{mkRec(0, 1, 2, 3)})
	if err == nil {
		t.Error("record/schema arity mismatch accepted")
	}
}

func TestTextTraceRoundTrip(t *testing.T) {
	schema := MustSchema(2)
	recs := []Record{mkRec(0, 1, 2), mkRec(60, 3, 4)}
	var buf bytes.Buffer
	if err := WriteTextTrace(&buf, schema, recs); err != nil {
		t.Fatal(err)
	}
	gotSchema, got, err := ReadTextTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotSchema.NumAttrs != 2 || len(got) != 2 {
		t.Fatalf("round trip: %d attrs, %d recs", gotSchema.NumAttrs, len(got))
	}
	if got[1].Time != 60 || got[1].Attrs[0] != 3 {
		t.Fatalf("record mismatch: %+v", got[1])
	}
}

func TestTextTraceParsing(t *testing.T) {
	in := "# comment\n\n 1, 2, 3 \n4,5,6\n"
	schema, recs, err := ReadTextTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if schema.NumAttrs != 2 || len(recs) != 2 {
		t.Fatalf("parsed %d attrs, %d recs", schema.NumAttrs, len(recs))
	}
	bad := []string{
		"1,2,3\n1,2\n",     // arity change
		"abc,2,3\n",        // non-numeric attr
		"1,2,xyz\n",        // non-numeric timestamp
		"5\n",              // too few fields
		"# only comment\n", // no data at all
	}
	for _, b := range bad {
		if _, _, err := ReadTextTrace(strings.NewReader(b)); err == nil {
			t.Errorf("bad input %q accepted", b)
		}
	}
}

// Property: binary trace encoding round-trips arbitrary records.
func TestBinaryTraceProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		const arity = 4
		schema := MustSchema(arity)
		var recs []Record
		for i := 0; i+arity < len(vals); i += arity + 1 {
			recs = append(recs, Record{
				Attrs: vals[i : i+arity],
				Time:  vals[i+arity],
			})
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, schema, recs); err != nil {
			return false
		}
		_, got, err := ReadTrace(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i].Time != recs[i].Time {
				return false
			}
			for j := range recs[i].Attrs {
				if got[i].Attrs[j] != recs[i].Attrs[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
