package stream

// Column-major record batches: the native in-flight representation of the
// columnar execution pipeline. A ColumnBatch holds one slice per record
// attribute plus a timestamp column, so every downstream consumer — the
// shard router's hash/scatter passes, the LFTA's batch probe setup, the
// delta-run construction — reads each attribute as a stride-1 stream
// instead of striding across record structs. Sources that can decode
// straight into columns implement ColumnSource; ReadColumns transposes
// through Next for the rest, so the representation is universal even when
// the fast path is not.

// ColumnBatchLen is the standard capacity (in records) of a recycled
// ColumnBatch: large enough to amortize per-batch dispatch, small enough
// that a full batch of a few attribute columns stays L1/L2-resident
// while it is being partitioned.
const ColumnBatchLen = 1024

// ColumnBatch is a column-major run of records: Cols[a][i] is attribute a
// of record i, Time[i] its timestamp. All attribute columns have equal
// length; Time is either the same length or empty (runs whose epoch is
// carried out of band, e.g. sealed shard runs, drop the timestamp
// column). The zero value is ready for Reset.
type ColumnBatch struct {
	Cols [][]uint32
	Time []uint32

	// Sel is the batch's selection vector when a vectorized WHERE has
	// run over it (selvec.Bitmap layout: bit j of word w covers record
	// w*64+j, dead tail bits zero). Empty means no selection has been
	// computed — every record is live. Producers that fill it pass the
	// batch down by selection instead of compacting survivors.
	Sel []uint64
}

// Len returns the number of records in the batch.
func (b *ColumnBatch) Len() int {
	if len(b.Cols) == 0 {
		return len(b.Time)
	}
	return len(b.Cols[0])
}

// Width returns the number of attribute columns.
func (b *ColumnBatch) Width() int { return len(b.Cols) }

// Reset empties the batch and sets its width, retaining all column
// storage (including that of columns hidden by a narrower width) so a
// recycled batch refills without allocating.
func (b *ColumnBatch) Reset(width int) {
	if cap(b.Cols) >= width {
		b.Cols = b.Cols[:width]
	} else {
		b.Cols = append(b.Cols[:cap(b.Cols)], make([][]uint32, width-cap(b.Cols))...)
	}
	for a := range b.Cols {
		b.Cols[a] = b.Cols[a][:0]
	}
	b.Time = b.Time[:0]
	b.Sel = b.Sel[:0]
}

// Append adds one record to the batch. attrs must have exactly Width()
// values.
func (b *ColumnBatch) Append(attrs []uint32, t uint32) {
	for a := range b.Cols {
		b.Cols[a] = append(b.Cols[a], attrs[a])
	}
	b.Time = append(b.Time, t)
}

// Extend grows every attribute column by n records (contents
// unspecified) and returns the previous length — the base index a
// scatter pass writes from. The timestamp column is not extended.
func (b *ColumnBatch) Extend(n int) int {
	base := b.Len()
	need := base + n
	for a := range b.Cols {
		col := b.Cols[a]
		if cap(col) < need {
			grown := make([]uint32, len(col), max(need, 2*cap(col)))
			copy(grown, col)
			col = grown
		}
		b.Cols[a] = col[:need]
	}
	return base
}

// Row gathers record i's attributes into dst (reused when large enough)
// and returns it — the record-major compatibility view.
func (b *ColumnBatch) Row(i int, dst []uint32) []uint32 {
	dst = dst[:0]
	for a := range b.Cols {
		dst = append(dst, b.Cols[a][i])
	}
	return dst
}

// ColumnPool is a freelist of ColumnBatches for single-goroutine reuse
// cycles (the engine's staging, test fixtures). Cross-goroutine recycling
// — the shard pipeline — runs batches through SPSC rings instead.
type ColumnPool struct {
	free []*ColumnBatch
}

// Get returns a batch reset to the given width.
func (p *ColumnPool) Get(width int) *ColumnBatch {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		b.Reset(width)
		return b
	}
	b := &ColumnBatch{}
	b.Reset(width)
	return b
}

// Put returns a batch to the freelist.
func (p *ColumnPool) Put(b *ColumnBatch) {
	if b != nil {
		p.free = append(p.free, b)
	}
}

// ColumnSource is an optional Source refinement for columnar consumers: a
// source that can decode records directly into a ColumnBatch (an
// in-memory slice, a binary trace block) should implement it, and
// ReadColumns will use it instead of transposing through Next.
type ColumnSource interface {
	Source
	// NextColumns resets dst and fills it with up to limit records,
	// returning how many were written. 0 means the stream is exhausted
	// (check Err); short non-zero returns are allowed.
	NextColumns(dst *ColumnBatch, limit int) int
}

// ReadColumns fills dst with up to limit records from src — via one
// NextColumns call when src implements ColumnSource, otherwise by looping
// Next and transposing — and returns the number of records written.
// 0 means the stream is exhausted. dst is reset first either way.
func ReadColumns(src Source, dst *ColumnBatch, limit int) int {
	if cs, ok := src.(ColumnSource); ok {
		return cs.NextColumns(dst, limit)
	}
	n := 0
	for n < limit {
		r, ok := src.Next()
		if !ok {
			break
		}
		if n == 0 {
			dst.Reset(len(r.Attrs))
		}
		dst.Append(r.Attrs, r.Time)
		n++
	}
	if n == 0 {
		dst.Reset(0)
	}
	return n
}

// NextColumns implements ColumnSource with a per-attribute transpose of
// the backing records: each destination column is filled in one stride-1
// write pass.
func (s *SliceSource) NextColumns(dst *ColumnBatch, limit int) int {
	n := len(s.recs) - s.pos
	if n > limit {
		n = limit
	}
	if n <= 0 {
		dst.Reset(0)
		return 0
	}
	recs := s.recs[s.pos : s.pos+n]
	dst.Reset(len(recs[0].Attrs))
	for a := range dst.Cols {
		col := dst.Cols[a]
		for i := range recs {
			col = append(col, recs[i].Attrs[a])
		}
		dst.Cols[a] = col
	}
	times := dst.Time
	for i := range recs {
		times = append(times, recs[i].Time)
	}
	dst.Time = times
	s.pos += n
	return n
}
