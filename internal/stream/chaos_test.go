package stream

import (
	"errors"
	"testing"
)

func seqRecords(n int, perTick int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Attrs: []uint32{uint32(i)}, Time: uint32(i / perTick)}
	}
	return recs
}

func TestChaosSourceDeterministic(t *testing.T) {
	opts := ChaosOptions{
		Seed:           42,
		RegressEvery:   7,
		RegressBy:      3,
		DuplicateEvery: 11,
		BurstEvery:     13,
		BurstLen:       4,
	}
	collect := func() []Record {
		src := NewChaosSource(NewSliceSource(seqRecords(500, 10)), opts)
		out, err := Collect(src)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("two runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Time != b[i].Time || a[i].Attrs[0] != b[i].Attrs[0] {
			t.Fatalf("record %d differs between identical-seed runs", i)
		}
	}
	// A different seed faults different records.
	opts2 := opts
	opts2.Seed = 43
	c, err := Collect(NewChaosSource(NewSliceSource(seqRecords(500, 10)), opts2))
	if err != nil {
		t.Fatal(err)
	}
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i].Time != c[i].Time {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seed change produced an identical fault pattern")
	}
}

func TestChaosSourceFaults(t *testing.T) {
	t.Run("regressions", func(t *testing.T) {
		src := NewChaosSource(NewSliceSource(seqRecords(100, 1)), ChaosOptions{
			RegressEvery: 10, RegressBy: 5,
		})
		out, _ := Collect(src)
		st := src.Stats()
		if st.Regressed == 0 {
			t.Fatal("no regressions injected")
		}
		backward := 0
		for i := 1; i < len(out); i++ {
			if out[i].Time < out[i-1].Time {
				backward++
			}
		}
		if backward == 0 {
			t.Error("regressions injected but timestamps never moved backwards")
		}
	})

	t.Run("duplicates", func(t *testing.T) {
		src := NewChaosSource(NewSliceSource(seqRecords(100, 10)), ChaosOptions{DuplicateEvery: 10})
		out, _ := Collect(src)
		st := src.Stats()
		if st.Duplicated == 0 {
			t.Fatal("no duplicates injected")
		}
		if uint64(len(out)) != 100+st.Duplicated {
			t.Errorf("emitted %d records; want %d", len(out), 100+st.Duplicated)
		}
		dups := 0
		for i := 1; i < len(out); i++ {
			if out[i].Attrs[0] == out[i-1].Attrs[0] && out[i].Time == out[i-1].Time {
				dups++
			}
		}
		if uint64(dups) != st.Duplicated {
			t.Errorf("found %d adjacent duplicates; stats say %d", dups, st.Duplicated)
		}
	})

	t.Run("bursts", func(t *testing.T) {
		src := NewChaosSource(NewSliceSource(seqRecords(100, 1)), ChaosOptions{
			BurstEvery: 20, BurstLen: 5,
		})
		out, _ := Collect(src)
		st := src.Stats()
		if st.Bursty == 0 {
			t.Fatal("no burst records injected")
		}
		// Bursts pin timestamps: some tick must appear ≥ 6 times in a
		// stream that otherwise has one record per tick.
		byTick := map[uint32]int{}
		for _, r := range out {
			byTick[r.Time]++
		}
		max := 0
		for _, n := range byTick {
			if n > max {
				max = n
			}
		}
		if max < 6 {
			t.Errorf("burst pinning produced at most %d records per tick; want ≥ 6", max)
		}
	})

	t.Run("truncation", func(t *testing.T) {
		cut := errors.New("connection lost")
		src := NewChaosSource(NewSliceSource(seqRecords(100, 10)), ChaosOptions{
			TruncateAfter: 37, TruncateErr: cut,
		})
		out, err := Collect(src)
		if len(out) != 37 {
			t.Errorf("truncated stream yielded %d records; want 37", len(out))
		}
		if !errors.Is(err, cut) {
			t.Errorf("Err() = %v; want injected truncation error", err)
		}
		if !src.Stats().Truncated {
			t.Error("stats do not report the truncation")
		}
		// The source stays ended.
		if _, ok := src.Next(); ok {
			t.Error("truncated source yielded another record")
		}
	})
}

func TestClockRegressionGuard(t *testing.T) {
	c := NewClock(10)
	if e, rolled, late := c.Observe(5); e != 0 || rolled || late {
		t.Fatalf("first record: epoch %d rolled %v late %v", e, rolled, late)
	}
	if e, rolled, late := c.Observe(25); e != 2 || !rolled || late {
		t.Fatalf("advance to epoch 2: epoch %d rolled %v late %v", e, rolled, late)
	}
	// A regression into a closed epoch is late and never rolls backwards.
	if e, rolled, late := c.Observe(9); e != 2 || rolled || !late {
		t.Fatalf("regression: epoch %d rolled %v late %v", e, rolled, late)
	}
	if c.Current() != 2 {
		t.Errorf("clock rolled backwards to %d", c.Current())
	}
	if c.Regressions() != 1 {
		t.Errorf("regressions = %d; want 1", c.Regressions())
	}
	// Within-epoch regressions are harmless and not counted.
	if _, rolled, late := c.Observe(21); rolled || late {
		t.Error("within-epoch regression flagged")
	}
	if c.Regressions() != 1 {
		t.Errorf("within-epoch regression counted: %d", c.Regressions())
	}
	// Advance keeps working through the legacy two-value form.
	if e, rolled := c.Advance(31); e != 3 || !rolled {
		t.Errorf("Advance(31) = %d, %v", e, rolled)
	}
	if e, rolled := c.Advance(9); e != 3 || rolled {
		t.Errorf("Advance(9) after epoch 3 = %d, %v; regression must clamp", e, rolled)
	}
}

func TestClockSnapshotRoundTrip(t *testing.T) {
	c := NewClock(10)
	c.Observe(5)
	c.Observe(25)
	c.Observe(3)
	started, cur, regressed := c.Snapshot()
	c2 := NewClock(10)
	c2.RestoreSnapshot(started, cur, regressed)
	if e, rolled, late := c2.Observe(9); e != 2 || rolled || !late {
		t.Errorf("restored clock: Observe(9) = %d, %v, %v", e, rolled, late)
	}
	if c2.Regressions() != 2 {
		t.Errorf("restored regressions = %d; want 2", c2.Regressions())
	}
}

func TestSkipSource(t *testing.T) {
	src := NewSkipSource(NewSliceSource(seqRecords(10, 1)), 4)
	out, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 || out[0].Attrs[0] != 4 {
		t.Errorf("skip(4) yielded %d records starting at %v", len(out), out[0].Attrs)
	}
	// Skipping past the end is empty, not an error.
	empty := NewSkipSource(NewSliceSource(seqRecords(3, 1)), 10)
	if out, err := Collect(empty); err != nil || len(out) != 0 {
		t.Errorf("skip past end: %d records, err %v", len(out), err)
	}
}
