// Package stream provides the tuple and stream substrate the two-level
// DSMS runs on: fixed-schema records with a timestamp, stream sources, and
// epoch bookkeeping.
//
// Records model IP packet headers the way the paper's evaluation does:
// every grouping attribute is a 4-byte value (source IP, destination IP,
// source port, destination port, ...), plus an arrival timestamp used to
// cut the stream into aggregation epochs.
package stream

import (
	"fmt"

	"repro/internal/attr"
)

// Record is one stream tuple. Attrs is indexed by attr.ID and has exactly
// Schema.NumAttrs entries; Time is the arrival timestamp in stream time
// units (seconds in all paper workloads).
type Record struct {
	Attrs []uint32
	Time  uint32
}

// Schema describes the stream relation R: how many grouping attributes a
// record carries and what they are called.
type Schema struct {
	NumAttrs int
	Names    []string // optional long names, e.g. "srcIP"; Names[i] for attr.ID(i)
}

// NewSchema builds a schema with n attributes named A..; long names are
// defaulted to the single-letter names.
func NewSchema(n int) (Schema, error) {
	if n <= 0 || n > attr.MaxAttrs {
		return Schema{}, fmt.Errorf("stream: schema must have 1..%d attributes, got %d", attr.MaxAttrs, n)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = attr.ID(i).Name()
	}
	return Schema{NumAttrs: n, Names: names}, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(n int) Schema {
	s, err := NewSchema(n)
	if err != nil {
		panic(err)
	}
	return s
}

// Universe returns the relation containing all schema attributes.
func (s Schema) Universe() attr.Set {
	var u attr.Set
	for i := 0; i < s.NumAttrs; i++ {
		u = u.Add(attr.ID(i))
	}
	return u
}

// Validate reports an error if the record does not match the schema.
func (s Schema) Validate(r Record) error {
	if len(r.Attrs) != s.NumAttrs {
		return fmt.Errorf("stream: record has %d attributes, schema wants %d", len(r.Attrs), s.NumAttrs)
	}
	return nil
}

// AttrName resolves an attribute's long name.
func (s Schema) AttrName(id attr.ID) string {
	if int(id) < len(s.Names) {
		return s.Names[id]
	}
	return id.Name()
}

// Source yields a stream of records. Next returns false when the stream is
// exhausted; Err reports any error that terminated it early.
type Source interface {
	Next() (Record, bool)
	Err() error
}

// BatchSource is an optional Source refinement for bulk consumers: one
// NextBatch call replaces up to len(dst) Next calls, amortizing the
// interface dispatch that dominates tight ingest loops. A source that
// can hand out records in bulk (an in-memory slice, a decoded trace
// block) should implement it; ReadBatch falls back to Next otherwise.
type BatchSource interface {
	Source
	// NextBatch fills dst from the stream and returns how many records
	// were written. A return of 0 means the stream is exhausted (check
	// Err); short non-zero returns are allowed.
	NextBatch(dst []Record) int
}

// ReadBatch fills dst from src — via one NextBatch call when src
// implements BatchSource, otherwise by looping Next — and returns the
// number of records written. 0 means the stream is exhausted.
func ReadBatch(src Source, dst []Record) int {
	if bs, ok := src.(BatchSource); ok {
		return bs.NextBatch(dst)
	}
	n := 0
	for n < len(dst) {
		r, ok := src.Next()
		if !ok {
			break
		}
		dst[n] = r
		n++
	}
	return n
}

// SliceSource replays an in-memory batch of records; the canonical source
// for experiments, which need repeatable multi-pass access to a dataset.
type SliceSource struct {
	recs []Record
	pos  int
}

// NewSliceSource wraps recs. The records are not copied; callers must not
// mutate them while the source is in use.
func NewSliceSource(recs []Record) *SliceSource {
	return &SliceSource{recs: recs}
}

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Err implements Source; a slice source never fails.
func (s *SliceSource) Err() error { return nil }

// NextBatch implements BatchSource with one bulk copy.
func (s *SliceSource) NextBatch(dst []Record) int {
	n := copy(dst, s.recs[s.pos:])
	s.pos += n
	return n
}

// Reset rewinds the source to the beginning for another pass.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of records in the source.
func (s *SliceSource) Len() int { return len(s.recs) }

// ChanSource adapts a channel of records to the Source interface, for live
// pipelines feeding the engine from another goroutine.
type ChanSource struct {
	C <-chan Record
}

// Next implements Source; it blocks until a record arrives or C is closed.
func (c ChanSource) Next() (Record, bool) {
	r, ok := <-c.C
	return r, ok
}

// Err implements Source.
func (c ChanSource) Err() error { return nil }

// FuncSource adapts a generator function to Source. The function returns
// ok=false when the stream ends.
type FuncSource func() (Record, bool)

// Next implements Source.
func (f FuncSource) Next() (Record, bool) { return f() }

// Err implements Source.
func (f FuncSource) Err() error { return nil }

// Epoch identifies an aggregation window: epoch e covers stream times
// [e*Length, (e+1)*Length).
type Epoch struct {
	Index  uint32
	Length uint32 // in stream time units; 0 means a single unbounded epoch
}

// Of returns the epoch index a timestamp falls into.
func (e Epoch) Of(t uint32) uint32 {
	if e.Length == 0 {
		return 0
	}
	return t / e.Length
}

// Clock tracks epoch boundaries while consuming a stream in arrival order.
// It is the "time/60 as tb" machinery of the paper's queries.
//
// The clock never moves backwards: a timestamp that regresses into an
// already-closed epoch (possible on unordered streams when no
// OrderedSource is configured) is clamped to the current epoch and
// counted in Regressions, instead of rolling the clock back and
// corrupting epoch assignment. Regressions within the current epoch are
// harmless and not counted.
type Clock struct {
	Length    uint32
	started   bool
	cur       uint32
	regressed uint64
}

// NewClock returns a clock cutting the stream into epochs of the given
// length; length 0 means the whole stream is one epoch.
func NewClock(length uint32) *Clock { return &Clock{Length: length} }

// Advance feeds the clock the next record timestamp. It returns the
// epoch index the record belongs to and whether this record starts a new
// epoch (i.e. an end-of-epoch flush of all previous state is due first).
// A timestamp regressing into an earlier epoch reports the current epoch
// with rolled=false; use Observe to detect such late records explicitly.
func (c *Clock) Advance(t uint32) (epoch uint32, rolled bool) {
	epoch, rolled, _ = c.Observe(t)
	return epoch, rolled
}

// Observe is Advance with an explicit lateness verdict: late is true when
// the timestamp falls into an epoch earlier than the current one, in
// which case the record cannot be assigned correctly anymore (its epoch
// has been flushed) and the returned epoch is the clamped current one.
func (c *Clock) Observe(t uint32) (epoch uint32, rolled, late bool) {
	e := Epoch{Length: c.Length}.Of(t)
	if !c.started {
		c.started = true
		c.cur = e
		return e, false, false
	}
	switch {
	case e > c.cur:
		c.cur = e
		return e, true, false
	case e < c.cur:
		c.regressed++
		return c.cur, false, true
	}
	return e, false, false
}

// Regressions returns the number of timestamps observed in epochs earlier
// than the then-current one.
func (c *Clock) Regressions() uint64 { return c.regressed }

// Snapshot captures the clock state for checkpointing.
func (c *Clock) Snapshot() (started bool, cur uint32, regressed uint64) {
	return c.started, c.cur, c.regressed
}

// RestoreSnapshot resets the clock to a snapshot taken by Snapshot.
func (c *Clock) RestoreSnapshot(started bool, cur uint32, regressed uint64) {
	c.started, c.cur, c.regressed = started, cur, regressed
}

// Current returns the epoch the clock is in; valid after the first Advance.
func (c *Clock) Current() uint32 { return c.cur }

// Started reports whether the clock has seen any record.
func (c *Clock) Started() bool { return c.started }

// SkipSource discards the first n records of a source before yielding the
// rest — the resume path for replaying a trace from a checkpoint's stream
// position. The skipped prefix is consumed lazily on the first Next call.
type SkipSource struct {
	src     Source
	n       uint64
	skipped bool
}

// NewSkipSource wraps src, discarding its first n records.
func NewSkipSource(src Source, n uint64) *SkipSource {
	return &SkipSource{src: src, n: n}
}

// Next implements Source.
func (s *SkipSource) Next() (Record, bool) {
	if !s.skipped {
		s.skipped = true
		for i := uint64(0); i < s.n; i++ {
			if _, ok := s.src.Next(); !ok {
				return Record{}, false
			}
		}
	}
	return s.src.Next()
}

// Err implements Source.
func (s *SkipSource) Err() error { return s.src.Err() }

// Collect drains a source into a slice. It is a convenience for tests and
// experiment setup.
func Collect(src Source) ([]Record, error) {
	var out []Record
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, src.Err()
}

// GroupKey renders the projection of a record onto a relation as a
// human-readable key such as "10.0.0.1|443"; used in results and tests.
func GroupKey(rel attr.Set, rec Record) string {
	vals := rel.Project(rec.Attrs, nil)
	out := ""
	for i, v := range vals {
		if i > 0 {
			out += "|"
		}
		out += fmt.Sprint(v)
	}
	return out
}
