package stream

// ChaosSource wraps a Source with deterministic, seedable fault
// injection, so tests can prove the engine degrades gracefully instead of
// assuming a friendly stream. Every fault is driven by record counters
// (optionally phase-shifted by the seed), never by wall-clock time or
// global randomness, so a chaos run replays identically from the same
// seed — which is what lets the chaos suite assert exact expected
// answers for the non-faulty part of the stream.
//
// Supported faults:
//
//   - timestamp regressions: every RegressEvery-th record has its
//     timestamp pulled back by RegressBy time units (clamped at 0),
//     simulating merged capture interfaces with skewed clocks;
//   - duplicates: every DuplicateEvery-th record is emitted twice,
//     simulating at-least-once upstream delivery;
//   - bursts: every BurstEvery-th record pins the timestamps of the next
//     BurstLen records to its own, simulating a line-rate burst that
//     floods a single stream time unit (the case overload shedding
//     exists for);
//   - truncation: after TruncateAfter records the stream ends,
//     reporting TruncateErr from Err — a mid-epoch connection loss.
type ChaosSource struct {
	src  Source
	opts ChaosOptions

	emitted   uint64 // records drawn from the underlying source
	burstLeft int
	burstTime uint32
	dup       Record
	dupReady  bool
	truncated bool
	err       error

	stats ChaosStats

	regressPhase, dupPhase, burstPhase uint64
}

// ChaosOptions select which faults to inject. A zero or negative Every
// disables that fault.
type ChaosOptions struct {
	Seed uint64 // phase-shifts the fault counters; same seed = same faults

	RegressEvery int    // every Nth record gets its timestamp pulled back
	RegressBy    uint32 // regression amount in stream time units

	DuplicateEvery int // every Nth record is emitted twice

	BurstEvery int // every Nth record starts a burst
	BurstLen   int // records after the burst head pinned to its timestamp

	TruncateAfter int   // stream ends after N records (0 = never)
	TruncateErr   error // error reported by Err after truncation (may be nil)
}

// ChaosStats count the injected faults.
type ChaosStats struct {
	Emitted    uint64 // records handed to the consumer (duplicates included)
	Regressed  uint64
	Duplicated uint64
	Bursty     uint64 // records whose timestamp was pinned by a burst
	Truncated  bool
}

// NewChaosSource wraps src with the configured faults.
func NewChaosSource(src Source, opts ChaosOptions) *ChaosSource {
	c := &ChaosSource{src: src, opts: opts}
	// Derive per-fault phases from the seed so different seeds fault
	// different records, while any given seed is fully deterministic.
	s := splitmixChaos(opts.Seed)
	if opts.RegressEvery > 0 {
		c.regressPhase = s() % uint64(opts.RegressEvery)
	}
	if opts.DuplicateEvery > 0 {
		c.dupPhase = s() % uint64(opts.DuplicateEvery)
	}
	if opts.BurstEvery > 0 {
		c.burstPhase = s() % uint64(opts.BurstEvery)
	}
	return c
}

// Stats returns the fault counts so far.
func (c *ChaosSource) Stats() ChaosStats { return c.stats }

// Next implements Source.
func (c *ChaosSource) Next() (Record, bool) {
	if c.dupReady {
		c.dupReady = false
		c.stats.Emitted++
		return c.dup, true
	}
	if c.truncated {
		return Record{}, false
	}
	if c.opts.TruncateAfter > 0 && c.emitted >= uint64(c.opts.TruncateAfter) {
		c.truncated = true
		c.stats.Truncated = true
		c.err = c.opts.TruncateErr
		return Record{}, false
	}
	rec, ok := c.src.Next()
	if !ok {
		return Record{}, false
	}
	c.emitted++

	every := func(n int, phase uint64) bool {
		return n > 0 && c.emitted%uint64(n) == phase
	}
	switch {
	case c.burstLeft > 0:
		c.burstLeft--
		rec.Time = c.burstTime
		c.stats.Bursty++
	case every(c.opts.BurstEvery, c.burstPhase):
		c.burstTime = rec.Time
		c.burstLeft = c.opts.BurstLen
	}
	if every(c.opts.RegressEvery, c.regressPhase) {
		if rec.Time >= c.opts.RegressBy {
			rec.Time -= c.opts.RegressBy
		} else {
			rec.Time = 0
		}
		c.stats.Regressed++
	}
	if every(c.opts.DuplicateEvery, c.dupPhase) {
		// The duplicate must be an independent copy: consumers may retain
		// or mutate the record's attribute slice.
		c.dup = Record{Attrs: append([]uint32(nil), rec.Attrs...), Time: rec.Time}
		c.dupReady = true
		c.stats.Duplicated++
	}
	c.stats.Emitted++
	return rec, true
}

// Err implements Source: the underlying source's error, or the injected
// truncation error once the stream has been cut.
func (c *ChaosSource) Err() error {
	if c.truncated {
		return c.err
	}
	return c.src.Err()
}

// splitmixChaos returns a deterministic generator for fault phases.
func splitmixChaos(seed uint64) func() uint64 {
	x := seed
	return func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}
