package stream

import (
	"container/heap"
)

// OrderedSource re-orders a slightly out-of-order stream (e.g. records
// merged from several capture interfaces) into non-decreasing timestamp
// order using a bounded slack window, so the engine's epoch clock — which
// assumes ordered arrivals, as Gigascope does — sees a well-formed
// stream.
//
// Records are buffered until one with timestamp ≥ watermark + Slack
// arrives; everything at or below the advancing watermark is then
// released in timestamp order. A record older than the watermark at
// arrival is *late*: it cannot be emitted without violating order, so it
// is dropped and counted.
type OrderedSource struct {
	src   Source
	slack uint32

	buf       recHeap
	watermark uint32
	started   bool
	drained   bool
	late      uint64
	err       error
}

// NewOrderedSource wraps src with a reordering window of slack time
// units. Slack 0 passes records through in arrival order, dropping any
// that would move time backwards.
func NewOrderedSource(src Source, slack uint32) *OrderedSource {
	return &OrderedSource{src: src, slack: slack}
}

// Late returns the number of records dropped for arriving beyond the
// reordering window.
func (o *OrderedSource) Late() uint64 { return o.late }

// Next implements Source.
func (o *OrderedSource) Next() (Record, bool) {
	for {
		// Release a buffered record if the watermark already covers it.
		if len(o.buf) > 0 && (o.drained || o.buf[0].Time <= o.watermark) {
			rec := heap.Pop(&o.buf).(Record)
			return rec, true
		}
		if o.drained {
			return Record{}, false
		}
		rec, ok := o.src.Next()
		if !ok {
			o.err = o.src.Err()
			o.drained = true
			continue // release the remaining buffer in order
		}
		if o.started && rec.Time < o.watermark {
			o.late++
			continue
		}
		if !o.started {
			o.started = true
			o.watermark = 0
		}
		heap.Push(&o.buf, rec)
		if rec.Time >= o.slack && rec.Time-o.slack > o.watermark {
			o.watermark = rec.Time - o.slack
		}
	}
}

// Err implements Source.
func (o *OrderedSource) Err() error { return o.err }

// recHeap is a min-heap of records by timestamp.
type recHeap []Record

func (h recHeap) Len() int            { return len(h) }
func (h recHeap) Less(i, j int) bool  { return h[i].Time < h[j].Time }
func (h recHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x interface{}) { *h = append(*h, x.(Record)) }
func (h *recHeap) Pop() interface{} {
	old := *h
	n := len(old)
	rec := old[n-1]
	*h = old[:n-1]
	return rec
}
