package stream

import (
	"bytes"
	"math/rand"
	"testing"
)

// columnTestRecs builds a random fixed-width trace for the equivalence
// tests.
func columnTestRecs(rng *rand.Rand, n, width int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		attrs := make([]uint32, width)
		for a := range attrs {
			attrs[a] = rng.Uint32() % 5000
		}
		recs[i] = Record{Attrs: attrs, Time: uint32(i / 3)}
	}
	return recs
}

// checkColumnsMatch compares one ColumnBatch against the record-major
// batch read from the same stream position.
func checkColumnsMatch(t *testing.T, cb *ColumnBatch, recs []Record) {
	t.Helper()
	if cb.Len() != len(recs) {
		t.Fatalf("columnar batch has %d records, record-major %d", cb.Len(), len(recs))
	}
	for i, rec := range recs {
		if cb.Width() != len(rec.Attrs) {
			t.Fatalf("record %d: columnar width %d, record-major arity %d", i, cb.Width(), len(rec.Attrs))
		}
		for a, v := range rec.Attrs {
			if cb.Cols[a][i] != v {
				t.Fatalf("record %d attr %d: columnar %d, record-major %d", i, a, cb.Cols[a][i], v)
			}
		}
		if cb.Time[i] != rec.Time {
			t.Fatalf("record %d: columnar time %d, record-major %d", i, cb.Time[i], rec.Time)
		}
	}
}

// drainEquivalence pulls both sources to exhaustion with the given
// batch limit, comparing every batch. The two sources must yield the
// same stream.
func drainEquivalence(t *testing.T, colSrc, recSrc Source, limit int) {
	t.Helper()
	var cb ColumnBatch
	recBuf := make([]Record, limit)
	for {
		cn := ReadColumns(colSrc, &cb, limit)
		rn := ReadBatch(recSrc, recBuf[:limit])
		if cn != rn {
			t.Fatalf("limit %d: ReadColumns returned %d records, ReadBatch %d", limit, cn, rn)
		}
		if cn == 0 {
			break
		}
		checkColumnsMatch(t, &cb, recBuf[:rn])
	}
	if ce, re := colSrc.Err(), recSrc.Err(); (ce == nil) != (re == nil) {
		t.Fatalf("limit %d: error mismatch: columnar %v, record-major %v", limit, ce, re)
	}
}

// TestReadColumnsMatchesReadBatchSlice: the SliceSource columnar fast
// path yields exactly the transposed record stream, across batch limits
// that divide the stream evenly and ones that leave a short tail.
func TestReadColumnsMatchesReadBatchSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	recs := columnTestRecs(rng, 3000, 4)
	for _, limit := range []int{1, 7, 256, ColumnBatchLen, 5000} {
		drainEquivalence(t, NewSliceSource(recs), NewSliceSource(recs), limit)
	}
}

// TestReadColumnsMatchesReadBatchTrace: the TraceSource columnar decode
// (block read + per-attribute stride decode) matches the record-major
// decode byte for byte.
func TestReadColumnsMatchesReadBatchTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, width := range []int{1, 3, 8} {
		recs := columnTestRecs(rng, 2500, width)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, MustSchema(width), recs); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		for _, limit := range []int{1, 13, ColumnBatchLen} {
			colSrc, err := NewTraceSource(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			recSrc, err := NewTraceSource(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			drainEquivalence(t, colSrc, recSrc, limit)
		}
	}
}

// plainSource hides a Source's batch interfaces, forcing ReadColumns
// onto its scalar Next-loop transpose fallback.
type plainSource struct{ src Source }

func (p *plainSource) Next() (Record, bool) { return p.src.Next() }
func (p *plainSource) Err() error           { return p.src.Err() }

// TestReadColumnsFallback: a source without NextColumns still fills the
// batch correctly via the Next fallback.
func TestReadColumnsFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	recs := columnTestRecs(rng, 1700, 5)
	for _, limit := range []int{1, 64, ColumnBatchLen} {
		drainEquivalence(t, &plainSource{src: NewSliceSource(recs)}, NewSliceSource(recs), limit)
	}
}

// TestColumnBatchRowRoundTrip: Row gathers exactly what Append
// scattered, and Reset retains backing across width changes.
func TestColumnBatchRowRoundTrip(t *testing.T) {
	var cb ColumnBatch
	cb.Reset(3)
	cb.Append([]uint32{1, 2, 3}, 9)
	cb.Append([]uint32{4, 5, 6}, 10)
	row := cb.Row(1, nil)
	if cb.Time[1] != 10 || len(row) != 3 || row[0] != 4 || row[2] != 6 {
		t.Fatalf("Row(1) = %v (time %d)", row, cb.Time[1])
	}
	// Narrow, then re-widen: the hidden column's storage must come back.
	cb.Reset(1)
	cb.Append([]uint32{7}, 11)
	cb.Reset(3)
	if cb.Width() != 3 || cb.Len() != 0 {
		t.Fatalf("after re-widen: width %d len %d", cb.Width(), cb.Len())
	}
	// A recycled batch must not leak a stale selection vector.
	cb.Sel = append(cb.Sel[:0], ^uint64(0))
	cb.Reset(3)
	if len(cb.Sel) != 0 {
		t.Fatalf("Reset kept stale selection vector of %d words", len(cb.Sel))
	}
}
