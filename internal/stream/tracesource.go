package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// TraceSource reads a binary trace incrementally, implementing Source
// without materializing the whole record batch — the right shape for
// feeding the engine from a pipe or a file larger than memory.
type TraceSource struct {
	r      *bufio.Reader
	closer io.Closer
	schema Schema
	left   uint64
	buf    []byte
	cb     *ColumnBatch // NextBatch's reused columnar decode buffer
	err    error
}

// NewTraceSource wraps a reader positioned at the start of a binary
// trace. The header is consumed immediately so the schema is available
// before the first record.
func NewTraceSource(r io.Reader) (*TraceSource, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	var version, numAttrs uint8
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, version)
	}
	if err := binary.Read(br, binary.LittleEndian, &numAttrs); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	schema, err := NewSchema(int(numAttrs))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	return &TraceSource{
		r:      br,
		schema: schema,
		left:   count,
		buf:    make([]byte, 4*(int(numAttrs)+1)),
	}, nil
}

// OpenTraceSource opens a trace file for incremental reading; Close must
// be called when done (exhausting the source also releases the file).
func OpenTraceSource(path string) (*TraceSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := NewTraceSource(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	src.closer = f
	return src, nil
}

// Schema returns the trace's schema.
func (t *TraceSource) Schema() Schema { return t.schema }

// Remaining returns the number of records not yet read.
func (t *TraceSource) Remaining() uint64 { return t.left }

// Next implements Source. Each returned record owns a fresh attribute
// slice.
func (t *TraceSource) Next() (Record, bool) {
	if t.err != nil || t.left == 0 {
		t.release()
		return Record{}, false
	}
	if _, err := io.ReadFull(t.r, t.buf); err != nil {
		t.err = fmt.Errorf("%w: truncated with %d records left: %v", ErrBadTrace, t.left, err)
		t.release()
		return Record{}, false
	}
	t.left--
	attrs := make([]uint32, t.schema.NumAttrs)
	off := 0
	for i := range attrs {
		attrs[i] = binary.LittleEndian.Uint32(t.buf[off:])
		off += 4
	}
	rec := Record{Attrs: attrs, Time: binary.LittleEndian.Uint32(t.buf[off:])}
	if t.left == 0 {
		t.release()
	}
	return rec, true
}

// NextColumns implements ColumnSource: it reads a block of encoded
// records in one ReadFull and decodes each attribute with a stride-1
// destination pass, skipping the per-record attribute allocation Next
// pays. Truncation behaves exactly like Next: the error is recorded and
// whatever decoded cleanly before it is discarded.
func (t *TraceSource) NextColumns(dst *ColumnBatch, limit int) int {
	w := t.schema.NumAttrs
	dst.Reset(w)
	if t.err != nil || t.left == 0 || limit <= 0 {
		t.release()
		return 0
	}
	n := limit
	if uint64(n) > t.left {
		n = int(t.left)
	}
	rb := 4 * (w + 1)
	need := n * rb
	if cap(t.buf) < need {
		t.buf = make([]byte, need)
	}
	buf := t.buf[:need]
	if _, err := io.ReadFull(t.r, buf); err != nil {
		t.err = fmt.Errorf("%w: truncated with %d records left: %v", ErrBadTrace, t.left, err)
		t.release()
		return 0
	}
	t.left -= uint64(n)
	for a := 0; a < w; a++ {
		col := dst.Cols[a]
		off := 4 * a
		for i := 0; i < n; i++ {
			col = append(col, binary.LittleEndian.Uint32(buf[off:]))
			off += rb
		}
		dst.Cols[a] = col
	}
	times := dst.Time
	off := 4 * w
	for i := 0; i < n; i++ {
		times = append(times, binary.LittleEndian.Uint32(buf[off:]))
		off += rb
	}
	dst.Time = times
	if t.left == 0 {
		t.release()
	}
	return n
}

// NextBatch implements BatchSource as a record-major shim over the
// columnar decode: records are gathered out of a reused ColumnBatch,
// with one attribute arena allocation per batch instead of one per
// record.
func (t *TraceSource) NextBatch(dst []Record) int {
	if t.cb == nil {
		t.cb = &ColumnBatch{}
	}
	n := t.NextColumns(t.cb, len(dst))
	if n == 0 {
		return 0
	}
	w := t.cb.Width()
	arena := make([]uint32, n*w)
	for a := 0; a < w; a++ {
		col := t.cb.Cols[a]
		for i := 0; i < n; i++ {
			arena[i*w+a] = col[i]
		}
	}
	for i := 0; i < n; i++ {
		dst[i] = Record{Attrs: arena[i*w : (i+1)*w : (i+1)*w], Time: t.cb.Time[i]}
	}
	return n
}

// Err implements Source.
func (t *TraceSource) Err() error { return t.err }

// Close releases the underlying file, if any.
func (t *TraceSource) Close() error {
	c := t.closer
	t.closer = nil
	if c != nil {
		return c.Close()
	}
	return nil
}

func (t *TraceSource) release() {
	if t.closer != nil {
		t.closer.Close()
		t.closer = nil
	}
}
