package stream

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeTraceBytes renders a valid binary trace into memory so the tests
// can corrupt specific offsets.
func writeTraceBytes(t *testing.T, n int) []byte {
	t.Helper()
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Attrs: []uint32{uint32(i), uint32(i * 2)}, Time: uint32(i)}
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, MustSchema(2), recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readBytesAsFile(t *testing.T, data []byte) (Schema, []Record, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.magt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return ReadTraceFile(path)
}

// TestReadTraceFileRobustness: corrupt, truncated, and empty trace files
// must produce a clean ErrBadTrace — never a panic, and never a silently
// shortened record set.
func TestReadTraceFileRobustness(t *testing.T) {
	good := writeTraceBytes(t, 50)

	cases := []struct {
		name string
		data []byte
	}{
		{"zero-length", nil},
		{"magic only", []byte("MAGT")},
		{"wrong magic", append([]byte("XXXX"), good[4:]...)},
		{"header cut", good[:6]},
		{"truncated mid-record", good[:len(good)-5]},
		{"truncated at record boundary", good[:len(good)-12]},
		{"bad version", func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 99
			return b
		}()},
		{"zero attrs", func() []byte {
			b := append([]byte(nil), good...)
			b[5] = 0
			return b
		}()},
		{"implausible count", func() []byte {
			b := append([]byte(nil), good...)
			for i := 6; i < 14; i++ {
				b[i] = 0xff
			}
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, recs, err := readBytesAsFile(t, tc.data)
			if err == nil {
				t.Fatalf("accepted (%d records)", len(recs))
			}
			if !errors.Is(err, ErrBadTrace) {
				t.Errorf("err = %v; want ErrBadTrace", err)
			}
			if len(recs) != 0 {
				t.Errorf("returned %d records alongside the error", len(recs))
			}
		})
	}

	// The uncorrupted trace still reads in full.
	schema, recs, err := readBytesAsFile(t, good)
	if err != nil {
		t.Fatal(err)
	}
	if schema.NumAttrs != 2 || len(recs) != 50 {
		t.Errorf("good trace read as %d attrs, %d records", schema.NumAttrs, len(recs))
	}
}

// TestReadTraceFileMissing: a nonexistent path reports the OS error, not
// a panic or a bogus empty trace.
func TestReadTraceFileMissing(t *testing.T) {
	_, _, err := ReadTraceFile(filepath.Join(t.TempDir(), "nope.magt"))
	if err == nil {
		t.Fatal("missing file accepted")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("err = %v; want fs not-exist", err)
	}
}

// TestReadTextTraceRobustness mirrors the binary cases for the text
// format.
func TestReadTextTraceRobustness(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"comments only", "# nothing here\n\n# still nothing\n"},
		{"lonely field", "42\n"},
		{"non-numeric attr", "1,x,3\n"},
		{"non-numeric timestamp", "1,2,end\n"},
		{"ragged rows", "1,2,3\n1,2,3,4\n"},
		{"attr overflow", "99999999999,2,3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, recs, err := ReadTextTrace(bytes.NewReader([]byte(tc.data)))
			if err == nil {
				t.Fatalf("accepted (%d records)", len(recs))
			}
			if !errors.Is(err, ErrBadTrace) {
				t.Errorf("err = %v; want ErrBadTrace", err)
			}
		})
	}
}
