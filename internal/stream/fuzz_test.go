package stream

import (
	"bytes"
	"testing"
)

// FuzzReadTrace: arbitrary bytes must never panic the binary trace
// reader, and a valid trace embedded in the corpus must round trip.
func FuzzReadTrace(f *testing.F) {
	var good bytes.Buffer
	if err := WriteTrace(&good, MustSchema(2), []Record{
		{Attrs: []uint32{1, 2}, Time: 3},
		{Attrs: []uint32{4, 5}, Time: 6},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte("MAGT"))
	f.Add([]byte{})
	f.Add([]byte("MAGTxxxxxxxxxxxxxxxxxxxxxxxx"))
	f.Add(good.Bytes()[:len(good.Bytes())-5])                     // truncated mid-record
	f.Add([]byte("MAGT\x01\x02\xff\xff\xff\xff\xff\xff\xff\xff")) // forged huge count
	f.Add([]byte("MAGT\x01\x00\x01\x00\x00\x00\x00\x00\x00\x00")) // zero-attr schema
	f.Fuzz(func(t *testing.T, data []byte) {
		schema, recs, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must re-encode and re-parse identically.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, schema, recs); err != nil {
			t.Fatalf("accepted trace cannot re-encode: %v", err)
		}
		schema2, recs2, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if schema2.NumAttrs != schema.NumAttrs || len(recs2) != len(recs) {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzReadTextTrace: the text parser must never panic.
func FuzzReadTextTrace(f *testing.F) {
	f.Add("1,2,3\n4,5,6\n")
	f.Add("# comment\n\n 1, 2, 3 \n")
	f.Add("a,b,c\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		schema, recs, err := ReadTextTrace(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTextTrace(&buf, schema, recs); err != nil {
			t.Fatalf("accepted text trace cannot re-encode: %v", err)
		}
	})
}
