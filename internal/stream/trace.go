package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Trace file support. Two interchangeable encodings of a packet trace:
//
//   - binary: a compact little-endian format ("MAGT" magic) used by
//     cmd/magggen and cmd/maggd for the large synthetic traces;
//   - text: one record per line, comma-separated attribute values followed
//     by the timestamp, with '#' comments — convenient for hand-written
//     fixtures and for importing data from other tools.

const (
	traceMagic   = "MAGT"
	traceVersion = 1
)

var (
	// ErrBadTrace reports a malformed trace file.
	ErrBadTrace = errors.New("stream: malformed trace")
)

// WriteTrace writes records in the binary trace format.
func WriteTrace(w io.Writer, schema Schema, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	hdr := []any{uint8(traceVersion), uint8(schema.NumAttrs), uint64(len(recs))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 4*(schema.NumAttrs+1))
	for i := range recs {
		r := &recs[i]
		if err := schema.Validate(*r); err != nil {
			return err
		}
		off := 0
		for _, v := range r.Attrs {
			binary.LittleEndian.PutUint32(buf[off:], v)
			off += 4
		}
		binary.LittleEndian.PutUint32(buf[off:], r.Time)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace reads a binary trace written by WriteTrace.
func ReadTrace(r io.Reader) (Schema, []Record, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return Schema{}, nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(magic) != traceMagic {
		return Schema{}, nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	var version, numAttrs uint8
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return Schema{}, nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if version != traceVersion {
		return Schema{}, nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, version)
	}
	if err := binary.Read(br, binary.LittleEndian, &numAttrs); err != nil {
		return Schema{}, nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return Schema{}, nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	schema, err := NewSchema(int(numAttrs))
	if err != nil {
		return Schema{}, nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	const maxReasonable = 1 << 30
	if count > maxReasonable {
		return Schema{}, nil, fmt.Errorf("%w: implausible record count %d", ErrBadTrace, count)
	}
	// The header count is untrusted input: cap the preallocation so a
	// forged header cannot demand gigabytes up front; a truncated body is
	// detected by the read loop regardless.
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	recs := make([]Record, 0, prealloc)
	buf := make([]byte, 4*(int(numAttrs)+1))
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return Schema{}, nil, fmt.Errorf("%w: truncated at record %d: %v", ErrBadTrace, i, err)
		}
		attrs := make([]uint32, numAttrs)
		off := 0
		for j := range attrs {
			attrs[j] = binary.LittleEndian.Uint32(buf[off:])
			off += 4
		}
		recs = append(recs, Record{Attrs: attrs, Time: binary.LittleEndian.Uint32(buf[off:])})
	}
	return schema, recs, nil
}

// WriteTraceFile writes a binary trace to the named file.
func WriteTraceFile(path string, schema Schema, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, schema, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile reads a binary trace from the named file.
func ReadTraceFile(path string) (Schema, []Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return Schema{}, nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// WriteTextTrace writes records in the text format: a header comment, then
// one "v1,v2,...,vn,time" line per record.
func WriteTextTrace(w io.Writer, schema Schema, recs []Record) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# magg text trace: %d attributes (%s), %d records\n",
		schema.NumAttrs, strings.Join(schema.Names, ","), len(recs))
	for i := range recs {
		r := &recs[i]
		if err := schema.Validate(*r); err != nil {
			return err
		}
		for _, v := range r.Attrs {
			fmt.Fprintf(bw, "%d,", v)
		}
		fmt.Fprintf(bw, "%d\n", r.Time)
	}
	return bw.Flush()
}

// ReadTextTrace parses the text format. The schema is inferred from the
// first data line: all fields but the last are attributes.
func ReadTextTrace(r io.Reader) (Schema, []Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var (
		schema Schema
		recs   []Record
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return Schema{}, nil, fmt.Errorf("%w: line %d: need at least one attribute and a timestamp", ErrBadTrace, lineNo)
		}
		if schema.NumAttrs == 0 {
			s, err := NewSchema(len(fields) - 1)
			if err != nil {
				return Schema{}, nil, fmt.Errorf("%w: line %d: %v", ErrBadTrace, lineNo, err)
			}
			schema = s
		} else if len(fields)-1 != schema.NumAttrs {
			return Schema{}, nil, fmt.Errorf("%w: line %d: %d attributes, expected %d", ErrBadTrace, lineNo, len(fields)-1, schema.NumAttrs)
		}
		attrs := make([]uint32, schema.NumAttrs)
		for i := 0; i < schema.NumAttrs; i++ {
			v, err := strconv.ParseUint(strings.TrimSpace(fields[i]), 10, 32)
			if err != nil {
				return Schema{}, nil, fmt.Errorf("%w: line %d field %d: %v", ErrBadTrace, lineNo, i+1, err)
			}
			attrs[i] = uint32(v)
		}
		ts, err := strconv.ParseUint(strings.TrimSpace(fields[len(fields)-1]), 10, 32)
		if err != nil {
			return Schema{}, nil, fmt.Errorf("%w: line %d timestamp: %v", ErrBadTrace, lineNo, err)
		}
		recs = append(recs, Record{Attrs: attrs, Time: uint32(ts)})
	}
	if err := sc.Err(); err != nil {
		return Schema{}, nil, err
	}
	if schema.NumAttrs == 0 {
		return Schema{}, nil, fmt.Errorf("%w: no records", ErrBadTrace)
	}
	return schema, recs, nil
}
