package hfta

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/attr"
)

// packKey packs vals through whichever codec variant the aggregator would
// use for the arity, and unpackKey reverses it — the round-trip under test.
func packUnpack(vals []uint32) []uint32 {
	arity := len(vals)
	switch {
	case arity <= smallArity:
		return unpackSmall(packSmall(vals), arity, nil)
	case arity <= wideArity:
		k := packWide(vals)
		return append([]uint32(nil), k[:arity]...)
	default:
		k := packJumbo(vals)
		return append([]uint32(nil), k[:arity]...)
	}
}

func TestKeyCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	boundaries := []uint32{0, 1, math.MaxUint32, math.MaxUint32 - 1, 1 << 31, 255, 256}
	for arity := 1; arity <= wideArity; arity++ {
		// Boundary patterns: every position cycles through the boundary
		// values, plus random fills.
		for trial := 0; trial < 64; trial++ {
			vals := make([]uint32, arity)
			for i := range vals {
				if trial < len(boundaries) {
					vals[i] = boundaries[(trial+i)%len(boundaries)]
				} else {
					vals[i] = rng.Uint32()
				}
			}
			got := packUnpack(vals)
			if len(got) != arity {
				t.Fatalf("arity %d: round-trip length %d", arity, len(got))
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("arity %d: round-trip %v -> %v", arity, vals, got)
				}
			}
		}
	}
}

func TestKeyCodecJumboRoundTrip(t *testing.T) {
	// The defensive wide-arity fallback must round-trip too.
	rng := rand.New(rand.NewSource(72))
	for arity := wideArity + 1; arity <= attr.MaxAttrs; arity += 5 {
		vals := make([]uint32, arity)
		for i := range vals {
			vals[i] = rng.Uint32()
		}
		vals[0], vals[arity-1] = 0, math.MaxUint32
		got := packUnpack(vals)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("arity %d: round-trip mismatch at %d", arity, i)
			}
		}
	}
}

func TestKeyCodecDistinct(t *testing.T) {
	// Distinct keys must pack to distinct map keys (injectivity), including
	// pairs that collided under naive packings: (0,1) vs (1,0), values
	// straddling the 32-bit word boundary, etc.
	pairs := [][2][]uint32{
		{{0, 1}, {1, 0}},
		{{0, math.MaxUint32}, {1, 0}},
		{{math.MaxUint32, 0}, {0, math.MaxUint32}},
		{{1, 2, 3}, {3, 2, 1}},
		{{0, 0, 0, 0, 0, 0, 0, 1}, {1, 0, 0, 0, 0, 0, 0, 0}},
	}
	for _, p := range pairs {
		a, b := p[0], p[1]
		if len(a) <= smallArity {
			if packSmall(a) == packSmall(b) {
				t.Errorf("packSmall(%v) == packSmall(%v)", a, b)
			}
		} else {
			if packWide(a) == packWide(b) {
				t.Errorf("packWide(%v) == packWide(%v)", a, b)
			}
		}
	}
}

func TestKeyOrderMatchesLexicographic(t *testing.T) {
	// packSmall's numeric order must equal lessKeys' lexicographic order,
	// since Rows sorts decoded keys but the old string codec sorted byte-
	// wise; 256 vs 1 is exactly the case little-endian byte order got wrong.
	cases := [][2][]uint32{
		{{1}, {256}},
		{{255}, {256}},
		{{0, math.MaxUint32}, {1, 0}},
		{{7, 8}, {7, 9}},
	}
	for _, c := range cases {
		lo, hi := c[0], c[1]
		if !lessKeys(lo, hi) {
			t.Errorf("lessKeys(%v, %v) = false", lo, hi)
		}
		if packSmall(lo) >= packSmall(hi) {
			t.Errorf("packSmall order disagrees for %v < %v", lo, hi)
		}
	}
}
