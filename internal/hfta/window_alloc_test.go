package hfta

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/lfta"
)

// TestComposerSteadyStateAllocs gates the composer's recycling: with
// results handed back via Recycle, steady-state pane close + window
// composition must not rebuild its storage per op. The fixture is
// sketchless on purpose — the sketch path's remaining allocations are
// sketch.DecodePartial building fresh partials per blob, which pooling
// at this layer cannot remove. What legitimately remains here is the
// per-new-group map-key string each pane insert interns (inherent to
// map[string] storage) plus the CloseThrough result slice, so the bound
// is a small multiple of the group count rather than the thousands of
// allocations the unpooled composer paid per op.
func TestComposerSteadyStateAllocs(t *testing.T) {
	const (
		groups    = 64
		templates = 4
	)
	queries := []attr.Set{attr.MustParseSet("AB")}
	comp, err := NewComposer(WindowSpec{Size: 4, Slide: 2}, queries, lfta.CountStar, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pane templates are safe to re-feed: keys are unique within a pane,
	// so the composer stores the agg slices without mutating them and
	// drops them on evict.
	tmpl := make([][]PaneInput, templates)
	for ti := range tmpl {
		in := PaneInput{Rel: queries[0]}
		for g := 0; g < groups; g++ {
			in.Rows = append(in.Rows, Row{
				Rel:  queries[0],
				Key:  []uint32{uint32(g), uint32(g * 7)},
				Aggs: []int64{int64(g + ti + 1)},
			})
		}
		tmpl[ti] = []PaneInput{in}
	}
	epoch := uint32(0)
	run := func() {
		comp.ClosePane(epoch, PaneStats{Offered: groups, Processed: groups}, tmpl[int(epoch)%templates])
		for _, res := range comp.CloseThrough(int64(epoch)) {
			comp.Recycle(res)
		}
		epoch++
	}
	// Warm the freelists: the first few ops stock the pane, accumulator,
	// and row pools.
	for i := 0; i < 16; i++ {
		run()
	}
	avg := testing.AllocsPerRun(200, run)
	// groups map-key strings per pane insert, plus slack for the result
	// slice and map internals.
	const maxAllocs = 2 * groups
	if avg > maxAllocs {
		t.Errorf("steady-state composer op averaged %.1f allocs, want ≤ %d", avg, maxAllocs)
	}
}
