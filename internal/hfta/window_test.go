package hfta

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/attr"
	"repro/internal/hashtab"
	"repro/internal/lfta"
	"repro/internal/sketch"
	"repro/internal/stream"
)

func TestPackKeyRoundTrip(t *testing.T) {
	for _, key := range [][]uint32{{}, {0}, {7}, {1, 2}, {0xFFFFFFFF, 0, 42}, {9, 9, 9, 9, 9}} {
		got := UnpackKey(PackKey(key))
		if len(got) != len(key) {
			t.Fatalf("arity %d became %d", len(key), len(got))
		}
		for i := range key {
			if got[i] != key[i] {
				t.Fatalf("key %v round-tripped to %v", key, got)
			}
		}
	}
	// Packed byte order must equal per-attribute numeric order.
	a, b := PackKey([]uint32{1, 500}), PackKey([]uint32{2, 3})
	if !(a < b) {
		t.Fatal("packed order does not follow attribute order")
	}
	if lessKeys([]uint32{1, 500}, []uint32{2, 3}) != (a < b) {
		t.Fatal("PackKey order disagrees with lessKeys")
	}
}

// feedPanes drives a composer the way the engine does — one pane per
// observed epoch, exact rows via per-epoch grouping, sketch partials per
// group — and returns everything emitted (steady closes plus CloseAll).
func feedPanes(t *testing.T, c *Composer, recs []stream.Record, queries []attr.Set, aggs []lfta.AggSpec, saggs []sketch.Agg, epochLen uint32) []WindowResult {
	t.Helper()
	clock := &stream.Clock{Length: epochLen}
	type gstate struct {
		rows map[string][]int64
		sk   map[string]*sketch.Partial
	}
	cur := map[attr.Set]*gstate{}
	var stats PaneStats
	var results []WindowResult
	var keyBuf []uint32

	closeEpoch := func(epoch uint32) {
		var inputs []PaneInput
		for _, q := range queries {
			gs := cur[q]
			if gs == nil {
				continue
			}
			in := PaneInput{Rel: q, Sketches: map[string][]byte{}}
			for k, slots := range gs.rows {
				in.Rows = append(in.Rows, Row{Rel: q, Epoch: epoch, Key: UnpackKey(k), Aggs: slots})
			}
			for k, p := range gs.sk {
				in.Sketches[k] = p.AppendBinary(nil)
			}
			inputs = append(inputs, in)
		}
		c.ClosePane(epoch, stats, inputs)
		cur = map[attr.Set]*gstate{}
		stats = PaneStats{}
		_, now, _ := clock.Snapshot()
		if now > epoch {
			results = append(results, c.CloseThrough(int64(now)-1)...)
		}
	}

	for _, rec := range recs {
		_, prev, _ := clock.Snapshot()
		started := clockStarted(clock)
		_, rolled, late := clock.Observe(rec.Time)
		if started && rolled {
			closeEpoch(prev)
		}
		stats.Offered++
		if late {
			stats.Late++
			continue
		}
		stats.Processed++
		for _, q := range queries {
			gs := cur[q]
			if gs == nil {
				gs = &gstate{rows: map[string][]int64{}, sk: map[string]*sketch.Partial{}}
				cur[q] = gs
			}
			keyBuf = q.Project(rec.Attrs, keyBuf)
			k := PackKey(keyBuf)
			slots := gs.rows[k]
			if slots == nil {
				slots = identities(aggs)
				gs.rows[k] = slots
			}
			for j, spec := range aggs {
				d := int64(1)
				if spec.Input >= 0 {
					d = int64(rec.Attrs[spec.Input])
				}
				slots[j] = spec.Op.Combine(slots[j], d)
			}
			if len(saggs) > 0 {
				p := gs.sk[k]
				if p == nil {
					p, _ = sketch.NewPartial(saggs, 0, 0)
					gs.sk[k] = p
				}
				p.Observe(rec.Attrs)
			}
		}
	}
	if clockStarted(clock) {
		_, now, _ := clock.Snapshot()
		closeEpoch(now)
	}
	results = append(results, c.CloseAll()...)
	return results
}

func clockStarted(c *stream.Clock) bool {
	started, _, _ := c.Snapshot()
	return started
}

func windowRecords(seed int64, n int, maxTime uint32) []stream.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]stream.Record, n)
	t := uint32(0)
	for i := range recs {
		if rng.Intn(4) == 0 {
			t += uint32(rng.Intn(7))
		}
		if rng.Intn(50) == 0 {
			t += uint32(rng.Intn(40)) // epoch gaps
		}
		if t > maxTime {
			t = maxTime
		}
		at := t
		if rng.Intn(20) == 0 && at > 25 {
			at -= uint32(rng.Intn(25)) // regressions, some crossing epochs
		}
		recs[i] = stream.Record{
			Attrs: []uint32{uint32(rng.Intn(4)), uint32(rng.Intn(1000)), uint32(rng.Intn(5000)), uint32(rng.Intn(3))},
			Time:  at,
		}
	}
	return recs
}

// TestComposerMatchesOracle drives the composer pane-by-pane over a
// (size, slide) grid and checks every emitted window — ledger, exact
// rows, HLL estimates — equals the brute-force recompute. T-digest
// estimates are checked by rank error against the exact value sets.
func TestComposerMatchesOracle(t *testing.T) {
	queries := []attr.Set{attr.MustParseSet("A"), attr.MustParseSet("AD")}
	aggs := []lfta.AggSpec{
		{Op: hashtab.Sum, Input: -1},
		{Op: hashtab.Sum, Input: 1},
		{Op: hashtab.Min, Input: 2},
		{Op: hashtab.Max, Input: 2},
	}
	saggs := []sketch.Agg{
		{Kind: sketch.Distinct, Input: 1},
		{Kind: sketch.Quantile, Input: 2, Q: 0.5},
		{Kind: sketch.Quantile, Input: 2, Q: 0.95},
	}
	const epochLen = 10
	grid := []WindowSpec{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {4, 4}, {2, 3}}
	for _, win := range grid {
		recs := windowRecords(int64(win.Size)*100+int64(win.Slide), 6000, 400)
		c, err := NewComposer(win, queries, aggs, saggs, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := feedPanes(t, c, recs, queries, aggs, saggs, epochLen)
		want := WindowOracle(recs, queries, aggs, saggs, 0, 0, epochLen, win)
		compareWindows(t, win, got, want)
		if c.PaneCount() != 0 {
			t.Errorf("win %v: %d panes left after CloseAll", win, c.PaneCount())
		}
	}
}

func compareWindows(t *testing.T, win WindowSpec, got []WindowResult, want []OracleWindow) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("win %v: %d windows, oracle has %d", win, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Ledger != w.Ledger {
			t.Fatalf("win %v window %d: ledger %+v, oracle %+v", win, i, g.Ledger, w.Ledger)
		}
		if st := g.Ledger.Stats; st.Offered != st.Processed+st.Dropped+st.Late {
			t.Fatalf("win %v window %d: ledger identity broken: %+v", win, i, st)
		}
		if len(g.Rows) != len(w.Rows) {
			t.Fatalf("win %v window %d: %d rows, oracle %d", win, i, len(g.Rows), len(w.Rows))
		}
		for j := range g.Rows {
			gr, wr := g.Rows[j], w.Rows[j]
			if gr.Rel != wr.Rel || gr.Window != wr.Window || gr.Start != wr.Start || gr.End != wr.End ||
				!reflect.DeepEqual(gr.Key, wr.Key) || !reflect.DeepEqual(gr.Aggs, wr.Aggs) {
				t.Fatalf("win %v window %d row %d:\n got %+v\nwant %+v", win, i, j, gr, wr)
			}
			for s := range gr.Sketch {
				if wr.ExactDistinct[s] >= 0 {
					// HLL: pane-merged must equal direct-fed bitwise.
					if gr.Sketch[s] != wr.Sketch[s] {
						t.Fatalf("win %v window %d row %d sketch %d: %v != oracle %v", win, i, j, s, gr.Sketch[s], wr.Sketch[s])
					}
					continue
				}
				// t-digest: engine estimate must sit within rank
				// tolerance of the exact value set.
				assertRank(t, wr.Values[s], gr.Sketch[s], 0.5, 0.95, s)
			}
		}
	}
}

// assertRank checks est's rank in vals is within tolerance of one of the
// candidate quantiles (the test carries two quantile aggs; slot s picks
// which).
func assertRank(t *testing.T, vals []float64, est float64, q50, q95 float64, slot int) {
	t.Helper()
	if len(vals) == 0 {
		return
	}
	q := q50
	if slot == 2 {
		q = q95
	}
	n := float64(len(vals))
	// The estimate covers a rank interval [lo, hi] when the data holds
	// duplicates: lo = fraction strictly below, hi = fraction ≤ est.
	lo := float64(sort.SearchFloat64s(vals, est)) / n
	hi := float64(sort.Search(len(vals), func(i int) bool { return vals[i] > est })) / n
	// Small windows hold few values, where rank granularity dominates:
	// allow 0.08 + one value's worth of slack.
	tol := 0.08 + 1.0/n
	if q < lo-tol || q > hi+tol {
		t.Fatalf("quantile slot %d: estimate %v covers ranks [%.3f, %.3f], want %.2f ± %.3f (n=%d)", slot, est, lo, hi, q, tol, len(vals))
	}
}

// TestComposerEviction pins the ring bound: after each CloseThrough the
// composer retains no pane older than the oldest live window.
func TestComposerEviction(t *testing.T) {
	queries := []attr.Set{attr.MustParseSet("A")}
	aggs := []lfta.AggSpec{{Op: hashtab.Sum, Input: -1}}
	c, err := NewComposer(WindowSpec{Size: 3, Slide: 2}, queries, aggs, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint32(0); e < 100; e++ {
		c.ClosePane(e, PaneStats{Offered: 1, Processed: 1}, []PaneInput{{
			Rel:  queries[0],
			Rows: []Row{{Rel: queries[0], Epoch: e, Key: []uint32{1}, Aggs: []int64{1}}},
		}})
		c.CloseThrough(int64(e)) // epoch e is final once e+1 starts; harmless here
		for _, ps := range c.SnapshotPanes() {
			if int64(ps.Epoch) < c.Next()*2 {
				t.Fatalf("epoch %d: pane %d survived past live window %d", e, ps.Epoch, c.Next())
			}
		}
		if c.PaneCount() > 4 {
			t.Fatalf("epoch %d: %d panes retained, want ≤ 4", e, c.PaneCount())
		}
	}
}

// TestComposerGapFastForward: a clock jump of ~2^31 epochs must not
// spin per-window, and windows resume correctly after the gap.
func TestComposerGapFastForward(t *testing.T) {
	queries := []attr.Set{attr.MustParseSet("A")}
	aggs := []lfta.AggSpec{{Op: hashtab.Sum, Input: -1}}
	c, err := NewComposer(WindowSpec{Size: 4, Slide: 1}, queries, aggs, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	row := func(e uint32) []PaneInput {
		return []PaneInput{{Rel: queries[0], Rows: []Row{{Rel: queries[0], Epoch: e, Key: []uint32{1}, Aggs: []int64{1}}}}}
	}
	c.ClosePane(5, PaneStats{Offered: 1, Processed: 1}, row(5))
	const far = 1 << 31
	got := c.CloseThrough(far - 1) // a giant jump: everything through epoch far-1 is final
	// Windows overlapping pane 5: indices 2..5 (size 4, slide 1).
	if len(got) != 4 {
		t.Fatalf("%d windows after jump, want 4", len(got))
	}
	for i, r := range got {
		if r.Ledger.Window != uint32(2+i) || r.Ledger.Stats.Processed != 1 {
			t.Fatalf("window %d: %+v", i, r.Ledger)
		}
	}
	if c.PaneCount() != 0 {
		t.Fatalf("%d panes left after jump", c.PaneCount())
	}
	c.ClosePane(far, PaneStats{Offered: 2, Processed: 2}, row(far))
	got = c.CloseAll()
	if len(got) != 4 {
		t.Fatalf("%d windows after gap, want 4", len(got))
	}
	if got[0].Ledger.Start != far-3 || got[3].Ledger.Start != far {
		t.Fatalf("windows after gap span %d..%d", got[0].Ledger.Start, got[3].Ledger.Start)
	}
}

// TestComposerSnapshotRoundTrip: snapshot → restore → snapshot must be
// deeply identical, including sketch blobs byte-for-byte, and a restored
// composer must close the same windows.
func TestComposerSnapshotRoundTrip(t *testing.T) {
	queries := []attr.Set{attr.MustParseSet("A"), attr.MustParseSet("AB")}
	aggs := []lfta.AggSpec{{Op: hashtab.Sum, Input: -1}, {Op: hashtab.Max, Input: 2}}
	saggs := []sketch.Agg{{Kind: sketch.Distinct, Input: 1}, {Kind: sketch.Quantile, Input: 2, Q: 0.9}}
	mk := func() *Composer {
		c, err := NewComposer(WindowSpec{Size: 3, Slide: 1}, queries, aggs, saggs, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := mk()
	rng := rand.New(rand.NewSource(21))
	for e := uint32(0); e < 6; e++ {
		var inputs []PaneInput
		for _, q := range queries {
			in := PaneInput{Rel: q, Sketches: map[string][]byte{}}
			for g := 0; g < 3; g++ {
				key := make([]uint32, q.Size())
				for i := range key {
					key[i] = uint32(g)
				}
				in.Rows = append(in.Rows, Row{Rel: q, Epoch: e, Key: key, Aggs: []int64{int64(rng.Intn(50)), int64(rng.Intn(100))}})
				p, _ := sketch.NewPartial(saggs, 0, 0)
				for n := 0; n < 30; n++ {
					p.Observe([]uint32{uint32(g), rng.Uint32() % 40, rng.Uint32() % 500})
				}
				in.Sketches[PackKey(key)] = p.AppendBinary(nil)
			}
			inputs = append(inputs, in)
		}
		c.ClosePane(e, PaneStats{Offered: 10, Processed: 9, Late: 1}, inputs)
	}
	c.CloseThrough(3) // advance next, evict some panes

	snap := c.SnapshotPanes()
	next := c.Next()
	r := mk()
	if err := r.RestorePanes(next, snap); err != nil {
		t.Fatal(err)
	}
	snap2 := r.SnapshotPanes()
	if !reflect.DeepEqual(snap, snap2) {
		t.Fatal("snapshot changed across restore")
	}
	for i := range snap {
		for j := range snap[i].Rels {
			for k := range snap[i].Rels[j].Sketches {
				if !bytes.Equal(snap[i].Rels[j].Sketches[k].Blob, snap2[i].Rels[j].Sketches[k].Blob) {
					t.Fatal("sketch blob not byte-identical across restore")
				}
			}
		}
	}
	a, b := c.CloseAll(), r.CloseAll()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("restored composer closed different windows")
	}

	// Corrupt restores must be rejected.
	bad := mk()
	if err := bad.RestorePanes(-1, nil); err == nil {
		t.Fatal("negative next accepted")
	}
	if err := bad.RestorePanes(10, snap); err == nil {
		t.Fatal("panes preceding the live window accepted")
	}
	if len(snap) > 0 && len(snap[0].Rels) > 0 && len(snap[0].Rels[0].Sketches) > 0 {
		mangled := make([]PaneSnapshot, len(snap))
		copy(mangled, snap)
		kb := mangled[0].Rels[0].Sketches[0]
		kb.Blob = kb.Blob[:len(kb.Blob)-3]
		rels := make([]PaneRelSnapshot, len(mangled[0].Rels))
		copy(rels, mangled[0].Rels)
		sks := append([]KeyBlob(nil), rels[0].Sketches...)
		sks[0] = kb
		rels[0].Sketches = sks
		mangled[0].Rels = rels
		if err := mk().RestorePanes(next, mangled); err == nil {
			t.Fatal("truncated sketch blob accepted")
		}
	}
}

func TestNewComposerValidation(t *testing.T) {
	q := []attr.Set{attr.MustParseSet("A")}
	aggs := []lfta.AggSpec{{Op: hashtab.Sum, Input: -1}}
	if _, err := NewComposer(WindowSpec{Size: 0, Slide: 1}, q, aggs, nil, 0, 0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewComposer(WindowSpec{Size: 1, Slide: 0}, q, aggs, nil, 0, 0); err == nil {
		t.Fatal("slide 0 accepted")
	}
	if _, err := NewComposer(WindowSpec{Size: 1, Slide: 1}, nil, aggs, nil, 0, 0); err == nil {
		t.Fatal("no queries accepted")
	}
	if _, err := NewComposer(WindowSpec{Size: 1, Slide: 1}, q, aggs, []sketch.Agg{{Kind: 99}}, 0, 0); err == nil {
		t.Fatal("bad sketch kind accepted")
	}
}
