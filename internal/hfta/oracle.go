package hfta

import (
	"sort"

	"repro/internal/attr"
	"repro/internal/lfta"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Brute-force sliding-window oracle: recompute every window from the raw
// record slice with none of the pane machinery, as the ground truth the
// property suite pins the composer against. The oracle models the same
// admission semantics the engine applies — a monotone clock where
// cross-epoch timestamp regressions are Late and never processed — so
// callers feed it the identical (already WHERE-filtered) record sequence
// the engine saw.

// OracleRow is one group's recomputed result for one window.
type OracleRow struct {
	Rel    attr.Set
	Window uint32
	Start  uint32
	End    uint32
	Key    []uint32
	Aggs   []int64
	// Sketch holds the direct-fed sketch estimates (no pane splits),
	// aligned with the sketch agg list. HLL register-max merging is
	// exactly associative, so the engine's pane-merged distinct
	// estimates must equal these bitwise; t-digest entries are the
	// reference approximation, checked via Values rank error instead.
	Sketch []float64
	// ExactDistinct is the true distinct count per sketch agg (-1 for
	// quantile entries).
	ExactDistinct []int64
	// Values holds the exact sorted observed values per quantile sketch
	// agg (nil for distinct entries), for rank-error assertions.
	Values [][]float64
}

// OracleWindow is one recomputed window: ledger plus rows in query
// order, sorted by key within each relation.
type OracleWindow struct {
	Ledger WindowLedger
	Rows   []OracleRow
}

// WindowOracle recomputes every window the composer would emit for the
// record sequence. Windows whose span contains no observed epoch are
// omitted, matching the composer's gap skipping.
func WindowOracle(recs []stream.Record, queries []attr.Set, aggs []lfta.AggSpec, saggs []sketch.Agg, precision uint8, compression float64, epochLen uint32, win WindowSpec) []OracleWindow {
	if precision == 0 {
		precision = sketch.DefaultPrecision
	}
	if compression == 0 {
		compression = sketch.DefaultCompression
	}
	clock := &stream.Clock{Length: epochLen}
	type timed struct {
		rec   stream.Record
		epoch uint32
	}
	var onTime []timed
	stats := map[uint32]*PaneStats{}
	at := func(e uint32) *PaneStats {
		s := stats[e]
		if s == nil {
			s = &PaneStats{}
			stats[e] = s
		}
		return s
	}
	for _, rec := range recs {
		_, _, late := clock.Observe(rec.Time)
		_, cur, _ := clock.Snapshot()
		s := at(cur)
		s.Offered++
		if late {
			s.Late++
			continue
		}
		s.Processed++
		onTime = append(onTime, timed{rec, cur})
	}
	if len(stats) == 0 {
		return nil
	}
	// Candidate windows: every index whose span contains an observed
	// epoch, exactly the composer's emission set.
	windowSet := map[int64]bool{}
	var maxEpoch uint32
	for e := range stats {
		if e > maxEpoch {
			maxEpoch = e
		}
		lo := fastForward(0, int64(e), win)
		for i := lo; win.start(i) <= int64(e); i++ {
			windowSet[i] = true
		}
	}
	indices := make([]int64, 0, len(windowSet))
	for i := range windowSet {
		indices = append(indices, i)
	}
	sort.Slice(indices, func(a, b int) bool { return indices[a] < indices[b] })

	var out []OracleWindow
	for _, i := range indices {
		start, end := win.start(i), win.end(i)
		ow := OracleWindow{Ledger: WindowLedger{Window: uint32(i), Start: uint32(start), End: uint32(end)}}
		for e := start; e <= end; e++ {
			if s := stats[uint32(e)]; s != nil {
				ow.Ledger.Stats.add(*s)
			}
		}
		type acc struct {
			aggs     []int64
			sk       *sketch.Partial
			distinct []map[uint32]bool
			values   [][]float64
		}
		var keyBuf []uint32
		for _, q := range queries {
			groups := map[string]*acc{}
			for _, tr := range onTime {
				if int64(tr.epoch) < start || int64(tr.epoch) > end {
					continue
				}
				keyBuf = q.Project(tr.rec.Attrs, keyBuf)
				k := PackKey(keyBuf)
				a := groups[k]
				if a == nil {
					a = &acc{aggs: identities(aggs)}
					if len(saggs) > 0 {
						a.sk, _ = sketch.NewPartial(saggs, precision, compression)
						a.distinct = make([]map[uint32]bool, len(saggs))
						a.values = make([][]float64, len(saggs))
						for j, sa := range saggs {
							if sa.Kind == sketch.Distinct {
								a.distinct[j] = map[uint32]bool{}
							}
						}
					}
					groups[k] = a
				}
				for j, spec := range aggs {
					d := int64(1)
					if spec.Input >= 0 {
						d = int64(tr.rec.Attrs[spec.Input])
					}
					a.aggs[j] = spec.Op.Combine(a.aggs[j], d)
				}
				if a.sk != nil {
					a.sk.Observe(tr.rec.Attrs)
					for j, sa := range saggs {
						var v uint32
						if sa.Input >= 0 && sa.Input < len(tr.rec.Attrs) {
							v = tr.rec.Attrs[sa.Input]
						}
						switch sa.Kind {
						case sketch.Distinct:
							a.distinct[j][v] = true
						case sketch.Quantile:
							a.values[j] = append(a.values[j], float64(v))
						}
					}
				}
			}
			keys := make([]string, 0, len(groups))
			for k := range groups {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				a := groups[k]
				row := OracleRow{
					Rel:    q,
					Window: uint32(i),
					Start:  uint32(start),
					End:    uint32(end),
					Key:    UnpackKey(k),
					Aggs:   a.aggs,
				}
				if a.sk != nil {
					row.Sketch = a.sk.Estimates(nil)
					row.ExactDistinct = make([]int64, len(saggs))
					row.Values = make([][]float64, len(saggs))
					for j, sa := range saggs {
						switch sa.Kind {
						case sketch.Distinct:
							row.ExactDistinct[j] = int64(len(a.distinct[j]))
						case sketch.Quantile:
							row.ExactDistinct[j] = -1
							sort.Float64s(a.values[j])
							row.Values[j] = a.values[j]
						}
					}
				}
				ow.Rows = append(ow.Rows, row)
			}
		}
		out = append(out, ow)
	}
	return out
}
