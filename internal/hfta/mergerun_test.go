package hfta

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/attr"
	"repro/internal/hashtab"
	"repro/internal/lfta"
)

// mergeRunRel returns a query relation with the given arity, spanning
// the small (packSmall), wide (packWide), and jumbo (packJumbo) group
// map variants.
func mergeRunRel(arity int) attr.Set {
	return attr.MustParseSet("ABCDEFGHIJKLMNOPQRSTUVWXYZ"[:arity])
}

// TestMergeRunMatchesPerEntry: folding a run through MergeRun must
// produce exactly the state n Consume calls produce — across the
// small/wide/jumbo key packings, several epochs interleaved across
// runs, and duplicate groups within one run (where the stable scatter's
// in-order combine matters for non-commutative-looking sequences like
// Min/Max chains).
func TestMergeRunMatchesPerEntry(t *testing.T) {
	specs := []lfta.AggSpec{
		{Op: hashtab.Sum, Input: -1},
		{Op: hashtab.Min, Input: 0},
		{Op: hashtab.Max, Input: 1},
	}
	for _, arity := range []int{1, 2, 4, 8, 12} {
		t.Run(fmt.Sprintf("arity=%d", arity), func(t *testing.T) {
			rel := mergeRunRel(arity)
			rng := rand.New(rand.NewSource(int64(80 + arity)))

			runAgg, err := New([]attr.Set{rel}, specs)
			if err != nil {
				t.Fatal(err)
			}
			entAgg, err := New([]attr.Set{rel}, specs)
			if err != nil {
				t.Fatal(err)
			}
			na := len(specs)
			for round := 0; round < 20; round++ {
				n := 1 + rng.Intn(400)
				epoch := uint32(rng.Intn(4))
				keys := make([]uint32, 0, n*arity)
				deltas := make([]int64, 0, n*na)
				for i := 0; i < n; i++ {
					g := rng.Intn(40) // small universe: many in-run duplicates
					for a := 0; a < arity; a++ {
						keys = append(keys, uint32(g*(a+2)))
					}
					for j := 0; j < na; j++ {
						deltas = append(deltas, int64(rng.Intn(100)+1))
					}
				}
				runAgg.MergeRun(rel, epoch, keys, deltas)
				for i := 0; i < n; i++ {
					entAgg.Consume(lfta.Eviction{
						Rel:   rel,
						Key:   keys[i*arity : (i+1)*arity],
						Aggs:  deltas[i*na : (i+1)*na],
						Epoch: epoch,
					})
				}
			}
			if !Equal(runAgg.AllRows(), entAgg.AllRows()) {
				t.Fatal("MergeRun state differs from per-entry Consume state")
			}
		})
	}
}

// TestMergeRunLockShardCollisions drives a run whose keys all hash to
// ONE lock shard (brute-forced via the same shard-pick the aggregator
// uses), so the whole run folds under a single mutex hold and the
// within-shard ordering path carries every entry.
func TestMergeRunLockShardCollisions(t *testing.T) {
	rel := mergeRunRel(2)
	specs := lfta.CountStar
	var keys []uint32
	var g uint32
	for cnt := 0; cnt < 64; g++ {
		k := []uint32{g, g * 7}
		if mix64(packSmall(k))&(keyShards-1) != 0 {
			continue
		}
		keys = append(keys, k...)
		cnt++
	}
	n := len(keys) / 2
	deltas := make([]int64, n)
	for i := range deltas {
		deltas[i] = int64(i + 1)
	}
	runAgg, err := New([]attr.Set{rel}, specs)
	if err != nil {
		t.Fatal(err)
	}
	entAgg, err := New([]attr.Set{rel}, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the run twice so every group is both an insert and a combine.
	for pass := 0; pass < 2; pass++ {
		runAgg.MergeRun(rel, 0, keys, deltas)
		for i := 0; i < n; i++ {
			entAgg.Consume(lfta.Eviction{Rel: rel, Key: keys[i*2 : (i+1)*2], Aggs: deltas[i : i+1], Epoch: 0})
		}
	}
	if !Equal(runAgg.AllRows(), entAgg.AllRows()) {
		t.Fatal("single-lock-shard MergeRun state differs from per-entry state")
	}
}

// TestMergeRunConcurrent folds disjoint runs from several goroutines —
// the shape concurrent LFTA shard workers produce — and checks the
// total against a sequential fold. Run under -race in CI.
func TestMergeRunConcurrent(t *testing.T) {
	rel := mergeRunRel(2)
	specs := lfta.CountStar
	const (
		workers = 8
		rounds  = 50
		perRun  = 256
	)
	type run struct {
		epoch  uint32
		keys   []uint32
		deltas []int64
	}
	runs := make([][]run, workers)
	for w := range runs {
		rng := rand.New(rand.NewSource(int64(90 + w)))
		for r := 0; r < rounds; r++ {
			ru := run{epoch: uint32(r % 3)}
			for i := 0; i < perRun; i++ {
				g := rng.Intn(300)
				ru.keys = append(ru.keys, uint32(g), uint32(g*13))
				ru.deltas = append(ru.deltas, int64(rng.Intn(50)+1))
			}
			runs[w] = append(runs[w], ru)
		}
	}
	conc, err := New([]attr.Set{rel}, specs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, ru := range runs[w] {
				conc.MergeRun(rel, ru.epoch, ru.keys, ru.deltas)
			}
		}(w)
	}
	wg.Wait()
	seq, err := New([]attr.Set{rel}, specs)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for _, ru := range runs[w] {
			seq.MergeRun(rel, ru.epoch, ru.keys, ru.deltas)
		}
	}
	if !Equal(conc.AllRows(), seq.AllRows()) {
		t.Fatal("concurrent MergeRun total differs from sequential")
	}
}
