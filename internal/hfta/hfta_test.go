package hfta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hashtab"
	"repro/internal/lfta"
	"repro/internal/stream"
)

func sets(names ...string) []attr.Set {
	out := make([]attr.Set, len(names))
	for i, n := range names {
		out[i] = attr.MustParseSet(n)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, lfta.CountStar); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := New(sets("A"), nil); err == nil {
		t.Error("no aggregates accepted")
	}
	if _, err := New([]attr.Set{0}, lfta.CountStar); err == nil {
		t.Error("empty query accepted")
	}
}

func TestConsumeAndRows(t *testing.T) {
	a, err := New(sets("A"), lfta.CountStar)
	if err != nil {
		t.Fatal(err)
	}
	rel := attr.MustParseSet("A")
	// Two partials for the same group combine; different groups stay apart.
	a.Consume(lfta.Eviction{Rel: rel, Key: []uint32{7}, Aggs: []int64{3}, Epoch: 0})
	a.Consume(lfta.Eviction{Rel: rel, Key: []uint32{7}, Aggs: []int64{4}, Epoch: 0})
	a.Consume(lfta.Eviction{Rel: rel, Key: []uint32{9}, Aggs: []int64{1}, Epoch: 0})
	a.Consume(lfta.Eviction{Rel: rel, Key: []uint32{7}, Aggs: []int64{5}, Epoch: 1})
	// Non-query relations are ignored.
	a.Consume(lfta.Eviction{Rel: attr.MustParseSet("AB"), Key: []uint32{1, 2}, Aggs: []int64{9}, Epoch: 0})

	rows := a.Rows(rel, 0)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Key[0] != 7 || rows[0].Aggs[0] != 7 {
		t.Errorf("group 7 row = %+v; want count 7", rows[0])
	}
	if rows[1].Key[0] != 9 || rows[1].Aggs[0] != 1 {
		t.Errorf("group 9 row = %+v", rows[1])
	}
	if got := a.GroupCount(rel, 0); got != 2 {
		t.Errorf("GroupCount = %d", got)
	}
	if es := a.Epochs(rel); len(es) != 2 || es[0] != 0 || es[1] != 1 {
		t.Errorf("Epochs = %v", es)
	}
	a.Drop(0)
	if got := a.GroupCount(rel, 0); got != 0 {
		t.Errorf("state survived Drop: %d", got)
	}
	if got := a.GroupCount(rel, 1); got != 1 {
		t.Errorf("Drop removed the wrong epoch")
	}
}

func TestMinMaxMerge(t *testing.T) {
	aggs := []lfta.AggSpec{
		{Op: hashtab.Min, Input: 1},
		{Op: hashtab.Max, Input: 1},
	}
	a, err := New(sets("A"), aggs)
	if err != nil {
		t.Fatal(err)
	}
	rel := attr.MustParseSet("A")
	a.Consume(lfta.Eviction{Rel: rel, Key: []uint32{1}, Aggs: []int64{5, 5}, Epoch: 0})
	a.Consume(lfta.Eviction{Rel: rel, Key: []uint32{1}, Aggs: []int64{2, 9}, Epoch: 0})
	rows := a.Rows(rel, 0)
	if rows[0].Aggs[0] != 2 || rows[0].Aggs[1] != 9 {
		t.Errorf("min/max merge = %v; want [2 9]", rows[0].Aggs)
	}
}

func TestHavingCountAtLeast(t *testing.T) {
	rows := []Row{
		{Key: []uint32{1}, Aggs: []int64{150}},
		{Key: []uint32{2}, Aggs: []int64{99}},
		{Key: []uint32{3}, Aggs: []int64{100}},
	}
	got := HavingCountAtLeast(rows, 0, 100)
	if len(got) != 2 || got[0].Key[0] != 1 || got[1].Key[0] != 3 {
		t.Errorf("HavingCountAtLeast = %+v", got)
	}
	if got := HavingCountAtLeast(rows, 5, 1); len(got) != 0 {
		t.Errorf("out-of-range agg index matched rows: %+v", got)
	}
}

// TestEndToEndExactness is the central integration test of the two-level
// architecture: for every configuration shape, with deliberately tiny
// tables, the LFTA+HFTA pipeline must produce answers identical to the
// reference aggregator computed directly over the records.
func TestEndToEndExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 200, 25)
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 15000, 50)
	queries := sets("AB", "BC", "BD", "CD")
	want := Reference(recs, queries, lfta.CountStar, 10)

	for _, notation := range []string{
		"AB BC BD CD",
		"ABC(AB BC) BD CD",
		"ABCD(AB BCD(BC BD CD))",
		"ABCD(AB BC BD CD)",
	} {
		cfg, err := feedgraph.ParseConfig(notation, queries)
		if err != nil {
			t.Fatal(err)
		}
		alloc := cost.Alloc{}
		for i, r := range cfg.Rels {
			alloc[r] = 5 + i*11 // tiny tables: heavy collision traffic
		}
		agg, err := New(queries, lfta.CountStar)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := lfta.New(cfg, alloc, lfta.CountStar, 31, agg.Sink())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(stream.NewSliceSource(recs), 10); err != nil {
			t.Fatal(err)
		}
		got := agg.AllRows()
		if !Equal(got, want) {
			t.Errorf("%s: pipeline answers differ from reference (%d vs %d rows)",
				notation, len(got), len(want))
		}
	}
}

// TestEndToEndExactnessClustered repeats the exactness check on a
// clustered flow trace with multi-epoch processing and sum aggregates.
func TestEndToEndExactnessClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 150, 0)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := gen.Flows(rng, u, gen.FlowConfig{NumRecords: 20000, Duration: 40, MeanFlowLen: 12, Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := sets("A", "D")
	aggs := []lfta.AggSpec{
		{Op: hashtab.Sum, Input: -1},
		{Op: hashtab.Sum, Input: 2}, // sum(C): "total packet length"
	}
	want := Reference(ft.Records, queries, aggs, 5)

	cfg, err := feedgraph.ParseConfig("AD(A D)", queries)
	if err != nil {
		t.Fatal(err)
	}
	alloc := cost.Alloc{}
	for _, r := range cfg.Rels {
		alloc[r] = 17
	}
	agg, err := New(queries, aggs)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := lfta.New(cfg, alloc, aggs, 13, agg.Sink())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(stream.NewSliceSource(ft.Records), 5); err != nil {
		t.Fatal(err)
	}
	if !Equal(agg.AllRows(), want) {
		t.Error("clustered pipeline answers differ from reference")
	}
}

// Property: merging a stream of random partials is order-independent.
func TestMergeOrderIndependenceProperty(t *testing.T) {
	f := func(counts []uint8, seed int64) bool {
		if len(counts) == 0 {
			return true
		}
		rel := attr.MustParseSet("A")
		evs := make([]lfta.Eviction, len(counts))
		for i, c := range counts {
			evs[i] = lfta.Eviction{
				Rel:   rel,
				Key:   []uint32{uint32(c % 8)},
				Aggs:  []int64{int64(c%5) + 1},
				Epoch: uint32(c % 3),
			}
		}
		a1, _ := New([]attr.Set{rel}, lfta.CountStar)
		for _, e := range evs {
			a1.Consume(e)
		}
		a2, _ := New([]attr.Set{rel}, lfta.CountStar)
		rng := rand.New(rand.NewSource(seed))
		for _, i := range rng.Perm(len(evs)) {
			a2.Consume(evs[i])
		}
		return Equal(a1.AllRows(), a2.AllRows())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
