package hfta

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/attr"
	"repro/internal/lfta"
	"repro/internal/sketch"
)

// Sliding-window composition over panes. Each closed LFTA epoch becomes
// a pane: the per-group exact aggregates the HFTA accumulated for that
// epoch plus the per-group serialized sketch partials. The composer
// retains panes in a ring keyed by epoch and folds them into overlapping
// windows — window i covers epochs [i·slide, i·slide+size) — emitting
// one result row per (window close, group) and evicting a pane as soon
// as no live window can reference it. Composition is pure merging
// (AggOp.Combine on exact slots, sketch.Partial.Merge on partials), so
// the probe hot path below is untouched: panes are whatever the epoch
// pipeline already produces.

// WindowSpec is a sliding window expressed in epochs.
type WindowSpec struct {
	Size  uint32 // epochs per window, ≥ 1
	Slide uint32 // epochs between window starts, ≥ 1
}

// start returns the first epoch of window i.
func (w WindowSpec) start(i int64) int64 { return i * int64(w.Slide) }

// end returns the last epoch of window i (inclusive).
func (w WindowSpec) end(i int64) int64 { return w.start(i) + int64(w.Size) - 1 }

// PaneStats is the degradation ledger of one pane, mirroring the
// engine's per-epoch Offered == Processed + Dropped + Late identity.
type PaneStats struct {
	Offered   uint64
	Processed uint64
	Dropped   uint64
	Late      uint64
}

func (s *PaneStats) add(o PaneStats) {
	s.Offered += o.Offered
	s.Processed += o.Processed
	s.Dropped += o.Dropped
	s.Late += o.Late
}

// zero reports whether no record touched the pane's ledger.
func (s PaneStats) zero() bool {
	return s.Offered == 0 && s.Processed == 0 && s.Dropped == 0 && s.Late == 0
}

// WindowLedger is the summed pane ledger of one closed window.
type WindowLedger struct {
	Window uint32 // window index i
	Start  uint32 // first epoch covered
	End    uint32 // last epoch covered (inclusive)
	Stats  PaneStats
}

// WindowRow is one group's result for one closed window.
type WindowRow struct {
	Rel    attr.Set
	Window uint32
	Start  uint32
	End    uint32
	Key    []uint32
	Aggs   []int64   // exact slots, aligned with the workload agg list
	Sketch []float64 // sketch estimates, aligned with the sketch agg list
}

// WindowResult is everything emitted when one window closes: its ledger
// and the rows of every query relation, in query order, sorted by key
// within each relation.
type WindowResult struct {
	Ledger WindowLedger
	Rows   []WindowRow
}

// PaneInput is one relation's slice of a closing pane.
type PaneInput struct {
	Rel      attr.Set
	Rows     []Row             // per-group exact aggregates (ownership passes to the composer)
	Sketches map[string][]byte // packed group key → serialized sketch.Partial
}

// relPane is the per-relation state of one retained pane.
type relPane struct {
	rows map[string][]int64 // packed key → exact agg slots
	sk   map[string][]byte  // packed key → serialized partial
}

// pane is one retained epoch.
type pane struct {
	stats PaneStats
	rels  map[attr.Set]*relPane
}

// winAcc is one group's in-flight accumulator during composition.
type winAcc struct {
	aggs []int64
	sk   *sketch.Partial
}

// Composer retains panes and closes sliding windows over them.
//
// Steady-state composition recycles its storage: evicted panes (struct +
// cleared maps) and delivered results (row slices, per-group agg/key/
// estimate slices, accumulators) return to freelists instead of the
// heap, so a caller that hands results back via Recycle composes
// windows with only the per-new-group map-key strings and the sketch
// decode path still allocating. The freelists are plain slices — the
// composer is single-goroutine by contract (it runs on the engine's
// epoch-close path), so no locking.
type Composer struct {
	win     WindowSpec
	queries []attr.Set
	aggs    []lfta.AggSpec
	saggs   []sketch.Agg
	prec    uint8
	comp    float64

	panes map[uint32]*pane
	next  int64 // lowest window index not yet closed

	// freelists and reusable scratch (see type comment)
	panePool []*pane
	relPool  []*relPane
	accPool  []*winAcc
	rowsPool [][]WindowRow
	aggsPool [][]int64
	keyPool  [][]uint32
	estPool  [][]float64
	groups   map[string]*winAcc // reused across compose calls, cleared after each query
	sortKeys []string
	kbuf     []byte // packed-key scratch for allocation-free map hits
}

// NewComposer builds a composer for a workload's query relations, exact
// aggregate list, and sketch aggregate list. precision/compression of 0
// select the sketch package defaults.
func NewComposer(win WindowSpec, queries []attr.Set, aggs []lfta.AggSpec, saggs []sketch.Agg, precision uint8, compression float64) (*Composer, error) {
	if win.Size == 0 || win.Slide == 0 {
		return nil, fmt.Errorf("hfta: window size and slide must be ≥ 1, got %d/%d", win.Size, win.Slide)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("hfta: composer needs at least one query")
	}
	if precision == 0 {
		precision = sketch.DefaultPrecision
	}
	if compression == 0 {
		compression = sketch.DefaultCompression
	}
	// Validate the sketch spec list up front so decode errors later can
	// only mean corrupt data.
	if _, err := sketch.NewPartial(saggs, precision, compression); err != nil && len(saggs) > 0 {
		return nil, err
	}
	return &Composer{
		win:     win,
		queries: queries,
		aggs:    aggs,
		saggs:   saggs,
		prec:    precision,
		comp:    compression,
		panes:   make(map[uint32]*pane),
	}, nil
}

// Spec returns the window geometry.
func (c *Composer) Spec() WindowSpec { return c.win }

// SketchAggs returns the sketch aggregate list the composer was built with.
func (c *Composer) SketchAggs() []sketch.Agg { return c.saggs }

// PaneCount returns the number of retained panes (diagnostics).
func (c *Composer) PaneCount() int { return len(c.panes) }

// PackKey encodes a group key as a comparable map key: little-endian
// 4-byte words. Lexicographic byte order equals per-attribute numeric
// order, which keeps sorted read-out cheap.
func PackKey(key []uint32) string { return string(AppendKeyBytes(nil, key)) }

// AppendKeyBytes appends the packed form of key to dst.
func AppendKeyBytes(dst []byte, key []uint32) []byte {
	for _, v := range key {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// UnpackKey decodes a packed group key.
func UnpackKey(s string) []uint32 {
	out := make([]uint32, len(s)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32([]byte(s[i*4 : i*4+4]))
	}
	return out
}

// ClosePane hands the composer one finalized epoch. Epochs close in
// strictly increasing order (the engine's clock is monotone and late
// records never reopen an epoch), so a pane is final on arrival. Panes
// older than any live window are ignored — they can only appear after a
// checkpoint restore replays input the restored composer already closed
// windows over.
func (c *Composer) ClosePane(epoch uint32, stats PaneStats, inputs []PaneInput) {
	if int64(epoch) < c.win.start(c.next) {
		return
	}
	p := c.panes[epoch]
	if p == nil {
		p = c.takePane()
		c.panes[epoch] = p
	}
	p.stats.add(stats)
	for _, in := range inputs {
		rp := p.rels[in.Rel]
		if rp == nil {
			rp = c.takeRelPane()
			p.rels[in.Rel] = rp
		}
		for i := range in.Rows {
			r := &in.Rows[i]
			// Pack into the scratch buffer: the map hit needs no string
			// allocation, only a genuinely new group pays for its key.
			c.kbuf = AppendKeyBytes(c.kbuf[:0], r.Key)
			if acc, ok := rp.rows[string(c.kbuf)]; ok {
				for j, spec := range c.aggs {
					acc[j] = spec.Op.Combine(acc[j], r.Aggs[j])
				}
			} else {
				rp.rows[string(c.kbuf)] = r.Aggs
			}
		}
		for k, blob := range in.Sketches {
			if prev, ok := rp.sk[k]; ok {
				merged, err := c.mergeBlobs(prev, blob)
				if err == nil {
					rp.sk[k] = merged
				}
			} else {
				rp.sk[k] = blob
			}
		}
	}
}

func (c *Composer) mergeBlobs(a, b []byte) ([]byte, error) {
	pa, _, err := sketch.DecodePartial(c.saggs, c.prec, c.comp, a)
	if err != nil {
		return nil, err
	}
	pb, _, err := sketch.DecodePartial(c.saggs, c.prec, c.comp, b)
	if err != nil {
		return nil, err
	}
	if err := pa.Merge(pb); err != nil {
		return nil, err
	}
	return pa.AppendBinary(nil), nil
}

// CloseThrough closes every window whose last epoch is ≤ lastFinal (the
// newest epoch known to be final: the engine passes clock.Current()-1
// whenever the clock has advanced). Results come back in window order.
func (c *Composer) CloseThrough(lastFinal int64) []WindowResult {
	return c.closeWindows(lastFinal)
}

// CloseAll flushes at end of stream: every window that overlaps a
// retained pane closes, including trailing partially-filled ones.
func (c *Composer) CloseAll() []WindowResult {
	maxPane, ok := c.maxPaneEpoch()
	if !ok {
		return nil
	}
	// All windows with start ≤ maxPane, i.e. end ≤ maxPane + Size - 1.
	return c.closeWindows(int64(maxPane) + int64(c.win.Size) - 1)
}

func (c *Composer) minPaneEpoch() (uint32, bool) {
	var min uint32
	found := false
	for e := range c.panes {
		if !found || e < min {
			min, found = e, true
		}
	}
	return min, found
}

func (c *Composer) maxPaneEpoch() (uint32, bool) {
	var max uint32
	found := false
	for e := range c.panes {
		if !found || e > max {
			max, found = e, true
		}
	}
	return max, found
}

// closeWindows emits every not-yet-closed window with end ≤ maxEnd.
// Windows whose span holds no pane at all are skipped silently (the
// stream had no traffic there); the skip fast-forwards in O(1) per gap,
// so a clock jump of billions of epochs does not spin.
func (c *Composer) closeWindows(maxEnd int64) []WindowResult {
	var out []WindowResult
	defer c.evict()
	for {
		start, end := c.win.start(c.next), c.win.end(c.next)
		if end > maxEnd {
			break
		}
		c.evict()
		minPane, ok := c.minPaneEpoch()
		if !ok || int64(minPane) > maxEnd {
			// Nothing left through maxEnd: jump past it entirely.
			c.next = fastForward(c.next, maxEnd+1, c.win)
			break
		}
		if int64(minPane) > end {
			// Gap: jump to the first window whose span reaches minPane.
			c.next = fastForward(c.next, int64(minPane), c.win)
			continue
		}
		out = append(out, c.compose(start, end))
		c.next++
	}
	return out
}

// evict drops every pane no window at index ≥ next can reference,
// returning its storage to the freelists.
func (c *Composer) evict() {
	start := c.win.start(c.next)
	for e, p := range c.panes {
		if int64(e) < start {
			delete(c.panes, e)
			c.releasePane(p)
		}
	}
}

// releasePane clears a pane's maps (the map values — caller-owned agg
// slices and sketch blobs — are simply dropped) and pools the structs.
func (c *Composer) releasePane(p *pane) {
	for rel, rp := range p.rels {
		clear(rp.rows)
		clear(rp.sk)
		c.relPool = append(c.relPool, rp)
		delete(p.rels, rel)
	}
	p.stats = PaneStats{}
	c.panePool = append(c.panePool, p)
}

func (c *Composer) takePane() *pane {
	if n := len(c.panePool); n > 0 {
		p := c.panePool[n-1]
		c.panePool = c.panePool[:n-1]
		return p
	}
	return &pane{rels: make(map[attr.Set]*relPane, len(c.queries))}
}

func (c *Composer) takeRelPane() *relPane {
	if n := len(c.relPool); n > 0 {
		rp := c.relPool[n-1]
		c.relPool = c.relPool[:n-1]
		return rp
	}
	return &relPane{rows: make(map[string][]int64), sk: make(map[string][]byte)}
}

func (c *Composer) takeAcc() *winAcc {
	if n := len(c.accPool); n > 0 {
		a := c.accPool[n-1]
		c.accPool = c.accPool[:n-1]
		return a
	}
	return &winAcc{}
}

// takeAggs returns a pooled (or fresh) slice of len(c.aggs) identity
// values.
func (c *Composer) takeAggs() []int64 {
	var s []int64
	if n := len(c.aggsPool); n > 0 {
		s = c.aggsPool[n-1]
		c.aggsPool = c.aggsPool[:n-1]
	}
	for _, a := range c.aggs {
		s = append(s, a.Op.Identity())
	}
	return s
}

// unpackKeyInto decodes a packed group key into a pooled (or fresh)
// slice — UnpackKey without the per-row allocation.
func (c *Composer) unpackKeyInto(s string) []uint32 {
	var k []uint32
	if n := len(c.keyPool); n > 0 {
		k = c.keyPool[n-1]
		c.keyPool = c.keyPool[:n-1]
	}
	for i := 0; i+4 <= len(s); i += 4 {
		k = append(k, uint32(s[i])|uint32(s[i+1])<<8|uint32(s[i+2])<<16|uint32(s[i+3])<<24)
	}
	return k
}

// Recycle returns a delivered WindowResult's storage — the row slice and
// every row's key, agg, and sketch-estimate slice — to the composer's
// freelists. Call only once the result is fully consumed: later
// compositions reuse the returned storage. Callers that retain rows
// (or hand them to retaining consumers) must simply not recycle.
func (c *Composer) Recycle(res WindowResult) {
	for i := range res.Rows {
		r := &res.Rows[i]
		if r.Key != nil {
			c.keyPool = append(c.keyPool, r.Key[:0])
		}
		if r.Aggs != nil {
			c.aggsPool = append(c.aggsPool, r.Aggs[:0])
		}
		if r.Sketch != nil {
			c.estPool = append(c.estPool, r.Sketch[:0])
		}
		res.Rows[i] = WindowRow{}
	}
	if res.Rows != nil {
		c.rowsPool = append(c.rowsPool, res.Rows[:0])
	}
}

// fastForward returns the smallest window index ≥ cur whose end reaches
// target (i.e. end ≥ target).
func fastForward(cur, target int64, w WindowSpec) int64 {
	// end(i) = i·slide + size - 1 ≥ target  ⇔  i ≥ (target-size+1)/slide.
	num := target - int64(w.Size) + 1
	var i int64
	if num > 0 {
		i = (num + int64(w.Slide) - 1) / int64(w.Slide)
	}
	if i < cur {
		i = cur
	}
	return i
}

// compose merges the panes of [start, end] into one WindowResult. Group
// accumulators, agg slices, key slices, estimate buffers, and the row
// slice itself come from the freelists (refilled by Recycle); the
// decoded sketch partials do not — sketch.DecodePartial builds fresh
// structures per blob and dominates the remaining allocation on
// sketched workloads.
func (c *Composer) compose(start, end int64) WindowResult {
	res := WindowResult{Ledger: WindowLedger{
		Window: uint32(c.next),
		Start:  uint32(start),
		End:    uint32(end),
	}}
	if n := len(c.rowsPool); n > 0 {
		res.Rows = c.rowsPool[n-1]
		c.rowsPool = c.rowsPool[:n-1]
	}
	if c.groups == nil {
		c.groups = make(map[string]*winAcc)
	}
	for _, q := range c.queries {
		groups := c.groups
		// Ascending epoch order keeps t-digest merge sequences — and so
		// serialized results — identical across runs and shard counts.
		for e := start; e <= end; e++ {
			p := c.panes[uint32(e)]
			if p == nil {
				continue
			}
			rp := p.rels[q]
			if rp == nil {
				continue
			}
			for k, slots := range rp.rows {
				a := groups[k]
				if a == nil {
					a = c.takeAcc()
					a.aggs = c.takeAggs()
					groups[k] = a
				}
				for j, spec := range c.aggs {
					a.aggs[j] = spec.Op.Combine(a.aggs[j], slots[j])
				}
			}
			if len(c.saggs) == 0 {
				continue
			}
			for k, blob := range rp.sk {
				part, _, err := sketch.DecodePartial(c.saggs, c.prec, c.comp, blob)
				if err != nil {
					continue
				}
				a := groups[k]
				if a == nil {
					a = c.takeAcc()
					a.aggs = c.takeAggs()
					groups[k] = a
				}
				if a.sk == nil {
					a.sk = part
				} else {
					_ = a.sk.Merge(part)
				}
			}
		}
		keys := c.sortKeys[:0]
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		c.sortKeys = keys[:0]
		for _, k := range keys {
			a := groups[k]
			row := WindowRow{
				Rel:    q,
				Window: uint32(c.next),
				Start:  uint32(start),
				End:    uint32(end),
				Key:    c.unpackKeyInto(k),
				Aggs:   a.aggs,
			}
			if len(c.saggs) > 0 {
				if a.sk == nil {
					a.sk, _ = sketch.NewPartial(c.saggs, c.prec, c.comp)
				}
				var est []float64
				if n := len(c.estPool); n > 0 {
					est = c.estPool[n-1]
					c.estPool = c.estPool[:n-1]
				}
				row.Sketch = a.sk.Estimates(est)
			}
			res.Rows = append(res.Rows, row)
			// The agg slice escaped into the row; the accumulator struct
			// itself is done (the decoded partial is garbage either way).
			a.aggs, a.sk = nil, nil
			c.accPool = append(c.accPool, a)
		}
		clear(groups)
	}
	for e := start; e <= end; e++ {
		if p := c.panes[uint32(e)]; p != nil {
			res.Ledger.Stats.add(p.stats)
		}
	}
	return res
}

// identities returns a fresh slice of aggregate identity values (the
// reference oracle folds into these; compose uses pooled takeAggs).
func identities(aggs []lfta.AggSpec) []int64 {
	out := make([]int64, len(aggs))
	for i, a := range aggs {
		out[i] = a.Op.Identity()
	}
	return out
}

// --- checkpoint snapshot ---

// KeyBlob pairs a group key with a serialized sketch partial.
type KeyBlob struct {
	Key  []uint32
	Blob []byte
}

// PaneRelSnapshot is one relation's slice of a snapshotted pane, with
// rows and blobs in sorted key order (the serialization is part of the
// checkpoint byte-identity contract).
type PaneRelSnapshot struct {
	Rel      attr.Set
	Rows     []Row
	Sketches []KeyBlob
}

// PaneSnapshot is one retained pane in deterministic order.
type PaneSnapshot struct {
	Epoch uint32
	Stats PaneStats
	Rels  []PaneRelSnapshot
}

// Next returns the lowest window index not yet closed.
func (c *Composer) Next() int64 { return c.next }

// SnapshotPanes captures the retained panes: ascending epoch, relations
// in query order, rows and sketch blobs sorted by packed key.
func (c *Composer) SnapshotPanes() []PaneSnapshot {
	epochs := make([]uint32, 0, len(c.panes))
	for e := range c.panes {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	out := make([]PaneSnapshot, 0, len(epochs))
	for _, e := range epochs {
		p := c.panes[e]
		ps := PaneSnapshot{Epoch: e, Stats: p.stats}
		for _, q := range c.queries {
			rp := p.rels[q]
			if rp == nil {
				continue
			}
			rs := PaneRelSnapshot{Rel: q}
			keys := make([]string, 0, len(rp.rows))
			for k := range rp.rows {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				rs.Rows = append(rs.Rows, Row{Rel: q, Epoch: e, Key: UnpackKey(k), Aggs: rp.rows[k]})
			}
			keys = keys[:0]
			for k := range rp.sk {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				rs.Sketches = append(rs.Sketches, KeyBlob{Key: UnpackKey(k), Blob: rp.sk[k]})
			}
			if len(rs.Rows) > 0 || len(rs.Sketches) > 0 {
				ps.Rels = append(ps.Rels, rs)
			}
		}
		out = append(out, ps)
	}
	return out
}

// RestorePanes replaces the composer's state with a snapshot. Blobs are
// validated against the sketch spec list; they are stored verbatim so a
// snapshot → restore → snapshot round trip is byte-identical.
func (c *Composer) RestorePanes(next int64, panes []PaneSnapshot) error {
	if next < 0 {
		return fmt.Errorf("hfta: negative window index %d", next)
	}
	fresh := make(map[uint32]*pane, len(panes))
	for _, ps := range panes {
		if int64(ps.Epoch) < c.win.start(next) {
			return fmt.Errorf("hfta: pane %d precedes live window %d", ps.Epoch, next)
		}
		if fresh[ps.Epoch] != nil {
			return fmt.Errorf("hfta: duplicate pane %d", ps.Epoch)
		}
		p := &pane{stats: ps.Stats, rels: make(map[attr.Set]*relPane, len(ps.Rels))}
		for _, rs := range ps.Rels {
			ok := false
			for _, q := range c.queries {
				if q == rs.Rel {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("hfta: pane %d names unknown relation %v", ps.Epoch, rs.Rel)
			}
			if p.rels[rs.Rel] != nil {
				return fmt.Errorf("hfta: pane %d repeats relation %v", ps.Epoch, rs.Rel)
			}
			rp := &relPane{rows: make(map[string][]int64, len(rs.Rows)), sk: make(map[string][]byte, len(rs.Sketches))}
			for i := range rs.Rows {
				r := &rs.Rows[i]
				if len(r.Key) != rs.Rel.Size() {
					return fmt.Errorf("hfta: pane %d row key arity %d, want %d", ps.Epoch, len(r.Key), rs.Rel.Size())
				}
				if len(r.Aggs) != len(c.aggs) {
					return fmt.Errorf("hfta: pane %d row has %d agg slots, want %d", ps.Epoch, len(r.Aggs), len(c.aggs))
				}
				k := PackKey(r.Key)
				if _, dup := rp.rows[k]; dup {
					return fmt.Errorf("hfta: pane %d duplicate group", ps.Epoch)
				}
				rp.rows[k] = r.Aggs
			}
			for _, kb := range rs.Sketches {
				if len(kb.Key) != rs.Rel.Size() {
					return fmt.Errorf("hfta: pane %d sketch key arity %d, want %d", ps.Epoch, len(kb.Key), rs.Rel.Size())
				}
				if _, rest, err := sketch.DecodePartial(c.saggs, c.prec, c.comp, kb.Blob); err != nil {
					return fmt.Errorf("hfta: pane %d sketch blob: %v", ps.Epoch, err)
				} else if len(rest) != 0 {
					return fmt.Errorf("hfta: pane %d sketch blob has %d trailing bytes", ps.Epoch, len(rest))
				}
				k := PackKey(kb.Key)
				if _, dup := rp.sk[k]; dup {
					return fmt.Errorf("hfta: pane %d duplicate sketch group", ps.Epoch)
				}
				rp.sk[k] = kb.Blob
			}
			p.rels[rs.Rel] = rp
		}
		fresh[ps.Epoch] = p
	}
	c.panes = fresh
	c.next = next
	return nil
}

// Reset drops all retained panes and rewinds the window cursor. Pane
// storage returns to the freelists, so a reset composer re-runs warm.
func (c *Composer) Reset() {
	for e, p := range c.panes {
		delete(c.panes, e)
		c.releasePane(p)
	}
	c.next = 0
}
