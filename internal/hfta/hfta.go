// Package hfta implements the high-level query node: it merges the
// partial aggregates evicted from the LFTA into exact per-epoch query
// answers, and provides a reference (oracle) aggregator used to verify
// that the phantom-sharing LFTA loses no information.
//
// Within an epoch the HFTA may see several partials for the same group
// (one per eviction plus the end-of-epoch flush); they combine under the
// aggregate operations. The HFTA runs in host memory, so a plain map is
// the honest model — its cost is not the bottleneck the paper optimizes.
package hfta

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/attr"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// Row is one finalized query answer: the group of a query relation in an
// epoch with its aggregate values.
type Row struct {
	Rel   attr.Set
	Epoch uint32
	Key   []uint32
	Aggs  []int64
}

// Aggregator accumulates evictions per (query, epoch, group).
type Aggregator struct {
	queries map[attr.Set]bool
	aggs    []lfta.AggSpec
	// state[rel][epoch][key] = aggregate values
	state map[attr.Set]map[uint32]map[string][]int64
}

// New builds an aggregator for the given query relations and aggregates.
func New(queries []attr.Set, aggs []lfta.AggSpec) (*Aggregator, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("hfta: need at least one query")
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("hfta: need at least one aggregate")
	}
	a := &Aggregator{
		queries: make(map[attr.Set]bool, len(queries)),
		aggs:    append([]lfta.AggSpec(nil), aggs...),
		state:   make(map[attr.Set]map[uint32]map[string][]int64),
	}
	for _, q := range queries {
		if q.IsEmpty() {
			return nil, fmt.Errorf("hfta: empty query relation")
		}
		a.queries[q] = true
		a.state[q] = make(map[uint32]map[string][]int64)
	}
	return a, nil
}

// Sink returns the aggregator as an lfta.Sink.
func (a *Aggregator) Sink() lfta.Sink { return a.Consume }

// ConcurrentSink returns a mutex-guarded sink for use with parallel LFTA
// shards (lfta.Sharded.RunParallel). The HFTA runs on the host, off the
// critical path, so a single lock is the honest model.
func (a *Aggregator) ConcurrentSink() lfta.Sink {
	var mu sync.Mutex
	return func(ev lfta.Eviction) {
		mu.Lock()
		defer mu.Unlock()
		a.Consume(ev)
	}
}

// Consume folds one eviction into the per-epoch state. Evictions for
// relations that are not user queries are ignored (phantoms never reach
// the HFTA in a correct runtime, but defense costs nothing).
func (a *Aggregator) Consume(ev lfta.Eviction) {
	epochs, ok := a.state[ev.Rel]
	if !ok {
		return
	}
	groups := epochs[ev.Epoch]
	if groups == nil {
		groups = make(map[string][]int64)
		epochs[ev.Epoch] = groups
	}
	k := keyString(ev.Key)
	acc, ok := groups[k]
	if !ok {
		acc = make([]int64, len(a.aggs))
		for i, spec := range a.aggs {
			acc[i] = spec.Op.Identity()
		}
		groups[k] = acc
	}
	for i, spec := range a.aggs {
		acc[i] = spec.Op.Combine(acc[i], ev.Aggs[i])
	}
}

func keyString(vals []uint32) string {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], v)
	}
	return string(buf)
}

func keyValues(s string) []uint32 {
	out := make([]uint32, len(s)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32([]byte(s[i*4 : i*4+4]))
	}
	return out
}

// Rows finalizes and returns the answers for one query and epoch, sorted
// by group key. The state for that (query, epoch) remains available until
// Drop is called.
func (a *Aggregator) Rows(rel attr.Set, epoch uint32) []Row {
	groups := a.state[rel][epoch]
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Row, 0, len(keys))
	for _, k := range keys {
		out = append(out, Row{
			Rel:   rel,
			Epoch: epoch,
			Key:   keyValues(k),
			Aggs:  append([]int64(nil), groups[k]...),
		})
	}
	return out
}

// AllRows returns every finalized row across queries and epochs, sorted
// by (relation, epoch, key).
func (a *Aggregator) AllRows() []Row {
	var rels []attr.Set
	for r := range a.state {
		rels = append(rels, r)
	}
	attr.SortSets(rels)
	var out []Row
	for _, r := range rels {
		var epochs []uint32
		for e := range a.state[r] {
			epochs = append(epochs, e)
		}
		sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
		for _, e := range epochs {
			out = append(out, a.Rows(r, e)...)
		}
	}
	return out
}

// Epochs returns the epochs with state for a query, ascending.
func (a *Aggregator) Epochs(rel attr.Set) []uint32 {
	var out []uint32
	for e := range a.state[rel] {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Drop releases the state of one epoch across all queries.
func (a *Aggregator) Drop(epoch uint32) {
	for _, epochs := range a.state {
		delete(epochs, epoch)
	}
}

// GroupCount returns the number of distinct groups a query produced in an
// epoch — the measured g_R signal the adaptive engine feeds back into the
// optimizer.
func (a *Aggregator) GroupCount(rel attr.Set, epoch uint32) int {
	return len(a.state[rel][epoch])
}

// Reference computes exact query answers directly from the records (no
// LFTA, no hash tables): the oracle against which the two-level pipeline
// is verified. epochLen 0 means a single unbounded epoch.
func Reference(recs []stream.Record, queries []attr.Set, aggs []lfta.AggSpec, epochLen uint32) []Row {
	agg, err := New(queries, aggs)
	if err != nil {
		return nil
	}
	e := stream.Epoch{Length: epochLen}
	deltas := make([]int64, len(aggs))
	for i := range recs {
		rec := &recs[i]
		for j, spec := range aggs {
			if spec.Input < 0 {
				deltas[j] = 1
			} else {
				deltas[j] = int64(rec.Attrs[spec.Input])
			}
		}
		for _, q := range queries {
			agg.Consume(lfta.Eviction{
				Rel:   q,
				Key:   q.Project(rec.Attrs, nil),
				Aggs:  deltas,
				Epoch: e.Of(rec.Time),
			})
		}
	}
	return agg.AllRows()
}

// Equal reports whether two row sets are identical (same order, groups,
// and aggregate values); rows from AllRows and Reference compare directly.
func Equal(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Rel != b[i].Rel || a[i].Epoch != b[i].Epoch {
			return false
		}
		if len(a[i].Key) != len(b[i].Key) || len(a[i].Aggs) != len(b[i].Aggs) {
			return false
		}
		for j := range a[i].Key {
			if a[i].Key[j] != b[i].Key[j] {
				return false
			}
		}
		for j := range a[i].Aggs {
			if a[i].Aggs[j] != b[i].Aggs[j] {
				return false
			}
		}
	}
	return true
}

// HavingCountAtLeast filters rows to those whose aggregate at index aggIdx
// reaches min — the paper's introductory "report ... provided this number
// of packets is more than 100" query shape.
func HavingCountAtLeast(rows []Row, aggIdx int, min int64) []Row {
	out := rows[:0:0]
	for _, r := range rows {
		if aggIdx < len(r.Aggs) && r.Aggs[aggIdx] >= min {
			out = append(out, r)
		}
	}
	return out
}
