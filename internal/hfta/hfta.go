// Package hfta implements the high-level query node: it merges the
// partial aggregates evicted from the LFTA into exact per-epoch query
// answers, and provides a reference (oracle) aggregator used to verify
// that the phantom-sharing LFTA loses no information.
//
// Within an epoch the HFTA may see several partials for the same group
// (one per eviction plus the end-of-epoch flush); they combine under the
// aggregate operations. The HFTA runs in host memory, but with parallel
// LFTA shards its merge map is on the ingest path, so the state is keyed
// by packed integers (see key.go) and split into lock shards by key hash:
// concurrent flushes from different LFTA shards rarely touch the same
// lock, and the sequential path pays only an uncontended mutex.
package hfta

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/attr"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// Row is one finalized query answer: the group of a query relation in an
// epoch with its aggregate values.
type Row struct {
	Rel   attr.Set
	Epoch uint32
	Key   []uint32
	Aggs  []int64
}

// keyShards is the number of lock shards per query relation; a power of
// two so shard selection is a mask of the key hash.
const keyShards = 16

// arenaBlock is the growth quantum (in int64 slots) of a shard's
// accumulator arena.
const arenaBlock = 1024

// groupMap holds one epoch's groups for one lock shard, in the map
// variant matching the relation's arity (exactly one field is non-nil).
type groupMap struct {
	small map[uint64][]int64
	wide  map[wideKey][]int64
	jumbo map[jumboKey][]int64
}

func newGroupMap(arity int) *groupMap {
	switch {
	case arity <= smallArity:
		return &groupMap{small: make(map[uint64][]int64)}
	case arity <= wideArity:
		return &groupMap{wide: make(map[wideKey][]int64)}
	default:
		return &groupMap{jumbo: make(map[jumboKey][]int64)}
	}
}

// clear empties the group map for reuse. The builtin keeps the map's
// bucket storage, so a recycled groupMap absorbs a same-sized epoch
// without growing — the core of the per-epoch allocation pooling.
func (gm *groupMap) clear() {
	switch {
	case gm.small != nil:
		clear(gm.small)
	case gm.wide != nil:
		clear(gm.wide)
	default:
		clear(gm.jumbo)
	}
}

func (gm *groupMap) len() int {
	switch {
	case gm.small != nil:
		return len(gm.small)
	case gm.wide != nil:
		return len(gm.wide)
	default:
		return len(gm.jumbo)
	}
}

// each calls fn with every (decoded key, accumulator) pair. The key slice
// is only valid during the call.
func (gm *groupMap) each(arity int, fn func(key []uint32, acc []int64)) {
	var buf [attr.MaxAttrs]uint32
	switch {
	case gm.small != nil:
		for k, acc := range gm.small {
			fn(unpackSmall(k, arity, buf[:0]), acc)
		}
	case gm.wide != nil:
		for k, acc := range gm.wide {
			k := k
			fn(k[:arity], acc)
		}
	default:
		for k, acc := range gm.jumbo {
			k := k
			fn(k[:arity], acc)
		}
	}
}

// relShard is one lock shard of a relation's state: per-epoch group maps
// plus an arena the accumulator slices are carved from (one allocation per
// arenaBlock/len(aggs) new groups instead of one per group).
type relShard struct {
	mu     sync.Mutex
	epochs map[uint32]*groupMap
	pool   []*groupMap // cleared maps from dropped epochs, ready for reuse
	arena  []int64
}

// take returns a group map for a new epoch, recycling a dropped epoch's
// cleared map when one is pooled. Caller holds the shard lock.
func (sh *relShard) take(arity int) *groupMap {
	if n := len(sh.pool); n > 0 {
		gm := sh.pool[n-1]
		sh.pool[n-1] = nil
		sh.pool = sh.pool[:n-1]
		return gm
	}
	return newGroupMap(arity)
}

// alloc carves a fresh accumulator (initialized to the aggregate
// identities) out of the shard arena. Caller holds the shard lock.
func (sh *relShard) alloc(aggs []lfta.AggSpec) []int64 {
	n := len(aggs)
	if len(sh.arena)+n > cap(sh.arena) {
		size := arenaBlock
		if size < n {
			size = n
		}
		sh.arena = make([]int64, 0, size)
	}
	start := len(sh.arena)
	sh.arena = sh.arena[:start+n]
	acc := sh.arena[start : start+n : start+n]
	for i, spec := range aggs {
		acc[i] = spec.Op.Identity()
	}
	return acc
}

// relState is the merge state of one query relation.
type relState struct {
	arity  int
	shards [keyShards]relShard
}

// merge folds one partial (key, deltas) into the epoch's group state.
// Safe for concurrent use; key and deltas are not retained.
func (rs *relState) merge(key []uint32, deltas []int64, epoch uint32, aggs []lfta.AggSpec) {
	var (
		sk uint64
		wk wideKey
		jk jumboKey
		h  uint64
	)
	switch {
	case rs.arity <= smallArity:
		sk = packSmall(key)
		h = mix64(sk)
	case rs.arity <= wideArity:
		wk = packWide(key)
		h = hashWords(key)
	default:
		jk = packJumbo(key)
		h = hashWords(key)
	}
	sh := &rs.shards[h&(keyShards-1)]
	sh.mu.Lock()
	gm := sh.epochs[epoch]
	if gm == nil {
		gm = sh.take(rs.arity)
		sh.epochs[epoch] = gm
	}
	var acc []int64
	switch {
	case gm.small != nil:
		acc = gm.small[sk]
		if acc == nil {
			acc = sh.alloc(aggs)
			gm.small[sk] = acc
		}
	case gm.wide != nil:
		acc = gm.wide[wk]
		if acc == nil {
			acc = sh.alloc(aggs)
			gm.wide[wk] = acc
		}
	default:
		acc = gm.jumbo[jk]
		if acc == nil {
			acc = sh.alloc(aggs)
			gm.jumbo[jk] = acc
		}
	}
	for i, spec := range aggs {
		acc[i] = spec.Op.Combine(acc[i], deltas[i])
	}
	sh.mu.Unlock()
}

// Aggregator accumulates evictions per (query, epoch, group). All methods
// are safe for concurrent use.
type Aggregator struct {
	aggs  []lfta.AggSpec
	state map[attr.Set]*relState
}

// New builds an aggregator for the given query relations and aggregates.
func New(queries []attr.Set, aggs []lfta.AggSpec) (*Aggregator, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("hfta: need at least one query")
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("hfta: need at least one aggregate")
	}
	a := &Aggregator{
		aggs:  append([]lfta.AggSpec(nil), aggs...),
		state: make(map[attr.Set]*relState, len(queries)),
	}
	for _, q := range queries {
		if q.IsEmpty() {
			return nil, fmt.Errorf("hfta: empty query relation")
		}
		rs := &relState{arity: q.Size()}
		for i := range rs.shards {
			rs.shards[i].epochs = make(map[uint32]*groupMap)
		}
		a.state[q] = rs
	}
	return a, nil
}

// Sink returns the aggregator as an lfta.Sink.
func (a *Aggregator) Sink() lfta.Sink { return a.Consume }

// ConcurrentSink returns the aggregator as an lfta.Sink for parallel LFTA
// shards. Consume is itself safe for concurrent use (the state is lock-
// sharded by key hash), so this is now the same as Sink; the method
// survives for callers written against the old single-mutex design.
func (a *Aggregator) ConcurrentSink() lfta.Sink { return a.Consume }

// BatchSink returns the aggregator's batch ingest as an lfta.BatchSink,
// the preferred hookup for runtimes with per-shard eviction buffers
// (lfta.Runtime.SetBatchSink).
func (a *Aggregator) BatchSink() lfta.BatchSink { return a.ConsumeBatch }

// Consume folds one eviction into the per-epoch state. Evictions for
// relations that are not user queries are ignored (phantoms never reach
// the HFTA in a correct runtime, but defense costs nothing). Safe for
// concurrent use; the eviction's slices are not retained.
func (a *Aggregator) Consume(ev lfta.Eviction) {
	rs := a.state[ev.Rel]
	if rs == nil {
		return
	}
	rs.merge(ev.Key, ev.Aggs, ev.Epoch, a.aggs)
}

// ConsumeBatch folds a batch of evictions, caching the per-relation state
// lookup across consecutive evictions of the same relation (flushed
// batches arrive grouped by table). Safe for concurrent use; the batch
// and its slices are released back to the caller on return.
func (a *Aggregator) ConsumeBatch(evs []lfta.Eviction) {
	var (
		lastRel attr.Set
		rs      *relState
	)
	for i := range evs {
		ev := &evs[i]
		if i == 0 || ev.Rel != lastRel {
			rs = a.state[ev.Rel]
			lastRel = ev.Rel
		}
		if rs == nil {
			continue
		}
		rs.merge(ev.Key, ev.Aggs, ev.Epoch, a.aggs)
	}
}

// Rows finalizes and returns the answers for one query and epoch, sorted
// by group key (numeric, per attribute). The state for that (query,
// epoch) remains available until Drop is called.
func (a *Aggregator) Rows(rel attr.Set, epoch uint32) []Row {
	rs := a.state[rel]
	if rs == nil {
		return nil
	}
	var out []Row
	for i := range rs.shards {
		sh := &rs.shards[i]
		sh.mu.Lock()
		if gm := sh.epochs[epoch]; gm != nil {
			gm.each(rs.arity, func(key []uint32, acc []int64) {
				out = append(out, Row{
					Rel:   rel,
					Epoch: epoch,
					Key:   append([]uint32(nil), key...),
					Aggs:  append([]int64(nil), acc...),
				})
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return lessKeys(out[i].Key, out[j].Key) })
	return out
}

// AllRows returns every finalized row across queries and epochs, sorted
// by (relation, epoch, key).
func (a *Aggregator) AllRows() []Row {
	var rels []attr.Set
	for r := range a.state {
		rels = append(rels, r)
	}
	attr.SortSets(rels)
	var out []Row
	for _, r := range rels {
		for _, e := range a.Epochs(r) {
			out = append(out, a.Rows(r, e)...)
		}
	}
	return out
}

// Epochs returns the epochs with state for a query, ascending.
func (a *Aggregator) Epochs(rel attr.Set) []uint32 {
	rs := a.state[rel]
	if rs == nil {
		return nil
	}
	seen := make(map[uint32]bool)
	var out []uint32
	for i := range rs.shards {
		sh := &rs.shards[i]
		sh.mu.Lock()
		for e := range sh.epochs {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Drop releases the state of one epoch across all queries. The epoch's
// group maps are cleared and pooled for reuse by later epochs, so a
// steady Drop-after-emit cadence stops allocating once map capacities
// reach the per-epoch group count.
func (a *Aggregator) Drop(epoch uint32) {
	for _, rs := range a.state {
		for i := range rs.shards {
			sh := &rs.shards[i]
			sh.mu.Lock()
			if gm := sh.epochs[epoch]; gm != nil {
				gm.clear()
				sh.pool = append(sh.pool, gm)
				delete(sh.epochs, epoch)
			}
			sh.mu.Unlock()
		}
	}
}

// Reset drops all epochs of all queries, keeping the allocated group
// maps (pooled) and arena blocks for reuse: the aggregator behaves as
// freshly constructed but a subsequent same-shaped workload allocates
// almost nothing. Not safe to call concurrently with merges.
func (a *Aggregator) Reset() {
	for _, rs := range a.state {
		for i := range rs.shards {
			sh := &rs.shards[i]
			sh.mu.Lock()
			for e, gm := range sh.epochs {
				gm.clear()
				sh.pool = append(sh.pool, gm)
				delete(sh.epochs, e)
			}
			// All accumulators are dropped with their epochs, so the
			// current arena block can be rewound and re-carved.
			sh.arena = sh.arena[:0]
			sh.mu.Unlock()
		}
	}
}

// GroupCount returns the number of distinct groups a query produced in an
// epoch — the measured g_R signal the adaptive engine feeds back into the
// optimizer.
func (a *Aggregator) GroupCount(rel attr.Set, epoch uint32) int {
	rs := a.state[rel]
	if rs == nil {
		return 0
	}
	n := 0
	for i := range rs.shards {
		sh := &rs.shards[i]
		sh.mu.Lock()
		if gm := sh.epochs[epoch]; gm != nil {
			n += gm.len()
		}
		sh.mu.Unlock()
	}
	return n
}

// Reference computes exact query answers directly from the records (no
// LFTA, no hash tables): the oracle against which the two-level pipeline
// is verified. epochLen 0 means a single unbounded epoch.
func Reference(recs []stream.Record, queries []attr.Set, aggs []lfta.AggSpec, epochLen uint32) []Row {
	agg, err := New(queries, aggs)
	if err != nil {
		return nil
	}
	e := stream.Epoch{Length: epochLen}
	deltas := make([]int64, len(aggs))
	var keyBuf []uint32
	for i := range recs {
		rec := &recs[i]
		for j, spec := range aggs {
			if spec.Input < 0 {
				deltas[j] = 1
			} else {
				deltas[j] = int64(rec.Attrs[spec.Input])
			}
		}
		for _, q := range queries {
			keyBuf = q.Project(rec.Attrs, keyBuf)
			agg.Consume(lfta.Eviction{
				Rel:   q,
				Key:   keyBuf,
				Aggs:  deltas,
				Epoch: e.Of(rec.Time),
			})
		}
	}
	return agg.AllRows()
}

// Equal reports whether two row sets are identical (same order, groups,
// and aggregate values); rows from AllRows and Reference compare directly.
func Equal(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Rel != b[i].Rel || a[i].Epoch != b[i].Epoch {
			return false
		}
		if len(a[i].Key) != len(b[i].Key) || len(a[i].Aggs) != len(b[i].Aggs) {
			return false
		}
		for j := range a[i].Key {
			if a[i].Key[j] != b[i].Key[j] {
				return false
			}
		}
		for j := range a[i].Aggs {
			if a[i].Aggs[j] != b[i].Aggs[j] {
				return false
			}
		}
	}
	return true
}

// HavingCountAtLeast filters rows to those whose aggregate at index aggIdx
// reaches min — the paper's introductory "report ... provided this number
// of packets is more than 100" query shape.
func HavingCountAtLeast(rows []Row, aggIdx int, min int64) []Row {
	out := rows[:0:0]
	for _, r := range rows {
		if aggIdx < len(r.Aggs) && r.Aggs[aggIdx] >= min {
			out = append(out, r)
		}
	}
	return out
}
