package hfta

import "repro/internal/attr"

// Integer-keyed group storage. The old implementation encoded every group
// key into a heap-allocated string (4 bytes per attribute, little-endian)
// and used one map[string] per epoch; every eviction paid an encode
// allocation and every read-out a decode allocation. Keys here are packed
// into comparable integer types instead, chosen by the relation's arity —
// which is fixed per relation, so the arity never needs to be stored in
// the key itself:
//
//	arity ≤ 2:  one uint64 (attribute 0 in the high word)
//	arity ≤ 8:  [8]uint32 array, unused trailing words zero
//	otherwise:  [attr.MaxAttrs]uint32 array (defensive; no paper workload
//	            groups by more than a handful of attributes)
//
// All three orderings agree with lexicographic comparison of the decoded
// attribute values, so sorted read-out is numeric per attribute.
const (
	// smallArity is the widest group key packed directly into a uint64.
	smallArity = 2
	// wideArity is the widest group key held in the array-backed wideKey.
	wideArity = 8
)

// wideKey is the comparable array-backed key for arities 3..wideArity.
type wideKey [wideArity]uint32

// jumboKey covers every remaining arity up to attr.MaxAttrs.
type jumboKey [attr.MaxAttrs]uint32

// packSmall packs a key of arity 1 or 2 into a uint64 whose numeric order
// equals the lexicographic order of the values.
func packSmall(vals []uint32) uint64 {
	if len(vals) == 1 {
		return uint64(vals[0])
	}
	return uint64(vals[0])<<32 | uint64(vals[1])
}

// unpackSmall appends the arity attribute values packed in k to dst.
func unpackSmall(k uint64, arity int, dst []uint32) []uint32 {
	if arity == 1 {
		return append(dst, uint32(k))
	}
	return append(dst, uint32(k>>32), uint32(k))
}

// packWide copies a key of arity 3..wideArity into a wideKey.
func packWide(vals []uint32) wideKey {
	var k wideKey
	copy(k[:], vals)
	return k
}

// packJumbo copies a key of any supported arity into a jumboKey.
func packJumbo(vals []uint32) jumboKey {
	var k jumboKey
	copy(k[:], vals)
	return k
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mix used to
// spread packed keys across the aggregator's lock shards.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashWords chains mix64 over the 4-byte words of a key.
func hashWords(vals []uint32) uint64 {
	h := uint64(len(vals))
	for _, v := range vals {
		h = mix64(h ^ uint64(v))
	}
	return h
}

// lessKeys orders decoded group keys lexicographically per attribute — the
// canonical row order of Rows and AllRows.
func lessKeys(a, b []uint32) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
