package hfta

import (
	"sync"

	"repro/internal/attr"
	"repro/internal/lfta"
)

// Batched columnar merge. Per-entry merges (Consume/ConsumeBatch) pay
// one lock acquisition per partial even though a sealed eviction run
// from one LFTA shard typically touches only a handful of the keyShards
// lock shards. MergeRun restructures the work: pre-hash every key in
// the run with no lock held, partition the entries by lock shard with a
// stable counting scatter, then acquire each touched shard's mutex ONCE
// and fold all of its entries under that single hold. With s LFTA
// shards flushing concurrently, lock traffic drops from O(entries) to
// O(touched shards) per run, and entries within a shard fold with the
// map and arena already hot.
//
// Correctness: the scatter is stable, so within each lock shard the
// entries apply in run order — and all of a group's partials hash to the
// same shard, so per-group combine order is exactly the per-entry
// order. Results are identical to n Consume calls (the MergeRun ≡
// per-entry equivalence suite pins this, including forced lock-shard
// collisions).

// mergeScratch is the reusable partitioning scratch of one MergeRun
// call, pooled because run sinks are invoked concurrently from LFTA
// shard workers.
type mergeScratch struct {
	shard []uint8
	order []int32
}

var mergeScratchPool = sync.Pool{New: func() any { return &mergeScratch{} }}

// upsertLocked folds one partial into gm: map-variant dispatch,
// accumulator get-or-alloc, combine. The caller holds sh.mu and has
// resolved gm for the entry's epoch. Key packing and accumulator
// handling mirror relState.merge exactly.
func (sh *relShard) upsertLocked(gm *groupMap, key []uint32, deltas []int64, aggs []lfta.AggSpec) {
	var acc []int64
	switch {
	case gm.small != nil:
		sk := packSmall(key)
		acc = gm.small[sk]
		if acc == nil {
			acc = sh.alloc(aggs)
			gm.small[sk] = acc
		}
	case gm.wide != nil:
		wk := packWide(key)
		acc = gm.wide[wk]
		if acc == nil {
			acc = sh.alloc(aggs)
			gm.wide[wk] = acc
		}
	default:
		jk := packJumbo(key)
		acc = gm.jumbo[jk]
		if acc == nil {
			acc = sh.alloc(aggs)
			gm.jumbo[jk] = acc
		}
	}
	for i, spec := range aggs {
		acc[i] = spec.Op.Combine(acc[i], deltas[i])
	}
}

// MergeRun folds a sealed columnar run of partials for one query
// relation and epoch: keys is flat n×arity, aggs flat n×NumAggs, in
// transfer order (exactly the layout lfta.RunSink delivers). Safe for
// concurrent use; the slices are not retained. Unknown relations are
// ignored, like Consume.
func (a *Aggregator) MergeRun(rel attr.Set, epoch uint32, keys []uint32, aggs []int64) {
	rs := a.state[rel]
	if rs == nil {
		return
	}
	arity := rs.arity
	if arity == 0 || len(keys) == 0 {
		return
	}
	n := len(keys) / arity
	if n == 1 {
		rs.merge(keys[:arity], aggs, epoch, a.aggs)
		return
	}
	sc := mergeScratchPool.Get().(*mergeScratch)
	if cap(sc.shard) < n {
		sc.shard = make([]uint8, n)
		sc.order = make([]int32, n)
	}
	shard := sc.shard[:n]
	order := sc.order[:n]

	// Pass 1 (no locks): hash every key to its lock shard, counting
	// occupancy. Shard selection matches relState.merge bit-for-bit.
	var counts [keyShards]int32
	if arity <= smallArity {
		for i := 0; i < n; i++ {
			s := uint8(mix64(packSmall(keys[i*arity:(i+1)*arity])) & (keyShards - 1))
			shard[i] = s
			counts[s]++
		}
	} else {
		for i := 0; i < n; i++ {
			s := uint8(hashWords(keys[i*arity:(i+1)*arity]) & (keyShards - 1))
			shard[i] = s
			counts[s]++
		}
	}

	// Stable counting scatter: prefix offsets, then entry indices in run
	// order within each shard's span.
	var offs [keyShards]int32
	var off int32
	for s := 0; s < keyShards; s++ {
		offs[s] = off
		off += counts[s]
	}
	cur := offs
	for i := 0; i < n; i++ {
		s := shard[i]
		order[cur[s]] = int32(i)
		cur[s]++
	}

	// Pass 2: one lock hold per touched shard, folding its whole span.
	na := len(a.aggs)
	for s := 0; s < keyShards; s++ {
		cnt := counts[s]
		if cnt == 0 {
			continue
		}
		sh := &rs.shards[s]
		sh.mu.Lock()
		gm := sh.epochs[epoch]
		if gm == nil {
			gm = sh.take(arity)
			sh.epochs[epoch] = gm
		}
		for _, oi := range order[offs[s] : offs[s]+cnt] {
			i := int(oi)
			sh.upsertLocked(gm, keys[i*arity:(i+1)*arity:(i+1)*arity], aggs[i*na:(i+1)*na:(i+1)*na], a.aggs)
		}
		sh.mu.Unlock()
	}
	mergeScratchPool.Put(sc)
}

// RunSink returns the aggregator's batched columnar merge as an
// lfta.RunSink, the preferred hookup for runtimes with columnar
// eviction buffers (lfta.Runtime.SetRunSink).
func (a *Aggregator) RunSink() lfta.RunSink { return a.MergeRun }
