package lfta

import (
	"math/bits"

	"repro/internal/hashtab"
)

// Selection-aware columnar ingestion. A vectorized WHERE hands the
// runtime a column batch plus a 64-bit-per-lane selection bitmap (the
// selvec convention: bit j of word w covers lane w*64+j, dead bits past
// the last lane zero) instead of a compacted copy. Dead lanes cost
// nothing here: the delta gather, the key hashing, and the probe setup
// all iterate set bits only, and results are bit-identical to
// compacting the survivors and feeding them through the dense twins.

// selPopcount returns the number of selected lanes among n.
func selPopcount(sel []uint64, n int) int {
	total := 0
	for _, w := range sel[:(n+63)>>6] {
		total += bits.OnesCount64(w)
	}
	return total
}

// ProcessColumnsSel feeds only the selected lanes of a column-major run
// (cols is one slice per record attribute, each with at least n lanes),
// all sharing one epoch. Outcomes and counters are identical to
// compacting the selected lanes and calling ProcessColumns — which in
// turn matches the scalar Process path record for record.
func (r *Runtime) ProcessColumnsSel(cols [][]uint32, n int, sel []uint64, epoch uint32) {
	width := len(cols)
	if width == 0 || n == 0 {
		return
	}
	m := selPopcount(sel, n)
	if m == 0 {
		return
	}
	r.beginEpoch(epoch)
	r.ops.Records += uint64(m)
	na := len(r.aggs)

	// Build the compact delta run (m×na, selection order). The
	// constant-delta block of prefilled ones works compactly as-is.
	need := m * na
	if cap(r.deltaRun) < need {
		r.deltaRun = make([]int64, need)
		if r.constDelta {
			for i := range r.deltaRun {
				r.deltaRun[i] = 1
			}
		}
	}
	dr := r.deltaRun[:need]
	if !r.constDelta {
		nw := (n + 63) >> 6
		k := 0
		for wi := 0; wi < nw; wi++ {
			lbase := wi << 6
			for w := sel[wi]; w != 0; w &= w - 1 {
				i := lbase + bits.TrailingZeros64(w)
				for j, a := range r.aggs {
					if a.Input < 0 {
						dr[k*na+j] = 1
					} else {
						dr[k*na+j] = int64(cols[a.Input][i])
					}
				}
				k++
			}
		}
	}

	if cap(r.colSel) < width {
		r.colSel = make([][]uint32, 0, width)
	}
	for _, ni := range r.rawIdx {
		nd := &r.nodes[ni]
		kc := r.colSel[:0]
		for _, id := range nd.ids {
			kc = append(kc, cols[id])
		}
		r.colSel = kc
		f := r.runFrame(0)
		r.ops.Probes += uint64(m)
		nd.tab.ProbeColumnsSelInto(kc, dr, n, sel, &f.victims)
		r.cascadeRun(ni, &f.victims, 1)
	}
	// Drop the borrowed column references so the caller's batch can be
	// recycled without this scratch pinning it.
	for i := range r.colSel {
		r.colSel[i] = nil
	}
	r.colSel = r.colSel[:0]
}

// ShardColumns hashes the selected lanes of a column batch (the full
// attribute vector, one slice per attribute) to shard indices, written
// compactly in ascending-lane order into six; it returns the number of
// entries written. Routing is bit-identical to calling ShardOf on each
// selected record, so checkpoint-resumed deployments route the same
// regardless of which admission path ran.
func (s *Sharded) ShardColumns(cols [][]uint32, n int, sel []uint64, six []int32) int {
	m := selPopcount(sel, n)
	if m == 0 {
		return 0
	}
	if cap(s.routeHash) < m {
		s.routeHash = make([]uint64, m)
	}
	hb := s.routeHash[:m]
	hashtab.HashColumnsSel(shardRouteSeed, cols, n, sel, hb)
	for k, h := range hb {
		six[k] = int32(hashtab.Reduce(h, len(s.shards)))
	}
	return m
}
