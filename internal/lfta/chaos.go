package lfta

import (
	"sync"
	"time"

	"repro/internal/attr"
)

// SinkFaults configure a FaultySink: deterministic transient failures and
// delays on the LFTA→HFTA transfer channel. A zero or negative Every
// disables that fault.
type SinkFaults struct {
	FailEvery  int           // every Nth delivery is lost
	DelayEvery int           // every Nth delivery sleeps for Delay first
	Delay      time.Duration // injected latency
}

// FaultySink wraps a Sink or BatchSink with injected faults, modelling a
// flaky transfer channel between the NIC-resident LFTA and the host HFTA.
// A failed delivery is *lost* — the evictions never reach the inner sink —
// and the lost record count and aggregate mass are accounted per relation,
// so tests can verify exact degradation arithmetic: for additive
// aggregates, delivered mass + lost mass must equal the mass the runtime
// transferred. Delays exercise the engine's tolerance of a slow sink
// without corrupting state.
//
// All methods are safe for concurrent use (parallel LFTA shards share one
// FaultySink).
type FaultySink struct {
	faults SinkFaults

	mu         sync.Mutex
	deliveries uint64
	failures   uint64
	delays     uint64
	lostCount  map[attr.Set]uint64
	lostMass   map[attr.Set][]int64
}

// NewFaultySink builds a sink-fault injector.
func NewFaultySink(f SinkFaults) *FaultySink {
	return &FaultySink{
		faults:    f,
		lostCount: make(map[attr.Set]uint64),
		lostMass:  make(map[attr.Set][]int64),
	}
}

// inject decides the fate of one delivery; it returns true when the
// delivery must be dropped, after accounting the loss.
func (s *FaultySink) inject(evs []Eviction) (lost bool) {
	s.mu.Lock()
	s.deliveries++
	n := s.deliveries
	fail := s.faults.FailEvery > 0 && n%uint64(s.faults.FailEvery) == 0
	delay := s.faults.DelayEvery > 0 && n%uint64(s.faults.DelayEvery) == 0
	if fail {
		s.failures++
		for i := range evs {
			ev := &evs[i]
			s.lostCount[ev.Rel]++
			mass := s.lostMass[ev.Rel]
			if len(mass) < len(ev.Aggs) {
				mass = append(mass, make([]int64, len(ev.Aggs)-len(mass))...)
				s.lostMass[ev.Rel] = mass
			}
			for j, v := range ev.Aggs {
				mass[j] += v
			}
		}
	}
	if delay {
		s.delays++
	}
	s.mu.Unlock()
	if delay && s.faults.Delay > 0 {
		time.Sleep(s.faults.Delay)
	}
	return fail
}

// Wrap returns a Sink that injects the configured faults in front of
// inner. Each eviction is one delivery.
func (s *FaultySink) Wrap(inner Sink) Sink {
	return func(ev Eviction) {
		if s.inject([]Eviction{ev}) {
			return
		}
		inner(ev)
	}
}

// WrapBatch returns a BatchSink injecting the configured faults in front
// of inner. Each batch is one delivery: a failure loses the whole batch,
// as a dropped transfer frame would.
func (s *FaultySink) WrapBatch(inner BatchSink) BatchSink {
	return func(evs []Eviction) {
		if s.inject(evs) {
			return
		}
		inner(evs)
	}
}

// Failures returns the number of lost deliveries.
func (s *FaultySink) Failures() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures
}

// Delays returns the number of delayed deliveries.
func (s *FaultySink) Delays() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delays
}

// Lost returns the number of evictions lost for one relation and the
// summed aggregate values they carried (meaningful for additive
// aggregates such as count and sum).
func (s *FaultySink) Lost(rel attr.Set) (count uint64, mass []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lostCount[rel], append([]int64(nil), s.lostMass[rel]...)
}
