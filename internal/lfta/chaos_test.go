package lfta

import (
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/stream"
)

// TestFaultySinkAccounting: delivered mass plus lost mass must equal the
// mass the runtime transferred — the degradation arithmetic the chaos
// suite relies on.
func TestFaultySinkAccounting(t *testing.T) {
	rel := attr.MustParseSet("A")
	cfg, err := feedgraph.NewConfig([]attr.Set{rel}, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, batch := range []bool{false, true} {
		faults := NewFaultySink(SinkFaults{FailEvery: 3})
		var delivered int64
		var deliveredN uint64
		count := func(evs []Eviction) {
			for i := range evs {
				delivered += evs[i].Aggs[0]
				deliveredN++
			}
		}

		// A tiny table forces steady evictions.
		var rt *Runtime
		if batch {
			rt, err = New(cfg, cost.Alloc{rel: 2}, CountStar, 7, nil)
			if err != nil {
				t.Fatal(err)
			}
			rt.SetBatchSink(faults.WrapBatch(count), 4)
		} else {
			rt, err = New(cfg, cost.Alloc{rel: 2}, CountStar, 7,
				faults.Wrap(func(ev Eviction) { count([]Eviction{ev}) }))
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 5000; i++ {
			rt.Process(stream.Record{Attrs: []uint32{uint32(i % 97)}, Time: 0}, 0)
		}
		rt.FlushEpoch()

		lostN, lostMass := faults.Lost(rel)
		totalMass := delivered
		if len(lostMass) > 0 {
			totalMass += lostMass[0]
		}
		if totalMass != 5000 {
			t.Errorf("batch=%v: delivered %d + lost %v != 5000 records", batch, delivered, lostMass)
		}
		if faults.Failures() == 0 || lostN == 0 {
			t.Errorf("batch=%v: fault injector never fired (failures=%d lost=%d)", batch, faults.Failures(), lostN)
		}
		if deliveredN+lostN != rt.Ops().Transfers {
			t.Errorf("batch=%v: delivered %d + lost %d evictions != %d transfers", batch, deliveredN, lostN, rt.Ops().Transfers)
		}
	}
}

// TestFaultySinkDelays: injected delays slow delivery but lose nothing.
func TestFaultySinkDelays(t *testing.T) {
	faults := NewFaultySink(SinkFaults{DelayEvery: 2, Delay: time.Microsecond})
	var got int
	sink := faults.Wrap(func(Eviction) { got++ })
	for i := 0; i < 10; i++ {
		sink(Eviction{Rel: attr.MustParseSet("A"), Key: []uint32{1}, Aggs: []int64{1}})
	}
	if got != 10 {
		t.Errorf("delayed sink delivered %d of 10", got)
	}
	if faults.Delays() != 5 {
		t.Errorf("delays = %d; want 5", faults.Delays())
	}
	if faults.Failures() != 0 {
		t.Errorf("failures = %d; want 0", faults.Failures())
	}
}
