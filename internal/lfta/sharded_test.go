package lfta_test

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// The sharded tests live in an external test package to exercise the
// lfta/hfta packages together the way callers compose them.

func shardedFixture(t *testing.T) (*feedgraph.Config, cost.Alloc, []stream.Record, []attr.Set) {
	t.Helper()
	rng := rand.New(rand.NewSource(55))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 300, 30)
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 30000, 40)
	queries := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC"), attr.MustParseSet("CD")}
	cfg, err := feedgraph.ParseConfig("ABCD(AB BC CD)", queries)
	if err != nil {
		t.Fatal(err)
	}
	alloc := cost.Alloc{}
	for i, r := range cfg.Rels {
		alloc[r] = 13 + i*7 // tiny tables: plenty of collision traffic
	}
	return cfg, alloc, recs, queries
}

func TestNewShardedValidation(t *testing.T) {
	cfg, alloc, _, _ := shardedFixture(t)
	if _, err := lfta.NewSharded(cfg, alloc, lfta.CountStar, 1, nil, 0); err == nil {
		t.Error("zero shards accepted")
	}
	s, err := lfta.NewSharded(cfg, alloc, lfta.CountStar, 1, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 4 {
		t.Errorf("NumShards = %d", s.NumShards())
	}
}

func TestShardedSequentialExactness(t *testing.T) {
	cfg, alloc, recs, queries := shardedFixture(t)
	want := hfta.Reference(recs, queries, lfta.CountStar, 10)

	agg, err := hfta.New(queries, lfta.CountStar)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lfta.NewSharded(cfg, alloc, lfta.CountStar, 9, agg.Sink(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := s.Run(stream.NewSliceSource(recs), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !hfta.Equal(agg.AllRows(), want) {
		t.Error("sharded pipeline answers differ from reference")
	}
	if ops.Records != uint64(len(recs)) {
		t.Errorf("records = %d; want %d", ops.Records, len(recs))
	}
	// Every shard saw work: with a uniform hash over 300 groups and 4
	// shards, an empty shard would indicate a broken partition function.
	for i := 0; i < s.NumShards(); i++ {
		if s.Shard(i).Ops().Records == 0 {
			t.Errorf("shard %d processed nothing", i)
		}
	}
}

func TestShardedParallelExactness(t *testing.T) {
	cfg, alloc, recs, queries := shardedFixture(t)
	want := hfta.Reference(recs, queries, lfta.CountStar, 10)

	agg, err := hfta.New(queries, lfta.CountStar)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lfta.NewSharded(cfg, alloc, lfta.CountStar, 9, agg.ConcurrentSink(), 8)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := s.RunParallel(stream.NewSliceSource(recs), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !hfta.Equal(agg.AllRows(), want) {
		t.Error("parallel sharded pipeline answers differ from reference")
	}
	if ops.Records != uint64(len(recs)) {
		t.Errorf("records = %d; want %d", ops.Records, len(recs))
	}
}

func TestShardedMatchesSingleRuntimeResults(t *testing.T) {
	// Sharding changes costs (smaller effective load per table) but never
	// results: 1-shard and 4-shard runs agree with each other exactly.
	cfg, alloc, recs, queries := shardedFixture(t)
	run := func(n int) []hfta.Row {
		agg, err := hfta.New(queries, lfta.CountStar)
		if err != nil {
			t.Fatal(err)
		}
		s, err := lfta.NewSharded(cfg, alloc, lfta.CountStar, 9, agg.Sink(), n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(stream.NewSliceSource(recs), 10); err != nil {
			t.Fatal(err)
		}
		return agg.AllRows()
	}
	if !hfta.Equal(run(1), run(4)) {
		t.Error("1-shard and 4-shard results differ")
	}
}

func TestShardedGroupStability(t *testing.T) {
	// All records of one group must land on the same shard, so shard
	// table stats reflect disjoint group populations.
	cfg, alloc, recs, _ := shardedFixture(t)
	type seen struct{ shard int }
	s, err := lfta.NewSharded(cfg, alloc, lfta.CountStar, 2, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	groupShard := map[string]seen{}
	for i := range recs {
		// Route through Process and infer the shard by record counts.
		before := make([]uint64, s.NumShards())
		for j := 0; j < s.NumShards(); j++ {
			before[j] = s.Shard(j).Ops().Records
		}
		s.Process(&recs[i], 0)
		shard := -1
		for j := 0; j < s.NumShards(); j++ {
			if s.Shard(j).Ops().Records != before[j] {
				shard = j
				break
			}
		}
		key := stream.GroupKey(attr.MustParseSet("ABCD"), recs[i])
		if prev, ok := groupShard[key]; ok && prev.shard != shard {
			t.Fatalf("group %s visited shards %d and %d", key, prev.shard, shard)
		}
		groupShard[key] = seen{shard: shard}
		if i > 2000 {
			break
		}
	}
}
