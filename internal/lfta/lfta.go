// Package lfta executes a configuration at the low-level query node: the
// simulator equivalent of Gigascope's NIC-resident LFTA.
//
// A Runtime owns one hash table per instantiated relation. Each arriving
// record probes the raw tables; a collision evicts the resident entry,
// which cascades into the tables of the relations the collider feeds (and,
// if the relation is a user query, transfers to the HFTA). At the end of
// an epoch the tables flush top-down the same way. The runtime counts
// every probe (a c1 operation) and every transfer to the HFTA (a c2
// operation), which is exactly the "actual cost" metric of the paper's
// measured experiments (Figures 13-15).
//
// The record path is allocation-free in steady state: collision victims
// are copied into per-cascade-depth scratch frames (hashtab.ProbeInto),
// and HFTA transfers are staged in an arena-backed eviction buffer that
// flushes to a BatchSink in batches instead of calling a sink per entry.
package lfta

import (
	"fmt"
	"sort"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/hashtab"
	"repro/internal/stream"
)

// AggSpec describes one aggregate computed by every table: the combine
// operation and the record attribute supplying the value (Input < 0 means
// the constant 1, i.e. count(*)).
type AggSpec struct {
	Op    hashtab.AggOp
	Input int
}

// CountStar is the aggregate list of the paper's queries.
var CountStar = []AggSpec{{Op: hashtab.Sum, Input: -1}}

// Eviction is an entry transferred to the HFTA: the relation it belongs
// to, its group key (projected values, attribute order), aggregates, and
// the epoch it was accumulated in.
type Eviction struct {
	Rel   attr.Set
	Key   []uint32
	Aggs  []int64
	Epoch uint32
}

// Sink receives evictions one at a time; typically an HFTA aggregator.
// The Eviction's slices are fresh copies the sink may retain.
type Sink func(Eviction)

// BatchSink receives batches of evictions. The batch and the entries'
// Key/Aggs slices alias buffer memory owned by the runtime and are valid
// only for the duration of the call: implementations must fold them into
// their own state before returning (hfta.(*Aggregator).ConsumeBatch does).
type BatchSink func([]Eviction)

// RunSink receives HFTA transfers as sealed columnar runs: all entries
// belong to one query relation and one epoch, keys is flat n×arity and
// aggs flat n×naggs in transfer order. The slices alias buffer memory
// owned by the runtime and are valid only for the duration of the call
// (hfta.(*Aggregator).MergeRun folds them in place). A run sink skips
// the per-entry Eviction structs of BatchSink entirely and lets the
// receiver pre-hash and lock-shard the whole run at once.
type RunSink func(rel attr.Set, epoch uint32, keys []uint32, aggs []int64)

// DefaultEvictionBatch is the eviction-buffer capacity used when
// SetBatchSink is given a non-positive batch size.
const DefaultEvictionBatch = 256

// Ops are the cumulative operation counts of a runtime.
type Ops struct {
	Probes    uint64 // c1 operations: every hash-table probe/update
	Transfers uint64 // c2 operations: entries transferred to the HFTA
	Records   uint64 // records processed
}

// ActualCost returns probes·c1 + transfers·c2, the measured cost metric.
func (o Ops) ActualCost(c1, c2 float64) float64 {
	return float64(o.Probes)*c1 + float64(o.Transfers)*c2
}

// PerRecordCost normalizes the actual cost by the number of records.
func (o Ops) PerRecordCost(c1, c2 float64) float64 {
	if o.Records == 0 {
		return 0
	}
	return o.ActualCost(c1, c2) / float64(o.Records)
}

// frame is the reusable scratch of one cascade level: the collision
// victim copied out of a table plus the projected child key fed onward.
// Frames are pointer-stable so deeper cascades can grow the frame stack
// without invalidating shallower levels.
type frame struct {
	victim   hashtab.Entry
	childKey []uint32
}

// childEdge is one compiled feeding edge: the child's node index and the
// projection plan mapping parent-key positions to the child key.
type childEdge struct {
	node int
	plan []int
}

// node is one relation's compiled cascade state. The feeding graph is
// static for the lifetime of a runtime, so it is flattened at
// construction into an index-addressed array: the per-probe path does
// pointer and slice loads only, no map lookups on relation sets (which
// profiled as ~10% of the record hot path before the flattening).
type node struct {
	rel      attr.Set
	tab      *hashtab.Table
	isQuery  bool
	contig   bool      // rel is attributes 0..arity-1: projecting a record of that arity is the identity
	ids      []attr.ID // rel's attribute ids, for gathering record runs
	children []childEdge
}

// Runtime executes one configuration.
type Runtime struct {
	cfg    *feedgraph.Config
	aggs   []AggSpec
	nodes  []node                      // compiled cascade, indexed as cfg.Rels
	rawIdx []int                       // node indices of the raw (record-probed) relations
	flush  []int                       // node indices, parents strictly before children
	tables map[attr.Set]*hashtab.Table // relation→table view for stats and tests
	epoch  uint32
	ops    Ops

	sink      Sink
	batchSink BatchSink
	batchCap  int
	batch     []Eviction
	keyArena  []uint32
	aggArena  []int64

	// Columnar transfer path (SetRunSink): one buffered run per query
	// node. Buffers hold entries of a single epoch — every Process* entry
	// point flushes them before adopting a new epoch tag.
	runSink RunSink
	runBufs []evRunBuf

	keyBuf   []uint32
	deltaBuf []int64
	frames   []*frame
	colSel   [][]uint32 // ProcessColumns per-relation key-column selection scratch

	// Batched-path state (ProcessBatch): whether every aggregate input is
	// the constant 1 (count(*)-style, the common case — the delta run is
	// then a prefilled block of ones reused verbatim), the columnar delta
	// run, and per-cascade-depth run scratch.
	constDelta bool
	deltaRun   []int64
	runFrames  []*runFrame
}

// runFrame is the reusable scratch of one cascade depth on the batched
// path: the columnar key run fed into one table and the victims that
// run evicts. Frames are pointer-stable like the scalar frames.
type runFrame struct {
	keys    []uint32
	victims hashtab.VictimRun
}

// evRunBuf accumulates one query node's HFTA transfers in columnar form
// (flat keys, flat aggs) until the run seals — batchCap entries, an
// epoch change, or FlushEpoch. Victim runs append as whole blocks.
type evRunBuf struct {
	keys []uint32
	aggs []int64
	n    int
}

// New builds a runtime for the configuration with the given bucket
// allocation. Seed derives per-table hash seeds. The sink may be nil, in
// which case query evictions are counted but discarded; SetBatchSink
// installs the faster batched transfer path instead.
func New(cfg *feedgraph.Config, alloc cost.Alloc, aggs []AggSpec, seed uint64, sink Sink) (*Runtime, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("lfta: need at least one aggregate")
	}
	ops := make([]hashtab.AggOp, len(aggs))
	for i, a := range aggs {
		ops[i] = a.Op
	}
	r := &Runtime{
		cfg:    cfg,
		aggs:   append([]AggSpec(nil), aggs...),
		nodes:  make([]node, len(cfg.Rels)),
		tables: make(map[attr.Set]*hashtab.Table, len(cfg.Rels)),
		sink:   sink,
	}
	index := make(map[attr.Set]int, len(cfg.Rels))
	for i, rel := range cfg.Rels {
		b, err := alloc.Buckets(rel)
		if err != nil {
			return nil, err
		}
		t, err := hashtab.New(rel, b, ops, seed+uint64(i)*0x9e3779b97f4a7c15+1)
		if err != nil {
			return nil, err
		}
		contig := true
		for j, id := range rel.IDs() {
			if int(id) != j {
				contig = false
				break
			}
		}
		r.nodes[i] = node{rel: rel, tab: t, isQuery: cfg.IsQuery(rel), contig: contig, ids: rel.IDs()}
		r.tables[rel] = t
		index[rel] = i
	}
	r.constDelta = true
	for _, a := range aggs {
		if a.Input >= 0 {
			r.constDelta = false
			break
		}
	}
	for i, rel := range cfg.Rels {
		for _, child := range cfg.Children(rel) {
			r.nodes[i].children = append(r.nodes[i].children, childEdge{
				node: index[child],
				plan: projectionPlan(rel, child),
			})
		}
	}
	for _, rel := range cfg.Raws() {
		r.rawIdx = append(r.rawIdx, index[rel])
	}
	order := append([]attr.Set(nil), cfg.Rels...)
	sort.Slice(order, func(i, j int) bool {
		if a, b := order[i].Size(), order[j].Size(); a != b {
			return a > b
		}
		return order[i] < order[j]
	})
	for _, rel := range order {
		r.flush = append(r.flush, index[rel])
	}
	return r, nil
}

// projectionPlan returns, for each attribute of child, its index within
// parent's projected key (both in attribute order).
func projectionPlan(parent, child attr.Set) []int {
	pids := parent.IDs()
	pos := make(map[attr.ID]int, len(pids))
	for i, id := range pids {
		pos[id] = i
	}
	cids := child.IDs()
	plan := make([]int, len(cids))
	for i, id := range cids {
		plan[i] = pos[id]
	}
	return plan
}

// SetBatchSink installs a batched transfer path: query evictions are
// copied into an arena-backed buffer and handed to fn in batches of up to
// batchSize entries (DefaultEvictionBatch if batchSize <= 0), instead of
// invoking a Sink per eviction. The buffer always drains inside
// FlushEpoch, so per-epoch results are complete at epoch boundaries.
// A batch sink takes precedence over a Sink passed to New.
func (r *Runtime) SetBatchSink(fn BatchSink, batchSize int) {
	if batchSize <= 0 {
		batchSize = DefaultEvictionBatch
	}
	r.batchSink = fn
	r.batchCap = batchSize
	if cap(r.batch) < batchSize {
		r.batch = make([]Eviction, 0, batchSize)
	}
}

// SetRunSink installs the columnar transfer path: query evictions
// accumulate per query node as flat (keys, aggs) runs and are handed to
// fn sealed — at batchSize entries (DefaultEvictionBatch if batchSize
// <= 0), at every epoch change, and inside FlushEpoch — so per-epoch
// results are complete at epoch boundaries and every run carries exactly
// one epoch tag. A run sink takes precedence over a batch sink and a
// Sink.
func (r *Runtime) SetRunSink(fn RunSink, batchSize int) {
	if batchSize <= 0 {
		batchSize = DefaultEvictionBatch
	}
	r.runSink = fn
	r.batchCap = batchSize
	if r.runBufs == nil {
		r.runBufs = make([]evRunBuf, len(r.nodes))
	}
}

// Config returns the configuration the runtime executes.
func (r *Runtime) Config() *feedgraph.Config { return r.cfg }

// Ops returns the cumulative operation counters.
func (r *Runtime) Ops() Ops { return r.ops }

// Epoch returns the epoch currently accumulating.
func (r *Runtime) Epoch() uint32 { return r.epoch }

// TableStats exposes each table's hashtab counters, keyed by relation;
// used for measured collision rates and flow-length estimation.
func (r *Runtime) TableStats() map[attr.Set]hashtab.Stats {
	out := make(map[attr.Set]hashtab.Stats, len(r.tables))
	for rel, t := range r.tables {
		out[rel] = t.Stats()
	}
	return out
}

// ResetOps zeroes the runtime and table counters (not table contents).
func (r *Runtime) ResetOps() {
	r.ops = Ops{}
	r.ResetTableStats()
}

// Reset empties every table and zeroes all counters without releasing
// any allocated storage (tables, scratch frames, eviction buffers): the
// runtime behaves as freshly constructed, and a subsequent same-shaped
// workload runs allocation-free from the first record. Buffered
// evictions are discarded, not flushed — call FlushEpoch first if they
// matter.
func (r *Runtime) Reset() {
	for i := range r.nodes {
		r.nodes[i].tab.Clear()
		r.nodes[i].tab.ResetStats()
	}
	r.ops = Ops{}
	r.epoch = 0
	r.batch = r.batch[:0]
	r.keyArena = r.keyArena[:0]
	r.aggArena = r.aggArena[:0]
	for i := range r.runBufs {
		b := &r.runBufs[i]
		b.keys = b.keys[:0]
		b.aggs = b.aggs[:0]
		b.n = 0
	}
}

// ResetTableStats zeroes the per-table counters while preserving the
// runtime's cumulative operation counts; the adaptive engine calls this at
// epoch boundaries so collision-rate and flow-length measurements reflect
// the current epoch only.
func (r *Runtime) ResetTableStats() {
	for _, t := range r.tables {
		t.ResetStats()
	}
}

// frame returns the scratch frame for one cascade depth, growing the
// stack on first use of a depth.
func (r *Runtime) frame(depth int) *frame {
	for len(r.frames) <= depth {
		r.frames = append(r.frames, &frame{})
	}
	return r.frames[depth]
}

// Process feeds one record into the raw tables. epoch tags any evictions
// it causes; the engine must call FlushEpoch before the first record of a
// new epoch.
func (r *Runtime) Process(rec stream.Record, epoch uint32) {
	r.beginEpoch(epoch)
	r.ops.Records++
	if cap(r.deltaBuf) < len(r.aggs) {
		r.deltaBuf = make([]int64, len(r.aggs))
	}
	deltas := r.deltaBuf[:len(r.aggs)]
	for i, a := range r.aggs {
		if a.Input < 0 {
			deltas[i] = 1
		} else {
			deltas[i] = int64(rec.Attrs[a.Input])
		}
	}
	for _, ni := range r.rawIdx {
		n := &r.nodes[ni]
		if n.contig && len(rec.Attrs) == n.tab.Arity() {
			// The raw relation is the record's full attribute vector (the
			// usual single-raw configuration): probe it directly instead
			// of copying through the projection buffer. ProbeInto does
			// not retain the key.
			r.feed(ni, rec.Attrs, deltas, 0)
			continue
		}
		r.keyBuf = n.rel.Project(rec.Attrs, r.keyBuf)
		r.feed(ni, r.keyBuf, deltas, 0)
	}
}

// ProcessBatch feeds a batch of records sharing one epoch; the caller
// guarantees no epoch boundary falls inside the batch.
//
// This is the memory-level-parallel path: the whole run's keys are
// gathered into a columnar buffer per raw relation and probed through
// hashtab.ProbeBatchInto, and collision victims cascade into child
// tables as whole runs rather than one depth-first probe chain per
// record. The feeding graph is a tree (each relation has exactly one
// parent), so every table still sees exactly the probe sequence the
// scalar path would send it — same outcomes, same counters, same final
// contents; only the memory access schedule changes. The equivalence
// property suite (TestBatchedScalarOracleEquivalence) pins this.
func (r *Runtime) ProcessBatch(recs []stream.Record, epoch uint32) {
	n := len(recs)
	if n == 0 {
		return
	}
	r.beginEpoch(epoch)
	r.ops.Records += uint64(n)
	na := len(r.aggs)

	// Build the delta run (n×na, columnar). Count(*)-style workloads keep
	// a prefilled block of ones; it is read-only to the probe kernel, so
	// it survives across batches and only grows.
	need := n * na
	if cap(r.deltaRun) < need {
		r.deltaRun = make([]int64, need)
		if r.constDelta {
			for i := range r.deltaRun {
				r.deltaRun[i] = 1
			}
		}
	}
	dr := r.deltaRun[:need]
	if !r.constDelta {
		for i := range recs {
			for j, a := range r.aggs {
				if a.Input < 0 {
					dr[i*na+j] = 1
				} else {
					dr[i*na+j] = int64(recs[i].Attrs[a.Input])
				}
			}
		}
	}

	for _, ni := range r.rawIdx {
		nd := &r.nodes[ni]
		a := nd.tab.Arity()
		f := r.runFrame(0)
		if cap(f.keys) < n*a {
			f.keys = make([]uint32, 0, n*a)
		}
		ks := f.keys[:0]
		if nd.contig {
			// The raw relation is a record prefix: gather by block copy.
			for i := range recs {
				ks = append(ks, recs[i].Attrs[:a]...)
			}
		} else {
			for i := range recs {
				attrs := recs[i].Attrs
				for _, id := range nd.ids {
					ks = append(ks, attrs[id])
				}
			}
		}
		f.keys = ks
		r.ops.Probes += uint64(n)
		nd.tab.ProbeBatchInto(ks, dr, &f.victims)
		r.cascadeRun(ni, &f.victims, 1)
	}
}

// ProcessRun feeds a run of records given as one flat attribute block
// (record-major: n = len(attrs)/width records of width words each), all
// sharing one epoch — the zero-copy sibling of ProcessBatch for callers
// that already stage attribute vectors contiguously (the engine's
// staging arena). When a raw relation is the full record vector (the
// usual single-raw configuration), the staged block IS its probe run:
// the table is probed directly with no per-record gather at all.
// Outcomes and counters are identical to feeding the same records
// through Process one at a time; the equivalence property suite pins
// this path too.
func (r *Runtime) ProcessRun(attrs []uint32, width int, epoch uint32) {
	if len(attrs) == 0 {
		return
	}
	if width <= 0 || len(attrs)%width != 0 {
		panic(fmt.Sprintf("lfta: run of %d attribute words at record width %d", len(attrs), width))
	}
	n := len(attrs) / width
	r.beginEpoch(epoch)
	r.ops.Records += uint64(n)
	na := len(r.aggs)

	need := n * na
	if cap(r.deltaRun) < need {
		r.deltaRun = make([]int64, need)
		if r.constDelta {
			for i := range r.deltaRun {
				r.deltaRun[i] = 1
			}
		}
	}
	dr := r.deltaRun[:need]
	if !r.constDelta {
		for i := 0; i < n; i++ {
			rec := attrs[i*width : (i+1)*width]
			for j, a := range r.aggs {
				if a.Input < 0 {
					dr[i*na+j] = 1
				} else {
					dr[i*na+j] = int64(rec[a.Input])
				}
			}
		}
	}

	for _, ni := range r.rawIdx {
		nd := &r.nodes[ni]
		a := nd.tab.Arity()
		f := r.runFrame(0)
		if nd.contig && a == width {
			// Full-width identity projection: probe the staged block
			// in place. ProbeBatchInto does not retain it.
			r.ops.Probes += uint64(n)
			nd.tab.ProbeBatchInto(attrs, dr, &f.victims)
			r.cascadeRun(ni, &f.victims, 1)
			continue
		}
		if cap(f.keys) < n*a {
			f.keys = make([]uint32, 0, n*a)
		}
		ks := f.keys[:0]
		if nd.contig {
			// Record-prefix relation: gather by strided block copy.
			for o := 0; o < len(attrs); o += width {
				ks = append(ks, attrs[o:o+a]...)
			}
		} else {
			for i := 0; i < n; i++ {
				rec := attrs[i*width : (i+1)*width]
				for _, id := range nd.ids {
					ks = append(ks, rec[id])
				}
			}
		}
		f.keys = ks
		r.ops.Probes += uint64(n)
		nd.tab.ProbeBatchInto(ks, dr, &f.victims)
		r.cascadeRun(ni, &f.victims, 1)
	}
}

// ProcessColumns feeds a run of records given column-major — cols is one
// slice per record attribute, all equally long — sharing one epoch: the
// native path of the columnar pipeline (sealed router runs, the engine's
// columnar staging). The delta run is built with stride-1 reads of the
// input columns, and each raw relation's key run is just a selection of
// the input columns (projection is free: no gather, contiguous or not),
// probed through ProbeColumnsInto. Outcomes and counters are identical
// to feeding the same records through Process one at a time; the
// columnar equivalence property suite pins this.
func (r *Runtime) ProcessColumns(cols [][]uint32, epoch uint32) {
	width := len(cols)
	if width == 0 {
		return
	}
	n := len(cols[0])
	if n == 0 {
		return
	}
	r.beginEpoch(epoch)
	r.ops.Records += uint64(n)
	na := len(r.aggs)

	need := n * na
	if cap(r.deltaRun) < need {
		r.deltaRun = make([]int64, need)
		if r.constDelta {
			for i := range r.deltaRun {
				r.deltaRun[i] = 1
			}
		}
	}
	dr := r.deltaRun[:need]
	if !r.constDelta {
		for j, a := range r.aggs {
			if a.Input < 0 {
				for i := 0; i < n; i++ {
					dr[i*na+j] = 1
				}
			} else {
				col := cols[a.Input][:n]
				for i := 0; i < n; i++ {
					dr[i*na+j] = int64(col[i])
				}
			}
		}
	}

	if cap(r.colSel) < width {
		r.colSel = make([][]uint32, 0, width)
	}
	for _, ni := range r.rawIdx {
		nd := &r.nodes[ni]
		sel := r.colSel[:0]
		for _, id := range nd.ids {
			sel = append(sel, cols[id])
		}
		r.colSel = sel
		f := r.runFrame(0)
		r.ops.Probes += uint64(n)
		nd.tab.ProbeColumnsInto(sel, dr, &f.victims)
		r.cascadeRun(ni, &f.victims, 1)
	}
	// Drop the borrowed column references so the caller's batch can be
	// recycled without this scratch pinning it.
	for i := range r.colSel {
		r.colSel[i] = nil
	}
	r.colSel = r.colSel[:0]
}

// runFrame returns the batched-path scratch for one cascade depth,
// growing the stack on first use of a depth.
func (r *Runtime) runFrame(depth int) *runFrame {
	for len(r.runFrames) <= depth {
		r.runFrames = append(r.runFrames, &runFrame{})
	}
	return r.runFrames[depth]
}

// cascadeRun routes a run of victims evicted from a node: each child
// table is probed with the whole run at once (victim keys projected into
// the child's key run, victim aggregates passed as the child's deltas
// verbatim), recursing on the children's own victims; query victims
// transfer to the HFTA. Victims stay in eviction order throughout, so
// per-table probe sequences match the scalar cascade exactly.
func (r *Runtime) cascadeRun(ni int, vr *hashtab.VictimRun, depth int) {
	m := vr.Len()
	if m == 0 {
		return
	}
	nd := &r.nodes[ni]
	a := nd.tab.Arity()
	for _, edge := range nd.children {
		ca := len(edge.plan)
		f := r.runFrame(depth)
		if cap(f.keys) < m*ca {
			f.keys = make([]uint32, 0, m*ca)
		}
		ck := f.keys[:0]
		for i := 0; i < m; i++ {
			base := i * a
			for _, idx := range edge.plan {
				ck = append(ck, vr.Keys[base+idx])
			}
		}
		f.keys = ck
		r.ops.Probes += uint64(m)
		r.nodes[edge.node].tab.ProbeBatchInto(ck, vr.Aggs, &f.victims)
		r.cascadeRun(edge.node, &f.victims, depth+1)
	}
	if nd.isQuery {
		r.ops.Transfers += uint64(m)
		switch {
		case r.runSink != nil:
			// The victim run already is the columnar transfer layout:
			// append it to the node's buffered run as two block copies.
			b := &r.runBufs[ni]
			b.keys = append(b.keys, vr.Keys...)
			b.aggs = append(b.aggs, vr.Aggs...)
			b.n += m
			if b.n >= r.batchCap {
				r.flushRun(ni)
			}
		case r.batchSink != nil:
			for i := 0; i < m; i++ {
				r.pushEviction(nd.rel, vr.Key(i), vr.AggRow(i))
			}
		case r.sink != nil:
			for i := 0; i < m; i++ {
				r.sink(Eviction{
					Rel:   nd.rel,
					Key:   append([]uint32(nil), vr.Key(i)...),
					Aggs:  append([]int64(nil), vr.AggRow(i)...),
					Epoch: r.epoch,
				})
			}
		}
	}
}

// feed probes a node's table with (key, deltas) and cascades any
// eviction, using the scratch frame of the given cascade depth for the
// victim.
func (r *Runtime) feed(ni int, key []uint32, deltas []int64, depth int) {
	r.ops.Probes++
	f := r.frame(depth)
	if !r.nodes[ni].tab.ProbeInto(key, deltas, &f.victim) {
		return
	}
	r.emit(ni, f.victim.Key, f.victim.Aggs, depth)
}

// emit routes an evicted entry of a node: into each child table, and to
// the HFTA when the relation is a user query. key and aggs may alias
// scratch or table storage; emit copies before anything escapes the call.
func (r *Runtime) emit(ni int, key []uint32, aggs []int64, depth int) {
	n := &r.nodes[ni]
	for _, edge := range n.children {
		f := r.frame(depth)
		if cap(f.childKey) < len(edge.plan) {
			f.childKey = make([]uint32, len(edge.plan))
		}
		ck := f.childKey[:len(edge.plan)]
		for i, idx := range edge.plan {
			ck[i] = key[idx]
		}
		r.feed(edge.node, ck, aggs, depth+1)
	}
	if n.isQuery {
		r.ops.Transfers++
		switch {
		case r.runSink != nil:
			b := &r.runBufs[ni]
			b.keys = append(b.keys, key...)
			b.aggs = append(b.aggs, aggs...)
			b.n++
			if b.n >= r.batchCap {
				r.flushRun(ni)
			}
		case r.batchSink != nil:
			r.pushEviction(n.rel, key, aggs)
		case r.sink != nil:
			r.sink(Eviction{
				Rel:   n.rel,
				Key:   append([]uint32(nil), key...),
				Aggs:  append([]int64(nil), aggs...),
				Epoch: r.epoch,
			})
		}
	}
}

// pushEviction copies one transfer into the eviction buffer, flushing the
// batch to the sink when full. Key and aggregate values land in shared
// arenas so steady-state batches allocate nothing.
func (r *Runtime) pushEviction(rel attr.Set, key []uint32, aggs []int64) {
	ks := len(r.keyArena)
	r.keyArena = append(r.keyArena, key...)
	as := len(r.aggArena)
	r.aggArena = append(r.aggArena, aggs...)
	r.batch = append(r.batch, Eviction{
		Rel:   rel,
		Key:   r.keyArena[ks:len(r.keyArena):len(r.keyArena)],
		Aggs:  r.aggArena[as:len(r.aggArena):len(r.aggArena)],
		Epoch: r.epoch,
	})
	if len(r.batch) >= r.batchCap {
		r.flushBatch()
	}
}

// beginEpoch adopts a batch's epoch tag. Columnar transfer runs carry
// exactly one epoch, so any runs still buffered under the previous tag
// seal first.
func (r *Runtime) beginEpoch(epoch uint32) {
	if r.runSink != nil && epoch != r.epoch {
		r.flushRuns()
	}
	r.epoch = epoch
}

// flushRun seals one node's buffered columnar run into the run sink and
// resets the buffer for reuse.
func (r *Runtime) flushRun(ni int) {
	b := &r.runBufs[ni]
	if b.n == 0 {
		return
	}
	r.runSink(r.nodes[ni].rel, r.epoch, b.keys, b.aggs)
	b.keys = b.keys[:0]
	b.aggs = b.aggs[:0]
	b.n = 0
}

// flushRuns seals every node's buffered columnar run.
func (r *Runtime) flushRuns() {
	for ni := range r.runBufs {
		r.flushRun(ni)
	}
}

// flushBatch hands the buffered evictions to the batch sink and resets
// the buffer and arenas for reuse.
func (r *Runtime) flushBatch() {
	if len(r.batch) == 0 {
		return
	}
	r.batchSink(r.batch)
	r.batch = r.batch[:0]
	r.keyArena = r.keyArena[:0]
	r.aggArena = r.aggArena[:0]
}

// FlushEpoch performs the end-of-epoch update: tables are scanned from the
// raw level down, each entry propagating into the tables it feeds (and to
// the HFTA for queries); collision victims during the flush cascade
// further down immediately. Afterwards every table is empty and any
// buffered evictions have reached the batch sink.
func (r *Runtime) FlushEpoch() {
	for _, ni := range r.flush {
		ni := ni
		r.nodes[ni].tab.Drain(func(e hashtab.Entry) {
			r.emit(ni, e.Key, e.Aggs, 0)
		})
	}
	if r.runSink != nil {
		r.flushRuns()
	}
	if r.batchSink != nil {
		r.flushBatch()
	}
}

// Run processes an entire record stream with the given epoch length
// (0 = one unbounded epoch), flushing at every epoch boundary and once at
// the end. It returns the operation counters.
func (r *Runtime) Run(src stream.Source, epochLen uint32) (Ops, error) {
	clock := stream.NewClock(epochLen)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		epoch, rolled := clock.Advance(rec.Time)
		if rolled {
			r.FlushEpoch()
		}
		r.Process(rec, epoch)
	}
	if err := src.Err(); err != nil {
		return r.ops, err
	}
	if clock.Started() {
		r.FlushEpoch()
	}
	return r.ops, nil
}
