package lfta_test

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// Property: for any trace, RunParallel over n shards (batched eviction
// buffers, concurrent HFTA merge) produces exactly the same sorted rows
// as a single sequential Runtime — and both match the oracle. Sharding
// and batching change costs, never answers.
func TestParallelShardedEquivalence(t *testing.T) {
	queries := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC"), attr.MustParseSet("CD")}
	cfg, err := feedgraph.ParseConfig("ABCD(AB BC CD)", queries)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(900 + int64(trial)))
		schema := stream.MustSchema(4)
		groups := 50 + rng.Intn(400)
		u, err := gen.UniformUniverse(rng, schema, groups, 30)
		if err != nil {
			t.Fatal(err)
		}
		nrecs := 2000 + rng.Intn(8000)
		duration := uint32(rng.Intn(90)) // several epochs at epochLen 10, or one at 0
		recs := gen.Uniform(rng, u, nrecs, duration)
		epochLen := uint32(10)
		if trial == 3 {
			epochLen = 0 // unbounded single epoch
		}
		alloc := cost.Alloc{}
		for i, r := range cfg.Rels {
			alloc[r] = 7 + i*5 + rng.Intn(40) // tiny tables: heavy eviction traffic
		}

		want := hfta.Reference(recs, queries, lfta.CountStar, epochLen)

		// Sequential single runtime through the per-eviction sink path.
		seqAgg, err := hfta.New(queries, lfta.CountStar)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := lfta.New(cfg, alloc, lfta.CountStar, 21, seqAgg.Sink())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(stream.NewSliceSource(recs), epochLen); err != nil {
			t.Fatal(err)
		}
		seqRows := seqAgg.AllRows()
		if !hfta.Equal(seqRows, want) {
			t.Fatalf("trial %d: sequential runtime differs from reference", trial)
		}

		for _, n := range []int{1, 2, 4, 8} {
			parAgg, err := hfta.New(queries, lfta.CountStar)
			if err != nil {
				t.Fatal(err)
			}
			s, err := lfta.NewSharded(cfg, alloc, lfta.CountStar, 21, nil, n)
			if err != nil {
				t.Fatal(err)
			}
			// Small batches force mid-epoch buffer flushes as well as the
			// FlushEpoch drain.
			s.SetBatchSink(parAgg.ConsumeBatch, 16)
			ops, err := s.RunParallel(stream.NewSliceSource(recs), epochLen)
			if err != nil {
				t.Fatal(err)
			}
			if ops.Records != uint64(len(recs)) {
				t.Errorf("trial %d, %d shards: processed %d records, want %d", trial, n, ops.Records, len(recs))
			}
			if !hfta.Equal(parAgg.AllRows(), seqRows) {
				t.Errorf("trial %d: %d-shard RunParallel rows differ from single sequential runtime", trial, n)
			}
		}
	}
}

// The batched transfer path must agree with the per-eviction sink path on
// the same runtime configuration, including epoch boundaries falling
// between buffer flushes.
func TestBatchSinkMatchesSink(t *testing.T) {
	queries := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("CD")}
	cfg, err := feedgraph.ParseConfig("ABCD(AB CD)", queries)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 200, 30)
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 12000, 50)
	alloc := cost.Alloc{}
	for i, r := range cfg.Rels {
		alloc[r] = 11 + i*3
	}
	run := func(batch int) []hfta.Row {
		agg, err := hfta.New(queries, lfta.CountStar)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := lfta.New(cfg, alloc, lfta.CountStar, 5, agg.Sink())
		if err != nil {
			t.Fatal(err)
		}
		if batch > 0 {
			rt.SetBatchSink(agg.ConsumeBatch, batch)
		}
		if _, err := rt.Run(stream.NewSliceSource(recs), 10); err != nil {
			t.Fatal(err)
		}
		return agg.AllRows()
	}
	want := run(0)
	for _, batch := range []int{1, 3, 64, 4096} {
		if !hfta.Equal(run(batch), want) {
			t.Errorf("batch size %d: rows differ from per-eviction sink path", batch)
		}
	}
}
