package lfta

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hashtab"
	"repro/internal/stream"
)

func sets(names ...string) []attr.Set {
	out := make([]attr.Set, len(names))
	for i, n := range names {
		out[i] = attr.MustParseSet(n)
	}
	return out
}

func allocOf(m map[string]int) cost.Alloc {
	a := cost.Alloc{}
	for k, v := range m {
		a[attr.MustParseSet(k)] = v
	}
	return a
}

func TestNewValidation(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("A"), nil)
	if _, err := New(cfg, allocOf(map[string]int{"A": 10}), nil, 0, nil); err == nil {
		t.Error("no aggregates accepted")
	}
	if _, err := New(cfg, cost.Alloc{}, CountStar, 0, nil); err == nil {
		t.Error("missing allocation accepted")
	}
}

func TestSingleQueryCounts(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("A"), nil)
	var evs []Eviction
	rt, err := New(cfg, allocOf(map[string]int{"A": 1024}), CountStar, 1, func(e Eviction) { evs = append(evs, e) })
	if err != nil {
		t.Fatal(err)
	}
	// Section 2.2's stream prefix.
	for _, v := range []uint32{2, 24, 2, 2, 3, 17, 3, 4} {
		rt.Process(stream.Record{Attrs: []uint32{v}}, 0)
	}
	rt.FlushEpoch()
	total := int64(0)
	for _, e := range evs {
		total += e.Aggs[0]
		if e.Rel != attr.MustParseSet("A") || e.Epoch != 0 {
			t.Errorf("bad eviction %+v", e)
		}
	}
	if total != 8 {
		t.Errorf("evicted counts sum to %d; want 8", total)
	}
	ops := rt.Ops()
	if ops.Records != 8 || ops.Probes != 8 {
		t.Errorf("ops = %+v", ops)
	}
	// Large table, no collisions: transfers = flushed groups = 5.
	if ops.Transfers != 5 {
		t.Errorf("transfers = %d; want 5 distinct groups", ops.Transfers)
	}
}

func TestPhantomCascade(t *testing.T) {
	// ABC feeds A, B, C. Tiny phantom table forces collisions; the
	// victims must land in the query tables and then the sink, with no
	// count lost.
	cfg, _ := feedgraph.NewConfig(sets("A", "B", "C"), sets("ABC"))
	var total int64
	rt, err := New(cfg, allocOf(map[string]int{"ABC": 2, "A": 64, "B": 64, "C": 64}),
		CountStar, 7, func(e Eviction) { total += e.Aggs[0] })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const n = 5000
	for i := 0; i < n; i++ {
		rt.Process(stream.Record{Attrs: []uint32{uint32(rng.Intn(20)), uint32(rng.Intn(20)), uint32(rng.Intn(20))}}, 0)
	}
	rt.FlushEpoch()
	// Each record contributes once per query: 3 queries × n records.
	if total != 3*n {
		t.Errorf("sink saw total count %d; want %d", total, 3*n)
	}
	ops := rt.Ops()
	// Only one raw table: exactly n raw probes plus cascade probes.
	if ops.Probes < n {
		t.Errorf("probes = %d; want ≥ %d", ops.Probes, n)
	}
	if ops.Records != n {
		t.Errorf("records = %d", ops.Records)
	}
}

func TestPhantomLeafVictimsAreDropped(t *testing.T) {
	// A phantom with no children in the configuration (possible when a
	// caller builds a degenerate config directly) must not transfer to
	// the HFTA.
	cfg, _ := feedgraph.NewConfig(sets("AB"), sets("ABC"))
	// ABC feeds only AB; make AB huge and ABC tiny. ABC victims feed AB;
	// AB itself rarely collides.
	var phantomEvs int
	rt, err := New(cfg, allocOf(map[string]int{"ABC": 1, "AB": 4096}), CountStar, 5,
		func(e Eviction) {
			if e.Rel == attr.MustParseSet("ABC") {
				phantomEvs++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		rt.Process(stream.Record{Attrs: []uint32{uint32(rng.Intn(30)), uint32(rng.Intn(30)), uint32(rng.Intn(30))}}, 0)
	}
	rt.FlushEpoch()
	if phantomEvs != 0 {
		t.Errorf("%d phantom evictions reached the sink", phantomEvs)
	}
}

func TestEpochTagging(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("A"), nil)
	var evs []Eviction
	rt, err := New(cfg, allocOf(map[string]int{"A": 64}), CountStar, 9, func(e Eviction) { evs = append(evs, e) })
	if err != nil {
		t.Fatal(err)
	}
	src := stream.NewSliceSource([]stream.Record{
		{Attrs: []uint32{1}, Time: 0},
		{Attrs: []uint32{1}, Time: 5},
		{Attrs: []uint32{1}, Time: 10}, // epoch 1 begins (len 10)
		{Attrs: []uint32{2}, Time: 25}, // epoch 2
	})
	if _, err := rt.Run(src, 10); err != nil {
		t.Fatal(err)
	}
	// Expect: flush of epoch 0 with (1,2); flush of epoch 1 with (1,1);
	// flush of epoch 2 with (2,1).
	if len(evs) != 3 {
		t.Fatalf("evictions = %+v", evs)
	}
	wantEpochs := []uint32{0, 1, 2}
	wantCounts := []int64{2, 1, 1}
	for i, e := range evs {
		if e.Epoch != wantEpochs[i] || e.Aggs[0] != wantCounts[i] {
			t.Errorf("eviction %d = epoch %d count %d; want epoch %d count %d",
				i, e.Epoch, e.Aggs[0], wantEpochs[i], wantCounts[i])
		}
	}
}

func TestSumMinMaxAggregates(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("A"), nil)
	aggs := []AggSpec{
		{Op: hashtab.Sum, Input: -1}, // count(*)
		{Op: hashtab.Sum, Input: 1},  // sum(B)
		{Op: hashtab.Min, Input: 1},  // min(B)
		{Op: hashtab.Max, Input: 1},  // max(B)
	}
	var evs []Eviction
	rt, err := New(cfg, allocOf(map[string]int{"A": 64}), aggs, 11, func(e Eviction) { evs = append(evs, e) })
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []uint32{5, 9, 2} {
		rt.Process(stream.Record{Attrs: []uint32{7, b}}, 0)
	}
	rt.FlushEpoch()
	if len(evs) != 1 {
		t.Fatalf("evictions = %+v", evs)
	}
	got := evs[0].Aggs
	want := []int64{3, 16, 2, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("aggs = %v; want %v", got, want)
		}
	}
}

// TestCountConservationThroughCascade: across any configuration and any
// table sizes, the total count reaching the sink per query equals the
// number of records. This is the paper's correctness invariant: phantoms
// change cost, never results.
func TestCountConservationThroughCascade(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 300, 40)
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 20000, 100)
	queries := sets("AB", "BC", "BD", "CD")
	for _, notation := range []string{
		"AB BC BD CD",
		"ABC(AB BC) BD CD",
		"AB BCD(BC BD CD)",
		"ABCD(AB BCD(BC BD CD))",
		"ABCD(AB BC BD CD)",
	} {
		cfg, err := feedgraph.ParseConfig(notation, queries)
		if err != nil {
			t.Fatal(err)
		}
		alloc := cost.Alloc{}
		for i, r := range cfg.Rels {
			alloc[r] = 7 + i*13 // deliberately small and uneven
		}
		totals := map[attr.Set]int64{}
		rt, err := New(cfg, alloc, CountStar, 17, func(e Eviction) { totals[e.Rel] += e.Aggs[0] })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(stream.NewSliceSource(recs), 10); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			if totals[q] != int64(len(recs)) {
				t.Errorf("%s: query %v total %d; want %d", notation, q, totals[q], len(recs))
			}
		}
	}
}

// TestPhantomReducesCost reproduces the paper's core claim on the runtime
// itself: with a sensible allocation, the phantom configuration performs
// fewer weighted operations than the no-phantom configuration at equal
// total space.
func TestPhantomReducesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	schema := stream.MustSchema(3)
	u, err := gen.UniformUniverse(rng, schema, 2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 100000, 0)
	queries := sets("A", "B", "C")
	gA := gen.CountGroups(recs, attr.MustParseSet("A"))
	_ = gA

	const m = 3000 // deliberately tight: collisions matter

	run := func(notation string, alloc cost.Alloc) float64 {
		cfg, err := feedgraph.ParseConfig(notation, queries)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(cfg, alloc, CountStar, 23, nil)
		if err != nil {
			t.Fatal(err)
		}
		ops, err := rt.Run(stream.NewSliceSource(recs), 0)
		if err != nil {
			t.Fatal(err)
		}
		return ops.PerRecordCost(1, 50)
	}

	// No phantom: M split equally, h = 2 per entry.
	noPh := run("A B C", allocOf(map[string]int{"A": m / 6, "B": m / 6, "C": m / 6}))
	// With phantom: ABC takes more than half (per the analysis).
	withPh := run("ABC(A B C)", allocOf(map[string]int{
		"ABC": (m * 6 / 10) / 4, "A": (m * 13 / 100) / 2, "B": (m * 13 / 100) / 2, "C": (m * 13 / 100) / 2,
	}))
	if withPh >= noPh {
		t.Errorf("phantom did not help: with=%v without=%v", withPh, noPh)
	}
}

func TestTableStatsAndReset(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("A"), nil)
	rt, err := New(cfg, allocOf(map[string]int{"A": 8}), CountStar, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Process(stream.Record{Attrs: []uint32{1}}, 0)
	st := rt.TableStats()[attr.MustParseSet("A")]
	if st.Probes != 1 {
		t.Errorf("table probes = %d", st.Probes)
	}
	rt.ResetOps()
	if rt.Ops().Probes != 0 || rt.TableStats()[attr.MustParseSet("A")].Probes != 0 {
		t.Error("ResetOps left counters behind")
	}
}
