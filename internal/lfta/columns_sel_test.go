package lfta_test

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hashtab"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// Property: ProcessColumnsSel over a selection bitmap is
// indistinguishable from compacting the selected lanes and calling
// ProcessColumns — same HFTA rows, same op ledger, same per-table
// counters — across aggregate shapes (constant-delta and
// attribute-valued), cascade depths, selection densities, and both
// tag-scan kernels.
func TestColumnarSelectionEquivalence(t *testing.T) {
	defer hashtab.SetSIMD(hashtab.SIMDEnabled())
	kernels := []bool{false}
	if hashtab.SIMDAvailable() {
		kernels = append(kernels, true)
	}
	type shape struct {
		spec    string
		queries []attr.Set
		aggs    []lfta.AggSpec
	}
	shapes := []shape{
		{
			spec:    "ABCD(AB BC CD)",
			queries: []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC"), attr.MustParseSet("CD")},
			aggs:    lfta.CountStar,
		},
		{
			spec: "ABCD(ABC(AB(A)) CD)",
			queries: []attr.Set{
				attr.MustParseSet("AB"), attr.MustParseSet("A"), attr.MustParseSet("CD"),
			},
			aggs: []lfta.AggSpec{
				{Op: hashtab.Sum, Input: -1},
				{Op: hashtab.Sum, Input: 2},
				{Op: hashtab.Min, Input: 1},
				{Op: hashtab.Max, Input: 3},
			},
		},
	}
	for _, simd := range kernels {
		hashtab.SetSIMD(simd)
		for si, sh := range shapes {
			cfg, err := feedgraph.ParseConfig(sh.spec, sh.queries)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7400 + int64(si)))
			schema := stream.MustSchema(4)
			u, err := gen.UniformUniverse(rng, schema, 30+rng.Intn(300), 30)
			if err != nil {
				t.Fatal(err)
			}
			recs := gen.Uniform(rng, u, 4000+rng.Intn(6000), uint32(20+rng.Intn(60)))
			alloc := cost.Alloc{}
			for i, r := range cfg.Rels {
				alloc[r] = 7 + i*5 + rng.Intn(40)
			}
			seed := uint64(7500 + si)

			selAgg, err := hfta.New(sh.queries, sh.aggs)
			if err != nil {
				t.Fatal(err)
			}
			selRT, err := lfta.New(cfg, alloc, sh.aggs, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			selRT.SetRunSink(selAgg.MergeRun, 16)

			denAgg, err := hfta.New(sh.queries, sh.aggs)
			if err != nil {
				t.Fatal(err)
			}
			denRT, err := lfta.New(cfg, alloc, sh.aggs, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			denRT.SetRunSink(denAgg.MergeRun, 16)

			const width = 4
			pcts := []int{0, 1, 17, 55, 100}
			pos := 0
			epoch := uint32(0)
			for pos < len(recs) {
				n := 1 + rng.Intn(300)
				if len(recs)-pos < n {
					n = len(recs) - pos
				}
				cols := make([][]uint32, width)
				for a := range cols {
					cols[a] = make([]uint32, n)
					for i := 0; i < n; i++ {
						cols[a][i] = recs[pos+i].Attrs[a]
					}
				}
				pos += n

				pct := pcts[rng.Intn(len(pcts))]
				sel := make([]uint64, (n+63)>>6)
				compact := make([][]uint32, width)
				for i := 0; i < n; i++ {
					if rng.Intn(100) < pct {
						sel[i>>6] |= 1 << (uint(i) & 63)
						for a := range cols {
							compact[a] = append(compact[a], cols[a][i])
						}
					}
				}

				selRT.ProcessColumnsSel(cols, n, sel, epoch)
				if len(compact[0]) > 0 {
					denRT.ProcessColumns(compact, epoch)
				}
				// Occasional epoch roll to cover run sealing.
				if rng.Intn(4) == 0 {
					selRT.FlushEpoch()
					denRT.FlushEpoch()
					epoch++
				}
			}
			selRT.FlushEpoch()
			denRT.FlushEpoch()

			if !hfta.Equal(selAgg.AllRows(), denAgg.AllRows()) {
				t.Fatalf("kernel=%s shape %d: selected rows differ from dense", hashtab.KernelName(), si)
			}
			if so, do := selRT.Ops(), denRT.Ops(); so != do {
				t.Fatalf("kernel=%s shape %d: ops diverge: selected %+v dense %+v", hashtab.KernelName(), si, so, do)
			}
			ss, ds := selRT.TableStats(), denRT.TableStats()
			for rel, s := range ss {
				if d := ds[rel]; d != s {
					t.Fatalf("kernel=%s shape %d table %v stats diverge:\nselected %+v\ndense    %+v", hashtab.KernelName(), si, rel, s, d)
				}
			}
		}
	}
}

// Property: ShardColumns routes every selected lane to exactly the
// shard ShardOf picks for the same record, in ascending lane order.
func TestColumnarShardRouting(t *testing.T) {
	queries := []attr.Set{attr.MustParseSet("AB")}
	cfg, err := feedgraph.ParseConfig("ABCD(AB)", queries)
	if err != nil {
		t.Fatal(err)
	}
	alloc := cost.Alloc{attr.MustParseSet("AB"): 32, attr.MustParseSet("ABCD"): 32}
	rng := rand.New(rand.NewSource(7600))
	for _, nsh := range []int{1, 2, 4, 8} {
		s, err := lfta.NewSharded(cfg, alloc, lfta.CountStar, 21, nil, nsh)
		if err != nil {
			t.Fatal(err)
		}
		const width = 4
		for trial := 0; trial < 30; trial++ {
			n := 1 + rng.Intn(300)
			cols := make([][]uint32, width)
			for a := range cols {
				cols[a] = make([]uint32, n)
				for i := range cols[a] {
					cols[a][i] = rng.Uint32() >> 16
				}
			}
			sel := make([]uint64, (n+63)>>6)
			var lanes []int
			for i := 0; i < n; i++ {
				if rng.Intn(3) > 0 {
					sel[i>>6] |= 1 << (uint(i) & 63)
					lanes = append(lanes, i)
				}
			}
			six := make([]int32, len(lanes))
			if got := s.ShardColumns(cols, n, sel, six); got != len(lanes) {
				t.Fatalf("%d shards: ShardColumns wrote %d, want %d", nsh, got, len(lanes))
			}
			rec := stream.Record{Attrs: make([]uint32, width)}
			for k, i := range lanes {
				for a := 0; a < width; a++ {
					rec.Attrs[a] = cols[a][i]
				}
				if want := s.ShardOf(&rec); int(six[k]) != want {
					t.Fatalf("%d shards lane %d: ShardColumns %d, ShardOf %d", nsh, i, six[k], want)
				}
			}
			lanes = lanes[:0]
		}
	}
}
