package lfta

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/stream"
)

func pacedRuntime(t *testing.T, buckets int) *Runtime {
	t.Helper()
	cfg, err := feedgraph.NewConfig(sets("A"), nil)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(cfg, cost.Alloc{attr.MustParseSet("A"): buckets}, CountStar, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestNewPacedValidation(t *testing.T) {
	rt := pacedRuntime(t, 64)
	if _, err := NewPaced(nil, 1, 50, 100); err == nil {
		t.Error("nil runtime accepted")
	}
	if _, err := NewPaced(rt, 0, 50, 100); err == nil {
		t.Error("zero c1 accepted")
	}
	if _, err := NewPaced(rt, 1, 50, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestPacedDropsWhenBudgetExhausted(t *testing.T) {
	rt := pacedRuntime(t, 1024)
	// Budget of 3 weighted units per tick; each record costs 1 probe
	// (c1 = 1, huge table, no collisions), so exactly 3 records per tick
	// survive.
	p, err := NewPaced(rt, 1, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.Process(stream.Record{Attrs: []uint32{uint32(i)}, Time: 0}, 0)
	}
	if p.Processed() != 3 || p.Dropped() != 7 {
		t.Errorf("processed %d, dropped %d; want 3/7", p.Processed(), p.Dropped())
	}
	if got := p.DropRate(); got != 0.7 {
		t.Errorf("DropRate = %v", got)
	}
	// A new tick replenishes the budget.
	p.Process(stream.Record{Attrs: []uint32{99}, Time: 1}, 0)
	if p.Processed() != 4 {
		t.Errorf("record after tick roll dropped; processed = %d", p.Processed())
	}
}

func TestPacedBudgetDoesNotBank(t *testing.T) {
	rt := pacedRuntime(t, 1024)
	p, err := NewPaced(rt, 1, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Tick 0 uses 1 of 5 units; tick 1 must still allow only 5 units.
	p.Process(stream.Record{Attrs: []uint32{1}, Time: 0}, 0)
	for i := 0; i < 10; i++ {
		p.Process(stream.Record{Attrs: []uint32{uint32(i)}, Time: 1}, 0)
	}
	if p.Processed() != 1+5 {
		t.Errorf("processed %d; want 6 (no banking)", p.Processed())
	}
}

// TestPacedRegressionDoesNotReplenish: the budget refills only when
// stream time advances. An adversarial stream alternating two timestamps
// used to refill on every record ("time changed"), earning unlimited
// budget; now the regressed timestamps draw from the tick already seen.
func TestPacedRegressionDoesNotReplenish(t *testing.T) {
	rt := pacedRuntime(t, 1024)
	p, err := NewPaced(rt, 1, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate t=5 and t=4: only the first arrival at t=5 replenishes.
	for i := 0; i < 20; i++ {
		tick := uint32(5 - i%2)
		p.Process(stream.Record{Attrs: []uint32{uint32(i)}, Time: tick}, 0)
	}
	if p.Processed() != 3 {
		t.Errorf("alternating timestamps processed %d records; want 3 (one tick's budget)", p.Processed())
	}
	if p.Dropped() != 17 {
		t.Errorf("dropped %d; want 17", p.Dropped())
	}
	// Genuine time advance replenishes again.
	p.Process(stream.Record{Attrs: []uint32{99}, Time: 6}, 0)
	if p.Processed() != 4 {
		t.Errorf("record after real advance dropped; processed = %d", p.Processed())
	}
}

// TestCheaperConfigurationDropsLess is the paper's motivation end to end:
// at equal capacity, the configuration with lower per-record cost keeps
// more of the stream.
func TestCheaperConfigurationDropsLess(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const nGroups = 2000
	mkRec := func(i int) stream.Record {
		return stream.Record{
			Attrs: []uint32{uint32(rng.Intn(nGroups)), uint32(rng.Intn(nGroups)), uint32(rng.Intn(nGroups))},
			Time:  uint32(i / 2000), // 2000 records per time unit
		}
	}
	recs := make([]stream.Record, 60000)
	for i := range recs {
		recs[i] = mkRec(i)
	}
	queries := sets("A", "B", "C")

	runPaced := func(notation string, alloc cost.Alloc) float64 {
		cfg, err := feedgraph.ParseConfig(notation, queries)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(cfg, alloc, CountStar, 17, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Capacity: 5000 weighted units per time unit against 2000
		// arrivals — enough for ~2.5 probes per record, so the 3-probe
		// no-phantom configuration plus eviction costs must drop records.
		p, err := NewPaced(rt, 1, 50, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(stream.NewSliceSource(recs), 0); err != nil {
			t.Fatal(err)
		}
		return p.DropRate()
	}

	const m = 4000
	noPhantom := runPaced("A B C", cost.Alloc{
		attr.MustParseSet("A"): m / 6, attr.MustParseSet("B"): m / 6, attr.MustParseSet("C"): m / 6,
	})
	withPhantom := runPaced("ABC(A B C)", cost.Alloc{
		attr.MustParseSet("ABC"): (m * 6 / 10) / 4,
		attr.MustParseSet("A"):   (m * 13 / 100) / 2,
		attr.MustParseSet("B"):   (m * 13 / 100) / 2,
		attr.MustParseSet("C"):   (m * 13 / 100) / 2,
	})
	if withPhantom >= noPhantom {
		t.Errorf("phantom config dropped %v, no-phantom %v; want fewer drops with phantom", withPhantom, noPhantom)
	}
	if noPhantom == 0 {
		t.Error("test capacity too generous: no-phantom configuration dropped nothing")
	}
}
