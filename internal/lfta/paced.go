package lfta

import (
	"fmt"

	"repro/internal/stream"
)

// Paced wraps a Runtime with a processing-capacity budget, modelling the
// reason the paper minimizes per-record intra-epoch cost in the first
// place: "the lower the average per-record cost, the lower the load at
// the LFTA, increasing the likelihood that records in the stream are not
// dropped" (Section 3.3).
//
// The LFTA can spend at most Budget weighted operation units (c1 per
// probe, c2 per transfer) per stream time unit. A record arriving after
// the current time unit's budget is exhausted is dropped unprocessed —
// exactly what a NIC-resident LFTA does at line rate. Cheaper
// configurations therefore drop fewer records; the ext-drops experiment
// quantifies this.
//
// Deprecated: the engine (internal/core) unifies overload control across
// single and sharded runtimes: set core.Options.Budget, optionally with a
// core.ShedPolicy and core.Options.Shards. The engine keeps per-epoch and
// per-shard degradation ledgers and checkpoints its shedding state, none
// of which Paced does. Paced remains only for low-level single-runtime
// pacing.
type Paced struct {
	rt     *Runtime
	c1, c2 float64
	budget float64

	available float64
	tick      uint32
	started   bool

	processed uint64
	dropped   uint64
}

// NewPaced wraps rt with a budget of weighted operations per stream time
// unit.
//
// Deprecated: use the engine's core.Options.Budget; see Paced.
func NewPaced(rt *Runtime, c1, c2, budgetPerTick float64) (*Paced, error) {
	if rt == nil {
		return nil, fmt.Errorf("lfta: nil runtime")
	}
	if c1 <= 0 || c2 <= 0 || budgetPerTick <= 0 {
		return nil, fmt.Errorf("lfta: pacing parameters must be positive (c1=%v c2=%v budget=%v)", c1, c2, budgetPerTick)
	}
	return &Paced{rt: rt, c1: c1, c2: c2, budget: budgetPerTick, available: budgetPerTick}, nil
}

// Runtime returns the wrapped runtime.
func (p *Paced) Runtime() *Runtime { return p.rt }

// Processed and Dropped return the record outcomes so far.
func (p *Paced) Processed() uint64 { return p.processed }

// Dropped returns the number of records discarded for lack of capacity.
func (p *Paced) Dropped() uint64 { return p.dropped }

// DropRate returns dropped / offered.
func (p *Paced) DropRate() float64 {
	total := p.processed + p.dropped
	if total == 0 {
		return 0
	}
	return float64(p.dropped) / float64(total)
}

// Process offers one record. It returns true if the record was dropped.
// Budget replenishes only when stream time advances (it does not bank:
// idle capacity in one tick cannot be spent later, as on real hardware).
// A timestamp regression does not refill — otherwise an adversarial
// stream alternating two timestamps would earn unlimited budget.
func (p *Paced) Process(rec stream.Record, epoch uint32) (dropped bool) {
	if !p.started || rec.Time > p.tick {
		p.started = true
		p.tick = rec.Time
		p.available = p.budget
	}
	if p.available <= 0 {
		p.dropped++
		return true
	}
	before := p.rt.Ops()
	p.rt.Process(rec, epoch)
	after := p.rt.Ops()
	spent := float64(after.Probes-before.Probes)*p.c1 + float64(after.Transfers-before.Transfers)*p.c2
	p.available -= spent
	p.processed++
	return false
}

// Run drives a whole stream through the paced runtime with the given
// epoch length, flushing at boundaries (flushes are end-of-epoch work and
// are not charged against the intra-epoch budget).
func (p *Paced) Run(src stream.Source, epochLen uint32) error {
	clock := stream.NewClock(epochLen)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		epoch, rolled := clock.Advance(rec.Time)
		if rolled {
			p.rt.FlushEpoch()
		}
		p.Process(rec, epoch)
	}
	if err := src.Err(); err != nil {
		return err
	}
	if clock.Started() {
		p.rt.FlushEpoch()
	}
	return nil
}
