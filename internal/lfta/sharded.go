package lfta

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/hashtab"
	"repro/internal/stream"
)

// Sharded runs several independent LFTA instances over one logical
// stream — Gigascope's deployment shape, where each network interface (or
// core) hosts its own LFTA and all of them feed the same HFTAs (Figure 1
// of the paper). Records are partitioned by a hash of their full
// attribute vector, so all records of a group land on the same shard and
// per-shard partial aggregates stay disjoint until the HFTA merge; the
// merge is exact either way, since HFTA combination is associative and
// commutative.
//
// Each shard owns its own hash tables sized by the same allocation (each
// LFTA has its own memory in the architecture) and, with SetBatchSink,
// its own eviction buffer, so concurrent shards share no mutable state
// until the batched HFTA merge. Process routes sequentially; RunParallel
// drives one goroutine per shard, in which case the sink must be safe for
// concurrent use (hfta.(*Aggregator).ConsumeBatch and Consume both are).
type Sharded struct {
	shards []*Runtime

	// pipe is the pipelined RunParallel's routing state (SPSC rings and
	// recycled staging runs), built on first use and reused across runs
	// so steady-state ingest allocates nothing.
	pipe *pipeline

	// routeHash is ShardColumns's compact routing-hash scratch, grown on
	// demand and reused across batches.
	routeHash []uint64
}

// shardSeed derives the hash seed of one shard from the base seed via a
// splitmix64 stream. Consecutive shard indices therefore get seeds that
// differ in roughly half their bits, so the shards' table hash functions
// are independent (the old seed+i*constant scheme produced nearly
// identical seeds whose low-bit differences a weak mix could preserve).
func shardSeed(seed uint64, shard int) uint64 {
	x := seed + uint64(shard)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewSharded builds n shards, each executing cfg with its own tables of
// the given allocation. Shard hash seeds derive from seed so the shards
// use independent hash functions.
func NewSharded(cfg *feedgraph.Config, alloc cost.Alloc, aggs []AggSpec, seed uint64, sink Sink, n int) (*Sharded, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lfta: need at least one shard, got %d", n)
	}
	s := &Sharded{shards: make([]*Runtime, n)}
	for i := range s.shards {
		rt, err := New(cfg, alloc, aggs, shardSeed(seed, i), sink)
		if err != nil {
			return nil, err
		}
		s.shards[i] = rt
	}
	return s, nil
}

// SetBatchSink installs a batched transfer path on every shard (see
// Runtime.SetBatchSink). Each shard keeps its own eviction buffer; with
// RunParallel the sink receives batches concurrently and must be safe for
// concurrent use.
func (s *Sharded) SetBatchSink(fn BatchSink, batchSize int) {
	for _, rt := range s.shards {
		rt.SetBatchSink(fn, batchSize)
	}
}

// SetRunSink installs the columnar transfer path on every shard (see
// Runtime.SetRunSink). Each shard keeps its own run buffers; with
// RunParallel the sink receives sealed runs concurrently and must be
// safe for concurrent use (hfta.(*Aggregator).MergeRun is).
func (s *Sharded) SetRunSink(fn RunSink, batchSize int) {
	for _, rt := range s.shards {
		rt.SetRunSink(fn, batchSize)
	}
}

// NumShards returns the number of LFTA instances.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard exposes one underlying runtime (for stats inspection).
func (s *Sharded) Shard(i int) *Runtime { return s.shards[i] }

// shardRouteSeed keys the routing hash. It must differ from every table
// seed (those derive from the user seed via shardSeed) so routing is not
// correlated with any table's bucket placement; a fixed constant keeps
// routing stable across runs, which checkpoint resume relies on.
const shardRouteSeed = 0x5bd1e995bc9e3779

// ShardOf hashes the full attribute vector to the index of the shard the
// record routes to, using the same word-at-a-time mixing kernel as the
// hash tables (hashtab.HashWords) with a fastrange reduction. Exposed so
// engine-level overload control can charge each record against the
// budget slice of the shard doing the work.
func (s *Sharded) ShardOf(rec *stream.Record) int {
	return hashtab.Reduce(hashtab.HashWords(shardRouteSeed, rec.Attrs), len(s.shards))
}

// Process routes one record to its shard. The record is passed by
// pointer so the router does not copy it once for routing and again for
// processing; the callee copies what it retains.
func (s *Sharded) Process(rec *stream.Record, epoch uint32) {
	s.shards[s.ShardOf(rec)].Process(*rec, epoch)
}

// FlushEpoch flushes every shard.
func (s *Sharded) FlushEpoch() {
	for _, rt := range s.shards {
		rt.FlushEpoch()
	}
}

// TableStats merges the per-shard hashtab counters into one per-relation
// view, so the engine's diagnostics and adaptive flow-length estimation
// see the deployment as a whole. Call only while no shard is processing
// (e.g. between epochs, or from the single-threaded routing loop).
func (s *Sharded) TableStats() map[attr.Set]hashtab.Stats {
	out := make(map[attr.Set]hashtab.Stats)
	for _, rt := range s.shards {
		for rel, st := range rt.TableStats() {
			m := out[rel]
			m.Probes += st.Probes
			m.Hits += st.Hits
			m.Inserts += st.Inserts
			m.Collisions += st.Collisions
			m.Flushes += st.Flushes
			m.EvictedUpdates += st.EvictedUpdates
			m.EvictedEntries += st.EvictedEntries
			out[rel] = m
		}
	}
	return out
}

// Reset empties every shard's tables and counters without releasing any
// storage (see Runtime.Reset); the pipelined routing state is likewise
// retained, so a reset deployment re-runs allocation-free.
func (s *Sharded) Reset() {
	for _, rt := range s.shards {
		rt.Reset()
	}
}

// ResetTableStats zeroes every shard's per-table counters (not contents).
func (s *Sharded) ResetTableStats() {
	for _, rt := range s.shards {
		rt.ResetTableStats()
	}
}

// Ops returns the summed operation counts of all shards.
func (s *Sharded) Ops() Ops {
	var total Ops
	for _, rt := range s.shards {
		o := rt.Ops()
		total.Probes += o.Probes
		total.Transfers += o.Transfers
		total.Records += o.Records
	}
	return total
}

// Run consumes the source sequentially, routing records to shards and
// flushing all shards at epoch boundaries.
func (s *Sharded) Run(src stream.Source, epochLen uint32) (Ops, error) {
	clock := stream.NewClock(epochLen)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		epoch, rolled := clock.Advance(rec.Time)
		if rolled {
			s.FlushEpoch()
		}
		s.Process(&rec, epoch)
	}
	if err := src.Err(); err != nil {
		return s.Ops(), err
	}
	if clock.Started() {
		s.FlushEpoch()
	}
	return s.Ops(), nil
}
