package lfta

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
)

func TestShardSeedMixing(t *testing.T) {
	// Seeds for nearby (seed, shard) inputs must be distinct and differ in
	// many bits — the property the old seed+i*0x1000193 derivation lacked.
	seen := make(map[uint64]bool)
	for seed := uint64(0); seed < 8; seed++ {
		for shard := 0; shard < 64; shard++ {
			s := shardSeed(seed, shard)
			if seen[s] {
				t.Fatalf("duplicate shard seed %#x (seed=%d shard=%d)", s, seed, shard)
			}
			seen[s] = true
		}
	}
	// Consecutive shards of one base seed should differ in both halves of
	// the word, not just the low bits.
	for shard := 0; shard < 16; shard++ {
		a, b := shardSeed(42, shard), shardSeed(42, shard+1)
		if a>>32 == b>>32 {
			t.Errorf("shards %d and %d share high word %#x", shard, shard+1, a>>32)
		}
	}
}

func TestShardsUseDistinctHashFunctions(t *testing.T) {
	// Two shards hashing a key sample identically would mean the per-shard
	// tables are clones, defeating the random-hash independence the
	// paper's collision model assumes across LFTAs.
	queries := []attr.Set{attr.MustParseSet("AB")}
	cfg, err := feedgraph.ParseConfig("AB", queries)
	if err != nil {
		t.Fatal(err)
	}
	rel := attr.MustParseSet("AB")
	alloc := cost.Alloc{rel: 64}
	s, err := NewSharded(cfg, alloc, CountStar, 7, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 256
	for i := 0; i < s.NumShards(); i++ {
		for j := i + 1; j < s.NumShards(); j++ {
			ti, tj := s.Shard(i).tables[rel], s.Shard(j).tables[rel]
			same := 0
			for k := 0; k < samples; k++ {
				key := []uint32{uint32(k), uint32(k * 31)}
				if ti.Bucket(key) == tj.Bucket(key) {
					same++
				}
			}
			if same == samples {
				t.Errorf("shards %d and %d hash all %d sample keys identically", i, j, samples)
			}
			// Independent hashes into 64 buckets agree on ~1/64 of keys;
			// flag anything suspiciously correlated.
			if same > samples/4 {
				t.Errorf("shards %d and %d agree on %d/%d keys; hash functions look correlated", i, j, same, samples)
			}
		}
	}
}
