package lfta

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/spsc"
	"repro/internal/stream"
)

// Pipelined sharded ingest: router → SPSC rings → shard workers.
//
// The previous RunParallel routed one record at a time and handed
// batches to shards over buffered channels; at the measured probe costs
// the per-record routing and channel synchronization exceeded the LFTA
// work itself, so the "parallel" path ran slower than sequential
// routing — the shared-queue contention Xue & Marcus ("Global Hash
// Tables Strike Back!") and Gulisano et al. identify as the scaling
// killer for exactly this workload shape. The rebuild follows their
// resolution: partitioned batches over lock-free SPSC structures.
//
//	source ──ReadBatch──► router ──runs──► work ring ──► shard worker ──► HFTA
//	                        ▲                                 │
//	                        └───────────── freelist ◄─────────┘
//
//   - The router pulls records from the source in batches
//     (routerBatch), hash-partitions each batch into per-shard staging
//     runs (runCapacity records, all of one epoch), and publishes full
//     runs to the shard's fixed-capacity work ring. No channels, no
//     locks, no allocation: run buffers recycle through a per-shard
//     freelist ring, so steady state is zero allocations per record.
//   - Epoch boundaries travel in-band: when the router's clock rolls it
//     seals every shard's staging run (tagged with the closing epoch)
//     and enqueues an epoch marker, so each shard flushes exactly when
//     the boundary reaches it in stream order. Shard flush and the HFTA
//     merge of epoch e therefore overlap with the router's partitioning
//     of epoch e+1 instead of meeting at a barrier.
//   - Backpressure is natural: a router ahead of a slow shard runs out
//     of free buffers for that shard and waits on its freelist, leaving
//     the other shards' rings draining meanwhile.
type pipeline struct {
	work    []*spsc.Ring[run]
	free    []*spsc.Ring[[]stream.Record]
	staging [][]stream.Record // router-side current run per shard
	batch   []stream.Record   // router's source pull buffer
}

// run is one ring element: a staging run of records sharing an epoch, an
// in-band epoch marker, or the end-of-stream signal.
type run struct {
	recs  []stream.Record // nil for markers and stop
	epoch uint32
	kind  runKind
}

type runKind uint8

const (
	runRecords runKind = iota
	runEpoch           // epoch boundary: flush state tagged < epoch, then open epoch
	runStop            // stream end: final flush, then exit
)

// Pipeline tuning (see docs/PERF.md for the reasoning behind the
// defaults).
const (
	// routerBatch is how many records one ReadBatch pulls from the
	// source: large enough to amortize the Source interface dispatch,
	// small enough to stay resident in L1 while being partitioned.
	routerBatch = 1024
	// runCapacity is the records per staging run — the unit of
	// cross-goroutine hand-off. At ~28 bytes/record a run is ~14 KB,
	// big enough that ring synchronization amortizes to <0.1 ns/record,
	// small enough that a run is still warm when the worker probes it.
	runCapacity = 512
	// ringRuns is the work-ring depth per shard: the router can run this
	// many runs ahead of a shard before backpressure stalls it.
	ringRuns = 8
)

// newPipeline sizes rings and pre-allocates every run buffer a steady
// state can have in flight: ringRuns in the work ring, one in the
// worker, one staging with the router.
func newPipeline(nShards int) *pipeline {
	p := &pipeline{
		work:    make([]*spsc.Ring[run], nShards),
		free:    make([]*spsc.Ring[[]stream.Record], nShards),
		staging: make([][]stream.Record, nShards),
		batch:   make([]stream.Record, routerBatch),
	}
	for i := 0; i < nShards; i++ {
		p.work[i] = spsc.New[run](ringRuns)
		// The freelist must be able to hold every buffer at once (so
		// worker returns never block) and seeds enough buffers that the
		// router can fill the whole work ring plus its own staging run
		// while the worker still holds one.
		p.free[i] = spsc.New[[]stream.Record](2 * (ringRuns + 2))
		for j := 0; j < ringRuns+2; j++ {
			p.free[i].Push(make([]stream.Record, 0, runCapacity))
		}
	}
	return p
}

// spinYield is the wait policy of both ring sides: burn a few probes
// first (the common case resolves in nanoseconds), yield the processor
// while the peer is scheduled, and back off to short sleeps only when
// the peer has been unresponsive long enough that latency no longer
// matters (for example a sink blocked on I/O). Keeping the policy here,
// outside spsc, lets the ring stay non-blocking.
func spinYield(try int) {
	switch {
	case try < 64:
		// busy-spin
	case try < 1<<14:
		runtime.Gosched()
	default:
		time.Sleep(50 * time.Microsecond)
	}
}

// pushRun publishes r to shard i's work ring, waiting out backpressure.
func (p *pipeline) pushRun(i int, r run) {
	for try := 0; !p.work[i].Push(r); try++ {
		spinYield(try)
	}
}

// nextStaging hands the router a fresh (empty) run buffer for shard i.
func (p *pipeline) nextStaging(i int) []stream.Record {
	for try := 0; ; try++ {
		if buf, ok := p.free[i].Pop(); ok {
			return buf
		}
		spinYield(try)
	}
}

// sealStaging publishes shard i's staging run under the given epoch and
// replaces it with a fresh buffer from the freelist.
func (p *pipeline) sealStaging(i int, epoch uint32) {
	p.pushRun(i, run{recs: p.staging[i], epoch: epoch, kind: runRecords})
	p.staging[i] = p.nextStaging(i)
}

// worker drains one shard's work ring: processing runs, flushing at
// in-band epoch markers, and recycling run buffers to the freelist.
func (p *pipeline) worker(rt *Runtime, i int, wg *sync.WaitGroup) {
	defer wg.Done()
	work, free := p.work[i], p.free[i]
	started := false
	for {
		r, ok := work.Pop()
		if !ok {
			for try := 0; ; try++ {
				spinYield(try)
				if r, ok = work.Pop(); ok {
					break
				}
			}
		}
		switch r.kind {
		case runRecords:
			if len(r.recs) > 0 {
				rt.ProcessBatch(r.recs, r.epoch)
				started = true
			}
			// Return the buffer; the freelist holds all buffers, so
			// this cannot block.
			free.Push(r.recs[:0])
		case runEpoch:
			// Flush the state accumulated before the boundary; the
			// marker's epoch is the one now opening. A shard that saw
			// no records has nothing to flush.
			if started {
				rt.FlushEpoch()
			}
		case runStop:
			if started {
				rt.FlushEpoch()
			}
			return
		}
	}
}

// RunParallel consumes the source with one goroutine per shard behind a
// pipelined router. Records are pulled in batches, hash-partitioned into
// per-shard runs, and handed over lock-free SPSC rings; epoch boundaries
// propagate as in-band markers so per-shard flushes and the HFTA merge
// overlap the next epoch's routing. The sink passed at construction (or
// SetBatchSink) must be concurrency-safe
// (hfta.(*Aggregator).ConsumeBatch and Consume both are).
//
// The router's single clock defines epoch boundaries in stream arrival
// order — exactly the sequential Run semantics, including the clamping
// of late records into the open epoch.
func (s *Sharded) RunParallel(src stream.Source, epochLen uint32) (Ops, error) {
	n := len(s.shards)
	if s.pipe == nil {
		s.pipe = newPipeline(n)
	}
	p := s.pipe
	for i := 0; i < n; i++ {
		if p.staging[i] == nil {
			p.staging[i] = p.nextStaging(i)
		}
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for i, rt := range s.shards {
		go p.worker(rt, i, &wg)
	}

	clock := stream.NewClock(epochLen)
	for {
		m := stream.ReadBatch(src, p.batch)
		if m == 0 {
			break
		}
		for k := 0; k < m; k++ {
			rec := &p.batch[k]
			epoch, rolled := clock.Advance(rec.Time)
			if rolled {
				// Seal every shard's open run under the closing epoch
				// and propagate the boundary in-band.
				for i := 0; i < n; i++ {
					if len(p.staging[i]) > 0 {
						p.pushRun(i, run{recs: p.staging[i], epoch: epoch - 1, kind: runRecords})
						p.staging[i] = p.nextStaging(i)
					}
					p.pushRun(i, run{epoch: epoch, kind: runEpoch})
				}
			}
			i := s.ShardOf(rec)
			p.staging[i] = append(p.staging[i], *rec)
			if len(p.staging[i]) == runCapacity {
				p.sealStaging(i, epoch)
			}
		}
	}
	for i := 0; i < n; i++ {
		if len(p.staging[i]) > 0 {
			p.sealStaging(i, clock.Current())
		}
		p.pushRun(i, run{kind: runStop})
	}
	wg.Wait()
	return s.Ops(), src.Err()
}
