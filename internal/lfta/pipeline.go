package lfta

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/hashtab"
	"repro/internal/spsc"
	"repro/internal/stream"
)

// Pipelined sharded ingest: columnar router → SPSC rings → shard workers.
//
// The previous RunParallel routed one record at a time and handed
// batches to shards over buffered channels; at the measured probe costs
// the per-record routing and channel synchronization exceeded the LFTA
// work itself, so the "parallel" path ran slower than sequential
// routing — the shared-queue contention Xue & Marcus ("Global Hash
// Tables Strike Back!") and Gulisano et al. identify as the scaling
// killer for exactly this workload shape. The rebuild follows their
// resolution: partitioned batches over lock-free SPSC structures.
//
//	source ──ReadColumns──► router ──runs──► work ring ──► shard worker ──► HFTA
//	                          ▲                                 │
//	                          └──────────── freelist ◄──────────┘
//
// The router pulls column-major batches from the source (ReadColumns,
// routerBatch records) and partitions each same-epoch segment in two
// passes: pass 1 hashes the attribute columns with the tables' shared
// mixing kernel (hashtab.HashColumns — bit-identical to the
// record-major ShardOf) into a per-record shard index and per-shard
// counts; pass 2 scatters each attribute column into the shards'
// staging ColumnBatches, one stride-1 source read per attribute.
// Records are never materialized row-wise anywhere on this path.
//
// Full staging batches (runCapacity records, all of one epoch) are
// published to the shard's fixed-capacity work ring. No channels, no
// locks, no allocation: batches recycle through a per-shard freelist
// ring, so steady state is zero allocations per record.
//
// Epoch boundaries travel in-band: when the router's clock rolls it
// seals every shard's staging batch (tagged with the closing epoch)
// and enqueues an epoch marker, so each shard flushes exactly when the
// boundary reaches it in stream order. Shard flush and the HFTA merge
// of epoch e therefore overlap with the router's partitioning of epoch
// e+1 instead of meeting at a barrier.
//
// Backpressure is natural: a router ahead of a slow shard runs out of
// free batches for that shard and waits on its freelist, leaving the
// other shards' rings draining meanwhile.
type pipeline struct {
	work    []*spsc.Ring[run]
	free    []*spsc.Ring[*stream.ColumnBatch]
	staging []*stream.ColumnBatch // router-side current run per shard
	batch   *stream.ColumnBatch   // router's source pull buffer

	// Router partitioning scratch, all sized once: per-record route
	// hashes and shard indices of the pull batch, and per-shard
	// counts/cursors/column views of the scatter pass.
	hashes  []uint64
	shardIx []int32
	cnt     []int32
	base    []int32
	pos     []int32
	dstCol  [][]uint32
}

// run is one ring element: a sealed column-major staging batch sharing
// an epoch, an in-band epoch marker, or the end-of-stream signal.
type run struct {
	cols  *stream.ColumnBatch // nil for markers and stop
	epoch uint32
	kind  runKind
}

type runKind uint8

const (
	runRecords runKind = iota
	runEpoch           // epoch boundary: flush state tagged < epoch, then open epoch
	runStop            // stream end: final flush, then exit
)

// Pipeline tuning (see docs/PERF.md for the reasoning behind the
// defaults).
const (
	// routerBatch is how many records one ReadColumns pulls from the
	// source: large enough to amortize the Source interface dispatch,
	// small enough that the batch's columns stay resident in L1/L2
	// while being partitioned.
	routerBatch = 1024
	// runCapacity is the records per staging batch — the unit of
	// cross-goroutine hand-off. At 4 bytes per attribute word a sealed
	// 4-attribute batch is ~8 KB, big enough that ring synchronization
	// amortizes to <0.1 ns/record, small enough that a batch is still
	// warm when the worker probes it.
	runCapacity = 512
	// ringRuns is the work-ring depth per shard: the router can run this
	// many runs ahead of a shard before backpressure stalls it.
	ringRuns = 8
)

// newPipeline sizes rings and pre-allocates every staging batch a steady
// state can have in flight: ringRuns in the work ring, one in the
// worker, one staging with the router.
func newPipeline(nShards int) *pipeline {
	p := &pipeline{
		work:    make([]*spsc.Ring[run], nShards),
		free:    make([]*spsc.Ring[*stream.ColumnBatch], nShards),
		staging: make([]*stream.ColumnBatch, nShards),
		batch:   &stream.ColumnBatch{},
		hashes:  make([]uint64, routerBatch),
		shardIx: make([]int32, routerBatch),
		cnt:     make([]int32, nShards),
		base:    make([]int32, nShards),
		pos:     make([]int32, nShards),
		dstCol:  make([][]uint32, nShards),
	}
	for i := 0; i < nShards; i++ {
		p.work[i] = spsc.New[run](ringRuns)
		// The freelist must be able to hold every batch at once (so
		// worker returns never block) and seeds enough batches that the
		// router can fill the whole work ring plus its own staging run
		// while the worker still holds one.
		p.free[i] = spsc.New[*stream.ColumnBatch](2 * (ringRuns + 2))
		for j := 0; j < ringRuns+2; j++ {
			p.free[i].Push(&stream.ColumnBatch{})
		}
	}
	return p
}

// spinYield is the wait policy of both ring sides: burn a few probes
// first (the common case resolves in nanoseconds), yield the processor
// while the peer is scheduled, and back off to short sleeps only when
// the peer has been unresponsive long enough that latency no longer
// matters (for example a sink blocked on I/O). Keeping the policy here,
// outside spsc, lets the ring stay non-blocking.
func spinYield(try int) {
	switch {
	case try < 64:
		// busy-spin
	case try < 1<<14:
		runtime.Gosched()
	default:
		time.Sleep(50 * time.Microsecond)
	}
}

// pushRun publishes r to shard i's work ring, waiting out backpressure.
func (p *pipeline) pushRun(i int, r run) {
	for try := 0; !p.work[i].Push(r); try++ {
		spinYield(try)
	}
}

// nextStaging hands the router a fresh (empty) staging batch of the
// given width for shard i.
func (p *pipeline) nextStaging(i, width int) *stream.ColumnBatch {
	for try := 0; ; try++ {
		if b, ok := p.free[i].Pop(); ok {
			b.Reset(width)
			return b
		}
		spinYield(try)
	}
}

// sealStaging publishes shard i's staging batch under the given epoch
// and replaces it with a fresh one from the freelist.
func (p *pipeline) sealStaging(i int, epoch uint32, width int) {
	p.pushRun(i, run{cols: p.staging[i], epoch: epoch, kind: runRecords})
	p.staging[i] = p.nextStaging(i, width)
}

// worker drains one shard's work ring: processing sealed columnar runs,
// flushing at in-band epoch markers, and recycling batches to the
// freelist.
func (p *pipeline) worker(rt *Runtime, i int, wg *sync.WaitGroup) {
	defer wg.Done()
	work, free := p.work[i], p.free[i]
	started := false
	for {
		r, ok := work.Pop()
		if !ok {
			for try := 0; ; try++ {
				spinYield(try)
				if r, ok = work.Pop(); ok {
					break
				}
			}
		}
		switch r.kind {
		case runRecords:
			if r.cols.Len() > 0 {
				rt.ProcessColumns(r.cols.Cols, r.epoch)
				started = true
			}
			// Return the batch; the freelist holds all batches, so
			// this cannot block.
			free.Push(r.cols)
		case runEpoch:
			// Flush the state accumulated before the boundary; the
			// marker's epoch is the one now opening. A shard that saw
			// no records has nothing to flush.
			if started {
				rt.FlushEpoch()
			}
		case runStop:
			if started {
				rt.FlushEpoch()
			}
			return
		}
	}
}

// scatter partitions segment [lo, hi) of the pull batch — all records of
// one epoch, shard indices precomputed in six — into the shards' staging
// batches attribute-by-attribute, sealing any batch that fills. Chunking
// bounds each inner pass so no staging batch overflows runCapacity
// mid-scatter: a chunk ends where some shard's batch would fill, that
// batch seals, and the scan resumes.
func (p *pipeline) scatter(cols [][]uint32, six []int32, lo, hi int, epoch uint32, width, n int) {
	cnt, base, pos := p.cnt, p.base, p.pos
	for i := lo; i < hi; {
		for s := 0; s < n; s++ {
			cnt[s] = 0
		}
		j := i
		for j < hi {
			s := six[j]
			if p.staging[s].Len()+int(cnt[s]) >= runCapacity {
				break
			}
			cnt[s]++
			j++
		}
		if j == i {
			// The next record's shard is exactly full: seal it and rescan.
			p.sealStaging(int(six[i]), epoch, width)
			continue
		}
		for s := 0; s < n; s++ {
			if cnt[s] > 0 {
				base[s] = int32(p.staging[s].Extend(int(cnt[s])))
			}
		}
		for a := 0; a < width; a++ {
			src := cols[a]
			dst := p.dstCol
			for s := 0; s < n; s++ {
				if cnt[s] > 0 {
					dst[s] = p.staging[s].Cols[a]
					pos[s] = base[s]
				}
			}
			for k := i; k < j; k++ {
				s := six[k]
				dst[s][pos[s]] = src[k]
				pos[s]++
			}
		}
		for s := 0; s < n; s++ {
			if cnt[s] > 0 && p.staging[s].Len() >= runCapacity {
				p.sealStaging(s, epoch, width)
			}
		}
		i = j
	}
}

// RunParallel consumes the source with one goroutine per shard behind a
// pipelined columnar router. Column-major batches are pulled via
// ReadColumns, route-hashed column-wise (bit-identical to the
// record-major ShardOf), scattered into per-shard staging columns, and
// handed over lock-free SPSC rings; epoch boundaries propagate as
// in-band markers so per-shard flushes and the HFTA merge overlap the
// next epoch's routing. The sink passed at construction (or
// SetBatchSink/SetRunSink) must be concurrency-safe
// (hfta.(*Aggregator).ConsumeBatch, Consume, and MergeRun all are).
//
// The router's single clock defines epoch boundaries in stream arrival
// order — exactly the sequential Run semantics, including the clamping
// of late records into the open epoch.
func (s *Sharded) RunParallel(src stream.Source, epochLen uint32) (Ops, error) {
	n := len(s.shards)
	if s.pipe == nil {
		s.pipe = newPipeline(n)
	}
	p := s.pipe

	var wg sync.WaitGroup
	wg.Add(n)
	for i, rt := range s.shards {
		go p.worker(rt, i, &wg)
	}

	clock := stream.NewClock(epochLen)
	ep := stream.Epoch{Length: epochLen}
	width := -1
	for {
		m := stream.ReadColumns(src, p.batch, routerBatch)
		if m == 0 {
			break
		}
		if w := p.batch.Width(); w != width {
			// First batch, or a mid-stream schema change: (re)open every
			// shard's staging batch at the new width, sealing any records
			// staged at the old one first.
			for i := 0; i < n; i++ {
				switch {
				case p.staging[i] == nil:
					p.staging[i] = p.nextStaging(i, w)
				case p.staging[i].Len() > 0:
					p.sealStaging(i, clock.Current(), w)
				default:
					p.staging[i].Reset(w)
				}
			}
			width = w
		}
		cols, times := p.batch.Cols, p.batch.Time

		// Pass 1: route-hash the whole pull batch column-wise.
		hv := p.hashes
		six := p.shardIx
		if cap(hv) < m {
			hv = make([]uint64, m)
			six = make([]int32, m)
			p.hashes = hv
			p.shardIx = six
		}
		hv = hv[:m]
		six = six[:m]
		hashtab.HashColumns(shardRouteSeed, cols, hv)
		for i := range hv {
			six[i] = int32(hashtab.Reduce(hv[i], n))
		}

		// Split the batch into same-epoch segments in arrival order and
		// scatter each (pass 2). The segment rule reproduces per-record
		// clock semantics exactly: a record rolls the clock only when its
		// epoch exceeds the current one; late records clamp into the open
		// epoch and stay in the segment.
		lo := 0
		for lo < m {
			prev := clock.Current()
			epoch, rolled := clock.Advance(times[lo])
			if rolled {
				// Seal every shard's open batch under the epoch it
				// accumulated and propagate the boundary in-band.
				for i := 0; i < n; i++ {
					if p.staging[i].Len() > 0 {
						p.pushRun(i, run{cols: p.staging[i], epoch: prev, kind: runRecords})
						p.staging[i] = p.nextStaging(i, width)
					}
					p.pushRun(i, run{epoch: epoch, kind: runEpoch})
				}
			}
			hi := lo + 1
			for hi < m && ep.Of(times[hi]) <= epoch {
				hi++
			}
			p.scatter(cols, six, lo, hi, epoch, width, n)
			lo = hi
		}
	}
	for i := 0; i < n; i++ {
		if p.staging[i] != nil && p.staging[i].Len() > 0 {
			p.sealStaging(i, clock.Current(), width)
		}
		p.pushRun(i, run{kind: runStop})
	}
	wg.Wait()
	return s.Ops(), src.Err()
}
