package lfta_test

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hashtab"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// Property: the batched record path (ProcessBatch → ProbeBatchInto →
// run-at-a-time victim cascade) is indistinguishable from the scalar
// path (Process → ProbeInto → depth-first cascade) — not just in the
// per-epoch HFTA answers, but in every per-table probe/hit/insert/
// collision/eviction counter and in the runtime's own cost ledger. The
// feeding graph is a tree, so batching reorders probes only ACROSS
// tables, never within one; this test pins that argument against the
// implementation for random workloads, aggregate shapes, cascade depths,
// and run boundaries. Runs under -race in CI via the internal/... race
// job.
//
// Since the tables grew vector tag-scan kernels, the whole suite runs
// once per available kernel (generic SWAR always; AVX2/NEON when the
// host has it), so a kernel bug cannot hide behind the portable path
// that CI's SIMD-disabled job exercises.
func TestBatchedScalarOracleEquivalence(t *testing.T) {
	defer hashtab.SetSIMD(hashtab.SIMDEnabled())
	for _, simd := range kernelSelections() {
		hashtab.SetSIMD(simd)
		t.Run("kernel="+hashtab.KernelName(), testBatchedScalarOracleEquivalence)
	}
}

// kernelSelections returns the SetSIMD values to sweep: the generic
// kernel always, plus the vector kernel when this CPU has one.
func kernelSelections() []bool {
	ks := []bool{false}
	if hashtab.SIMDAvailable() {
		ks = append(ks, true)
	}
	return ks
}

func testBatchedScalarOracleEquivalence(t *testing.T) {
	type shape struct {
		spec    string
		queries []attr.Set
		aggs    []lfta.AggSpec
	}
	shapes := []shape{
		{
			// Flat: three queries fed by one raw scan, count(*) deltas
			// (the constant-delta fast path).
			spec:    "ABCD(AB BC CD)",
			queries: []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC"), attr.MustParseSet("CD")},
			aggs:    lfta.CountStar,
		},
		{
			// Deep: a three-level cascade where AB is both a query and a
			// feeder, with attribute-valued Sum/Min/Max aggregates (the
			// per-record delta-run path).
			spec: "ABCD(ABC(AB(A)) CD)",
			queries: []attr.Set{
				attr.MustParseSet("AB"), attr.MustParseSet("A"), attr.MustParseSet("CD"),
			},
			aggs: []lfta.AggSpec{
				{Op: hashtab.Sum, Input: -1},
				{Op: hashtab.Sum, Input: 2},
				{Op: hashtab.Min, Input: 1},
				{Op: hashtab.Max, Input: 3},
			},
		},
	}
	for si, sh := range shapes {
		cfg, err := feedgraph.ParseConfig(sh.spec, sh.queries)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(4200 + int64(si*10+trial)))
			schema := stream.MustSchema(4)
			// Trial 0 draws from a tiny universe so every batch run is
			// dominated by duplicate keys — the same group hit repeatedly
			// within one commit pass, where a stale setup-pass decision
			// (group scanned before an earlier duplicate installed) would
			// diverge from the scalar path. Later trials are sparse.
			groups := 40 + rng.Intn(500)
			if trial == 0 {
				groups = 5 + rng.Intn(10)
			}
			u, err := gen.UniformUniverse(rng, schema, groups, 30)
			if err != nil {
				t.Fatal(err)
			}
			nrecs := 3000 + rng.Intn(9000)
			recs := gen.Uniform(rng, u, nrecs, uint32(20+rng.Intn(60)))
			alloc := cost.Alloc{}
			for i, r := range cfg.Rels {
				alloc[r] = 7 + i*5 + rng.Intn(50) // tiny tables: heavy eviction traffic
			}
			const epochLen = 10
			seed := uint64(5000 + trial)

			want := hfta.Reference(recs, sh.queries, sh.aggs, epochLen)

			// Scalar: record-at-a-time through Process.
			scalarAgg, err := hfta.New(sh.queries, sh.aggs)
			if err != nil {
				t.Fatal(err)
			}
			scalar, err := lfta.New(cfg, alloc, sh.aggs, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			scalar.SetBatchSink(scalarAgg.ConsumeBatch, 32)
			clock := stream.NewClock(epochLen)
			for _, rec := range recs {
				epoch, rolled := clock.Advance(rec.Time)
				if rolled {
					scalar.FlushEpoch()
				}
				scalar.Process(rec, epoch)
			}
			scalar.FlushEpoch()

			// Batched: the same stream sliced into runs of random length
			// (1..600, spanning partial chunks, exact chunks, and
			// multi-chunk runs), each fed through ProcessBatch. Epoch
			// boundaries always fall between runs, as the pipeline
			// guarantees.
			batchAgg, err := hfta.New(sh.queries, sh.aggs)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := lfta.New(cfg, alloc, sh.aggs, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			batched.SetBatchSink(batchAgg.ConsumeBatch, 32)
			clock = stream.NewClock(epochLen)
			run := make([]stream.Record, 0, 600)
			runEpoch := uint32(0)
			flushRun := func() {
				if len(run) > 0 {
					batched.ProcessBatch(run, runEpoch)
					run = run[:0]
				}
			}
			limit := 1 + rng.Intn(600)
			for _, rec := range recs {
				epoch, rolled := clock.Advance(rec.Time)
				if rolled {
					flushRun()
					batched.FlushEpoch()
				}
				if epoch != runEpoch || len(run) >= limit {
					flushRun()
					runEpoch = epoch
					limit = 1 + rng.Intn(600)
				}
				run = append(run, rec)
			}
			flushRun()
			batched.FlushEpoch()

			// Flat runs: the same stream again through ProcessRun (the
			// zero-copy record-major block API the engine's staging arena
			// feeds), with its own random run boundaries.
			runAgg, err := hfta.New(sh.queries, sh.aggs)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := lfta.New(cfg, alloc, sh.aggs, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			flat.SetBatchSink(runAgg.ConsumeBatch, 32)
			clock = stream.NewClock(epochLen)
			const width = 4
			block := make([]uint32, 0, 600*width)
			blockEpoch := uint32(0)
			flushBlock := func() {
				if len(block) > 0 {
					flat.ProcessRun(block, width, blockEpoch)
					block = block[:0]
				}
			}
			limit = 1 + rng.Intn(600)
			for _, rec := range recs {
				epoch, rolled := clock.Advance(rec.Time)
				if rolled {
					flushBlock()
					flat.FlushEpoch()
				}
				if epoch != blockEpoch || len(block) >= limit*width {
					flushBlock()
					blockEpoch = epoch
					limit = 1 + rng.Intn(600)
				}
				block = append(block, rec.Attrs...)
			}
			flushBlock()
			flat.FlushEpoch()

			if !hfta.Equal(scalarAgg.AllRows(), want) {
				t.Fatalf("shape %d trial %d: scalar rows differ from oracle", si, trial)
			}
			if !hfta.Equal(batchAgg.AllRows(), scalarAgg.AllRows()) {
				t.Fatalf("shape %d trial %d: batched rows differ from scalar", si, trial)
			}
			if !hfta.Equal(runAgg.AllRows(), scalarAgg.AllRows()) {
				t.Fatalf("shape %d trial %d: flat-run rows differ from scalar", si, trial)
			}
			if so, bo := scalar.Ops(), batched.Ops(); so != bo {
				t.Fatalf("shape %d trial %d: ops diverge: scalar %+v batched %+v", si, trial, so, bo)
			}
			if so, fo := scalar.Ops(), flat.Ops(); so != fo {
				t.Fatalf("shape %d trial %d: ops diverge: scalar %+v flat-run %+v", si, trial, so, fo)
			}
			sstats, bstats, fstats := scalar.TableStats(), batched.TableStats(), flat.TableStats()
			for rel, ss := range sstats {
				if bs := bstats[rel]; bs != ss {
					t.Fatalf("shape %d trial %d: table %v stats diverge:\nscalar %+v\nbatch  %+v", si, trial, rel, ss, bs)
				}
				if fs := fstats[rel]; fs != ss {
					t.Fatalf("shape %d trial %d: table %v stats diverge:\nscalar %+v\nflat   %+v", si, trial, rel, ss, fs)
				}
			}
		}
	}
}
