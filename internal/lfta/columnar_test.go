package lfta_test

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hashtab"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// Property: ProcessColumns — the column-major run entry point the
// engine's staging and the shard pipeline feed — is indistinguishable
// from the scalar Process path: same HFTA rows, same op ledger, same
// per-table counters. Run boundaries are random, aggregate shapes cover
// both the constant-delta fast path and attribute-valued deltas, and the
// cascade depth covers multi-level victim feeding.
func TestColumnarProcessEquivalence(t *testing.T) {
	type shape struct {
		spec    string
		queries []attr.Set
		aggs    []lfta.AggSpec
	}
	shapes := []shape{
		{
			spec:    "ABCD(AB BC CD)",
			queries: []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC"), attr.MustParseSet("CD")},
			aggs:    lfta.CountStar,
		},
		{
			spec: "ABCD(ABC(AB(A)) CD)",
			queries: []attr.Set{
				attr.MustParseSet("AB"), attr.MustParseSet("A"), attr.MustParseSet("CD"),
			},
			aggs: []lfta.AggSpec{
				{Op: hashtab.Sum, Input: -1},
				{Op: hashtab.Sum, Input: 2},
				{Op: hashtab.Min, Input: 1},
				{Op: hashtab.Max, Input: 3},
			},
		},
	}
	for si, sh := range shapes {
		cfg, err := feedgraph.ParseConfig(sh.spec, sh.queries)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(7100 + int64(si*10+trial)))
			schema := stream.MustSchema(4)
			groups := 30 + rng.Intn(400)
			u, err := gen.UniformUniverse(rng, schema, groups, 30)
			if err != nil {
				t.Fatal(err)
			}
			recs := gen.Uniform(rng, u, 3000+rng.Intn(8000), uint32(20+rng.Intn(60)))
			alloc := cost.Alloc{}
			for i, r := range cfg.Rels {
				alloc[r] = 7 + i*5 + rng.Intn(40)
			}
			const epochLen = 10
			seed := uint64(7200 + trial)

			want := hfta.Reference(recs, sh.queries, sh.aggs, epochLen)

			// Scalar reference leg.
			scalarAgg, err := hfta.New(sh.queries, sh.aggs)
			if err != nil {
				t.Fatal(err)
			}
			scalar, err := lfta.New(cfg, alloc, sh.aggs, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			scalar.SetBatchSink(scalarAgg.ConsumeBatch, 32)
			clock := stream.NewClock(epochLen)
			for _, rec := range recs {
				epoch, rolled := clock.Advance(rec.Time)
				if rolled {
					scalar.FlushEpoch()
				}
				scalar.Process(rec, epoch)
			}
			scalar.FlushEpoch()

			// Columnar leg: the same stream sliced into column-major runs
			// of random length, each fed through ProcessColumns, with the
			// run sink delivering sealed eviction runs to MergeRun.
			colAgg, err := hfta.New(sh.queries, sh.aggs)
			if err != nil {
				t.Fatal(err)
			}
			columnar, err := lfta.New(cfg, alloc, sh.aggs, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Small run buffers force mid-epoch seals as well as the
			// FlushEpoch drain.
			columnar.SetRunSink(colAgg.MergeRun, 16)
			clock = stream.NewClock(epochLen)
			const width = 4
			var cb stream.ColumnBatch
			cb.Reset(width)
			runEpoch := uint32(0)
			flushCols := func() {
				if cb.Len() > 0 {
					columnar.ProcessColumns(cb.Cols, runEpoch)
					cb.Reset(width)
				}
			}
			limit := 1 + rng.Intn(600)
			for _, rec := range recs {
				epoch, rolled := clock.Advance(rec.Time)
				if rolled {
					flushCols()
					columnar.FlushEpoch()
				}
				if epoch != runEpoch || cb.Len() >= limit {
					flushCols()
					runEpoch = epoch
					limit = 1 + rng.Intn(600)
				}
				cb.Append(rec.Attrs, rec.Time)
			}
			flushCols()
			columnar.FlushEpoch()

			if !hfta.Equal(scalarAgg.AllRows(), want) {
				t.Fatalf("shape %d trial %d: scalar rows differ from oracle", si, trial)
			}
			if !hfta.Equal(colAgg.AllRows(), scalarAgg.AllRows()) {
				t.Fatalf("shape %d trial %d: columnar rows differ from scalar", si, trial)
			}
			if so, co := scalar.Ops(), columnar.Ops(); so != co {
				t.Fatalf("shape %d trial %d: ops diverge: scalar %+v columnar %+v", si, trial, so, co)
			}
			sstats, cstats := scalar.TableStats(), columnar.TableStats()
			for rel, ss := range sstats {
				if cs := cstats[rel]; cs != ss {
					t.Fatalf("shape %d trial %d: table %v stats diverge:\nscalar   %+v\ncolumnar %+v", si, trial, rel, ss, cs)
				}
			}
		}
	}
}

// Property: the fully columnar routed deployment — ReadColumns source
// decode, two-pass hash/scatter routing, per-shard ProcessColumns, run
// sink into the batched HFTA MergeRun — produces exactly the same sorted
// rows at every shard count as a single sequential runtime, and both
// match the oracle.
func TestColumnarRoutedShardedEquivalence(t *testing.T) {
	queries := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC"), attr.MustParseSet("CD")}
	cfg, err := feedgraph.ParseConfig("ABCD(AB BC CD)", queries)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(7300 + int64(trial)))
		schema := stream.MustSchema(4)
		u, err := gen.UniformUniverse(rng, schema, 50+rng.Intn(400), 30)
		if err != nil {
			t.Fatal(err)
		}
		recs := gen.Uniform(rng, u, 2000+rng.Intn(8000), uint32(rng.Intn(90)))
		epochLen := uint32(10)
		if trial == 3 {
			epochLen = 0 // unbounded single epoch
		}
		alloc := cost.Alloc{}
		for i, r := range cfg.Rels {
			alloc[r] = 7 + i*5 + rng.Intn(40)
		}

		want := hfta.Reference(recs, queries, lfta.CountStar, epochLen)

		seqAgg, err := hfta.New(queries, lfta.CountStar)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := lfta.New(cfg, alloc, lfta.CountStar, 21, nil)
		if err != nil {
			t.Fatal(err)
		}
		rt.SetRunSink(seqAgg.MergeRun, 16)
		if _, err := rt.Run(stream.NewSliceSource(recs), epochLen); err != nil {
			t.Fatal(err)
		}
		seqRows := seqAgg.AllRows()
		if !hfta.Equal(seqRows, want) {
			t.Fatalf("trial %d: sequential run-sink runtime differs from reference", trial)
		}

		for _, n := range []int{1, 2, 4, 8} {
			parAgg, err := hfta.New(queries, lfta.CountStar)
			if err != nil {
				t.Fatal(err)
			}
			s, err := lfta.NewSharded(cfg, alloc, lfta.CountStar, 21, nil, n)
			if err != nil {
				t.Fatal(err)
			}
			// Small run buffers force concurrent mid-epoch MergeRun calls.
			s.SetRunSink(parAgg.MergeRun, 16)
			ops, err := s.RunParallel(stream.NewSliceSource(recs), epochLen)
			if err != nil {
				t.Fatal(err)
			}
			if ops.Records != uint64(len(recs)) {
				t.Errorf("trial %d, %d shards: processed %d records, want %d", trial, n, ops.Records, len(recs))
			}
			if !hfta.Equal(parAgg.AllRows(), seqRows) {
				t.Errorf("trial %d: %d-shard columnar RunParallel rows differ from sequential", trial, n)
			}
		}
	}
}
