// Package attr implements the attribute and relation algebra used
// throughout the multiple-aggregation optimizer.
//
// A stream relation R has a fixed schema of up to 26 grouping attributes,
// named A through Z. A "relation" in the paper's sense (a group-by query or
// a phantom) is simply a non-empty subset of those attributes; we represent
// it as a bitset. The feeding relationship of the paper is then plain set
// inclusion: relation P can feed relation C iff C ⊂ P.
package attr

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxAttrs is the maximum number of grouping attributes in a schema.
const MaxAttrs = 26

// ID identifies a single attribute by its position in the schema (0 = A).
type ID uint8

// Name returns the single-letter name of the attribute ("A".."Z").
func (id ID) Name() string {
	if id >= MaxAttrs {
		return fmt.Sprintf("attr(%d)", uint8(id))
	}
	return string(rune('A' + id))
}

// Set is a set of attributes, i.e. a relation in the paper's terminology.
// The zero value is the empty set.
type Set uint32

// MakeSet builds a Set from individual attribute ids.
func MakeSet(ids ...ID) Set {
	var s Set
	for _, id := range ids {
		s |= 1 << id
	}
	return s
}

// ParseSet parses a relation name such as "ABD" into a Set. Lowercase
// letters are accepted. It returns an error on any character outside
// [A-Za-z] or on the empty string.
func ParseSet(name string) (Set, error) {
	if name == "" {
		return 0, fmt.Errorf("attr: empty relation name")
	}
	var s Set
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			s |= 1 << (r - 'A')
		case r >= 'a' && r <= 'z':
			s |= 1 << (r - 'a')
		default:
			return 0, fmt.Errorf("attr: bad attribute %q in relation name %q", r, name)
		}
	}
	return s, nil
}

// MustParseSet is ParseSet that panics on error; intended for literals in
// tests and examples.
func MustParseSet(name string) Set {
	s, err := ParseSet(name)
	if err != nil {
		panic(err)
	}
	return s
}

// String renders the set in the paper's notation: concatenated attribute
// letters in alphabetical order, e.g. "ABD". The empty set renders as "∅".
func (s Set) String() string {
	if s == 0 {
		return "∅"
	}
	var b strings.Builder
	for id := ID(0); id < MaxAttrs; id++ {
		if s.Has(id) {
			b.WriteByte(byte('A' + id))
		}
	}
	return b.String()
}

// Has reports whether the attribute id is a member of s.
func (s Set) Has(id ID) bool { return s&(1<<id) != 0 }

// Add returns s with attribute id added.
func (s Set) Add(id ID) Set { return s | 1<<id }

// Remove returns s with attribute id removed.
func (s Set) Remove(id ID) Set { return s &^ (1 << id) }

// Union returns the union of s and t. In the feeding graph, the union of
// two queries is the minimal phantom able to feed both.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns the intersection of s and t.
func (s Set) Intersect(t Set) Set { return s & t }

// Diff returns the attributes of s not present in t.
func (s Set) Diff(t Set) Set { return s &^ t }

// Size returns the number of attributes in the set (the arity of the
// relation's group key).
func (s Set) Size() int { return bits.OnesCount32(uint32(s)) }

// IsEmpty reports whether the set has no attributes.
func (s Set) IsEmpty() bool { return s == 0 }

// SubsetOf reports whether every attribute of s is also in t (s ⊆ t).
func (s Set) SubsetOf(t Set) bool { return s&t == s }

// ProperSubsetOf reports whether s ⊂ t.
func (s Set) ProperSubsetOf(t Set) bool { return s != t && s.SubsetOf(t) }

// SupersetOf reports whether t ⊆ s. A relation can feed exactly the
// relations over proper subsets of its attributes.
func (s Set) SupersetOf(t Set) bool { return t.SubsetOf(s) }

// CanFeed reports whether a hash table for s can feed (i.e. derive the
// groups of) a table for t: t must be a proper, non-empty subset of s.
func (s Set) CanFeed(t Set) bool { return !t.IsEmpty() && t.ProperSubsetOf(s) }

// IDs returns the member attribute ids in increasing order.
func (s Set) IDs() []ID {
	ids := make([]ID, 0, s.Size())
	for rest := uint32(s); rest != 0; {
		id := ID(bits.TrailingZeros32(rest))
		ids = append(ids, id)
		rest &= rest - 1
	}
	return ids
}

// Project copies the values of s's attributes out of a full-width tuple
// (indexed by attribute id) into dst, in attribute order, and returns dst.
// If dst is nil or too small a new slice is allocated. Project is on the
// hash-table hot path and does not allocate when dst has capacity.
func (s Set) Project(tuple []uint32, dst []uint32) []uint32 {
	n := s.Size()
	if cap(dst) < n {
		dst = make([]uint32, n)
	}
	dst = dst[:n]
	i := 0
	for rest := uint32(s); rest != 0; {
		id := bits.TrailingZeros32(rest)
		dst[i] = tuple[id]
		i++
		rest &= rest - 1
	}
	return dst
}

// Subsets calls fn for every non-empty proper subset of s, in no particular
// order. It is used to enumerate the relations a phantom could feed.
func (s Set) Subsets(fn func(Set)) {
	// Standard subset-enumeration trick: iterate sub = (sub-1) & s.
	for sub := (uint32(s) - 1) & uint32(s); sub != 0; sub = (sub - 1) & uint32(s) {
		fn(Set(sub))
	}
}

// SortSets orders a slice of relations by decreasing size and then by
// increasing bit pattern (i.e. alphabetical name), the canonical order used
// when printing configurations and enumerating phantoms.
func SortSets(sets []Set) {
	sort.Slice(sets, func(i, j int) bool {
		if a, b := sets[i].Size(), sets[j].Size(); a != b {
			return a > b
		}
		return sets[i] < sets[j]
	})
}

// Universe returns the union of all given sets: the widest relation needed
// to feed every query in the workload.
func Universe(sets []Set) Set {
	var u Set
	for _, s := range sets {
		u |= s
	}
	return u
}

// Dedup returns sets with duplicates removed, preserving first occurrence
// order.
func Dedup(sets []Set) []Set {
	seen := make(map[Set]bool, len(sets))
	out := sets[:0:0]
	for _, s := range sets {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
