package attr_test

import (
	"fmt"

	"repro/internal/attr"
)

func ExampleParseSet() {
	rel, _ := attr.ParseSet("dba") // order-insensitive
	fmt.Println(rel)
	// Output: ABD
}

func ExampleSet_Union() {
	ab := attr.MustParseSet("AB")
	bc := attr.MustParseSet("BC")
	// The union of two queries is the minimal phantom able to feed both.
	fmt.Println(ab.Union(bc))
	// Output: ABC
}

func ExampleSet_CanFeed() {
	abc := attr.MustParseSet("ABC")
	fmt.Println(abc.CanFeed(attr.MustParseSet("AB")))
	fmt.Println(abc.CanFeed(attr.MustParseSet("CD")))
	// Output:
	// true
	// false
}

func ExampleSet_Project() {
	rel := attr.MustParseSet("AC")
	tuple := []uint32{10, 20, 30, 40} // A, B, C, D
	fmt.Println(rel.Project(tuple, nil))
	// Output: [10 30]
}
