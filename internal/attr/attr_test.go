package attr

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestParseSet(t *testing.T) {
	cases := []struct {
		in   string
		want Set
		ok   bool
	}{
		{"A", MakeSet(0), true},
		{"AB", MakeSet(0, 1), true},
		{"BA", MakeSet(0, 1), true}, // order-insensitive
		{"abd", MakeSet(0, 1, 3), true},
		{"ABCD", MakeSet(0, 1, 2, 3), true},
		{"Z", MakeSet(25), true},
		{"AA", MakeSet(0), true}, // duplicates collapse
		{"", 0, false},
		{"A1", 0, false},
		{"A B", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSet(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseSet(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseSet(%q) succeeded; want error", c.in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, name := range []string{"A", "AB", "BD", "ABCD", "ACZ"} {
		s := MustParseSet(name)
		if got := s.String(); got != name {
			t.Errorf("MustParseSet(%q).String() = %q", name, got)
		}
	}
	if got := Set(0).String(); got != "∅" {
		t.Errorf("empty set String() = %q", got)
	}
}

func TestMustParseSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseSet on invalid input did not panic")
		}
	}()
	MustParseSet("not-a-relation!")
}

func TestSetOps(t *testing.T) {
	ab := MustParseSet("AB")
	bc := MustParseSet("BC")
	abc := MustParseSet("ABC")

	if got := ab.Union(bc); got != abc {
		t.Errorf("AB ∪ BC = %v; want ABC", got)
	}
	if got := ab.Intersect(bc); got != MustParseSet("B") {
		t.Errorf("AB ∩ BC = %v; want B", got)
	}
	if got := ab.Diff(bc); got != MustParseSet("A") {
		t.Errorf("AB \\ BC = %v; want A", got)
	}
	if !ab.ProperSubsetOf(abc) || abc.ProperSubsetOf(ab) {
		t.Error("proper subset relation wrong for AB ⊂ ABC")
	}
	if ab.ProperSubsetOf(ab) {
		t.Error("a set must not be a proper subset of itself")
	}
	if !abc.CanFeed(ab) {
		t.Error("ABC should feed AB")
	}
	if abc.CanFeed(abc) {
		t.Error("a relation must not feed itself")
	}
	if abc.CanFeed(0) {
		t.Error("nothing feeds the empty relation")
	}
	if ab.CanFeed(bc) {
		t.Error("AB must not feed BC (not a subset)")
	}
}

func TestAddRemoveHas(t *testing.T) {
	var s Set
	s = s.Add(2).Add(5)
	if !s.Has(2) || !s.Has(5) || s.Has(0) {
		t.Fatalf("membership wrong after Add: %v", s)
	}
	s = s.Remove(2)
	if s.Has(2) || !s.Has(5) {
		t.Fatalf("membership wrong after Remove: %v", s)
	}
	if s.Size() != 1 {
		t.Fatalf("Size = %d; want 1", s.Size())
	}
}

func TestIDsAndProject(t *testing.T) {
	s := MustParseSet("ACD")
	ids := s.IDs()
	want := []ID{0, 2, 3}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v; want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs() = %v; want %v", ids, want)
		}
	}

	tuple := []uint32{10, 11, 12, 13}
	got := s.Project(tuple, nil)
	wantVals := []uint32{10, 12, 13}
	for i := range wantVals {
		if got[i] != wantVals[i] {
			t.Fatalf("Project = %v; want %v", got, wantVals)
		}
	}

	// Reuse of dst must not allocate and must overwrite.
	buf := make([]uint32, 0, 8)
	got2 := s.Project(tuple, buf)
	if &got2[0] != &buf[:1][0] {
		t.Error("Project did not reuse provided buffer")
	}
}

func TestSubsetsEnumeration(t *testing.T) {
	s := MustParseSet("ABC")
	seen := map[Set]bool{}
	s.Subsets(func(sub Set) {
		if seen[sub] {
			t.Fatalf("subset %v enumerated twice", sub)
		}
		if !sub.ProperSubsetOf(s) {
			t.Fatalf("enumerated %v is not a proper subset of %v", sub, s)
		}
		seen[sub] = true
	})
	if len(seen) != 6 { // 2^3 - 2 (skip empty and full)
		t.Fatalf("enumerated %d proper non-empty subsets; want 6", len(seen))
	}
}

func TestUniverseAndDedup(t *testing.T) {
	sets := []Set{MustParseSet("AB"), MustParseSet("BC"), MustParseSet("AB")}
	if got := Universe(sets); got != MustParseSet("ABC") {
		t.Errorf("Universe = %v; want ABC", got)
	}
	d := Dedup(sets)
	if len(d) != 2 || d[0] != MustParseSet("AB") || d[1] != MustParseSet("BC") {
		t.Errorf("Dedup = %v", d)
	}
}

func TestSortSets(t *testing.T) {
	sets := []Set{
		MustParseSet("B"),
		MustParseSet("ABCD"),
		MustParseSet("AC"),
		MustParseSet("AB"),
	}
	SortSets(sets)
	want := []string{"ABCD", "AB", "AC", "B"}
	for i, w := range want {
		if sets[i].String() != w {
			t.Fatalf("SortSets order = %v; want %v", sets, want)
		}
	}
}

// Property: union is commutative, associative, monotone in size, and
// subset relations behave like bit algebra predicts.
func TestSetAlgebraProperties(t *testing.T) {
	f := func(a, b, c uint32) bool {
		const mask = 1<<MaxAttrs - 1
		x, y, z := Set(a&mask), Set(b&mask), Set(c&mask)
		if x.Union(y) != y.Union(x) {
			return false
		}
		if x.Union(y.Union(z)) != x.Union(y).Union(z) {
			return false
		}
		if !x.SubsetOf(x.Union(y)) {
			return false
		}
		if x.Union(y).Size() > x.Size()+y.Size() {
			return false
		}
		if x.Intersect(y).Size() != x.Size()+y.Size()-x.Union(y).Size() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: IDs() agrees with Has() and Size(), and Project pulls exactly
// those positions.
func TestIDsProperty(t *testing.T) {
	f := func(raw uint32) bool {
		const mask = 1<<MaxAttrs - 1
		s := Set(raw & mask)
		ids := s.IDs()
		if len(ids) != s.Size() {
			return false
		}
		for i, id := range ids {
			if !s.Has(id) {
				return false
			}
			if i > 0 && ids[i-1] >= id {
				return false // must be strictly increasing
			}
		}
		if s.Size() != bits.OnesCount32(uint32(s)) {
			return false
		}
		tuple := make([]uint32, MaxAttrs)
		for i := range tuple {
			tuple[i] = uint32(i * 7)
		}
		proj := s.Project(tuple, nil)
		for i, id := range ids {
			if proj[i] != tuple[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
