package feedgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/attr"
)

// randomQueries draws 1-5 distinct non-empty relations over 5 attributes.
func randomQueries(rng *rand.Rand) []attr.Set {
	n := 1 + rng.Intn(5)
	seen := map[attr.Set]bool{}
	var out []attr.Set
	for len(out) < n {
		q := attr.Set(rng.Intn(31) + 1)
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	return out
}

// TestGraphClosureProperty: every candidate phantom is a union of queries
// that (i) is not itself a query and (ii) contains at least two queries as
// proper subsets or equals their union — i.e. it can feed ≥ 2 relations
// of the graph.
func TestGraphClosureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		queries := randomQueries(rng)
		g, err := New(queries)
		if err != nil {
			t.Fatal(err)
		}
		for _, ph := range g.Phantoms {
			if g.IsQuery(ph) {
				t.Fatalf("trial %d: phantom %v is a query", trial, ph)
			}
			// Closure property: ph must be expressible as the union of
			// the queries it contains.
			var union attr.Set
			contained := 0
			for _, q := range g.Queries {
				if q.ProperSubsetOf(ph) || q == ph {
					union = union.Union(q)
					contained++
				}
			}
			if union != ph {
				t.Fatalf("trial %d: phantom %v is not the union of its contained queries (%v)", trial, ph, union)
			}
			if contained < 2 {
				t.Fatalf("trial %d: phantom %v contains only %d queries", trial, ph, contained)
			}
		}
	}
}

// TestConfigParentMinimalityProperty: in every random configuration, each
// relation's parent is a minimal instantiated proper superset.
func TestConfigParentMinimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		queries := randomQueries(rng)
		g, err := New(queries)
		if err != nil {
			t.Fatal(err)
		}
		var phantoms []attr.Set
		for _, ph := range g.Phantoms {
			if rng.Intn(2) == 0 {
				phantoms = append(phantoms, ph)
			}
		}
		cfg, err := NewConfig(queries, phantoms)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, r := range cfg.Rels {
			p := cfg.Parent(r)
			if p == 0 {
				// Raw: no instantiated proper superset may exist.
				for _, s := range cfg.Rels {
					if s.SupersetOf(r) && s != r {
						t.Fatalf("trial %d: %v is raw but %v contains it", trial, r, s)
					}
				}
				continue
			}
			// Minimality: no instantiated relation strictly between.
			for _, s := range cfg.Rels {
				if s != r && s != p && s.SupersetOf(r) && p.SupersetOf(s) {
					t.Fatalf("trial %d: %v's parent %v skips %v", trial, r, p, s)
				}
			}
		}
	}
}

// TestConfigPrintParseProperty: printing and re-parsing any random
// configuration is the identity on structure.
func TestConfigPrintParseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		queries := randomQueries(rng)
		g, err := New(queries)
		if err != nil {
			t.Fatal(err)
		}
		var phantoms []attr.Set
		for _, ph := range g.Phantoms {
			if rng.Intn(3) == 0 {
				phantoms = append(phantoms, ph)
			}
		}
		cfg, err := NewConfig(queries, phantoms)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ParseConfig(cfg.String(), queries)
		if err != nil {
			t.Fatalf("trial %d: re-parse %q: %v", trial, cfg.String(), err)
		}
		if again.String() != cfg.String() {
			t.Fatalf("trial %d: %q -> %q", trial, cfg.String(), again.String())
		}
		for _, r := range cfg.Rels {
			if again.Parent(r) != cfg.Parent(r) {
				t.Fatalf("trial %d: parent of %v changed across round trip", trial, r)
			}
			if again.IsQuery(r) != cfg.IsQuery(r) {
				t.Fatalf("trial %d: query flag of %v changed across round trip", trial, r)
			}
		}
	}
}

// TestAncestorChainProperty: ancestors are strictly increasing supersets
// ending at a raw relation.
func TestAncestorChainProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		queries := randomQueries(rng)
		g, err := New(queries)
		if err != nil {
			return false
		}
		cfg, err := NewConfig(queries, g.Phantoms) // instantiate everything
		if err != nil {
			return false
		}
		for _, r := range cfg.Rels {
			anc := cfg.Ancestors(r)
			prev := r
			for _, a := range anc {
				if !a.SupersetOf(prev) || a == prev {
					return false
				}
				prev = a
			}
			if len(anc) > 0 && !cfg.IsRaw(anc[len(anc)-1]) {
				return false
			}
			if len(anc) == 0 && !cfg.IsRaw(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
