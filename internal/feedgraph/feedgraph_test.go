package feedgraph

import (
	"testing"

	"repro/internal/attr"
)

func sets(names ...string) []attr.Set {
	out := make([]attr.Set, len(names))
	for i, n := range names {
		out[i] = attr.MustParseSet(n)
	}
	return out
}

// TestGraphFigure4 reproduces the feeding graph of Figure 4: queries
// {AB, BC, BD, CD} induce candidate phantoms {ABC, ABD, BCD, ABCD}.
func TestGraphFigure4(t *testing.T) {
	g, err := New(sets("AB", "BC", "BD", "CD"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[attr.Set]bool{
		attr.MustParseSet("ABC"):  true,
		attr.MustParseSet("ABD"):  true,
		attr.MustParseSet("BCD"):  true,
		attr.MustParseSet("ABCD"): true,
	}
	if len(g.Phantoms) != len(want) {
		t.Fatalf("phantoms = %v; want 4", g.Phantoms)
	}
	for _, p := range g.Phantoms {
		if !want[p] {
			t.Errorf("unexpected phantom %v", p)
		}
		if !g.IsPhantom(p) || g.IsQuery(p) {
			t.Errorf("classification of %v wrong", p)
		}
	}
	if !g.IsQuery(attr.MustParseSet("AB")) {
		t.Error("AB must be a query")
	}
	// Feed counts: ABC feeds AB and BC (2); ABCD feeds everything (7).
	if n := g.FeedCount(attr.MustParseSet("ABC")); n != 2 {
		t.Errorf("FeedCount(ABC) = %d; want 2", n)
	}
	if n := g.FeedCount(attr.MustParseSet("ABCD")); n != 7 {
		t.Errorf("FeedCount(ABCD) = %d; want 7", n)
	}
}

// TestGraphSingletons: queries {A,B,C,D} induce all 11 subsets of size ≥ 2.
func TestGraphSingletons(t *testing.T) {
	g, err := New(sets("A", "B", "C", "D"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Phantoms) != 11 {
		t.Errorf("phantoms = %d; want 11 (all subsets of ABCD with ≥2 attrs)", len(g.Phantoms))
	}
}

func TestGraphValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty query set accepted")
	}
	if _, err := New([]attr.Set{0}); err == nil {
		t.Error("empty relation accepted")
	}
	// Duplicates collapse.
	g, err := New(sets("AB", "AB", "BC"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Queries) != 2 {
		t.Errorf("Queries = %v; want deduplicated", g.Queries)
	}
}

// TestConfigFigure3 builds the three configurations of Figure 3 and
// checks raw/leaf classification the paper describes in Section 3.1.
func TestConfigFigure3(t *testing.T) {
	queries := sets("AB", "BC", "BD", "CD")

	// (a): phantom ABC feeding AB, BC; BD and CD raw.
	a, err := NewConfig(queries, sets("ABC"))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.String(); got != "ABC(AB BC) BD CD" {
		t.Errorf("config (a) = %q", got)
	}
	wantRaw := map[string]bool{"ABC": true, "BD": true, "CD": true}
	for _, r := range a.Raws() {
		if !wantRaw[r.String()] {
			t.Errorf("unexpected raw %v in (a)", r)
		}
	}
	// BD and CD are both raw and leaf (the paper calls this out).
	bd := attr.MustParseSet("BD")
	if !a.IsRaw(bd) || !a.IsLeaf(bd) {
		t.Error("BD must be both raw and leaf in (a)")
	}
	if len(a.Leaves()) != 4 {
		t.Errorf("leaves = %v; want the 4 queries", a.Leaves())
	}

	// (b): phantom BCD feeding BC, BD, CD; AB raw.
	b, err := NewConfig(queries, sets("BCD"))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "AB BCD(BC BD CD)" {
		t.Errorf("config (b) = %q", got)
	}

	// (c): ABCD feeds AB and BCD; BCD feeds BC, BD, CD.
	c, err := NewConfig(queries, sets("ABCD", "BCD"))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.String(); got != "ABCD(AB BCD(BC BD CD))" {
		t.Errorf("config (c) = %q", got)
	}
	if raws := c.Raws(); len(raws) != 1 || raws[0] != attr.MustParseSet("ABCD") {
		t.Errorf("raws of (c) = %v; want only ABCD", raws)
	}
	if c.Depth() != 3 {
		t.Errorf("depth of (c) = %d; want 3", c.Depth())
	}
	// Ancestors of BC in (c): BCD then ABCD.
	anc := c.Ancestors(attr.MustParseSet("BC"))
	if len(anc) != 2 || anc[0] != attr.MustParseSet("BCD") || anc[1] != attr.MustParseSet("ABCD") {
		t.Errorf("Ancestors(BC) = %v", anc)
	}
	for _, cfg := range []*Config{a, b, c} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate: %v", err)
		}
		if got := cfg.UselessPhantoms(); len(got) != 0 {
			t.Errorf("useless phantoms: %v", got)
		}
	}
}

func TestConfigNoPhantoms(t *testing.T) {
	cfg, err := NewConfig(sets("A", "B", "C"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Depth() != 1 {
		t.Errorf("depth = %d", cfg.Depth())
	}
	for _, r := range cfg.Rels {
		if !cfg.IsRaw(r) || !cfg.IsLeaf(r) {
			t.Errorf("%v should be raw and leaf", r)
		}
	}
	if got := cfg.String(); got != "A B C" {
		t.Errorf("String = %q", got)
	}
}

func TestUselessPhantomDetection(t *testing.T) {
	// ABC above only query AB feeds one relation: useless.
	cfg, err := NewConfig(sets("AB"), sets("ABC"))
	if err != nil {
		t.Fatal(err)
	}
	u := cfg.UselessPhantoms()
	if len(u) != 1 || u[0] != attr.MustParseSet("ABC") {
		t.Errorf("UselessPhantoms = %v", u)
	}
}

func TestQueryFedByQuery(t *testing.T) {
	// AB is a query that also feeds query A: queries need not be leaves,
	// but leaves are always queries.
	cfg, err := NewConfig(sets("A", "AB"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ab := attr.MustParseSet("AB")
	if cfg.IsLeaf(ab) {
		t.Error("AB should feed A")
	}
	for _, l := range cfg.Leaves() {
		if !cfg.IsQuery(l) {
			t.Errorf("leaf %v is not a query", l)
		}
	}
}

func TestParseConfig(t *testing.T) {
	queries := sets("AB", "BC", "BD", "CD")
	for _, notation := range []string{
		"(ABCD(AB BCD(BC BD CD)))",
		"ABCD(AB BCD(BC BD CD))",
		"AB(A B) CD(C D)",
		"(ABC(AC(A C) B))",
		"(ABCD(ABC(A BC(B C)) D))",
		"A B C",
	} {
		cfg, err := ParseConfig(notation, nil)
		if err != nil {
			t.Errorf("ParseConfig(%q): %v", notation, err)
			continue
		}
		// Round trip: printing and re-parsing yields the same structure.
		again, err := ParseConfig(cfg.String(), nil)
		if err != nil {
			t.Errorf("re-parse of %q (printed %q): %v", notation, cfg.String(), err)
			continue
		}
		if again.String() != cfg.String() {
			t.Errorf("round trip %q -> %q -> %q", notation, cfg.String(), again.String())
		}
	}
	// With an explicit query set, interior queries are preserved.
	cfg, err := ParseConfig("ABCD(AB BCD(BC BD CD))", queries)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.IsQuery(attr.MustParseSet("AB")) || cfg.IsQuery(attr.MustParseSet("BCD")) {
		t.Error("query classification after parse is wrong")
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"(",
		"AB(",
		"AB(A",
		"AB)",
		"A1",
		"AB(CD)",         // CD not a subset of AB
		"AB(A B) extra(", // trailing garbage
	} {
		if _, err := ParseConfig(bad, nil); err == nil {
			t.Errorf("ParseConfig(%q) succeeded; want error", bad)
		}
	}
}

func TestEnumerateConfigs(t *testing.T) {
	g, err := New(sets("AB", "BC", "BD", "CD"))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	seen := map[string]bool{}
	if err := g.EnumerateConfigs(func(c *Config) bool {
		count++
		s := c.String()
		if seen[s] {
			t.Errorf("duplicate configuration %q", s)
		}
		seen[s] = true
		if err := c.Validate(); err != nil {
			t.Errorf("invalid enumerated config %q: %v", s, err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 16 { // 2^4 phantom subsets
		t.Errorf("enumerated %d configs; want 16", count)
	}
	// Early stop.
	n := 0
	g.EnumerateConfigs(func(*Config) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestGroupCounts(t *testing.T) {
	gc := GroupCounts{
		attr.MustParseSet("A"):  552,
		attr.MustParseSet("AB"): 1846,
	}
	if _, err := gc.Get(attr.MustParseSet("A")); err != nil {
		t.Error(err)
	}
	if _, err := gc.Get(attr.MustParseSet("Z")); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := gc.CheckMonotone(); err != nil {
		t.Errorf("monotone table rejected: %v", err)
	}
	gc[attr.MustParseSet("A")] = 5000
	if err := gc.CheckMonotone(); err == nil {
		t.Error("non-monotone table accepted")
	}
}

func TestEntrySize(t *testing.T) {
	// Paper: bucket for A is 8 bytes (2 units); for ABCD, 20 bytes (5).
	if EntrySize(attr.MustParseSet("A")) != 2 {
		t.Error("EntrySize(A) != 2")
	}
	if EntrySize(attr.MustParseSet("ABCD")) != 5 {
		t.Error("EntrySize(ABCD) != 5")
	}
}

func TestConfigPhantomEqualToQueryIgnored(t *testing.T) {
	cfg, err := NewConfig(sets("AB", "BC"), sets("AB", "ABC"))
	if err != nil {
		t.Fatal(err)
	}
	// AB stays a query; only ABC is a phantom.
	if ps := cfg.Phantoms(); len(ps) != 1 || ps[0] != attr.MustParseSet("ABC") {
		t.Errorf("Phantoms = %v", ps)
	}
}
