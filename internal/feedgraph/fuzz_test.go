package feedgraph

import (
	"testing"
)

// FuzzParseConfig: the configuration-notation parser must never panic,
// and accepted inputs must round trip through String.
func FuzzParseConfig(f *testing.F) {
	for _, seed := range []string{
		"ABCD(AB BCD(BC BD CD))",
		"(ABC(AC(A C) B))",
		"AB(A B) CD(C D)",
		"A B C",
		"((((",
		"AB(CD)",
		"AB(A",
		"A)",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, notation string) {
		cfg, err := ParseConfig(notation, nil)
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted invalid configuration %q: %v", notation, err)
		}
		again, err := ParseConfig(cfg.String(), nil)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", notation, cfg.String(), err)
		}
		if again.String() != cfg.String() {
			t.Fatalf("unstable rendering: %q -> %q -> %q", notation, cfg.String(), again.String())
		}
	})
}
