package feedgraph_test

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/feedgraph"
)

func ExampleNew() {
	// Figure 4 of the paper: queries {AB, BC, BD, CD} induce four
	// candidate phantoms.
	g, _ := feedgraph.New([]attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	})
	fmt.Println(g.Phantoms)
	// Output: [ABCD ABC ABD BCD]
}

func ExampleParseConfig() {
	// Figure 3(c): ABCD feeds AB and BCD; BCD feeds BC, BD and CD.
	cfg, _ := feedgraph.ParseConfig("(ABCD(AB BCD(BC BD CD)))", nil)
	fmt.Println(cfg)
	fmt.Println("raw relations:", cfg.Raws())
	fmt.Println("depth:", cfg.Depth())
	// Output:
	// ABCD(AB BCD(BC BD CD))
	// raw relations: [ABCD]
	// depth: 3
}

func ExampleConfig_Ancestors() {
	cfg, _ := feedgraph.ParseConfig("ABCD(AB BCD(BC BD CD))", nil)
	fmt.Println(cfg.Ancestors(attr.MustParseSet("BC")))
	// Output: [BCD ABCD]
}
