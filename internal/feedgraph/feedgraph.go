// Package feedgraph implements the paper's relation feeding graph
// (Section 2.6, Figure 4) and LFTA configurations (Section 3.1).
//
// Given user queries S_Q (each a set of grouping attributes), the feeding
// graph contains the queries plus every candidate phantom — the closure of
// S_Q under union, since a phantom that cannot feed at least two relations
// is never beneficial. A configuration is the subset of relations actually
// instantiated at the LFTA; it always includes all queries and forms a
// tree: each instantiated relation is fed by its minimal instantiated
// proper superset ("short-circuiting" intermediate nodes that were not
// chosen), or directly by the stream if none exists (a raw relation).
package feedgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attr"
)

// Graph is the feeding graph of a query set.
type Graph struct {
	Queries  []attr.Set // user queries, deduplicated, canonical order
	Phantoms []attr.Set // candidate phantoms: union closure minus queries
	queries  map[attr.Set]bool
}

// New builds the feeding graph for a set of user queries.
func New(queries []attr.Set) (*Graph, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("feedgraph: need at least one query")
	}
	qs := attr.Dedup(queries)
	for _, q := range qs {
		if q.IsEmpty() {
			return nil, fmt.Errorf("feedgraph: empty query relation")
		}
	}
	attr.SortSets(qs)
	g := &Graph{Queries: qs, queries: make(map[attr.Set]bool, len(qs))}
	for _, q := range qs {
		g.queries[q] = true
	}

	// Union closure: all unions of two or more queries. Fixpoint of
	// pairwise unions starting from the queries.
	closure := make(map[attr.Set]bool, len(qs))
	for _, q := range qs {
		closure[q] = true
	}
	for changed := true; changed; {
		changed = false
		members := setsOf(closure)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				u := members[i].Union(members[j])
				if !closure[u] {
					closure[u] = true
					changed = true
				}
			}
		}
	}
	for s := range closure {
		if !g.queries[s] {
			g.Phantoms = append(g.Phantoms, s)
		}
	}
	attr.SortSets(g.Phantoms)
	return g, nil
}

func setsOf(m map[attr.Set]bool) []attr.Set {
	out := make([]attr.Set, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	attr.SortSets(out)
	return out
}

// IsQuery reports whether rel is one of the user queries.
func (g *Graph) IsQuery(rel attr.Set) bool { return g.queries[rel] }

// IsPhantom reports whether rel is a candidate phantom of the graph.
func (g *Graph) IsPhantom(rel attr.Set) bool {
	if g.queries[rel] {
		return false
	}
	for _, p := range g.Phantoms {
		if p == rel {
			return true
		}
	}
	return false
}

// Relations returns all graph nodes (queries and candidate phantoms) in
// canonical order.
func (g *Graph) Relations() []attr.Set {
	all := append(append([]attr.Set(nil), g.Phantoms...), g.Queries...)
	attr.SortSets(all)
	return all
}

// FeedCount returns how many *other* graph relations rel can feed; phantoms
// with FeedCount < 2 are never beneficial (Section 2.6).
func (g *Graph) FeedCount(rel attr.Set) int {
	n := 0
	for _, r := range g.Relations() {
		if rel.CanFeed(r) {
			n++
		}
	}
	return n
}

// Config is a configuration: the instantiated relations (all queries plus
// the chosen phantoms) arranged as a feeding forest.
type Config struct {
	Rels     []attr.Set              // all instantiated relations, canonical order
	Queries  []attr.Set              // the user queries (always instantiated)
	parent   map[attr.Set]attr.Set   // 0 ⇒ raw (fed directly by the stream)
	children map[attr.Set][]attr.Set // feeding order, canonical
	isQuery  map[attr.Set]bool
}

// NewConfig assembles a configuration from the query set and the chosen
// phantoms. Every relation's parent is its minimal instantiated proper
// superset (ties broken toward fewer attributes, then canonical order);
// relations without an instantiated superset are raw.
func NewConfig(queries, phantoms []attr.Set) (*Config, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("feedgraph: configuration needs queries")
	}
	qs := attr.Dedup(queries)
	attr.SortSets(qs)
	isQuery := make(map[attr.Set]bool, len(qs))
	for _, q := range qs {
		if q.IsEmpty() {
			return nil, fmt.Errorf("feedgraph: empty query relation")
		}
		isQuery[q] = true
	}
	var rels []attr.Set
	rels = append(rels, qs...)
	for _, p := range attr.Dedup(phantoms) {
		if p.IsEmpty() {
			return nil, fmt.Errorf("feedgraph: empty phantom relation")
		}
		if isQuery[p] {
			continue // already instantiated as a query
		}
		rels = append(rels, p)
	}
	rels = attr.Dedup(rels)
	attr.SortSets(rels)

	cfg := &Config{
		Rels:     rels,
		Queries:  qs,
		parent:   make(map[attr.Set]attr.Set, len(rels)),
		children: make(map[attr.Set][]attr.Set, len(rels)),
		isQuery:  isQuery,
	}
	for _, r := range rels {
		best := attr.Set(0)
		for _, cand := range rels {
			if !cand.SupersetOf(r) || cand == r {
				continue
			}
			if best == 0 || cand.Size() < best.Size() || (cand.Size() == best.Size() && cand < best) {
				best = cand
			}
		}
		cfg.parent[r] = best
		if best != 0 {
			cfg.children[best] = append(cfg.children[best], r)
		}
	}
	for _, kids := range cfg.children {
		attr.SortSets(kids)
	}
	return cfg, nil
}

// Parent returns the relation feeding r, or 0 if r is raw.
func (c *Config) Parent(r attr.Set) attr.Set { return c.parent[r] }

// Children returns the relations r feeds, in canonical order.
func (c *Config) Children(r attr.Set) []attr.Set { return c.children[r] }

// IsRaw reports whether r is fed directly by the stream.
func (c *Config) IsRaw(r attr.Set) bool { return c.parent[r] == 0 }

// IsLeaf reports whether r feeds nothing.
func (c *Config) IsLeaf(r attr.Set) bool { return len(c.children[r]) == 0 }

// IsQuery reports whether r is a user query of this configuration.
func (c *Config) IsQuery(r attr.Set) bool { return c.isQuery[r] }

// Has reports whether r is instantiated in the configuration.
func (c *Config) Has(r attr.Set) bool {
	_, ok := c.parent[r]
	return ok
}

// Phantoms returns the instantiated non-query relations, canonical order.
func (c *Config) Phantoms() []attr.Set {
	var out []attr.Set
	for _, r := range c.Rels {
		if !c.isQuery[r] {
			out = append(out, r)
		}
	}
	return out
}

// Raws returns the raw relations in canonical order.
func (c *Config) Raws() []attr.Set {
	var out []attr.Set
	for _, r := range c.Rels {
		if c.IsRaw(r) {
			out = append(out, r)
		}
	}
	return out
}

// Leaves returns the leaf relations in canonical order.
func (c *Config) Leaves() []attr.Set {
	var out []attr.Set
	for _, r := range c.Rels {
		if c.IsLeaf(r) {
			out = append(out, r)
		}
	}
	return out
}

// Ancestors returns r's feeding chain from its direct parent up to its raw
// ancestor (the paper's A_R).
func (c *Config) Ancestors(r attr.Set) []attr.Set {
	var out []attr.Set
	for p := c.parent[r]; p != 0; p = c.parent[p] {
		out = append(out, p)
	}
	return out
}

// Depth returns the number of feeding levels of the configuration (1 for
// a configuration with no phantoms).
func (c *Config) Depth() int {
	max := 0
	for _, r := range c.Rels {
		if d := len(c.Ancestors(r)) + 1; d > max {
			max = d
		}
	}
	return max
}

// Validate checks structural invariants: queries instantiated, the forest
// is acyclic and consistent, and every parent is a proper superset.
func (c *Config) Validate() error {
	for _, q := range c.Queries {
		if !c.Has(q) {
			return fmt.Errorf("feedgraph: query %v not instantiated", q)
		}
	}
	for _, r := range c.Rels {
		p := c.parent[r]
		if p == 0 {
			continue
		}
		if !p.SupersetOf(r) || p == r {
			return fmt.Errorf("feedgraph: parent %v does not properly contain %v", p, r)
		}
		// Walk up; must terminate at a raw relation without revisiting.
		seen := map[attr.Set]bool{r: true}
		for q := p; q != 0; q = c.parent[q] {
			if seen[q] {
				return fmt.Errorf("feedgraph: cycle through %v", q)
			}
			seen[q] = true
		}
	}
	return nil
}

// UselessPhantoms returns instantiated phantoms that feed fewer than two
// relations in this configuration; such phantoms are never beneficial
// (Section 2.6) and greedy algorithms should not produce them.
func (c *Config) UselessPhantoms() []attr.Set {
	var out []attr.Set
	for _, r := range c.Phantoms() {
		if len(c.children[r]) < 2 {
			out = append(out, r)
		}
	}
	return out
}

// String renders the configuration in the paper's notation, e.g.
// "ABCD(AB BCD(BC BD CD))"; multiple raw relations are space-separated,
// each with its feeding subtree in parentheses. Siblings print in the
// paper's order: fewer attributes first, then alphabetically.
func (c *Config) String() string {
	raws := printOrder(c.Raws())
	parts := make([]string, len(raws))
	for i, r := range raws {
		parts[i] = c.subtreeString(r)
	}
	return strings.Join(parts, " ")
}

func (c *Config) subtreeString(r attr.Set) string {
	kids := c.children[r]
	if len(kids) == 0 {
		return r.String()
	}
	parts := make([]string, len(kids))
	for i, k := range printOrder(kids) {
		parts[i] = c.subtreeString(k)
	}
	return fmt.Sprintf("%v(%s)", r, strings.Join(parts, " "))
}

// printOrder sorts relations lexicographically by name, matching the
// paper's configuration notation (e.g. "ABC(AC(A C) B)" lists AC before B).
func printOrder(rels []attr.Set) []attr.Set {
	out := append([]attr.Set(nil), rels...)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ParseConfig parses the paper's configuration notation. queries names the
// user queries; if nil, the leaves of the parsed forest are taken to be
// the queries. The parsed structure must agree with the canonical
// minimal-superset parenting NewConfig computes — ParseConfig rejects
// notations whose explicit nesting contradicts it, since the paper's
// configurations are always consistent with the feeding graph.
func ParseConfig(notation string, queries []attr.Set) (*Config, error) {
	p := &parser{in: notation}
	forest, err := p.parseForest()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("feedgraph: trailing input at %d in %q", p.pos, notation)
	}
	var rels []attr.Set
	var leaves []attr.Set
	var walk func(n *node, anc []attr.Set) error
	walk = func(n *node, anc []attr.Set) error {
		for _, a := range anc {
			if !a.SupersetOf(n.rel) || a == n.rel {
				return fmt.Errorf("feedgraph: %v nested under %v, which cannot feed it", n.rel, a)
			}
		}
		rels = append(rels, n.rel)
		if len(n.children) == 0 {
			leaves = append(leaves, n.rel)
		}
		for _, ch := range n.children {
			if err := walk(ch, append(anc, n.rel)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range forest {
		if err := walk(root, nil); err != nil {
			return nil, err
		}
	}
	if queries == nil {
		queries = leaves
	}
	qset := make(map[attr.Set]bool, len(queries))
	for _, q := range queries {
		qset[q] = true
	}
	var phantoms []attr.Set
	for _, r := range rels {
		if !qset[r] {
			phantoms = append(phantoms, r)
		}
	}
	cfg, err := NewConfig(queries, phantoms)
	if err != nil {
		return nil, err
	}
	// Every explicitly written relation must be instantiated.
	for _, r := range rels {
		if !cfg.Has(r) {
			return nil, fmt.Errorf("feedgraph: %v lost during canonicalization", r)
		}
	}
	return cfg, nil
}

// MustParseConfig is ParseConfig that panics on error.
func MustParseConfig(notation string, queries []attr.Set) *Config {
	c, err := ParseConfig(notation, queries)
	if err != nil {
		panic(err)
	}
	return c
}

type node struct {
	rel      attr.Set
	children []*node
}

type parser struct {
	in  string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

// parseForest parses one or more trees separated by spaces.
func (p *parser) parseForest() ([]*node, error) {
	var out []*node
	for {
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] == ')' {
			break
		}
		n, err := p.parseTree()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("feedgraph: empty configuration at %d", p.pos)
	}
	return out, nil
}

// parseTree parses NAME['(' forest ')'] or '(' tree ')'.
func (p *parser) parseTree() (*node, error) {
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '(' {
		// Redundant grouping parentheses around a tree, as in
		// "(ABCD(AB ...))".
		p.pos++
		n, err := p.parseTree()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] != ')' {
			return nil, fmt.Errorf("feedgraph: missing ')' at %d in %q", p.pos, p.in)
		}
		p.pos++
		return n, nil
	}
	start := p.pos
	for p.pos < len(p.in) && isLetter(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("feedgraph: expected relation name at %d in %q", start, p.in)
	}
	rel, err := attr.ParseSet(p.in[start:p.pos])
	if err != nil {
		return nil, err
	}
	n := &node{rel: rel}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '(' {
		p.pos++
		kids, err := p.parseForest()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] != ')' {
			return nil, fmt.Errorf("feedgraph: missing ')' at %d in %q", p.pos, p.in)
		}
		p.pos++
		n.children = kids
	}
	return n, nil
}

func isLetter(b byte) bool {
	return b >= 'A' && b <= 'Z' || b >= 'a' && b <= 'z'
}

// EnumerateConfigs yields every configuration obtainable by instantiating
// a subset of the graph's candidate phantoms (including the empty subset),
// in a deterministic order. It is the configuration space EPES searches.
// The callback may return false to stop early.
func (g *Graph) EnumerateConfigs(fn func(*Config) bool) error {
	ps := g.Phantoms
	if len(ps) > 20 {
		return fmt.Errorf("feedgraph: %d candidate phantoms is too many to enumerate", len(ps))
	}
	for mask := 0; mask < 1<<len(ps); mask++ {
		var chosen []attr.Set
		for i, p := range ps {
			if mask&(1<<i) != 0 {
				chosen = append(chosen, p)
			}
		}
		cfg, err := NewConfig(g.Queries, chosen)
		if err != nil {
			return err
		}
		if !fn(cfg) {
			return nil
		}
	}
	return nil
}

// GroupCounts maps each relation to its number of groups g_R. float64
// because estimators may produce fractional values.
type GroupCounts map[attr.Set]float64

// Get returns g_R, or an error if unknown.
func (gc GroupCounts) Get(r attr.Set) (float64, error) {
	g, ok := gc[r]
	if !ok {
		return 0, fmt.Errorf("feedgraph: no group count for %v", r)
	}
	return g, nil
}

// Sorted returns the relations with known counts in canonical order.
func (gc GroupCounts) Sorted() []attr.Set {
	out := make([]attr.Set, 0, len(gc))
	for r := range gc {
		out = append(out, r)
	}
	attr.SortSets(out)
	return out
}

// CheckMonotone verifies the subset-monotonicity g_R ≤ g_S for R ⊆ S that
// any consistent group-count table must satisfy.
func (gc GroupCounts) CheckMonotone() error {
	rels := gc.Sorted()
	for _, r := range rels {
		for _, s := range rels {
			if r.ProperSubsetOf(s) && gc[r] > gc[s] {
				return fmt.Errorf("feedgraph: g(%v) = %v exceeds g(%v) = %v", r, gc[r], s, gc[s])
			}
		}
	}
	return nil
}

// EntrySize returns h_R in 4-byte units for a count(*) configuration:
// one unit per grouping attribute plus one for the counter (Section 5.3).
func EntrySize(r attr.Set) int { return r.Size() + 1 }

// SortQueries returns a copy of queries in canonical order; convenience
// for deterministic experiment output.
func SortQueries(queries []attr.Set) []attr.Set {
	out := append([]attr.Set(nil), queries...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	attr.SortSets(out)
	return out
}
