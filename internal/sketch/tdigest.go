// A t-digest-style quantile summary (Dunning & Ertl). Centroids carry
// (mean, count); the size limit for a centroid at quantile q is
// 4·n·q(1−q)/δ, so resolution concentrates at the tails. Unlike the
// textbook randomized variant, this implementation is fully
// deterministic: inserts buffer into a fixed-capacity slice and every
// rebuild sorts the combined centroid+buffer set by (mean, count)
// before a single left-to-right merge pass. Determinism is what lets
// the engine checkpoint digests byte-identically and lets the merge be
// bitwise commutative (merge(a,b) and merge(b,a) serialize equal).
package sketch

import (
	"fmt"
	"math"
	"sort"
)

// DefaultCompression is the δ knob: ~2·δ centroids retained, quantile
// rank error roughly 1/δ at the median and tighter at the tails.
const DefaultCompression = 100

// TDigest is a mergeable quantile summary over float64 values. The zero
// value is not usable; construct with NewTDigest.
type TDigest struct {
	comp  float64
	mean  []float64
	cnt   []float64
	total float64 // sum of cnt
	min   float64
	max   float64
	n     uint64 // observations via Add (not Merge)
	buf   []float64
}

// NewTDigest creates a digest with the given compression (δ); 0 selects
// DefaultCompression.
func NewTDigest(compression float64) (*TDigest, error) {
	if compression == 0 {
		compression = DefaultCompression
	}
	if compression < 10 || compression > 10000 || math.IsNaN(compression) {
		return nil, fmt.Errorf("sketch: compression must be in [10, 10000], got %v", compression)
	}
	return &TDigest{comp: compression, min: math.Inf(1), max: math.Inf(-1)}, nil
}

// MustNewTDigest is NewTDigest that panics on error.
func MustNewTDigest(compression float64) *TDigest {
	d, err := NewTDigest(compression)
	if err != nil {
		panic(err)
	}
	return d
}

// Compression returns the δ knob the digest was built with.
func (d *TDigest) Compression() float64 { return d.comp }

// Count returns the total weight of observations summarized.
func (d *TDigest) Count() float64 { return d.total + float64(len(d.buf)) }

// bufLimit bounds the insert buffer; flushing at a fixed size keeps the
// centroid set a deterministic function of the insertion sequence.
func (d *TDigest) bufLimit() int {
	n := int(4 * d.comp)
	if n < 32 {
		n = 32
	}
	return n
}

// Add observes one value.
func (d *TDigest) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
	d.n++
	d.buf = append(d.buf, v)
	if len(d.buf) >= d.bufLimit() {
		d.flush()
	}
}

// item is a (mean, count) pair staged for a rebuild.
type centroidItem struct {
	mean float64
	cnt  float64
}

// flush folds the buffer into the centroid set via a full deterministic
// rebuild: sort everything by (mean, count), then merge left to right
// under the t-digest size limit.
func (d *TDigest) flush() {
	if len(d.buf) == 0 {
		return
	}
	items := make([]centroidItem, 0, len(d.mean)+len(d.buf))
	for i := range d.mean {
		items = append(items, centroidItem{d.mean[i], d.cnt[i]})
	}
	for _, v := range d.buf {
		items = append(items, centroidItem{v, 1})
	}
	d.total += float64(len(d.buf))
	d.buf = d.buf[:0]
	d.rebuild(items)
}

// rebuild replaces the centroid set with a merged pass over items.
// Items must collectively carry weight d.total.
func (d *TDigest) rebuild(items []centroidItem) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].mean != items[j].mean {
			return items[i].mean < items[j].mean
		}
		return items[i].cnt < items[j].cnt
	})
	d.mean = d.mean[:0]
	d.cnt = d.cnt[:0]
	var curM, curC, wSoFar float64
	started := false
	for _, it := range items {
		if !started {
			curM, curC = it.mean, it.cnt
			started = true
			continue
		}
		proposed := curC + it.cnt
		q := (wSoFar + proposed/2) / d.total
		limit := 4 * d.total * q * (1 - q) / d.comp
		if proposed <= limit {
			// Weighted-mean update keeps the merge order-insensitive
			// given the deterministic sort above.
			curM += it.cnt * (it.mean - curM) / proposed
			curC = proposed
			continue
		}
		d.mean = append(d.mean, curM)
		d.cnt = append(d.cnt, curC)
		wSoFar += curC
		curM, curC = it.mean, it.cnt
	}
	if started {
		d.mean = append(d.mean, curM)
		d.cnt = append(d.cnt, curC)
	}
}

// Merge folds another digest into d. Both digests are flushed and the
// union of their centroid sets is rebuilt under d's size limit, so
// Merge(a,b) and Merge(b,a) produce byte-identical digests.
func (d *TDigest) Merge(other *TDigest) error {
	if other == nil || other.comp != d.comp {
		return fmt.Errorf("sketch: t-digest compression mismatch")
	}
	d.flush()
	o := other
	if len(o.buf) != 0 {
		o = other.Clone()
		o.flush()
	}
	if o.total == 0 {
		return nil
	}
	if o.min < d.min {
		d.min = o.min
	}
	if o.max > d.max {
		d.max = o.max
	}
	d.n += o.n
	items := make([]centroidItem, 0, len(d.mean)+len(o.mean))
	for i := range d.mean {
		items = append(items, centroidItem{d.mean[i], d.cnt[i]})
	}
	for i := range o.mean {
		items = append(items, centroidItem{o.mean[i], o.cnt[i]})
	}
	d.total += o.total
	d.rebuild(items)
	return nil
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]) via
// midpoint interpolation between adjacent centroids. Returns NaN on an
// empty digest.
func (d *TDigest) Quantile(q float64) float64 {
	d.flush()
	if d.total == 0 || len(d.mean) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	target := q * d.total
	wSoFar := 0.0
	for i := range d.mean {
		mid := wSoFar + d.cnt[i]/2
		if target < mid {
			if i == 0 {
				// Interpolate from the true minimum into the first centroid.
				frac := target / mid
				return clamp(d.min+frac*(d.mean[0]-d.min), d.min, d.max)
			}
			prevMid := wSoFar - d.cnt[i-1]/2
			frac := (target - prevMid) / (mid - prevMid)
			return clamp(d.mean[i-1]+frac*(d.mean[i]-d.mean[i-1]), d.min, d.max)
		}
		wSoFar += d.cnt[i]
	}
	// Past the last centroid midpoint: interpolate toward the true max.
	last := len(d.mean) - 1
	lastMid := wSoFar - d.cnt[last]/2
	frac := (target - lastMid) / (d.total - lastMid)
	return clamp(d.mean[last]+frac*(d.max-d.mean[last]), d.min, d.max)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Reset empties the digest.
func (d *TDigest) Reset() {
	d.mean = d.mean[:0]
	d.cnt = d.cnt[:0]
	d.buf = d.buf[:0]
	d.total = 0
	d.n = 0
	d.min = math.Inf(1)
	d.max = math.Inf(-1)
}

// Clone returns an independent copy.
func (d *TDigest) Clone() *TDigest {
	return &TDigest{
		comp:  d.comp,
		mean:  append([]float64(nil), d.mean...),
		cnt:   append([]float64(nil), d.cnt...),
		total: d.total,
		min:   d.min,
		max:   d.max,
		n:     d.n,
		buf:   append([]float64(nil), d.buf...),
	}
}

// AppendBinary serializes the digest, preserving the unflushed insert
// buffer verbatim so a decode(encode(d)) round trip is state-identical —
// the property engine checkpoints rely on for byte-identical resume.
func (d *TDigest) AppendBinary(dst []byte) []byte {
	dst = appendF64(dst, d.comp)
	dst = appendU64(dst, d.n)
	dst = appendF64(dst, d.total)
	dst = appendF64(dst, d.min)
	dst = appendF64(dst, d.max)
	dst = appendU32(dst, uint32(len(d.mean)))
	for i := range d.mean {
		dst = appendF64(dst, d.mean[i])
		dst = appendF64(dst, d.cnt[i])
	}
	dst = appendU32(dst, uint32(len(d.buf)))
	for _, v := range d.buf {
		dst = appendF64(dst, v)
	}
	return dst
}

// maxDigestCentroids bounds decode allocations against corrupt blobs: a
// legal digest at the maximum compression holds well under 4·10000
// centroids, and the buffer is capped at bufLimit.
const maxDigestCentroids = 1 << 16

// DecodeTDigest parses one digest from the front of data and returns
// the remaining bytes.
func DecodeTDigest(data []byte) (*TDigest, []byte, error) {
	comp, data, err := takeF64(data)
	if err != nil {
		return nil, nil, err
	}
	d, err := NewTDigest(comp)
	if err != nil {
		return nil, nil, err
	}
	if d.n, data, err = takeU64(data); err != nil {
		return nil, nil, err
	}
	if d.total, data, err = takeF64(data); err != nil {
		return nil, nil, err
	}
	if d.min, data, err = takeF64(data); err != nil {
		return nil, nil, err
	}
	if d.max, data, err = takeF64(data); err != nil {
		return nil, nil, err
	}
	var nc uint32
	if nc, data, err = takeU32(data); err != nil {
		return nil, nil, err
	}
	if nc > maxDigestCentroids {
		return nil, nil, fmt.Errorf("sketch: t-digest blob claims %d centroids", nc)
	}
	for i := uint32(0); i < nc; i++ {
		var m, c float64
		if m, data, err = takeF64(data); err != nil {
			return nil, nil, err
		}
		if c, data, err = takeF64(data); err != nil {
			return nil, nil, err
		}
		if math.IsNaN(m) || math.IsNaN(c) || c <= 0 {
			return nil, nil, fmt.Errorf("sketch: t-digest blob has invalid centroid")
		}
		d.mean = append(d.mean, m)
		d.cnt = append(d.cnt, c)
	}
	var nb uint32
	if nb, data, err = takeU32(data); err != nil {
		return nil, nil, err
	}
	if int(nb) > d.bufLimit() {
		return nil, nil, fmt.Errorf("sketch: t-digest blob buffer %d exceeds limit %d", nb, d.bufLimit())
	}
	for i := uint32(0); i < nb; i++ {
		var v float64
		if v, data, err = takeF64(data); err != nil {
			return nil, nil, err
		}
		d.buf = append(d.buf, v)
	}
	if math.IsNaN(d.total) || d.total < 0 || (d.total > 0 && nc == 0) {
		return nil, nil, fmt.Errorf("sketch: t-digest blob has inconsistent totals")
	}
	return d, data, nil
}
