package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The merge-law property suite: the window composer folds pane partials
// in whatever order panes close, so HLL merge must be an exact
// commutative/associative/idempotent monoid on serialized state, and
// t-digest merge must satisfy the same laws to within quantile
// tolerance (its centroid set is order-sensitive only below the error
// the digest already carries).

func hllBytes(h *HLL) []byte { return h.AppendBinary(nil) }

func randHLL(rng *rand.Rand, n int) *HLL {
	h := MustNew(DefaultPrecision)
	for i := 0; i < n; i++ {
		h.AddKey([]uint32{rng.Uint32() % 50000, rng.Uint32() % 7})
	}
	return h
}

func TestHLLMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		a := randHLL(rng, 1+rng.Intn(5000))
		b := randHLL(rng, 1+rng.Intn(5000))
		c := randHLL(rng, 1+rng.Intn(5000))

		// Commutativity: a∪b == b∪a, byte-for-byte.
		ab := a.Clone()
		if err := ab.Merge(b); err != nil {
			t.Fatal(err)
		}
		ba := b.Clone()
		if err := ba.Merge(a); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(hllBytes(ab), hllBytes(ba)) {
			t.Fatalf("trial %d: HLL merge not commutative", trial)
		}

		// Associativity: (a∪b)∪c == a∪(b∪c).
		abc1 := ab.Clone()
		if err := abc1.Merge(c); err != nil {
			t.Fatal(err)
		}
		bc := b.Clone()
		if err := bc.Merge(c); err != nil {
			t.Fatal(err)
		}
		abc2 := a.Clone()
		if err := abc2.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(hllBytes(abc1), hllBytes(abc2)) {
			t.Fatalf("trial %d: HLL merge not associative", trial)
		}

		// Idempotence under self-merge: a∪a == a.
		aa := a.Clone()
		if err := aa.Merge(a); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(hllBytes(aa), hllBytes(a)) {
			t.Fatalf("trial %d: HLL self-merge not idempotent", trial)
		}

		// Identity: a∪empty == a.
		ae := a.Clone()
		if err := ae.Merge(MustNew(DefaultPrecision)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(hllBytes(ae), hllBytes(a)) {
			t.Fatalf("trial %d: empty HLL is not a merge identity", trial)
		}
	}
}

// TestHLLErrorBounds pins the relative error vs exact distinct counts
// across five decades (the ISSUE grid n ∈ {10^2 .. 10^6}).
func TestHLLErrorBounds(t *testing.T) {
	for _, n := range []int{100, 1000, 10000, 100000, 1000000} {
		h := MustNew(DefaultPrecision)
		for i := 0; i < n; i++ {
			h.AddKey([]uint32{uint32(i), uint32(i / 3)})
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		// Standard error at p=12 is 1.04/√4096 ≈ 1.6%; allow 5σ.
		if relErr > 0.08 {
			t.Errorf("n=%d: estimate %.0f, rel err %.3f > 0.08", n, est, relErr)
		}
	}
}

func TestHLLBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randHLL(rng, 3000)
	blob := h.AppendBinary(nil)
	got, rest, err := DecodeHLL(append(blob, 0xEE)) // trailing byte must survive
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 || rest[0] != 0xEE {
		t.Fatalf("tail not preserved: %v", rest)
	}
	if !bytes.Equal(got.AppendBinary(nil), blob) {
		t.Fatal("decode(encode) not state-identical")
	}
	if got.Estimate() != h.Estimate() {
		t.Fatal("round-tripped estimate differs")
	}
	// Truncations and a bad precision byte must be rejected, not panic.
	for cut := 0; cut < len(blob); cut += 97 {
		if _, _, err := DecodeHLL(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 99
	if _, _, err := DecodeHLL(bad); err == nil {
		t.Fatal("precision 99 accepted")
	}
}

func digestBytes(d *TDigest) []byte { return d.Clone().AppendBinary(nil) }

func randDigest(rng *rand.Rand, n int, dist int) *TDigest {
	d := MustNewTDigest(DefaultCompression)
	for i := 0; i < n; i++ {
		switch dist {
		case 0:
			d.Add(rng.Float64() * 1000)
		case 1:
			d.Add(rng.NormFloat64()*50 + 500)
		default:
			d.Add(math.Exp(rng.NormFloat64())) // log-normal: heavy tail
		}
	}
	return d
}

// quantileDelta compares two digests at a grid of quantiles, returning
// the max absolute difference normalized by the value range.
func quantileDelta(a, b *TDigest) float64 {
	lo := math.Min(a.min, b.min)
	hi := math.Max(a.max, b.max)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	worst := 0.0
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		d := math.Abs(a.Quantile(q)-b.Quantile(q)) / span
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestTDigestMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		dist := trial % 3
		a := randDigest(rng, 1+rng.Intn(4000), dist)
		b := randDigest(rng, 1+rng.Intn(4000), dist)
		c := randDigest(rng, 1+rng.Intn(4000), dist)

		// Commutativity is exact: merge sorts the combined centroid set
		// before rebuilding, so order cannot leak into the result.
		ab := a.Clone()
		if err := ab.Merge(b); err != nil {
			t.Fatal(err)
		}
		ba := b.Clone()
		if err := ba.Merge(a); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(digestBytes(ab), digestBytes(ba)) {
			t.Fatalf("trial %d: t-digest merge not bitwise commutative", trial)
		}

		// Associativity holds to within digest resolution (~1/δ rank
		// error, so a small normalized value tolerance on smooth data).
		abc1 := ab.Clone()
		if err := abc1.Merge(c); err != nil {
			t.Fatal(err)
		}
		bc := b.Clone()
		if err := bc.Merge(c); err != nil {
			t.Fatal(err)
		}
		abc2 := a.Clone()
		if err := abc2.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if d := quantileDelta(abc1, abc2); d > 0.05 {
			t.Fatalf("trial %d: associativity delta %.4f", trial, d)
		}

		// Idempotence under self-merge: doubling every weight moves no
		// quantile beyond digest resolution.
		aa := a.Clone()
		if err := aa.Merge(a); err != nil {
			t.Fatal(err)
		}
		if d := quantileDelta(aa, a); d > 0.05 {
			t.Fatalf("trial %d: self-merge delta %.4f", trial, d)
		}
		if got, want := aa.Count(), 2*a.Count(); got != want {
			t.Fatalf("trial %d: self-merge count %v, want %v", trial, got, want)
		}

		// Identity: merging an empty digest is a byte-level no-op after
		// flush.
		ae := a.Clone()
		if err := ae.Merge(MustNewTDigest(DefaultCompression)); err != nil {
			t.Fatal(err)
		}
		af := a.Clone()
		af.flush()
		if !bytes.Equal(digestBytes(ae), digestBytes(af)) {
			t.Fatalf("trial %d: empty digest is not a merge identity", trial)
		}
	}
}

// TestTDigestRankError pins the quantile accuracy: for each estimated
// quantile, the rank of the estimate within the exact sorted data must
// be within 0.05 of the requested rank.
func TestTDigestRankError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for dist := 0; dist < 3; dist++ {
		for _, n := range []int{100, 1000, 10000, 100000} {
			d := MustNewTDigest(DefaultCompression)
			vals := make([]float64, n)
			for i := range vals {
				switch dist {
				case 0:
					vals[i] = rng.Float64() * 1000
				case 1:
					vals[i] = rng.NormFloat64()*50 + 500
				default:
					vals[i] = math.Exp(rng.NormFloat64())
				}
				d.Add(vals[i])
			}
			sort.Float64s(vals)
			for _, q := range []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
				est := d.Quantile(q)
				// Rank of est in the exact data.
				rank := float64(sort.SearchFloat64s(vals, est)) / float64(n)
				if err := math.Abs(rank - q); err > 0.05 {
					t.Errorf("dist=%d n=%d q=%.2f: est %.3f has rank %.3f (err %.3f)", dist, n, q, est, rank, err)
				}
			}
			if d.Quantile(0) != vals[0] || d.Quantile(1) != vals[n-1] {
				t.Errorf("dist=%d n=%d: extreme quantiles not exact min/max", dist, n)
			}
		}
	}
}

func TestTDigestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := MustNewTDigest(DefaultCompression)
	// Leave the insert buffer partially full: serialization must carry
	// it verbatim for checkpoint byte-identity.
	for i := 0; i < 1234; i++ {
		d.Add(rng.Float64() * 100)
	}
	blob := d.AppendBinary(nil)
	got, rest, err := DecodeTDigest(append(blob, 0xAB))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 || rest[0] != 0xAB {
		t.Fatalf("tail not preserved: %v", rest)
	}
	if !bytes.Equal(got.AppendBinary(nil), blob) {
		t.Fatal("decode(encode) not byte-identical")
	}
	if got.Quantile(0.5) != d.Quantile(0.5) {
		t.Fatal("round-tripped median differs")
	}
	for cut := 0; cut < len(blob); cut += 13 {
		if _, _, err := DecodeTDigest(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestTDigestEmptyAndEdge(t *testing.T) {
	d := MustNewTDigest(0)
	if d.Compression() != DefaultCompression {
		t.Fatalf("compression 0 should select default, got %v", d.Compression())
	}
	if !math.IsNaN(d.Quantile(0.5)) {
		t.Fatal("empty digest must return NaN")
	}
	if _, err := NewTDigest(3); err == nil {
		t.Fatal("compression 3 accepted")
	}
	d.Add(math.NaN()) // ignored
	if d.Count() != 0 {
		t.Fatal("NaN was counted")
	}
	d.Add(7)
	for q := 0.0; q <= 1.0; q += 0.25 {
		if d.Quantile(q) != 7 {
			t.Fatalf("single-value digest: q=%v gave %v", q, d.Quantile(q))
		}
	}
	// Mismatched compression merges must be rejected.
	if err := d.Merge(MustNewTDigest(200)); err == nil {
		t.Fatal("compression mismatch accepted")
	}
	d.Reset()
	if d.Count() != 0 || !math.IsNaN(d.Quantile(0.5)) {
		t.Fatal("Reset did not empty the digest")
	}
}

func TestPartialObserveMergeRoundTrip(t *testing.T) {
	aggs := []Agg{
		{Kind: Distinct, Input: 1},
		{Kind: Quantile, Input: 2, Q: 0.5},
		{Kind: Quantile, Input: 2, Q: 0.95},
	}
	mk := func() *Partial {
		p, err := NewPartial(aggs, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	rng := rand.New(rand.NewSource(3))
	a, b, whole := mk(), mk(), mk()
	for i := 0; i < 20000; i++ {
		rec := []uint32{rng.Uint32(), uint32(rng.Intn(5000)), uint32(rng.Intn(100000))}
		if i%2 == 0 {
			a.Observe(rec)
		} else {
			b.Observe(rec)
		}
		whole.Observe(rec)
	}
	// Round trip both halves through the wire format, then merge: the
	// same path pane partials take LFTA→HFTA.
	blob := a.AppendBinary(nil)
	blob = b.AppendBinary(blob)
	da, rest, err := DecodePartial(aggs, 0, 0, blob)
	if err != nil {
		t.Fatal(err)
	}
	db, rest, err := DecodePartial(aggs, 0, 0, rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if err := da.Merge(db); err != nil {
		t.Fatal(err)
	}
	got := da.Estimates(nil)
	want := whole.Estimates(nil)
	if len(got) != 3 || len(want) != 3 {
		t.Fatalf("estimate arity %d/%d", len(got), len(want))
	}
	// HLL estimate of split-and-merged equals direct exactly; t-digests
	// agree to within rank tolerance.
	if got[0] != want[0] {
		t.Fatalf("merged HLL estimate %v != direct %v", got[0], want[0])
	}
	for i := 1; i < 3; i++ {
		if relDiff(got[i], want[i]) > 0.05 {
			t.Fatalf("agg %d: merged %v vs direct %v", i, got[i], want[i])
		}
	}
	// Merge with a mismatched spec list is rejected.
	other, _ := NewPartial([]Agg{{Kind: Distinct, Input: 0}}, 0, 0)
	if err := da.Merge(other); err == nil {
		t.Fatal("spec mismatch accepted")
	}
	// Decode against the wrong spec list is rejected.
	if _, _, err := DecodePartial([]Agg{{Kind: Quantile, Input: 1, Q: 0.5}}, 0, 0, a.AppendBinary(nil)); err == nil {
		t.Fatal("wrong spec decode accepted")
	}
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func TestPartialOutOfRangeInput(t *testing.T) {
	aggs := []Agg{{Kind: Distinct, Input: 9}}
	p, err := NewPartial(aggs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe([]uint32{1, 2}) // Input 9 out of range → observes 0
	if est := p.Estimates(nil)[0]; est < 0.5 || est > 1.5 {
		t.Fatalf("out-of-range input should observe one value, estimate %v", est)
	}
}
