package sketch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("precision 3 accepted")
	}
	if _, err := New(17); err == nil {
		t.Error("precision 17 accepted")
	}
	h, err := New(DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	if h.SizeBytes() != 4096 || h.Precision() != DefaultPrecision {
		t.Errorf("size %d, precision %d", h.SizeBytes(), h.Precision())
	}
}

func TestEstimateAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 10000, 100000, 1000000} {
		h := MustNew(DefaultPrecision)
		for i := 0; i < n; i++ {
			h.AddKey([]uint32{uint32(i), uint32(i >> 3), uint32(i % 2)})
		}
		// Exact duplicates must not inflate the estimate.
		for i := 0; i < n/2; i++ {
			h.AddKey([]uint32{uint32(i), uint32(i >> 3), uint32(i % 2)})
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		// 1.04/√4096 ≈ 1.6% standard error; allow ~5 sigma.
		if relErr > 0.08 {
			t.Errorf("n=%d: estimate %.0f (rel err %.3f)", n, est, relErr)
		}
	}
}

func TestSmallRangeLinearCounting(t *testing.T) {
	h := MustNew(DefaultPrecision)
	for i := 0; i < 10; i++ {
		h.AddKey([]uint32{uint32(i)})
	}
	est := h.Estimate()
	if est < 8 || est > 12 {
		t.Errorf("estimate for 10 distinct = %v", est)
	}
	// Idempotence: re-adding the same elements changes nothing.
	before := h.Estimate()
	for i := 0; i < 10; i++ {
		h.AddKey([]uint32{uint32(i)})
	}
	if h.Estimate() != before {
		t.Error("re-adding elements changed the estimate")
	}
}

func TestMerge(t *testing.T) {
	a, b := MustNew(10), MustNew(10)
	for i := 0; i < 5000; i++ {
		a.AddKey([]uint32{uint32(i)})
		b.AddKey([]uint32{uint32(i + 2500)}) // 50% overlap
	}
	union := a.Clone()
	if err := union.Merge(b); err != nil {
		t.Fatal(err)
	}
	est := union.Estimate()
	if math.Abs(est-7500)/7500 > 0.15 {
		t.Errorf("union estimate %v; want ≈ 7500", est)
	}
	// Merge precision mismatch.
	if err := a.Merge(MustNew(11)); err == nil {
		t.Error("precision mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
}

func TestReset(t *testing.T) {
	h := MustNew(8)
	h.AddKey([]uint32{1})
	h.Reset()
	if est := h.Estimate(); est != 0 {
		t.Errorf("estimate after reset = %v", est)
	}
}

// Property: merge is commutative and idempotent, and the union estimate
// is at least each side's estimate.
func TestMergeProperties(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a, b := MustNew(8), MustNew(8)
		for _, x := range xs {
			a.AddKey([]uint32{x})
		}
		for _, y := range ys {
			b.AddKey([]uint32{y})
		}
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if math.Abs(ab.Estimate()-ba.Estimate()) > 1e-9 {
			return false
		}
		again := ab.Clone()
		again.Merge(b)
		if math.Abs(again.Estimate()-ab.Estimate()) > 1e-9 {
			return false
		}
		return ab.Estimate() >= a.Estimate()-1e-9 && ab.Estimate() >= b.Estimate()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the estimate is monotone under adding elements.
func TestMonotoneProperty(t *testing.T) {
	f := func(xs []uint32) bool {
		h := MustNew(8)
		prev := 0.0
		for _, x := range xs {
			h.AddKey([]uint32{x})
			est := h.Estimate()
			if est < prev-1e-9 {
				return false
			}
			prev = est
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h := MustNew(DefaultPrecision)
	key := []uint32{1, 2, 3, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key[0] = uint32(i)
		h.AddKey(key)
	}
}
