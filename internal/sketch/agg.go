// Sketch aggregates: the mergeable-ADT layer the HFTA composes over
// pane partials. Each windowed query carries a list of Agg specs; every
// (relation, group, pane) holds one Partial — a bundle of per-spec
// sketches — that serializes to a self-describing blob for the
// LFTA→HFTA transfer and the checkpoint. Partials form a commutative
// monoid under Merge (exactly for HLL, to within quantile tolerance for
// t-digests), which is what makes pane composition order-insensitive.
package sketch

import "fmt"

// AggKind identifies a sketch aggregate function.
type AggKind uint8

const (
	// Distinct is count_distinct(X): an HLL over the attribute value.
	Distinct AggKind = 1
	// Quantile is percentile(X, p) / median(X): a t-digest over the
	// attribute value, queried at Q.
	Quantile AggKind = 2
)

// Agg specifies one sketch aggregate over a record attribute.
type Agg struct {
	Kind  AggKind
	Input int     // attribute id (index into the full-width tuple)
	Q     float64 // quantile in (0,1); meaningful for Quantile only
}

// Partial is the per-group mergeable state for a list of sketch
// aggregates: parallel to the spec list, one HLL or t-digest per entry.
type Partial struct {
	aggs []Agg
	hll  []*HLL     // nil entries for non-Distinct specs
	dig  []*TDigest // nil entries for non-Quantile specs
}

// NewPartial allocates empty sketches for each spec. precision 0 selects
// DefaultPrecision, compression 0 selects DefaultCompression.
func NewPartial(aggs []Agg, precision uint8, compression float64) (*Partial, error) {
	if precision == 0 {
		precision = DefaultPrecision
	}
	p := &Partial{aggs: aggs, hll: make([]*HLL, len(aggs)), dig: make([]*TDigest, len(aggs))}
	for i, a := range aggs {
		switch a.Kind {
		case Distinct:
			h, err := New(precision)
			if err != nil {
				return nil, err
			}
			p.hll[i] = h
		case Quantile:
			d, err := NewTDigest(compression)
			if err != nil {
				return nil, err
			}
			p.dig[i] = d
		default:
			return nil, fmt.Errorf("sketch: unknown agg kind %d", a.Kind)
		}
	}
	return p, nil
}

// Observe feeds one full-width record tuple into every sketch. An Input
// outside the tuple observes value 0, matching the projection semantics
// of absent attributes elsewhere in the engine.
func (p *Partial) Observe(attrs []uint32) {
	for i, a := range p.aggs {
		var v uint32
		if a.Input >= 0 && a.Input < len(attrs) {
			v = attrs[a.Input]
		}
		switch a.Kind {
		case Distinct:
			p.hll[i].Add(mix1(v))
		case Quantile:
			p.dig[i].Add(float64(v))
		}
	}
}

// mix1 hashes a single attribute value with the same construction AddKey
// uses for keys, without the slice indirection.
func mix1(v uint32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	x := uint64(offset64)
	x ^= uint64(v)
	x *= prime64
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Merge folds another partial built from the same spec list into p.
func (p *Partial) Merge(other *Partial) error {
	if other == nil || len(other.aggs) != len(p.aggs) {
		return fmt.Errorf("sketch: partial spec mismatch")
	}
	for i, a := range p.aggs {
		if other.aggs[i] != a {
			return fmt.Errorf("sketch: partial spec mismatch at %d", i)
		}
		switch a.Kind {
		case Distinct:
			if err := p.hll[i].Merge(other.hll[i]); err != nil {
				return err
			}
		case Quantile:
			if err := p.dig[i].Merge(other.dig[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Estimates evaluates every sketch: the distinct estimate for Distinct
// entries, the Q-th quantile for Quantile entries (NaN when empty).
func (p *Partial) Estimates(dst []float64) []float64 {
	dst = dst[:0]
	for i, a := range p.aggs {
		switch a.Kind {
		case Distinct:
			dst = append(dst, p.hll[i].Estimate())
		case Quantile:
			dst = append(dst, p.dig[i].Quantile(a.Q))
		}
	}
	return dst
}

// Clone returns an independent copy.
func (p *Partial) Clone() *Partial {
	c := &Partial{aggs: p.aggs, hll: make([]*HLL, len(p.aggs)), dig: make([]*TDigest, len(p.aggs))}
	for i := range p.aggs {
		if p.hll[i] != nil {
			c.hll[i] = p.hll[i].Clone()
		}
		if p.dig[i] != nil {
			c.dig[i] = p.dig[i].Clone()
		}
	}
	return c
}

// AppendBinary serializes the partial: a count byte, then per entry a
// kind byte followed by the sketch's own encoding. The layout is
// self-describing so DecodePartial can cross-check the blob against the
// spec list it expects.
func (p *Partial) AppendBinary(dst []byte) []byte {
	dst = append(dst, uint8(len(p.aggs)))
	for i, a := range p.aggs {
		dst = append(dst, uint8(a.Kind))
		switch a.Kind {
		case Distinct:
			dst = p.hll[i].AppendBinary(dst)
		case Quantile:
			dst = p.dig[i].AppendBinary(dst)
		}
	}
	return dst
}

// DecodePartial parses one partial from the front of data, validating it
// against the expected spec list (and precision/compression), and
// returns the remaining bytes.
func DecodePartial(aggs []Agg, precision uint8, compression float64, data []byte) (*Partial, []byte, error) {
	if precision == 0 {
		precision = DefaultPrecision
	}
	if compression == 0 {
		compression = DefaultCompression
	}
	if len(data) < 1 {
		return nil, nil, fmt.Errorf("sketch: partial blob truncated")
	}
	if int(data[0]) != len(aggs) {
		return nil, nil, fmt.Errorf("sketch: partial blob has %d aggs, want %d", data[0], len(aggs))
	}
	data = data[1:]
	p := &Partial{aggs: aggs, hll: make([]*HLL, len(aggs)), dig: make([]*TDigest, len(aggs))}
	for i, a := range aggs {
		if len(data) < 1 {
			return nil, nil, fmt.Errorf("sketch: partial blob truncated")
		}
		if AggKind(data[0]) != a.Kind {
			return nil, nil, fmt.Errorf("sketch: partial blob kind %d at %d, want %d", data[0], i, a.Kind)
		}
		data = data[1:]
		var err error
		switch a.Kind {
		case Distinct:
			var h *HLL
			if h, data, err = DecodeHLL(data); err != nil {
				return nil, nil, err
			}
			if h.Precision() != precision {
				return nil, nil, fmt.Errorf("sketch: partial blob precision %d, want %d", h.Precision(), precision)
			}
			p.hll[i] = h
		case Quantile:
			var d *TDigest
			if d, data, err = DecodeTDigest(data); err != nil {
				return nil, nil, err
			}
			if d.Compression() != compression {
				return nil, nil, fmt.Errorf("sketch: partial blob compression %v, want %v", d.Compression(), compression)
			}
			p.dig[i] = d
		default:
			return nil, nil, fmt.Errorf("sketch: unknown agg kind %d", a.Kind)
		}
	}
	return p, data, nil
}
