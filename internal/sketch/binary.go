package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Little-endian append/take helpers shared by the sketch serializers.
// Decoders return the unconsumed tail so blobs concatenate.

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func takeU32(data []byte) (uint32, []byte, error) {
	if len(data) < 4 {
		return 0, nil, fmt.Errorf("sketch: blob truncated")
	}
	return binary.LittleEndian.Uint32(data), data[4:], nil
}

func takeU64(data []byte) (uint64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("sketch: blob truncated")
	}
	return binary.LittleEndian.Uint64(data), data[8:], nil
}

func takeF64(data []byte) (float64, []byte, error) {
	v, rest, err := takeU64(data)
	return math.Float64frombits(v), rest, err
}
