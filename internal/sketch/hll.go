// Package sketch implements a HyperLogLog distinct counter.
//
// The optimizer's central statistical input is g_R, the number of groups
// of every relation in the feeding graph — including candidate phantoms
// that are *not* instantiated and therefore have no hash table measuring
// them. The paper computes these counts offline from the dataset; for the
// adaptive engine (re-planning between epochs as the stream drifts) they
// must be estimated online in bounded memory. A HyperLogLog register
// array per candidate relation costs 2^p bytes (4 KB at the default
// precision 12) and estimates distinct counts within ~1.04/√2^p ≈ 1.6%
// standard error, which is far below the cost model's own error budget.
package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// HLL is a HyperLogLog counter over 64-bit hashes. The zero value is not
// usable; construct with New.
type HLL struct {
	p    uint8
	regs []uint8
}

// MinPrecision and MaxPrecision bound the register-count exponent.
const (
	MinPrecision = 4
	MaxPrecision = 16
)

// DefaultPrecision gives 4096 registers: ≈1.6% standard error in 4 KB.
const DefaultPrecision = 12

// New creates a counter with 2^precision registers.
func New(precision uint8) (*HLL, error) {
	if precision < MinPrecision || precision > MaxPrecision {
		return nil, fmt.Errorf("sketch: precision must be in [%d, %d], got %d", MinPrecision, MaxPrecision, precision)
	}
	return &HLL{p: precision, regs: make([]uint8, 1<<precision)}, nil
}

// MustNew is New that panics on error.
func MustNew(precision uint8) *HLL {
	h, err := New(precision)
	if err != nil {
		panic(err)
	}
	return h
}

// Precision returns the register-count exponent.
func (h *HLL) Precision() uint8 { return h.p }

// SizeBytes returns the memory footprint of the register array.
func (h *HLL) SizeBytes() int { return len(h.regs) }

// Add observes one element by its 64-bit hash. The hash must be well
// mixed (use AddKey for raw attribute values).
func (h *HLL) Add(hash uint64) {
	idx := hash >> (64 - h.p)
	// Rank: position of the leftmost 1 in the remaining bits, 1-based.
	rest := hash<<h.p | 1<<(h.p-1) // sentinel guarantees a terminating 1
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// AddKey observes a group key of 4-byte attribute values.
func (h *HLL) AddKey(vals []uint32) { h.Add(mix(vals)) }

// mix is a 64-bit FNV-1a over the words with a murmur-style finalizer —
// the same construction as the LFTA tables use.
func mix(vals []uint32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	x := uint64(offset64)
	for _, v := range vals {
		x ^= uint64(v)
		x *= prime64
	}
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Estimate returns the approximate number of distinct elements added.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.regs))
	sum := 0.0
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alpha(len(h.regs)) * m * m / sum
	// Small-range correction: linear counting while registers are mostly
	// empty.
	if est <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return est
}

func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Merge folds another counter of the same precision into h, after which
// h estimates the union.
func (h *HLL) Merge(other *HLL) error {
	if other == nil || other.p != h.p {
		return fmt.Errorf("sketch: precision mismatch")
	}
	for i, r := range other.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// Reset empties the counter.
func (h *HLL) Reset() {
	for i := range h.regs {
		h.regs[i] = 0
	}
}

// Clone returns an independent copy.
func (h *HLL) Clone() *HLL {
	return &HLL{p: h.p, regs: append([]uint8(nil), h.regs...)}
}

// AppendBinary serializes the counter as one precision byte followed by
// the raw register array. Register-max merge means the serialized form
// of a merged counter is exactly the lane-wise max of the inputs, so
// HLL partials shipped between pipeline levels compose losslessly.
func (h *HLL) AppendBinary(dst []byte) []byte {
	dst = append(dst, h.p)
	return append(dst, h.regs...)
}

// DecodeHLL parses one counter from the front of data and returns the
// remaining bytes.
func DecodeHLL(data []byte) (*HLL, []byte, error) {
	if len(data) < 1 {
		return nil, nil, fmt.Errorf("sketch: hll blob truncated")
	}
	p := data[0]
	if p < MinPrecision || p > MaxPrecision {
		return nil, nil, fmt.Errorf("sketch: hll blob precision %d out of range", p)
	}
	n := 1 << p
	if len(data) < 1+n {
		return nil, nil, fmt.Errorf("sketch: hll blob truncated: want %d register bytes, have %d", n, len(data)-1)
	}
	h := &HLL{p: p, regs: append([]uint8(nil), data[1:1+n]...)}
	return h, data[1+n:], nil
}
