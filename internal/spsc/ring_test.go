package spsc

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, 2}, {0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	} {
		if got := New[int](tc.in).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestSequentialFIFO(t *testing.T) {
	r := New[int](4)
	// Interleave pushes and pops across several wraparounds.
	next := 0
	want := 0
	for round := 0; round < 100; round++ {
		for r.Push(next) {
			next++
		}
		if r.Len() != r.Cap() {
			t.Fatalf("full ring Len = %d, want %d", r.Len(), r.Cap())
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Pop()
			if !ok {
				t.Fatal("pop from non-empty ring failed")
			}
			if v != want {
				t.Fatalf("popped %d, want %d", v, want)
			}
			want++
		}
	}
	for {
		v, ok := r.Pop()
		if !ok {
			break
		}
		if v != want {
			t.Fatalf("drain popped %d, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d elements, pushed %d", want, next)
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop from empty ring succeeded")
	}
	r.Reset() // empty: must not panic
}

// item mirrors the pipelined ingest path's ring payload: a record run or
// an in-band epoch marker.
type item struct {
	epoch  uint32
	seq    int // record sequence number; -1 for a marker
	marker bool
}

// TestConcurrentExactlyOnceInOrder is the property test the pipelined
// sharded path rests on, run under the race detector in CI: a producer
// streaming records punctuated by in-band epoch markers and a concurrent
// consumer. Every record must arrive exactly once, in order, and no
// epoch marker may be reordered past a record of its epoch: when the
// consumer sees the marker opening epoch e, it must already have every
// record of epochs < e and no record of epoch ≥ e may precede it.
func TestConcurrentExactlyOnceInOrder(t *testing.T) {
	const (
		records = 200000
		epochs  = 50
	)
	for _, capacity := range []int{2, 8, 64} {
		r := New[item](capacity)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(capacity)))
			epoch := uint32(0)
			for seq := 0; seq < records; seq++ {
				if e := uint32(seq * epochs / records); e != epoch {
					epoch = e
					for !r.Push(item{epoch: epoch, seq: -1, marker: true}) {
						runtime.Gosched()
					}
				}
				for !r.Push(item{epoch: epoch, seq: seq}) {
					runtime.Gosched()
				}
				if rng.Intn(1024) == 0 {
					runtime.Gosched() // jitter the interleaving
				}
			}
		}()

		seen := 0
		curEpoch := uint32(0)
		spins := 0
		for seen < records {
			it, ok := r.Pop()
			if !ok {
				spins++
				runtime.Gosched()
				continue
			}
			if it.marker {
				if it.epoch != curEpoch+1 {
					t.Fatalf("cap %d: marker jumped from epoch %d to %d", capacity, curEpoch, it.epoch)
				}
				curEpoch = it.epoch
				continue
			}
			if it.seq != seen {
				t.Fatalf("cap %d: record %d arrived out of order (want %d): lost or duplicated", capacity, it.seq, seen)
			}
			if it.epoch != curEpoch {
				t.Fatalf("cap %d: record %d of epoch %d arrived while epoch %d open: marker reordered", capacity, it.seq, it.epoch, curEpoch)
			}
			seen++
		}
		wg.Wait()
		if r.Len() != 0 {
			t.Fatalf("cap %d: %d elements left after drain", capacity, r.Len())
		}
		_ = spins
	}
}

// TestFreelistRecycling drives the dual-ring shape the router uses — a
// work ring one way, a freelist ring back — and checks no buffer is ever
// lost or handed out twice concurrently.
func TestFreelistRecycling(t *testing.T) {
	const (
		buffers = 8
		rounds  = 100000
	)
	work := New[*[]int](buffers)
	free := New[*[]int](buffers)
	known := map[*[]int]bool{}
	for i := 0; i < buffers; i++ {
		b := make([]int, 0, 4)
		free.Push(&b)
		known[&b] = true
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // consumer: drain work, return buffers to the freelist
		defer wg.Done()
		for n := 0; n < rounds; {
			buf, ok := work.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if len(*buf) != 1 || (*buf)[0] != n {
				panic("buffer payload out of order")
			}
			*buf = (*buf)[:0]
			for !free.Push(buf) {
				runtime.Gosched()
			}
			n++
		}
	}()
	for n := 0; n < rounds; n++ {
		var buf *[]int
		for {
			var ok bool
			if buf, ok = free.Pop(); ok {
				break
			}
			runtime.Gosched()
		}
		if !known[buf] {
			t.Fatal("freelist handed out an unknown buffer")
		}
		if len(*buf) != 0 {
			t.Fatal("freelist handed out a non-empty buffer")
		}
		*buf = append(*buf, n)
		for !work.Push(buf) {
			runtime.Gosched()
		}
	}
	wg.Wait()
	if total := work.Len() + free.Len(); total != buffers {
		t.Fatalf("%d buffers accounted for, want %d", total, buffers)
	}
}
