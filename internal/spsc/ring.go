// Package spsc provides a fixed-capacity single-producer single-consumer
// ring buffer — the lock-free hand-off structure of the pipelined sharded
// ingest path (router goroutine → shard worker, and worker → router for
// the buffer freelist).
//
// The design is the classic two-counter SPSC queue: the producer owns the
// tail sequence, the consumer owns the head sequence, and each side reads
// the other's counter with atomic acquire/release semantics only when its
// cached copy says the ring looks full (or empty). Counters grow
// monotonically and are reduced mod capacity on access, so full/empty are
// distinguishable without a wasted slot. Head, tail, and the two cache
// fields live on separate cache lines so the producer and consumer never
// false-share.
//
// Push/Pop never block and never allocate; blocking policies (spin,
// yield, sleep) belong to the caller, which knows whether it is on a
// latency-critical hot path or an idle drain. See lfta's pipelined
// RunParallel for the canonical spin-then-yield loop.
package spsc

import (
	"fmt"
	"sync/atomic"
)

// pad is one cache line of padding; 64 bytes covers the common 64-byte
// line and halves sharing on 128-byte-line parts.
type pad [64]byte

// Ring is a fixed-capacity SPSC queue of T. One goroutine may call Push
// (the producer) and one other goroutine may call Pop (the consumer)
// concurrently; any other sharing is a data race by contract.
type Ring[T any] struct {
	_        pad
	head     atomic.Uint64 // next sequence the consumer will read
	headSeen uint64        // producer's cached copy of head
	_        pad
	tail     atomic.Uint64 // next sequence the producer will write
	tailSeen uint64        // consumer's cached copy of tail
	_        pad
	mask     uint64
	buf      []T
}

// New builds a ring with the given capacity, rounded up to a power of
// two (minimum 2) so sequence-to-slot reduction is a mask.
func New[T any](capacity int) *Ring[T] {
	if capacity < 2 {
		capacity = 2
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &Ring[T]{mask: uint64(c - 1), buf: make([]T, c)}
}

// Cap returns the ring's slot count.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Push appends v if the ring has space, reporting whether it did.
// Producer-side only.
func (r *Ring[T]) Push(v T) bool {
	t := r.tail.Load() // own counter: plain ordering would do, Load is free on x86
	if t-r.headSeen > r.mask {
		r.headSeen = r.head.Load()
		if t-r.headSeen > r.mask {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1) // release: publishes the slot write
	return true
}

// Pop removes and returns the oldest element, reporting whether one was
// available. Consumer-side only.
func (r *Ring[T]) Pop() (T, bool) {
	h := r.head.Load()
	if h == r.tailSeen {
		r.tailSeen = r.tail.Load()
		if h == r.tailSeen {
			var zero T
			return zero, false
		}
	}
	v := r.buf[h&r.mask]
	var zero T
	r.buf[h&r.mask] = zero // drop the ring's reference so T's pointees can be collected
	r.head.Store(h + 1)    // release: returns the slot to the producer
	return v, true
}

// Len returns a linearizable-enough snapshot of the element count; exact
// only when producer and consumer are quiescent (used by tests and
// drain checks, not for flow control).
func (r *Ring[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Reset empties the ring. It must only be called while neither side is
// active (between pipeline runs); it panics if elements remain, which
// would indicate a drain bug rather than a reset use case.
func (r *Ring[T]) Reset() {
	if n := r.Len(); n != 0 {
		panic(fmt.Sprintf("spsc: Reset with %d undrained elements", n))
	}
}
