// Package backoff implements capped exponential backoff with
// deterministic, seeded jitter. It is the retry discipline shared by the
// engine's result-emission path and the durable epoch-store persister:
// transient failures (a slow sink, a store mid-recovery, a full disk that
// is being cleared) are retried with exponentially growing, jittered
// delays up to a cap, and only then surfaced as permanent.
//
// Determinism matters here as much as in the chaos harness: the jitter is
// a pure function of (Seed, attempt), never of wall-clock or global
// randomness, so a test that injects a Sleep stub observes the exact
// delay sequence a production run would draw.
package backoff

import (
	"math"
	"time"
)

// Defaults applied by Policy.withDefaults for zero fields.
const (
	DefaultBase     = 2 * time.Millisecond
	DefaultMax      = 250 * time.Millisecond
	DefaultFactor   = 2.0
	DefaultAttempts = 5
	DefaultJitter   = 0.2
)

// Policy describes a capped exponential backoff schedule. The zero value
// is usable and retries DefaultAttempts times starting at DefaultBase.
type Policy struct {
	Base     time.Duration // delay before the first retry (default 2ms)
	Max      time.Duration // delay cap (default 250ms)
	Factor   float64       // per-attempt growth factor (default 2)
	Attempts int           // total attempts including the first (default 5)

	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter] times
	// the nominal value (default 0.2), so a fleet of retriers hammered by
	// the same fault does not re-converge on synchronized retry storms.
	// The draw is deterministic in (Seed, attempt).
	Jitter float64
	Seed   uint64

	// Sleep replaces time.Sleep; tests inject a no-op or a recorder.
	Sleep func(time.Duration)
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Factor <= 1 {
		p.Factor = DefaultFactor
	}
	if p.Attempts <= 0 {
		p.Attempts = DefaultAttempts
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = DefaultJitter
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// splitmix64 is the repo-wide seeded mixer (same constants as the hash
// seeds in internal/hashtab): one round turns (Seed + attempt) into an
// independent uniform word.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Delay returns the jittered delay before retry number attempt (0-based:
// Delay(0) is the pause after the first failure). Pure: the same policy
// and attempt always yield the same duration.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := float64(p.Base) * math.Pow(p.Factor, float64(attempt))
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		u := splitmix64(p.Seed + uint64(attempt) + 1)
		f := float64(u>>11) / float64(uint64(1)<<53) // uniform [0, 1)
		d *= 1 - p.Jitter + 2*p.Jitter*f
		if d > float64(p.Max) {
			d = float64(p.Max)
		}
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Retry runs op until it succeeds or the attempt budget is exhausted,
// sleeping the policy's jittered delay between attempts. It returns nil
// on the first success, otherwise the last error.
func (p Policy) Retry(op func() error) error {
	p = p.withDefaults()
	var err error
	for a := 0; a < p.Attempts; a++ {
		if err = op(); err == nil {
			return nil
		}
		if a < p.Attempts-1 {
			p.Sleep(p.Delay(a))
		}
	}
	return err
}
