package backoff

import (
	"errors"
	"testing"
	"time"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Base: time.Millisecond, Max: 8 * time.Millisecond, Factor: 2, Jitter: 0, Attempts: 10}
	want := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond, 8 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDelayJitterDeterministicAndBounded(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: 42}
	for i := 0; i < 6; i++ {
		d1, d2 := p.Delay(i), p.Delay(i)
		if d1 != d2 {
			t.Fatalf("Delay(%d) not deterministic: %v vs %v", i, d1, d2)
		}
		nominal := float64(10*time.Millisecond) * float64(int(1)<<i)
		lo, hi := time.Duration(0.5*nominal), time.Duration(1.5*nominal)
		if hi > p.Max {
			hi = p.Max
		}
		if d1 < lo || d1 > hi {
			t.Errorf("Delay(%d) = %v outside [%v, %v]", i, d1, lo, hi)
		}
	}
	// Different seeds draw different jitter (with overwhelming probability
	// across six attempts).
	q := p
	q.Seed = 43
	same := true
	for i := 0; i < 6; i++ {
		if p.Delay(i) != q.Delay(i) {
			same = false
		}
	}
	if same {
		t.Error("two seeds drew identical jitter sequences")
	}
}

func TestRetryStopsOnSuccess(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 5, Jitter: 0, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := p.Retry(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v, want nil", err)
	}
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
	if len(slept) != 2 {
		t.Errorf("slept %d times, want 2", len(slept))
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	slept := 0
	p := Policy{Attempts: 4, Sleep: func(time.Duration) { slept++ }}
	calls := 0
	permanent := errors.New("down")
	if err := p.Retry(func() error { calls++; return permanent }); !errors.Is(err, permanent) {
		t.Fatalf("Retry = %v, want the last error", err)
	}
	if calls != 4 {
		t.Errorf("op called %d times, want 4", calls)
	}
	if slept != 3 {
		t.Errorf("slept %d times, want 3 (no sleep after the final failure)", slept)
	}
}

func TestZeroValuePolicyUsable(t *testing.T) {
	p := Policy{Sleep: func(time.Duration) {}}
	calls := 0
	if err := p.Retry(func() error { calls++; return errors.New("x") }); err == nil {
		t.Fatal("want error")
	}
	if calls != DefaultAttempts {
		t.Errorf("zero policy ran %d attempts, want %d", calls, DefaultAttempts)
	}
	if d := (Policy{}).Delay(0); d <= 0 {
		t.Errorf("zero policy Delay(0) = %v, want positive", d)
	}
}
