//go:build arm64

#include "textflag.h"

// func prefetch(p unsafe.Pointer)
TEXT ·prefetch(SB), NOSPLIT, $0-8
	MOVD p+0(FP), R0
	PRFM (R0), PLDL1KEEP
	RET

// func prefetch3(p0, p1, p2 unsafe.Pointer)
TEXT ·prefetch3(SB), NOSPLIT, $0-24
	MOVD p0+0(FP), R0
	MOVD p1+8(FP), R1
	MOVD p2+16(FP), R2
	PRFM (R0), PLDL1KEEP
	PRFM (R1), PLDL1KEEP
	PRFM (R2), PLDL1KEEP
	RET
