package hashtab

// kernelNameArch names this GOARCH's vector kernel.
const kernelNameArch = "neon"

// fastProbeArch gates the monomorphic probe kernels (fastprobe.go),
// which load packed key words through unsafe at 4-byte alignment:
// fine on arm64, where Go already assumes unaligned load support.
const fastProbeArch = true

// matchTagsSIMD compares all 16 group tags against tag with one NEON
// byte-compare and a bit-table reduction (match_arm64.s).
//
//go:noescape
func matchTagsSIMD(tags *[GroupSlots]uint8, tag uint8) uint16

// haveSIMD: NEON (ASIMD) is baseline on armv8 — every arm64 Go target
// has it.
func haveSIMD() bool { return true }
