package hashtab

import (
	"encoding/binary"
	"os"
)

// Group geometry and the tag-scan kernel.
//
// Since PR 6 the table's buckets are organised into groups of
// GroupSlots = 16 slots sharing one 16-byte fingerprint vector. A probe
// hashes to a *group*, and a single 16-lane byte compare against the
// group's tag vector classifies every slot at once: lanes whose tag
// equals the probing key's fingerprint are probable hits (confirmed by a
// key compare), lanes whose tag is 0 are free, and a group with neither
// is full — only then does the probe evict, so the evict-on-collision
// pressure of the paper's one-slot design drops by roughly the group
// width at equal space.
//
// matchTags* return a 16-bit mask with bit i set iff tags[i] == tag.
// The same kernel yields the empty-slot mask when called with tag 0.
// Three implementations exist:
//
//   - matchTagsGeneric: portable SWAR over two 64-bit words (exact — no
//     false positives; see the haszero construction below).
//   - matchTagsSIMD on amd64: AVX2 VPCMPEQB/VPMOVMSKB (match_amd64.s),
//     gated at startup by a CPUID/XGETBV check.
//   - matchTagsSIMD on arm64: NEON CMEQ + bit-table reduction
//     (match_arm64.s), baseline on armv8.
//
// Selection is a package-level switch: auto-detected at init, overridable
// with MAGG_SIMD=off (or programmatically via SetSIMD) so tests and
// non-AVX2 hosts exercise the generic path.

// GroupSlots is the number of slots per bucket group — one 16-byte tag
// vector, matched by a single vector compare.
const GroupSlots = 16

// groupAlign is the byte alignment of the tag array: group tag vectors
// never straddle a cache line, and the vector kernels get aligned loads.
const groupAlign = GroupSlots

// tagDisabled marks the pad lanes of a partial final group (when the
// table's capacity b is not a multiple of GroupSlots). It is neither 0
// (the empty marker) nor a valid fingerprint (tagOf always sets bit 7),
// so disabled lanes match no probe and are never chosen for installs.
const tagDisabled = 0x01

var (
	// simdAvailable: this CPU has a vector kernel (haveSIMD is
	// per-GOARCH: CPUID-gated AVX2 on amd64, always true on arm64,
	// false elsewhere).
	simdAvailable = haveSIMD()
	// simdEnabled is consulted on every probe; writes only through
	// SetSIMD (tests) or init-time env override.
	simdEnabled = initSIMD()
)

func initSIMD() bool {
	switch os.Getenv("MAGG_SIMD") {
	case "off", "0", "generic":
		return false
	}
	return simdAvailable
}

// SIMDAvailable reports whether a vector tag-scan kernel exists for this
// CPU (independent of whether it is currently enabled).
func SIMDAvailable() bool { return simdAvailable }

// SIMDEnabled reports whether probes currently use the vector kernel.
func SIMDEnabled() bool { return simdEnabled }

// SetSIMD enables or disables the vector kernel and returns the state now
// in effect: enabling is ignored when no kernel exists for this CPU. It
// is a process-wide switch intended for tests and benchmarks (the
// equivalence suite runs once per kernel); it must not race with
// concurrent probes.
func SetSIMD(on bool) bool {
	simdEnabled = on && simdAvailable
	return simdEnabled
}

// KernelName names the tag-scan kernel probes currently use: "avx2",
// "neon", or "generic".
func KernelName() string {
	if simdEnabled {
		return kernelNameArch
	}
	return "generic"
}

// matchTags dispatches one group compare to the selected kernel. The
// branch inlines into callers; the asm kernel behind it cannot.
func matchTags(g *[GroupSlots]uint8, tag uint8) uint16 {
	if simdEnabled {
		return matchTagsSIMD(g, tag)
	}
	return matchTagsGeneric(g, tag)
}

// matchTagsGeneric is the portable kernel: XOR each 8-byte half with the
// broadcast tag, detect zero bytes, and gather the per-byte flags into a
// mask. The zero-byte test is the exact form
//
//	^(((v & 0x7f..7f) + 0x7f..7f) | v) & 0x80..80
//
// (high bit set iff the byte is 0). The familiar shorter idiom
// (v-0x01..01) &^ v & 0x80..80 is NOT exact: a 0x01 byte above a zero
// byte borrows and reports a false match, which here would install
// entries into the disabled pad lanes of a partial group. The
// multiply-gather moves the eight flag bits (positions 7,15,…,63) to the
// top byte; the terms are carry-free because 8j+7k hits each target bit
// exactly once for j,k in 0..7.
func matchTagsGeneric(g *[GroupSlots]uint8, tag uint8) uint16 {
	const (
		lo7    = 0x7f7f7f7f7f7f7f7f
		hi     = 0x8080808080808080
		ones   = 0x0101010101010101
		gather = 0x0102040810204080
	)
	m := uint64(tag) * ones
	a := binary.LittleEndian.Uint64(g[0:8]) ^ m
	b := binary.LittleEndian.Uint64(g[8:16]) ^ m
	za := ^(((a & lo7) + lo7) | a) & hi
	zb := ^(((b & lo7) + lo7) | b) & hi
	return uint16(za>>7*gather>>56) | uint16(zb>>7*gather>>56)<<8
}
