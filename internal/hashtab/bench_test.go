package hashtab

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
)

// Miss-heavy large-table shape: the probe stream draws ~4M distinct
// groups that fight for 2M buckets, so in steady state most probes
// evict a resident victim — the regime where the paper's collision
// model lives and where memory-level parallelism matters (the working
// set is tens of MB, far beyond L2).
const (
	benchBuckets = 1 << 21
	benchStream  = 1 << 22
	benchRun     = 512
)

func newBenchFixture(tb testing.TB) (*Table, []uint32) {
	tab := MustNew(attr.MustParseSet("AB"), benchBuckets, []AggOp{Sum}, 11)
	rng := rand.New(rand.NewSource(17))
	keys := make([]uint32, 2*benchStream)
	for i := 0; i < benchStream; i++ {
		g := rng.Intn(benchStream << 1)
		keys[2*i] = uint32(g)
		keys[2*i+1] = uint32(g >> 11)
	}
	return tab, keys
}

func BenchmarkProbeScalarLarge(b *testing.B) {
	tab, keys := newBenchFixture(b)
	one := []int64{1}
	var victim Entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := (i % benchStream) * 2
		tab.ProbeInto(keys[o:o+2], one, &victim)
	}
}

func BenchmarkProbeBatchLarge(b *testing.B) {
	tab, keys := newBenchFixture(b)
	deltas := make([]int64, benchRun)
	for i := range deltas {
		deltas[i] = 1
	}
	var out VictimRun
	b.ReportAllocs()
	b.ResetTimer()
	nruns := benchStream / benchRun
	for done := 0; done < b.N; {
		r := (done / benchRun) % nruns
		n := benchRun
		if b.N-done < n {
			n = b.N - done
		}
		o := r * benchRun * 2
		tab.ProbeBatchInto(keys[o:o+2*n], deltas[:n], &out)
		done += n
	}
}
