package hashtab

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/attr"
)

// TestHashColumnsMatchesHashWords: the columnar hash kernels must be
// bit-identical to HashWords on every arity (unrolled 1–4 plus the
// gather fallback), or columnar and record-major shard routing would
// disagree.
func TestHashColumnsMatchesHashWords(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for arity := 1; arity <= 6; arity++ {
		const n = 1000
		cols := make([][]uint32, arity)
		for a := range cols {
			cols[a] = make([]uint32, n)
			for i := range cols[a] {
				cols[a][i] = rng.Uint32()
			}
		}
		for _, seed := range []uint64{0, 1, 0x5bd1e995bc9e3779, rng.Uint64()} {
			out := make([]uint64, n)
			HashColumns(seed, cols, out)
			key := make([]uint32, arity)
			for i := 0; i < n; i++ {
				for a := range cols {
					key[a] = cols[a][i]
				}
				if want := HashWords(seed, key); out[i] != want {
					t.Fatalf("arity %d seed %#x row %d: HashColumns %#x, HashWords %#x", arity, seed, i, out[i], want)
				}
			}
		}
	}
}

// relOfArity returns a query relation with the given number of
// attributes.
func relOfArity(a int) attr.Set {
	return attr.MustParseSet("ABCDEFGH"[:a])
}

// drainSorted collects a table's resident entries in deterministic
// order.
func drainSorted(t *Table) []Entry {
	var out []Entry
	t.Drain(func(e Entry) {
		out = append(out, Entry{
			Key:     append([]uint32(nil), e.Key...),
			Aggs:    append([]int64(nil), e.Aggs...),
			Updates: e.Updates,
		})
	})
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i].Key {
			if out[i].Key[k] != out[j].Key[k] {
				return out[i].Key[k] < out[j].Key[k]
			}
		}
		return false
	})
	return out
}

// TestProbeColumnsMatchesBatch: feeding the same probe sequence through
// ProbeColumnsInto (column-major) and ProbeBatchInto (record-major
// gather of the same columns) must produce identical victims,
// statistics, and final table contents — on every arity, on sum-only
// aggregates (the fastSum2 kernel at arity 2) and multi-agg lists, and
// under both tag-scan kernels.
func TestProbeColumnsMatchesBatch(t *testing.T) {
	defer SetSIMD(SIMDEnabled())
	kernels := []bool{false}
	if SIMDAvailable() {
		kernels = append(kernels, true)
	}
	aggShapes := map[string][]AggOp{
		"sum":   {Sum},
		"multi": {Sum, Min, Max},
	}
	for _, simd := range kernels {
		SetSIMD(simd)
		for arity := 1; arity <= 5; arity++ {
			for shapeName, ops := range aggShapes {
				t.Run(fmt.Sprintf("kernel=%s/arity=%d/%s", KernelName(), arity, shapeName), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(60 + arity)))
					const (
						buckets = 64 // tiny: heavy eviction traffic
						total   = 5000
					)
					rel := relOfArity(arity)
					colTab := MustNew(rel, buckets, ops, 9)
					batTab := MustNew(rel, buckets, ops, 9)

					cols := make([][]uint32, arity)
					var colOut, batOut VictimRun
					flat := make([]uint32, 0, 512*arity)
					for done := 0; done < total; {
						n := 1 + rng.Intn(512)
						if total-done < n {
							n = total - done
						}
						done += n
						for a := range cols {
							cols[a] = cols[a][:0]
						}
						for i := 0; i < n; i++ {
							g := rng.Intn(200)
							for a := range cols {
								cols[a] = append(cols[a], uint32(g*(a+3)+a))
							}
						}
						deltas := make([]int64, n*len(ops))
						for i := range deltas {
							deltas[i] = int64(rng.Intn(50) + 1)
						}
						colTab.ProbeColumnsInto(cols, deltas, &colOut)

						flat = flat[:0]
						for i := 0; i < n; i++ {
							for a := 0; a < arity; a++ {
								flat = append(flat, cols[a][i])
							}
						}
						batTab.ProbeBatchInto(flat, deltas, &batOut)

						if colOut.Len() != batOut.Len() {
							t.Fatalf("victim counts diverge: columnar %d, batch %d", colOut.Len(), batOut.Len())
						}
						if !reflect.DeepEqual(colOut.Keys, batOut.Keys) || !reflect.DeepEqual(colOut.Aggs, batOut.Aggs) {
							t.Fatal("victim runs diverge between columnar and batch probes")
						}
					}
					if cs, bs := colTab.Stats(), batTab.Stats(); cs != bs {
						t.Fatalf("stats diverge:\ncolumnar %+v\nbatch    %+v", cs, bs)
					}
					if !reflect.DeepEqual(drainSorted(colTab), drainSorted(batTab)) {
						t.Fatal("drained table contents diverge between columnar and batch probes")
					}
				})
			}
		}
	}
}
