//go:build !amd64 && !arm64

package hashtab

// kernelNameArch names this GOARCH's vector kernel (none — the name is
// only reported when simdEnabled, which haveSIMD below rules out).
const kernelNameArch = "generic"

// matchTagsSIMD is never selected on architectures without a vector
// kernel; it aliases the generic path for type completeness.
func matchTagsSIMD(g *[GroupSlots]uint8, tag uint8) uint16 {
	return matchTagsGeneric(g, tag)
}

// haveSIMD: no vector kernel for this GOARCH.
func haveSIMD() bool { return false }

// fastProbeArch: the monomorphic probe kernels (fastprobe.go) do
// unaligned word loads through unsafe, which not every GOARCH permits —
// probes take the generic kernel here.
const fastProbeArch = false
