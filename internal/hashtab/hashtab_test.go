package hashtab

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/attr"
)

var relA = attr.MustParseSet("A")

func counter(t *testing.T, rel string, b int) *Table {
	t.Helper()
	tab, err := NewCounter(attr.MustParseSet(rel), b, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, []AggOp{Sum}, 0); err == nil {
		t.Error("empty relation accepted")
	}
	if _, err := New(relA, 0, []AggOp{Sum}, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := New(relA, 10, nil, 0); err == nil {
		t.Error("no aggregates accepted")
	}
}

func TestEntrySizeAndSpace(t *testing.T) {
	// Paper: a bucket for relation A (1 attr + 1 counter) takes 8 bytes =
	// 2 units; ABCD takes 20 bytes = 5 units.
	a := counter(t, "A", 100)
	if a.EntrySize() != 2 || a.SpaceUnits() != 200 {
		t.Errorf("A: h = %d, space = %d", a.EntrySize(), a.SpaceUnits())
	}
	abcd := counter(t, "ABCD", 100)
	if abcd.EntrySize() != 5 || abcd.SpaceUnits() != 500 {
		t.Errorf("ABCD: h = %d, space = %d", abcd.EntrySize(), abcd.SpaceUnits())
	}
}

// TestPaperExample replays Section 2.2's worked example: stream
// 2, 24, 2, 2, 3, 17, 3, 4 through a 10-bucket table with hash = value
// mod 10. Our hash is not "mod 10", so we emulate the example's collision
// structure by checking semantics on a table large enough to avoid
// accidental collisions, then force the 24-vs-4 collision with a
// single-bucket table.
func TestPaperExample(t *testing.T) {
	tab := counter(t, "A", 1024)
	stream := []uint32{2, 24, 2, 2, 3, 17, 3}
	for _, v := range stream {
		if _, collided := tab.Probe([]uint32{v}, []int64{1}); collided {
			t.Fatalf("unexpected collision for %d", v)
		}
	}
	// Status after 7 items (Figure 1): counts 2→3, 3→2, 17→1, 24→1.
	want := map[uint32]int64{2: 3, 3: 2, 17: 1, 24: 1}
	for v, cnt := range want {
		e, ok := tab.Get([]uint32{v})
		if !ok || e.Aggs[0] != cnt {
			t.Errorf("group %d: got %+v, ok=%v; want count %d", v, e, ok, cnt)
		}
	}
	if tab.Len() != 4 {
		t.Errorf("Len = %d; want 4", tab.Len())
	}

	// Force the collision of the 8th item: group 4 arrives at a bucket
	// holding (24, 1). With b = 1 every probe shares the bucket.
	one := counter(t, "A", 1)
	one.Probe([]uint32{24}, []int64{1})
	evicted, collided := one.Probe([]uint32{4}, []int64{1})
	if !collided {
		t.Fatal("expected collision in single-bucket table")
	}
	if evicted.Key[0] != 24 || evicted.Aggs[0] != 1 {
		t.Errorf("evicted = %+v; want (24, 1)", evicted)
	}
	if e, ok := one.Get([]uint32{4}); !ok || e.Aggs[0] != 1 {
		t.Errorf("bucket after eviction = %+v, %v; want (4, 1)", e, ok)
	}
}

func TestStatsAccounting(t *testing.T) {
	tab := counter(t, "A", 1)
	tab.Probe([]uint32{1}, []int64{1}) // insert
	tab.Probe([]uint32{1}, []int64{1}) // hit
	tab.Probe([]uint32{2}, []int64{1}) // collision
	s := tab.Stats()
	if s.Probes != 3 || s.Inserts != 1 || s.Hits != 1 || s.Collisions != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.CollisionRate(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("CollisionRate = %v", got)
	}
	// The evicted entry for group 1 had 2 records folded in.
	if s.EvictedEntries != 1 || s.EvictedUpdates != 2 {
		t.Errorf("flow-length stats = %+v", s)
	}
	if got := s.AvgFlowLength(); got != 2 {
		t.Errorf("AvgFlowLength = %v", got)
	}
	tab.ResetStats()
	if tab.Stats().Probes != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestMinMaxAggregates(t *testing.T) {
	tab := MustNew(relA, 8, []AggOp{Sum, Min, Max}, 0)
	tab.Probe([]uint32{7}, []int64{1, 100, 100})
	tab.Probe([]uint32{7}, []int64{1, 42, 42})
	tab.Probe([]uint32{7}, []int64{1, 77, 77})
	e, ok := tab.Get([]uint32{7})
	if !ok {
		t.Fatal("group 7 missing")
	}
	if e.Aggs[0] != 3 || e.Aggs[1] != 42 || e.Aggs[2] != 100 {
		t.Errorf("aggs = %v; want [3 42 100]", e.Aggs)
	}
	if e.Updates != 3 {
		t.Errorf("updates = %d; want 3", e.Updates)
	}
}

func TestAggOpCombine(t *testing.T) {
	if Sum.Combine(2, 3) != 5 {
		t.Error("sum")
	}
	if Min.Combine(Min.Identity(), 9) != 9 || Min.Combine(4, 9) != 4 {
		t.Error("min")
	}
	if Max.Combine(Max.Identity(), -9) != -9 || Max.Combine(4, 9) != 9 {
		t.Error("max")
	}
	for _, op := range []AggOp{Sum, Min, Max} {
		if op.String() == "" {
			t.Error("empty op name")
		}
	}
}

func TestFlush(t *testing.T) {
	tab := counter(t, "AB", 64)
	keys := [][]uint32{{1, 2}, {3, 4}, {5, 6}}
	for _, k := range keys {
		tab.Probe(k, []int64{1})
		tab.Probe(k, []int64{1})
	}
	var got []Entry
	n := tab.Flush(func(e Entry) { got = append(got, e) })
	if n != 3 || len(got) != 3 {
		t.Fatalf("Flush emitted %d entries", n)
	}
	for _, e := range got {
		if e.Aggs[0] != 2 || e.Updates != 2 {
			t.Errorf("flushed entry %+v; want count 2", e)
		}
	}
	if tab.Len() != 0 {
		t.Error("table not empty after Flush")
	}
	if tab.Stats().Flushes != 3 {
		t.Errorf("Flushes = %d", tab.Stats().Flushes)
	}
	// Flushing again emits nothing.
	if n := tab.Flush(func(Entry) {}); n != 0 {
		t.Errorf("second Flush emitted %d", n)
	}
}

func TestScanDoesNotModify(t *testing.T) {
	tab := counter(t, "A", 16)
	tab.Probe([]uint32{9}, []int64{1})
	count := 0
	tab.Scan(func(e Entry) {
		count++
		if e.Key[0] != 9 {
			t.Errorf("scanned key %v", e.Key)
		}
	})
	if count != 1 || tab.Len() != 1 {
		t.Errorf("Scan visited %d entries, Len = %d", count, tab.Len())
	}
}

func TestClear(t *testing.T) {
	tab := counter(t, "A", 16)
	tab.Probe([]uint32{1}, []int64{1})
	tab.Clear()
	if tab.Len() != 0 {
		t.Error("Clear left entries behind")
	}
	if _, ok := tab.Get([]uint32{1}); ok {
		t.Error("entry survived Clear")
	}
	// Stats must be preserved by Clear.
	if tab.Stats().Probes != 1 {
		t.Error("Clear wiped stats")
	}
}

func TestProbePanicsOnArityMismatch(t *testing.T) {
	tab := counter(t, "AB", 4)
	assertPanics(t, func() { tab.Probe([]uint32{1}, []int64{1}) })
	assertPanics(t, func() { tab.Probe([]uint32{1, 2}, []int64{1, 1}) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestSeedIndependence(t *testing.T) {
	// Two tables with different seeds should place at least one of many
	// keys in different buckets.
	t1 := MustNew(relA, 997, []AggOp{Sum}, 1)
	t2 := MustNew(relA, 997, []AggOp{Sum}, 2)
	diff := 0
	for v := uint32(0); v < 1000; v++ {
		if t1.Bucket([]uint32{v}) != t2.Bucket([]uint32{v}) {
			diff++
		}
	}
	if diff < 900 {
		t.Errorf("only %d/1000 keys placed differently under different seeds", diff)
	}
}

// TestHashUniformity checks the random-hash assumption underpinning the
// collision-rate model: hashing g sequential and g random keys into b
// buckets must produce an occupancy distribution close to binomial.
func TestHashUniformity(t *testing.T) {
	const (
		g = 30000
		b = 1000
	)
	for name, gen := range map[string]func(i int) []uint32{
		"sequential": func(i int) []uint32 { return []uint32{uint32(i)} },
		"strided":    func(i int) []uint32 { return []uint32{uint32(i * 256)} },
	} {
		tab := MustNew(relA, b, []AggOp{Sum}, 42)
		counts := make([]int, b)
		for i := 0; i < g; i++ {
			counts[tab.Bucket(gen(i))]++
		}
		// Chi-squared against uniform expectation g/b. With b-1 = 999
		// degrees of freedom, mean 999, sd ≈ 45; accept within ±6 sd.
		exp := float64(g) / float64(b)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - exp
			chi2 += d * d / exp
		}
		if chi2 > 999+6*45 || chi2 < 999-6*45 {
			t.Errorf("%s keys: chi-squared = %.1f, outside uniform band", name, chi2)
		}
	}
}

// Property: the sum of counts across resident entries plus evicted entries
// always equals the number of probes (count conservation — no record is
// ever lost or double counted).
func TestCountConservationProperty(t *testing.T) {
	f := func(vals []uint16, bRaw uint8) bool {
		b := int(bRaw)%64 + 1
		tab := MustNew(relA, b, []AggOp{Sum}, uint64(bRaw))
		var evictedTotal int64
		for _, v := range vals {
			if e, collided := tab.Probe([]uint32{uint32(v % 128)}, []int64{1}); collided {
				evictedTotal += e.Aggs[0]
			}
		}
		var residentTotal int64
		tab.Scan(func(e Entry) { residentTotal += e.Aggs[0] })
		return evictedTotal+residentTotal == int64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Updates on an entry equals its count for count(*) tables.
func TestUpdatesMatchCountProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		tab := MustNew(relA, 16, []AggOp{Sum}, 7)
		for _, v := range vals {
			tab.Probe([]uint32{uint32(v)}, []int64{1})
		}
		ok := true
		tab.Scan(func(e Entry) {
			if int64(e.Updates) != e.Aggs[0] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEmpiricalCollisionRateOrder sanity-checks that collision rate grows
// with g/b, the core monotonicity the optimizer depends on.
func TestEmpiricalCollisionRateOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rate := func(g, b int) float64 {
		tab := MustNew(relA, b, []AggOp{Sum}, 99)
		for i := 0; i < 20000; i++ {
			v := uint32(rng.Intn(g))
			tab.Probe([]uint32{v}, []int64{1})
		}
		return tab.Stats().CollisionRate()
	}
	r1 := rate(100, 1000)
	r2 := rate(1000, 1000)
	r3 := rate(5000, 1000)
	if !(r1 < r2 && r2 < r3) {
		t.Errorf("collision rates not increasing in g/b: %v %v %v", r1, r2, r3)
	}
}
