//go:build amd64

#include "textflag.h"

// func prefetch(p unsafe.Pointer)
TEXT ·prefetch(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET

// func prefetch3(p0, p1, p2 unsafe.Pointer)
TEXT ·prefetch3(SB), NOSPLIT, $0-24
	MOVQ p0+0(FP), AX
	MOVQ p1+8(FP), BX
	MOVQ p2+16(FP), CX
	PREFETCHT0 (AX)
	PREFETCHT0 (BX)
	PREFETCHT0 (CX)
	RET
