package hashtab

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomSel builds a selection bitmap over n lanes with roughly the
// given pass probability (percent), dead tail bits zero.
func randomSel(rng *rand.Rand, n, pct int) []uint64 {
	sel := make([]uint64, selWords(n))
	for i := 0; i < n; i++ {
		if rng.Intn(100) < pct {
			sel[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return sel
}

// TestHashColumnsSelMatchesDense: hashing the selected lanes must be
// bit-identical to compacting them and running the dense kernel, on
// every arity, at sparse and dense selections.
func TestHashColumnsSelMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for arity := 1; arity <= 6; arity++ {
		for _, pct := range []int{0, 1, 30, 100} {
			n := 1 + rng.Intn(700)
			cols := make([][]uint32, arity)
			for a := range cols {
				cols[a] = make([]uint32, n)
				for i := range cols[a] {
					cols[a][i] = rng.Uint32()
				}
			}
			sel := randomSel(rng, n, pct)
			m := selCount(sel, n)
			got := make([]uint64, m)
			if wrote := HashColumnsSel(7, cols, n, sel, got); wrote != m {
				t.Fatalf("arity %d pct %d: wrote %d hashes, popcount %d", arity, pct, wrote, m)
			}

			compact := make([][]uint32, arity)
			for i := 0; i < n; i++ {
				if sel[i>>6]&(1<<(uint(i)&63)) != 0 {
					for a := range cols {
						compact[a] = append(compact[a], cols[a][i])
					}
				}
			}
			want := make([]uint64, m)
			HashColumns(7, compact, want)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("arity %d pct %d: selected hashes diverge from dense", arity, pct)
			}
		}
	}
}

// TestProbeColumnsSelMatchesDense: probing the selected lanes of a
// column run must produce victims, statistics, and table contents
// bit-identical to compacting the selection and probing densely — on
// every arity, on the sum-only shape (which the dense path runs through
// the monomorphic sum-2 kernel) and multi-agg lists, at sparse and
// dense selections, under both tag-scan kernels.
func TestProbeColumnsSelMatchesDense(t *testing.T) {
	defer SetSIMD(SIMDEnabled())
	kernels := []bool{false}
	if SIMDAvailable() {
		kernels = append(kernels, true)
	}
	aggShapes := map[string][]AggOp{
		"sum":   {Sum},
		"multi": {Sum, Min, Max},
	}
	for _, simd := range kernels {
		SetSIMD(simd)
		for arity := 1; arity <= 5; arity++ {
			for shapeName, ops := range aggShapes {
				t.Run(fmt.Sprintf("kernel=%s/arity=%d/%s", KernelName(), arity, shapeName), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(80 + arity)))
					const (
						buckets = 64 // tiny: heavy eviction traffic
						total   = 4000
					)
					rel := relOfArity(arity)
					selTab := MustNew(rel, buckets, ops, 9)
					denTab := MustNew(rel, buckets, ops, 9)

					cols := make([][]uint32, arity)
					compact := make([][]uint32, arity)
					var selOut, denOut VictimRun
					pcts := []int{0, 1, 10, 50, 100}
					for done := 0; done < total; {
						n := 1 + rng.Intn(512)
						if total-done < n {
							n = total - done
						}
						done += n
						for a := range cols {
							cols[a] = cols[a][:0]
							compact[a] = compact[a][:0]
						}
						for i := 0; i < n; i++ {
							g := rng.Intn(200)
							for a := range cols {
								cols[a] = append(cols[a], uint32(g*(a+3)+a))
							}
						}
						sel := randomSel(rng, n, pcts[rng.Intn(len(pcts))])
						m := selCount(sel, n)
						deltas := make([]int64, m*len(ops))
						for i := range deltas {
							deltas[i] = int64(rng.Intn(50) + 1)
						}
						selTab.ProbeColumnsSelInto(cols, deltas, n, sel, &selOut)

						for i := 0; i < n; i++ {
							if sel[i>>6]&(1<<(uint(i)&63)) != 0 {
								for a := range cols {
									compact[a] = append(compact[a], cols[a][i])
								}
							}
						}
						denTab.ProbeColumnsInto(compact, deltas, &denOut)

						if selOut.Len() != denOut.Len() {
							t.Fatalf("victim counts diverge: selected %d, dense %d", selOut.Len(), denOut.Len())
						}
						if !reflect.DeepEqual(selOut.Keys, denOut.Keys) || !reflect.DeepEqual(selOut.Aggs, denOut.Aggs) {
							t.Fatal("victim runs diverge between selected and dense probes")
						}
					}
					if ss, ds := selTab.Stats(), denTab.Stats(); ss != ds {
						t.Fatalf("stats diverge:\nselected %+v\ndense    %+v", ss, ds)
					}
					if !reflect.DeepEqual(drainSorted(selTab), drainSorted(denTab)) {
						t.Fatal("drained table contents diverge between selected and dense probes")
					}
				})
			}
		}
	}
}
