//go:build !amd64 && !arm64

package hashtab

import "unsafe"

// prefetch is a no-op on platforms without an assembly stub. The batch
// probe kernel still helps there — hashing and bucket classification are
// batched either way — it just cannot overlap the memory misses.
func prefetch(p unsafe.Pointer) { _ = p }
