//go:build !amd64 && !arm64

package hashtab

import "unsafe"

// prefetch is a no-op on platforms without an assembly stub. The batch
// probe kernel still helps there — hashing and bucket classification are
// batched either way — it just cannot overlap the memory misses.
func prefetch(p unsafe.Pointer) { _ = p }

// prefetch3 is a no-op on platforms without an assembly stub.
func prefetch3(p0, p1, p2 unsafe.Pointer) { _, _, _ = p0, p1, p2 }
