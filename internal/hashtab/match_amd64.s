#include "textflag.h"

// func matchTagsSIMD(tags *[16]uint8, tag uint8) uint16
//
// Broadcast the tag byte to all 16 lanes, compare against the group's
// tag vector, and move the per-lane sign bits into a GPR mask. The tag
// array is 16-byte aligned (hashtab.New over-allocates and offsets), so
// VMOVDQU never splits a line; unaligned encoding is kept so the kernel
// stays correct under any future layout. VEX.128 ops zero the upper YMM
// bits, so no VZEROUPPER is needed.
TEXT ·matchTagsSIMD(SB), NOSPLIT, $0-18
	MOVQ   tags+0(FP), AX
	MOVBLZX tag+8(FP), CX
	MOVL   CX, X1
	VPBROADCASTB X1, X0
	VMOVDQU (AX), X2
	VPCMPEQB X2, X0, X0
	VPMOVMSKB X0, BX
	MOVW   BX, ret+16(FP)
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
