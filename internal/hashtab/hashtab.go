// Package hashtab implements the LFTA hash tables of the paper's
// two-level DSMS architecture.
//
// An LFTA table is a fixed array of b buckets with exactly one resident
// group per bucket. Probing a record's group either (i) starts a new group
// in an empty bucket, (ii) increments the aggregates of the resident group
// when it matches, or (iii) *collides*: the resident entry is evicted (to
// the HFTA, or to the tables the relation feeds) and replaced by the new
// group with fresh aggregates. This evict-on-collision behaviour — rather
// than chaining or probing sequences — is what makes the collision rate the
// central performance quantity of the paper, and the table keeps exact
// operation counts so experiments can compute the "actual cost"
// c1·probes + c2·evictions.
//
// Space accounting follows the paper's convention: the unit of space is
// 4 bytes, each attribute value and each aggregate counter occupies one
// unit, so a bucket of a relation with arity a and k aggregates occupies
// h = a + k units.
package hashtab

import (
	"fmt"

	"repro/internal/attr"
)

// AggOp is the combine operation of one aggregate slot.
type AggOp uint8

// Supported aggregate operations. Count is Sum over a delta of 1.
const (
	Sum AggOp = iota
	Min
	Max
)

// String returns the operation name.
func (op AggOp) String() string {
	switch op {
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("AggOp(%d)", uint8(op))
	}
}

// Combine merges a new value into an accumulator under the operation.
func (op AggOp) Combine(acc, v int64) int64 {
	switch op {
	case Sum:
		return acc + v
	case Min:
		if v < acc {
			return v
		}
		return acc
	case Max:
		if v > acc {
			return v
		}
		return acc
	default:
		return acc
	}
}

// Identity returns the neutral starting accumulator for the operation.
func (op AggOp) Identity() int64 {
	switch op {
	case Min:
		return int64(1)<<62 - 1
	case Max:
		return -(int64(1)<<62 - 1)
	default:
		return 0
	}
}

// Entry is one evicted or scanned table entry: the group key (projected
// attribute values of the table's relation, in attribute order) and its
// accumulated aggregates. Updates counts how many records were folded into
// the entry while it was resident, which the engine uses to measure
// average flow length (Section 4.3 of the paper).
type Entry struct {
	Key     []uint32
	Aggs    []int64
	Updates uint32
}

// Stats are cumulative operation counts for one table.
type Stats struct {
	Probes     uint64 // every Probe call (cost c1 each)
	Hits       uint64 // probe matched resident group
	Inserts    uint64 // probe filled an empty bucket
	Collisions uint64 // probe evicted a resident group (cost c2 if leaf)
	Flushes    uint64 // entries emitted by Flush/Scan-and-clear

	// Flow-length bookkeeping: total updates accumulated by entries that
	// have been evicted or flushed, and how many such entries there were.
	// Their ratio estimates the average flow length l_a.
	EvictedUpdates uint64
	EvictedEntries uint64
}

// CollisionRate returns the fraction of probes that collided, the
// empirical x of the paper's model.
func (s Stats) CollisionRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Collisions) / float64(s.Probes)
}

// AvgFlowLength estimates the average number of records per resident
// group occupancy (the paper's l_a) from eviction bookkeeping.
func (s Stats) AvgFlowLength() float64 {
	if s.EvictedEntries == 0 {
		return 1
	}
	return float64(s.EvictedUpdates) / float64(s.EvictedEntries)
}

// Table is a single LFTA hash table.
//
// Bucket state lives in a split layout: a dense 8-bit fingerprint array
// (tags, one byte per bucket — 64 buckets per cache line) in front of
// the flat entry storage (keys, aggregates, update counts). A probe
// reads the tag first: 0 means empty (install without any key load), a
// mismatch against the probing key's tag means a definite collision
// (evict without comparing keys), and a match means a probable hit,
// confirmed by the key compare (1/128 of collisions alias the tag and
// fall through to the collision path). Because the tag array answers
// "empty / hit / collision" from one dense byte, the batch kernel
// (ProbeBatchInto) can classify and prefetch a whole run of buckets
// before the first entry line is needed — see batch.go.
//
// Occupancy is mirrored in the update count (updates[i] == 0 ⟺
// tags[i] == 0 ⟺ empty; a resident entry always has at least the
// installing record folded in). The count saturates at 2³²-1 rather
// than wrapping to 0, so occupancy can never be forged by overflow.
type Table struct {
	rel     attr.Set
	arity   int
	ops     []AggOp
	sumOnly bool // exactly one aggregate slot with op Sum (count(*)/sum tables)
	b       int
	seed    uint64

	tags    []uint8  // b fingerprints; 0 = empty, else tagOf(hash)
	keys    []uint32 // b × arity, flat
	aggs    []int64  // b × len(ops), flat
	updates []uint32 // records folded into each resident entry; 0 = empty bucket

	// Batch-probe scratch (see ProbeBatchInto): precomputed bucket
	// indices and fingerprints of the setup pass, sized to batchChunk on
	// first use. Tables are single-owner (one shard probes a table), so
	// the scratch lives on the table rather than in every caller.
	batchIdx []int
	batchTag []uint8

	live  int
	stats Stats
}

// New creates a table for relation rel with b buckets and one aggregate
// slot per op. The seed perturbs the hash function so different tables
// (and different runs) use independent hash functions, as the paper's
// random-hash assumption requires.
func New(rel attr.Set, b int, ops []AggOp, seed uint64) (*Table, error) {
	if rel.IsEmpty() {
		return nil, fmt.Errorf("hashtab: empty relation")
	}
	if b <= 0 {
		return nil, fmt.Errorf("hashtab: table for %v needs at least 1 bucket, got %d", rel, b)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("hashtab: table for %v needs at least one aggregate", rel)
	}
	arity := rel.Size()
	return &Table{
		rel:     rel,
		arity:   arity,
		ops:     append([]AggOp(nil), ops...),
		sumOnly: len(ops) == 1 && ops[0] == Sum,
		b:       b,
		seed:    seed,
		tags:    make([]uint8, b),
		keys:    make([]uint32, b*arity),
		aggs:    make([]int64, b*len(ops)),
		updates: make([]uint32, b),
	}, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(rel attr.Set, b int, ops []AggOp, seed uint64) *Table {
	t, err := New(rel, b, ops, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// NewCounter creates a count(*) table: a single Sum aggregate.
func NewCounter(rel attr.Set, b int, seed uint64) (*Table, error) {
	return New(rel, b, []AggOp{Sum}, seed)
}

// Rel returns the relation the table aggregates.
func (t *Table) Rel() attr.Set { return t.rel }

// Buckets returns the number of buckets b.
func (t *Table) Buckets() int { return t.b }

// Arity returns the group-key width.
func (t *Table) Arity() int { return t.arity }

// NumAggs returns the number of aggregate slots.
func (t *Table) NumAggs() int { return len(t.ops) }

// EntrySize returns h, the bucket size in 4-byte units (arity + #aggs).
func (t *Table) EntrySize() int { return t.arity + len(t.ops) }

// SpaceUnits returns the table's total size in 4-byte units, b·h.
func (t *Table) SpaceUnits() int { return t.b * t.EntrySize() }

// Len returns the number of occupied buckets.
func (t *Table) Len() int { return t.live }

// Stats returns a copy of the cumulative operation counters.
func (t *Table) Stats() Stats { return t.stats }

// ResetStats zeroes the operation counters without touching contents.
func (t *Table) ResetStats() { t.stats = Stats{} }

// Probe folds one observation of the group identified by key into the
// table, applying deltas (one per aggregate slot) under the table's ops.
// If the bucket holds a different group, that entry is evicted: Probe
// returns it with collided = true, and the bucket is re-initialized to the
// probing group. The returned Entry aliases freshly allocated slices and
// is safe to retain.
//
// key must have length Arity(); deltas must have length NumAggs(). For a
// count(*) table pass deltas = {1}.
func (t *Table) Probe(key []uint32, deltas []int64) (evicted Entry, collided bool) {
	if len(key) != t.arity {
		panic(fmt.Sprintf("hashtab: key arity %d for table %v (arity %d)", len(key), t.rel, t.arity))
	}
	if len(deltas) != len(t.ops) {
		panic(fmt.Sprintf("hashtab: %d deltas for table %v (%d aggs)", len(deltas), t.rel, len(t.ops)))
	}
	t.stats.Probes++
	h := t.hash(key)
	i := Reduce(h, t.b)
	tag := tagOf(h)
	ks := t.keys[i*t.arity : (i+1)*t.arity]
	as := t.aggs[i*len(t.ops) : (i+1)*len(t.ops)]

	if rt := t.tags[i]; rt == 0 {
		t.install(i, tag, ks, as, key, deltas)
		t.live++
		t.stats.Inserts++
		return Entry{}, false
	} else if rt == tag && equalKeys(ks, key) {
		t.fold(i, as, deltas, t.updates[i])
		t.stats.Hits++
		return Entry{}, false
	}
	// Collision: evict the resident group. (Same-key probes always carry
	// the same tag, so a tag mismatch is a definite collision; a tag match
	// with unequal keys is the 1/128 fingerprint alias, also a collision.)
	up := t.updates[i]
	evicted = Entry{
		Key:     append([]uint32(nil), ks...),
		Aggs:    append([]int64(nil), as...),
		Updates: up,
	}
	t.stats.Collisions++
	t.stats.EvictedUpdates += uint64(up)
	t.stats.EvictedEntries++
	t.install(i, tag, ks, as, key, deltas)
	return evicted, true
}

// ProbeInto is the allocation-free variant of Probe used on the LFTA hot
// path. On a collision the victim's key, aggregates and update count are
// copied into victim, reusing its slice capacity; the caller owns victim
// and may retain it until the next ProbeInto with the same scratch.
//
// The resolution kernel is open-coded here rather than shared with the
// batch path's commitProbe (batch.go): a call per probe costs measurably
// more than the duplicated body, and the batched≡scalar property tests
// hold the two copies together.
func (t *Table) ProbeInto(key []uint32, deltas []int64, victim *Entry) (collided bool) {
	if len(key) != t.arity {
		panic(fmt.Sprintf("hashtab: key arity %d for table %v (arity %d)", len(key), t.rel, t.arity))
	}
	if len(deltas) != len(t.ops) {
		panic(fmt.Sprintf("hashtab: %d deltas for table %v (%d aggs)", len(deltas), t.rel, len(t.ops)))
	}
	t.stats.Probes++
	h := t.hash(key)
	i := Reduce(h, t.b)
	tag := tagOf(h)
	a := t.arity
	rt := t.tags[i]

	// Fingerprint match ⇒ probable hit: confirm with the key compare.
	// Key comparison is open-coded: equalKeys is beyond the inlining
	// budget, and a call per probe costs more than the compare itself.
	if rt == tag {
		ks := t.keys[i*a : i*a+a : i*a+a]
		match := true
		for j := 0; j < a; j++ {
			if ks[j] != key[j] {
				match = false
				break
			}
		}
		if match {
			// Hit — the steady-state common case (1-x of probes): fold
			// the deltas into the resident aggregates.
			up := t.updates[i]
			if t.sumOnly {
				t.aggs[i] += deltas[0]
				if up != ^uint32(0) {
					t.updates[i] = up + 1
				}
			} else {
				as := t.aggs[i*len(t.ops) : (i+1)*len(t.ops)]
				t.fold(i, as, deltas, up)
			}
			t.stats.Hits++
			return false
		}
		// Fingerprint alias (1/128 of collisions): fall through to evict.
	}
	ks := t.keys[i*a : i*a+a : i*a+a]
	as := t.aggs[i*len(t.ops) : (i+1)*len(t.ops)]
	if rt == 0 {
		// Empty bucket: install without ever loading the key line.
		t.install(i, tag, ks, as, key, deltas)
		t.live++
		t.stats.Inserts++
		return false
	}
	up := t.updates[i]
	victim.Key = append(victim.Key[:0], ks...)
	victim.Aggs = append(victim.Aggs[:0], as...)
	victim.Updates = up
	t.stats.Collisions++
	t.stats.EvictedUpdates += uint64(up)
	t.stats.EvictedEntries++
	t.install(i, tag, ks, as, key, deltas)
	return true
}

// fold merges deltas into a resident entry's aggregates and bumps its
// update count (saturating so it can never wrap to the empty marker 0).
func (t *Table) fold(i int, as, deltas []int64, up uint32) {
	for j, op := range t.ops {
		as[j] = op.Combine(as[j], deltas[j])
	}
	if up != ^uint32(0) {
		t.updates[i] = up + 1
	}
}

// install writes (key, deltas) into bucket i's storage slices and stamps
// its fingerprint. The caller adjusts live when the bucket was empty.
func (t *Table) install(i int, tag uint8, ks []uint32, as []int64, key []uint32, deltas []int64) {
	t.tags[i] = tag
	copy(ks, key)
	if t.sumOnly {
		as[0] = deltas[0]
	} else {
		for j, op := range t.ops {
			as[j] = op.Combine(op.Identity(), deltas[j])
		}
	}
	t.updates[i] = 1
}

// equalKeys compares two keys of equal arity, unrolled for the short
// keys (arity 1-4) the paper's workloads probe so the resident-group
// fast path pays no loop overhead.
func equalKeys(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	switch len(a) {
	case 1:
		return a[0] == b[0]
	case 2:
		return a[0] == b[0] && a[1] == b[1]
	case 3:
		return a[0] == b[0] && a[1] == b[1] && a[2] == b[2]
	case 4:
		return a[0] == b[0] && a[1] == b[1] && a[2] == b[2] && a[3] == b[3]
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Get looks up the resident entry for key without modifying the table. It
// returns ok = false if the bucket is empty or holds a different group.
func (t *Table) Get(key []uint32) (Entry, bool) {
	if len(key) != t.arity {
		return Entry{}, false
	}
	i := t.Bucket(key)
	if t.updates[i] == 0 {
		return Entry{}, false
	}
	ks := t.keys[i*t.arity : (i+1)*t.arity]
	if !equalKeys(ks, key) {
		return Entry{}, false
	}
	return Entry{
		Key:     append([]uint32(nil), ks...),
		Aggs:    append([]int64(nil), t.aggs[i*len(t.ops):(i+1)*len(t.ops)]...),
		Updates: t.updates[i],
	}, true
}

// Scan calls fn for every resident entry, in bucket order, without
// modifying the table. The Entry passed to fn aliases internal storage and
// must not be retained across calls.
func (t *Table) Scan(fn func(Entry)) {
	for i := 0; i < t.b; i++ {
		if t.updates[i] == 0 {
			continue
		}
		fn(Entry{
			Key:     t.keys[i*t.arity : (i+1)*t.arity],
			Aggs:    t.aggs[i*len(t.ops) : (i+1)*len(t.ops)],
			Updates: t.updates[i],
		})
	}
}

// Flush emits every resident entry through fn and clears the table; the
// end-of-epoch operation of the paper. Entries passed to fn are fresh
// copies, safe to retain. The number of flushed entries is returned.
func (t *Table) Flush(fn func(Entry)) int {
	n := 0
	for i := 0; i < t.b; i++ {
		if t.updates[i] == 0 {
			continue
		}
		e := Entry{
			Key:     append([]uint32(nil), t.keys[i*t.arity:(i+1)*t.arity]...),
			Aggs:    append([]int64(nil), t.aggs[i*len(t.ops):(i+1)*len(t.ops)]...),
			Updates: t.updates[i],
		}
		t.tags[i] = 0
		t.updates[i] = 0
		t.stats.Flushes++
		t.stats.EvictedUpdates += uint64(e.Updates)
		t.stats.EvictedEntries++
		n++
		fn(e)
	}
	t.live = 0
	return n
}

// Drain emits every resident entry through fn and clears the table, like
// Flush, but the Entry passed to fn aliases internal table storage: it is
// valid only for the duration of the call and must not be retained. This
// is the allocation-free end-of-epoch path; fn may probe *other* tables
// (the top-down cascade) but must not probe the draining table itself.
func (t *Table) Drain(fn func(Entry)) int {
	n := 0
	for i := 0; i < t.b; i++ {
		up := t.updates[i]
		if up == 0 {
			continue
		}
		t.tags[i] = 0
		t.updates[i] = 0
		t.stats.Flushes++
		t.stats.EvictedUpdates += uint64(up)
		t.stats.EvictedEntries++
		n++
		fn(Entry{
			Key:     t.keys[i*t.arity : (i+1)*t.arity],
			Aggs:    t.aggs[i*len(t.ops) : (i+1)*len(t.ops)],
			Updates: up,
		})
	}
	t.live = 0
	return n
}

// Clear empties the table without emitting entries or touching stats.
func (t *Table) Clear() {
	for i := range t.updates {
		t.updates[i] = 0
	}
	for i := range t.tags {
		t.tags[i] = 0
	}
	t.live = 0
}
