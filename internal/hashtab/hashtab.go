// Package hashtab implements the LFTA hash tables of the paper's
// two-level DSMS architecture.
//
// An LFTA table is a fixed array of b slots, organised since PR 6 into
// groups of GroupSlots = 16 slots that share one 16-byte fingerprint
// vector (see match.go). Probing a record's group either (i) starts a
// new group entry in a free slot of its hash group, (ii) increments the
// aggregates of a resident slot whose key matches, or (iii) *collides*:
// the group is full of other keys, so one resident entry is evicted (to
// the HFTA, or to the tables the relation feeds) and replaced by the new
// entry with fresh aggregates. This evict-on-collision behaviour —
// rather than chaining or probing sequences — is what makes the
// collision rate the central performance quantity of the paper, and the
// table keeps exact operation counts so experiments can compute the
// "actual cost" c1·probes + c2·evictions. Relative to the paper's
// one-slot buckets, a 16-slot group at equal space only evicts when all
// 16 co-hashed slots are taken, which drops the collision rate sharply
// at moderate load (internal/collision models both geometries).
//
// Space accounting follows the paper's convention: the unit of space is
// 4 bytes, each attribute value and each aggregate counter occupies one
// unit, so a slot of a relation with arity a and k aggregates occupies
// h = a + k units.
package hashtab

import (
	"fmt"
	"math/bits"
	"unsafe"

	"repro/internal/attr"
)

// AggOp is the combine operation of one aggregate slot.
type AggOp uint8

// Supported aggregate operations. Count is Sum over a delta of 1.
const (
	Sum AggOp = iota
	Min
	Max
)

// String returns the operation name.
func (op AggOp) String() string {
	switch op {
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("AggOp(%d)", uint8(op))
	}
}

// Combine merges a new value into an accumulator under the operation.
func (op AggOp) Combine(acc, v int64) int64 {
	switch op {
	case Sum:
		return acc + v
	case Min:
		if v < acc {
			return v
		}
		return acc
	case Max:
		if v > acc {
			return v
		}
		return acc
	default:
		return acc
	}
}

// Identity returns the neutral starting accumulator for the operation.
func (op AggOp) Identity() int64 {
	switch op {
	case Min:
		return int64(1)<<62 - 1
	case Max:
		return -(int64(1)<<62 - 1)
	default:
		return 0
	}
}

// Entry is one evicted or scanned table entry: the group key (projected
// attribute values of the table's relation, in attribute order) and its
// accumulated aggregates. Updates counts how many records were folded into
// the entry while it was resident, which the engine uses to measure
// average flow length (Section 4.3 of the paper).
type Entry struct {
	Key     []uint32
	Aggs    []int64
	Updates uint32
}

// Stats are cumulative operation counts for one table.
type Stats struct {
	Probes     uint64 // every Probe call (cost c1 each)
	Hits       uint64 // probe matched resident group
	Inserts    uint64 // probe filled an empty slot
	Collisions uint64 // probe evicted a resident group (cost c2 if leaf)
	Flushes    uint64 // entries emitted by Flush/Scan-and-clear

	// Flow-length bookkeeping: total updates accumulated by entries that
	// have been evicted or flushed, and how many such entries there were.
	// Their ratio estimates the average flow length l_a.
	EvictedUpdates uint64
	EvictedEntries uint64
}

// CollisionRate returns the fraction of probes that collided, the
// empirical x of the paper's model.
func (s Stats) CollisionRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Collisions) / float64(s.Probes)
}

// AvgFlowLength estimates the average number of records per resident
// group occupancy (the paper's l_a) from eviction bookkeeping.
func (s Stats) AvgFlowLength() float64 {
	if s.EvictedEntries == 0 {
		return 1
	}
	return float64(s.EvictedUpdates) / float64(s.EvictedEntries)
}

// Table is a single LFTA hash table.
//
// Slot state lives in a split layout: a dense 8-bit fingerprint array
// (tags, one byte per slot, 16-byte aligned so each group's vector is
// one load) in front of the flat entry storage. A probe hashes to a
// group, and one matchTags compare (match.go) classifies all 16 lanes:
// tag-matching lanes are probable hits confirmed by a key compare (1/128
// of colliding keys alias the tag and fall through), a zero lane means
// the group has room (install without loading any key line), and a group
// with neither free nor matching lanes is full — the probe evicts the
// group's hash-chosen victim lane. Because the tag vector answers
// "hit / room / full" from one dense 16-byte load, the batch kernel
// (ProbeBatchInto) can classify and prefetch a whole run of groups
// before the first entry line is needed — see batch.go.
//
// Entry storage interleaves each slot's update count with its aggregates
// (aggs stride is NumAggs()+1, count in the last cell) so the hit and
// eviction paths touch one line, not two. The count is kept as int64 and
// clamped to uint32 when surfaced in an Entry; occupancy is tracked by
// the tag byte alone (tags[i] == 0 ⟺ slot i empty).
type Table struct {
	rel     attr.Set
	arity   int
	ops     []AggOp
	sumOnly bool // exactly one aggregate slot with op Sum (count(*)/sum tables)
	b       int  // capacity in slots (the paper's bucket count)
	ngroups int  // ⌈b/GroupSlots⌉
	lastW   int  // usable lanes in the final group (GroupSlots when b divides evenly)
	astride int  // len(ops)+1: aggregates plus the update count
	// fastKind selects a monomorphic probe kernel (fastprobe.go) for
	// sum-only tables of the common arities; fastNone probes generically.
	fastKind uint8
	seed     uint64

	tags []uint8  // ngroups×GroupSlots lane fingerprints, 16-byte aligned; 0 = empty, tagDisabled = pad lane, else tagOf(hash)
	keys []uint32 // b × arity, flat
	aggs []int64  // b × astride, flat; row tail cell is the update count

	// Base pointers of tags/keys/aggs, cached at construction for the
	// monomorphic probe kernels (fastprobe.go): slot addressing by
	// unsafe.Add skips the slice-header loads and bounds checks of the
	// generic kernel. The arrays never reallocate after New, and the
	// pointers keep them live.
	tagp unsafe.Pointer
	keyp unsafe.Pointer
	aggp unsafe.Pointer

	// Batch-probe scratch (see ProbeBatchInto): precomputed group base
	// slot, fingerprint, and victim lane of the setup pass, sized to the
	// run on first use. Tables are single-owner (one shard probes a
	// table), so the scratch lives on the table rather than in every
	// caller.
	batchIdx []int
	batchTag []uint8
	batchVic []uint8
	// batchLane maps compact entry → source lane for the selection-aware
	// probe (ProbeColumnsSelInto), whose commit pass gathers keys by lane.
	batchLane []int32

	live  int
	stats Stats
}

// New creates a table for relation rel with b slots and one aggregate
// slot per op. The seed perturbs the hash function so different tables
// (and different runs) use independent hash functions, as the paper's
// random-hash assumption requires.
func New(rel attr.Set, b int, ops []AggOp, seed uint64) (*Table, error) {
	if rel.IsEmpty() {
		return nil, fmt.Errorf("hashtab: empty relation")
	}
	if b <= 0 {
		return nil, fmt.Errorf("hashtab: table for %v needs at least 1 bucket, got %d", rel, b)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("hashtab: table for %v needs at least one aggregate", rel)
	}
	arity := rel.Size()
	ng := (b + GroupSlots - 1) / GroupSlots
	// Over-allocate the tag array and offset so every group's 16-byte
	// vector is 16-byte aligned (never split across cache lines).
	raw := make([]uint8, ng*GroupSlots+groupAlign-1)
	off := (groupAlign - int(uintptr(unsafe.Pointer(&raw[0])))&(groupAlign-1)) & (groupAlign - 1)
	tags := raw[off : off+ng*GroupSlots : off+ng*GroupSlots]
	for i := b; i < ng*GroupSlots; i++ {
		tags[i] = tagDisabled
	}
	sumOnly := len(ops) == 1 && ops[0] == Sum
	t := &Table{
		rel:      rel,
		arity:    arity,
		ops:      append([]AggOp(nil), ops...),
		sumOnly:  sumOnly,
		b:        b,
		ngroups:  ng,
		lastW:    b - (ng-1)*GroupSlots,
		astride:  len(ops) + 1,
		fastKind: fastKindOf(arity, sumOnly),
		seed:     seed,
		tags:     tags,
		keys:     make([]uint32, b*arity),
		aggs:     make([]int64, b*(len(ops)+1)),
	}
	t.tagp = unsafe.Pointer(&t.tags[0])
	t.keyp = unsafe.Pointer(&t.keys[0])
	t.aggp = unsafe.Pointer(&t.aggs[0])
	return t, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(rel attr.Set, b int, ops []AggOp, seed uint64) *Table {
	t, err := New(rel, b, ops, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// NewCounter creates a count(*) table: a single Sum aggregate.
func NewCounter(rel attr.Set, b int, seed uint64) (*Table, error) {
	return New(rel, b, []AggOp{Sum}, seed)
}

// Rel returns the relation the table aggregates.
func (t *Table) Rel() attr.Set { return t.rel }

// Buckets returns the number of slots b (the paper's bucket count: one
// resident entry per slot; slots are probed GroupSlots at a time).
func (t *Table) Buckets() int { return t.b }

// Groups returns the number of GroupSlots-wide probe groups.
func (t *Table) Groups() int { return t.ngroups }

// Arity returns the group-key width.
func (t *Table) Arity() int { return t.arity }

// NumAggs returns the number of aggregate slots.
func (t *Table) NumAggs() int { return len(t.ops) }

// EntrySize returns h, the slot size in 4-byte units (arity + #aggs).
func (t *Table) EntrySize() int { return t.arity + len(t.ops) }

// SpaceUnits returns the table's total size in 4-byte units, b·h.
func (t *Table) SpaceUnits() int { return t.b * t.EntrySize() }

// Len returns the number of occupied slots.
func (t *Table) Len() int { return t.live }

// Stats returns a copy of the cumulative operation counters.
func (t *Table) Stats() Stats { return t.stats }

// ResetStats zeroes the operation counters without touching contents.
func (t *Table) ResetStats() { t.stats = Stats{} }

// group returns the base slot index and fingerprint for hash h.
func (t *Table) group(h uint64) (base int, tag uint8) {
	return Reduce(h, t.ngroups) * GroupSlots, tagOf(h)
}

// victimSlot returns the slot evicted when the group at base is full: a
// hash-chosen lane (bits 8-11, disjoint from both the fingerprint and the
// bits fastrange consumes), folded into the final group's usable width.
// It is a pure function of the key, so scalar, batch, and every kernel
// selection evict identically.
func (t *Table) victimSlot(base int, h uint64) int {
	vs := int(h>>8) & (GroupSlots - 1)
	if base == (t.ngroups-1)*GroupSlots && vs >= t.lastW {
		vs %= t.lastW
	}
	return base + vs
}

// clampUpdates narrows a stored update count to the Entry's uint32
// (saturating; a slot would need 2³² folds in one epoch to get here).
func clampUpdates(u int64) uint32 {
	if u >= int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(u)
}

// Probe folds one observation of the group identified by key into the
// table, applying deltas (one per aggregate slot) under the table's ops.
// If the key's hash group is full of other groups, one entry is evicted:
// Probe returns it with collided = true, and its slot is re-initialized
// to the probing group. The returned Entry aliases freshly allocated
// slices and is safe to retain.
//
// key must have length Arity(); deltas must have length NumAggs(). For a
// count(*) table pass deltas = {1}.
func (t *Table) Probe(key []uint32, deltas []int64) (evicted Entry, collided bool) {
	if len(key) != t.arity {
		panic(fmt.Sprintf("hashtab: key arity %d for table %v (arity %d)", len(key), t.rel, t.arity))
	}
	if len(deltas) != len(t.ops) {
		panic(fmt.Sprintf("hashtab: %d deltas for table %v (%d aggs)", len(deltas), t.rel, len(t.ops)))
	}
	t.stats.Probes++
	h := t.hash(key)
	base, tag := t.group(h)
	grp := (*[GroupSlots]uint8)(t.tags[base:])

	for mm := matchTags(grp, tag); mm != 0; mm &= mm - 1 {
		i := base + bits.TrailingZeros16(mm)
		ks := t.keys[i*t.arity : (i+1)*t.arity]
		if equalKeys(ks, key) {
			t.fold(t.aggs[i*t.astride:(i+1)*t.astride], deltas)
			t.stats.Hits++
			return Entry{}, false
		}
		// Fingerprint alias (1/128 per colliding lane): keep scanning.
	}
	if em := matchTags(grp, 0); em != 0 {
		i := base + bits.TrailingZeros16(em)
		t.install(i, tag, t.keys[i*t.arity:(i+1)*t.arity], t.aggs[i*t.astride:(i+1)*t.astride], key, deltas)
		t.live++
		t.stats.Inserts++
		return Entry{}, false
	}
	// Group full with no key match: evict the hash-chosen victim lane.
	i := t.victimSlot(base, h)
	ks := t.keys[i*t.arity : (i+1)*t.arity]
	row := t.aggs[i*t.astride : (i+1)*t.astride]
	up := clampUpdates(row[len(t.ops)])
	evicted = Entry{
		Key:     append([]uint32(nil), ks...),
		Aggs:    append([]int64(nil), row[:len(t.ops)]...),
		Updates: up,
	}
	t.stats.Collisions++
	t.stats.EvictedUpdates += uint64(up)
	t.stats.EvictedEntries++
	t.install(i, tag, ks, row, key, deltas)
	return evicted, true
}

// ProbeInto is the allocation-free variant of Probe used on the LFTA hot
// path. On a collision the victim's key, aggregates and update count are
// copied into victim, reusing its slice capacity; the caller owns victim
// and may retain it until the next ProbeInto with the same scratch.
//
// The resolution kernel is open-coded here rather than shared with the
// batch path's commitProbe (batch.go): a call per probe costs measurably
// more than the duplicated body, and the batched≡scalar property tests
// hold the two copies together.
func (t *Table) ProbeInto(key []uint32, deltas []int64, victim *Entry) (collided bool) {
	if len(key) != t.arity || len(deltas) != len(t.ops) {
		t.probePanic(key, deltas)
	}
	// Sum-only tables of the common arities take a monomorphic kernel
	// (fastprobe.go) with the hash inlined and the key compare collapsed
	// to packed-word compares; behaviour is bit-identical to the generic
	// body below. The dominant arity-2 shape (the paper's two-attribute
	// count/sum tables) is open-coded here so the hot path pays exactly
	// one call frame.
	// The guards re-state what fastKind already implies (arity 2, one
	// delta) in a form the compiler can see, eliminating the bounds
	// checks on the key/delta loads below.
	if t.fastKind == fastSum2 && len(key) == 2 && len(deltas) == 1 {
		t.stats.Probes++
		w := uint64(key[0]) | uint64(key[1])<<32
		h := mixWord(t.seed^gamma2, w)
		base := Reduce(h, t.ngroups) * GroupSlots
		tag := uint8(h) | 0x80
		grp := (*[GroupSlots]uint8)(unsafe.Add(t.tagp, base))
		var mm uint16
		if simdEnabled {
			mm = matchTagsSIMD(grp, tag)
		} else {
			mm = matchTagsGeneric(grp, tag)
		}
		for ; mm != 0; mm &= mm - 1 {
			i := base + bits.TrailingZeros16(mm)
			if *(*uint64)(t.keyPtr(i)) == w {
				row := t.sumRow(i)
				row[0] += deltas[0]
				row[1]++
				t.stats.Hits++
				return false
			}
		}
		var em uint16
		if simdEnabled {
			em = matchTagsSIMD(grp, 0)
		} else {
			em = matchTagsGeneric(grp, 0)
		}
		if em != 0 {
			i := base + bits.TrailingZeros16(em)
			t.tags[i] = tag
			*(*uint64)(t.keyPtr(i)) = w
			row := t.sumRow(i)
			row[0] = deltas[0]
			row[1] = 1
			t.live++
			t.stats.Inserts++
			return false
		}
		i := t.victimSlot(base, h)
		row := t.sumRow(i)
		up := clampUpdates(row[1])
		victim.Key = append(victim.Key[:0], t.keys[i*2:i*2+2]...)
		victim.Aggs = append(victim.Aggs[:0], row[0])
		victim.Updates = up
		t.stats.Collisions++
		t.stats.EvictedUpdates += uint64(up)
		t.stats.EvictedEntries++
		t.tags[i] = tag
		*(*uint64)(t.keyPtr(i)) = w
		row[0] = deltas[0]
		row[1] = 1
		return true
	}
	switch t.fastKind {
	case fastSum1:
		return t.probeSum1(key[0], deltas[0], victim)
	case fastSum4:
		return t.probeSum4(key[0], key[1], key[2], key[3], deltas[0], victim)
	}
	t.stats.Probes++
	h := t.hash(key)
	base, tag := t.group(h)
	grp := (*[GroupSlots]uint8)(t.tags[base:])
	a := t.arity

	// One vector compare classifies the whole group; iterate the (almost
	// always 0- or 1-bit) match mask, confirming with the key compare.
	// Key comparison is open-coded: equalKeys is beyond the inlining
	// budget, and a call per probe costs more than the compare itself.
	var mm uint16
	if simdEnabled {
		mm = matchTagsSIMD(grp, tag)
	} else {
		mm = matchTagsGeneric(grp, tag)
	}
	for ; mm != 0; mm &= mm - 1 {
		i := base + bits.TrailingZeros16(mm)
		ks := t.keys[i*a : i*a+a : i*a+a]
		match := true
		for j := 0; j < a; j++ {
			if ks[j] != key[j] {
				match = false
				break
			}
		}
		if match {
			// Hit — the steady-state common case (1-x of probes): fold
			// the deltas into the resident aggregates.
			if t.sumOnly {
				t.aggs[i*2] += deltas[0]
				t.aggs[i*2+1]++
			} else {
				t.fold(t.aggs[i*t.astride:(i+1)*t.astride], deltas)
			}
			t.stats.Hits++
			return false
		}
		// Fingerprint alias (1/128 per colliding lane): keep scanning.
	}
	var em uint16
	if simdEnabled {
		em = matchTagsSIMD(grp, 0)
	} else {
		em = matchTagsGeneric(grp, 0)
	}
	if em != 0 {
		// Room in the group: install without ever loading a key line.
		i := base + bits.TrailingZeros16(em)
		t.install(i, tag, t.keys[i*a:i*a+a:i*a+a], t.aggs[i*t.astride:(i+1)*t.astride], key, deltas)
		t.live++
		t.stats.Inserts++
		return false
	}
	i := t.victimSlot(base, h)
	ks := t.keys[i*a : i*a+a : i*a+a]
	row := t.aggs[i*t.astride : (i+1)*t.astride]
	up := clampUpdates(row[len(t.ops)])
	victim.Key = append(victim.Key[:0], ks...)
	victim.Aggs = append(victim.Aggs[:0], row[:len(t.ops)]...)
	victim.Updates = up
	t.stats.Collisions++
	t.stats.EvictedUpdates += uint64(up)
	t.stats.EvictedEntries++
	t.install(i, tag, ks, row, key, deltas)
	return true
}

// probePanic reports a key-arity or delta-count mismatch out of line, so
// the fmt machinery stays off the probe hot path.
//
//go:noinline
func (t *Table) probePanic(key []uint32, deltas []int64) {
	if len(key) != t.arity {
		panic(fmt.Sprintf("hashtab: key arity %d for table %v (arity %d)", len(key), t.rel, t.arity))
	}
	panic(fmt.Sprintf("hashtab: %d deltas for table %v (%d aggs)", len(deltas), t.rel, len(t.ops)))
}

// fold merges deltas into a resident slot's aggregate row (len
// NumAggs()+1) and bumps the trailing update count.
func (t *Table) fold(row []int64, deltas []int64) {
	for j, op := range t.ops {
		row[j] = op.Combine(row[j], deltas[j])
	}
	row[len(t.ops)]++
}

// install writes (key, deltas) into slot i's storage slices and stamps
// its fingerprint. row is the slot's full aggregate row (aggregates plus
// update count). The caller adjusts live when the slot was empty.
func (t *Table) install(i int, tag uint8, ks []uint32, row []int64, key []uint32, deltas []int64) {
	t.tags[i] = tag
	copy(ks, key)
	if t.sumOnly {
		row[0] = deltas[0]
	} else {
		for j, op := range t.ops {
			row[j] = op.Combine(op.Identity(), deltas[j])
		}
	}
	row[len(t.ops)] = 1
}

// equalKeys compares two keys of equal arity, unrolled for the short
// keys (arity 1-4) the paper's workloads probe so the resident-group
// fast path pays no loop overhead.
func equalKeys(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	switch len(a) {
	case 1:
		return a[0] == b[0]
	case 2:
		return a[0] == b[0] && a[1] == b[1]
	case 3:
		return a[0] == b[0] && a[1] == b[1] && a[2] == b[2]
	case 4:
		return a[0] == b[0] && a[1] == b[1] && a[2] == b[2] && a[3] == b[3]
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Get looks up the resident entry for key without modifying the table. It
// returns ok = false if the key's hash group holds no matching entry.
func (t *Table) Get(key []uint32) (Entry, bool) {
	if len(key) != t.arity {
		return Entry{}, false
	}
	h := t.hash(key)
	base, tag := t.group(h)
	grp := (*[GroupSlots]uint8)(t.tags[base:])
	for mm := matchTags(grp, tag); mm != 0; mm &= mm - 1 {
		i := base + bits.TrailingZeros16(mm)
		ks := t.keys[i*t.arity : (i+1)*t.arity]
		if !equalKeys(ks, key) {
			continue
		}
		row := t.aggs[i*t.astride : (i+1)*t.astride]
		return Entry{
			Key:     append([]uint32(nil), ks...),
			Aggs:    append([]int64(nil), row[:len(t.ops)]...),
			Updates: clampUpdates(row[len(t.ops)]),
		}, true
	}
	return Entry{}, false
}

// Scan calls fn for every resident entry, in slot order, without
// modifying the table. The Entry passed to fn aliases internal storage and
// must not be retained across calls.
func (t *Table) Scan(fn func(Entry)) {
	for i := 0; i < t.b; i++ {
		if t.tags[i] == 0 {
			continue
		}
		row := t.aggs[i*t.astride : (i+1)*t.astride]
		fn(Entry{
			Key:     t.keys[i*t.arity : (i+1)*t.arity],
			Aggs:    row[:len(t.ops)],
			Updates: clampUpdates(row[len(t.ops)]),
		})
	}
}

// Flush emits every resident entry through fn and clears the table; the
// end-of-epoch operation of the paper. Entries passed to fn are fresh
// copies, safe to retain. The number of flushed entries is returned.
func (t *Table) Flush(fn func(Entry)) int {
	n := 0
	for i := 0; i < t.b; i++ {
		if t.tags[i] == 0 {
			continue
		}
		row := t.aggs[i*t.astride : (i+1)*t.astride]
		e := Entry{
			Key:     append([]uint32(nil), t.keys[i*t.arity:(i+1)*t.arity]...),
			Aggs:    append([]int64(nil), row[:len(t.ops)]...),
			Updates: clampUpdates(row[len(t.ops)]),
		}
		t.tags[i] = 0
		t.stats.Flushes++
		t.stats.EvictedUpdates += uint64(e.Updates)
		t.stats.EvictedEntries++
		n++
		fn(e)
	}
	t.live = 0
	return n
}

// Drain emits every resident entry through fn and clears the table, like
// Flush, but the Entry passed to fn aliases internal table storage: it is
// valid only for the duration of the call and must not be retained. This
// is the allocation-free end-of-epoch path; fn may probe *other* tables
// (the top-down cascade) but must not probe the draining table itself.
func (t *Table) Drain(fn func(Entry)) int {
	n := 0
	for i := 0; i < t.b; i++ {
		if t.tags[i] == 0 {
			continue
		}
		t.tags[i] = 0
		row := t.aggs[i*t.astride : (i+1)*t.astride]
		up := clampUpdates(row[len(t.ops)])
		t.stats.Flushes++
		t.stats.EvictedUpdates += uint64(up)
		t.stats.EvictedEntries++
		n++
		fn(Entry{
			Key:     t.keys[i*t.arity : (i+1)*t.arity],
			Aggs:    row[:len(t.ops)],
			Updates: up,
		})
	}
	t.live = 0
	return n
}

// Clear empties the table without emitting entries or touching stats.
func (t *Table) Clear() {
	for i := 0; i < t.b; i++ {
		t.tags[i] = 0
	}
	t.live = 0
}
