package hashtab

import "math/bits"

// Word-at-a-time key hashing. The tables' previous hash was a byte-wise
// 64-bit FNV-1a: four multiplies per 4-byte attribute word plus a final
// avalanche, all on the probe hot path (the paper's c1 operation). The
// kernel here consumes the key in 64-bit chunks — two attribute words
// packed per chunk — and runs one splitmix64 round per chunk: two
// multiplies per 8 bytes instead of eight, with the same full-avalanche
// quality (validated against the binomial occupancy model in package
// tests, which gate the paper's random-hash assumption).
//
// Bucket reduction uses Lemire's fastrange instead of a modulo: the
// space allocator hands tables arbitrary bucket counts (not powers of
// two), so masking is not an option, and a 64-bit division costs more
// than the whole hash. fastrange maps a uniform 64-bit hash h to
// ⌊h·b / 2^64⌋ — a single widening multiply — and preserves uniformity:
// each bucket receives either ⌊2^64/b⌋ or ⌈2^64/b⌉ of the 2^64 hash
// values, a relative bias of at most b/2^64 (≈ 10^-15 for the largest
// tables the allocator produces), far below what the collision model's
// binomial approximation can resolve.

// hashGamma is the splitmix64 increment; it also seeds the key length
// into the initial state so keys that differ only by trailing zero
// words hash differently.
const hashGamma = 0x9e3779b97f4a7c15

// mixWord folds one 64-bit chunk into the running state with a full
// splitmix64 round (the output permutation applied to state + chunk).
func mixWord(h, w uint64) uint64 {
	x := h + w + hashGamma
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashWords mixes the 4-byte words of key with seed, word-at-a-time.
// It is the one shared mixing kernel of the system: table probes
// (Table.hash specializes it per arity), shard routing
// (lfta.Sharded.ShardOf), and any other consumer that must agree with
// the tables' random-hash behaviour.
func HashWords(seed uint64, key []uint32) uint64 {
	h := seed ^ hashGamma*uint64(len(key))
	i := 0
	for ; i+2 <= len(key); i += 2 {
		h = mixWord(h, uint64(key[i])|uint64(key[i+1])<<32)
	}
	if i < len(key) {
		h = mixWord(h, uint64(key[i]))
	}
	return h
}

// Reduce maps a 64-bit hash onto [0, n) by fastrange. n must be
// positive.
func Reduce(h uint64, n int) int {
	hi, _ := bits.Mul64(h, uint64(n))
	return int(hi)
}

// tagOf derives a slot's 8-bit fingerprint from the hash. The tag must
// come from the LOW hash bits: fastrange consumes the high bits for the
// group index, so keys sharing a group share their top ~log2(ngroups)
// bits and a high-bit tag would be constant within a group. The top tag
// bit is always set so a stored tag is never 0 (the reserved empty-slot
// marker) and never tagDisabled (0x01, the pad-lane marker of a partial
// final group) — leaving 7 bits of discrimination (a 1/128
// false-positive rate per co-resident lane, resolved by the key
// compare). Bits 8-11, untouched by either consumer, pick the victim
// lane when a full group evicts (Table.victimSlot).
func tagOf(h uint64) uint8 {
	return uint8(h) | 0x80
}

// hashGamma·len, wrapped mod 2^64 (the constant products overflow
// untyped arithmetic): the per-arity initial states of Table.hash and
// the monomorphic probe kernels (fastprobe.go), which must produce
// hashes bit-identical to HashWords.
const (
	gamma1 = hashGamma
	gamma2 = 0x3c6ef372fe94f82a
	gamma3 = 0xdaa66d2c7ddf743f
	gamma4 = 0x78dde6e5fd29f054
)

// hash mixes the key with the table seed: HashWords unrolled for the
// arities the paper's workloads probe (1-4 attributes). The results are
// bit-identical to HashWords(t.seed, key) — TestHashMatchesHashWords
// holds the specializations to that.
func (t *Table) hash(key []uint32) uint64 {
	switch len(key) {
	case 1:
		return mixWord(t.seed^gamma1, uint64(key[0]))
	case 2:
		return mixWord(t.seed^gamma2, uint64(key[0])|uint64(key[1])<<32)
	case 3:
		h := mixWord(t.seed^gamma3, uint64(key[0])|uint64(key[1])<<32)
		return mixWord(h, uint64(key[2]))
	case 4:
		h := mixWord(t.seed^gamma4, uint64(key[0])|uint64(key[1])<<32)
		return mixWord(h, uint64(key[2])|uint64(key[3])<<32)
	default:
		return HashWords(t.seed, key)
	}
}

// Bucket returns the key's hash image in slot space [0, b): the slot a
// one-slot-per-bucket table would probe. Placement is group-granular
// (fastrange over ngroups — Bucket/GroupSlots when b is a multiple of
// GroupSlots), but Bucket remains the uniformity and seed-independence
// witness the hash-quality tests check.
func (t *Table) Bucket(key []uint32) int {
	return Reduce(t.hash(key), t.b)
}
