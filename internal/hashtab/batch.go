package hashtab

import (
	"fmt"
	"unsafe"
)

// Batch probing: the memory-level-parallelism kernel of the table.
//
// A scalar ProbeInto pays one dependent cache-miss chain per probe —
// hash, then wait for the bucket lines — and on eviction-heavy streams
// the data-dependent branches mispredict constantly, flushing whatever
// lookahead the out-of-order core had built across loop iterations.
// ProbeBatchInto decouples address generation from resolution: a setup
// pass hashes every key in the run and records its bucket index and
// fingerprint (pure compute, no memory traffic); the commit pass then
// resolves probes in order while software-prefetching the tag byte, key
// words, and aggregate words of the bucket prefetchDist probes ahead.
// Branch mispredicts in the commit loop no longer cost a serialized
// miss: the flushed lookahead's lines are already in flight.
//
// The commit pass re-reads each bucket's tag fresh rather than trusting
// the setup pass: two records with the same key inside one run must
// resolve against each other (first installs, second hits) exactly as
// they would through scalar probes. Only the hash work (bucket index and
// fingerprint, pure functions of the key) is precomputed.

// prefetchDist is how many probes ahead of the commit point the three
// bucket lines are requested. The lead time is prefetchDist × the warm
// commit cost (~15-20 ns), which must cover a DRAM miss (~100 ns), so
// distances below ~8 arrive late; much larger distances ask for more
// outstanding lines than the core's ~10-16 miss buffers track, and the
// overflow is silently dropped. 16 is comfortably inside both walls.
const prefetchDist = 16

// prefetchMinBytes gates prefetching by table size. Tables that fit
// comfortably in cache hit L1/L2 anyway, and the three prefetch calls
// (~4-5 ns, the stubs are assembly and cannot inline) would be pure
// overhead per probe; tables past this size miss to L3/DRAM where each
// hidden miss repays the calls many times over.
const prefetchMinBytes = 256 << 10

// VictimRun collects the collision victims of a batch probe in columnar
// form: Keys holds Len()×arity key words and Aggs holds Len()×NumAggs()
// aggregate values, both in eviction order. The layout is exactly a
// probe run, so a cascade feeds victims onward by projecting Keys into a
// child key run and passing Aggs as the child's deltas verbatim. The
// slices are reused across Resets; steady state appends nothing.
type VictimRun struct {
	Keys []uint32
	Aggs []int64

	n     int
	arity int
	naggs int
}

// Reset empties the run and fixes the per-victim widths.
func (r *VictimRun) Reset(arity, naggs int) {
	r.Keys = r.Keys[:0]
	r.Aggs = r.Aggs[:0]
	r.n = 0
	r.arity = arity
	r.naggs = naggs
}

// Len returns the number of victims in the run.
func (r *VictimRun) Len() int { return r.n }

// Key returns the i-th victim's key, aliasing the run's storage.
func (r *VictimRun) Key(i int) []uint32 {
	return r.Keys[i*r.arity : (i+1)*r.arity]
}

// AggRow returns the i-th victim's aggregates, aliasing the run's
// storage.
func (r *VictimRun) AggRow(i int) []int64 {
	return r.Aggs[i*r.naggs : (i+1)*r.naggs]
}

// ProbeBatchInto probes a run of keys (flat, len = n×Arity()) with
// per-key deltas (flat, len = n×NumAggs()) and appends every collision
// victim to out, which is reset first. Outcomes, statistics, and final
// table contents are identical to n scalar ProbeInto calls in the same
// order; only the memory access schedule differs. The run's keys and
// deltas are read, never retained.
func (t *Table) ProbeBatchInto(keys []uint32, deltas []int64, out *VictimRun) {
	a := t.arity
	na := len(t.ops)
	if len(keys)%a != 0 {
		panic(fmt.Sprintf("hashtab: batch key run of %d words for table %v (arity %d)", len(keys), t.rel, a))
	}
	n := len(keys) / a
	if len(deltas) != n*na {
		panic(fmt.Sprintf("hashtab: %d batch deltas for %d probes of table %v (%d aggs)", len(deltas), n, t.rel, na))
	}
	out.Reset(a, na)
	if cap(t.batchIdx) < n {
		t.batchIdx = make([]int, n)
		t.batchTag = make([]uint8, n)
	}
	idx := t.batchIdx[:n]
	tg := t.batchTag[:n]

	// Setup pass: hash and classify the whole run — pure compute, so it
	// never competes with the bucket traffic it schedules.
	for k := 0; k < n; k++ {
		o := k * a
		h := t.hash(keys[o : o+a : o+a])
		idx[k] = Reduce(h, t.b)
		tg[k] = tagOf(h)
	}

	// Commit pass: resolve in order against fresh bucket state, keeping
	// the bucket prefetchDist probes ahead in flight.
	if t.SpaceUnits()*4 >= prefetchMinBytes {
		warm := prefetchDist
		if warm > n {
			warm = n
		}
		for k := 0; k < warm; k++ {
			i := idx[k]
			prefetch(unsafe.Pointer(&t.tags[i]))
			prefetch(unsafe.Pointer(&t.keys[i*a]))
			prefetch(unsafe.Pointer(&t.aggs[i*na]))
		}
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				i := idx[k+prefetchDist]
				prefetch(unsafe.Pointer(&t.tags[i]))
				prefetch(unsafe.Pointer(&t.keys[i*a]))
				prefetch(unsafe.Pointer(&t.aggs[i*na]))
			}
			t.stats.Probes++
			t.commitProbe(idx[k], tg[k], keys[k*a:k*a+a:k*a+a], deltas[k*na:k*na+na:k*na+na], out)
		}
		return
	}
	for k := 0; k < n; k++ {
		t.stats.Probes++
		t.commitProbe(idx[k], tg[k], keys[k*a:k*a+a:k*a+a], deltas[k*na:k*na+na:k*na+na], out)
	}
}

// commitProbe resolves one batch probe against a precomputed bucket
// index and fingerprint, appending any victim to out. It mirrors the
// open-coded kernel of ProbeInto exactly (the batched≡scalar property
// tests hold the two together); the only difference is where the victim
// lands.
func (t *Table) commitProbe(i int, tag uint8, key []uint32, deltas []int64, out *VictimRun) {
	a := t.arity
	rt := t.tags[i]
	if rt == tag {
		ks := t.keys[i*a : i*a+a : i*a+a]
		match := true
		for j := 0; j < a; j++ {
			if ks[j] != key[j] {
				match = false
				break
			}
		}
		if match {
			up := t.updates[i]
			if t.sumOnly {
				t.aggs[i] += deltas[0]
				if up != ^uint32(0) {
					t.updates[i] = up + 1
				}
			} else {
				as := t.aggs[i*len(t.ops) : (i+1)*len(t.ops)]
				t.fold(i, as, deltas, up)
			}
			t.stats.Hits++
			return
		}
	}
	ks := t.keys[i*a : i*a+a : i*a+a]
	as := t.aggs[i*len(t.ops) : (i+1)*len(t.ops)]
	if rt == 0 {
		t.install(i, tag, ks, as, key, deltas)
		t.live++
		t.stats.Inserts++
		return
	}
	up := t.updates[i]
	out.Keys = append(out.Keys, ks...)
	out.Aggs = append(out.Aggs, as...)
	out.n++
	t.stats.Collisions++
	t.stats.EvictedUpdates += uint64(up)
	t.stats.EvictedEntries++
	t.install(i, tag, ks, as, key, deltas)
}
