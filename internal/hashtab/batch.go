package hashtab

import (
	"fmt"
	"math/bits"
	"unsafe"
)

// Batch probing: the memory-level-parallelism kernel of the table.
//
// A scalar ProbeInto pays one dependent cache-miss chain per probe —
// hash, then wait for the group lines — and on eviction-heavy streams
// the data-dependent branches mispredict constantly, flushing whatever
// lookahead the out-of-order core had built across loop iterations.
// ProbeBatchInto decouples address generation from resolution: a setup
// pass hashes every key in the run and records its group base, its
// fingerprint, and its hash-chosen victim lane (pure compute, no memory
// traffic); the commit pass then resolves probes in order while
// software-prefetching the group's 16-byte tag vector plus the victim
// lane's key and aggregate lines prefetchDist probes ahead. Branch
// mispredicts in the commit loop no longer cost a serialized miss: the
// flushed lookahead's lines are already in flight.
//
// The commit pass re-reads each group's tag vector fresh rather than
// trusting the setup pass: two records with the same key inside one run
// must resolve against each other (first installs, second hits) exactly
// as they would through scalar probes. Only the hash work (group base,
// fingerprint, victim lane — pure functions of the key) is precomputed.

// prefetchDist is how many probes ahead of the commit point the three
// group lines are requested. The lead time is prefetchDist × the warm
// commit cost (~10-15 ns), which must cover a DRAM miss (~100 ns), so
// distances below ~8 arrive late; much larger distances ask for more
// outstanding lines than the core's ~10-16 miss buffers track, and the
// overflow is silently dropped. With three lines per probe in flight,
// 12 measured best on the miss-heavy 40 MB fixture (16 and 24 within
// noise, 32 clearly past the miss-buffer wall).
const prefetchDist = 12

// prefetchMinBytes gates prefetching by table size. Tables that fit
// comfortably in cache hit L1/L2 anyway, and the three prefetch calls
// (~4-5 ns, the stubs are assembly and cannot inline) would be pure
// overhead per probe; tables past this size miss to L3/DRAM where each
// hidden miss repays the calls many times over.
const prefetchMinBytes = 256 << 10

// VictimRun collects the collision victims of a batch probe in columnar
// form: Keys holds Len()×arity key words and Aggs holds Len()×NumAggs()
// aggregate values, both in eviction order. The layout is exactly a
// probe run, so a cascade feeds victims onward by projecting Keys into a
// child key run and passing Aggs as the child's deltas verbatim. The
// slices are reused across Resets; steady state appends nothing.
type VictimRun struct {
	Keys []uint32
	Aggs []int64

	n     int
	arity int
	naggs int
}

// Reset empties the run and fixes the per-victim widths.
func (r *VictimRun) Reset(arity, naggs int) {
	r.Keys = r.Keys[:0]
	r.Aggs = r.Aggs[:0]
	r.n = 0
	r.arity = arity
	r.naggs = naggs
}

// Len returns the number of victims in the run.
func (r *VictimRun) Len() int { return r.n }

// Key returns the i-th victim's key, aliasing the run's storage.
func (r *VictimRun) Key(i int) []uint32 {
	return r.Keys[i*r.arity : (i+1)*r.arity]
}

// AggRow returns the i-th victim's aggregates, aliasing the run's
// storage.
func (r *VictimRun) AggRow(i int) []int64 {
	return r.Aggs[i*r.naggs : (i+1)*r.naggs]
}

// ProbeBatchInto probes a run of keys (flat, len = n×Arity()) with
// per-key deltas (flat, len = n×NumAggs()) and appends every collision
// victim to out, which is reset first. Outcomes, statistics, and final
// table contents are identical to n scalar ProbeInto calls in the same
// order; only the memory access schedule differs. The run's keys and
// deltas are read, never retained.
func (t *Table) ProbeBatchInto(keys []uint32, deltas []int64, out *VictimRun) {
	a := t.arity
	na := len(t.ops)
	if len(keys)%a != 0 {
		panic(fmt.Sprintf("hashtab: batch key run of %d words for table %v (arity %d)", len(keys), t.rel, a))
	}
	n := len(keys) / a
	if len(deltas) != n*na {
		panic(fmt.Sprintf("hashtab: %d batch deltas for %d probes of table %v (%d aggs)", len(deltas), n, t.rel, na))
	}
	out.Reset(a, na)
	if cap(t.batchIdx) < n {
		t.batchIdx = make([]int, n)
		t.batchTag = make([]uint8, n)
		t.batchVic = make([]uint8, n)
	}
	// Sum-only arity-2 runs (the dominant shape of the paper's workloads)
	// take the monomorphic batch kernel: inline hashing in the setup pass
	// and packed-word commits, same prefetch schedule (fastprobe.go).
	if t.fastKind == fastSum2 && n > 0 {
		t.probeBatchSum2(keys, deltas, out, n)
		return
	}
	idx := t.batchIdx[:n]
	tg := t.batchTag[:n]
	vic := t.batchVic[:n]

	// Setup pass: hash and classify the whole run — pure compute, so it
	// never competes with the group traffic it schedules. idx holds the
	// group's base slot; vic its victim lane, already folded into a
	// partial final group's width so the commit pass needs no width
	// check.
	for k := 0; k < n; k++ {
		o := k * a
		h := t.hash(keys[o : o+a : o+a])
		base, tag := t.group(h)
		idx[k] = base
		tg[k] = tag
		vic[k] = uint8(t.victimSlot(base, h) - base)
	}

	// Commit pass: resolve in order against fresh group state, keeping
	// the group prefetchDist probes ahead in flight. The tag prefetch
	// covers the whole 16-byte vector (one aligned line); the entry
	// prefetches target the victim lane — exact for evictions, and
	// within the group's span for hits and installs.
	if t.SpaceUnits()*4 >= prefetchMinBytes {
		warm := prefetchDist
		if warm > n {
			warm = n
		}
		for k := 0; k < warm; k++ {
			i := idx[k] + int(vic[k])
			prefetch3(unsafe.Pointer(&t.tags[idx[k]]), unsafe.Pointer(&t.keys[i*a]), unsafe.Pointer(&t.aggs[i*t.astride]))
		}
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				i := idx[k+prefetchDist] + int(vic[k+prefetchDist])
				prefetch3(unsafe.Pointer(&t.tags[idx[k+prefetchDist]]), unsafe.Pointer(&t.keys[i*a]), unsafe.Pointer(&t.aggs[i*t.astride]))
			}
			t.stats.Probes++
			t.commitProbe(idx[k], tg[k], int(vic[k]), keys[k*a:k*a+a:k*a+a], deltas[k*na:k*na+na:k*na+na], out)
		}
		return
	}
	for k := 0; k < n; k++ {
		t.stats.Probes++
		t.commitProbe(idx[k], tg[k], int(vic[k]), keys[k*a:k*a+a:k*a+a], deltas[k*na:k*na+na:k*na+na], out)
	}
}

// commitProbe resolves one batch probe against a precomputed group base,
// fingerprint, and victim lane, appending any victim to out. It mirrors
// the open-coded kernel of ProbeInto exactly (the batched≡scalar
// property tests hold the two together); the only difference is where
// the victim lands.
func (t *Table) commitProbe(base int, tag uint8, vs int, key []uint32, deltas []int64, out *VictimRun) {
	a := t.arity
	grp := (*[GroupSlots]uint8)(t.tags[base:])
	var mm uint16
	if simdEnabled {
		mm = matchTagsSIMD(grp, tag)
	} else {
		mm = matchTagsGeneric(grp, tag)
	}
	for ; mm != 0; mm &= mm - 1 {
		i := base + bits.TrailingZeros16(mm)
		ks := t.keys[i*a : i*a+a : i*a+a]
		match := true
		for j := 0; j < a; j++ {
			if ks[j] != key[j] {
				match = false
				break
			}
		}
		if match {
			if t.sumOnly {
				t.aggs[i*2] += deltas[0]
				t.aggs[i*2+1]++
			} else {
				t.fold(t.aggs[i*t.astride:(i+1)*t.astride], deltas)
			}
			t.stats.Hits++
			return
		}
	}
	var em uint16
	if simdEnabled {
		em = matchTagsSIMD(grp, 0)
	} else {
		em = matchTagsGeneric(grp, 0)
	}
	if em != 0 {
		i := base + bits.TrailingZeros16(em)
		t.install(i, tag, t.keys[i*a:i*a+a:i*a+a], t.aggs[i*t.astride:(i+1)*t.astride], key, deltas)
		t.live++
		t.stats.Inserts++
		return
	}
	i := base + vs
	ks := t.keys[i*a : i*a+a : i*a+a]
	row := t.aggs[i*t.astride : (i+1)*t.astride]
	up := clampUpdates(row[len(t.ops)])
	out.Keys = append(out.Keys, ks...)
	out.Aggs = append(out.Aggs, row[:len(t.ops)]...)
	out.n++
	t.stats.Collisions++
	t.stats.EvictedUpdates += uint64(up)
	t.stats.EvictedEntries++
	t.install(i, tag, ks, row, key, deltas)
}
