package hashtab

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
)

// buildRun generates n random keys (flat, n×arity) with enough repetition
// that runs contain duplicate keys — the case the commit pass must
// resolve against fresh bucket state — plus matching per-probe deltas.
func buildRun(rng *rand.Rand, n, arity, naggs, universe int) ([]uint32, []int64) {
	keys := make([]uint32, 0, n*arity)
	deltas := make([]int64, 0, n*naggs)
	for i := 0; i < n; i++ {
		g := rng.Intn(universe)
		for j := 0; j < arity; j++ {
			keys = append(keys, uint32(g*31+j*7))
		}
		for j := 0; j < naggs; j++ {
			deltas = append(deltas, int64(rng.Intn(100)-20))
		}
	}
	return keys, deltas
}

// collectScalar replays a run through ProbeInto, gathering victims in
// eviction order.
func collectScalar(t *Table, keys []uint32, deltas []int64) (vkeys []uint32, vaggs []int64) {
	a, na := t.Arity(), t.NumAggs()
	n := len(keys) / a
	var victim Entry
	for i := 0; i < n; i++ {
		if t.ProbeInto(keys[i*a:(i+1)*a], deltas[i*na:(i+1)*na], &victim) {
			vkeys = append(vkeys, victim.Key...)
			vaggs = append(vaggs, victim.Aggs...)
		}
	}
	return vkeys, vaggs
}

// TestProbeBatchMatchesScalar holds ProbeBatchInto to bit-identical
// behaviour with scalar ProbeInto: same victims in the same order, same
// statistics, same final table contents — across arities, aggregate
// shapes, table sizes (spanning the prefetch gate), and run lengths that
// exercise partial chunks.
func TestProbeBatchMatchesScalar(t *testing.T) {
	cases := []struct {
		name     string
		arity    int
		ops      []AggOp
		buckets  int
		universe int
	}{
		{"count-small", 2, []AggOp{Sum}, 512, 900},
		{"count-large", 2, []AggOp{Sum}, 1 << 16, 90000},
		{"multi-agg", 3, []AggOp{Sum, Min, Max}, 4096, 6000},
		{"arity1-dense-dups", 1, []AggOp{Sum}, 257, 40},
		{"arity4", 4, []AggOp{Sum, Max}, 1 << 15, 50000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rel := attr.MustParseSet("ABCD"[:tc.arity])
			rng := rand.New(rand.NewSource(int64(tc.buckets)))
			scalar := MustNew(rel, tc.buckets, tc.ops, 42)
			batched := MustNew(rel, tc.buckets, tc.ops, 42)
			var out VictimRun
			// Run lengths chosen to hit exact chunks, partial tails, and
			// sub-chunk runs.
			for _, n := range []int{1, 63, 64, 65, 200, 512, 1000} {
				keys, deltas := buildRun(rng, n, tc.arity, len(tc.ops), tc.universe)
				wantK, wantA := collectScalar(scalar, keys, deltas)
				batched.ProbeBatchInto(keys, deltas, &out)
				if got := out.Len(); got != len(wantK)/tc.arity {
					t.Fatalf("n=%d: %d batch victims, scalar %d", n, got, len(wantK)/tc.arity)
				}
				for i := 0; i < out.Len(); i++ {
					ks, as := out.Key(i), out.AggRow(i)
					for j := range ks {
						if ks[j] != wantK[i*tc.arity+j] {
							t.Fatalf("n=%d victim %d key differs", n, i)
						}
					}
					for j := range as {
						if as[j] != wantA[i*len(tc.ops)+j] {
							t.Fatalf("n=%d victim %d aggs differ", n, i)
						}
					}
				}
				if sc, bt := scalar.Stats(), batched.Stats(); sc != bt {
					t.Fatalf("n=%d: stats diverge: scalar %+v batch %+v", n, sc, bt)
				}
			}
			if scalar.Len() != batched.Len() {
				t.Fatalf("live count diverges: %d vs %d", scalar.Len(), batched.Len())
			}
			scalar.Scan(func(e Entry) {
				got, ok := batched.Get(e.Key)
				if !ok {
					t.Fatalf("batched table missing key %v", e.Key)
				}
				if got.Updates != e.Updates {
					t.Fatalf("updates differ for %v: %d vs %d", e.Key, got.Updates, e.Updates)
				}
				for j := range e.Aggs {
					if got.Aggs[j] != e.Aggs[j] {
						t.Fatalf("aggs differ for %v", e.Key)
					}
				}
			})
		})
	}
}

// TestProbeBatchDuplicateKeysInChunk pins the fresh-tag-read requirement
// directly: a run that is one key repeated must produce one insert and
// n-1 hits, never a self-collision from stale setup-pass state.
func TestProbeBatchDuplicateKeysInChunk(t *testing.T) {
	tab := MustNew(attr.MustParseSet("AB"), 1024, []AggOp{Sum}, 7)
	keys := make([]uint32, 0, 200*2)
	deltas := make([]int64, 0, 200)
	for i := 0; i < 200; i++ {
		keys = append(keys, 11, 22)
		deltas = append(deltas, 1)
	}
	var out VictimRun
	tab.ProbeBatchInto(keys, deltas, &out)
	if out.Len() != 0 {
		t.Fatalf("%d victims from a single-key run", out.Len())
	}
	st := tab.Stats()
	if st.Inserts != 1 || st.Hits != 199 || st.Collisions != 0 {
		t.Fatalf("stats %+v, want 1 insert / 199 hits / 0 collisions", st)
	}
	e, ok := tab.Get([]uint32{11, 22})
	if !ok || e.Aggs[0] != 200 {
		t.Fatalf("resident entry %+v ok=%v, want sum 200", e, ok)
	}
}

// TestProbeBatchZeroAllocSteadyState proves the batch kernel allocates
// nothing once its chunk scratch and the caller's VictimRun have warmed.
func TestProbeBatchZeroAllocSteadyState(t *testing.T) {
	tab := MustNew(attr.MustParseSet("AB"), 4096, []AggOp{Sum}, 9)
	rng := rand.New(rand.NewSource(5))
	keys, deltas := buildRun(rng, 512, 2, 1, 9000)
	var out VictimRun
	tab.ProbeBatchInto(keys, deltas, &out) // warm scratch + victim capacity
	avg := testing.AllocsPerRun(50, func() {
		tab.ProbeBatchInto(keys, deltas, &out)
	})
	if avg != 0 {
		t.Fatalf("ProbeBatchInto allocates %.1f per run in steady state", avg)
	}
}

// TestTagAliasDistinctKeys pins the 1/128 fingerprint-alias case: keys
// that are distinct but share both their group and their 8-bit tag. The
// tag scan reports every aliased lane as a probable hit, and only the
// key compare may separate them — each aliased key must get its own
// slot, re-probes must fold into the right entry, and the batch path
// must agree with scalar bit-for-bit. Runs under both kernels.
func TestTagAliasDistinctKeys(t *testing.T) {
	defer SetSIMD(SIMDEnabled())
	for _, simd := range []bool{false, true} {
		if !SetSIMD(simd) && simd {
			continue // no vector kernel on this CPU
		}
		t.Run("kernel="+KernelName(), func(t *testing.T) {
			rel := attr.MustParseSet("AB")
			probe := MustNew(rel, 1024, []AggOp{Sum}, 42)

			// Mine keys sharing (group, tag) under the table's seed.
			type gt struct {
				base int
				tag  uint8
			}
			aliases := map[gt][][]uint32{}
			var hit gt
			for k := uint32(0); ; k++ {
				key := []uint32{k, k * 3}
				base, tag := probe.group(probe.hash(key))
				id := gt{base, tag}
				aliases[id] = append(aliases[id], key)
				if len(aliases[id]) == 4 {
					hit = id
					break
				}
			}
			keys := aliases[hit]

			scalar := MustNew(rel, 1024, []AggOp{Sum}, 42)
			batched := MustNew(rel, 1024, []AggOp{Sum}, 42)

			// Interleave the aliases twice over: insert each, then re-probe
			// each, so hits must discriminate among four same-tag lanes.
			var flat []uint32
			var deltas []int64
			for round := 0; round < 2; round++ {
				for i, key := range keys {
					flat = append(flat, key...)
					deltas = append(deltas, int64(1+i+10*round))
				}
			}
			var victim Entry
			for i := 0; i < len(deltas); i++ {
				if scalar.ProbeInto(flat[i*2:i*2+2], deltas[i:i+1], &victim) {
					t.Fatalf("probe %d evicted from a near-empty table", i)
				}
			}
			var out VictimRun
			batched.ProbeBatchInto(flat, deltas, &out)
			if out.Len() != 0 {
				t.Fatalf("batch evicted %d victims from a near-empty table", out.Len())
			}

			for _, tab := range []*Table{scalar, batched} {
				st := tab.Stats()
				if st.Inserts != uint64(len(keys)) || st.Hits != uint64(len(deltas)-len(keys)) {
					t.Fatalf("stats %+v, want %d inserts / %d hits", st, len(keys), len(deltas)-len(keys))
				}
				for i, key := range keys {
					e, ok := tab.Get(key)
					if !ok {
						t.Fatalf("aliased key %v missing", key)
					}
					want := int64(1+i) + int64(11+i)
					if e.Aggs[0] != want {
						t.Fatalf("aliased key %v sum = %d, want %d", key, e.Aggs[0], want)
					}
					if e.Updates != 2 {
						t.Fatalf("aliased key %v updates = %d, want 2", key, e.Updates)
					}
				}
			}
			if sc, bt := scalar.Stats(), batched.Stats(); sc != bt {
				t.Fatalf("stats diverge: scalar %+v batch %+v", sc, bt)
			}
		})
	}
}
