//go:build amd64 || arm64

package hashtab

import "unsafe"

// prefetch issues a best-effort prefetch of the cache line containing p
// into L1d (PREFETCHT0 on amd64, PRFM PLDL1KEEP on arm64). It is purely
// a hint: no fault is raised for bad addresses and the load may be
// dropped, so callers need no validity guarantees beyond what Go's
// pointer rules already give them.
//
// The stub is assembly, so unlike an intrinsic it costs a real (if
// NOSPLIT, argument-in-register-free) call — about 1.5 ns. That is only
// worth paying when the line it hides is likely a miss costing ~100 ns:
// the batch kernel issues it for bucket entry lines of large tables, not
// for the dense tag array of small ones.
//
//go:noescape
func prefetch(p unsafe.Pointer)

// prefetch3 issues prefetches for three cache lines in one call: the
// batch commit loop wants a probe's tag vector, key line, and aggregate
// line in flight together, and one stub call costs a third of three.
//
//go:noescape
func prefetch3(p0, p1, p2 unsafe.Pointer)
