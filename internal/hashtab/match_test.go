package hashtab

import (
	"math/rand"
	"testing"
)

// refMatch is the obvious-by-inspection oracle for the tag-scan kernels.
func refMatch(g *[GroupSlots]uint8, tag uint8) uint16 {
	var m uint16
	for i, v := range g {
		if v == tag {
			m |= 1 << i
		}
	}
	return m
}

// TestMatchTagsKernels holds every kernel (generic SWAR, and the
// arch-vector kernel when this CPU has one) to the oracle over adversarial
// tag vectors: empty lanes (0), disabled pad lanes (0x01), real
// fingerprints (bit 7 set), and the probing tag itself in 0..16 lanes.
func TestMatchTagsKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	kernels := []struct {
		name string
		fn   func(*[GroupSlots]uint8, uint8) uint16
	}{{"generic", matchTagsGeneric}}
	if SIMDAvailable() {
		kernels = append(kernels, struct {
			name string
			fn   func(*[GroupSlots]uint8, uint8) uint16
		}{kernelNameArch, matchTagsSIMD})
	} else {
		t.Log("no vector kernel on this CPU; generic only")
	}
	pool := []uint8{0, 0, tagDisabled, 0x80, 0x81, 0xff, 0xd3, 0x80}
	for trial := 0; trial < 20000; trial++ {
		var g [GroupSlots]uint8
		for i := range g {
			g[i] = pool[rng.Intn(len(pool))]
		}
		// Probe with every distinct value in play plus the empty marker.
		for _, tag := range []uint8{0, tagDisabled, 0x80, 0x81, 0xff, 0xd3, uint8(rng.Intn(256))} {
			want := refMatch(&g, tag)
			for _, k := range kernels {
				if got := k.fn(&g, tag); got != want {
					t.Fatalf("%s(%v, %#x) = %#x, want %#x", k.name, g, tag, got, want)
				}
			}
		}
	}
}

// TestMatchTagsGenericNoBorrowFalsePositive pins the SWAR pitfall
// directly: the inexact zero-byte idiom (v-0x01…)&^v&0x80… reports a
// 0x01 byte sitting above a 0x00 byte as zero, which in this table would
// install entries into the disabled pad lanes of a partial final group.
func TestMatchTagsGenericNoBorrowFalsePositive(t *testing.T) {
	g := [GroupSlots]uint8{0x00, tagDisabled, 0x00, tagDisabled}
	for i := 4; i < GroupSlots; i++ {
		g[i] = tagDisabled
	}
	if got := matchTagsGeneric(&g, 0); got != 0b101 {
		t.Fatalf("empty mask = %#b, want 0b101 (disabled lanes leaked)", got)
	}
}

// TestSetSIMD pins the override contract: disabling always sticks,
// enabling only when the CPU has a kernel, and KernelName reports the
// selection in effect.
func TestSetSIMD(t *testing.T) {
	orig := SIMDEnabled()
	defer SetSIMD(orig)
	if SetSIMD(false) {
		t.Fatal("SetSIMD(false) reported vector kernel in effect")
	}
	if KernelName() != "generic" {
		t.Fatalf("KernelName = %q with SIMD off", KernelName())
	}
	got := SetSIMD(true)
	if got != SIMDAvailable() {
		t.Fatalf("SetSIMD(true) = %v, available %v", got, SIMDAvailable())
	}
	if got && KernelName() != kernelNameArch {
		t.Fatalf("KernelName = %q, want %q", KernelName(), kernelNameArch)
	}
}
