package hashtab

import (
	"fmt"
	"math/bits"
	"unsafe"

	"repro/internal/attr"
)

// Selection-aware columnar entry points. A vectorized WHERE leaves a
// column batch with a 64-bit-per-word selection bitmap instead of a
// compacted copy; these kernels consume the columns plus the bitmap
// directly, iterating set bits so dead lanes cost nothing — no gather,
// no hash, no probe. Selected lanes are processed in ascending lane
// order, so results are bit-identical to compacting the batch first and
// calling the dense twins (HashColumns / ProbeColumnsInto).
//
// The bitmap follows the selvec convention: bit j of word w covers lane
// w*64+j, and dead bits past lane n-1 are zero (so popcounts over whole
// words are exact). The package does not import selvec — a []uint64 is
// the whole contract — which keeps hashtab at the bottom of the
// dependency order.

// selWords returns the number of selection words covering n lanes.
func selWords(n int) int { return (n + 63) >> 6 }

// selCount returns the number of selected lanes.
func selCount(sel []uint64, n int) int {
	total := 0
	for _, w := range sel[:selWords(n)] {
		total += bits.OnesCount64(w)
	}
	return total
}

// HashColumnsSel writes HashWords(seed, row i) for every selected row i
// of a column-major key block compactly into out, in ascending lane
// order, and returns the number of hashes written. cols is one slice
// per key word, each with at least n lanes; out must have room for the
// selection popcount. Hashes are bit-identical to HashColumns on the
// compacted rows.
func HashColumnsSel(seed uint64, cols [][]uint32, n int, sel []uint64, out []uint64) int {
	if n == 0 {
		return 0
	}
	nw := selWords(n)
	m := 0
	switch len(cols) {
	case 1:
		c0 := cols[0]
		init := seed ^ gamma1
		for wi := 0; wi < nw; wi++ {
			base := wi << 6
			for w := sel[wi]; w != 0; w &= w - 1 {
				i := base + bits.TrailingZeros64(w)
				out[m] = mixWord(init, uint64(c0[i]))
				m++
			}
		}
	case 2:
		c0, c1 := cols[0], cols[1]
		init := seed ^ gamma2
		for wi := 0; wi < nw; wi++ {
			base := wi << 6
			for w := sel[wi]; w != 0; w &= w - 1 {
				i := base + bits.TrailingZeros64(w)
				out[m] = mixWord(init, uint64(c0[i])|uint64(c1[i])<<32)
				m++
			}
		}
	case 3:
		c0, c1, c2 := cols[0], cols[1], cols[2]
		init := seed ^ gamma3
		for wi := 0; wi < nw; wi++ {
			base := wi << 6
			for w := sel[wi]; w != 0; w &= w - 1 {
				i := base + bits.TrailingZeros64(w)
				out[m] = mixWord(mixWord(init, uint64(c0[i])|uint64(c1[i])<<32), uint64(c2[i]))
				m++
			}
		}
	case 4:
		c0, c1, c2, c3 := cols[0], cols[1], cols[2], cols[3]
		init := seed ^ gamma4
		for wi := 0; wi < nw; wi++ {
			base := wi << 6
			for w := sel[wi]; w != 0; w &= w - 1 {
				i := base + bits.TrailingZeros64(w)
				out[m] = mixWord(mixWord(init, uint64(c0[i])|uint64(c1[i])<<32), uint64(c2[i])|uint64(c3[i])<<32)
				m++
			}
		}
	default:
		var kbuf [attr.MaxAttrs]uint32
		a := len(cols)
		for wi := 0; wi < nw; wi++ {
			base := wi << 6
			for w := sel[wi]; w != 0; w &= w - 1 {
				i := base + bits.TrailingZeros64(w)
				for j := 0; j < a; j++ {
					kbuf[j] = cols[j][i]
				}
				out[m] = HashWords(seed, kbuf[:a:a])
				m++
			}
		}
	}
	return m
}

// ProbeColumnsSelInto probes only the selected lanes of a column-major
// key run: cols is one slice per key word with at least n lanes, sel is
// the selection bitmap, and deltas is flat m×NumAggs() in selection
// (ascending lane) order, where m is the selection popcount. Victims
// land in out in columnar form, reset first. Table contents, victims,
// and statistics are bit-identical to compacting the selected lanes and
// calling ProbeColumnsInto. Selective batches skip the monomorphic
// sum-2 kernel and take the generic commit, which shares its layout and
// semantics exactly.
func (t *Table) ProbeColumnsSelInto(cols [][]uint32, deltas []int64, n int, sel []uint64, out *VictimRun) {
	a := t.arity
	na := len(t.ops)
	if len(cols) != a {
		panic(fmt.Sprintf("hashtab: %d key columns for table %v (arity %d)", len(cols), t.rel, a))
	}
	for j := 0; j < a; j++ {
		if len(cols[j]) < n {
			panic(fmt.Sprintf("hashtab: key column %d has %d lanes, need %d, for table %v", j, len(cols[j]), n, t.rel))
		}
	}
	m := selCount(sel, n)
	if len(deltas) != m*na {
		panic(fmt.Sprintf("hashtab: %d batch deltas for %d selected probes of table %v (%d aggs)", len(deltas), m, t.rel, na))
	}
	out.Reset(a, na)
	if m == 0 {
		return
	}
	if cap(t.batchIdx) < m {
		t.batchIdx = make([]int, m)
		t.batchTag = make([]uint8, m)
		t.batchVic = make([]uint8, m)
	}
	if cap(t.batchLane) < m {
		t.batchLane = make([]int32, m)
	}
	idx := t.batchIdx[:m]
	tg := t.batchTag[:m]
	vic := t.batchVic[:m]
	lane := t.batchLane[:m]

	// Setup pass: the per-arity hash kernels fused with group
	// classification, visiting only set bits; the lane of each compact
	// entry is recorded for the commit pass's key gather.
	nw := selWords(n)
	var kbuf [attr.MaxAttrs]uint32
	k := 0
	switch a {
	case 1:
		c0 := cols[0]
		init := t.seed ^ gamma1
		for wi := 0; wi < nw; wi++ {
			lbase := wi << 6
			for w := sel[wi]; w != 0; w &= w - 1 {
				i := lbase + bits.TrailingZeros64(w)
				h := mixWord(init, uint64(c0[i]))
				base, tag := t.group(h)
				idx[k] = base
				tg[k] = tag
				vic[k] = uint8(t.victimSlot(base, h) - base)
				lane[k] = int32(i)
				k++
			}
		}
	case 2:
		c0, c1 := cols[0], cols[1]
		init := t.seed ^ gamma2
		for wi := 0; wi < nw; wi++ {
			lbase := wi << 6
			for w := sel[wi]; w != 0; w &= w - 1 {
				i := lbase + bits.TrailingZeros64(w)
				h := mixWord(init, uint64(c0[i])|uint64(c1[i])<<32)
				base, tag := t.group(h)
				idx[k] = base
				tg[k] = tag
				vic[k] = uint8(t.victimSlot(base, h) - base)
				lane[k] = int32(i)
				k++
			}
		}
	case 3:
		c0, c1, c2 := cols[0], cols[1], cols[2]
		init := t.seed ^ gamma3
		for wi := 0; wi < nw; wi++ {
			lbase := wi << 6
			for w := sel[wi]; w != 0; w &= w - 1 {
				i := lbase + bits.TrailingZeros64(w)
				h := mixWord(mixWord(init, uint64(c0[i])|uint64(c1[i])<<32), uint64(c2[i]))
				base, tag := t.group(h)
				idx[k] = base
				tg[k] = tag
				vic[k] = uint8(t.victimSlot(base, h) - base)
				lane[k] = int32(i)
				k++
			}
		}
	case 4:
		c0, c1, c2, c3 := cols[0], cols[1], cols[2], cols[3]
		init := t.seed ^ gamma4
		for wi := 0; wi < nw; wi++ {
			lbase := wi << 6
			for w := sel[wi]; w != 0; w &= w - 1 {
				i := lbase + bits.TrailingZeros64(w)
				h := mixWord(mixWord(init, uint64(c0[i])|uint64(c1[i])<<32), uint64(c2[i])|uint64(c3[i])<<32)
				base, tag := t.group(h)
				idx[k] = base
				tg[k] = tag
				vic[k] = uint8(t.victimSlot(base, h) - base)
				lane[k] = int32(i)
				k++
			}
		}
	default:
		for wi := 0; wi < nw; wi++ {
			lbase := wi << 6
			for w := sel[wi]; w != 0; w &= w - 1 {
				i := lbase + bits.TrailingZeros64(w)
				for j := 0; j < a; j++ {
					kbuf[j] = cols[j][i]
				}
				h := t.hash(kbuf[:a:a])
				base, tag := t.group(h)
				idx[k] = base
				tg[k] = tag
				vic[k] = uint8(t.victimSlot(base, h) - base)
				lane[k] = int32(i)
				k++
			}
		}
	}

	// Commit pass: identical prefetch schedule to ProbeColumnsInto over
	// the compact entries; keys gather through the recorded lanes.
	if t.SpaceUnits()*4 >= prefetchMinBytes {
		warm := prefetchDist
		if warm > m {
			warm = m
		}
		for k := 0; k < warm; k++ {
			i := idx[k] + int(vic[k])
			prefetch3(unsafe.Pointer(&t.tags[idx[k]]), unsafe.Pointer(&t.keys[i*a]), unsafe.Pointer(&t.aggs[i*t.astride]))
		}
		for k := 0; k < m; k++ {
			if k+prefetchDist < m {
				i := idx[k+prefetchDist] + int(vic[k+prefetchDist])
				prefetch3(unsafe.Pointer(&t.tags[idx[k+prefetchDist]]), unsafe.Pointer(&t.keys[i*a]), unsafe.Pointer(&t.aggs[i*t.astride]))
			}
			t.stats.Probes++
			l := int(lane[k])
			for j := 0; j < a; j++ {
				kbuf[j] = cols[j][l]
			}
			t.commitProbe(idx[k], tg[k], int(vic[k]), kbuf[:a:a], deltas[k*na:k*na+na:k*na+na], out)
		}
		return
	}
	for k := 0; k < m; k++ {
		t.stats.Probes++
		l := int(lane[k])
		for j := 0; j < a; j++ {
			kbuf[j] = cols[j][l]
		}
		t.commitProbe(idx[k], tg[k], int(vic[k]), kbuf[:a:a], deltas[k*na:k*na+na:k*na+na], out)
	}
}
