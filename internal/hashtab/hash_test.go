package hashtab

import (
	"math/bits"
	"testing"
)

// The per-arity specializations in Table.hash must agree bit-for-bit
// with the generic HashWords kernel — they are one hash function, not
// four similar ones.
func TestHashMatchesHashWords(t *testing.T) {
	rels := []string{"A", "AB", "ABC", "ABCD", "ABCDE", "ABCDEF"}
	for _, rel := range rels {
		tab := counter(t, rel, 97)
		key := make([]uint32, tab.Arity())
		for trial := 0; trial < 1000; trial++ {
			x := uint64(trial) * 0x9e3779b97f4a7c15
			for i := range key {
				x = mixWord(x, uint64(i))
				key[i] = uint32(x)
			}
			if got, want := tab.hash(key), HashWords(tab.seed, key); got != want {
				t.Fatalf("%s arity %d: hash(%v) = %#x, HashWords = %#x",
					rel, tab.Arity(), key, got, want)
			}
		}
	}
}

// Seed mixing: the same key under nearby seeds must produce hashes that
// differ in roughly half their bits — the property that makes per-table
// (and per-shard) hash functions independent, as the paper's random-hash
// assumption across tables requires.
func TestHashWordsSeedMixing(t *testing.T) {
	key := []uint32{12345, 67890, 424242}
	var prev uint64
	for seed := uint64(0); seed < 256; seed++ {
		h := HashWords(seed, key)
		if seed > 0 {
			d := bits.OnesCount64(h ^ prev)
			if d < 16 || d > 48 {
				t.Errorf("seeds %d/%d: hashes differ in %d bits, want ~32", seed-1, seed, d)
			}
		}
		prev = h
	}
}

// Keys that differ only by trailing zero words must not collide: the
// length is folded into the initial state.
func TestHashWordsLengthSeparation(t *testing.T) {
	a := HashWords(7, []uint32{42})
	b := HashWords(7, []uint32{42, 0})
	c := HashWords(7, []uint32{42, 0, 0})
	if a == b || b == c || a == c {
		t.Errorf("trailing-zero keys collide: %#x %#x %#x", a, b, c)
	}
}

// Reduce must cover the full bucket range and stay in bounds for
// arbitrary (non-power-of-two) bucket counts.
func TestReduceRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 97, 1000, 1 << 20} {
		seen := 0
		last := -1
		for i := 0; i < 4096; i++ {
			b := Reduce(HashWords(9, []uint32{uint32(i)}), n)
			if b < 0 || b >= n {
				t.Fatalf("Reduce out of range: %d not in [0,%d)", b, n)
			}
			if b != last {
				seen++
				last = b
			}
		}
		if n > 1 && seen < 2 {
			t.Errorf("n=%d: all hashes reduced to one bucket", n)
		}
	}
	if got := Reduce(^uint64(0), 10); got != 9 {
		t.Errorf("Reduce(max, 10) = %d, want 9", got)
	}
}
