package hashtab

// Monomorphic probe kernels for the table shapes the paper's workloads
// actually run: a single Sum aggregate (count(*) and sum tables — every
// CountStar deployment, every collision-model experiment) over keys of
// arity 1, 2, or 4. The generic ProbeInto/commitProbe kernel pays real
// per-probe costs that only exist because arity and aggregate shape are
// runtime values: an out-of-line call to Table.hash (the arity switch
// pushes it past the inlining budget), a slice header + bounds check +
// word loop per candidate key compare, and a strided slice expression
// per aggregate touch. The kernels here are selected once at New() —
// fastKind — and specialize all of it away:
//
//   - the hash chunk is packed from the key words in registers and mixed
//     inline (mixWord is inlinable), so there is no hash call at all;
//     for arity ≤ 2 the packed chunk doubles as the key image, so the
//     candidate compare is ONE word compare against a register;
//   - key and aggregate rows are addressed by unsafe.Add from the array
//     bases — no slice headers, no bounds checks, no pointer-derived
//     spills (the compiler proves the arrays don't alias the table);
//   - the sum-only aggregate row is a fixed [2]int64 (sum, update
//     count), so hits are two adds on one cache line.
//
// Behaviour is bit-identical to the generic kernel — same hash, same
// group, same victim lane, same statistics, same victim bytes — which
// TestFastProbeMatchesGeneric and the batched≡scalar suites pin. The
// kernels do unaligned word loads through unsafe, so they are enabled
// only on architectures that support them (fastProbeArch, per-GOARCH);
// elsewhere fastKind stays fastNone and every probe takes the generic
// path.

import (
	"math/bits"
	"unsafe"
)

// fastKind values: which monomorphic kernel (if any) this table's
// probes dispatch to.
const (
	fastNone uint8 = iota
	fastSum1
	fastSum2
	fastSum4
)

// fastKindOf classifies a table shape at construction time.
func fastKindOf(arity int, sumOnly bool) uint8 {
	if !fastProbeArch || !sumOnly {
		return fastNone
	}
	switch arity {
	case 1:
		return fastSum1
	case 2:
		return fastSum2
	case 4:
		return fastSum4
	}
	return fastNone
}

// keyPtr returns the address of slot i's key storage (via the cached
// array base — no slice header, no bounds check).
func (t *Table) keyPtr(i int) unsafe.Pointer {
	return unsafe.Add(t.keyp, uintptr(i*t.arity)*4)
}

// sumRow returns slot i's (sum, update count) row of a sum-only table
// (astride is exactly 2).
func (t *Table) sumRow(i int) *[2]int64 {
	return (*[2]int64)(unsafe.Add(t.aggp, uintptr(i)*16))
}

// probeSum1 is ProbeInto for sum-only arity-1 tables. (The arity-2
// variant is open-coded directly in ProbeInto — the dominant shape pays
// no second call frame; these share its structure exactly.)
func (t *Table) probeSum1(k0 uint32, delta int64, victim *Entry) (collided bool) {
	t.stats.Probes++
	h := mixWord(t.seed^gamma1, uint64(k0))
	base := Reduce(h, t.ngroups) * GroupSlots
	tag := uint8(h) | 0x80
	grp := (*[GroupSlots]uint8)(unsafe.Add(t.tagp, base))
	var mm uint16
	if simdEnabled {
		mm = matchTagsSIMD(grp, tag)
	} else {
		mm = matchTagsGeneric(grp, tag)
	}
	for ; mm != 0; mm &= mm - 1 {
		i := base + bits.TrailingZeros16(mm)
		if *(*uint32)(t.keyPtr(i)) == k0 {
			row := t.sumRow(i)
			row[0] += delta
			row[1]++
			t.stats.Hits++
			return false
		}
	}
	var em uint16
	if simdEnabled {
		em = matchTagsSIMD(grp, 0)
	} else {
		em = matchTagsGeneric(grp, 0)
	}
	if em != 0 {
		i := base + bits.TrailingZeros16(em)
		t.tags[i] = tag
		*(*uint32)(t.keyPtr(i)) = k0
		row := t.sumRow(i)
		row[0] = delta
		row[1] = 1
		t.live++
		t.stats.Inserts++
		return false
	}
	i := t.victimSlot(base, h)
	row := t.sumRow(i)
	up := clampUpdates(row[1])
	victim.Key = append(victim.Key[:0], t.keys[i])
	victim.Aggs = append(victim.Aggs[:0], row[0])
	victim.Updates = up
	t.stats.Collisions++
	t.stats.EvictedUpdates += uint64(up)
	t.stats.EvictedEntries++
	t.tags[i] = tag
	*(*uint32)(t.keyPtr(i)) = k0
	row[0] = delta
	row[1] = 1
	return true
}

// probeSum4 is ProbeInto for sum-only arity-4 tables: two packed chunks
// feed two inline mix rounds and two word compares.
func (t *Table) probeSum4(k0, k1, k2, k3 uint32, delta int64, victim *Entry) (collided bool) {
	t.stats.Probes++
	w0 := uint64(k0) | uint64(k1)<<32
	w1 := uint64(k2) | uint64(k3)<<32
	h := mixWord(mixWord(t.seed^gamma4, w0), w1)
	base := Reduce(h, t.ngroups) * GroupSlots
	tag := uint8(h) | 0x80
	grp := (*[GroupSlots]uint8)(unsafe.Add(t.tagp, base))
	var mm uint16
	if simdEnabled {
		mm = matchTagsSIMD(grp, tag)
	} else {
		mm = matchTagsGeneric(grp, tag)
	}
	for ; mm != 0; mm &= mm - 1 {
		i := base + bits.TrailingZeros16(mm)
		kp := t.keyPtr(i)
		if *(*uint64)(kp) == w0 && *(*uint64)(unsafe.Add(kp, 8)) == w1 {
			row := t.sumRow(i)
			row[0] += delta
			row[1]++
			t.stats.Hits++
			return false
		}
	}
	var em uint16
	if simdEnabled {
		em = matchTagsSIMD(grp, 0)
	} else {
		em = matchTagsGeneric(grp, 0)
	}
	if em != 0 {
		i := base + bits.TrailingZeros16(em)
		t.tags[i] = tag
		kp := t.keyPtr(i)
		*(*uint64)(kp) = w0
		*(*uint64)(unsafe.Add(kp, 8)) = w1
		row := t.sumRow(i)
		row[0] = delta
		row[1] = 1
		t.live++
		t.stats.Inserts++
		return false
	}
	i := t.victimSlot(base, h)
	row := t.sumRow(i)
	up := clampUpdates(row[1])
	victim.Key = append(victim.Key[:0], t.keys[i*4:i*4+4]...)
	victim.Aggs = append(victim.Aggs[:0], row[0])
	victim.Updates = up
	t.stats.Collisions++
	t.stats.EvictedUpdates += uint64(up)
	t.stats.EvictedEntries++
	t.tags[i] = tag
	kp := t.keyPtr(i)
	*(*uint64)(kp) = w0
	*(*uint64)(unsafe.Add(kp, 8)) = w1
	row[0] = delta
	row[1] = 1
	return true
}

// commitSum2 is commitProbe for sum-only arity-2 tables: the packed key
// word and precomputed (base, tag, victim lane) from the batch setup
// pass, with victims appended to the columnar run.
func (t *Table) commitSum2(base int, tag uint8, vs int, w uint64, delta int64, out *VictimRun) {
	grp := (*[GroupSlots]uint8)(unsafe.Add(t.tagp, base))
	var mm uint16
	if simdEnabled {
		mm = matchTagsSIMD(grp, tag)
	} else {
		mm = matchTagsGeneric(grp, tag)
	}
	for ; mm != 0; mm &= mm - 1 {
		i := base + bits.TrailingZeros16(mm)
		if *(*uint64)(t.keyPtr(i)) == w {
			row := t.sumRow(i)
			row[0] += delta
			row[1]++
			t.stats.Hits++
			return
		}
	}
	var em uint16
	if simdEnabled {
		em = matchTagsSIMD(grp, 0)
	} else {
		em = matchTagsGeneric(grp, 0)
	}
	if em != 0 {
		i := base + bits.TrailingZeros16(em)
		t.tags[i] = tag
		*(*uint64)(t.keyPtr(i)) = w
		row := t.sumRow(i)
		row[0] = delta
		row[1] = 1
		t.live++
		t.stats.Inserts++
		return
	}
	i := base + vs
	row := t.sumRow(i)
	up := clampUpdates(row[1])
	out.Keys = append(out.Keys, t.keys[i*2], t.keys[i*2+1])
	out.Aggs = append(out.Aggs, row[0])
	out.n++
	t.stats.Collisions++
	t.stats.EvictedUpdates += uint64(up)
	t.stats.EvictedEntries++
	t.tags[i] = tag
	*(*uint64)(t.keyPtr(i)) = w
	row[0] = delta
	row[1] = 1
}

// probeBatchSum2 is the ProbeBatchInto setup+commit loop for sum-only
// arity-2 tables: the setup pass packs and mixes each key inline (no
// hash call), and the commit pass dispatches straight to commitSum2.
// Prefetch schedule and semantics match the generic loop exactly.
func (t *Table) probeBatchSum2(keys []uint32, deltas []int64, out *VictimRun, n int) {
	idx := t.batchIdx[:n]
	tg := t.batchTag[:n]
	vic := t.batchVic[:n]
	seed := t.seed ^ gamma2
	for k := 0; k < n; k++ {
		w := uint64(keys[2*k]) | uint64(keys[2*k+1])<<32
		h := mixWord(seed, w)
		base := Reduce(h, t.ngroups) * GroupSlots
		idx[k] = base
		tg[k] = uint8(h) | 0x80
		vic[k] = uint8(t.victimSlot(base, h) - base)
	}
	if t.SpaceUnits()*4 >= prefetchMinBytes {
		warm := prefetchDist
		if warm > n {
			warm = n
		}
		for k := 0; k < warm; k++ {
			i := idx[k] + int(vic[k])
			prefetch3(unsafe.Add(t.tagp, idx[k]), t.keyPtr(i), unsafe.Pointer(t.sumRow(i)))
		}
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				i := idx[k+prefetchDist] + int(vic[k+prefetchDist])
				prefetch3(unsafe.Add(t.tagp, idx[k+prefetchDist]), t.keyPtr(i), unsafe.Pointer(t.sumRow(i)))
			}
			t.stats.Probes++
			w := uint64(keys[2*k]) | uint64(keys[2*k+1])<<32
			t.commitSum2(idx[k], tg[k], int(vic[k]), w, deltas[k], out)
		}
		return
	}
	for k := 0; k < n; k++ {
		t.stats.Probes++
		w := uint64(keys[2*k]) | uint64(keys[2*k+1])<<32
		t.commitSum2(idx[k], tg[k], int(vic[k]), w, deltas[k], out)
	}
}
