#include "textflag.h"

// laneBits<> assigns lane i the bit value 1<<(i mod 8); ANDed with a
// CMEQ result (0xFF per matching lane) it leaves one distinct bit per
// lane within each 8-lane half, so three pairwise adds reduce the vector
// to the 16-bit mask (low byte = lanes 0-7, high byte = lanes 8-15).
DATA laneBits<>+0x00(SB)/8, $0x8040201008040201
DATA laneBits<>+0x08(SB)/8, $0x8040201008040201
GLOBL laneBits<>(SB), RODATA|NOPTR, $16

// func matchTagsSIMD(tags *[16]uint8, tag uint8) uint16
TEXT ·matchTagsSIMD(SB), NOSPLIT, $0-18
	MOVD  tags+0(FP), R0
	MOVBU tag+8(FP), R1
	VLD1  (R0), [V0.B16]
	VDUP  R1, V1.B16
	VCMEQ V0.B16, V1.B16, V2.B16
	MOVD  $laneBits<>(SB), R2
	VLD1  (R2), [V3.B16]
	VAND  V2.B16, V3.B16, V2.B16
	// Within each half the lane bits are distinct, so pairwise sums
	// never carry; three rounds fold 16 bytes into byte0|byte1<<8.
	VADDP V2.B16, V2.B16, V2.B16
	VADDP V2.B16, V2.B16, V2.B16
	VADDP V2.B16, V2.B16, V2.B16
	VMOV  V2.H[0], R3
	MOVH  R3, ret+16(FP)
	RET
