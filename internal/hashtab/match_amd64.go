package hashtab

// kernelNameArch names this GOARCH's vector kernel.
const kernelNameArch = "avx2"

// fastProbeArch gates the monomorphic probe kernels (fastprobe.go),
// which load packed key words through unsafe at 4-byte alignment:
// fine on amd64, where unaligned scalar loads are architectural.
const fastProbeArch = true

// matchTagsSIMD compares all 16 group tags against tag with one AVX2
// byte-compare and returns the lane mask (match_amd64.s). Callers must
// gate on simdEnabled: executing it on a pre-AVX2 CPU faults.
//
//go:noescape
func matchTagsSIMD(tags *[GroupSlots]uint8, tag uint8) uint16

// cpuid executes the CPUID instruction (leaf eaxArg, subleaf ecxArg).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0, the OS-enabled extended-state mask.
func xgetbv() (eax, edx uint32)

// haveSIMD reports AVX2 with OS-saved YMM state: CPUID.1:ECX OSXSAVE+AVX,
// XCR0 bits 1–2 (XMM+YMM context switched by the OS), CPUID.7:EBX AVX2.
// The kernel itself only touches XMM registers, but it is VEX-encoded,
// and VEX without OS AVX support is undefined instruction territory.
func haveSIMD() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if ecx1&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}
