package hashtab

import (
	"fmt"
	"unsafe"

	"repro/internal/attr"
)

// Columnar probe entry points. ProbeBatchInto takes a record-major key
// run, which forces every caller holding column-major data (the columnar
// staging arena, the shard pipeline's sealed runs) to gather keys into a
// flat block first — a per-record transpose that exists only to satisfy
// the argument layout. The kernels here accept the columns directly: the
// setup pass hashes column-wise with per-arity unrolled loops (stride-1
// loads, no gather), and only the commit pass — which must touch the
// group's key line anyway — materializes each key, into a stack buffer.
// Hashes, statistics, victims, and final table contents are bit-identical
// to gathering the columns record-major and calling ProbeBatchInto.

// HashColumns writes HashWords(seed, row i) for every row of a
// column-major key block into out: cols is one slice per key word, all
// of length len(out). It is the columnar twin of HashWords — same pair
// packing, same per-arity initial states — so consumers that route on
// record-major hashes (shard partitioning) and consumers that route on
// columns agree bit-for-bit.
func HashColumns(seed uint64, cols [][]uint32, out []uint64) {
	n := len(out)
	if n == 0 {
		return
	}
	switch len(cols) {
	case 1:
		c0 := cols[0][:n]
		init := seed ^ gamma1
		for i := range out {
			out[i] = mixWord(init, uint64(c0[i]))
		}
	case 2:
		c0, c1 := cols[0][:n], cols[1][:n]
		init := seed ^ gamma2
		for i := range out {
			out[i] = mixWord(init, uint64(c0[i])|uint64(c1[i])<<32)
		}
	case 3:
		c0, c1, c2 := cols[0][:n], cols[1][:n], cols[2][:n]
		init := seed ^ gamma3
		for i := range out {
			h := mixWord(init, uint64(c0[i])|uint64(c1[i])<<32)
			out[i] = mixWord(h, uint64(c2[i]))
		}
	case 4:
		c0, c1, c2, c3 := cols[0][:n], cols[1][:n], cols[2][:n], cols[3][:n]
		init := seed ^ gamma4
		for i := range out {
			h := mixWord(init, uint64(c0[i])|uint64(c1[i])<<32)
			out[i] = mixWord(h, uint64(c2[i])|uint64(c3[i])<<32)
		}
	default:
		var kbuf [attr.MaxAttrs]uint32
		a := len(cols)
		for i := range out {
			for j := 0; j < a; j++ {
				kbuf[j] = cols[j][i]
			}
			out[i] = HashWords(seed, kbuf[:a:a])
		}
	}
}

// ProbeColumnsInto is ProbeBatchInto for a column-major key run: cols is
// one slice per key word (len(cols) = Arity(), all columns equally
// long), deltas is flat n×NumAggs() as before. Victims land in out in
// columnar form, reset first. Equivalent to gathering the columns
// record-major and probing the flat run; only the setup pass's memory
// access pattern differs.
func (t *Table) ProbeColumnsInto(cols [][]uint32, deltas []int64, out *VictimRun) {
	a := t.arity
	na := len(t.ops)
	if len(cols) != a {
		panic(fmt.Sprintf("hashtab: %d key columns for table %v (arity %d)", len(cols), t.rel, a))
	}
	n := 0
	if a > 0 {
		n = len(cols[0])
		for j := 1; j < a; j++ {
			if len(cols[j]) != n {
				panic(fmt.Sprintf("hashtab: ragged key columns (%d vs %d rows) for table %v", len(cols[j]), n, t.rel))
			}
		}
	}
	if len(deltas) != n*na {
		panic(fmt.Sprintf("hashtab: %d batch deltas for %d probes of table %v (%d aggs)", len(deltas), n, t.rel, na))
	}
	out.Reset(a, na)
	if n == 0 {
		return
	}
	if cap(t.batchIdx) < n {
		t.batchIdx = make([]int, n)
		t.batchTag = make([]uint8, n)
		t.batchVic = make([]uint8, n)
	}
	if t.fastKind == fastSum2 {
		t.probeColumnsSum2(cols[0], cols[1], deltas, out, n)
		return
	}
	idx := t.batchIdx[:n]
	tg := t.batchTag[:n]
	vic := t.batchVic[:n]

	// Setup pass: the per-arity hash kernels of HashColumns fused with
	// group classification — all loads are stride-1 column reads, no
	// record gather.
	var kbuf [attr.MaxAttrs]uint32
	switch a {
	case 1:
		c0 := cols[0]
		init := t.seed ^ gamma1
		for k := 0; k < n; k++ {
			h := mixWord(init, uint64(c0[k]))
			base, tag := t.group(h)
			idx[k] = base
			tg[k] = tag
			vic[k] = uint8(t.victimSlot(base, h) - base)
		}
	case 2:
		c0, c1 := cols[0], cols[1]
		init := t.seed ^ gamma2
		for k := 0; k < n; k++ {
			h := mixWord(init, uint64(c0[k])|uint64(c1[k])<<32)
			base, tag := t.group(h)
			idx[k] = base
			tg[k] = tag
			vic[k] = uint8(t.victimSlot(base, h) - base)
		}
	case 3:
		c0, c1, c2 := cols[0], cols[1], cols[2]
		init := t.seed ^ gamma3
		for k := 0; k < n; k++ {
			h := mixWord(mixWord(init, uint64(c0[k])|uint64(c1[k])<<32), uint64(c2[k]))
			base, tag := t.group(h)
			idx[k] = base
			tg[k] = tag
			vic[k] = uint8(t.victimSlot(base, h) - base)
		}
	case 4:
		c0, c1, c2, c3 := cols[0], cols[1], cols[2], cols[3]
		init := t.seed ^ gamma4
		for k := 0; k < n; k++ {
			h := mixWord(mixWord(init, uint64(c0[k])|uint64(c1[k])<<32), uint64(c2[k])|uint64(c3[k])<<32)
			base, tag := t.group(h)
			idx[k] = base
			tg[k] = tag
			vic[k] = uint8(t.victimSlot(base, h) - base)
		}
	default:
		for k := 0; k < n; k++ {
			for j := 0; j < a; j++ {
				kbuf[j] = cols[j][k]
			}
			h := t.hash(kbuf[:a:a])
			base, tag := t.group(h)
			idx[k] = base
			tg[k] = tag
			vic[k] = uint8(t.victimSlot(base, h) - base)
		}
	}

	// Commit pass: identical prefetch schedule to ProbeBatchInto; each
	// key is gathered into the stack buffer at the moment its group line
	// is being touched anyway.
	if t.SpaceUnits()*4 >= prefetchMinBytes {
		warm := prefetchDist
		if warm > n {
			warm = n
		}
		for k := 0; k < warm; k++ {
			i := idx[k] + int(vic[k])
			prefetch3(unsafe.Pointer(&t.tags[idx[k]]), unsafe.Pointer(&t.keys[i*a]), unsafe.Pointer(&t.aggs[i*t.astride]))
		}
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				i := idx[k+prefetchDist] + int(vic[k+prefetchDist])
				prefetch3(unsafe.Pointer(&t.tags[idx[k+prefetchDist]]), unsafe.Pointer(&t.keys[i*a]), unsafe.Pointer(&t.aggs[i*t.astride]))
			}
			t.stats.Probes++
			for j := 0; j < a; j++ {
				kbuf[j] = cols[j][k]
			}
			t.commitProbe(idx[k], tg[k], int(vic[k]), kbuf[:a:a], deltas[k*na:k*na+na:k*na+na], out)
		}
		return
	}
	for k := 0; k < n; k++ {
		t.stats.Probes++
		for j := 0; j < a; j++ {
			kbuf[j] = cols[j][k]
		}
		t.commitProbe(idx[k], tg[k], int(vic[k]), kbuf[:a:a], deltas[k*na:k*na+na:k*na+na], out)
	}
}

// probeColumnsSum2 is probeBatchSum2 reading two key columns: the packed
// word is assembled from stride-1 column loads in both passes, and the
// commit dispatches to the same commitSum2 kernel.
func (t *Table) probeColumnsSum2(c0, c1 []uint32, deltas []int64, out *VictimRun, n int) {
	idx := t.batchIdx[:n]
	tg := t.batchTag[:n]
	vic := t.batchVic[:n]
	seed := t.seed ^ gamma2
	c0 = c0[:n]
	c1 = c1[:n]
	for k := 0; k < n; k++ {
		w := uint64(c0[k]) | uint64(c1[k])<<32
		h := mixWord(seed, w)
		base := Reduce(h, t.ngroups) * GroupSlots
		idx[k] = base
		tg[k] = uint8(h) | 0x80
		vic[k] = uint8(t.victimSlot(base, h) - base)
	}
	if t.SpaceUnits()*4 >= prefetchMinBytes {
		warm := prefetchDist
		if warm > n {
			warm = n
		}
		for k := 0; k < warm; k++ {
			i := idx[k] + int(vic[k])
			prefetch3(unsafe.Add(t.tagp, idx[k]), t.keyPtr(i), unsafe.Pointer(t.sumRow(i)))
		}
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				i := idx[k+prefetchDist] + int(vic[k+prefetchDist])
				prefetch3(unsafe.Add(t.tagp, idx[k+prefetchDist]), t.keyPtr(i), unsafe.Pointer(t.sumRow(i)))
			}
			t.stats.Probes++
			w := uint64(c0[k]) | uint64(c1[k])<<32
			t.commitSum2(idx[k], tg[k], int(vic[k]), w, deltas[k], out)
		}
		return
	}
	for k := 0; k < n; k++ {
		t.stats.Probes++
		w := uint64(c0[k]) | uint64(c1[k])<<32
		t.commitSum2(idx[k], tg[k], int(vic[k]), w, deltas[k], out)
	}
}
