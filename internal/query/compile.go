package query

import (
	"math/bits"
	"sort"

	"repro/internal/selvec"
)

// This file compiles a WHERE Filter (DNF over attr-op-constant
// predicates) into branch-free columnar kernels. The six comparison
// ops normalize onto two machine predicates — equality and unsigned
// less-than — plus a complement bit, with the int64 constant folded
// against the uint32 attribute domain at compile time:
//
//	a =  v : out of [0, 2³²)  → false,        else  a == v
//	a != v : out of range     → true,         else ¬(a == v)
//	a <  v : v ≤ 0 → false;   v > max → true; else  a < v
//	a <= v : v < 0 → false;   v ≥ max → true; else  a < v+1
//	a >  v : v < 0 → true;    v ≥ max → false; else ¬(a < v+1)
//	a >= v : v ≤ 0 → true;    v > max → false; else ¬(a < v)
//
// A constant-false predicate makes its whole conjunction unsatisfiable,
// so the conjunction is dropped. A constant-true predicate contributes
// no kernel work but NOT nothing: the interpreted Predicate.Match
// returns false whenever the attribute index is out of range of the
// record, even for a vacuously true comparison, so every predicate —
// including folded-true ones — still contributes its attribute index to
// the conjunction's width requirement. The compiled filter reproduces
// the interpreted semantics bit for bit; the equivalence suite and
// FuzzFilterCompile enforce that.
//
// Evaluation is columnar: one predicate over one 64-lane word of one
// column at a time (selvec kernels), AND-combined within a conjunction
// with short-circuiting on all-zero accumulators, OR-combined across
// the DNF with saturated words skipped entirely. Per-predicate and
// per-conjunction pass popcounts feed an adaptive re-ranking every
// rerankEvery batches: within a conjunction the predicate observed most
// selective runs first (fewest surviving lanes → fastest short-circuit),
// and across the DNF the conjunction passing the most lanes runs first
// (fastest saturation). Reordering never changes results — AND and OR
// are commutative — only how soon the short-circuits fire.

const (
	predEq = iota // lane passes iff col[lane] == c (xor neg)
	predLt        // lane passes iff col[lane] < c, unsigned (xor neg)
)

// rerankEvery is the number of EvalColumns calls between selectivity
// re-rankings. Counters halve at each re-rank so the ordering tracks
// drifting data rather than the whole run's history.
const rerankEvery = 64

type compiledPred struct {
	attr uint8
	kind uint8 // predEq or predLt
	neg  bool
	c    uint32

	// Selectivity counters: lanes the kernel scored and lanes that
	// passed, accumulated across batches and decayed at re-rank.
	lanes uint64
	pass  uint64
}

type compiledConj struct {
	preds []compiledPred
	// maxAttr is the largest attribute index any predicate of the
	// source conjunction references (including folded-true ones), or -1
	// for an empty conjunction. A record or batch narrower than
	// maxAttr+1 attributes fails the conjunction outright, matching the
	// interpreted out-of-range rule.
	maxAttr int

	lanes uint64
	pass  uint64
}

// CompiledFilter is a Filter lowered to columnar form. The zero value
// is not meaningful; build one with Filter.Compile. A CompiledFilter is
// not safe for concurrent use (it carries adaptive-ordering state).
type CompiledFilter struct {
	conjs []compiledConj
	// empty mirrors Filter.Empty: no DNF at all, matches everything.
	empty bool
	// always is set when some conjunction folded to constant true with
	// no width requirement, so every record matches regardless of arity.
	always bool
	evals  int
}

// Compile lowers the filter to columnar form.
func (f Filter) Compile() *CompiledFilter {
	cf := &CompiledFilter{empty: len(f.DNF) == 0}
	const maxU = int64(1)<<32 - 1
conjs:
	for _, conj := range f.DNF {
		cc := compiledConj{maxAttr: -1}
		for _, p := range conj {
			if int(p.Attr) > cc.maxAttr {
				cc.maxAttr = int(p.Attr)
			}
			kind, neg, c := uint8(predEq), false, uint32(0)
			switch p.Op {
			case Eq:
				if p.Val < 0 || p.Val > maxU {
					continue conjs // constant false
				}
				c = uint32(p.Val)
			case Ne:
				if p.Val < 0 || p.Val > maxU {
					continue // constant true: width gate only
				}
				neg, c = true, uint32(p.Val)
			case Lt:
				if p.Val <= 0 {
					continue conjs
				}
				if p.Val > maxU {
					continue
				}
				kind, c = predLt, uint32(p.Val)
			case Le:
				if p.Val < 0 {
					continue conjs
				}
				if p.Val >= maxU {
					continue
				}
				kind, c = predLt, uint32(p.Val+1)
			case Gt:
				if p.Val >= maxU {
					continue conjs
				}
				if p.Val < 0 {
					continue
				}
				kind, neg, c = predLt, true, uint32(p.Val+1)
			case Ge:
				if p.Val > maxU {
					continue conjs
				}
				if p.Val <= 0 {
					continue
				}
				kind, neg, c = predLt, true, uint32(p.Val)
			default:
				// Unknown operator: CmpOp.Eval returns false.
				continue conjs
			}
			cc.preds = append(cc.preds, compiledPred{attr: uint8(p.Attr), kind: kind, neg: neg, c: c})
		}
		if len(cc.preds) == 0 && cc.maxAttr < 0 {
			cf.always = true
		}
		cf.conjs = append(cf.conjs, cc)
	}
	return cf
}

// AlwaysTrue reports that every record matches regardless of its arity
// (an empty WHERE, or a conjunction folded to constant true).
func (cf *CompiledFilter) AlwaysTrue() bool { return cf.empty || cf.always }

// MatchesNothing reports that no record can ever match (every
// conjunction folded to constant false).
func (cf *CompiledFilter) MatchesNothing() bool {
	return !cf.empty && len(cf.conjs) == 0
}

// Match evaluates the compiled filter on one record, with semantics
// identical to the interpreted Filter.Match.
func (cf *CompiledFilter) Match(attrs []uint32) bool {
	if cf.empty {
		return true
	}
	for i := range cf.conjs {
		cc := &cf.conjs[i]
		if cc.maxAttr >= len(attrs) {
			continue
		}
		ok := true
		for k := range cc.preds {
			p := &cc.preds[k]
			v := attrs[p.attr]
			var m bool
			if p.kind == predEq {
				m = v == p.c
			} else {
				m = v < p.c
			}
			if m == p.neg {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// evalWord scores one predicate over lanes [lo,hi) of its column,
// returning the pass word; dead high bits may be set when neg is true,
// so callers mask with the word's valid-lane mask.
func (p *compiledPred) evalWord(cols [][]uint32, lo, hi int) uint64 {
	col := cols[p.attr][lo:hi]
	var m uint64
	if p.kind == predEq {
		m = selvec.EqWord(col, p.c)
	} else {
		m = selvec.LtWord(col, p.c)
	}
	if p.neg {
		m = ^m
	}
	return m
}

// EvalColumns evaluates the filter over the first n lanes of cols,
// writing the selection into out (which must hold selvec.Words(n)
// words; prior contents are overwritten, dead tail bits end up zero).
// Columns must each have at least n lanes; a conjunction referencing an
// attribute index >= len(cols) fails for the whole batch, matching the
// interpreted out-of-range rule.
func (cf *CompiledFilter) EvalColumns(cols [][]uint32, n int, out selvec.Bitmap) {
	if n == 0 {
		return
	}
	nw := selvec.Words(n)
	if cf.AlwaysTrue() {
		out.SetAll(n)
		return
	}
	out.Clear(n)
	if len(cf.conjs) == 0 {
		return
	}
	for ci := range cf.conjs {
		cc := &cf.conjs[ci]
		if cc.maxAttr >= len(cols) {
			continue
		}
		if len(cc.preds) == 0 {
			// Constant-true conjunction whose width gate passed:
			// every remaining lane matches.
			out.SetAll(n)
			return
		}
		for wi := 0; wi < nw; wi++ {
			fullw := ^uint64(0)
			if wi == nw-1 {
				fullw = selvec.TailMask(n)
			}
			need := fullw &^ out[wi]
			if need == 0 {
				continue // word saturated by an earlier conjunction
			}
			lo := wi * selvec.WordLanes
			hi := lo + selvec.WordLanes
			if hi > n {
				hi = n
			}
			width := uint64(hi - lo)
			acc := need
			for k := range cc.preds {
				p := &cc.preds[k]
				m := p.evalWord(cols, lo, hi) & fullw
				p.lanes += width
				p.pass += uint64(bits.OnesCount64(m))
				acc &= m
				if acc == 0 {
					break
				}
			}
			cc.lanes += uint64(bits.OnesCount64(need))
			cc.pass += uint64(bits.OnesCount64(acc))
			out[wi] |= acc
		}
	}
	cf.evals++
	if cf.evals >= rerankEvery {
		cf.rerank()
	}
}

// passRate returns observed pass probability, optimistically 1 when a
// predicate has not been scored yet (run it last until proven cheap).
func passRate(pass, lanes uint64) float64 {
	if lanes == 0 {
		return 1
	}
	return float64(pass) / float64(lanes)
}

// rerank reorders predicates within each conjunction by ascending
// observed pass rate (most selective first → earliest short-circuit)
// and conjunctions by descending pass rate (most passing first →
// earliest word saturation), then halves all counters so the ordering
// adapts to drift. Pure reordering of commutative AND/OR terms: results
// are unchanged.
func (cf *CompiledFilter) rerank() {
	cf.evals = 0
	for ci := range cf.conjs {
		cc := &cf.conjs[ci]
		sort.SliceStable(cc.preds, func(i, j int) bool {
			return passRate(cc.preds[i].pass, cc.preds[i].lanes) <
				passRate(cc.preds[j].pass, cc.preds[j].lanes)
		})
		for k := range cc.preds {
			cc.preds[k].lanes >>= 1
			cc.preds[k].pass >>= 1
		}
	}
	sort.SliceStable(cf.conjs, func(i, j int) bool {
		return passRate(cf.conjs[i].pass, cf.conjs[i].lanes) >
			passRate(cf.conjs[j].pass, cf.conjs[j].lanes)
	})
	for ci := range cf.conjs {
		cf.conjs[ci].lanes >>= 1
		cf.conjs[ci].pass >>= 1
	}
}

// predOrder exposes the current (attr, op-kind, neg, constant) order of
// each conjunction for the adaptive-ordering tests.
func (cf *CompiledFilter) predOrder() [][]compiledPred {
	out := make([][]compiledPred, len(cf.conjs))
	for i := range cf.conjs {
		out[i] = append([]compiledPred(nil), cf.conjs[i].preds...)
	}
	return out
}
