package query

import (
	"testing"

	"repro/internal/sketch"
)

func TestParseWindowClause(t *testing.T) {
	s := MustParse("select A, tb, count(*) as cnt from R group by A, time/10 as tb window 4 slide 2")
	if !s.Windowed() || s.WindowSize != 4 || s.WindowSlide != 2 {
		t.Fatalf("window = %d/%d", s.WindowSize, s.WindowSlide)
	}
	// Slide defaults to 1.
	s = MustParse("select A, count(*) from R group by A, time/10 window 3")
	if s.WindowSize != 3 || s.WindowSlide != 1 {
		t.Fatalf("window = %d/%d, want 3/1", s.WindowSize, s.WindowSlide)
	}
	// Slide larger than size is legal: sampled, non-overlapping windows.
	s = MustParse("select A, count(*) from R group by A, time/10 window 2 slide 3")
	if s.WindowSize != 2 || s.WindowSlide != 3 {
		t.Fatalf("window = %d/%d, want 2/3", s.WindowSize, s.WindowSlide)
	}
	if MustParse("select A, count(*) from R group by A, time/10").Windowed() {
		t.Fatal("unwindowed query reports Windowed")
	}
}

func TestParseSketchAggs(t *testing.T) {
	s := MustParse("select A, count_distinct(B) as uniq, median(C), percentile(C, 95) as p95 from R group by A, time/10 window 2")
	if len(s.Sketches) != 3 {
		t.Fatalf("got %d sketches", len(s.Sketches))
	}
	want := []sketch.Agg{
		{Kind: sketch.Distinct, Input: 1},
		{Kind: sketch.Quantile, Input: 2, Q: 0.5},
		{Kind: sketch.Quantile, Input: 2, Q: 0.95},
	}
	for i, w := range want {
		if s.Sketches[i].Agg != w {
			t.Errorf("sketch %d = %+v, want %+v", i, s.Sketches[i].Agg, w)
		}
	}
	if s.Sketches[0].Alias != "uniq" || s.Sketches[1].Alias != "median(C)" || s.Sketches[2].Alias != "p95" {
		t.Errorf("aliases %q %q %q", s.Sketches[0].Alias, s.Sketches[1].Alias, s.Sketches[2].Alias)
	}
	got := s.SketchSpecs()
	for i, w := range want {
		if got[i] != w {
			t.Errorf("SketchSpecs[%d] = %+v", i, got[i])
		}
	}
	// Sketch-only select list gets a hidden count(*) backing slot.
	s = MustParse("select A, count_distinct(B) from R group by A, time/10 window 2")
	if len(s.Aggs) != 1 || !s.Aggs[0].Hidden || s.Aggs[0].Spec.Input != -1 {
		t.Fatalf("hidden count not added: %+v", s.Aggs)
	}
	if cols := s.OutputColumns(); len(cols) != 0 {
		t.Fatalf("hidden slot leaked into OutputColumns: %v", cols)
	}
}

func TestParseWindowErrors(t *testing.T) {
	for _, sql := range []string{
		"select A, count(*) from R group by A window 4",              // no time bucket
		"select A, count(*) from R group by A, time/10 window 0",     // zero size
		"select A, count(*) from R group by A, time/10 window 70000", // size over cap
		"select A, count(*) from R group by A, time/10 window x",     // non-numeric
		"select A, count(*) from R group by A, time/10 window 2 slide 0",
		"select A, count(*) from R group by A, time/10 window 2 slide 70000",
		"select count_distinct(*) from R group by A, time/10",  // needs an attribute
		"select percentile(C) from R group by A, time/10",      // missing rank
		"select percentile(C, 0) from R group by A, time/10",   // rank out of range
		"select percentile(C, 100) from R group by A, time/10", // rank out of range
		"select median(*) from R group by A, time/10",
		"select A, count_distinct(B) as u from R group by A, time/10 having u > 3", // having on a sketch
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded; want error", sql)
		}
	}
}

func TestWindowStringRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"select A, tb, count(*) as cnt from R group by A, time/10 as tb window 4 slide 2",
		"select A, count(*) from R group by A, time/10 window 3",
		"select A, count(*), count_distinct(B) as uniq from R group by A, time/10 window 2 slide 3",
		"select A, median(C), percentile(C, 99) as p99 from R group by A, time/10 window 5 slide 5",
		"select count_distinct(B) from R group by A, time/10",
	} {
		s1 := MustParse(sql)
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("%q: rendering %q does not re-parse: %v", sql, s1.String(), err)
		}
		if s2.WindowSize != s1.WindowSize || s2.WindowSlide != s1.WindowSlide ||
			!sameSketches(s2.Sketches, s1.Sketches) || len(s2.Aggs) != len(s1.Aggs) {
			t.Fatalf("%q: round trip changed structure to %q", sql, s1.String())
		}
		for i := range s1.Sketches {
			if s2.Sketches[i].Alias != s1.Sketches[i].Alias {
				t.Fatalf("%q: alias %q became %q", sql, s1.Sketches[i].Alias, s2.Sketches[i].Alias)
			}
		}
	}
}

func TestParseSetWindowChecks(t *testing.T) {
	if _, err := ParseSet([]string{
		"select A, count(*) from R group by A, time/10 window 4 slide 2",
		"select B, count(*) from R group by B, time/10 window 4 slide 2",
	}); err != nil {
		t.Fatalf("matching windows rejected: %v", err)
	}
	if _, err := ParseSet([]string{
		"select A, count(*) from R group by A, time/10 window 4 slide 2",
		"select B, count(*) from R group by B, time/10 window 4",
	}); err == nil {
		t.Fatal("mixed slides accepted")
	}
	if _, err := ParseSet([]string{
		"select A, count(*) from R group by A, time/10 window 4",
		"select B, count(*) from R group by B, time/10",
	}); err == nil {
		t.Fatal("windowed + unwindowed accepted")
	}
	if _, err := ParseSet([]string{
		"select A, count(*), count_distinct(B) from R group by A, time/10",
		"select B, count(*), count_distinct(C) from R group by B, time/10",
	}); err == nil {
		t.Fatal("differing sketch lists accepted")
	}
}
