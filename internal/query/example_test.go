package query_test

import (
	"fmt"

	"repro/internal/query"
)

func ExampleParse() {
	// The paper's Q0.
	spec, _ := query.Parse("select A, tb, count(*) as cnt from R group by A, time/60 as tb")
	fmt.Println("group by:", spec.GroupBy)
	fmt.Println("epoch:", spec.EpochLen, "seconds")
	fmt.Println(spec)
	// Output:
	// group by: A
	// epoch: 60 seconds
	// select A, tb, count(*) as cnt from R group by A, time/60 as tb
}

func ExampleSpec_OutputRow() {
	// avg(B) is computed at the LFTA/HFTA as sum(B) plus a hidden
	// count(*); OutputRow divides at output time.
	spec, _ := query.Parse("select A, avg(B) as len from R group by A")
	fmt.Println(spec.OutputColumns())
	fmt.Println(spec.OutputRow([]int64{90, 4})) // sum = 90, count = 4
	// Output:
	// [len]
	// [22.5]
}

func ExampleFilter_Match() {
	spec, _ := query.Parse("select A, count(*) from R where B = 80 or B = 443 group by A")
	fmt.Println(spec.MatchWhere([]uint32{0, 443}))
	fmt.Println(spec.MatchWhere([]uint32{0, 8080}))
	// Output:
	// true
	// false
}
