package query

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/hashtab"
	"repro/internal/selvec"
)

// forEachKernel runs fn under every selection-vector kernel the host
// offers (generic always; AVX2/NEON when available), restoring the
// process-wide switch afterwards.
func forEachKernel(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	prev := hashtab.SIMDEnabled()
	defer hashtab.SetSIMD(prev)

	hashtab.SetSIMD(false)
	t.Run("generic", fn)
	if hashtab.SIMDAvailable() {
		hashtab.SetSIMD(true)
		t.Run(hashtab.KernelName(), fn)
	}
}

// fuzzVals are WHERE constants at and around the uint32 domain edges,
// where the compile-time folds change shape.
var fuzzVals = []int64{
	-(1 << 40), -2, -1, 0, 1, 2, 5, 80, 1023, 1024,
	1<<32 - 2, 1<<32 - 1, 1 << 32, 1<<32 + 1, 1 << 40,
}

var fuzzOps = []CmpOp{Lt, Le, Gt, Ge, Eq, Ne, CmpOp("??")}

func randomFilter(rng *rand.Rand, maxAttr int) Filter {
	var f Filter
	nConj := rng.Intn(4) // 0 = empty filter
	for i := 0; i < nConj; i++ {
		nPred := rng.Intn(5) // 0 = vacuously true conjunction
		conj := make([]Predicate, nPred)
		for j := range conj {
			conj[j] = Predicate{
				Attr: attr.ID(rng.Intn(maxAttr + 2)), // may exceed row width
				Op:   fuzzOps[rng.Intn(len(fuzzOps))],
				Val:  fuzzVals[rng.Intn(len(fuzzVals))],
			}
		}
		f.DNF = append(f.DNF, conj)
	}
	return f
}

func randomColumns(rng *rand.Rand, width, n int) [][]uint32 {
	cols := make([][]uint32, width)
	for a := range cols {
		cols[a] = make([]uint32, n)
		for i := range cols[a] {
			switch rng.Intn(4) {
			case 0:
				cols[a][i] = rng.Uint32()
			case 1:
				cols[a][i] = uint32(fuzzVals[5+rng.Intn(7)]) // small in-domain
			default:
				cols[a][i] = uint32(rng.Intn(8))
			}
		}
	}
	return cols
}

// TestFilterCompileScalarEquivalence pins CompiledFilter.Match against
// the interpreted Filter.Match over random DNFs and rows, including
// rows narrower than the referenced attributes.
func TestFilterCompileScalarEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for iter := 0; iter < 5000; iter++ {
		width := rng.Intn(5) // 0..4, may be narrower than filter attrs
		f := randomFilter(rng, 4)
		cf := f.Compile()
		row := make([]uint32, width)
		for r := 0; r < 8; r++ {
			for i := range row {
				if rng.Intn(2) == 0 {
					row[i] = uint32(rng.Intn(8))
				} else {
					row[i] = rng.Uint32()
				}
			}
			if got, want := cf.Match(row), f.Match(row); got != want {
				t.Fatalf("filter %v row %v: compiled %v, interpreted %v", f, row, got, want)
			}
		}
	}
}

// TestFilterCompileColumnarEquivalence pins EvalColumns lane-for-lane
// against interpreted per-row Match over random DNFs, batch lengths
// around word boundaries, and every kernel.
func TestFilterCompileColumnarEquivalence(t *testing.T) {
	forEachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(21))
		lengths := []int{1, 3, 63, 64, 65, 127, 128, 200, 1024}
		var sel selvec.Bitmap
		row := make([]uint32, 8)
		for iter := 0; iter < 400; iter++ {
			width := 1 + rng.Intn(4)
			n := lengths[rng.Intn(len(lengths))]
			f := randomFilter(rng, width)
			cf := f.Compile()
			cols := randomColumns(rng, width, n)
			sel = selvec.Grow(sel, n)
			cf.EvalColumns(cols, n, sel)
			for i := 0; i < n; i++ {
				for a := 0; a < width; a++ {
					row[a] = cols[a][i]
				}
				want := f.Match(row[:width])
				if got := sel.Test(i); got != want {
					t.Fatalf("filter %v lane %d (n=%d width=%d row %v): compiled %v, interpreted %v",
						f, i, n, width, row[:width], got, want)
				}
			}
			if tail := sel[len(sel)-1] &^ selvec.TailMask(n); tail != 0 {
				t.Fatalf("dead tail bits set: %#x (n=%d)", tail, n)
			}
		}
	})
}

// TestFilterCompileFolds pins the compile-time constant folds and the
// out-of-range-attribute rule they must preserve.
func TestFilterCompileFolds(t *testing.T) {
	// v != -1 is vacuously true over uint32 — but the interpreted Match
	// still fails a row too narrow to hold the attribute.
	f := Filter{DNF: [][]Predicate{{{Attr: 3, Op: Ne, Val: -1}}}}
	cf := f.Compile()
	if cf.AlwaysTrue() {
		t.Fatal("width-gated vacuous-true conjunction must not report AlwaysTrue")
	}
	if cf.Match([]uint32{1, 2}) {
		t.Fatal("narrow row must fail the width gate")
	}
	if !cf.Match([]uint32{1, 2, 3, 4}) {
		t.Fatal("wide row must pass the folded-true predicate")
	}

	// a >= 0 over attr 0 is vacuously true with no width hazard beyond
	// attr 0 ... still requires the row to have attr 0.
	f = Filter{DNF: [][]Predicate{{{Attr: 0, Op: Ge, Val: 0}}}}
	cf = f.Compile()
	if cf.Match(nil) {
		t.Fatal("empty row must fail attr-0 width gate")
	}
	if !cf.Match([]uint32{0}) {
		t.Fatal("attr 0 present: vacuous-true must pass")
	}

	// Empty conjunction matches everything, even the empty row.
	f = Filter{DNF: [][]Predicate{{}}}
	cf = f.Compile()
	if !cf.AlwaysTrue() || !cf.Match(nil) {
		t.Fatal("empty conjunction must fold to always-true")
	}

	// Every conjunction constant-false: matches nothing.
	f = Filter{DNF: [][]Predicate{
		{{Attr: 0, Op: Lt, Val: 0}},
		{{Attr: 1, Op: Eq, Val: -7}},
		{{Attr: 2, Op: Gt, Val: 1<<32 - 1}},
	}}
	cf = f.Compile()
	if !cf.MatchesNothing() {
		t.Fatal("all-false DNF must fold to matches-nothing")
	}
	sel := selvec.Grow(nil, 64)
	cols := [][]uint32{make([]uint32, 64), make([]uint32, 64), make([]uint32, 64)}
	cf.EvalColumns(cols, 64, sel)
	if sel.Count(64) != 0 {
		t.Fatal("matches-nothing filter selected lanes")
	}

	// Empty filter matches everything columnar too.
	cf = Filter{}.Compile()
	if !cf.AlwaysTrue() {
		t.Fatal("empty filter must be always-true")
	}
	cf.EvalColumns(cols, 64, sel)
	if sel.Count(64) != 64 {
		t.Fatal("empty filter must select every lane")
	}
}

// TestFilterAdaptiveOrder feeds a skewed stream where the second
// predicate is far more selective than the first, and checks that after
// re-ranking the selective predicate runs first — without changing any
// selection bit.
func TestFilterAdaptiveOrder(t *testing.T) {
	f := Filter{DNF: [][]Predicate{{
		{Attr: 0, Op: Lt, Val: 1 << 30}, // passes nearly always
		{Attr: 1, Op: Eq, Val: 999999},  // passes nearly never
	}}}
	cf := f.Compile()
	order := cf.predOrder()
	if order[0][0].attr != 0 {
		t.Fatal("compile must preserve source order initially")
	}

	rng := rand.New(rand.NewSource(22))
	n := 256
	cols := [][]uint32{make([]uint32, n), make([]uint32, n)}
	sel := selvec.Grow(nil, n)
	interp := make([]bool, n)
	row := make([]uint32, 2)
	for batch := 0; batch < 2*rerankEvery; batch++ {
		for i := 0; i < n; i++ {
			cols[0][i] = uint32(rng.Intn(1 << 20))
			cols[1][i] = uint32(rng.Intn(1 << 24))
		}
		cf.EvalColumns(cols, n, sel)
		for i := 0; i < n; i++ {
			row[0], row[1] = cols[0][i], cols[1][i]
			interp[i] = f.Match(row)
			if sel.Test(i) != interp[i] {
				t.Fatalf("batch %d lane %d: reordered eval diverged", batch, i)
			}
		}
	}
	order = cf.predOrder()
	if got := order[0][0]; got.attr != 1 {
		t.Fatalf("after re-rank, selective predicate must run first; order starts with attr %d", got.attr)
	}
}
