package query

import (
	"encoding/binary"
	"testing"

	"repro/internal/attr"
	"repro/internal/hashtab"
	"repro/internal/selvec"
)

// fuzzFilterDecode turns an arbitrary byte string into a DNF filter
// plus a column batch, so the fuzzer explores filter shapes (depth,
// degenerate conjunctions, out-of-range attributes, boundary constants)
// and batch geometries at once. Exhausted input reads as zero.
func fuzzFilterDecode(data []byte) (Filter, [][]uint32, int) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	next64 := func() int64 {
		var buf [8]byte
		for i := range buf {
			buf[i] = next()
		}
		return int64(binary.LittleEndian.Uint64(buf[:]))
	}

	var f Filter
	nConj := int(next() % 5)
	for i := 0; i < nConj; i++ {
		nPred := int(next() % 6)
		conj := make([]Predicate, nPred)
		for j := range conj {
			conj[j] = Predicate{
				Attr: attr.ID(next() % 8),
				Op:   fuzzOps[int(next())%len(fuzzOps)],
				Val:  next64(),
			}
		}
		f.DNF = append(f.DNF, conj)
	}

	width := 1 + int(next()%6)
	n := 1 + int(next()) // 1..256: covers sub-word, word, multi-word
	cols := make([][]uint32, width)
	// Column values come from the input with a splitmix-style whitening
	// of the lane index mixed in, so a short input still yields varied
	// columns while staying deterministic.
	seed := uint64(next()) | uint64(next())<<8
	for a := range cols {
		cols[a] = make([]uint32, n)
		for i := range cols[a] {
			x := seed + uint64(a*n+i)*0x9e3779b97f4a7c15
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			v := uint32(x)
			if b := next(); b != 0 {
				v = uint32(b) // small values make predicates actually hit
			}
			cols[a][i] = v
		}
	}
	return f, cols, n
}

// FuzzFilterCompile checks parse→compile→vectorized-evaluate against
// the interpreted Filter.Match on every lane, under every kernel.
func FuzzFilterCompile(f *testing.F) {
	// Degenerate: empty input (empty filter), single empty conjunction.
	f.Add([]byte{})
	f.Add([]byte{1, 0, 3, 100})
	// One conjunction, boundary constants: attr0 < 2^32-1, attr1 != -1.
	f.Add([]byte{
		1, 2,
		0, 0, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0,
		1, 5, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		2, 200, 7, 9,
	})
	// Deep DNF: four conjunctions of five predicates with mixed ops,
	// out-of-range attrs, and constants straddling the uint32 domain.
	deep := []byte{4}
	for c := 0; c < 4; c++ {
		deep = append(deep, 5)
		for p := 0; p < 5; p++ {
			deep = append(deep, byte(c*2+p)) // attr, some >= width
			deep = append(deep, byte(c+p))   // op selector
			var val [8]byte
			binary.LittleEndian.PutUint64(val[:], uint64(1)<<32+uint64(c*p)-uint64(p))
			deep = append(deep, val[:]...)
		}
	}
	deep = append(deep, 3, 65, 42, 1) // width 4, n=66 (word boundary), seed
	f.Add(deep)

	f.Fuzz(func(t *testing.T, data []byte) {
		filt, cols, n := fuzzFilterDecode(data)
		prev := hashtab.SIMDEnabled()
		defer hashtab.SetSIMD(prev)

		row := make([]uint32, len(cols))
		want := make([]bool, n)
		for i := 0; i < n; i++ {
			for a := range cols {
				row[a] = cols[a][i]
			}
			want[i] = filt.Match(row)
		}

		for _, simd := range []bool{false, true} {
			if simd && !hashtab.SIMDAvailable() {
				continue
			}
			hashtab.SetSIMD(simd)
			cf := filt.Compile()
			sel := selvec.Grow(nil, n)
			cf.EvalColumns(cols, n, sel)
			for i := 0; i < n; i++ {
				for a := range cols {
					row[a] = cols[a][i]
				}
				if cf.Match(row) != want[i] {
					t.Fatalf("simd=%v filter %v row %v: scalar compiled diverged", simd, filt, row)
				}
				if sel.Test(i) != want[i] {
					t.Fatalf("simd=%v filter %v lane %d row %v: columnar diverged (got %v want %v)",
						simd, filt, i, row, sel.Test(i), want[i])
				}
			}
			if n > 0 {
				if tail := sel[len(sel)-1] &^ selvec.TailMask(n); tail != 0 {
					t.Fatalf("simd=%v dead tail bits %#x", simd, tail)
				}
			}
		}
	})
}
