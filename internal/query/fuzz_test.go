package query

import (
	"testing"
)

// FuzzParse hammers the GSQL parser: it must never panic, and anything it
// accepts must re-render to SQL it accepts again with the same structure.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"select A, tb, count(*) as cnt from R group by A, time/60 as tb",
		"select A, B, count(*) from R group by A, B",
		"select C, D, avg(B) as len from R group by C, D, time/300",
		"select A, count(*) as cnt, sum(D) as bytes from R where C >= 1024 and B != 80 or A = 1 group by A having cnt > 100",
		"select a from r group by",
		"select count(*) from R group by A, time/0",
		"select A, count(*), count_distinct(B) from R group by A, time/10 window 4 slide 2",
		"select A, median(C) as med, percentile(C, 95) as p95 from R group by A, time/10 window 3",
		"select count_distinct(B) from R group by A, time/5 window 70000",
		"select A, count(*) from R group by A window 4",
		"((((",
		"select",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		spec, err := Parse(sql)
		if err != nil {
			return
		}
		rendered := spec.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", sql, rendered, err)
		}
		if again.GroupBy != spec.GroupBy || again.EpochLen != spec.EpochLen ||
			len(again.Aggs) != len(spec.Aggs) || !again.Where.Equal(spec.Where) ||
			again.WindowSize != spec.WindowSize || again.WindowSlide != spec.WindowSlide ||
			!sameSketches(again.Sketches, spec.Sketches) {
			t.Fatalf("round trip changed structure: %q -> %q", sql, rendered)
		}
	})
}
