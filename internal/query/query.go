// Package query parses the GSQL-like aggregation query dialect the paper
// writes its workloads in:
//
//	select A, tb, count(*) as cnt
//	from R
//	where C >= 1024
//	group by A, time/60 as tb
//	having cnt > 100
//
// The dialect covers exactly the FTA shape Gigascope pushes to the LFTA:
// single-stream selection (WHERE on attribute/constant comparisons),
// grouping by attributes plus an optional time/N epoch column, the
// aggregates count(*), sum/min/max(attr), and a HAVING filter over
// aggregate aliases. A set of parsed queries that differ only in their
// GROUP BY is what the multiple-aggregation optimizer accepts.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/attr"
	"repro/internal/hashtab"
	"repro/internal/lfta"
	"repro/internal/sketch"
)

// CmpOp is a comparison operator in WHERE/HAVING predicates.
type CmpOp string

// Supported comparison operators.
const (
	Lt CmpOp = "<"
	Le CmpOp = "<="
	Gt CmpOp = ">"
	Ge CmpOp = ">="
	Eq CmpOp = "="
	Ne CmpOp = "!="
)

// Eval applies the operator.
func (op CmpOp) Eval(a, b int64) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	default:
		return false
	}
}

// Predicate is an "attr op constant" filter applied at the LFTA before
// any hash-table work (the F of FTA).
type Predicate struct {
	Attr attr.ID
	Op   CmpOp
	Val  int64
}

// Match evaluates the predicate on a record's attribute values.
func (p Predicate) Match(attrs []uint32) bool {
	if int(p.Attr) >= len(attrs) {
		return false
	}
	return p.Op.Eval(int64(attrs[p.Attr]), p.Val)
}

// Filter is a WHERE clause in disjunctive normal form: a record matches
// if every predicate of at least one conjunction holds ("and" binds
// tighter than "or", as usual). The zero value matches everything.
type Filter struct {
	DNF [][]Predicate
}

// Empty reports whether the filter matches everything.
func (f Filter) Empty() bool { return len(f.DNF) == 0 }

// Match evaluates the filter on a record's attribute values.
func (f Filter) Match(attrs []uint32) bool {
	if len(f.DNF) == 0 {
		return true
	}
	for _, conj := range f.DNF {
		ok := true
		for _, p := range conj {
			if !p.Match(attrs) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Equal reports structural equality; queries sharing phantoms must share
// their filter.
func (f Filter) Equal(g Filter) bool {
	if len(f.DNF) != len(g.DNF) {
		return false
	}
	for i := range f.DNF {
		if len(f.DNF[i]) != len(g.DNF[i]) {
			return false
		}
		for j := range f.DNF[i] {
			if f.DNF[i][j] != g.DNF[i][j] {
				return false
			}
		}
	}
	return true
}

// String renders the filter as re-parseable SQL.
func (f Filter) String() string {
	var disj []string
	for _, conj := range f.DNF {
		var ps []string
		for _, p := range conj {
			ps = append(ps, fmt.Sprintf("%s %s %d", p.Attr.Name(), p.Op, p.Val))
		}
		disj = append(disj, strings.Join(ps, " and "))
	}
	return strings.Join(disj, " or ")
}

// Having is an "alias op constant" filter over a finalized aggregate.
type Having struct {
	AggIndex int
	Op       CmpOp
	Val      int64
	IsAvg    bool // compare sum/count instead of the raw slot
	CntIndex int  // count slot for IsAvg
}

// Agg is one aggregate column of the select list.
//
// An avg(X) column is rewritten at parse time into a physical sum(X) slot
// plus a (possibly hidden) count(*) slot: the LFTA and HFTA only ever
// combine associative aggregates, and the division happens at output time
// (see OutputRow). AvgOf points at the count slot; Hidden marks slots the
// rewrite added that do not appear in the select list.
type Agg struct {
	Spec   lfta.AggSpec
	Alias  string // output column name (defaults to e.g. "count(*)")
	AvgOf  int    // index of the count slot when this is an average; -1 otherwise
	Hidden bool   // internal slot added by the avg rewrite
}

// callString renders the aggregate as re-parseable SQL, e.g.
// "count(*) as cnt", "sum(B)" or "avg(B) as len".
func (a Agg) callString() string {
	var call string
	switch {
	case a.AvgOf >= 0:
		call = fmt.Sprintf("avg(%s)", attr.ID(a.Spec.Input).Name())
	case a.Spec.Input < 0:
		call = "count(*)"
	default:
		call = fmt.Sprintf("%s(%s)", a.Spec.Op, attr.ID(a.Spec.Input).Name())
	}
	if a.Alias != "" && a.Alias != call {
		call += " as " + a.Alias
	}
	return call
}

// SketchAgg is one approximate aggregate column: count_distinct(X)
// (HLL), percentile(X, p) or median(X) (t-digest). Sketch aggregates are
// computed at the HFTA from mergeable pane partials, never inside the
// LFTA hash tables, so they ride alongside the exact Aggs rather than
// occupying physical slots.
type SketchAgg struct {
	Agg     sketch.Agg
	Alias   string // output column name (defaults to the call syntax)
	Percent int    // percentile as written, 1..99; 0 for count_distinct
	Median  bool   // written as median(X) rather than percentile(X, 50)
}

// callString renders the sketch aggregate as re-parseable SQL.
func (a SketchAgg) callString() string {
	name := attr.ID(a.Agg.Input).Name()
	var call string
	switch {
	case a.Agg.Kind == sketch.Distinct:
		call = fmt.Sprintf("count_distinct(%s)", name)
	case a.Median:
		call = fmt.Sprintf("median(%s)", name)
	default:
		call = fmt.Sprintf("percentile(%s, %d)", name, a.Percent)
	}
	if a.Alias != "" && a.Alias != call {
		call += " as " + a.Alias
	}
	return call
}

// MaxWindowEpochs bounds window size and slide; it caps how many window
// closes a single clock jump can force the composer to emit.
const MaxWindowEpochs = 65536

// Spec is a parsed aggregation query.
type Spec struct {
	Name     string   // optional label (set by the caller)
	GroupBy  attr.Set // grouping attributes (the relation)
	EpochLen uint32   // seconds per epoch; 0 if no time bucket
	EpochVar string   // alias of the time bucket column, if any
	Aggs     []Agg
	Sketches []SketchAgg // approximate HFTA-side aggregates, if any
	Where    Filter      // WHERE clause in DNF (and/or)
	HavingCl []Having    // conjunction
	Source   string      // FROM relation name

	// WindowSize/WindowSlide express a sliding window in epochs
	// ("window N slide M" after group by): window i covers epochs
	// [i·M, i·M+N). 0/0 means tumbling per-epoch output, the default.
	WindowSize  uint32
	WindowSlide uint32
}

// Windowed reports whether the query declares a sliding window.
func (s *Spec) Windowed() bool { return s.WindowSize > 0 }

// SketchSpecs extracts the sketch.Agg list.
func (s *Spec) SketchSpecs() []sketch.Agg {
	out := make([]sketch.Agg, len(s.Sketches))
	for i, a := range s.Sketches {
		out[i] = a.Agg
	}
	return out
}

// AggSpecs extracts the lfta.AggSpec list.
func (s *Spec) AggSpecs() []lfta.AggSpec {
	out := make([]lfta.AggSpec, len(s.Aggs))
	for i, a := range s.Aggs {
		out[i] = a.Spec
	}
	return out
}

// MatchWhere reports whether a record passes the WHERE clause.
func (s *Spec) MatchWhere(attrs []uint32) bool { return s.Where.Match(attrs) }

// MatchHaving reports whether finalized aggregates pass HAVING.
func (s *Spec) MatchHaving(aggs []int64) bool {
	for _, h := range s.HavingCl {
		if h.AggIndex >= len(aggs) {
			return false
		}
		if h.IsAvg {
			if h.CntIndex >= len(aggs) || aggs[h.CntIndex] == 0 {
				return false
			}
			avg := float64(aggs[h.AggIndex]) / float64(aggs[h.CntIndex])
			if !h.Op.Eval(int64(avg), h.Val) {
				return false
			}
			continue
		}
		if !h.Op.Eval(aggs[h.AggIndex], h.Val) {
			return false
		}
	}
	return true
}

func hasAvg(aggs []Agg) bool {
	for _, a := range aggs {
		if a.AvgOf != -1 {
			return true
		}
	}
	return false
}

// OutputColumns returns the visible aggregate column names, in select
// order (hidden slots added by the avg rewrite are skipped).
func (s *Spec) OutputColumns() []string {
	var out []string
	for _, a := range s.Aggs {
		if !a.Hidden {
			out = append(out, a.Alias)
		}
	}
	return out
}

// OutputRow finalizes a row's physical aggregate slots into the visible
// output values: averages are divided out, everything else passes
// through. The result aligns with OutputColumns.
func (s *Spec) OutputRow(aggs []int64) []float64 {
	var out []float64
	for i, a := range s.Aggs {
		if a.Hidden {
			continue
		}
		if a.AvgOf >= 0 {
			cnt := aggs[a.AvgOf]
			if cnt == 0 {
				out = append(out, 0)
			} else {
				out = append(out, float64(aggs[i])/float64(cnt))
			}
			continue
		}
		out = append(out, float64(aggs[i]))
	}
	return out
}

// String renders the query back in the dialect.
func (s *Spec) String() string {
	var b strings.Builder
	b.WriteString("select ")
	var cols []string
	for _, id := range s.GroupBy.IDs() {
		cols = append(cols, id.Name())
	}
	if s.EpochLen > 0 && s.EpochVar != "" {
		cols = append(cols, s.EpochVar)
	}
	for _, a := range s.Aggs {
		if !a.Hidden {
			cols = append(cols, a.callString())
		}
	}
	for _, a := range s.Sketches {
		cols = append(cols, a.callString())
	}
	b.WriteString(strings.Join(cols, ", "))
	b.WriteString(" from ")
	src := s.Source
	if src == "" {
		src = "R"
	}
	b.WriteString(src)
	if !s.Where.Empty() {
		b.WriteString(" where ")
		b.WriteString(s.Where.String())
	}
	b.WriteString(" group by ")
	var gs []string
	for _, id := range s.GroupBy.IDs() {
		gs = append(gs, id.Name())
	}
	if s.EpochLen > 0 {
		g := fmt.Sprintf("time/%d", s.EpochLen)
		if s.EpochVar != "" {
			g += " as " + s.EpochVar
		}
		gs = append(gs, g)
	}
	b.WriteString(strings.Join(gs, ", "))
	if s.WindowSize > 0 {
		fmt.Fprintf(&b, " window %d", s.WindowSize)
		if s.WindowSlide != 1 {
			fmt.Fprintf(&b, " slide %d", s.WindowSlide)
		}
	}
	if len(s.HavingCl) > 0 {
		var hs []string
		for _, h := range s.HavingCl {
			alias := fmt.Sprintf("agg%d", h.AggIndex)
			if h.AggIndex < len(s.Aggs) {
				alias = s.Aggs[h.AggIndex].Alias
			}
			hs = append(hs, fmt.Sprintf("%s %s %d", alias, h.Op, h.Val))
		}
		b.WriteString(" having ")
		b.WriteString(strings.Join(hs, " and "))
	}
	return b.String()
}

// Parse parses one query.
func Parse(sql string) (*Spec, error) {
	p := &parser{toks: tokenize(sql), src: sql}
	spec, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("query: %v in %q", err, sql)
	}
	return spec, nil
}

// MustParse is Parse that panics on error.
func MustParse(sql string) *Spec {
	s, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseSet parses several queries and checks they are compatible for
// multiple-aggregation optimization: same source, same epoch length, same
// aggregate list, same WHERE clause — differing only in grouping
// attributes, as the paper's problem statement requires.
func ParseSet(sqls []string) ([]*Spec, error) {
	if len(sqls) == 0 {
		return nil, fmt.Errorf("query: empty query set")
	}
	specs := make([]*Spec, len(sqls))
	for i, s := range sqls {
		spec, err := Parse(s)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	base := specs[0]
	for _, s := range specs[1:] {
		if s.Source != base.Source {
			return nil, fmt.Errorf("query: queries read different sources %q and %q", base.Source, s.Source)
		}
		if s.EpochLen != base.EpochLen {
			return nil, fmt.Errorf("query: mixed epoch lengths %d and %d", base.EpochLen, s.EpochLen)
		}
		if !sameAggs(s.Aggs, base.Aggs) {
			return nil, fmt.Errorf("query: aggregate lists differ between queries")
		}
		if !s.Where.Equal(base.Where) {
			return nil, fmt.Errorf("query: WHERE clauses differ between queries; shared phantoms need a common filter")
		}
		if s.WindowSize != base.WindowSize || s.WindowSlide != base.WindowSlide {
			return nil, fmt.Errorf("query: mixed window clauses (%d/%d and %d/%d)", base.WindowSize, base.WindowSlide, s.WindowSize, s.WindowSlide)
		}
		if !sameSketches(s.Sketches, base.Sketches) {
			return nil, fmt.Errorf("query: sketch aggregate lists differ between queries")
		}
	}
	return specs, nil
}

func sameAggs(a, b []Agg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Spec != b[i].Spec {
			return false
		}
	}
	return true
}

func sameSketches(a, b []SketchAgg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Agg != b[i].Agg {
			return false
		}
	}
	return true
}

// --- lexer ---

type token struct {
	kind string // "ident", "num", "punct"
	text string
}

func tokenize(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, token{"ident", s[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			toks = append(toks, token{"num", s[i:j]})
			i = j
		case c == '<' || c == '>' || c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{"punct", s[i : i+2]})
				i += 2
			} else {
				toks = append(toks, token{"punct", string(c)})
				i++
			}
		default:
			toks = append(toks, token{"punct", string(c)})
			i++
		}
	}
	return toks
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return token{}
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == "ident" && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("expected %q, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == "punct" && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

// selectItem captures a select-list entry before resolution.
type selectItem struct {
	isAgg bool
	op    string // count/sum/min/max/avg/count_distinct/percentile/median
	arg   string // "*" or attribute name
	pct   int    // percentile argument, 1..99
	name  string // plain column name when !isAgg
	alias string
}

func isSketchOp(op string) bool {
	return op == "count_distinct" || op == "percentile" || op == "median"
}

func (p *parser) parseQuery() (*Spec, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	var items []selectItem
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	srcTok := p.next()
	if srcTok.kind != "ident" {
		return nil, fmt.Errorf("expected source relation, got %q", srcTok.text)
	}
	spec := &Spec{Source: srcTok.text}

	if p.acceptKeyword("where") {
		filter, err := p.parseFilter()
		if err != nil {
			return nil, err
		}
		spec.Where = filter
	}

	if err := p.expectKeyword("group"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("by"); err != nil {
		return nil, err
	}
	if err := p.parseGroupBy(spec); err != nil {
		return nil, err
	}
	if err := p.parseWindow(spec); err != nil {
		return nil, err
	}

	// Resolve select list against the group by.
	aliasToAgg := map[string]int{}
	const needsCount = -2 // AvgOf placeholder until the count slot is known
	for _, it := range items {
		if it.isAgg {
			alias := it.alias
			if alias == "" {
				if it.op == "percentile" {
					alias = fmt.Sprintf("percentile(%s, %d)", it.arg, it.pct)
				} else {
					alias = fmt.Sprintf("%s(%s)", strings.ToLower(it.op), it.arg)
				}
			}
			if isSketchOp(it.op) {
				sa, err := resolveSketchAgg(it)
				if err != nil {
					return nil, err
				}
				sa.Alias = alias
				spec.Sketches = append(spec.Sketches, sa)
				continue
			}
			if it.op == "avg" {
				// avg(X) → physical sum(X); the count slot is resolved
				// after the whole select list is known.
				if it.arg == "*" {
					return nil, fmt.Errorf("avg(*) is not a valid aggregate")
				}
				sumSpec, err := resolveAgg("sum", it.arg)
				if err != nil {
					return nil, err
				}
				aliasToAgg[alias] = len(spec.Aggs)
				spec.Aggs = append(spec.Aggs, Agg{Spec: sumSpec, Alias: alias, AvgOf: needsCount})
				continue
			}
			aggSpec, err := resolveAgg(it.op, it.arg)
			if err != nil {
				return nil, err
			}
			aliasToAgg[alias] = len(spec.Aggs)
			spec.Aggs = append(spec.Aggs, Agg{Spec: aggSpec, Alias: alias, AvgOf: -1})
			continue
		}
		// Plain column: must be a grouping attribute or the epoch alias.
		if spec.EpochVar != "" && it.name == spec.EpochVar {
			continue
		}
		set, err := attr.ParseSet(it.name)
		if err != nil || set.Size() != 1 {
			return nil, fmt.Errorf("select column %q is neither an attribute nor the epoch alias", it.name)
		}
		if !set.SubsetOf(spec.GroupBy) {
			return nil, fmt.Errorf("select column %q is not in the group by", it.name)
		}
	}
	if len(spec.Aggs) == 0 {
		if len(spec.Sketches) == 0 {
			return nil, fmt.Errorf("query has no aggregate")
		}
		// Sketch-only select list: the engine's exact pipeline still
		// needs at least one physical slot per group, so add a hidden
		// count(*) — it also backs the window ledger row counts.
		spec.Aggs = append(spec.Aggs, Agg{
			Spec:   lfta.AggSpec{Op: hashtab.Sum, Input: -1},
			Alias:  "__cnt",
			AvgOf:  -1,
			Hidden: true,
		})
	}

	// Resolve the count slot for any avg rewrites: reuse a visible
	// count(*) if the query already has one, otherwise append a hidden
	// one.
	if hasAvg(spec.Aggs) {
		cnt := -1
		for i, a := range spec.Aggs {
			if a.Spec.Input < 0 && a.AvgOf == -1 {
				cnt = i
				break
			}
		}
		if cnt < 0 {
			cnt = len(spec.Aggs)
			spec.Aggs = append(spec.Aggs, Agg{
				Spec:   lfta.AggSpec{Op: hashtab.Sum, Input: -1},
				Alias:  "__cnt",
				AvgOf:  -1,
				Hidden: true,
			})
		}
		for i := range spec.Aggs {
			if spec.Aggs[i].AvgOf == needsCount {
				spec.Aggs[i].AvgOf = cnt
			}
		}
	}

	if p.acceptKeyword("having") {
		if err := p.parseHaving(spec, aliasToAgg); err != nil {
			return nil, err
		}
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("trailing input %q", p.peek().text)
	}
	if spec.GroupBy.IsEmpty() {
		return nil, fmt.Errorf("group by lists no attributes")
	}
	return spec, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	t := p.next()
	if t.kind != "ident" {
		return selectItem{}, fmt.Errorf("expected select column, got %q", t.text)
	}
	lower := strings.ToLower(t.text)
	if (lower == "count" || lower == "sum" || lower == "min" || lower == "max" || lower == "avg" || isSketchOp(lower)) && p.acceptPunct("(") {
		var arg string
		if p.acceptPunct("*") {
			arg = "*"
		} else {
			at := p.next()
			if at.kind != "ident" {
				return selectItem{}, fmt.Errorf("expected aggregate argument, got %q", at.text)
			}
			arg = at.text
		}
		it := selectItem{isAgg: true, op: lower, arg: arg}
		if lower == "percentile" {
			if err := p.expectPunct(","); err != nil {
				return selectItem{}, err
			}
			num := p.next()
			if num.kind != "num" {
				return selectItem{}, fmt.Errorf("expected percentile rank, got %q", num.text)
			}
			n, err := strconv.Atoi(num.text)
			if err != nil || n < 1 || n > 99 {
				return selectItem{}, fmt.Errorf("percentile rank must be an integer in [1, 99], got %q", num.text)
			}
			it.pct = n
		}
		if err := p.expectPunct(")"); err != nil {
			return selectItem{}, err
		}
		if p.acceptKeyword("as") {
			al := p.next()
			if al.kind != "ident" {
				return selectItem{}, fmt.Errorf("expected alias, got %q", al.text)
			}
			it.alias = al.text
		}
		return it, nil
	}
	it := selectItem{name: t.text}
	if p.acceptKeyword("as") {
		al := p.next()
		if al.kind != "ident" {
			return selectItem{}, fmt.Errorf("expected alias, got %q", al.text)
		}
		it.alias = al.text
	}
	return it, nil
}

func resolveAgg(op, arg string) (lfta.AggSpec, error) {
	if op == "count" {
		if arg != "*" {
			return lfta.AggSpec{}, fmt.Errorf("only count(*) is supported, got count(%s)", arg)
		}
		return lfta.AggSpec{Op: hashtab.Sum, Input: -1}, nil
	}
	if arg == "*" {
		return lfta.AggSpec{}, fmt.Errorf("%s(*) is not a valid aggregate", op)
	}
	set, err := attr.ParseSet(arg)
	if err != nil || set.Size() != 1 {
		return lfta.AggSpec{}, fmt.Errorf("aggregate argument %q must be a single attribute", arg)
	}
	input := int(set.IDs()[0])
	switch op {
	case "sum":
		return lfta.AggSpec{Op: hashtab.Sum, Input: input}, nil
	case "min":
		return lfta.AggSpec{Op: hashtab.Min, Input: input}, nil
	case "max":
		return lfta.AggSpec{Op: hashtab.Max, Input: input}, nil
	default:
		return lfta.AggSpec{}, fmt.Errorf("unknown aggregate %q", op)
	}
}

func resolveSketchAgg(it selectItem) (SketchAgg, error) {
	if it.arg == "*" {
		return SketchAgg{}, fmt.Errorf("%s(*) is not a valid aggregate", it.op)
	}
	set, err := attr.ParseSet(it.arg)
	if err != nil || set.Size() != 1 {
		return SketchAgg{}, fmt.Errorf("aggregate argument %q must be a single attribute", it.arg)
	}
	input := int(set.IDs()[0])
	switch it.op {
	case "count_distinct":
		return SketchAgg{Agg: sketch.Agg{Kind: sketch.Distinct, Input: input}}, nil
	case "median":
		return SketchAgg{Agg: sketch.Agg{Kind: sketch.Quantile, Input: input, Q: 0.5}, Percent: 50, Median: true}, nil
	case "percentile":
		return SketchAgg{Agg: sketch.Agg{Kind: sketch.Quantile, Input: input, Q: float64(it.pct) / 100}, Percent: it.pct}, nil
	default:
		return SketchAgg{}, fmt.Errorf("unknown aggregate %q", it.op)
	}
}

// parseWindow parses the optional "window N [slide M]" clause following
// the group by. The window is expressed in epochs, so it requires a
// time/N bucket in the group by.
func (p *parser) parseWindow(spec *Spec) error {
	if !p.acceptKeyword("window") {
		return nil
	}
	if spec.EpochLen == 0 {
		return fmt.Errorf("window clause requires a time/N bucket in the group by")
	}
	num := p.next()
	if num.kind != "num" {
		return fmt.Errorf("expected window size, got %q", num.text)
	}
	n, err := strconv.ParseUint(num.text, 10, 32)
	if err != nil || n == 0 || n > MaxWindowEpochs {
		return fmt.Errorf("window size must be in [1, %d], got %q", MaxWindowEpochs, num.text)
	}
	spec.WindowSize = uint32(n)
	spec.WindowSlide = 1
	if p.acceptKeyword("slide") {
		num := p.next()
		if num.kind != "num" {
			return fmt.Errorf("expected window slide, got %q", num.text)
		}
		m, err := strconv.ParseUint(num.text, 10, 32)
		if err != nil || m == 0 || m > MaxWindowEpochs {
			return fmt.Errorf("window slide must be in [1, %d], got %q", MaxWindowEpochs, num.text)
		}
		spec.WindowSlide = uint32(m)
	}
	return nil
}

func (p *parser) parseGroupBy(spec *Spec) error {
	for {
		t := p.next()
		if t.kind != "ident" {
			return fmt.Errorf("expected group-by item, got %q", t.text)
		}
		if strings.EqualFold(t.text, "time") {
			if err := p.expectPunct("/"); err != nil {
				return err
			}
			num := p.next()
			if num.kind != "num" {
				return fmt.Errorf("expected epoch length after time/, got %q", num.text)
			}
			n, err := strconv.ParseUint(num.text, 10, 32)
			if err != nil || n == 0 {
				return fmt.Errorf("bad epoch length %q", num.text)
			}
			if spec.EpochLen != 0 {
				return fmt.Errorf("duplicate time bucket in group by")
			}
			spec.EpochLen = uint32(n)
			if p.acceptKeyword("as") {
				al := p.next()
				if al.kind != "ident" {
					return fmt.Errorf("expected alias, got %q", al.text)
				}
				spec.EpochVar = al.text
			}
		} else {
			set, err := attr.ParseSet(t.text)
			if err != nil {
				return fmt.Errorf("bad grouping attribute %q", t.text)
			}
			spec.GroupBy = spec.GroupBy.Union(set)
		}
		if !p.acceptPunct(",") {
			return nil
		}
	}
}

// parseFilter parses the WHERE clause as DNF: conjunctions of
// comparisons joined by "or" ("and" binds tighter).
func (p *parser) parseFilter() (Filter, error) {
	var f Filter
	for {
		conj, err := p.parsePredicates()
		if err != nil {
			return Filter{}, err
		}
		f.DNF = append(f.DNF, conj)
		if !p.acceptKeyword("or") {
			return f, nil
		}
	}
}

func (p *parser) parsePredicates() ([]Predicate, error) {
	var out []Predicate
	for {
		at := p.next()
		if at.kind != "ident" {
			return nil, fmt.Errorf("expected attribute in predicate, got %q", at.text)
		}
		set, err := attr.ParseSet(at.text)
		if err != nil || set.Size() != 1 {
			return nil, fmt.Errorf("predicate attribute %q must be a single attribute", at.text)
		}
		op, err := p.parseCmpOp()
		if err != nil {
			return nil, err
		}
		num := p.next()
		if num.kind != "num" {
			return nil, fmt.Errorf("expected constant, got %q", num.text)
		}
		v, err := strconv.ParseInt(num.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad constant %q", num.text)
		}
		out = append(out, Predicate{Attr: set.IDs()[0], Op: op, Val: v})
		if !p.acceptKeyword("and") {
			return out, nil
		}
	}
}

func (p *parser) parseHaving(spec *Spec, aliasToAgg map[string]int) error {
	for {
		al := p.next()
		if al.kind != "ident" {
			return fmt.Errorf("expected aggregate alias in having, got %q", al.text)
		}
		idx, ok := aliasToAgg[al.text]
		if !ok {
			return fmt.Errorf("having references unknown aggregate %q", al.text)
		}
		op, err := p.parseCmpOp()
		if err != nil {
			return err
		}
		num := p.next()
		if num.kind != "num" {
			return fmt.Errorf("expected constant, got %q", num.text)
		}
		v, err := strconv.ParseInt(num.text, 10, 64)
		if err != nil {
			return fmt.Errorf("bad constant %q", num.text)
		}
		h := Having{AggIndex: idx, Op: op, Val: v}
		if a := spec.Aggs[idx]; a.AvgOf >= 0 {
			h.IsAvg, h.CntIndex = true, a.AvgOf
		}
		spec.HavingCl = append(spec.HavingCl, h)
		if !p.acceptKeyword("and") {
			return nil
		}
	}
}

func (p *parser) parseCmpOp() (CmpOp, error) {
	t := p.next()
	if t.kind != "punct" {
		return "", fmt.Errorf("expected comparison operator, got %q", t.text)
	}
	switch t.text {
	case "<", "<=", ">", ">=", "=", "!=":
		return CmpOp(t.text), nil
	default:
		return "", fmt.Errorf("unknown operator %q", t.text)
	}
}
