package query

import (
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/hashtab"
)

func TestParsePaperQ0(t *testing.T) {
	// The paper's Q0: select A, tb, count(*) as cnt from R
	//                 group by A, time/60 as tb
	s, err := Parse("select A, tb, count(*) as cnt from R group by A, time/60 as tb")
	if err != nil {
		t.Fatal(err)
	}
	if s.GroupBy != attr.MustParseSet("A") {
		t.Errorf("GroupBy = %v", s.GroupBy)
	}
	if s.EpochLen != 60 || s.EpochVar != "tb" {
		t.Errorf("epoch = %d as %q", s.EpochLen, s.EpochVar)
	}
	if len(s.Aggs) != 1 || s.Aggs[0].Alias != "cnt" {
		t.Errorf("aggs = %+v", s.Aggs)
	}
	if s.Aggs[0].Spec.Input != -1 || s.Aggs[0].Spec.Op != hashtab.Sum {
		t.Errorf("count(*) spec = %+v", s.Aggs[0].Spec)
	}
	if s.Source != "R" {
		t.Errorf("source = %q", s.Source)
	}
}

func TestParsePaperQ123(t *testing.T) {
	// Q1/Q2/Q3 of Section 2.4.
	for _, q := range []struct{ sql, rel string }{
		{"select A, count(*) from R group by A", "A"},
		{"select B, count(*) from R group by B", "B"},
		{"select C, count(*) From R group by C", "C"}, // case-insensitive keywords
	} {
		s, err := Parse(q.sql)
		if err != nil {
			t.Fatalf("%q: %v", q.sql, err)
		}
		if s.GroupBy != attr.MustParseSet(q.rel) {
			t.Errorf("%q: GroupBy = %v", q.sql, s.GroupBy)
		}
		if s.EpochLen != 0 {
			t.Errorf("%q: unexpected epoch %d", q.sql, s.EpochLen)
		}
	}
}

func TestParseMultiAttributeGroupBy(t *testing.T) {
	s, err := Parse("select A, B, count(*) from R group by A, B, time/300")
	if err != nil {
		t.Fatal(err)
	}
	if s.GroupBy != attr.MustParseSet("AB") {
		t.Errorf("GroupBy = %v", s.GroupBy)
	}
	if s.EpochLen != 300 {
		t.Errorf("EpochLen = %d", s.EpochLen)
	}
}

func TestParseWhereHaving(t *testing.T) {
	s, err := Parse("select A, count(*) as cnt, sum(D) as bytes from R where C >= 1024 and B != 80 group by A having cnt > 100 and bytes <= 5000")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Where.DNF) != 1 || len(s.Where.DNF[0]) != 2 {
		t.Fatalf("Where = %+v", s.Where)
	}
	if p0 := s.Where.DNF[0][0]; p0.Attr != 2 || p0.Op != Ge || p0.Val != 1024 {
		t.Errorf("Where[0] = %+v", p0)
	}
	if !s.MatchWhere([]uint32{0, 81, 1024, 0}) {
		t.Error("record matching both predicates rejected")
	}
	if s.MatchWhere([]uint32{0, 80, 1024, 0}) {
		t.Error("B != 80 predicate did not fire")
	}
	if s.MatchWhere([]uint32{0, 81, 1023, 0}) {
		t.Error("C >= 1024 predicate did not fire")
	}
	if len(s.HavingCl) != 2 {
		t.Fatalf("Having = %+v", s.HavingCl)
	}
	if !s.MatchHaving([]int64{101, 5000}) {
		t.Error("valid aggregates rejected by having")
	}
	if s.MatchHaving([]int64{100, 5000}) {
		t.Error("cnt > 100 did not fire")
	}
	if s.MatchHaving([]int64{101, 5001}) {
		t.Error("bytes <= 5000 did not fire")
	}
}

func TestParseAggregates(t *testing.T) {
	s, err := Parse("select A, count(*), sum(B), min(C), max(D) from R group by A")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Aggs) != 4 {
		t.Fatalf("aggs = %+v", s.Aggs)
	}
	wantOps := []hashtab.AggOp{hashtab.Sum, hashtab.Sum, hashtab.Min, hashtab.Max}
	wantInputs := []int{-1, 1, 2, 3}
	for i := range wantOps {
		if s.Aggs[i].Spec.Op != wantOps[i] || s.Aggs[i].Spec.Input != wantInputs[i] {
			t.Errorf("agg %d = %+v", i, s.Aggs[i].Spec)
		}
	}
	// Default aliases are the rendered call.
	if s.Aggs[1].Alias != "sum(B)" {
		t.Errorf("alias = %q", s.Aggs[1].Alias)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select from R group by A",
		"select A from R group by A",                             // no aggregate
		"select count(*) from R",                                 // no group by
		"select count(*) from R group by",                        // empty group by
		"select count(B) from R group by A",                      // count takes *
		"select sum(*) from R group by A",                        // sum takes an attribute
		"select avg(*) from R group by A",                        // avg takes an attribute
		"select stddev(B) from R group by A",                     // unknown aggregate
		"select X1, count(*) from R group by X1",                 // bad attribute
		"select A, count(*) from R group by A, time/0",           // zero epoch
		"select A, count(*) from R group by A, time/60, time/60", // duplicate epoch
		"select A, count(*) from R group by A having bogus > 1",  // unknown alias
		"select A, count(*) from R where A ~ 3 group by A",       // bad operator
		"select A, count(*) from R where A > x group by A",       // non-numeric constant
		"select B, count(*) from R group by A",                   // selected non-grouped column
		"select A, count(*) from R group by A trailing",          // trailing tokens
		"select A, count(*) as c from R group by A having c > 1 x",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded; want error", sql)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"select A, tb, count(*) as cnt from R group by A, time/60 as tb",
		"select A, B, count(*) as cnt from pkts where C >= 1024 group by A, B having cnt > 100",
		"select D, count(*) as n, sum(B) as bytes from R group by D",
	} {
		s1, err := Parse(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", s1.String(), err)
		}
		if s2.GroupBy != s1.GroupBy || s2.EpochLen != s1.EpochLen || len(s2.Aggs) != len(s1.Aggs) ||
			!s2.Where.Equal(s1.Where) || len(s2.HavingCl) != len(s1.HavingCl) {
			t.Errorf("round trip changed query: %q -> %q", sql, s1.String())
		}
	}
}

func TestParseSetCompatibility(t *testing.T) {
	ok := []string{
		"select A, B, count(*) as cnt from R group by A, B, time/300",
		"select B, C, count(*) as cnt from R group by B, C, time/300",
		"select B, D, count(*) as cnt from R group by B, D, time/300",
	}
	specs, err := ParseSet(ok)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[1].GroupBy != attr.MustParseSet("BC") {
		t.Errorf("specs = %+v", specs)
	}

	for name, bad := range map[string][]string{
		"different sources": {
			"select A, count(*) from R group by A",
			"select B, count(*) from S group by B",
		},
		"different epochs": {
			"select A, count(*) from R group by A, time/60",
			"select B, count(*) from R group by B, time/300",
		},
		"different aggregates": {
			"select A, count(*) from R group by A",
			"select B, sum(C) from R group by B",
		},
		"different filters": {
			"select A, count(*) from R where C > 1 group by A",
			"select B, count(*) from R group by B",
		},
		"empty": {},
	} {
		if _, err := ParseSet(bad); err == nil {
			t.Errorf("%s: incompatible set accepted", name)
		}
	}
}

func TestWhereDisjunction(t *testing.T) {
	// "and" binds tighter than "or": (B = 80 and C < 10) or B = 443.
	s, err := Parse("select A, count(*) from R where B = 80 and C < 10 or B = 443 group by A")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Where.DNF) != 2 || len(s.Where.DNF[0]) != 2 || len(s.Where.DNF[1]) != 1 {
		t.Fatalf("DNF shape = %+v", s.Where.DNF)
	}
	cases := []struct {
		attrs []uint32
		want  bool
	}{
		{[]uint32{0, 80, 5}, true},    // first conjunct
		{[]uint32{0, 80, 10}, false},  // C < 10 fails, B != 443
		{[]uint32{0, 443, 99}, true},  // second conjunct
		{[]uint32{0, 8080, 5}, false}, // neither
	}
	for _, c := range cases {
		if got := s.MatchWhere(c.attrs); got != c.want {
			t.Errorf("MatchWhere(%v) = %v; want %v", c.attrs, got, c.want)
		}
	}
	// Round trip.
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", s.String(), err)
	}
	if !s2.Where.Equal(s.Where) {
		t.Errorf("round trip changed filter: %q", s.String())
	}
	// Empty filter matches everything.
	var empty Filter
	if !empty.Match([]uint32{1}) {
		t.Error("empty filter rejected a record")
	}
	// Filter inequality.
	if s.Where.Equal(s2.Where) != true || s.Where.Equal(Filter{}) {
		t.Error("Filter.Equal wrong")
	}
}

func TestAvgRewrite(t *testing.T) {
	// The paper's motivating query: "for every destination IP,
	// destination port and 5 minute interval, report the average packet
	// length". avg rewrites to sum + a hidden count.
	s, err := Parse("select C, D, avg(B) as len from R group by C, D, time/300")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Aggs) != 2 {
		t.Fatalf("aggs = %+v; want sum slot + hidden count", s.Aggs)
	}
	sum, cnt := s.Aggs[0], s.Aggs[1]
	if sum.Spec.Op != hashtab.Sum || sum.Spec.Input != 1 || sum.AvgOf != 1 || sum.Hidden {
		t.Errorf("sum slot = %+v", sum)
	}
	if cnt.Spec.Input != -1 || !cnt.Hidden {
		t.Errorf("count slot = %+v", cnt)
	}
	if cols := s.OutputColumns(); len(cols) != 1 || cols[0] != "len" {
		t.Errorf("OutputColumns = %v", cols)
	}
	// sum = 90, count = 4 → avg 22.5.
	if out := s.OutputRow([]int64{90, 4}); len(out) != 1 || out[0] != 22.5 {
		t.Errorf("OutputRow = %v", out)
	}
	if out := s.OutputRow([]int64{90, 0}); out[0] != 0 {
		t.Errorf("zero-count OutputRow = %v", out)
	}
	// String round trip preserves the avg.
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", s.String(), err)
	}
	if len(s2.Aggs) != 2 || s2.Aggs[0].AvgOf != 1 {
		t.Errorf("round trip lost the avg rewrite: %q -> %+v", s.String(), s2.Aggs)
	}
}

func TestAvgReusesVisibleCount(t *testing.T) {
	s, err := Parse("select A, count(*) as cnt, avg(B) as len from R group by A")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Aggs) != 2 {
		t.Fatalf("aggs = %+v; the visible count must be reused", s.Aggs)
	}
	if s.Aggs[1].AvgOf != 0 {
		t.Errorf("avg slot points at %d; want the visible count at 0", s.Aggs[1].AvgOf)
	}
	if out := s.OutputRow([]int64{4, 90}); len(out) != 2 || out[0] != 4 || out[1] != 22.5 {
		t.Errorf("OutputRow = %v", out)
	}
}

func TestAvgHaving(t *testing.T) {
	s, err := Parse("select A, avg(B) as len from R group by A having len >= 100")
	if err != nil {
		t.Fatal(err)
	}
	// sum=500, count=4 → avg 125 ≥ 100 passes.
	if !s.MatchHaving([]int64{500, 4}) {
		t.Error("avg 125 rejected")
	}
	// sum=300, count=4 → avg 75 fails.
	if s.MatchHaving([]int64{300, 4}) {
		t.Error("avg 75 accepted")
	}
	// zero count never passes.
	if s.MatchHaving([]int64{300, 0}) {
		t.Error("zero-count group accepted")
	}
}

func TestCmpOpEval(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b int64
		want bool
	}{
		{Lt, 1, 2, true}, {Lt, 2, 2, false},
		{Le, 2, 2, true}, {Le, 3, 2, false},
		{Gt, 3, 2, true}, {Gt, 2, 2, false},
		{Ge, 2, 2, true}, {Ge, 1, 2, false},
		{Eq, 2, 2, true}, {Eq, 1, 2, false},
		{Ne, 1, 2, true}, {Ne, 2, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%d %s %d = %v", c.a, c.op, c.b, got)
		}
	}
	if CmpOp("??").Eval(1, 1) {
		t.Error("unknown operator evaluated true")
	}
}

func TestPredicateOutOfRangeAttr(t *testing.T) {
	p := Predicate{Attr: 9, Op: Gt, Val: 0}
	if p.Match([]uint32{1, 2}) {
		t.Error("out-of-range attribute matched")
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	s, err := Parse("SELECT a, COUNT(*) FROM R GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	if s.GroupBy != attr.MustParseSet("A") {
		t.Errorf("GroupBy = %v", s.GroupBy)
	}
	if !strings.Contains(s.String(), "count(*)") {
		t.Errorf("String = %q", s.String())
	}
}
