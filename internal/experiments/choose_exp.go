package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/attr"
	"repro/internal/choose"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// phiSweep is Figure 11's φ range.
func phiSweep(quick bool) []float64 {
	if quick {
		return []float64{0.6, 0.9, 1.2, 1.3}
	}
	return []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3}
}

// singletonQueries is the synthetic workload's query set {A, B, C, D}.
func singletonQueries() []attr.Set {
	return []attr.Set{
		attr.MustParseSet("A"), attr.MustParseSet("B"),
		attr.MustParseSet("C"), attr.MustParseSet("D"),
	}
}

// pairQueries is the real-data workload's query set {AB, BC, BD, CD}.
func pairQueries() []attr.Set {
	return []attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	}
}

func (c *Context) epesSteps() int {
	if c.Quick {
		return 30
	}
	return 50
}

// Fig11 reproduces Figure 11: modeled cost of GCSL, GCPL and GS(φ) on the
// synthetic dataset with queries {A,B,C,D} and M = 40,000, normalized by
// the EPES optimum.
func Fig11(ctx *Context) (*Table, error) {
	u, _, err := ctx.synthData()
	if err != nil {
		return nil, err
	}
	graph, err := feedgraph.New(singletonQueries())
	if err != nil {
		return nil, err
	}
	groups := allGraphGroups(u, graph)
	p := defaultParams()
	const m = 40000

	start := time.Now()
	opt, err := choose.EPES(graph, groups, m, p, ctx.epesSteps())
	if err != nil {
		return nil, err
	}
	epesTime := time.Since(start)

	start = time.Now()
	gcsl, err := choose.GCSL(graph, groups, m, p)
	if err != nil {
		return nil, err
	}
	gcslTime := time.Since(start)
	gcpl, err := choose.GC(graph, groups, m, p, "PL")
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "fig11",
		Title:   "Phantom choosing: relative modeled cost vs EPES (M=40000)",
		Columns: []string{"phi", "GCSL", "GCPL", "GS"},
	}
	for _, phi := range phiSweep(ctx.Quick) {
		gs, err := choose.GS(graph, groups, m, p, phi)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmtF(phi),
			fmtF(gcsl.Cost / opt.Cost),
			fmtF(gcpl.Cost / opt.Cost),
			fmtF(gs.Cost / opt.Cost),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GCSL config %q; EPES config %q", gcsl.Config, opt.Config),
		fmt.Sprintf("planning time: GCSL %v, EPES %v (paper: GCSL sub-millisecond)", gcslTime, epesTime))
	return t, nil
}

// Fig12 reproduces Figure 12: the cost trajectory as each phantom is
// chosen, for GCSL, GCPL and GS at several φ, normalized by EPES.
func Fig12(ctx *Context) (*Table, error) {
	u, _, err := ctx.synthData()
	if err != nil {
		return nil, err
	}
	graph, err := feedgraph.New(singletonQueries())
	if err != nil {
		return nil, err
	}
	groups := allGraphGroups(u, graph)
	p := defaultParams()
	const m = 40000

	opt, err := choose.EPES(graph, groups, m, p, ctx.epesSteps())
	if err != nil {
		return nil, err
	}
	series := []struct {
		name string
		res  *choose.Result
	}{}
	gcsl, err := choose.GCSL(graph, groups, m, p)
	if err != nil {
		return nil, err
	}
	series = append(series, struct {
		name string
		res  *choose.Result
	}{"GCSL", gcsl})
	for _, phi := range []float64{0.6, 1.0, 1.3} {
		gs, err := choose.GS(graph, groups, m, p, phi)
		if err != nil {
			return nil, err
		}
		series = append(series, struct {
			name string
			res  *choose.Result
		}{fmt.Sprintf("GS phi=%.1f", phi), gs})
	}

	t := &Table{
		ID:      "fig12",
		Title:   "Phantom choosing process: relative cost vs #phantoms chosen",
		Columns: []string{"algorithm", "step", "added", "relative cost"},
	}
	for _, s := range series {
		for i, step := range s.res.Trace {
			added := "-"
			if step.Added != 0 {
				added = step.Added.String()
			}
			t.Rows = append(t.Rows, []string{
				s.name, fmt.Sprint(i), added, fmtF(step.Cost / opt.Cost),
			})
		}
	}
	t.Notes = append(t.Notes, "the first phantom brings the largest decrease (paper Figure 12)")
	return t, nil
}

// runActual streams records through a configuration and returns the
// measured per-record cost (probes·c1 + transfers·c2)/n, the paper's
// "actual cost". The final epoch flush is excluded, matching the paper's
// intra-epoch cost focus.
func runActual(cfg *feedgraph.Config, alloc cost.Alloc, recs []stream.Record, p cost.Params, seed uint64) (float64, error) {
	rt, err := lfta.New(cfg, alloc, lfta.CountStar, seed, nil)
	if err != nil {
		return 0, err
	}
	for i := range recs {
		rt.Process(recs[i], 0)
	}
	return rt.Ops().PerRecordCost(p.C1, p.C2), nil
}

// measuredComparison runs Figures 13 and 14: actual costs of GCSL, the
// best-φ GS, and the no-phantom baseline, normalized by the actual cost of
// the EPES-chosen configuration, across the memory sweep.
func measuredComparison(ctx *Context, id, title string, queries []attr.Set,
	groups feedgraph.GroupCounts, recs []stream.Record, p cost.Params) (*Table, error) {
	graph, err := feedgraph.New(queries)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"M", "GCSL", "GS(best phi)", "no phantom"},
	}
	for _, m := range ctx.mSweep() {
		opt, err := choose.EPES(graph, groups, m, p, ctx.epesSteps())
		if err != nil {
			return nil, err
		}
		optActual, err := runActual(opt.Config, opt.Alloc, recs, p, 101)
		if err != nil {
			return nil, err
		}
		gcsl, err := choose.GCSL(graph, groups, m, p)
		if err != nil {
			return nil, err
		}
		gcslActual, err := runActual(gcsl.Config, gcsl.Alloc, recs, p, 102)
		if err != nil {
			return nil, err
		}
		// GS: the best φ per budget, as the paper plots ("only the one
		// with the lowest cost at each value of M is presented").
		gsActual := math.Inf(1)
		for _, phi := range phiSweep(ctx.Quick) {
			gs, err := choose.GS(graph, groups, m, p, phi)
			if err != nil {
				return nil, err
			}
			a, err := runActual(gs.Config, gs.Alloc, recs, p, 103)
			if err != nil {
				return nil, err
			}
			gsActual = math.Min(gsActual, a)
		}
		noPh, err := choose.NoPhantom(graph, groups, m, p, "SL")
		if err != nil {
			return nil, err
		}
		noPhActual, err := runActual(noPh.Config, noPh.Alloc, recs, p, 104)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m),
			fmtF(gcslActual / optActual),
			fmtF(gsActual / optActual),
			fmtF(noPhActual / optActual),
		})
	}
	return t, nil
}

// Fig13 reproduces Figure 13: measured costs on the synthetic dataset,
// queries {A, B, C, D}.
func Fig13(ctx *Context) (*Table, error) {
	u, recs, err := ctx.synthData()
	if err != nil {
		return nil, err
	}
	graph, err := feedgraph.New(singletonQueries())
	if err != nil {
		return nil, err
	}
	groups := allGraphGroups(u, graph)
	t, err := measuredComparison(ctx, "fig13",
		"Measured relative cost on synthetic data (normalized by EPES config)",
		singletonQueries(), groups, recs, defaultParams())
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: GCSL ≤3x optimal, GS up to 6x; no-phantom more than an order of magnitude worse than GCSL")
	return t, nil
}

// Fig14 reproduces Figure 14: measured costs on the (surrogate) real
// trace, queries {AB, BC, BD, CD}, with flow length derived from the
// trace.
func Fig14(ctx *Context) (*Table, error) {
	u, ft, err := ctx.paperData()
	if err != nil {
		return nil, err
	}
	graph, err := feedgraph.New(pairQueries())
	if err != nil {
		return nil, err
	}
	groups := allGraphGroups(u, graph)
	p := defaultParams()
	la := ft.AvgFlowLength()
	p.FlowLen = func(attr.Set) float64 { return la }
	t, err := measuredComparison(ctx, "fig14",
		"Measured relative cost on the real trace (normalized by EPES config)",
		pairQueries(), groups, ft.Records, p)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("trace: %d records, average flow length %.1f", len(ft.Records), la),
		"paper: GCSL outperforms GS; improvement up to ~100x over no-phantom")
	return t, nil
}
