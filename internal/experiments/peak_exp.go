package experiments

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/choose"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/spacealloc"
)

// Fig15 reproduces Figure 15: the peak-load constraint experiment. For
// the real trace and queries {AB, BC, BD, CD} at M = 40,000, the GCSL
// allocation's end-of-epoch cost E_u is computed; then for each E_p set to
// a percentage of E_u, space is re-allocated with the shrink and shift
// methods and the stream is replayed to measure the resulting actual
// per-record cost, normalized by the unconstrained allocation's.
func Fig15(ctx *Context) (*Table, error) {
	u, ft, err := ctx.paperData()
	if err != nil {
		return nil, err
	}
	graph, err := feedgraph.New(pairQueries())
	if err != nil {
		return nil, err
	}
	groups := allGraphGroups(u, graph)
	p := defaultParams()
	la := ft.AvgFlowLength()
	p.FlowLen = func(attr.Set) float64 { return la }
	const m = 40000

	base, err := choose.GCSL(graph, groups, m, p)
	if err != nil {
		return nil, err
	}
	eu, err := cost.EndOfEpoch(base.Config, groups, base.Alloc, p)
	if err != nil {
		return nil, err
	}
	baseActual, err := runActual(base.Config, base.Alloc, ft.Records, p, 201)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "fig15",
		Title:   "Peak-load constraint: shrink vs shift (M=40000)",
		Columns: []string{"E_p (% of E_u)", "shrink", "shift"},
	}
	pcts := []int{82, 84, 86, 88, 90, 92, 94, 96, 98}
	if ctx.Quick {
		pcts = []int{82, 90, 98}
	}
	for _, pct := range pcts {
		ep := eu * float64(pct) / 100
		row := []string{fmt.Sprint(pct)}
		for _, method := range []string{"shrink", "shift"} {
			var alloc cost.Alloc
			var err error
			switch method {
			case "shrink":
				alloc, err = spacealloc.Shrink(base.Config, groups, base.Alloc, p, ep)
			default:
				alloc, err = spacealloc.Shift(base.Config, groups, base.Alloc, p, ep)
			}
			if err != nil {
				row = append(row, "infeasible")
				continue
			}
			actual, err := runActual(base.Config, alloc, ft.Records, p, 202)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtF(actual/baseActual))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("unconstrained E_u = %.0f, actual per-record cost %.3f, config %q", eu, baseActual, base.Config),
		"paper: shift wins when E_p is close to E_u; shrink wins when E_p is much smaller")
	return t, nil
}
