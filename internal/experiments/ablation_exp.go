package experiments

import (
	"fmt"

	"repro/internal/choose"
	"repro/internal/collision"
	"repro/internal/feedgraph"
)

// Ablations of the paper's design choices, beyond its own evaluation.
//
// ablation1: the collision-rate model driving the optimizer — the fitted
// precise curve (Section 4) against the rough expectation model
// (Equation 10). The paper argues the rough model is badly wrong at small
// g/b; this measures how much that matters end to end.
//
// ablation2: the space-allocation scheme inside GC — SL (the paper's
// choice) against PL. Figure 11 compares them on modeled cost; this
// compares the *measured* cost of the resulting configurations.

func init() {
	Registry["ablation1"] = Ablation1
	Registry["ablation2"] = Ablation2
}

// Ablation1 plans with GCSL under the precise and the rough collision
// models and replays the synthetic stream through both plans.
func Ablation1(ctx *Context) (*Table, error) {
	u, recs, err := ctx.synthData()
	if err != nil {
		return nil, err
	}
	graph, err := feedgraph.New(singletonQueries())
	if err != nil {
		return nil, err
	}
	groups := allGraphGroups(u, graph)

	t := &Table{
		ID:      "ablation1",
		Title:   "Ablation: collision model inside the optimizer (measured cost/record)",
		Columns: []string{"M", "precise curve", "rough (Eq 10)", "rough penalty"},
	}
	for _, m := range ctx.mSweep() {
		precise := defaultParams()
		rough := defaultParams()
		rough.Rate = collision.Rough

		pPlan, err := choose.GCSL(graph, groups, m, precise)
		if err != nil {
			return nil, err
		}
		rPlan, err := choose.GCSL(graph, groups, m, rough)
		if err != nil {
			return nil, err
		}
		// Measure both plans under identical conditions.
		pActual, err := runActual(pPlan.Config, pPlan.Alloc, recs, precise, 301)
		if err != nil {
			return nil, err
		}
		rActual, err := runActual(rPlan.Config, rPlan.Alloc, recs, precise, 301)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m), fmtF(pActual), fmtF(rActual), fmtF(rActual / pActual),
		})
	}
	t.Notes = append(t.Notes,
		"the rough model reports zero collisions whenever g ≤ b, so it overbuys phantoms and starves query tables at small budgets")
	return t, nil
}

// Ablation2 compares GC with SL allocation (GCSL, the paper's choice)
// against GC with PL allocation (GCPL) on measured cost.
func Ablation2(ctx *Context) (*Table, error) {
	u, recs, err := ctx.synthData()
	if err != nil {
		return nil, err
	}
	graph, err := feedgraph.New(singletonQueries())
	if err != nil {
		return nil, err
	}
	groups := allGraphGroups(u, graph)
	p := defaultParams()

	t := &Table{
		ID:      "ablation2",
		Title:   "Ablation: allocation scheme inside GC (measured cost/record)",
		Columns: []string{"M", "GCSL", "GCPL", "GCPL penalty"},
	}
	for _, m := range ctx.mSweep() {
		sl, err := choose.GCSL(graph, groups, m, p)
		if err != nil {
			return nil, err
		}
		pl, err := choose.GC(graph, groups, m, p, "PL")
		if err != nil {
			return nil, err
		}
		slActual, err := runActual(sl.Config, sl.Alloc, recs, p, 302)
		if err != nil {
			return nil, err
		}
		plActual, err := runActual(pl.Config, pl.Alloc, recs, p, 302)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m), fmtF(slActual), fmtF(plActual), fmtF(plActual / slActual),
		})
	}
	t.Notes = append(t.Notes,
		"PL equalizes collision rates instead of weighting by √(g·h), so it overfeeds large tables; SL's advantage grows with configuration depth")
	return t, nil
}
