package experiments

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/spacealloc"
)

// fig9Configs and fig10Configs are the four representative configurations
// of Figures 9 and 10, in the paper's notation.
var fig9Configs = []string{"(ABC(AC(A C) B))", "AB(A B) CD(C D)"}
var fig10Configs = []string{"(ABCD(ABC(A BC(B C)) D))", "(ABCD(AB BCD(BC BD CD)))"}

// allocSchemes are the heuristics compared against ES.
var allocSchemes = []spacealloc.Scheme{spacealloc.SL, spacealloc.SR, spacealloc.PL, spacealloc.PR}

// allocErrorRow computes each heuristic's relative model-cost error
// against ES for one configuration and budget.
func allocErrorRows(ctx *Context, notations []string, id, title string) (*Table, error) {
	u, _, err := ctx.paperData()
	if err != nil {
		return nil, err
	}
	p := defaultParams()
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"config", "M", "SL", "SR", "PL", "PR"},
	}
	esSteps := spacealloc.DefaultGranularity
	if ctx.Quick {
		esSteps = 50
	}
	for _, notation := range notations {
		cfg, err := feedgraph.ParseConfig(notation, nil)
		if err != nil {
			return nil, err
		}
		groups := groupsFor(u, cfg.Rels)
		for _, m := range ctx.mSweep() {
			es, err := spacealloc.Exhaustive(cfg, groups, m, p, esSteps)
			if err != nil {
				return nil, fmt.Errorf("%s M=%d: %v", notation, m, err)
			}
			cES, err := cost.PerRecord(cfg, groups, es, p)
			if err != nil {
				return nil, err
			}
			row := []string{notation, fmt.Sprint(m)}
			for _, s := range allocSchemes {
				alloc, err := spacealloc.Allocate(s, cfg, groups, m, p)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %v", notation, s, err)
				}
				c, err := cost.PerRecord(cfg, groups, alloc, p)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtPct(relErr(c, cES)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

func relErr(c, opt float64) float64 {
	if opt <= 0 {
		return 0
	}
	e := c/opt - 1
	if e < 0 {
		e = 0 // heuristic beat the discretized ES: report zero error
	}
	return e
}

// Fig9 reproduces Figure 9: heuristic allocation error vs ES on the two
// shallow configurations.
func Fig9(ctx *Context) (*Table, error) {
	return allocErrorRows(ctx, fig9Configs, "fig9",
		"Space allocation error vs ES, configurations of Figure 9")
}

// Fig10 reproduces Figure 10: the two deeper configurations.
func Fig10(ctx *Context) (*Table, error) {
	return allocErrorRows(ctx, fig10Configs, "fig10",
		"Space allocation error vs ES, configurations of Figure 10")
}

// configSweep enumerates every configuration of the real-data query set
// {AB, BC, BD, CD} that instantiates at least one phantom (the
// "unsolvable" cases the heuristics are for).
func configSweep(u interface {
	GroupCount(attr.Set) int
}) ([]*feedgraph.Config, feedgraph.GroupCounts, error) {
	queries := []attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	}
	g, err := feedgraph.New(queries)
	if err != nil {
		return nil, nil, err
	}
	groups := feedgraph.GroupCounts{}
	for _, r := range g.Relations() {
		groups[r] = float64(u.GroupCount(r))
	}
	var configs []*feedgraph.Config
	err = g.EnumerateConfigs(func(c *feedgraph.Config) bool {
		if len(c.Phantoms()) > 0 {
			configs = append(configs, c)
		}
		return true
	})
	return configs, groups, err
}

// Table2 reproduces Table 2: the average relative error of SL, SR, PL and
// PR against ES over all phantom configurations of the real query set, per
// memory budget.
func Table2(ctx *Context) (*Table, error) {
	u, _, err := ctx.paperData()
	if err != nil {
		return nil, err
	}
	configs, groups, err := configSweep(u)
	if err != nil {
		return nil, err
	}
	p := defaultParams()
	esSteps := spacealloc.DefaultGranularity
	if ctx.Quick {
		esSteps = 50
	}
	t := &Table{
		ID:      "table2",
		Title:   "Average allocation error vs ES over all phantom configurations",
		Columns: []string{"M", "SL", "SR", "PL", "PR"},
	}
	for _, m := range ctx.mSweep() {
		sums := make(map[spacealloc.Scheme]float64, len(allocSchemes))
		n := 0
		for _, cfg := range configs {
			es, err := spacealloc.Exhaustive(cfg, groups, m, p, esSteps)
			if err != nil {
				continue
			}
			cES, err := cost.PerRecord(cfg, groups, es, p)
			if err != nil {
				return nil, err
			}
			ok := true
			errs := make(map[spacealloc.Scheme]float64, len(allocSchemes))
			for _, s := range allocSchemes {
				alloc, err := spacealloc.Allocate(s, cfg, groups, m, p)
				if err != nil {
					ok = false
					break
				}
				c, err := cost.PerRecord(cfg, groups, alloc, p)
				if err != nil {
					return nil, err
				}
				errs[s] = relErr(c, cES)
			}
			if !ok {
				continue
			}
			for s, e := range errs {
				sums[s] += e
			}
			n++
		}
		if n == 0 {
			continue
		}
		row := []string{fmt.Sprint(m)}
		for _, s := range allocSchemes {
			row = append(row, fmtPct(sums[s]/float64(n)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d phantom configurations of queries {AB,BC,BD,CD}; paper Table 2 reports SL 2-6%%, SR 5-9%%, PL 14-23%%, PR 10-23%%", len(configs)))
	return t, nil
}

// Table3 reproduces Table 3: how often SL is the best heuristic and, when
// it is not, how far it lags the best one.
func Table3(ctx *Context) (*Table, error) {
	u, _, err := ctx.paperData()
	if err != nil {
		return nil, err
	}
	configs, groups, err := configSweep(u)
	if err != nil {
		return nil, err
	}
	p := defaultParams()
	t := &Table{
		ID:      "table3",
		Title:   "Statistics on SL across all phantom configurations",
		Columns: []string{"M", "SL best", "gap to best when not"},
	}
	for _, m := range ctx.mSweep() {
		best, total := 0, 0
		gapSum, gapN := 0.0, 0
		for _, cfg := range configs {
			costs := make(map[spacealloc.Scheme]float64, len(allocSchemes))
			ok := true
			for _, s := range allocSchemes {
				alloc, err := spacealloc.Allocate(s, cfg, groups, m, p)
				if err != nil {
					ok = false
					break
				}
				c, err := cost.PerRecord(cfg, groups, alloc, p)
				if err != nil {
					return nil, err
				}
				costs[s] = c
			}
			if !ok {
				continue
			}
			total++
			minCost := costs[spacealloc.SL]
			for _, c := range costs {
				if c < minCost {
					minCost = c
				}
			}
			if costs[spacealloc.SL] <= minCost*(1+1e-9) {
				best++
			} else {
				gapSum += costs[spacealloc.SL]/minCost - 1
				gapN++
			}
		}
		if total == 0 {
			continue
		}
		gap := 0.0
		if gapN > 0 {
			gap = gapSum / float64(gapN)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m),
			fmtPct(float64(best) / float64(total)),
			fmtPct(gap),
		})
	}
	t.Notes = append(t.Notes, "paper Table 3: SL best in 44-100% of configurations; gap ≤2.2% otherwise")
	return t, nil
}
