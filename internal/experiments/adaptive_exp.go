package experiments

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/stream"
)

// ExtAdaptive quantifies the engine-level payoff of adaptive re-planning
// (the paper's Section 8 direction): a stream whose group structure
// shifts mid-run is processed by a static engine (planned once from
// phase-1 statistics) and by the adaptive engine with sketch-tracked
// phantom counts; both report their measured per-record cost.

func init() {
	Registry["ext-adaptive"] = ExtAdaptive
}

// ExtAdaptive runs the drift scenario.
func ExtAdaptive(ctx *Context) (*Table, error) {
	rng := newRng(ctx.Seed + 51)
	schema := stream.MustSchema(4)
	// Phase 1: balanced 400-group universe. Phase 2: (A, B) explodes
	// while C and D collapse — the plan for phase 1 is structurally
	// wrong for phase 2.
	balanced, err := gen.UniformUniverse(rng, schema, 400, 30)
	if err != nil {
		return nil, err
	}
	skew := make([][]uint32, 3000)
	for i := range skew {
		skew[i] = []uint32{rng.Uint32(), rng.Uint32(), uint32(i % 2), uint32(i % 3)}
	}
	skewed, err := gen.NewUniverse(schema, skew)
	if err != nil {
		return nil, err
	}
	n := 200000
	if ctx.Quick {
		n = 40000
	}
	recs := append([]stream.Record(nil), gen.Uniform(newRng(ctx.Seed+52), balanced, n, 50)...)
	for i, r := range gen.Uniform(newRng(ctx.Seed+53), skewed, n, 50) {
		recs = append(recs, stream.Record{Attrs: r.Attrs, Time: 50 + uint32(uint64(i)*50/uint64(n))})
	}

	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B, time/10",
		"select B, C, count(*) as cnt from R group by B, C, time/10",
		"select B, D, count(*) as cnt from R group by B, D, time/10",
		"select C, D, count(*) as cnt from R group by C, D, time/10",
	}
	queries := []attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	}
	const m = 40000

	run := func(adapt bool) (float64, int, string, error) {
		// Both engines start from phase-1 statistics only.
		groups, err := core.EstimateGroups(recs[:n], queries)
		if err != nil {
			return 0, 0, "", err
		}
		gcopy := feedgraph.GroupCounts{}
		for r, g := range groups {
			gcopy[r] = g
		}
		opts := core.Options{M: m, Seed: 9}
		if adapt {
			opts.Adapt = core.AdaptOptions{
				Enabled:        true,
				EveryEpochs:    1,
				MinImprovement: 0.02,
				TrackPhantoms:  true,
			}
		}
		e, err := core.New(sqls, gcopy, opts)
		if err != nil {
			return 0, 0, "", err
		}
		if err := e.Run(stream.NewSliceSource(recs)); err != nil {
			return 0, 0, "", err
		}
		st := e.Stats()
		p := defaultParams()
		return st.Ops.PerRecordCost(p.C1, p.C2), st.Replans, e.Plan().Config.String(), nil
	}

	staticCost, _, staticCfg, err := run(false)
	if err != nil {
		return nil, err
	}
	adaptCost, replans, adaptCfg, err := run(true)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ext-adaptive",
		Title:   "Adaptive re-planning under distribution shift (measured cost/record)",
		Columns: []string{"engine", "cost/record", "re-plans", "final configuration"},
	}
	t.Rows = append(t.Rows,
		[]string{"static", fmtF(staticCost), "0", staticCfg},
		[]string{"adaptive", fmtF(adaptCost), fmt.Sprint(replans), adaptCfg},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("adaptive/static cost ratio: %.3f (planned once from phase-1 statistics, phase 2 shifts the structure)", adaptCost/staticCost),
		"adaptive planning uses per-epoch HFTA group counts plus HyperLogLog sketches for un-instantiated phantoms")
	return t, nil
}
