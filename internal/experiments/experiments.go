// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment is a named runner producing a
// Table whose rows are the series the paper plots; cmd/maggbench prints
// them and EXPERIMENTS.md records the paper-vs-measured comparison.
//
// The "real dataset" is the seeded surrogate trace of package gen (see
// DESIGN.md §5); the synthetic datasets are uniform draws with the same
// group counts, exactly as Section 6.1 describes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/stream"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, c := range t.Columns {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Context carries shared experiment state. Quick mode shrinks datasets
// and sweeps so the full suite runs in seconds (used by tests and
// benchmarks); the default sizes match the paper's setup.
type Context struct {
	Seed  int64
	Quick bool

	paperU     *gen.Universe
	paperTrace *gen.FlowTrace
	synthU4    *gen.Universe
	synthRecs4 []stream.Record
}

// NewContext returns a Context with the default seed.
func NewContext(quick bool) *Context { return &Context{Seed: 42, Quick: quick} }

// paperData lazily builds the real-dataset surrogate.
func (c *Context) paperData() (*gen.Universe, *gen.FlowTrace, error) {
	if c.paperU == nil {
		if c.Quick {
			u, err := gen.PaperUniverse(c.Seed)
			if err != nil {
				return nil, nil, err
			}
			rng := newRng(c.Seed + 1)
			cfg := gen.PaperTraceConfig
			cfg.NumRecords = 120000
			ft, err := gen.Flows(rng, u, cfg)
			if err != nil {
				return nil, nil, err
			}
			c.paperU, c.paperTrace = u, ft
		} else {
			u, ft, err := gen.PaperTrace(c.Seed)
			if err != nil {
				return nil, nil, err
			}
			c.paperU, c.paperTrace = u, ft
		}
	}
	return c.paperU, c.paperTrace, nil
}

// synthData lazily builds the 4-dimensional uniform dataset "with the
// same number of groups as those encountered in real data" (Section 6.1):
// the correlated group universe of the paper trace, with records drawn
// uniformly (no flow clusteredness).
func (c *Context) synthData() (*gen.Universe, []stream.Record, error) {
	if c.synthU4 == nil {
		u, err := gen.PaperUniverse(c.Seed + 7)
		if err != nil {
			return nil, nil, err
		}
		n := 1000000
		if c.Quick {
			n = 100000
		}
		c.synthU4, c.synthRecs4 = u, gen.Uniform(newRng(c.Seed+8), u, n, 62)
	}
	return c.synthU4, c.synthRecs4, nil
}

// groupsFor measures g_R from a universe for every relation of interest.
func groupsFor(u *gen.Universe, rels []attr.Set) feedgraph.GroupCounts {
	out := feedgraph.GroupCounts{}
	for _, r := range rels {
		out[r] = float64(u.GroupCount(r))
	}
	return out
}

// allGraphGroups measures g_R for every node of a feeding graph.
func allGraphGroups(u *gen.Universe, g *feedgraph.Graph) feedgraph.GroupCounts {
	return groupsFor(u, g.Relations())
}

// Runner is an experiment entry point.
type Runner func(*Context) (*Table, error)

// Registry maps experiment ids (fig5..fig15, table1..table3) to runners.
var Registry = map[string]Runner{
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"table1": Table1,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"table2": Table2,
	"table3": Table3,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
}

// IDs returns the registered experiment ids in run order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// fig5..fig15 numerically, then tables.
		oi, oj := orderKey(out[i]), orderKey(out[j])
		if oi != oj {
			return oi < oj
		}
		return out[i] < out[j]
	})
	return out
}

func orderKey(id string) int {
	var n int
	switch {
	case len(id) > 3 && id[:3] == "fig":
		fmt.Sscanf(id[3:], "%d", &n)
		return n * 10
	case len(id) > 5 && id[:5] == "table":
		fmt.Sscanf(id[5:], "%d", &n)
		// Interleave at the paper's positions: table1 after fig6,
		// tables 2-3 after fig10.
		switch n {
		case 1:
			return 65
		default:
			return 100 + n
		}
	}
	return 1000
}

// Run executes one experiment by id.
func Run(id string, ctx *Context) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(ctx)
}

// fmtF formats a float compactly for table cells.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func fmtPct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// mSweep is the paper's memory sweep: 20,000..100,000 units.
func (c *Context) mSweep() []int {
	if c.Quick {
		return []int{20000, 60000, 100000}
	}
	return []int{20000, 40000, 60000, 80000, 100000}
}

// defaultParams is the paper's experimental cost setting.
func defaultParams() cost.Params { return cost.DefaultParams() }
