package experiments

import (
	"fmt"
	"time"

	"repro/internal/attr"
	"repro/internal/choose"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/stream"
)

// Extension experiments beyond the paper's evaluation.
//
// ext-drops: the paper's motivation made concrete — at a fixed LFTA
// processing capacity, how many records does each configuration drop?
//
// ext-scale: how planning cost and benefit scale with the number of
// queries (the feeding graph grows as 2^q, which is why EPES is a
// reference, not an algorithm).
//
// ext-zipf: sensitivity of the uniform-arrival cost model to group
// popularity skew.

func init() {
	Registry["ext-drops"] = ExtDrops
	Registry["ext-scale"] = ExtScale
	Registry["ext-zipf"] = ExtZipf
}

// ExtDrops compares drop rates of the GCSL plan and the no-phantom plan
// under a sweep of LFTA capacities (weighted operations per stream
// second), using the engine's unified budget path — the same overload
// control production runs use, single or sharded.
func ExtDrops(ctx *Context) (*Table, error) {
	u, recs, err := ctx.synthData()
	if err != nil {
		return nil, err
	}
	graph, err := feedgraph.New(singletonQueries())
	if err != nil {
		return nil, err
	}
	groups := allGraphGroups(u, graph)
	p := defaultParams()
	const m = 40000

	gcsl, err := choose.GCSL(graph, groups, m, p)
	if err != nil {
		return nil, err
	}
	noPh, err := choose.NoPhantom(graph, groups, m, p, "SL")
	if err != nil {
		return nil, err
	}

	// One epoch spanning the whole trace: drop behaviour under a pure
	// intra-epoch budget, comparable across plans.
	sqls := []string{
		"select A, count(*) as cnt from R group by A, time/1000000",
		"select B, count(*) as cnt from R group by B, time/1000000",
		"select C, count(*) as cnt from R group by C, time/1000000",
		"select D, count(*) as cnt from R group by D, time/1000000",
	}
	fixed := func(res *choose.Result) core.Planner {
		return func(*feedgraph.Graph, feedgraph.GroupCounts, int, cost.Params) (*choose.Result, error) {
			return res, nil
		}
	}

	// Arrival rate of the synthetic trace (records per stream second).
	duration := recs[len(recs)-1].Time + 1
	rate := float64(len(recs)) / float64(duration)

	t := &Table{
		ID:      "ext-drops",
		Title:   "Drop rate vs LFTA capacity (weighted ops per second)",
		Columns: []string{"capacity (xrate)", "GCSL drop", "no-phantom drop"},
	}
	multipliers := []float64{2, 4, 8, 16, 32}
	if ctx.Quick {
		multipliers = []float64{2, 8, 32}
	}
	for _, mult := range multipliers {
		budget := rate * mult
		row := []string{fmtF(mult)}
		for _, plan := range []*choose.Result{gcsl, noPh} {
			eng, err := core.New(sqls, groups, core.Options{
				M: m, Params: p, Seed: 71,
				Planner: fixed(plan),
				Budget:  budget,
			})
			if err != nil {
				return nil, err
			}
			if err := eng.Run(stream.NewSliceSource(recs)); err != nil {
				return nil, err
			}
			d := eng.Stats().Degradation
			row = append(row, fmtPct(float64(d.Dropped)/float64(d.Offered)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GCSL plan %q (modeled %.2f/record) vs no-phantom (modeled %.2f/record)", gcsl.Config, gcsl.Cost, noPh.Cost),
		"lower per-record cost keeps more of the stream at every capacity — the paper's Section 3.3 motivation")
	return t, nil
}

// ExtScale sweeps the number of singleton queries and reports the size of
// the search space, GCSL's planning time, and the modeled benefit of
// phantoms.
func ExtScale(ctx *Context) (*Table, error) {
	maxQ := 7
	if ctx.Quick {
		maxQ = 5
	}
	schema := stream.MustSchema(maxQ)
	rng := newRng(ctx.Seed + 17)
	u, err := gen.UniformUniverse(rng, schema, 3000, 40)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ext-scale",
		Title:   "Scaling with the number of queries (M=40000)",
		Columns: []string{"queries", "candidate phantoms", "GCSL time", "phantoms chosen", "cost vs no-phantom"},
	}
	p := defaultParams()
	for q := 2; q <= maxQ; q++ {
		var queries []attr.Set
		for i := 0; i < q; i++ {
			queries = append(queries, attr.MakeSet(attr.ID(i)))
		}
		graph, err := feedgraph.New(queries)
		if err != nil {
			return nil, err
		}
		groups := allGraphGroups(u, graph)
		start := time.Now()
		plan, err := choose.GCSL(graph, groups, 40000, p)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		base, err := choose.NoPhantom(graph, groups, 40000, p, "SL")
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(q),
			fmt.Sprint(len(graph.Phantoms)),
			elapsed.Round(time.Microsecond).String(),
			fmt.Sprint(len(plan.Config.Phantoms())),
			fmtF(plan.Cost / base.Cost),
		})
	}
	t.Notes = append(t.Notes,
		"candidate phantoms grow as 2^q - q - 1; GCSL stays in the milliseconds while EPES would enumerate 2^(2^q-q-1) configurations")
	return t, nil
}

// ExtZipf measures how the uniform-arrival model holds up when group
// popularity is Zipf-skewed: the same GCSL plan is replayed against
// uniform and increasingly skewed streams over one universe.
func ExtZipf(ctx *Context) (*Table, error) {
	u, _, err := ctx.synthData()
	if err != nil {
		return nil, err
	}
	graph, err := feedgraph.New(singletonQueries())
	if err != nil {
		return nil, err
	}
	groups := allGraphGroups(u, graph)
	p := defaultParams()
	const m = 40000
	plan, err := choose.GCSL(graph, groups, m, p)
	if err != nil {
		return nil, err
	}

	n := 1000000
	if ctx.Quick {
		n = 100000
	}
	t := &Table{
		ID:      "ext-zipf",
		Title:   "Cost model sensitivity to group-popularity skew (GCSL plan)",
		Columns: []string{"skew", "measured cost/record", "vs modeled"},
	}
	skews := []float64{0, 1.2, 1.5, 2.0, 3.0}
	if ctx.Quick {
		skews = []float64{0, 1.5, 3.0}
	}
	for _, s := range skews {
		var recs []stream.Record
		if s == 0 {
			recs = gen.Uniform(newRng(ctx.Seed+31), u, n, 62)
		} else {
			recs, err = gen.Zipf(newRng(ctx.Seed+31), u, n, 62, s)
			if err != nil {
				return nil, err
			}
		}
		actual, err := runActual(plan.Config, plan.Alloc, recs, p, 401)
		if err != nil {
			return nil, err
		}
		label := "uniform"
		if s > 0 {
			label = fmt.Sprintf("zipf %.1f", s)
		}
		t.Rows = append(t.Rows, []string{label, fmtF(actual), fmtF(actual / plan.Cost)})
	}
	t.Notes = append(t.Notes,
		"skew concentrates probes on few hot groups that stay resident, so the uniform model is conservative: measured cost falls as skew grows")
	return t, nil
}
