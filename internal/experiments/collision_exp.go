package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attr"
	"repro/internal/collision"
	"repro/internal/gen"
	"repro/internal/hashtab"
	"repro/internal/stream"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Fig5 reproduces Figure 5: measured collision rates of the (surrogate)
// real data with clusteredness removed — datasets of 1, 2, 3 and 4
// attributes — against the rough (Eq 10) and precise (Eq 13) models, as a
// function of g/b. The rough and precise columns are the paper's
// one-slot-bucket curves; since the tables probe 16-slot groups (PR 6),
// a grouped column (PreciseSlots at the same r) gives the geometry the
// measured columns actually obey, and each measurement is judged against
// the grouped model at its own exact (g, b) — partial final group
// included.
func Fig5(ctx *Context) (*Table, error) {
	u, ft, err := ctx.paperData()
	if err != nil {
		return nil, err
	}
	// One record per flow removes clusteredness, as Section 4.2 does.
	flat := ft.OnePerFlow()

	rels := []attr.Set{
		attr.MustParseSet("A"),
		attr.MustParseSet("AB"),
		attr.MustParseSet("ABC"),
		attr.MustParseSet("ABCD"),
	}
	ratios := []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if ctx.Quick {
		ratios = []float64{0.5, 1, 2, 4, 8}
	}

	t := &Table{
		ID:      "fig5",
		Title:   "Collision rates of real data (clusteredness removed) vs models",
		Columns: []string{"g/b", "rough", "precise", "grouped", "meas 1attr", "meas 2attr", "meas 3attr", "meas 4attr", "meas synth"},
	}
	maxErr, maxSynthErr := 0.0, 0.0
	for _, r := range ratios {
		row := []string{
			fmtF(r),
			fmtF(collision.Rough(r*1000, 1000)),
			fmtF(collision.Precise(r*1000, 1000)),
			fmtF(collision.PreciseSlots(r*1024, 1024, collision.TableSlots)),
		}
		for _, rel := range rels {
			g := u.GroupCount(rel)
			b := int(float64(g) / r)
			if b < 1 {
				b = 1
			}
			// Replay the de-clustered records enough times that the
			// steady state dominates the initial table fill; the model
			// describes steady-state behaviour.
			passes := 1
			if need := 40 * g; need > len(flat) {
				passes = (need + len(flat) - 1) / len(flat)
			}
			// Average over enough seeds that per-seed placement noise
			// (±0.03 at the small arity-1 group counts) does not dominate
			// the comparison against the model.
			measured := measureRate(flat, rel, b, passes, 9)
			row = append(row, fmtF(measured))
			model := collision.PreciseSlots(float64(g), float64(b), collision.TableSlots)
			if model > 0.3 {
				if e := math.Abs(measured-model) / model; e > maxErr {
					maxErr = e
				}
			}
		}
		// Synthetic check under the model's exact assumptions: every
		// group equally frequent, random arrival order (the paper's
		// "results for the synthetic datasets are very similar").
		{
			rel := rels[len(rels)-1]
			g := u.GroupCount(rel)
			b := int(float64(g) / r)
			if b < 1 {
				b = 1
			}
			measured := measureRateEqualFreq(u, rel, b, 40, ctx.Seed)
			row = append(row, fmtF(measured))
			model := collision.PreciseSlots(float64(g), float64(b), collision.TableSlots)
			if model > 0.3 {
				if e := math.Abs(measured-model) / model; e > maxSynthErr {
					maxSynthErr = e
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("max relative deviation from the grouped model: trace %.1f%%, equal-frequency synthetic %.1f%% (paper reports >95%% of points within 5%% of its one-slot model)", maxErr*100, maxSynthErr*100),
		"trace measurements sit below the model because group frequencies are unequal (flows per group are Poisson-distributed): frequently probed groups hold their slots, and a 16-slot group keeps its top 16 that way, so the skew discount is larger than in the paper's one-slot geometry — the equal-frequency model is an upper bound",
		fmt.Sprintf("group counts: A=%d AB=%d ABC=%d ABCD=%d (paper: 552, 1846, 2117, 2837)",
			u.GroupCount(rels[0]), u.GroupCount(rels[1]), u.GroupCount(rels[2]), u.GroupCount(rels[3])))
	return t, nil
}

// measureRateEqualFreq measures the collision rate under the model's
// exact assumptions: records drawn i.i.d. uniformly over the universe's
// groups (so every group is equally likely on every draw), passes·g draws
// in total.
func measureRateEqualFreq(u *gen.Universe, rel attr.Set, b, passes int, seed int64) float64 {
	rng := newRng(seed + int64(b))
	tab := hashtab.MustNew(rel, b, []hashtab.AggOp{hashtab.Sum}, uint64(seed)*31+7)
	var key []uint32
	for n := passes * len(u.Tuples); n > 0; n-- {
		key = rel.Project(u.Tuples[rng.Intn(len(u.Tuples))], key)
		tab.Probe(key, []int64{1})
	}
	return tab.Stats().CollisionRate()
}

// measureRate streams the records through a hash table for rel with b
// buckets (passes full replays), averaging over a few hash seeds.
func measureRate(recs []stream.Record, rel attr.Set, b, passes, trials int) float64 {
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		tab := hashtab.MustNew(rel, b, []hashtab.AggOp{hashtab.Sum}, uint64(trial)*1009+13)
		var key []uint32
		for pass := 0; pass < passes; pass++ {
			for i := range recs {
				key = rel.Project(recs[i].Attrs, key)
				tab.Probe(key, []int64{1})
			}
		}
		sum += tab.Stats().CollisionRate()
	}
	return sum / float64(trials)
}

// Fig6 reproduces Figure 6: the per-k collision probability at g=3000,
// b=1000, whose bell shape justifies the μ+5σ truncation.
func Fig6(*Context) (*Table, error) {
	const g, b = 3000, 1000
	t := &Table{
		ID:      "fig6",
		Title:   "Probability of collision vs k (g=3000, b=1000)",
		Columns: []string{"k", "contribution"},
	}
	peakK, peakV := 0, 0.0
	for k := 2; k <= 20; k++ {
		v := collision.ProbOfK(g, b, k)
		if v > peakV {
			peakK, peakV = k, v
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), fmtF(v)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("peak at k=%d, value %.3f (paper: k=4, ≈0.16); μ+5σ bound = %d (paper: ≈12)",
			peakK, peakV, collision.TruncationBound(g, b)))
	return t, nil
}

// Table1 reproduces Table 1: for fixed g/b the collision rate barely
// varies as b sweeps 300..3000.
func Table1(*Context) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Variation of collision rate across b∈[300,3000] at fixed g/b",
		Columns: []string{"g/b", "variation"},
	}
	for _, r := range []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32} {
		lo, hi := math.Inf(1), math.Inf(-1)
		for b := 300.0; b <= 3000; b += 100 {
			x := collision.Precise(r*b, b)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		variation := 0.0
		if hi > 0 {
			variation = (hi - lo) / hi
		}
		t.Rows = append(t.Rows, []string{fmtF(r), fmtPct(variation)})
	}
	t.Notes = append(t.Notes, "paper reports 1.4, 0.43, 0.15, 0.03, 0.004, 0, 0, 0 (%)")
	return t, nil
}

// Fig7 reproduces Figure 7: the collision-rate curve as a function of
// g/b, with the fitted piecewise regression beside the precise model.
func Fig7(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "Collision rate curve x(g/b) with piecewise regression",
		Columns: []string{"g/b", "precise", "regression"},
	}
	step := 1.0
	if ctx.Quick {
		step = 5.0
	}
	curve := collision.DefaultCurve
	worst := 0.0
	for r := step; r <= 50; r += step {
		precise := collision.Precise(r*1000, 1000)
		fitted := curve.Rate(r)
		if precise > 1e-6 {
			if e := math.Abs(fitted-precise) / precise; e > worst {
				worst = e
			}
		}
		t.Rows = append(t.Rows, []string{fmtF(r), fmtF(precise), fmtF(fitted)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("max regression error on shown points: %.2f%% (paper: ≤5%% per interval, <1%% average)", worst*100))
	return t, nil
}

// Fig8 reproduces Figure 8: the low part of the collision-rate curve
// (x ≤ 0.4) and its linear regression, compared with Equation 16's
// published coefficients x = 0.0267 + 0.354·(g/b).
func Fig8(ctx *Context) (*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "Low collision-rate region and linear regression",
		Columns: []string{"g/b", "precise", "eq16"},
	}
	step := 0.05
	if ctx.Quick {
		step = 0.2
	}
	for r := step; r <= 1.05; r += step {
		t.Rows = append(t.Rows, []string{
			fmtF(r),
			fmtF(collision.Precise(r*1000, 1000)),
			fmtF(collision.LinearLow(r)),
		})
	}
	alpha, mu, err := collision.DefaultCurve.FitLinearLow(0.4)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("refit over x≤0.4: x = %.4f + %.3f·(g/b); paper Eq 16: x = 0.0267 + 0.354·(g/b)", alpha, mu))
	return t, nil
}
