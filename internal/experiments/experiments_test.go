package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickCtx() *Context { return NewContext(true) }

// parseCell strips formatting and parses a numeric cell ("12.34%" or
// "0.1234" or "42").
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func runExp(t *testing.T, id string, ctx *Context) *Table {
	t.Helper()
	tab, err := Run(id, ctx)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id || len(tab.Rows) == 0 || len(tab.Columns) == 0 {
		t.Fatalf("%s: malformed table %+v", id, tab)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s: row %v does not match columns %v", id, row, tab.Columns)
		}
	}
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatalf("%s: print: %v", id, err)
	}
	if !strings.Contains(buf.String(), id) {
		t.Fatalf("%s: printed table lacks id", id)
	}
	return tab
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig5", "fig6", "table1", "fig7", "fig8", "fig9", "fig10",
		"table2", "table3", "fig11", "fig12", "fig13", "fig14", "fig15",
		"ablation1", "ablation2", "ext-adaptive", "ext-drops", "ext-scale", "ext-zipf"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments (%v); want %d", len(ids), ids, len(want))
	}
	for _, w := range want {
		if _, ok := Registry[w]; !ok {
			t.Errorf("missing experiment %s", w)
		}
	}
	// Run order follows the paper: fig5, fig6, table1, fig7, ...
	if ids[0] != "fig5" || ids[2] != "table1" {
		t.Errorf("run order = %v", ids)
	}
	if _, err := Run("nope", quickCtx()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig5Shape(t *testing.T) {
	tab := runExp(t, "fig5", quickCtx())
	// Rough < precise at small g/b; the grouped (16-slot) curve sits at
	// or below the one-slot precise curve; measurements track the grouped
	// model within 15% at moderate rates.
	first := tab.Rows[0]
	rough, precise := parseCell(t, first[1]), parseCell(t, first[2])
	if rough >= precise {
		t.Errorf("at g/b=%s rough %v not below precise %v", first[0], rough, precise)
	}
	for _, row := range tab.Rows {
		precise, grouped := parseCell(t, row[2]), parseCell(t, row[3])
		if grouped > precise*1.02 {
			t.Errorf("g/b=%s: grouped model %v above one-slot precise %v", row[0], grouped, precise)
		}
		if grouped < 0.3 {
			continue
		}
		// The equal-frequency synthetic column (last) obeys the model's
		// assumptions and must track it tightly; the trace columns carry
		// frequency skew, which grouped tables reward (hot groups hold
		// their slots), so the model only bounds them from above.
		synth := parseCell(t, row[len(row)-1])
		if synth < grouped*0.9 || synth > grouped*1.1 {
			t.Errorf("g/b=%s: synthetic %v deviates from grouped model %v", row[0], synth, grouped)
		}
		for i := 4; i < len(row)-1; i++ {
			m := parseCell(t, row[i])
			if m > grouped*1.05 || m < grouped*0.5 {
				t.Errorf("g/b=%s: trace measurement %v outside (%.3f, %.3f] of grouped model %v",
					row[0], m, grouped*0.5, grouped*1.05, grouped)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	tab := runExp(t, "fig6", quickCtx())
	// Bell: contributions rise then fall; everything past k=13 tiny.
	var vals []float64
	for _, row := range tab.Rows {
		vals = append(vals, parseCell(t, row[1]))
	}
	peak := 0
	for i, v := range vals {
		if v > vals[peak] {
			peak = i
		}
	}
	if k := peak + 2; k != 4 {
		t.Errorf("peak at k=%d; want 4", k)
	}
	if vals[len(vals)-1] > 0.001 {
		t.Errorf("tail contribution %v not negligible", vals[len(vals)-1])
	}
}

func TestTable1Shape(t *testing.T) {
	tab := runExp(t, "table1", quickCtx())
	for _, row := range tab.Rows {
		if v := parseCell(t, row[1]); v > 2.0 {
			t.Errorf("g/b=%s: variation %v%% exceeds 2%%", row[0], v)
		}
	}
	// Variation decreases as g/b grows.
	first, last := parseCell(t, tab.Rows[0][1]), parseCell(t, tab.Rows[len(tab.Rows)-1][1])
	if last > first {
		t.Errorf("variation grew from %v%% to %v%%", first, last)
	}
}

func TestFig7Fig8Shape(t *testing.T) {
	tab := runExp(t, "fig7", quickCtx())
	// Monotone increasing, asymptote below 1.
	prev := -1.0
	for _, row := range tab.Rows {
		v := parseCell(t, row[1])
		if v < prev-1e-9 {
			t.Errorf("curve decreased at g/b=%s", row[0])
		}
		if v > 1 {
			t.Errorf("rate above 1 at g/b=%s", row[0])
		}
		prev = v
	}

	tab8 := runExp(t, "fig8", quickCtx())
	// Eq16 tracks the precise model in the upper region.
	for _, row := range tab8.Rows {
		precise, eq16 := parseCell(t, row[1]), parseCell(t, row[2])
		if precise > 0.15 {
			if eq16 < precise*0.8 || eq16 > precise*1.2 {
				t.Errorf("g/b=%s: eq16 %v vs precise %v", row[0], eq16, precise)
			}
		}
	}
}

func TestFig9Fig10Tables23Shape(t *testing.T) {
	ctx := quickCtx()
	for _, id := range []string{"fig9", "fig10"} {
		tab := runExp(t, id, ctx)
		for _, row := range tab.Rows {
			sl := parseCell(t, row[2])
			if sl > 30 {
				t.Errorf("%s %s M=%s: SL error %v%% too large", id, row[0], row[1], sl)
			}
		}
	}
	t2 := runExp(t, "table2", ctx)
	for _, row := range t2.Rows {
		sl, sr, pl := parseCell(t, row[1]), parseCell(t, row[2]), parseCell(t, row[3])
		// SL should be competitive with SR everywhere (paper Table 2 has
		// them within tenths of a percent at M=20000) and clearly below
		// PL.
		if sl > sr*1.2+0.5 {
			t.Errorf("M=%s: SL avg error %v%% well above SR %v%%", row[0], sl, sr)
		}
		if sl > pl+1e-9 {
			t.Errorf("M=%s: SL avg error %v%% above PL %v%%", row[0], sl, pl)
		}
		if sl > 12 {
			t.Errorf("M=%s: SL avg error %v%% (paper: 2-6%%)", row[0], sl)
		}
	}
	t3 := runExp(t, "table3", ctx)
	for _, row := range t3.Rows {
		best := parseCell(t, row[1])
		if best < 40 {
			t.Errorf("M=%s: SL best only %v%% of configs", row[0], best)
		}
	}
}

func TestFig11Fig12Shape(t *testing.T) {
	ctx := quickCtx()
	tab := runExp(t, "fig11", ctx)
	for _, row := range tab.Rows {
		gcsl, gs := parseCell(t, row[1]), parseCell(t, row[3])
		if gcsl > gs*1.001 {
			t.Errorf("phi=%s: GCSL %v above GS %v", row[0], gcsl, gs)
		}
		if gcsl < 0.99 {
			t.Errorf("GCSL relative cost %v below the EPES optimum", gcsl)
		}
		if gcsl > 3 {
			t.Errorf("GCSL relative cost %v above 3x optimal (paper bound)", gcsl)
		}
	}
	t12 := runExp(t, "fig12", ctx)
	// The GCSL series' first step (adding the first phantom) has the
	// largest decrease.
	var gcslCosts []float64
	for _, row := range t12.Rows {
		if row[0] == "GCSL" {
			gcslCosts = append(gcslCosts, parseCell(t, row[3]))
		}
	}
	if len(gcslCosts) < 2 {
		t.Fatalf("GCSL trace too short: %v", gcslCosts)
	}
	firstDrop := gcslCosts[0] - gcslCosts[1]
	for i := 2; i < len(gcslCosts); i++ {
		if d := gcslCosts[i-1] - gcslCosts[i]; d > firstDrop+1e-9 {
			t.Errorf("step %d drop %v exceeds first drop %v", i, d, firstDrop)
		}
	}
}

func TestFig13Fig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiments are slow in -short mode")
	}
	ctx := quickCtx()
	for _, id := range []string{"fig13", "fig14"} {
		tab := runExp(t, id, ctx)
		for _, row := range tab.Rows {
			gcsl, noPh := parseCell(t, row[1]), parseCell(t, row[3])
			if gcsl > 3.5 {
				t.Errorf("%s M=%s: GCSL relative actual cost %v above ~3x", id, row[0], gcsl)
			}
			if noPh < gcsl {
				t.Errorf("%s M=%s: no-phantom %v beats GCSL %v", id, row[0], noPh, gcsl)
			}
		}
		// The no-phantom penalty grows with M (phantom tables only pay
		// off once they fit); it must be substantial at the largest M.
		if noPh := parseCell(t, tab.Rows[len(tab.Rows)-1][3]); noPh < 2 {
			t.Errorf("%s: no-phantom only %vx at the largest M; expected a large gap", id, noPh)
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiments are slow in -short mode")
	}
	ctx := quickCtx()
	for _, id := range []string{"ablation1", "ablation2"} {
		tab := runExp(t, id, ctx)
		for _, row := range tab.Rows {
			// The ablated variant should not be dramatically better than
			// the paper's choice.
			if penalty := parseCell(t, row[3]); penalty < 0.8 {
				t.Errorf("%s M=%s: ablated variant beat the paper's choice by %vx", id, row[0], penalty)
			}
		}
	}
}

func TestExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiments are slow in -short mode")
	}
	ctx := quickCtx()

	drops := runExp(t, "ext-drops", ctx)
	for _, row := range drops.Rows {
		gcsl, noPh := parseCell(t, row[1]), parseCell(t, row[2])
		if gcsl > noPh+1e-9 {
			t.Errorf("capacity %s: GCSL drop %v%% exceeds no-phantom %v%%", row[0], gcsl, noPh)
		}
	}
	// At the tightest capacity the gap should be visible.
	if g, n := parseCell(t, drops.Rows[0][1]), parseCell(t, drops.Rows[0][2]); n-g < 1 {
		t.Errorf("tightest capacity: drop gap only %v%% - %v%%", n, g)
	}

	scale := runExp(t, "ext-scale", ctx)
	for _, row := range scale.Rows {
		if ratio := parseCell(t, row[4]); ratio > 1.0001 {
			t.Errorf("%s queries: GCSL cost ratio %v above no-phantom", row[0], ratio)
		}
	}

	adaptive := runExp(t, "ext-adaptive", ctx)
	staticCost := parseCell(t, adaptive.Rows[0][1])
	adaptCost := parseCell(t, adaptive.Rows[1][1])
	if adaptCost > staticCost*1.05 {
		t.Errorf("adaptive engine cost %v worse than static %v under drift", adaptCost, staticCost)
	}

	zipf := runExp(t, "ext-zipf", ctx)
	first := parseCell(t, zipf.Rows[0][1])
	last := parseCell(t, zipf.Rows[len(zipf.Rows)-1][1])
	if last > first {
		t.Errorf("skew increased measured cost (%v -> %v); expected hot groups to be cheaper", first, last)
	}
}

func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment is slow in -short mode")
	}
	ctx := quickCtx()
	tab := runExp(t, "fig15", ctx)
	for _, row := range tab.Rows {
		if row[1] == "infeasible" || row[2] == "infeasible" {
			continue
		}
		shrink, shift := parseCell(t, row[1]), parseCell(t, row[2])
		// Constrained allocations cannot beat the unconstrained one by
		// much, and should stay within a small factor of it.
		for _, v := range []float64{shrink, shift} {
			if v < 0.9 || v > 6 {
				t.Errorf("E_p=%s%%: relative cost %v out of range", row[0], v)
			}
		}
	}
}
