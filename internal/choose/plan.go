package choose

import (
	"encoding/json"
	"fmt"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
)

// Plan serialization: a chosen configuration and allocation as a stable
// JSON document, so a plan computed offline (cmd/maggopt -json) can be
// shipped to and audited on the node that executes it.

// planJSON is the wire form of a Result.
type planJSON struct {
	Configuration string         `json:"configuration"` // paper notation
	Queries       []string       `json:"queries"`
	Allocation    map[string]int `json:"allocation"` // relation -> buckets
	SpaceUnits    int            `json:"space_units"`
	ModeledCost   float64        `json:"modeled_cost"`
}

// EncodePlan renders a plan as JSON.
func EncodePlan(r *Result) ([]byte, error) {
	if r == nil || r.Config == nil {
		return nil, fmt.Errorf("choose: nil plan")
	}
	pj := planJSON{
		Configuration: r.Config.String(),
		Allocation:    make(map[string]int, len(r.Alloc)),
		SpaceUnits:    r.Alloc.SpaceUnits(),
		ModeledCost:   r.Cost,
	}
	for _, q := range r.Config.Queries {
		pj.Queries = append(pj.Queries, q.String())
	}
	for rel, b := range r.Alloc {
		pj.Allocation[rel.String()] = b
	}
	return json.MarshalIndent(pj, "", "  ")
}

// DecodePlan parses a plan back into a Result (without a choosing trace).
// The configuration notation, query set and allocation are
// cross-validated: every instantiated relation must have buckets and vice
// versa.
func DecodePlan(data []byte) (*Result, error) {
	var pj planJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("choose: bad plan JSON: %v", err)
	}
	if len(pj.Queries) == 0 {
		return nil, fmt.Errorf("choose: plan lists no queries")
	}
	queries := make([]attr.Set, 0, len(pj.Queries))
	for _, name := range pj.Queries {
		q, err := attr.ParseSet(name)
		if err != nil {
			return nil, fmt.Errorf("choose: bad query %q: %v", name, err)
		}
		queries = append(queries, q)
	}
	cfg, err := feedgraph.ParseConfig(pj.Configuration, queries)
	if err != nil {
		return nil, err
	}
	alloc := cost.Alloc{}
	for name, b := range pj.Allocation {
		rel, err := attr.ParseSet(name)
		if err != nil {
			return nil, fmt.Errorf("choose: bad allocation relation %q: %v", name, err)
		}
		if b <= 0 {
			return nil, fmt.Errorf("choose: allocation for %v is %d buckets", rel, b)
		}
		alloc[rel] = b
	}
	for _, r := range cfg.Rels {
		if _, ok := alloc[r]; !ok {
			return nil, fmt.Errorf("choose: instantiated relation %v has no allocation", r)
		}
	}
	for rel := range alloc {
		if !cfg.Has(rel) {
			return nil, fmt.Errorf("choose: allocation for %v, which is not instantiated", rel)
		}
	}
	return &Result{Config: cfg, Alloc: alloc, Cost: pj.ModeledCost}, nil
}
