package choose

import (
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/spacealloc"
)

func sets(names ...string) []attr.Set {
	out := make([]attr.Set, len(names))
	for i, n := range names {
		out[i] = attr.MustParseSet(n)
	}
	return out
}

func groupsOf(m map[string]float64) feedgraph.GroupCounts {
	gc := feedgraph.GroupCounts{}
	for k, v := range m {
		gc[attr.MustParseSet(k)] = v
	}
	return gc
}

// singletonWorkload is the paper's synthetic setting of Section 6.3.1:
// queries {A, B, C, D} over a 4-dimensional uniform dataset.
func singletonWorkload(t *testing.T) (*feedgraph.Graph, feedgraph.GroupCounts) {
	t.Helper()
	g, err := feedgraph.New(sets("A", "B", "C", "D"))
	if err != nil {
		t.Fatal(err)
	}
	gc := groupsOf(map[string]float64{
		"A": 552, "B": 430, "C": 610, "D": 380,
		"AB": 1500, "AC": 1650, "AD": 1400, "BC": 1300, "BD": 1200, "CD": 1450,
		"ABC": 2300, "ABD": 2200, "ACD": 2400, "BCD": 2100,
		"ABCD": 2837,
	})
	return g, gc
}

// pairWorkload is the real-data setting: queries {AB, BC, BD, CD}.
func pairWorkload(t *testing.T) (*feedgraph.Graph, feedgraph.GroupCounts) {
	t.Helper()
	g, err := feedgraph.New(sets("AB", "BC", "BD", "CD"))
	if err != nil {
		t.Fatal(err)
	}
	gc := groupsOf(map[string]float64{
		"AB": 1846, "BC": 980, "BD": 870, "CD": 1240,
		"ABC": 2117, "ABD": 1900, "BCD": 1700, "ABCD": 2837,
	})
	return g, gc
}

func TestNoPhantom(t *testing.T) {
	g, gc := pairWorkload(t)
	res, err := NoPhantom(g, gc, 40000, cost.DefaultParams(), spacealloc.SL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Config.Phantoms()) != 0 {
		t.Errorf("NoPhantom instantiated phantoms: %v", res.Config.Phantoms())
	}
	// Cost must be at least the probe floor: one c1 per query per record.
	if res.Cost < 4 {
		t.Errorf("cost %v below 4·c1 floor", res.Cost)
	}
}

func TestGCSLBeatsNoPhantom(t *testing.T) {
	p := cost.DefaultParams()
	for _, m := range []int{20000, 40000, 100000} {
		g, gc := pairWorkload(t)
		base, err := NoPhantom(g, gc, m, p, spacealloc.SL)
		if err != nil {
			t.Fatal(err)
		}
		res, err := GCSL(g, gc, m, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > base.Cost {
			t.Errorf("M=%d: GCSL cost %v exceeds no-phantom cost %v", m, res.Cost, base.Cost)
		}
		// The paper's headline: phantoms reduce cost substantially.
		if res.Cost > base.Cost*0.9 {
			t.Errorf("M=%d: GCSL improved only %v -> %v", m, base.Cost, res.Cost)
		}
		if err := res.Config.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestGCTraceIsMonotone(t *testing.T) {
	g, gc := singletonWorkload(t)
	res, err := GCSL(g, gc, 40000, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) < 2 {
		t.Fatalf("GC chose no phantoms (trace %v)", res.Trace)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Cost >= res.Trace[i-1].Cost {
			t.Errorf("step %d did not reduce cost: %v -> %v", i, res.Trace[i-1].Cost, res.Trace[i].Cost)
		}
		if res.Trace[i].Benefit <= 0 {
			t.Errorf("step %d recorded non-positive benefit %v", i, res.Trace[i].Benefit)
		}
		if res.Trace[i].Added == 0 {
			t.Errorf("step %d has no phantom recorded", i)
		}
	}
	// The first phantom brings the largest single improvement (Figure 12).
	for i := 2; i < len(res.Trace); i++ {
		if res.Trace[i].Benefit > res.Trace[1].Benefit {
			t.Errorf("step %d benefit %v exceeds first step %v", i, res.Trace[i].Benefit, res.Trace[1].Benefit)
		}
	}
}

func TestGSValidation(t *testing.T) {
	g, gc := pairWorkload(t)
	if _, err := GS(g, gc, 40000, cost.DefaultParams(), 0); err == nil {
		t.Error("phi = 0 accepted")
	}
	if _, err := GS(g, gc, 40000, cost.DefaultParams(), -1); err == nil {
		t.Error("negative phi accepted")
	}
}

func TestGSPhiSensitivity(t *testing.T) {
	// Figure 11's robust content: GS depends on φ, and once φ grows past
	// the point where beneficial phantoms no longer fit, its cost jumps
	// well above the best achievable φ. (The paper's left-side rise at
	// small φ is data-dependent: its leftover-space redistribution can
	// rescue small-φ runs, as it does on this workload; see
	// EXPERIMENTS.md.)
	g, gc := singletonWorkload(t)
	p := cost.DefaultParams()
	m := 40000
	best := 0.0
	costs := map[float64]float64{}
	for i, phi := range []float64{0.3, 0.6, 0.8, 1.0, 1.2, 1.5, 2.0} {
		res, err := GS(g, gc, m, p, phi)
		if err != nil {
			t.Fatal(err)
		}
		costs[phi] = res.Cost
		if i == 0 || res.Cost < best {
			best = res.Cost
		}
	}
	if costs[2.0] < best*1.15 {
		t.Errorf("large phi did not degrade GS: costs = %v", costs)
	}
	if costs[0.3] == costs[2.0] {
		t.Errorf("GS insensitive to phi: costs = %v", costs)
	}
}

func TestGCSLBeatsGS(t *testing.T) {
	// Figure 11: GCSL lower-bounds GS for every φ.
	g, gc := singletonWorkload(t)
	p := cost.DefaultParams()
	m := 40000
	gcsl, err := GCSL(g, gc, m, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{0.6, 0.8, 1.0, 1.1, 1.2, 1.3} {
		gs, err := GS(g, gc, m, p, phi)
		if err != nil {
			t.Fatal(err)
		}
		if gcsl.Cost > gs.Cost*1.001 {
			t.Errorf("phi=%v: GCSL cost %v exceeds GS cost %v", phi, gcsl.Cost, gs.Cost)
		}
	}
}

func TestEPESIsLowerBound(t *testing.T) {
	if testing.Short() {
		t.Skip("EPES enumeration is slow in -short mode")
	}
	g, gc := pairWorkload(t)
	p := cost.DefaultParams()
	m := 40000
	opt, err := EPES(g, gc, m, p, 50)
	if err != nil {
		t.Fatal(err)
	}
	gcsl, err := GCSL(g, gc, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost > gcsl.Cost*1.02 {
		t.Errorf("EPES cost %v above GCSL cost %v", opt.Cost, gcsl.Cost)
	}
	// The paper: GCSL is near-optimal (within ~15-20% most of the time,
	// always within 3x).
	if gcsl.Cost > opt.Cost*3 {
		t.Errorf("GCSL cost %v more than 3x optimal %v", gcsl.Cost, opt.Cost)
	}
	for _, phi := range []float64{0.8, 1.0, 1.2} {
		gs, err := GS(g, gc, m, p, phi)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Cost > gs.Cost*1.02 {
			t.Errorf("EPES cost %v above GS(phi=%v) cost %v", opt.Cost, phi, gs.Cost)
		}
	}
}

func TestGCSLRunsInMilliseconds(t *testing.T) {
	// Section 6.3.4: "the running time of GCSL in all configurations we
	// tried was sub-millisecond" — we allow a generous 50ms envelope to
	// absorb CI noise.
	g, gc := singletonWorkload(t)
	p := cost.DefaultParams()
	start := time.Now()
	if _, err := GCSL(g, gc, 40000, p); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("GCSL took %v; want a few milliseconds", d)
	}
}

func TestChosenPhantomsAreUseful(t *testing.T) {
	// No algorithm should instantiate a phantom feeding fewer than two
	// relations.
	p := cost.DefaultParams()
	for name, run := range map[string]func(*feedgraph.Graph, feedgraph.GroupCounts) (*Result, error){
		"GCSL": func(g *feedgraph.Graph, gc feedgraph.GroupCounts) (*Result, error) {
			return GCSL(g, gc, 40000, p)
		},
		"GS": func(g *feedgraph.Graph, gc feedgraph.GroupCounts) (*Result, error) {
			return GS(g, gc, 40000, p, 1.0)
		},
	} {
		for _, mk := range []func(*testing.T) (*feedgraph.Graph, feedgraph.GroupCounts){singletonWorkload, pairWorkload} {
			g, gc := mk(t)
			res, err := run(g, gc)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if useless := res.Config.UselessPhantoms(); len(useless) != 0 {
				t.Errorf("%s chose useless phantoms %v in %q", name, useless, res.Config)
			}
		}
	}
}

func TestBudgetExhaustion(t *testing.T) {
	g, gc := pairWorkload(t)
	p := cost.DefaultParams()
	// A budget that barely fits the queries leaves no room for phantoms.
	res, err := GCSL(g, gc, 300, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Config.Phantoms()) > 1 {
		t.Errorf("tiny budget still chose %v", res.Config.Phantoms())
	}
	// GS with huge phi cannot afford any phantom.
	gs, err := GS(g, gc, 20000, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Config.Phantoms()) != 0 {
		t.Errorf("GS with phi=10 on M=20000 chose %v", gs.Config.Phantoms())
	}
}
