package choose

import (
	"strings"
	"testing"

	"repro/internal/cost"
)

func TestPlanRoundTrip(t *testing.T) {
	g, gc := pairWorkload(t)
	res, err := GCSL(g, gc, 40000, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePlan(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"configuration", "allocation", "modeled_cost"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("encoded plan lacks %q", want)
		}
	}
	back, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Config.String() != res.Config.String() {
		t.Errorf("configuration changed: %q -> %q", res.Config, back.Config)
	}
	if len(back.Alloc) != len(res.Alloc) {
		t.Errorf("allocation size changed: %d -> %d", len(res.Alloc), len(back.Alloc))
	}
	for rel, b := range res.Alloc {
		if back.Alloc[rel] != b {
			t.Errorf("allocation for %v changed: %d -> %d", rel, b, back.Alloc[rel])
		}
	}
	if back.Cost != res.Cost {
		t.Errorf("cost changed: %v -> %v", res.Cost, back.Cost)
	}
	// Query classification survives.
	for _, q := range res.Config.Queries {
		if !back.Config.IsQuery(q) {
			t.Errorf("%v lost its query flag", q)
		}
	}
}

func TestEncodePlanNil(t *testing.T) {
	if _, err := EncodePlan(nil); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := EncodePlan(&Result{}); err == nil {
		t.Error("plan without config accepted")
	}
}

func TestDecodePlanErrors(t *testing.T) {
	for name, data := range map[string]string{
		"garbage":            "{not json",
		"no queries":         `{"configuration":"A","queries":[],"allocation":{"A":5}}`,
		"bad query":          `{"configuration":"A","queries":["A1"],"allocation":{"A":5}}`,
		"bad notation":       `{"configuration":"A(","queries":["A"],"allocation":{"A":5}}`,
		"missing allocation": `{"configuration":"AB(A B)","queries":["A","B"],"allocation":{"A":5,"B":5}}`,
		"zero buckets":       `{"configuration":"A","queries":["A"],"allocation":{"A":0}}`,
		"extra allocation":   `{"configuration":"A","queries":["A"],"allocation":{"A":5,"ZZ":5}}`,
		"bad alloc relation": `{"configuration":"A","queries":["A"],"allocation":{"A!":5}}`,
	} {
		if _, err := DecodePlan([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
