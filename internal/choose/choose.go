// Package choose implements the paper's phantom-choosing algorithms
// (Sections 3.4 and 6.3): which candidate phantoms of the feeding graph to
// instantiate in the LFTA.
//
//   - GS ("greedy by increasing space", Section 3.4.1): every instantiated
//     relation receives φ·g buckets; phantoms are added greedily by benefit
//     per unit of space until space or benefit runs out, and leftover space
//     is spread proportionally to group counts. φ must be tuned; the paper
//     shows a knee in its cost curve (Figure 11).
//   - GC ("greedy by increasing collision rates", Section 3.4.2): the whole
//     budget M is always allocated to the current configuration by a
//     space-allocation scheme; adding a phantom raises everyone's collision
//     rate, and phantoms are added while the modeled benefit stays
//     positive. GC with the SL scheme is the paper's GCSL; with PL, GCPL.
//   - EPES (Section 6.3): exhaustive search over phantom subsets with
//     exhaustive (ES) space allocation for each — the optimum the greedy
//     algorithms are compared against.
package choose

import (
	"fmt"
	"math"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/spacealloc"
)

// Step records one state of the phantom-choosing process, feeding
// Figure 12's cost-vs-phantoms trace.
type Step struct {
	Added   attr.Set // phantom added at this step (0 for the initial state)
	Cost    float64  // modeled per-record cost after the step
	Benefit float64  // cost improvement over the previous step
}

// Result is a chosen configuration with its allocation and modeled cost.
type Result struct {
	Config *feedgraph.Config
	Alloc  cost.Alloc
	Cost   float64
	Trace  []Step
}

// NoPhantom instantiates only the queries, allocating M by the scheme; the
// baseline the paper compares against in Figures 13(b) and 14(b).
func NoPhantom(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params, scheme spacealloc.Scheme) (*Result, error) {
	cfg, err := feedgraph.NewConfig(g.Queries, nil)
	if err != nil {
		return nil, err
	}
	alloc, err := spacealloc.Allocate(scheme, cfg, groups, m, p)
	if err != nil {
		return nil, err
	}
	c, err := cost.PerRecord(cfg, groups, alloc, p)
	if err != nil {
		return nil, err
	}
	return &Result{Config: cfg, Alloc: alloc, Cost: c, Trace: []Step{{Cost: c}}}, nil
}

// GC is the paper's greedy-by-increasing-collision-rates algorithm:
// starting from the query-only configuration with the full budget
// allocated by the scheme, it repeatedly adds the candidate phantom with
// the largest positive modeled benefit, reallocating the full budget each
// time, and stops when no phantom helps.
func GC(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params, scheme spacealloc.Scheme) (*Result, error) {
	cur, err := NoPhantom(g, groups, m, p, scheme)
	if err != nil {
		return nil, err
	}
	chosen := []attr.Set{}
	for {
		type cand struct {
			rel   attr.Set
			cfg   *feedgraph.Config
			alloc cost.Alloc
			cost  float64
		}
		var best *cand
		for _, ph := range g.Phantoms {
			if cur.Config.Has(ph) {
				continue
			}
			cfg, err := feedgraph.NewConfig(g.Queries, append(append([]attr.Set(nil), chosen...), ph))
			if err != nil {
				return nil, err
			}
			alloc, err := spacealloc.Allocate(scheme, cfg, groups, m, p)
			if err != nil {
				continue // budget cannot accommodate this phantom
			}
			c, err := cost.PerRecord(cfg, groups, alloc, p)
			if err != nil {
				return nil, err
			}
			if best == nil || c < best.cost {
				best = &cand{rel: ph, cfg: cfg, alloc: alloc, cost: c}
			}
		}
		if best == nil || best.cost >= cur.Cost {
			break
		}
		chosen = append(chosen, best.rel)
		cur.Trace = append(cur.Trace, Step{Added: best.rel, Cost: best.cost, Benefit: cur.Cost - best.cost})
		cur.Config, cur.Alloc, cur.Cost = best.cfg, best.alloc, best.cost
	}
	// Later additions can re-parent the tree so that an earlier phantom
	// ends up feeding a single relation; such phantoms are never
	// beneficial (Section 2.6), so drop them and reallocate.
	if pruned := prune(g.Queries, chosen); len(pruned) != len(chosen) {
		cfg, err := feedgraph.NewConfig(g.Queries, pruned)
		if err != nil {
			return nil, err
		}
		alloc, err := spacealloc.Allocate(scheme, cfg, groups, m, p)
		if err != nil {
			return nil, err
		}
		c, err := cost.PerRecord(cfg, groups, alloc, p)
		if err != nil {
			return nil, err
		}
		cur.Config, cur.Alloc, cur.Cost = cfg, alloc, c
		cur.Trace = append(cur.Trace, Step{Cost: c, Benefit: cur.Trace[len(cur.Trace)-1].Cost - c})
	}
	return cur, nil
}

// prune removes phantoms that feed fewer than two relations in the
// configuration induced by (queries, chosen), repeating until none remain.
func prune(queries, chosen []attr.Set) []attr.Set {
	cur := append([]attr.Set(nil), chosen...)
	for {
		cfg, err := feedgraph.NewConfig(queries, cur)
		if err != nil {
			return cur
		}
		useless := cfg.UselessPhantoms()
		if len(useless) == 0 {
			return cur
		}
		drop := make(map[attr.Set]bool, len(useless))
		for _, u := range useless {
			drop[u] = true
		}
		var next []attr.Set
		for _, c := range cur {
			if !drop[c] {
				next = append(next, c)
			}
		}
		cur = next
	}
}

// GCSL runs GC with the SL space-allocation scheme, the paper's headline
// algorithm.
func GCSL(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params) (*Result, error) {
	return GC(g, groups, m, p, spacealloc.SL)
}

// GS is the paper's greedy-by-increasing-space algorithm, adapted from the
// view-materialization greedy. Every instantiated relation is sized at
// φ·g buckets; candidates are ranked by benefit per unit of space; after
// the greedy loop the remaining budget is spread over the instantiated
// relations proportionally to their group counts.
func GS(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params, phi float64) (*Result, error) {
	if phi <= 0 {
		return nil, fmt.Errorf("choose: phi must be positive, got %v", phi)
	}
	buckets := func(r attr.Set) (int, error) {
		gr, err := groups.Get(r)
		if err != nil {
			return 0, err
		}
		b := int(math.Ceil(phi * gr))
		if b < 1 {
			b = 1
		}
		return b, nil
	}
	space := func(r attr.Set, b int) int { return b * feedgraph.EntrySize(r) }

	// Queries first.
	alloc := cost.Alloc{}
	used := 0
	for _, q := range g.Queries {
		b, err := buckets(q)
		if err != nil {
			return nil, err
		}
		alloc[q] = b
		used += space(q, b)
	}
	if used > m {
		// The paper assumes the queries fit at φ·g; when they do not,
		// scale them down proportionally so the algorithm remains total.
		scale := float64(m) / float64(used)
		used = 0
		for _, q := range g.Queries {
			nb := int(float64(alloc[q]) * scale)
			if nb < 1 {
				nb = 1
			}
			alloc[q] = nb
			used += space(q, nb)
		}
	}
	cfg, err := feedgraph.NewConfig(g.Queries, nil)
	if err != nil {
		return nil, err
	}
	curCost, err := cost.PerRecord(cfg, groups, alloc, p)
	if err != nil {
		return nil, err
	}
	res := &Result{Config: cfg, Alloc: alloc, Cost: curCost, Trace: []Step{{Cost: curCost}}}
	var chosen []attr.Set
	for {
		type cand struct {
			rel          attr.Set
			cfg          *feedgraph.Config
			alloc        cost.Alloc
			cost         float64
			perUnitSpace float64
		}
		var best *cand
		for _, ph := range g.Phantoms {
			if res.Config.Has(ph) {
				continue
			}
			b, err := buckets(ph)
			if err != nil {
				return nil, err
			}
			s := space(ph, b)
			if used+s > m {
				continue
			}
			cfg2, err := feedgraph.NewConfig(g.Queries, append(append([]attr.Set(nil), chosen...), ph))
			if err != nil {
				return nil, err
			}
			alloc2 := res.Alloc.Clone()
			alloc2[ph] = b
			c, err := cost.PerRecord(cfg2, groups, alloc2, p)
			if err != nil {
				return nil, err
			}
			benefit := res.Cost - c
			if benefit <= 0 {
				continue
			}
			pus := benefit / float64(s)
			if best == nil || pus > best.perUnitSpace {
				best = &cand{rel: ph, cfg: cfg2, alloc: alloc2, cost: c, perUnitSpace: pus}
			}
		}
		if best == nil {
			break
		}
		chosen = append(chosen, best.rel)
		used += space(best.rel, best.alloc[best.rel])
		res.Trace = append(res.Trace, Step{Added: best.rel, Cost: best.cost, Benefit: res.Cost - best.cost})
		res.Config, res.Alloc, res.Cost = best.cfg, best.alloc, best.cost
	}

	// Drop phantoms that later additions demoted to feeding a single
	// relation (never beneficial, Section 2.6); their space rejoins the
	// leftover pool.
	if pruned := prune(g.Queries, chosen); len(pruned) != len(chosen) {
		cfg2, err := feedgraph.NewConfig(g.Queries, pruned)
		if err != nil {
			return nil, err
		}
		alloc2 := cost.Alloc{}
		used = 0
		for _, r := range cfg2.Rels {
			alloc2[r] = res.Alloc[r]
			used += space(r, alloc2[r])
		}
		c, err := cost.PerRecord(cfg2, groups, alloc2, p)
		if err != nil {
			return nil, err
		}
		res.Config, res.Alloc, res.Cost = cfg2, alloc2, c
	}

	// Distribute the leftover space proportionally to group counts.
	if left := m - used; left > 0 {
		totalG := 0.0
		for _, r := range res.Config.Rels {
			totalG += groups[r]
		}
		alloc2 := res.Alloc.Clone()
		for _, r := range res.Config.Rels {
			share := groups[r] / totalG * float64(left)
			alloc2[r] += int(share) / feedgraph.EntrySize(r)
		}
		c, err := cost.PerRecord(res.Config, groups, alloc2, p)
		if err != nil {
			return nil, err
		}
		res.Alloc, res.Cost = alloc2, c
	}
	return res, nil
}

// EPES exhaustively searches configurations (all subsets of candidate
// phantoms) with ES space allocation at the given granularity, returning
// the configuration with minimum modeled cost. Exponential in the number
// of candidate phantoms; it is the paper's optimum reference, not a
// production algorithm.
func EPES(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params, steps int) (*Result, error) {
	if steps <= 0 {
		steps = spacealloc.DefaultGranularity
	}
	var best *Result
	err := g.EnumerateConfigs(func(cfg *feedgraph.Config) bool {
		alloc, err := spacealloc.Exhaustive(cfg, groups, m, p, steps)
		if err != nil {
			return true // this configuration does not fit; skip
		}
		c, err := cost.PerRecord(cfg, groups, alloc, p)
		if err != nil {
			return true
		}
		if best == nil || c < best.Cost {
			best = &Result{Config: cfg, Alloc: alloc, Cost: c}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("choose: no feasible configuration for budget %d", m)
	}
	return best, nil
}
