package collision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/hashtab"
)

func TestRough(t *testing.T) {
	if got := Rough(1000, 1000); got != 0 {
		t.Errorf("Rough(g=b) = %v; want 0", got)
	}
	if got := Rough(2000, 1000); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Rough(2000,1000) = %v; want 0.5", got)
	}
	if got := Rough(500, 1000); got != 0 {
		t.Errorf("Rough(g<b) = %v; want 0", got)
	}
	if got := Rough(0, 1000); got != 0 {
		t.Errorf("Rough(0, b) = %v", got)
	}
}

// TestPreciseMatchesClosed: the truncated binomial sum (paper's
// computation) must agree with the exact closed form.
func TestPreciseMatchesClosed(t *testing.T) {
	for _, gb := range [][2]float64{
		{100, 1000}, {500, 1000}, {1000, 1000}, {3000, 1000},
		{10000, 1000}, {552, 2000}, {2837, 300}, {50, 7}, {7, 7},
	} {
		g, b := gb[0], gb[1]
		p, c := Precise(g, b), Closed(g, b)
		if c == 0 {
			if p > 1e-9 {
				t.Errorf("g=%v b=%v: Precise=%v, Closed=0", g, b, p)
			}
			continue
		}
		// The paper's μ+5σ truncation leaves up to ~2% relative error
		// when μ = g/b is tiny (few terms summed); elsewhere agreement is
		// essentially exact.
		if rel := math.Abs(p-c) / c; rel > 0.02 {
			t.Errorf("g=%v b=%v: Precise=%v vs Closed=%v (rel err %v)", g, b, p, c, rel)
		}
	}
}

func TestPreciseKnownValues(t *testing.T) {
	// g/b = 1 with large b: x → 1 - (1 - e^{-1}) = e^{-1} ≈ 0.3679. The
	// paper uses this when suggesting φ = 1 "corresponds to a collision
	// rate of about 0.37".
	if got := Precise(100000, 100000); math.Abs(got-1/math.E) > 0.005 {
		t.Errorf("Precise(g=b, large) = %v; want ≈ %v", got, 1/math.E)
	}
	// Degenerate single bucket.
	if got := Precise(4, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Precise(4,1) = %v; want 0.75", got)
	}
	// No groups / no buckets.
	if Precise(0, 10) != 0 || Precise(10, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

// TestRoughVsPreciseShape reproduces the qualitative claim of Figure 5:
// the rough model is far below the precise model at small g/b and
// converges to it as g/b grows.
func TestRoughVsPreciseShape(t *testing.T) {
	b := 1000.0
	smallGap := Precise(500, b) - Rough(500, b) // g/b = 0.5
	if smallGap < 0.1 {
		t.Errorf("at g/b=0.5 precise-rough gap = %v; want large", smallGap)
	}
	largeRel := (Precise(9000, b) - Rough(9000, b)) / Precise(9000, b)
	if largeRel > 0.05 {
		t.Errorf("at g/b=9 precise vs rough relative gap = %v; want small", largeRel)
	}
}

// TestPreciseMonotone: x is increasing in g and decreasing in b.
func TestPreciseMonotoneProperty(t *testing.T) {
	f := func(gRaw, bRaw uint16) bool {
		g := float64(gRaw%5000) + 10
		b := float64(bRaw%3000) + 10
		x := Precise(g, b)
		if x < 0 || x > 1 {
			return false
		}
		if Precise(g*1.5, b) < x-1e-9 {
			return false
		}
		if Precise(g, b*1.5) > x+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTable1 reproduces Table 1: for fixed g/b, the rate varies by well
// under a few percent as b sweeps 300..3000.
func TestTable1RateDependsOnlyOnRatio(t *testing.T) {
	for _, r := range []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32} {
		lo, hi := math.Inf(1), math.Inf(-1)
		for b := 300.0; b <= 3000; b += 300 {
			x := Precise(r*b, b)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		variation := (hi - lo) / hi
		if variation > 0.02 {
			t.Errorf("g/b=%v: variation %.4f exceeds 2%%", r, variation)
		}
	}
}

// TestFig6Shape reproduces Figure 6: per-k contributions at g=3000,
// b=1000 peak around k=4 at ≈ 0.16 and vanish past k ≈ 12.
func TestFig6Shape(t *testing.T) {
	g, b := 3000.0, 1000.0
	peakK, peakV := 0, 0.0
	for k := 2; k <= 20; k++ {
		v := ProbOfK(g, b, k)
		if v > peakV {
			peakK, peakV = k, v
		}
	}
	if peakK != 4 {
		t.Errorf("peak at k=%d; paper observes k=4", peakK)
	}
	if math.Abs(peakV-0.168) > 0.02 {
		t.Errorf("peak value %v; want ≈ 0.168", peakV)
	}
	if ProbOfK(g, b, 13) > 0.001 {
		t.Errorf("contribution at k=13 = %v; should be ≈ 0", ProbOfK(g, b, 13))
	}
	// Summing contributions up to the paper's bound reproduces Precise.
	kmax := TruncationBound(g, b)
	if kmax < 8 || kmax > 15 {
		t.Errorf("truncation bound = %d; paper computes ≈ 12", kmax)
	}
	sum := 0.0
	for k := 2; k <= kmax; k++ {
		sum += ProbOfK(g, b, k)
	}
	if rel := math.Abs(sum-Precise(g, b)) / Precise(g, b); rel > 1e-3 {
		t.Errorf("Σ ProbOfK = %v vs Precise = %v", sum, Precise(g, b))
	}
}

func TestClustered(t *testing.T) {
	if got := Clustered(0.4, 10); math.Abs(got-0.04) > 1e-12 {
		t.Errorf("Clustered(0.4, 10) = %v", got)
	}
	if got := Clustered(0.4, 1); got != 0.4 {
		t.Errorf("Clustered with l_a=1 changed the rate: %v", got)
	}
	if got := Clustered(0.4, 0); got != 0.4 {
		t.Errorf("Clustered must treat l_a<1 as 1: %v", got)
	}
}

func TestLinearLow(t *testing.T) {
	// Equation 16 at g/b = 1 gives about 0.38, close to the true e^-1.
	if got := LinearLow(1); math.Abs(got-0.3807) > 1e-4 {
		t.Errorf("LinearLow(1) = %v", got)
	}
	if LinearLow(0) != 0 || LinearLow(-1) != 0 {
		t.Error("LinearLow must be 0 for r ≤ 0")
	}
	// Against the precise model the published linear law is accurate in
	// the upper part of its validity range (x ≤ 0.4 ⇒ r ≲ 1.05); at tiny
	// r its additive constant dominates, which the paper tolerates (it
	// reports a 5% *average* error over the zoomed region).
	for r := 0.4; r <= 1.05; r += 0.05 {
		x := Precise(r*1000, 1000)
		if rel := math.Abs(LinearLow(r)-x) / x; rel > 0.15 {
			t.Errorf("r=%v: LinearLow=%v vs Precise=%v (rel %v)", r, LinearLow(r), x, rel)
		}
	}
}

func TestCurveAccuracy(t *testing.T) {
	c := NewCurve()
	// Paper: ≤ 5% max relative error per interval.
	for i := 0; i+1 < len(curveBreaks); i++ {
		lo, hi := curveBreaks[i], curveBreaks[i+1]
		if err := c.MaxRelErr(lo, hi); err > 0.05 {
			t.Errorf("interval (%v,%v]: max rel err %.4f exceeds 5%%", lo, hi, err)
		}
	}
	// Beyond the fitted range the closed form takes over smoothly.
	if got := c.Rate(80); math.Abs(got-Closed(80000, 1000)) > 1e-9 {
		t.Errorf("tail Rate(80) = %v", got)
	}
	if c.Rate(0) != 0 || c.Rate(-3) != 0 {
		t.Error("Rate must be 0 for r ≤ 0")
	}
}

func TestCurveFitLinearLow(t *testing.T) {
	alpha, mu, err := DefaultCurve.FitLinearLow(0.4)
	if err != nil {
		t.Fatal(err)
	}
	// The refit should land near the paper's published coefficients.
	if math.Abs(mu-LinearMu) > 0.05 {
		t.Errorf("fitted mu = %v; paper reports %v", mu, LinearMu)
	}
	if math.Abs(alpha-LinearAlpha) > 0.03 {
		t.Errorf("fitted alpha = %v; paper reports %v", alpha, LinearAlpha)
	}
	if _, _, err := DefaultCurve.FitLinearLow(-1); err == nil {
		t.Error("impossible fit accepted")
	}
}

func TestRateConvenience(t *testing.T) {
	if got, want := Rate(3000, 1000), Precise(3000, 1000); math.Abs(got-want)/want > 0.05 {
		t.Errorf("Rate = %v; Precise = %v", got, want)
	}
	if Rate(10, 0) != 1 {
		t.Error("Rate with b=0 should saturate at 1")
	}
}

// TestModelAgainstSimulation validates the model against the actual hash
// tables (the package hashtab implementation), reproducing the paper's
// claim that >95% of measurements fall within 5% of the precise model.
// Random (non-clustered) data, several g/b points. The tables probe
// 16-slot groups (hashtab.GroupSlots), so the measured rates are held to
// the grouped generalization PreciseSlots; TestSlotsReduceToPaper keeps
// that generalization anchored to the paper's Equation 13.
func TestModelAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	rel := attr.MustParseSet("A")
	for _, tc := range []struct{ g, b int }{
		{552, 1000}, {1846, 1000}, {2117, 600}, {2837, 400}, {2000, 2000},
	} {
		// Average over a few independent hash seeds to suppress seed noise.
		const trials = 5
		var meanRate float64
		for trial := 0; trial < trials; trial++ {
			tab := hashtab.MustNew(rel, tc.b, []hashtab.AggOp{hashtab.Sum}, uint64(trial)*977+1)
			n := 40 * tc.g
			for i := 0; i < n; i++ {
				v := uint32(rng.Intn(tc.g))
				tab.Probe([]uint32{v}, []int64{1})
			}
			meanRate += tab.Stats().CollisionRate()
		}
		meanRate /= trials
		model := PreciseSlots(float64(tc.g), float64(tc.b), hashtab.GroupSlots)
		// Relative 8% like the paper's claim, with an absolute floor: in
		// the grouped geometry light loads collide a few times in 10⁴
		// probes, where the binomial tail (and the measurement itself)
		// carries no finer resolution.
		if diff := math.Abs(meanRate - model); diff > math.Max(0.08*model, 0.002) {
			t.Errorf("g=%d b=%d: measured %v vs model %v (diff %.4f)",
				tc.g, tc.b, meanRate, model, diff)
		}
	}
}

// TestClusteredAgainstSimulation validates Equation 15 on flow-clustered
// streams: measured rate ≈ random-model rate / l_a.
func TestClusteredAgainstSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow in -short mode")
	}
	rng := rand.New(rand.NewSource(11))
	rel := attr.MustParseSet("A")
	g, b := 2000, 1000
	flowLen := 10
	tab := hashtab.MustNew(rel, b, []hashtab.AggOp{hashtab.Sum}, 5)
	// Emit flows back to back: flowLen consecutive records per group.
	// (Back-to-back is the idealized clusteredness of Section 4.3.)
	for i := 0; i < 30000; i++ {
		v := uint32(rng.Intn(g))
		for j := 0; j < flowLen; j++ {
			tab.Probe([]uint32{v}, []int64{1})
		}
	}
	measured := tab.Stats().CollisionRate()
	model := Clustered(PreciseSlots(float64(g), float64(b), hashtab.GroupSlots), float64(flowLen))
	if rel := math.Abs(measured-model) / model; rel > 0.15 {
		t.Errorf("clustered: measured %v vs model %v", measured, model)
	}
	// The table's own estimator measures records per bucket *occupancy*:
	// at least the flow length, and larger when a group's next flow
	// arrives before the entry was evicted (g/b = 2 here, so recurrence
	// is common). It must never undershoot l_a.
	if la := tab.Stats().AvgFlowLength(); la < float64(flowLen)*0.95 || la > float64(flowLen)*3 {
		t.Errorf("estimated occupancy length %v; want within [%d, %d]", la, flowLen, 3*flowLen)
	}
}

func BenchmarkPrecise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Precise(3000, 1000)
	}
}

func BenchmarkCurveRate(b *testing.B) {
	c := NewCurve()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Rate(3.0)
	}
}
