package collision

import (
	"math"
	"testing"

	"repro/internal/hashtab"
)

// TestTableSlotsMatchesHashtab keeps the model's geometry constant in
// lockstep with the tables it describes.
func TestTableSlotsMatchesHashtab(t *testing.T) {
	if TableSlots != hashtab.GroupSlots {
		t.Fatalf("collision.TableSlots = %d, hashtab.GroupSlots = %d", TableSlots, hashtab.GroupSlots)
	}
}

// TestSlotsReduceToPaper is the single-slot regression the grouped model
// is anchored to: at s = 1 the *Slots forms must reproduce the paper's
// Equation 13 exactly, including the pinned values the pre-group test
// suite validated measured tables against.
func TestSlotsReduceToPaper(t *testing.T) {
	for _, gb := range [][2]float64{
		{100, 1000}, {552, 1000}, {1846, 1000}, {2000, 2000},
		{3000, 1000}, {2837, 400}, {50, 7}, {4, 1},
	} {
		g, b := gb[0], gb[1]
		if p, ps := Precise(g, b), PreciseSlots(g, b, 1); p != ps {
			t.Errorf("PreciseSlots(%v,%v,1) = %v, Precise = %v", g, b, ps, p)
		}
		if c, cs := Closed(g, b), ClosedSlots(g, b, 1); c != cs {
			t.Errorf("ClosedSlots(%v,%v,1) = %v, Closed = %v", g, b, cs, c)
		}
	}
	// Pinned single-slot predictions (values the old one-slot tables were
	// measured against); a change here means the paper model moved, not
	// just the table geometry.
	pins := []struct{ g, b, want float64 }{
		{552, 1000, 0.23122836889798207},
		{1846, 1000, 0.5437065056663726},
		{2000, 2000, 0.3677873530532304},
	}
	for _, p := range pins {
		if got := PreciseSlots(p.g, p.b, 1); math.Abs(got-p.want) > 1e-12 {
			t.Errorf("PreciseSlots(%v,%v,1) = %.17g, pinned %.17g", p.g, p.b, got, p.want)
		}
	}
}

// TestPreciseSlotsMatchesClosedSlots: the truncated upper sum must agree
// with the exact closed form across geometries, like the s = 1 pair.
func TestPreciseSlotsMatchesClosedSlots(t *testing.T) {
	for _, s := range []float64{2, 4, 16, 16.0} {
		for _, gb := range [][2]float64{
			{100, 1000}, {552, 1000}, {1846, 1000}, {2000, 2000},
			{3000, 1000}, {10000, 1000}, {2837, 400}, {50, 7}, {7, 7},
		} {
			g, b := gb[0], gb[1]
			p, c := PreciseSlots(g, b, s), ClosedSlots(g, b, s)
			if c < 1e-9 {
				if p > 1e-6 {
					t.Errorf("s=%v g=%v b=%v: PreciseSlots=%v, ClosedSlots≈0", s, g, b, p)
				}
				continue
			}
			if rel := math.Abs(p-c) / c; rel > 0.02 {
				t.Errorf("s=%v g=%v b=%v: PreciseSlots=%v vs ClosedSlots=%v (rel %v)", s, g, b, p, c, rel)
			}
		}
	}
}

// TestSlotsMonotone: at fixed space, wider groups can only reduce the
// collision rate (a group evicts only when all s co-hashed slots are
// taken), and every geometry shares the 1 - b/g asymptote.
func TestSlotsMonotone(t *testing.T) {
	for _, gb := range [][2]float64{{800, 1000}, {2000, 1000}, {8000, 1000}} {
		g, b := gb[0], gb[1]
		prev := ClosedSlots(g, b, 1)
		for _, s := range []float64{2, 4, 8, 16} {
			cur := ClosedSlots(g, b, s)
			if cur > prev+1e-12 {
				t.Errorf("g=%v b=%v: x(s=%v)=%v > x(smaller)=%v", g, b, s, cur, prev)
			}
			prev = cur
		}
		if floor := clamp01(1 - b/g); prev < floor-1e-9 {
			t.Errorf("g=%v b=%v: grouped rate %v below occupancy floor %v", g, b, prev, floor)
		}
	}
}

// TestGroupCurve holds the fitted TableSlots curve to the model it
// tabulates, inside and outside the fitted range.
func TestGroupCurve(t *testing.T) {
	c := DefaultGroupCurve()
	for _, r := range []float64{0.5, 1, 1.5, 2, 3, 8, 20, 45} {
		want := PreciseSlots(r*1024, 1024, TableSlots)
		got := c.Rate(r)
		tol := math.Max(0.08*want, 0.01)
		if math.Abs(got-want) > tol {
			t.Errorf("GroupCurve.Rate(%v) = %v, model %v", r, got, want)
		}
	}
	if got, want := c.Rate(80), ClosedSlots(80*1024, 1024, TableSlots); math.Abs(got-want) > 1e-9 {
		t.Errorf("tail Rate(80) = %v, want closed-form %v", got, want)
	}
	if GroupRate(10, 0) != 1 {
		t.Error("GroupRate with b=0 should saturate at 1")
	}
	if c.Rate(0) != 0 || c.Rate(-1) != 0 {
		t.Error("Rate must be 0 for r ≤ 0")
	}
}
