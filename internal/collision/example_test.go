package collision_test

import (
	"fmt"

	"repro/internal/collision"
)

func ExamplePrecise() {
	// At g = b the precise model gives ≈ 1/e, which is why the paper
	// suggests φ = 1 "corresponds to a collision rate of about 0.37".
	fmt.Printf("%.3f\n", collision.Precise(1000, 1000))
	fmt.Printf("%.3f\n", collision.Rough(1000, 1000))
	// Output:
	// 0.368
	// 0.000
}

func ExampleClustered() {
	// Equation 15: flows of average length 10 divide the rate by 10.
	x := collision.Precise(2000, 1000)
	fmt.Printf("%.3f -> %.4f\n", x, collision.Clustered(x, 10))
	// Output: 0.568 -> 0.0568
}

func ExampleLinearLow() {
	// Equation 16's published linear law for the low-rate region.
	fmt.Printf("%.4f\n", collision.LinearLow(0.5))
	// Output: 0.2037
}
