// Package collision implements the paper's collision-rate model
// (Section 4): the probability that a probe of an LFTA hash table evicts
// the resident entry, as a function of the number of groups g and buckets
// b, for random and for clustered (flow) data.
//
// Three interchangeable estimators are provided:
//
//   - Rough: Equation 10, x = 1 - b/g, from the expected occupancy only;
//   - Precise: Equation 13, the binomial occupancy sum, evaluated with the
//     paper's Gaussian truncation (Section 4.4, sum up to μ+5σ);
//   - Closed: an exact closed form of the same sum,
//     x = 1 - (b/g)·(1 - (1-1/b)^g), which follows from
//     Σ_k pmf(k)·(k-1) = E[K] - 1 + P(K=0) for K ~ Binomial(g, 1/b).
//     It is used as a cross-check oracle in tests and as the tail of the
//     precomputed curve.
//
// Because the rate depends almost solely on the ratio r = g/b (Table 1 of
// the paper: variation under 1.5%), the package also precomputes the rate
// curve as a function of r and fits the paper's piecewise regression over
// six intervals (Figure 7) plus the low-rate linear law
// x ≈ 0.0267 + 0.354·r (Equation 16, Figure 8). The regression is what the
// optimizer evaluates: it costs a few ns instead of a binomial sum.
//
// For clustered data (Section 4.3), all packets of a flow occupy a bucket
// without internal collisions, so the random-data rate simply divides by
// the average flow length: Equation 15.
package collision

import (
	"fmt"
	"math"
)

// Rough is Equation 10: x = 1 - b/g, clamped to [0, 1]. It assumes every
// bucket holds exactly the expected g/b groups.
func Rough(g, b float64) float64 {
	if g <= 0 || b <= 0 || g <= b {
		return 0
	}
	return 1 - b/g
}

// Precise is Equation 13 evaluated the way Section 4.4 prescribes: sum the
// per-k collision contributions of the binomial occupancy distribution from
// k = 2 up to μ + 5σ (the Gaussian tail bound), where μ = g/b and
// σ² = g(1-1/b)/b.
func Precise(g, b float64) float64 {
	if g <= 0 || b <= 0 {
		return 0
	}
	if b == 1 {
		// Single bucket: every probe of a non-resident group collides;
		// of g equally likely groups, (g-1)/g probes change the group.
		return (g - 1) / g
	}
	mu := g / b
	sigma := math.Sqrt(g * (1 - 1/b) / b)
	kmax := int(math.Ceil(mu + 5*sigma))
	// For tiny μ the Gaussian bound leaves too few terms (it can even fall
	// below k = 2); the paper hedges with "up to several more σ", which a
	// floor of 10 terms implements at negligible cost.
	if kmax < 10 {
		kmax = 10
	}
	if kmax > int(g) {
		kmax = int(g)
	}
	if kmax < 2 {
		return 0
	}
	// pmf(k) for K ~ Binomial(g, 1/b), computed by the stable recurrence
	// pmf(k+1) = pmf(k) · (g-k)/((k+1)(b-1)) from
	// pmf(0) = (1-1/b)^g = exp(g·log1p(-1/b)).
	pmf := math.Exp(g * math.Log1p(-1/b))
	sum := 0.0
	for k := 0; k < kmax; k++ {
		pmf *= (g - float64(k)) / (float64(k+1) * (b - 1))
		// now pmf = P(K = k+1)
		if k+1 >= 2 {
			sum += pmf * float64(k+1-1)
		}
	}
	x := (b / g) * sum
	return clamp01(x)
}

// Closed is the exact closed form of Equation 13 without truncation:
// x = 1 - (b/g)·(1 - (1-1/b)^g).
func Closed(g, b float64) float64 {
	if g <= 0 || b <= 0 {
		return 0
	}
	if b == 1 {
		return (g - 1) / g
	}
	x := 1 - (b/g)*(1-math.Exp(g*math.Log1p(-1/b)))
	return clamp01(x)
}

// ProbOfK is the per-k collision contribution plotted in Figure 6:
// (b/g)·P(K=k)·(k-1) for K ~ Binomial(g, 1/b).
func ProbOfK(g, b float64, k int) float64 {
	if k < 2 || float64(k) > g || b <= 1 {
		return 0
	}
	// log pmf via lgamma for arbitrary k.
	lg := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
	logPmf := lg(g+1) - lg(float64(k)+1) - lg(g-float64(k)+1) +
		float64(k)*math.Log(1/b) + (g-float64(k))*math.Log1p(-1/b)
	return (b / g) * math.Exp(logPmf) * float64(k-1)
}

// TruncationBound returns the paper's μ+5σ summation bound for (g, b).
func TruncationBound(g, b float64) int {
	mu := g / b
	sigma := math.Sqrt(g * (1 - 1/b) / b)
	return int(math.Ceil(mu + 5*sigma))
}

// Clustered is Equation 15: the random-data rate divided by the average
// flow length l_a (l_a = 1 recovers the random case).
func Clustered(x, flowLen float64) float64 {
	if flowLen < 1 {
		flowLen = 1
	}
	return clamp01(x / flowLen)
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

// Equation 16's published coefficients for the low-rate linear law
// x ≈ LinearAlpha + LinearMu·(g/b), valid while x ≲ 0.4.
const (
	LinearAlpha = 0.0267
	LinearMu    = 0.354
)

// LinearLow evaluates Equation 16.
func LinearLow(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return clamp01(LinearAlpha + LinearMu*r)
}

// Mu is the slope used throughout the space-allocation analysis
// (Section 5 approximates x ≈ μ·g/b).
const Mu = LinearMu

// Curve is the precomputed collision-rate curve of Section 4.4: the
// precise model tabulated as a function of r = g/b at a reference table
// size, with the paper's six-interval quadratic regression fitted over it.
// Evaluating the curve costs a handful of float operations, which is what
// makes configuration search take "only a few milliseconds".
type Curve struct {
	intervals []interval
	rs        []float64 // tabulation grid, ascending
	xs        []float64 // tabulated precise rates
	slots     float64   // slots per probe group tabulated (0 or 1 = paper's one-slot model)
}

type interval struct {
	lo, hi  float64
	a, b, c float64 // x(r) = a + b·r + c·r²
}

// curveRefBuckets is the reference b used to tabulate the curve; Table 1
// shows the r-dependence varies by under 1.5% across b ∈ [300, 3000].
const curveRefBuckets = 1000

// Paper-faithful interval boundaries: six intervals covering Figure 7's
// r ∈ (0, 50] domain, finer where the curve bends (the paper reports a
// six-interval split achieving ≤5% relative error per interval).
var curveBreaks = []float64{0, 0.3, 0.8, 1.8, 4, 10, 50}

// NewCurve tabulates the precise model and fits the piecewise regression.
func NewCurve() *Curve {
	c := &Curve{}
	// Tabulate on a grid dense enough for both regression and the
	// interpolation fallback used outside the fitted range.
	for r := 0.01; r <= 50.0005; r += 0.01 {
		c.rs = append(c.rs, r)
		c.xs = append(c.xs, Precise(r*curveRefBuckets, curveRefBuckets))
	}
	for i := 0; i+1 < len(curveBreaks); i++ {
		lo, hi := curveBreaks[i], curveBreaks[i+1]
		a, b2, c2 := c.fitQuadratic(lo, hi)
		c.intervals = append(c.intervals, interval{lo: lo, hi: hi, a: a, b: b2, c: c2})
	}
	return c
}

// fitQuadratic fits x = a + b·r + c·r² over grid points in (lo, hi] by
// weighted least squares with weights 1/x², i.e. it minimizes *relative*
// residuals, which is the error metric the paper reports per interval.
func (c *Curve) fitQuadratic(lo, hi float64) (a, b, cc float64) {
	// Normal equations for the 3-parameter weighted fit.
	var s [5]float64 // Σ w·r^0..r^4
	var t [3]float64 // Σ w·x·r^0..r^2
	for i, r := range c.rs {
		if r <= lo || r > hi {
			continue
		}
		x := c.xs[i]
		wx := math.Max(x, 1e-4)
		w := 1 / (wx * wx)
		rp := 1.0
		for j := 0; j < 5; j++ {
			s[j] += w * rp
			if j < 3 {
				t[j] += w * x * rp
			}
			rp *= r
		}
	}
	// Solve the 3x3 system [s0 s1 s2; s1 s2 s3; s2 s3 s4]·[a b c] = t.
	m := [3][4]float64{
		{s[0], s[1], s[2], t[0]},
		{s[1], s[2], s[3], t[1]},
		{s[2], s[3], s[4], t[2]},
	}
	for col := 0; col < 3; col++ {
		// Partial pivot.
		p := col
		for row := col + 1; row < 3; row++ {
			if math.Abs(m[row][col]) > math.Abs(m[p][col]) {
				p = row
			}
		}
		m[col], m[p] = m[p], m[col]
		if m[col][col] == 0 {
			return 0, 0, 0
		}
		for row := 0; row < 3; row++ {
			if row == col {
				continue
			}
			f := m[row][col] / m[col][col]
			for k := col; k < 4; k++ {
				m[row][k] -= f * m[col][k]
			}
		}
	}
	return m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]
}

// Rate evaluates the fitted curve at r = g/b. Outside the fitted range it
// falls back to the closed form, which the curve converges to.
func (c *Curve) Rate(r float64) float64 {
	if r <= 0 {
		return 0
	}
	for _, iv := range c.intervals {
		if r > iv.lo && r <= iv.hi {
			return clamp01(iv.a + iv.b*r + iv.c*r*r)
		}
	}
	if c.slots > 1 {
		return ClosedSlots(r*curveRefBucketsSlots, curveRefBucketsSlots, c.slots)
	}
	return Closed(r*curveRefBuckets, curveRefBuckets)
}

// RateGB evaluates the curve for a concrete table: r = g/b.
func (c *Curve) RateGB(g, b float64) float64 {
	if b <= 0 {
		return 1
	}
	return c.Rate(g / b)
}

// Tabulated returns a copy of the tabulation grid, for experiment plots.
func (c *Curve) Tabulated() (rs, xs []float64) {
	return append([]float64(nil), c.rs...), append([]float64(nil), c.xs...)
}

// MaxRelErr reports the maximum relative error of the regression against
// the tabulated precise values over r ∈ (lo, hi]; the paper targets 5% per
// interval (average below 1%).
func (c *Curve) MaxRelErr(lo, hi float64) float64 {
	worst := 0.0
	for i, r := range c.rs {
		if r <= lo || r > hi {
			continue
		}
		if c.xs[i] < 1e-9 {
			continue
		}
		err := math.Abs(c.Rate(r)-c.xs[i]) / c.xs[i]
		if err > worst {
			worst = err
		}
	}
	return worst
}

// FitLinearLow regresses a line over the tabulated curve where x ≤ maxX
// (Figure 8's zoom region), returning the fitted alpha and mu, comparable
// to Equation 16's published 0.0267 and 0.354.
func (c *Curve) FitLinearLow(maxX float64) (alpha, mu float64, err error) {
	var n, sr, sx, srr, srx float64
	for i, r := range c.rs {
		if c.xs[i] > maxX {
			continue
		}
		n++
		sr += r
		sx += c.xs[i]
		srr += r * r
		srx += r * c.xs[i]
	}
	if n < 2 {
		return 0, 0, fmt.Errorf("collision: no tabulated points with x ≤ %v", maxX)
	}
	den := n*srr - sr*sr
	if den == 0 {
		return 0, 0, fmt.Errorf("collision: degenerate regression")
	}
	mu = (n*srx - sr*sx) / den
	alpha = (sx - mu*sr) / n
	return alpha, mu, nil
}

// DefaultCurve is a process-wide fitted curve; building one costs a few
// milliseconds, so it is shared.
var DefaultCurve = NewCurve()

// Rate is the package-level convenience used by the cost model: the fitted
// curve at g/b, i.e. the estimator the paper's optimizer runs on.
func Rate(g, b float64) float64 {
	return DefaultCurve.RateGB(g, b)
}
