// Grouped-table generalization of the collision model.
//
// Since PR 6 the hashtab tables probe s = 16 slots per hash group (one
// fingerprint vector covers the group), and a probe evicts only when all
// s co-hashed slots hold other keys. The paper's Equation 13 is the
// s = 1 case of a straightforward generalization. A table of b slots
// holds ng = ⌈b/s⌉ groups: ng-1 full groups of s slots and a final group
// of w = b - (ng-1)·s usable slots (w = s when s divides b). The number
// of distinct keys hashing to a probe's group is K ~ Binomial(g, 1/ng),
// and with k > c keys cycling over a group of c slots a probe misses
// (evicts) with probability (k-c)/k: the c slots stay full, so exactly
// k-c of the group's k keys are displaced at any instant, and a
// uniformly random probe hits a displaced key with that frequency.
// Weighting the two group widths,
//
//	x(g, b, s) = [ (ng-1)·E[(K-s)⁺] + E[(K-w)⁺] ] / g
//
// with E[(K-c)⁺] = Σ_{k>c} pmf(k)·(k-c)                  (PreciseSlots)
//
//	= g/ng - c + Σ_{k<c} pmf(k)·(c-k)        (ClosedSlots)
//
// The partial group is not a nicety: at light load the s-slot groups
// almost never fill, and the one narrow group contributes most of the
// measured collisions (g=552, b=1000, s=16: the 8-slot remainder group
// raises x from 0.0018 to 0.0043, which is what the tables measure).
//
// At s = 1 every group has width 1 and both forms reduce exactly to the
// paper's Equation 13 and its closed form (TestSlotsReduceToPaper pins
// this), so the single-slot API above remains the paper-faithful model
// and the planner's default; the *Slots variants are what
// measured-vs-model experiments compare against, since the tables being
// measured have s = 16 physics. Rough (Equation 10) is geometry-free —
// it argues from expected occupancy of the whole table — and needs no
// variant.
package collision

import (
	"math"
	"sync"
)

// TableSlots is the slots-per-group geometry of the hashtab tables the
// measured experiments run on (hashtab.GroupSlots; a cross-package test
// keeps the two constants equal).
const TableSlots = 16

// PreciseSlots is the grouped-geometry collision rate evaluated the way
// Section 4.4 prescribes for Equation 13: sum the per-k contributions of
// the binomial occupancy distribution up to μ + 5σ. s is the number of
// slots per probe group; s ≤ 1 delegates to the paper's Precise. When
// the occupancy mean is so large that the binomial pmf underflows
// (μ ≳ 700 — deeply saturated tables), the exact closed form is used
// instead.
func PreciseSlots(g, b, s float64) float64 {
	if g <= 0 || b <= 0 {
		return 0
	}
	if s <= 1 {
		return Precise(g, b)
	}
	ng := math.Ceil(b / s)
	if ng <= 1 {
		// Single (possibly partial) group of b usable slots: of g equally
		// likely keys, b reside.
		return clamp01(1 - b/g)
	}
	w := b - (ng-1)*s
	mu := g / ng
	pmf := math.Exp(g * math.Log1p(-1/ng))
	if pmf == 0 {
		// Binomial underflow: the table is saturated far past the Gaussian
		// window; the closed form's below-width sums are exact and robust.
		return ClosedSlots(g, b, s)
	}
	sigma := math.Sqrt(g * (1 - 1/ng) / ng)
	kmax := int(math.Ceil(mu + 5*sigma))
	// Keep at least ~10 terms past the group width, mirroring Precise's
	// floor for tiny μ.
	if kmax < int(s)+10 {
		kmax = int(s) + 10
	}
	if kmax > int(g) {
		kmax = int(g)
	}
	// pmf(k) for K ~ Binomial(g, 1/ng) by the stable recurrence
	// pmf(k+1) = pmf(k)·(g-k)/((k+1)(ng-1)) from pmf(0) = (1-1/ng)^g.
	var overS, overW float64
	for k := 0; k < kmax; k++ {
		pmf *= (g - float64(k)) / (float64(k+1) * (ng - 1))
		// now pmf = P(K = k+1)
		if d := float64(k+1) - s; d > 0 {
			overS += pmf * d
		}
		if d := float64(k+1) - w; d > 0 {
			overW += pmf * d
		}
	}
	return clamp01(((ng-1)*overS + overW) / g)
}

// ClosedSlots is the exact closed form of the grouped model: the
// complementary (below-width) sums have at most ⌈s⌉ terms, so no
// truncation is needed, and binomial underflow at extreme saturation
// degrades gracefully (the below-width mass is genuinely ~0 there).
// s ≤ 1 delegates to the paper's Closed.
func ClosedSlots(g, b, s float64) float64 {
	if g <= 0 || b <= 0 {
		return 0
	}
	if s <= 1 {
		return Closed(g, b)
	}
	ng := math.Ceil(b / s)
	if ng <= 1 {
		return clamp01(1 - b/g)
	}
	w := b - (ng-1)*s
	mu := g / ng
	// E[(K-c)⁺] = μ - c + E[(c-K)⁺] for each width c ∈ {s, w}.
	pmf := math.Exp(g * math.Log1p(-1/ng))
	var underS, underW float64
	for k := 0; float64(k) < s; k++ {
		if d := s - float64(k); d > 0 {
			underS += pmf * d
		}
		if d := w - float64(k); d > 0 {
			underW += pmf * d
		}
		pmf *= (g - float64(k)) / (float64(k+1) * (ng - 1))
	}
	x := ((ng-1)*(mu-s+underS) + (mu - w + underW)) / g
	return clamp01(x)
}

// curveRefBucketsSlots is the reference b for tabulating grouped curves:
// a multiple of TableSlots, so the tabulated curve captures the pure
// r = g/b dependence without a partial-group term (which depends on
// b mod s, not on r, and belongs to per-table evaluation).
const curveRefBucketsSlots = 1024

// NewCurveSlots tabulates the grouped precise model at the reference
// table size and fits the same six-interval quadratic regression as
// NewCurve. The returned curve's Rate/RateGB take the same r = g/b
// (slots, not groups), so it drops in wherever the s = 1 curve is used.
func NewCurveSlots(s float64) *Curve {
	c := &Curve{slots: s}
	for r := 0.01; r <= 50.0005; r += 0.01 {
		c.rs = append(c.rs, r)
		c.xs = append(c.xs, PreciseSlots(r*curveRefBucketsSlots, curveRefBucketsSlots, s))
	}
	for i := 0; i+1 < len(curveBreaks); i++ {
		lo, hi := curveBreaks[i], curveBreaks[i+1]
		a, b2, c2 := c.fitQuadratic(lo, hi)
		c.intervals = append(c.intervals, interval{lo: lo, hi: hi, a: a, b: b2, c: c2})
	}
	return c
}

var (
	groupCurveOnce sync.Once
	groupCurve     *Curve
)

// DefaultGroupCurve is the shared fitted curve for the tables' actual
// TableSlots geometry, built on first use (construction tabulates the
// binomial model and costs a few milliseconds).
func DefaultGroupCurve() *Curve {
	groupCurveOnce.Do(func() { groupCurve = NewCurveSlots(TableSlots) })
	return groupCurve
}

// GroupRate is the grouped-geometry counterpart of Rate: the fitted
// TableSlots curve at g/b.
func GroupRate(g, b float64) float64 {
	return DefaultGroupCurve().RateGB(g, b)
}
