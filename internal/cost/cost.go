// Package cost implements the paper's cost model (Section 3.2): the
// per-record intra-epoch maintenance cost of a configuration (Equation 7)
// and the end-of-epoch update cost (Equation 8), both parameterized by the
// probe cost c1, the eviction cost c2 (c2/c1 ≈ 50 in Gigascope), a
// collision-rate estimator, and optional per-relation flow lengths for
// clustered streams.
package cost

import (
	"fmt"
	"math"

	"repro/internal/attr"
	"repro/internal/collision"
	"repro/internal/feedgraph"
)

// Params are the cost-model constants and estimators.
type Params struct {
	C1 float64 // cost of one hash-table probe/update in the LFTA
	C2 float64 // cost of one eviction to the HFTA (c2 >> c1)

	// Rate estimates the collision rate of a table with g groups and b
	// buckets under random (non-clustered) arrivals. Nil means the fitted
	// precise-model curve (collision.Rate).
	Rate func(g, b float64) float64

	// FlowLen returns the average flow length l_a observed by relation R
	// (Section 4.3); the random-arrival rate divides by it. It is applied
	// to raw relations only — clusteredness is a property of the arrival
	// stream, and the eviction streams feeding lower tables are
	// de-clustered. Nil means 1 everywhere (random data).
	FlowLen func(rel attr.Set) float64
}

// DefaultParams returns the paper's experimental setting: c1 = 1,
// c2 = 50, precise-model rate curve, random data.
func DefaultParams() Params {
	return Params{C1: 1, C2: 50}
}

func (p Params) rate(g, b float64) float64 {
	if p.Rate != nil {
		return p.Rate(g, b)
	}
	return collision.Rate(g, b)
}

func (p Params) flowLen(rel attr.Set) float64 {
	if p.FlowLen == nil {
		return 1
	}
	if l := p.FlowLen(rel); l > 1 {
		return l
	}
	return 1
}

// Validate rejects unusable parameters.
func (p Params) Validate() error {
	if p.C1 <= 0 || p.C2 <= 0 {
		return fmt.Errorf("cost: c1 and c2 must be positive (got %v, %v)", p.C1, p.C2)
	}
	if p.C2 < p.C1 {
		return fmt.Errorf("cost: c2 (%v) should not be below c1 (%v)", p.C2, p.C1)
	}
	return nil
}

// Alloc assigns a bucket count b_R to every instantiated relation.
type Alloc map[attr.Set]int

// Buckets returns b_R or an error if the relation has no allocation.
func (a Alloc) Buckets(r attr.Set) (int, error) {
	b, ok := a[r]
	if !ok {
		return 0, fmt.Errorf("cost: no allocation for %v", r)
	}
	if b <= 0 {
		return 0, fmt.Errorf("cost: allocation for %v is %d buckets", r, b)
	}
	return b, nil
}

// SpaceUnits returns the total space the allocation occupies, in the
// paper's 4-byte units: Σ b_R · h_R.
func (a Alloc) SpaceUnits() int {
	total := 0
	for r, b := range a {
		total += b * feedgraph.EntrySize(r)
	}
	return total
}

// Clone returns a copy of the allocation.
func (a Alloc) Clone() Alloc {
	out := make(Alloc, len(a))
	for r, b := range a {
		out[r] = b
	}
	return out
}

// Rates computes the modeled collision rate x_R of every relation in the
// configuration under the allocation: the random-data rate at (g_R, b_R),
// divided by the flow length for raw relations (Equation 15).
func Rates(cfg *feedgraph.Config, groups feedgraph.GroupCounts, alloc Alloc, p Params) (map[attr.Set]float64, error) {
	out := make(map[attr.Set]float64, len(cfg.Rels))
	for _, r := range cfg.Rels {
		g, err := groups.Get(r)
		if err != nil {
			return nil, err
		}
		b, err := alloc.Buckets(r)
		if err != nil {
			return nil, err
		}
		x := p.rate(g, float64(b))
		if cfg.IsRaw(r) {
			x = collision.Clustered(x, p.flowLen(r))
		}
		out[r] = x
	}
	return out, nil
}

// PerRecord evaluates Equation 7, the per-record intra-epoch cost:
//
//	e_m = Σ_{R∈I} (Π_{R'∈A_R} x_{R'}) c1 + Σ_{R∈L} (Π_{R'∈A_R} x_{R'}) x_R c2
//
// Raw relations have an empty ancestor product (= 1): every arriving
// record probes each raw table; a table below is probed once per collision
// in its parent; and a collision in a leaf evicts to the HFTA.
//
// One generalization over the paper's formula: the c2 term is charged for
// *query* relations rather than leaves. In every paper configuration the
// two coincide (leaves are always queries), but a query may also be
// interior (e.g. query AB feeding query A), in which case its collision
// victims both probe its children and transfer to the HFTA; conversely a
// childless phantom's victims are simply dropped, costing nothing.
func PerRecord(cfg *feedgraph.Config, groups feedgraph.GroupCounts, alloc Alloc, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	rates, err := Rates(cfg, groups, alloc, p)
	if err != nil {
		return 0, err
	}
	return perRecordWithRates(cfg, rates, p), nil
}

func perRecordWithRates(cfg *feedgraph.Config, rates map[attr.Set]float64, p Params) float64 {
	e := 0.0
	for _, r := range cfg.Rels {
		feed := 1.0 // Π over ancestors of the collision rates
		for _, a := range cfg.Ancestors(r) {
			feed *= rates[a]
		}
		e += feed * p.C1
		if cfg.IsQuery(r) {
			e += feed * rates[r] * p.C2
		}
	}
	return e
}

// PerRecordWithRates evaluates Equation 7 from precomputed collision
// rates; used by optimizers that perturb rates without re-estimating.
func PerRecordWithRates(cfg *feedgraph.Config, rates map[attr.Set]float64, p Params) float64 {
	return perRecordWithRates(cfg, rates, p)
}

// Occupancy returns the expected number of occupied buckets of a table
// with g groups and b buckets after an epoch long enough for every group
// to appear: b·(1 - (1-1/b)^g), ≈ g when g ≪ b and ≈ b when g ≫ b.
func Occupancy(g, b float64) float64 {
	if g <= 0 || b <= 0 {
		return 0
	}
	return b * (1 - math.Exp(g*math.Log1p(-1/b)))
}

// EndOfEpoch evaluates Equation 8, the end-of-epoch update cost E_u: the
// hash tables are scanned top-down; every entry of every table propagates
// into the tables below it (c1 per arrival into a non-raw table), items
// pass through an intermediate table toward a lower one only via a
// collision there, and every item reaching a leaf is eventually evicted to
// the HFTA (c2 each), together with the leaf's own resident entries.
//
// The extracted formula in the paper is garbled; this reconstruction
// (documented in DESIGN.md §6) uses
//
//	U_R   = Σ_{R'∈A_R} occ(R') · Π_{R'' strictly between R' and R} x_{R''}
//	E_u   = Σ_{R∉W} U_R·c1 + Σ_{R∈L} (occ(R) + U_R)·c2
//
// with occ(R) the expected occupied entries of R's table (the paper's M_R,
// refined so nearly-empty tables do not overcharge).
func EndOfEpoch(cfg *feedgraph.Config, groups feedgraph.GroupCounts, alloc Alloc, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	rates, err := Rates(cfg, groups, alloc, p)
	if err != nil {
		return 0, err
	}
	occ := make(map[attr.Set]float64, len(cfg.Rels))
	for _, r := range cfg.Rels {
		g, _ := groups.Get(r)
		b, _ := alloc.Buckets(r)
		occ[r] = Occupancy(g, float64(b))
	}

	total := 0.0
	for _, r := range cfg.Rels {
		anc := cfg.Ancestors(r) // direct parent first, raw last
		u := 0.0
		pass := 1.0
		for _, a := range anc {
			u += occ[a] * pass
			pass *= rates[a] // items passing *through* a toward r collide there
		}
		if !cfg.IsRaw(r) {
			total += u * p.C1
		}
		if cfg.IsQuery(r) {
			total += (occ[r] + u) * p.C2
		}
	}
	return total, nil
}

// Breakdown reports the contribution of each relation to the per-record
// cost, for diagnostics and the phantom-choosing trace of Figure 12.
type Breakdown struct {
	Rel       attr.Set
	FeedRate  float64 // Π of ancestor collision rates (records per input record)
	Rate      float64 // x_R
	ProbeCost float64 // feed · c1
	EvictCost float64 // feed · x_R · c2 if leaf
}

// Explain returns per-relation cost contributions under the allocation.
func Explain(cfg *feedgraph.Config, groups feedgraph.GroupCounts, alloc Alloc, p Params) ([]Breakdown, error) {
	rates, err := Rates(cfg, groups, alloc, p)
	if err != nil {
		return nil, err
	}
	var out []Breakdown
	for _, r := range cfg.Rels {
		feed := 1.0
		for _, a := range cfg.Ancestors(r) {
			feed *= rates[a]
		}
		b := Breakdown{Rel: r, FeedRate: feed, Rate: rates[r], ProbeCost: feed * p.C1}
		if cfg.IsQuery(r) {
			b.EvictCost = feed * rates[r] * p.C2
		}
		out = append(out, b)
	}
	return out, nil
}
