package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/feedgraph"
)

func sets(names ...string) []attr.Set {
	out := make([]attr.Set, len(names))
	for i, n := range names {
		out[i] = attr.MustParseSet(n)
	}
	return out
}

func groupsOf(m map[string]float64) feedgraph.GroupCounts {
	gc := feedgraph.GroupCounts{}
	for k, v := range m {
		gc[attr.MustParseSet(k)] = v
	}
	return gc
}

func allocOf(m map[string]int) Alloc {
	a := Alloc{}
	for k, v := range m {
		a[attr.MustParseSet(k)] = v
	}
	return a
}

// fixedRate returns a Params whose collision model is a lookup table of
// rates per g value, so tests control x_R exactly.
func fixedRateParams(c1, c2 float64, rateByG map[float64]float64) Params {
	return Params{C1: c1, C2: c2, Rate: func(g, b float64) float64 {
		x, ok := rateByG[g]
		if !ok {
			panic("unexpected g in test rate function")
		}
		return x
	}}
}

// TestSection25Example reproduces the motivating cost comparison of
// Section 2.5: queries A, B, C with and without phantom ABC.
//
//	E1/n = 3·c1 + 3·x1'·c2          (no phantom, Equation 1)
//	E2/n = c1 + 3·x2·c1 + 3·x1·x2·c2 (with phantom, Equation 2)
func TestSection25Example(t *testing.T) {
	const (
		c1, c2 = 1.0, 50.0
		x1p    = 0.10 // collision rate of A, B, C without the phantom
		x1     = 0.15 // with the phantom (smaller tables → higher rate)
		x2     = 0.05 // rate of the phantom ABC
	)
	queries := sets("A", "B", "C")
	groups := groupsOf(map[string]float64{"A": 100, "B": 200, "C": 300, "ABC": 1000})

	// Without phantom: distinguish the two x1 values via table size, so
	// encode rates keyed by g and give A, B, C the "without" rate first.
	noPhantom, err := feedgraph.NewConfig(queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := fixedRateParams(c1, c2, map[float64]float64{100: x1p, 200: x1p, 300: x1p, 1000: x2})
	alloc := allocOf(map[string]int{"A": 10, "B": 10, "C": 10, "ABC": 10})
	e1, err := PerRecord(noPhantom, groups, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	wantE1 := 3*c1 + 3*x1p*c2
	if math.Abs(e1-wantE1) > 1e-12 {
		t.Errorf("E1 = %v; want %v", e1, wantE1)
	}

	withPhantom, err := feedgraph.NewConfig(queries, sets("ABC"))
	if err != nil {
		t.Fatal(err)
	}
	p2 := fixedRateParams(c1, c2, map[float64]float64{100: x1, 200: x1, 300: x1, 1000: x2})
	e2, err := PerRecord(withPhantom, groups, alloc, p2)
	if err != nil {
		t.Fatal(err)
	}
	wantE2 := c1 + 3*x2*c1 + 3*x1*x2*c2
	if math.Abs(e2-wantE2) > 1e-12 {
		t.Errorf("E2 = %v; want %v", e2, wantE2)
	}
	// With these rates the phantom is beneficial (Equation 3 positive).
	if e2 >= e1 {
		t.Errorf("phantom not beneficial: E1=%v E2=%v", e1, e2)
	}
}

// TestThreeLevelFeedProducts checks the ancestor products of Equation 7 on
// the three-level configuration ABCD(AB BCD(BC BD CD)).
func TestThreeLevelFeedProducts(t *testing.T) {
	queries := sets("AB", "BC", "BD", "CD")
	cfg, err := feedgraph.NewConfig(queries, sets("ABCD", "BCD"))
	if err != nil {
		t.Fatal(err)
	}
	groups := groupsOf(map[string]float64{
		"AB": 10, "BC": 20, "BD": 30, "CD": 40, "BCD": 50, "ABCD": 60,
	})
	const (
		xTop = 0.2  // ABCD
		xMid = 0.1  // BCD
		xLf  = 0.05 // all leaves
	)
	p := fixedRateParams(1, 50, map[float64]float64{
		10: xLf, 20: xLf, 30: xLf, 40: xLf, 50: xMid, 60: xTop,
	})
	alloc := allocOf(map[string]int{"AB": 1, "BC": 1, "BD": 1, "CD": 1, "BCD": 1, "ABCD": 1})
	got, err := PerRecord(cfg, groups, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	// Probes: ABCD 1; AB, BCD at xTop each; BC, BD, CD at xTop·xMid each.
	probe := 1 + 2*xTop + 3*xTop*xMid
	// Evictions: leaf AB at xTop·xLf; leaves BC, BD, CD at xTop·xMid·xLf.
	evict := (xTop*xLf + 3*xTop*xMid*xLf) * 50
	want := probe + evict
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PerRecord = %v; want %v", got, want)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{C1: 0, C2: 50}).Validate(); err == nil {
		t.Error("c1=0 accepted")
	}
	if err := (Params{C1: 2, C2: 1}).Validate(); err == nil {
		t.Error("c2 < c1 accepted")
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Error(err)
	}
}

func TestAllocHelpers(t *testing.T) {
	a := allocOf(map[string]int{"A": 100, "ABCD": 10})
	// Space: A has h=2, ABCD h=5 → 100·2 + 10·5 = 250.
	if got := a.SpaceUnits(); got != 250 {
		t.Errorf("SpaceUnits = %d; want 250", got)
	}
	if _, err := a.Buckets(attr.MustParseSet("Z")); err == nil {
		t.Error("missing relation accepted")
	}
	a[attr.MustParseSet("B")] = 0
	if _, err := a.Buckets(attr.MustParseSet("B")); err == nil {
		t.Error("zero buckets accepted")
	}
	c := a.Clone()
	c[attr.MustParseSet("A")] = 7
	if a[attr.MustParseSet("A")] != 100 {
		t.Error("Clone aliased the original")
	}
}

func TestPerRecordMissingInputs(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("A"), nil)
	p := DefaultParams()
	if _, err := PerRecord(cfg, feedgraph.GroupCounts{}, allocOf(map[string]int{"A": 1}), p); err == nil {
		t.Error("missing group count accepted")
	}
	if _, err := PerRecord(cfg, groupsOf(map[string]float64{"A": 10}), Alloc{}, p); err == nil {
		t.Error("missing allocation accepted")
	}
}

func TestFlowLengthReducesCost(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("A", "B"), nil)
	groups := groupsOf(map[string]float64{"A": 1000, "B": 1000})
	alloc := allocOf(map[string]int{"A": 500, "B": 500})
	p := DefaultParams()
	base, err := PerRecord(cfg, groups, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	p.FlowLen = func(attr.Set) float64 { return 20 }
	clustered, err := PerRecord(cfg, groups, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	if clustered >= base {
		t.Errorf("clustered cost %v not below random cost %v", clustered, base)
	}
	// Probe cost floor: 2·c1 regardless of collisions.
	if clustered < 2 {
		t.Errorf("cost %v below the probe floor", clustered)
	}
}

func TestOccupancy(t *testing.T) {
	if got := Occupancy(10, 1e9); math.Abs(got-10) > 0.01 {
		t.Errorf("g≪b occupancy = %v; want ≈ g", got)
	}
	if got := Occupancy(1e9, 1000); math.Abs(got-1000) > 0.01 {
		t.Errorf("g≫b occupancy = %v; want ≈ b", got)
	}
	if Occupancy(0, 10) != 0 || Occupancy(10, 0) != 0 {
		t.Error("degenerate occupancy not 0")
	}
}

// TestEndOfEpochTwoLevel hand-computes E_u for AB(A B).
func TestEndOfEpochTwoLevel(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("A", "B"), sets("AB"))
	groups := groupsOf(map[string]float64{"A": 1e9, "B": 1e9, "AB": 1e9})
	// Huge g ⇒ occupancy = b for every table.
	alloc := allocOf(map[string]int{"A": 100, "B": 200, "AB": 400})
	const xA, xB, xAB = 0.05, 0.10, 0.3
	p := Params{C1: 1, C2: 50, Rate: func(g, b float64) float64 {
		switch b {
		case 100:
			return xA
		case 200:
			return xB
		default:
			return xAB
		}
	}}
	got, err := EndOfEpoch(cfg, groups, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	// Flush: AB's 400 entries probe A and B (U_A = U_B = 400): 800·c1.
	// Leaves evict occupancy + everything fed: (100+400)·c2 + (200+400)·c2.
	want := 800*1.0 + (100+400)*50.0 + (200+400)*50.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("EndOfEpoch = %v; want %v", got, want)
	}
}

// TestEndOfEpochThreeLevelPassThrough: items from the raw table reach the
// bottom only via collisions in the middle table.
func TestEndOfEpochThreeLevel(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("A", "AB"), sets("ABC"))
	// Chain: ABC feeds AB feeds A.
	groups := groupsOf(map[string]float64{"A": 1e9, "AB": 1e9, "ABC": 1e9})
	alloc := allocOf(map[string]int{"A": 10, "AB": 20, "ABC": 40})
	const xAB = 0.25
	p := Params{C1: 1, C2: 50, Rate: func(g, b float64) float64 {
		if b == 20 {
			return xAB
		}
		return 0.5
	}}
	got, err := EndOfEpoch(cfg, groups, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	// U_AB = occ(ABC) = 40 → 40·c1.
	// U_A  = occ(AB) + occ(ABC)·x_AB = 20 + 40·0.25 = 30 → 30·c1.
	// Leaf query A evicts occ(A) + U_A = 10 + 30 = 40 → 40·c2.
	// Interior query AB also evicts occ(AB) + U_AB = 60 → 60·c2.
	want := 40*1.0 + 30*1.0 + 40*50.0 + 60*50.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("EndOfEpoch = %v; want %v", got, want)
	}
}

// Property: adding buckets to any single table never increases the
// per-record cost (the rate curve is monotone in b).
func TestMoreSpaceNeverHurtsProperty(t *testing.T) {
	queries := sets("AB", "BC")
	cfg, err := feedgraph.NewConfig(queries, sets("ABC"))
	if err != nil {
		t.Fatal(err)
	}
	groups := groupsOf(map[string]float64{"AB": 800, "BC": 700, "ABC": 2000})
	p := DefaultParams()
	f := func(bA, bB, bP uint16, which uint8) bool {
		alloc := allocOf(map[string]int{
			"AB":  int(bA%2000) + 10,
			"BC":  int(bB%2000) + 10,
			"ABC": int(bP%2000) + 10,
		})
		before, err := PerRecord(cfg, groups, alloc, p)
		if err != nil {
			return false
		}
		bigger := alloc.Clone()
		rels := cfg.Rels
		r := rels[int(which)%len(rels)]
		bigger[r] += 500
		after, err := PerRecord(cfg, groups, bigger, p)
		if err != nil {
			return false
		}
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Equation 7 decomposes as Explain's parts sum to PerRecord.
func TestExplainSumsToPerRecord(t *testing.T) {
	cfg, _ := feedgraph.NewConfig(sets("AB", "BC", "BD", "CD"), sets("ABCD", "BCD"))
	groups := groupsOf(map[string]float64{
		"AB": 500, "BC": 600, "BD": 700, "CD": 800, "BCD": 1500, "ABCD": 2800,
	})
	alloc := allocOf(map[string]int{
		"AB": 300, "BC": 300, "BD": 300, "CD": 300, "BCD": 900, "ABCD": 2000,
	})
	p := DefaultParams()
	total, err := PerRecord(cfg, groups, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Explain(cfg, groups, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, b := range parts {
		sum += b.ProbeCost + b.EvictCost
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("Explain sums to %v; PerRecord = %v", sum, total)
	}
	// Raw relation has feed rate exactly 1.
	for _, b := range parts {
		if cfg.IsRaw(b.Rel) && b.FeedRate != 1 {
			t.Errorf("raw %v feed rate %v", b.Rel, b.FeedRate)
		}
	}
}
