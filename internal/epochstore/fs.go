package epochstore

import (
	"io"
	iofs "io/fs"
	"os"
)

// FS is the slice of the filesystem the store runs on. Every byte the
// store reads or writes goes through this interface, so the recovery path
// can be driven against simulated power cuts (see FaultFS) instead of
// only the happy path the OS gives a test.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the given flags.
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (same directory).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm iofs.FileMode) error
	// ReadDir lists the file names in a directory, sorted.
	ReadDir(dir string) ([]string, error)
	// Size returns a file's length in bytes.
	Size(name string) (int64, error)
}

// File is the handle shape the store needs: append-only writes, random
// reads, durability, and tail truncation for torn-write repair.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// OSFS is the production FS: plain os calls.
type OSFS struct{}

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm iofs.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil // os.ReadDir sorts by name
}

// Size implements FS.
func (OSFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
