package epochstore

import (
	"errors"
	iofs "io/fs"
	"sync"
)

// Injected fault errors. ErrInjected marks a transient fault (the
// operation failed but the store may retry); ErrCrashed marks the
// simulated power cut, after which every operation on the FaultFS fails —
// recovery is exercised by reopening the directory on a fresh FS.
var (
	ErrInjected = errors.New("epochstore: injected I/O fault")
	ErrCrashed  = errors.New("epochstore: simulated crash")
)

// Faults configure a FaultFS. Every fault is deterministic: the Nth
// matching operation fails, and short-write lengths draw from a splitmix
// stream seeded by Seed — the same configuration always injects the same
// faults, so chaos runs replay identically.
type Faults struct {
	Seed uint64

	WriteErrEvery   int // every Nth Write fails outright (no bytes written)
	ShortWriteEvery int // every Nth Write persists only a seeded prefix
	SyncErrEvery    int // every Nth Sync fails (data written, durability unknown)
	RenameErrEvery  int // every Nth Rename fails (no rename performed)
	OpenErrEvery    int // every Nth OpenFile fails

	// CrashAfterBytes simulates a power cut: once the cumulative bytes
	// written through this FS reach the cut point, the write in flight
	// persists only up to the cut and every later operation returns
	// ErrCrashed. 0 disables. Bytes written before the cut remain on the
	// inner FS, so reopening the directory with a clean FS models the
	// post-crash restart.
	CrashAfterBytes int64

	// BlockWrites, when non-nil, makes every Write first receive from the
	// channel — a gate tests use to hold the persister mid-flight and
	// observe bounded-queue degradation.
	BlockWrites chan struct{}
}

// FaultFS wraps an FS with seeded fault injection. Safe for concurrent
// use; one mutex orders the fault counters so "every Nth" is exact even
// under concurrency.
type FaultFS struct {
	inner  FS
	faults Faults

	mu      sync.Mutex
	writes  uint64
	syncs   uint64
	renames uint64
	opens   uint64
	written int64
	crashed bool
}

// NewFaultFS wraps inner (nil = OSFS) with the configured faults.
func NewFaultFS(inner FS, f Faults) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{inner: inner, faults: f}
}

// Crashed reports whether the simulated power cut has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// CrashNow trips the power cut immediately, regardless of CrashAfterBytes.
func (f *FaultFS) CrashNow() {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

// Written returns the cumulative bytes written through this FS — the
// coordinate system CrashAfterBytes cut points are expressed in.
func (f *FaultFS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

func every(n int, count uint64) bool { return n > 0 && count%uint64(n) == 0 }

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	f.opens++
	fail := every(f.faults.OpenErrEvery, f.opens)
	f.mu.Unlock()
	if fail {
		return nil, ErrInjected
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.renames++
	fail := every(f.faults.RenameErrEvery, f.renames)
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.inner.Remove(name)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string, perm iofs.FileMode) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path, perm)
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(dir)
}

// Size implements FS.
func (f *FaultFS) Size(name string) (int64, error) {
	if f.Crashed() {
		return 0, ErrCrashed
	}
	return f.inner.Size(name)
}

// faultFile applies the parent's write/sync faults to one handle.
type faultFile struct {
	fs    *FaultFS
	inner File
}

// Write injects write faults. The crash cut takes precedence: the prefix
// up to the cut is written through (it was in flight when the power
// died), then the FS enters the crashed state.
func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	if f.faults.BlockWrites != nil {
		<-f.faults.BlockWrites
	}
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	f.writes++
	n := f.writes
	allow := len(p)
	crashing := false
	if cut := f.faults.CrashAfterBytes; cut > 0 && f.written+int64(len(p)) >= cut {
		allow = int(cut - f.written)
		if allow < 0 {
			allow = 0
		}
		crashing = true
		f.crashed = true
	}
	var injected error
	if !crashing {
		switch {
		case every(f.faults.WriteErrEvery, n):
			allow, injected = 0, ErrInjected
		case every(f.faults.ShortWriteEvery, n) && len(p) > 0:
			// A seeded strict prefix: [0, len(p)-1] bytes reach the disk.
			allow = int(mix64(f.faults.Seed^n) % uint64(len(p)))
			injected = ErrInjected
		}
	}
	f.mu.Unlock()

	wrote := 0
	var werr error
	if allow > 0 {
		wrote, werr = ff.inner.Write(p[:allow])
	}
	f.mu.Lock()
	f.written += int64(wrote)
	f.mu.Unlock()
	switch {
	case werr != nil:
		return wrote, werr
	case crashing:
		return wrote, ErrCrashed
	case injected != nil:
		return wrote, injected
	default:
		return wrote, nil
	}
}

// ReadAt implements File.
func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if ff.fs.Crashed() {
		return 0, ErrCrashed
	}
	return ff.inner.ReadAt(p, off)
}

// Sync implements File.
func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.syncs++
	fail := every(f.faults.SyncErrEvery, f.syncs)
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return ff.inner.Sync()
}

// Truncate implements File.
func (ff *faultFile) Truncate(size int64) error {
	if ff.fs.Crashed() {
		return ErrCrashed
	}
	return ff.inner.Truncate(size)
}

// Close implements File. Close succeeds even after a crash so tests can
// release OS handles; the data outcome is already decided.
func (ff *faultFile) Close() error { return ff.inner.Close() }

// mix64 is one splitmix64 round (the repo's standard seeded mixer).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
