package epochstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/attr"
)

// testRecords builds deterministic records for epochs [1, epochs] over
// two relations, with contents derived from (epoch, rel) so any mixup
// between records is caught by content comparison.
func testRecords(epochs int) [][]Record {
	rels := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("C")}
	var out [][]Record
	for e := 1; e <= epochs; e++ {
		var recs []Record
		for ri, rel := range rels {
			n := (e+ri)%4 + 1
			rows := make([]Row, n)
			for i := range rows {
				key := make([]uint32, rel.Size())
				for j := range key {
					key[j] = uint32(e*100 + ri*10 + i + j)
				}
				rows[i] = Row{
					Key:  key,
					Aggs: []int64{int64(e * 1000), int64(-i), int64(ri)},
				}
			}
			recs = append(recs, Record{
				Epoch: uint32(e), Rel: rel, Rows: rows,
				Offered: uint64(e * 10), Processed: uint64(e*10 - 3),
				Dropped: 2, Late: 1,
			})
		}
		out = append(out, recs)
	}
	return out
}

// contents flattens a store into comparable records via Scan.
func contents(t *testing.T, s *Store) []Record {
	t.Helper()
	var out []Record
	if err := s.Scan(func(r *Record) error { out = append(out, *r); return nil }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return out
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir() + "/store"
	s := mustOpen(t, dir, Options{})
	epochs := testRecords(5)
	var want []Record
	for _, recs := range epochs {
		if err := s.AppendEpoch(recs); err != nil {
			t.Fatalf("AppendEpoch: %v", err)
		}
		want = append(want, recs...)
	}
	if got := s.Len(); got != len(want) {
		t.Fatalf("Len = %d, want %d", got, len(want))
	}
	for _, w := range want {
		if !s.Has(w.Epoch, w.Rel) {
			t.Fatalf("Has(%d, %v) = false", w.Epoch, w.Rel)
		}
		r, err := s.Read(w.Epoch, w.Rel)
		if err != nil {
			t.Fatalf("Read(%d, %v): %v", w.Epoch, w.Rel, err)
		}
		if !reflect.DeepEqual(*r, w) {
			t.Fatalf("Read(%d, %v) = %+v, want %+v", w.Epoch, w.Rel, *r, w)
		}
	}
	if last, ok := s.LastEpoch(); !ok || last != 5 {
		t.Fatalf("LastEpoch = %d, %v; want 5, true", last, ok)
	}
	if got := s.Epochs(); !reflect.DeepEqual(got, []uint32{1, 2, 3, 4, 5}) {
		t.Fatalf("Epochs = %v", got)
	}
	if rels := s.Relations(3); len(rels) != 2 {
		t.Fatalf("Relations(3) = %v, want 2 relations", rels)
	}
	if s.Has(99, attr.MustParseSet("AB")) {
		t.Fatal("Has(99) = true for an unpersisted epoch")
	}
	if _, err := s.Read(99, attr.MustParseSet("AB")); err == nil {
		t.Fatal("Read(99) succeeded for an unpersisted epoch")
	}
}

func TestReopenPreservesContents(t *testing.T) {
	dir := t.TempDir() + "/store"
	s := mustOpen(t, dir, Options{})
	epochs := testRecords(4)
	for _, recs := range epochs[:3] {
		if err := s.AppendEpoch(recs); err != nil {
			t.Fatal(err)
		}
	}
	before := contents(t, s)
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	if rec := s2.Recovery(); rec.Dirty() {
		t.Fatalf("clean reopen reported recovery %+v", rec)
	}
	if got := contents(t, s2); !reflect.DeepEqual(got, before) {
		t.Fatalf("reopen changed contents:\n got %+v\nwant %+v", got, before)
	}
	// The store keeps accepting appends after reopen.
	if err := s2.AppendEpoch(epochs[3]); err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != len(before)+2 {
		t.Fatalf("Len after reopen-append = %d, want %d", got, len(before)+2)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir() + "/store"
	s := mustOpen(t, dir, Options{SegmentBytes: 256})
	epochs := testRecords(20)
	var want []Record
	for _, recs := range epochs {
		if err := s.AppendEpoch(recs); err != nil {
			t.Fatal(err)
		}
		want = append(want, recs...)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == segSuffix {
			segs++
		}
	}
	if segs < 3 {
		t.Fatalf("got %d segments at SegmentBytes=256, want rotation (>= 3)", segs)
	}
	if got := contents(t, s); !reflect.DeepEqual(got, want) {
		t.Fatal("rotated store contents diverge from appended records")
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{SegmentBytes: 256})
	if got := contents(t, s2); !reflect.DeepEqual(got, want) {
		t.Fatal("reopened rotated store contents diverge")
	}
}

func TestAppendIsIdempotent(t *testing.T) {
	dir := t.TempDir() + "/store"
	s := mustOpen(t, dir, Options{})
	recs := testRecords(1)[0]
	for i := 0; i < 3; i++ {
		if err := s.AppendEpoch(recs); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Len(); got != len(recs) {
		t.Fatalf("Len after re-appends = %d, want %d", got, len(recs))
	}
	size1, err := OSFS{}.Size(s.segName(s.activeID))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEpoch(recs); err != nil {
		t.Fatal(err)
	}
	size2, _ := OSFS{}.Size(s.segName(s.activeID))
	if size2 != size1 {
		t.Fatalf("duplicate append grew the segment: %d -> %d bytes", size1, size2)
	}
}

func TestManifestCorruptionFallsBackToDirScan(t *testing.T) {
	dir := t.TempDir() + "/store"
	s := mustOpen(t, dir, Options{SegmentBytes: 256})
	epochs := testRecords(12)
	var want []Record
	for _, recs := range epochs {
		if err := s.AppendEpoch(recs); err != nil {
			t.Fatal(err)
		}
		want = append(want, recs...)
	}
	s.Close()

	for name, mutate := range map[string]func(string) error{
		"truncated": func(p string) error { return os.Truncate(p, 3) },
		"flipped": func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			b[len(b)-1] ^= 0xff
			return os.WriteFile(p, b, 0o644)
		},
		"missing": os.Remove,
	} {
		t.Run(name, func(t *testing.T) {
			if err := mutate(dir + "/" + manifestName); err != nil {
				t.Fatal(err)
			}
			s2 := mustOpen(t, dir, Options{SegmentBytes: 256})
			if !s2.Recovery().ManifestRebuilt {
				t.Fatal("recovery did not report a manifest rebuild")
			}
			if got := contents(t, s2); !reflect.DeepEqual(got, want) {
				t.Fatal("contents diverge after manifest rebuild")
			}
			s2.Close()
		})
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir() + "/store"
	s := mustOpen(t, dir, Options{})
	epochs := testRecords(3)
	var want []Record
	for _, recs := range epochs {
		if err := s.AppendEpoch(recs); err != nil {
			t.Fatal(err)
		}
		want = append(want, recs...)
	}
	seg := s.segName(s.activeID)
	s.Close()

	// Simulate a torn append: garbage bytes past the last committed frame.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, Options{})
	if tb := s2.Recovery().TruncatedBytes; tb != 6 {
		t.Fatalf("TruncatedBytes = %d, want 6", tb)
	}
	if got := contents(t, s2); !reflect.DeepEqual(got, want) {
		t.Fatal("contents diverge after torn-tail truncation")
	}
	// The repaired store accepts new appends and survives a clean reopen.
	extra := testRecords(4)[3]
	if err := s2.AppendEpoch(extra); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, dir, Options{})
	if rec := s3.Recovery(); rec.Dirty() {
		t.Fatalf("reopen after repair still dirty: %+v", rec)
	}
	if got := s3.Len(); got != len(want)+len(extra) {
		t.Fatalf("Len = %d, want %d", got, len(want)+len(extra))
	}
}

func TestMidLogCorruptionDropsSuffix(t *testing.T) {
	dir := t.TempDir() + "/store"
	s := mustOpen(t, dir, Options{SegmentBytes: 200})
	epochs := testRecords(15)
	for _, recs := range epochs {
		if err := s.AppendEpoch(recs); err != nil {
			t.Fatal(err)
		}
	}
	all := contents(t, s)
	if len(s.segs) < 3 {
		t.Fatalf("need >= 3 segments for this test, got %d", len(s.segs))
	}
	victim := s.segName(s.segs[1])
	s.Close()

	// Flip a payload byte mid-log: everything from that frame on must go.
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[segHeaderSize+frameHeaderSize+2] ^= 0xff
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{SegmentBytes: 200})
	rec := s2.Recovery()
	if rec.TruncatedBytes == 0 || rec.DroppedSegments == 0 {
		t.Fatalf("recovery = %+v, want truncation and dropped segments", rec)
	}
	got := contents(t, s2)
	if len(got) == 0 || len(got) >= len(all) {
		t.Fatalf("recovered %d records, want a proper nonempty prefix of %d", len(got), len(all))
	}
	if !reflect.DeepEqual(got, all[:len(got)]) {
		t.Fatal("recovered records are not a prefix of the original log")
	}
	// And the store still appends: re-adding everything restores the log.
	for _, recs := range epochs {
		if err := s2.AppendEpoch(recs); err != nil {
			t.Fatal(err)
		}
	}
	if got := contents(t, s2); !reflect.DeepEqual(got, all) {
		t.Fatal("re-append after mid-log corruption did not restore contents")
	}
}

func TestEmptyRelationRecord(t *testing.T) {
	// Zero-row records (an epoch where a query saw no groups) round-trip.
	dir := t.TempDir() + "/store"
	s := mustOpen(t, dir, Options{})
	rec := Record{Epoch: 7, Rel: attr.MustParseSet("AD"), Offered: 5, Processed: 5}
	if err := s.AppendEpoch([]Record{rec}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	got, err := s2.Read(7, rec.Rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 0 || got.Offered != 5 || got.Processed != 5 {
		t.Fatalf("zero-row record round-trip = %+v", got)
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	dir := t.TempDir() + "/store"
	s := mustOpen(t, dir, Options{})
	recs := testRecords(1)[0]
	if err := s.AppendEpoch(recs); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.AppendEpoch(recs); err != ErrClosed {
		t.Fatalf("AppendEpoch after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Read(recs[0].Epoch, recs[0].Rel); err != ErrClosed {
		t.Fatalf("Read after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}
