package epochstore

import (
	"errors"
	"os"
	"reflect"
	"testing"
	"time"
)

func TestFaultFSWriteErr(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, Faults{WriteErrEvery: 2})
	f, err := ffs.OpenFile(dir+"/x", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("aa")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if n, err := f.Write([]byte("bb")); !errors.Is(err, ErrInjected) || n != 0 {
		t.Fatalf("write 2 = %d, %v; want 0, ErrInjected", n, err)
	}
	if _, err := f.Write([]byte("cc")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	size, _ := OSFS{}.Size(dir + "/x")
	if size != 4 {
		t.Fatalf("file size = %d, want 4 (failed write persisted nothing)", size)
	}
}

func TestFaultFSShortWriteDeterministic(t *testing.T) {
	sizes := func(seed uint64) []int64 {
		dir := t.TempDir()
		ffs := NewFaultFS(nil, Faults{Seed: seed, ShortWriteEvery: 1})
		var out []int64
		for i := 0; i < 4; i++ {
			f, err := ffs.OpenFile(dir+"/x", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			n, werr := f.Write(make([]byte, 100))
			if !errors.Is(werr, ErrInjected) {
				t.Fatalf("short write %d returned %v", i, werr)
			}
			if n < 0 || n >= 100 {
				t.Fatalf("short write persisted %d of 100 bytes, want a strict prefix", n)
			}
			f.Close()
			out = append(out, int64(n))
		}
		return out
	}
	a, b := sizes(7), sizes(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different short-write lengths: %v vs %v", a, b)
	}
	if c := sizes(8); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds drew identical short-write lengths: %v", a)
	}
}

func TestFaultFSCrashCut(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, Faults{CrashAfterBytes: 5})
	f, err := ffs.OpenFile(dir+"/x", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ab")); err != nil {
		t.Fatalf("pre-cut write: %v", err)
	}
	// This write straddles the cut: exactly 3 more bytes land.
	if n, err := f.Write([]byte("cdefgh")); !errors.Is(err, ErrCrashed) || n != 3 {
		t.Fatalf("straddling write = %d, %v; want 3, ErrCrashed", n, err)
	}
	if !ffs.Crashed() {
		t.Fatal("FS not crashed after the cut")
	}
	// Everything after the crash fails, on old handles and new ops alike.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync = %v", err)
	}
	if _, err := ffs.OpenFile(dir+"/y", os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v", err)
	}
	if err := ffs.Rename(dir+"/x", dir+"/y"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename = %v", err)
	}
	f.Close()
	// The surviving bytes are exactly the pre-cut prefix.
	b, err := os.ReadFile(dir + "/x")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "abcde" {
		t.Fatalf("post-crash file = %q, want %q", b, "abcde")
	}
	if ffs.Written() != 5 {
		t.Fatalf("Written = %d, want 5", ffs.Written())
	}
}

func TestFaultFSSyncAndRenameErr(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, Faults{SyncErrEvery: 1, RenameErrEvery: 1})
	f, err := ffs.OpenFile(dir+"/x", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v, want ErrInjected", err)
	}
	if err := ffs.Rename(dir+"/x", dir+"/y"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(dir + "/x"); err != nil {
		t.Fatalf("failed rename moved the file: %v", err)
	}
}

// TestStoreRetriesAfterTransientFaults drives AppendEpoch through a FS
// that fails every other write: each failed append must leave the store
// repairable, a bare retry must succeed, and the final contents must be
// exactly the appended records — no duplicates, no gaps, no torn frames.
func TestStoreRetriesAfterTransientFaults(t *testing.T) {
	for name, faults := range map[string]Faults{
		"write-error": {WriteErrEvery: 2},
		"short-write": {Seed: 11, ShortWriteEvery: 2},
		"sync-error":  {SyncErrEvery: 2},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir() + "/store"
			ffs := NewFaultFS(nil, faults)
			s, err := Open(dir, Options{FS: ffs})
			if err != nil {
				// Open itself may hit an injected fault; retry once — the
				// every-other cadence guarantees progress.
				s, err = Open(dir, Options{FS: ffs})
				if err != nil {
					t.Fatalf("Open under faults: %v / retry: %v", err, err)
				}
			}
			defer s.Close()
			epochs := testRecords(6)
			var want []Record
			for _, recs := range epochs {
				appended := false
				for attempt := 0; attempt < 4; attempt++ {
					if err := s.AppendEpoch(recs); err == nil {
						appended = true
						break
					} else if !errors.Is(err, ErrInjected) {
						t.Fatalf("AppendEpoch: %v", err)
					}
				}
				if !appended {
					t.Fatalf("append of epoch %d never succeeded in 4 attempts", recs[0].Epoch)
				}
				want = append(want, recs...)
			}
			if got := contents(t, s); !reflect.DeepEqual(got, want) {
				t.Fatal("contents diverge after faulty appends")
			}
			// Reopen on a clean FS: what was committed is what recovers.
			s.Close()
			s2 := mustOpen(t, dir, Options{})
			if got := contents(t, s2); !reflect.DeepEqual(got, want) {
				t.Fatal("reopened contents diverge after faulty appends")
			}
			if rec := s2.Recovery(); rec.TruncatedBytes == 0 && name == "sync-error" {
				// Sync failures leave written-but-unacknowledged bytes that
				// the in-process retry truncated already; nothing to assert.
				_ = rec
			}
		})
	}
}

func TestStoreBlockedWriteGate(t *testing.T) {
	// The BlockWrites gate holds writers until released — the hook the
	// engine tests use to observe bounded-queue degradation mid-flight.
	// Open performs exactly two writes (segment header, manifest); prefeed
	// those so only the append blocks.
	gate := make(chan struct{}, 2)
	gate <- struct{}{}
	gate <- struct{}{}
	dir := t.TempDir() + "/store"
	ffs := NewFaultFS(nil, Faults{BlockWrites: gate})
	s, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	done := make(chan error, 1)
	go func() { done <- s.AppendEpoch(testRecords(1)[0]) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("append completed without the gate: %v", err)
	default:
	}
	gate <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("gated append: %v", err)
	}
}
