// Package epochstore is an append-only, segmented on-disk store for
// finalized HFTA epochs. The paper's two-level split finalizes whole
// epochs at a clean boundary — the same property the engine's
// checkpointing exploits — and this store makes those finalized answers
// durable: each (epoch, query relation) result set is one CRC32C-framed
// record appended to a segment file, segments rotate at a size threshold,
// and a manifest names the live segments and is only ever replaced
// atomically (write-temp-then-rename).
//
// The recovery contract: opening a store after any crash — torn append,
// failed fsync, failed rotation, power cut mid-write — always yields a
// clean, duplicate-free prefix of the records that were appended. The
// scan verifies every frame's CRC; the first bad frame marks the torn
// tail, which is truncated away, and any later segments (possible only
// after manifest corruption) are dropped. All I/O goes through the FS
// interface, so the crash-point suite drives recovery against simulated
// power cuts (FaultFS), not just happy paths.
package epochstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/attr"
)

const (
	segPrefix  = "seg-"
	segSuffix  = ".mseg"
	segMagic   = "MSEG"
	segVersion = 1
	// Segment header: magic + version byte + 3 reserved bytes.
	segHeaderSize = 8

	manifestName = "MANIFEST"
	manMagic     = "MMAN"
	manVersion   = 1

	// Frame header: payload length + CRC32C of the payload.
	frameHeaderSize = 8

	// Sanity caps on untrusted length fields: corrupt frames must fail
	// cleanly, never demand gigabytes.
	maxFramePayload = 1 << 26
	maxRows         = 1 << 24
	maxSegments     = 1 << 20

	// DefaultSegmentBytes is the rotation threshold when Options leaves it
	// zero.
	DefaultSegmentBytes = 4 << 20
)

// ErrCorrupt reports a malformed record, segment, or manifest.
var ErrCorrupt = errors.New("epochstore: corrupt store")

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("epochstore: store is closed")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Row is one finalized group of a persisted epoch record.
type Row struct {
	Key  []uint32
	Aggs []int64
}

// Record is the unit of persistence: one query relation's finalized rows
// for one epoch, stamped with the epoch's degradation ledger so a
// historical reader knows exactly what the rows cover.
type Record struct {
	Epoch uint32
	Rel   attr.Set
	Rows  []Row

	// The epoch's Offered == Processed + Dropped + Late ledger (shared by
	// every relation of the epoch).
	Offered, Processed, Dropped, Late uint64
}

// Options configure Open.
type Options struct {
	// FS routes all I/O; nil = the real filesystem (OSFS).
	FS FS
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
}

// Recovery reports what Open had to repair.
type Recovery struct {
	TruncatedBytes  int64 // torn-tail bytes cut from the log
	DroppedSegments int   // segments discarded after the first corruption
	DuplicateFrames int   // re-appended frames skipped during the scan
	ManifestRebuilt bool  // manifest was missing/corrupt; rebuilt from a directory scan
}

// Dirty reports whether recovery changed anything.
func (r Recovery) Dirty() bool {
	return r.TruncatedBytes > 0 || r.DroppedSegments > 0 || r.DuplicateFrames > 0 || r.ManifestRebuilt
}

type indexKey struct {
	epoch uint32
	rel   attr.Set
}

type indexEntry struct {
	seg uint32
	off int64 // frame start (header included)
	len int64 // full frame length
}

// Store is the durable epoch store. All methods are safe for concurrent
// use; appends serialize on one mutex (the persister is the only writer,
// off the engine's hot path).
type Store struct {
	dir      string
	fs       FS
	segBytes int64

	mu       sync.Mutex
	closed   bool
	segs     []uint32 // live segment ids, ascending; the last is active
	active   File
	activeID uint32
	goodSize int64 // committed (synced, indexed) bytes of the active segment
	damaged  bool  // bytes past goodSize may be torn; repair before appending
	index    map[indexKey]indexEntry
	recovery Recovery
	scratch  []byte
}

// Open opens (or creates) the store in dir, running crash recovery: the
// segments named by the manifest are scanned frame by frame, the torn
// tail (if any) is truncated, and a fresh manifest is written if the old
// one was missing, stale, or corrupt. The result is always a clean,
// duplicate-free prefix of the appended records.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("epochstore: %w", err)
	}
	s := &Store{
		dir:      dir,
		fs:       fsys,
		segBytes: segBytes,
		index:    make(map[indexKey]indexEntry),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) segName(id uint32) string {
	return fmt.Sprintf("%s/%s%08d%s", s.dir, segPrefix, id, segSuffix)
}

func (s *Store) manifestPath() string { return s.dir + "/" + manifestName }

// listSegments falls back to a directory scan when the manifest cannot be
// trusted; segment names sort numerically because the id is zero-padded.
func (s *Store) listSegments() ([]uint32, error) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ids []uint32
	for _, name := range names {
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var id uint32
		if _, err := fmt.Sscanf(name, segPrefix+"%08d"+segSuffix, &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// recover builds the in-memory state from disk; see Open.
func (s *Store) recover() error {
	segs, manErr := s.readManifest()
	if manErr != nil {
		ids, err := s.listSegments()
		if err != nil {
			return fmt.Errorf("epochstore: %w", err)
		}
		segs = ids
		if len(ids) > 0 || !errors.Is(manErr, os.ErrNotExist) {
			s.recovery.ManifestRebuilt = true
		}
	}
	if len(segs) == 0 {
		if err := s.createSegment(1); err != nil {
			return err
		}
		s.segs = []uint32{1}
		s.activeID = 1
		s.goodSize = segHeaderSize
		f, err := s.fs.OpenFile(s.segName(1), os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("epochstore: %w", err)
		}
		s.active = f
		return s.writeManifest()
	}

	// Scan every live segment in order. The first bad frame ends the log:
	// the segment is truncated there and every later segment is dropped.
	var (
		live     []uint32
		lastGood int64
		torn     bool
	)
	for i, id := range segs {
		if torn {
			s.recovery.DroppedSegments++
			_ = s.fs.Remove(s.segName(id))
			continue
		}
		size, err := s.fs.Size(s.segName(id))
		if errors.Is(err, os.ErrNotExist) {
			// A rotation that crashed between manifest write and file
			// creation cannot happen (the file is created first), but a
			// manifest from a corrupted disk may name ghosts: end the log.
			torn = true
			s.recovery.DroppedSegments++
			continue
		}
		if err != nil {
			return fmt.Errorf("epochstore: %w", err)
		}
		clean, err := s.scanSegment(id, size)
		if err != nil {
			return err
		}
		if clean < 0 {
			// Header unreadable. For the last segment this is a crashed
			// rotation: recreate it empty. Anywhere else, end the log.
			if i == len(segs)-1 {
				if err := s.createSegment(id); err != nil {
					return err
				}
				s.recovery.TruncatedBytes += size
				live = append(live, id)
				lastGood = segHeaderSize
				break
			}
			torn = true
			s.recovery.DroppedSegments++
			_ = s.fs.Remove(s.segName(id))
			continue
		}
		if clean < size {
			s.recovery.TruncatedBytes += size - clean
			if err := s.truncateSegment(id, clean); err != nil {
				return err
			}
			torn = true
		}
		live = append(live, id)
		lastGood = clean
	}
	if len(live) == 0 {
		if err := s.createSegment(1); err != nil {
			return err
		}
		live = []uint32{1}
		lastGood = segHeaderSize
	}
	s.segs = live
	s.activeID = live[len(live)-1]
	s.goodSize = lastGood
	f, err := s.fs.OpenFile(s.segName(s.activeID), os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("epochstore: %w", err)
	}
	s.active = f
	if s.recovery.Dirty() {
		return s.writeManifest()
	}
	return nil
}

// scanSegment validates one segment's frames, filling the index. It
// returns the clean prefix length, or -1 if the header itself is bad.
func (s *Store) scanSegment(id uint32, size int64) (int64, error) {
	if size < segHeaderSize {
		return -1, nil
	}
	f, err := s.fs.OpenFile(s.segName(id), os.O_RDONLY, 0)
	if err != nil {
		return 0, fmt.Errorf("epochstore: %w", err)
	}
	defer f.Close()
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return 0, fmt.Errorf("epochstore: %w", err)
	}
	if string(data[:4]) != segMagic || data[4] != segVersion {
		return -1, nil
	}
	clean, frames := scanFrames(data[segHeaderSize:])
	for _, fr := range frames {
		rec, err := decodeRecord(data[segHeaderSize+fr.off+frameHeaderSize : segHeaderSize+fr.off+fr.len])
		if err != nil {
			// CRC passed but the payload is not a record: treat as torn
			// from this frame on.
			clean = fr.off
			break
		}
		key := indexKey{epoch: rec.Epoch, rel: rec.Rel}
		if _, dup := s.index[key]; dup {
			s.recovery.DuplicateFrames++
			continue
		}
		s.index[key] = indexEntry{seg: id, off: segHeaderSize + fr.off, len: fr.len}
	}
	return segHeaderSize + clean, nil
}

type frameSpan struct{ off, len int64 }

// scanFrames walks CRC32C frames in data, returning the clean prefix
// length and the spans of the valid frames. It never fails: a bad frame
// just ends the clean prefix.
func scanFrames(data []byte) (clean int64, frames []frameSpan) {
	off := int64(0)
	for {
		if off+frameHeaderSize > int64(len(data)) {
			return off, frames
		}
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen <= 0 || plen > maxFramePayload || off+frameHeaderSize+plen > int64(len(data)) {
			return off, frames
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			return off, frames
		}
		frames = append(frames, frameSpan{off: off, len: frameHeaderSize + plen})
		off += frameHeaderSize + plen
	}
}

// createSegment creates (truncating any leftover) segment id with a
// synced header.
func (s *Store) createSegment(id uint32) error {
	f, err := s.fs.OpenFile(s.segName(id), os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("epochstore: %w", err)
	}
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	hdr[4] = segVersion
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("epochstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("epochstore: %w", err)
	}
	return f.Close()
}

func (s *Store) truncateSegment(id uint32, size int64) error {
	f, err := s.fs.OpenFile(s.segName(id), os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("epochstore: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("epochstore: %w", err)
	}
	return f.Sync()
}

// Manifest format: magic, CRC32C of the body, body = version byte +
// segment count + segment ids. Replaced atomically via temp + rename.
func encodeManifest(segs []uint32) []byte {
	body := make([]byte, 0, 5+4*len(segs))
	body = append(body, manVersion)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(segs)))
	for _, id := range segs {
		body = binary.LittleEndian.AppendUint32(body, id)
	}
	out := make([]byte, 0, 8+len(body))
	out = append(out, manMagic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, crcTable))
	return append(out, body...)
}

func decodeManifest(data []byte) ([]uint32, error) {
	if len(data) < 13 || string(data[:4]) != manMagic {
		return nil, fmt.Errorf("%w: bad manifest header", ErrCorrupt)
	}
	crc := binary.LittleEndian.Uint32(data[4:])
	body := data[8:]
	if crc32.Checksum(body, crcTable) != crc {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	if body[0] != manVersion {
		return nil, fmt.Errorf("%w: manifest version %d", ErrCorrupt, body[0])
	}
	n := binary.LittleEndian.Uint32(body[1:])
	if n > maxSegments || int64(len(body)) != 5+4*int64(n) {
		return nil, fmt.Errorf("%w: manifest names %d segments in %d bytes", ErrCorrupt, n, len(body))
	}
	segs := make([]uint32, n)
	for i := range segs {
		segs[i] = binary.LittleEndian.Uint32(body[5+4*i:])
	}
	for i := 1; i < len(segs); i++ {
		if segs[i] <= segs[i-1] {
			return nil, fmt.Errorf("%w: manifest segment ids not ascending", ErrCorrupt)
		}
	}
	return segs, nil
}

func (s *Store) readManifest() ([]uint32, error) {
	size, err := s.fs.Size(s.manifestPath())
	if err != nil {
		return nil, err
	}
	if size > 8+5+4*maxSegments {
		return nil, fmt.Errorf("%w: implausible manifest size %d", ErrCorrupt, size)
	}
	f, err := s.fs.OpenFile(s.manifestPath(), os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return decodeManifest(data)
}

func (s *Store) writeManifest() error {
	tmp := s.manifestPath() + ".tmp"
	f, err := s.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("epochstore: %w", err)
	}
	data := encodeManifest(s.segs)
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("epochstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("epochstore: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("epochstore: %w", err)
	}
	if err := s.fs.Rename(tmp, s.manifestPath()); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("epochstore: %w", err)
	}
	return nil
}

// Record payload: epoch, rel, the four ledger counters, row count, key
// and aggregate arity, then the rows (keys then aggs, row-major).
func encodeRecord(buf []byte, rec *Record) ([]byte, error) {
	keyLen, aggLen := 0, 0
	if len(rec.Rows) > 0 {
		keyLen, aggLen = len(rec.Rows[0].Key), len(rec.Rows[0].Aggs)
	}
	if keyLen > 255 || aggLen > 255 {
		return nil, fmt.Errorf("epochstore: row arity %d/%d exceeds format limit", keyLen, aggLen)
	}
	if keyLen != rec.Rel.Size() && len(rec.Rows) > 0 {
		return nil, fmt.Errorf("epochstore: key arity %d does not match relation %v", keyLen, rec.Rel)
	}
	buf = binary.LittleEndian.AppendUint32(buf, rec.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Rel))
	buf = binary.LittleEndian.AppendUint64(buf, rec.Offered)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Processed)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Dropped)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Late)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Rows)))
	buf = append(buf, byte(keyLen), byte(aggLen))
	for i := range rec.Rows {
		r := &rec.Rows[i]
		if len(r.Key) != keyLen || len(r.Aggs) != aggLen {
			return nil, fmt.Errorf("epochstore: ragged rows in record for %v epoch %d", rec.Rel, rec.Epoch)
		}
		for _, k := range r.Key {
			buf = binary.LittleEndian.AppendUint32(buf, k)
		}
		for _, a := range r.Aggs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(a))
		}
	}
	return buf, nil
}

const recordHeaderSize = 4 + 4 + 4*8 + 4 + 2

func decodeRecord(payload []byte) (*Record, error) {
	if len(payload) < recordHeaderSize {
		return nil, fmt.Errorf("%w: record payload %d bytes", ErrCorrupt, len(payload))
	}
	rec := &Record{
		Epoch:     binary.LittleEndian.Uint32(payload[0:]),
		Rel:       attr.Set(binary.LittleEndian.Uint32(payload[4:])),
		Offered:   binary.LittleEndian.Uint64(payload[8:]),
		Processed: binary.LittleEndian.Uint64(payload[16:]),
		Dropped:   binary.LittleEndian.Uint64(payload[24:]),
		Late:      binary.LittleEndian.Uint64(payload[32:]),
	}
	nRows := binary.LittleEndian.Uint32(payload[40:])
	keyLen := int(payload[44])
	aggLen := int(payload[45])
	if uint32(rec.Rel)>>attr.MaxAttrs != 0 {
		return nil, fmt.Errorf("%w: relation bits out of range", ErrCorrupt)
	}
	if nRows > maxRows {
		return nil, fmt.Errorf("%w: implausible row count %d", ErrCorrupt, nRows)
	}
	if nRows == 0 && (keyLen != 0 || aggLen != 0) {
		// The encoder writes zero arity for empty records; anything else is
		// not one of our frames.
		return nil, fmt.Errorf("%w: empty record with nonzero arity", ErrCorrupt)
	}
	if nRows > 0 && keyLen != rec.Rel.Size() {
		return nil, fmt.Errorf("%w: key arity %d for relation %v", ErrCorrupt, keyLen, rec.Rel)
	}
	rowBytes := int64(keyLen)*4 + int64(aggLen)*8
	if nRows > 0 && rowBytes == 0 {
		return nil, fmt.Errorf("%w: %d rows of zero width", ErrCorrupt, nRows)
	}
	if int64(len(payload)) != recordHeaderSize+int64(nRows)*rowBytes {
		return nil, fmt.Errorf("%w: record length mismatch", ErrCorrupt)
	}
	rec.Rows = make([]Row, nRows)
	off := recordHeaderSize
	for i := range rec.Rows {
		key := make([]uint32, keyLen)
		for j := range key {
			key[j] = binary.LittleEndian.Uint32(payload[off:])
			off += 4
		}
		aggs := make([]int64, aggLen)
		for j := range aggs {
			aggs[j] = int64(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		rec.Rows[i] = Row{Key: key, Aggs: aggs}
	}
	return rec, nil
}

// AppendEpoch appends one finalized epoch — one record per query relation
// — and fsyncs once. Records already persisted (same epoch and relation)
// are skipped, so a retry after a transient error or a crash never
// duplicates: the store stays an exactly-once log under at-least-once
// delivery. On error nothing is committed; the next call repairs the torn
// tail (truncate back to the last committed byte) before writing, so
// failed attempts leave no trace either.
func (s *Store) AppendEpoch(recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.damaged {
		if err := s.repairTailLocked(); err != nil {
			return err
		}
	}
	type staged struct {
		key      indexKey
		off, len int64
	}
	var (
		frames []staged
		buf    = s.scratch[:0]
	)
	off := s.goodSize
	for i := range recs {
		rec := &recs[i]
		key := indexKey{epoch: rec.Epoch, rel: rec.Rel}
		if _, dup := s.index[key]; dup {
			continue
		}
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
		var err error
		buf, err = encodeRecord(buf, rec)
		if err != nil {
			return err
		}
		payload := buf[start+frameHeaderSize:]
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
		flen := int64(len(buf) - start)
		frames = append(frames, staged{key: key, off: off, len: flen})
		off += flen
	}
	s.scratch = buf[:0]
	if len(frames) == 0 {
		return nil
	}
	if s.goodSize >= s.segBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		// Rebase the staged offsets onto the fresh segment.
		delta := s.goodSize - frames[0].off
		for i := range frames {
			frames[i].off += delta
		}
	}
	if _, err := s.active.Write(buf); err != nil {
		s.damaged = true
		return fmt.Errorf("epochstore: append: %w", err)
	}
	if err := s.active.Sync(); err != nil {
		s.damaged = true
		return fmt.Errorf("epochstore: append sync: %w", err)
	}
	for _, fr := range frames {
		s.index[fr.key] = indexEntry{seg: s.activeID, off: fr.off, len: fr.len}
	}
	s.goodSize += int64(len(buf))
	return nil
}

// repairTailLocked truncates the active segment back to the last
// committed byte after a failed append left an unknown tail.
func (s *Store) repairTailLocked() error {
	if err := s.active.Truncate(s.goodSize); err != nil {
		return fmt.Errorf("epochstore: tail repair: %w", err)
	}
	s.damaged = false
	return nil
}

// rotateLocked seals the active segment and switches appends to a fresh
// one: create + sync the new file first, then atomically publish it in
// the manifest, then swap handles. A crash between those steps leaves
// either the old manifest (orphan file, recreated on reuse) or the new
// one (empty valid segment) — both recover cleanly.
func (s *Store) rotateLocked() error {
	newID := s.activeID + 1
	if err := s.createSegment(newID); err != nil {
		return err
	}
	oldSegs := s.segs
	s.segs = append(append([]uint32(nil), oldSegs...), newID)
	if err := s.writeManifest(); err != nil {
		s.segs = oldSegs
		_ = s.fs.Remove(s.segName(newID))
		return err
	}
	f, err := s.fs.OpenFile(s.segName(newID), os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("epochstore: %w", err)
	}
	_ = s.active.Close()
	s.active = f
	s.activeID = newID
	s.goodSize = segHeaderSize
	return nil
}

// Has reports whether (epoch, rel) is persisted.
func (s *Store) Has(epoch uint32, rel attr.Set) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[indexKey{epoch: epoch, rel: rel}]
	return ok
}

// Epochs returns the persisted epoch numbers, ascending. An epoch is
// listed if any relation's record for it is persisted.
func (s *Store) Epochs() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[uint32]bool)
	var out []uint32
	for k := range s.index {
		if !seen[k.epoch] {
			seen[k.epoch] = true
			out = append(out, k.epoch)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Relations returns the relations persisted for one epoch, sorted.
func (s *Store) Relations(epoch uint32) []attr.Set {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []attr.Set
	for k := range s.index {
		if k.epoch == epoch {
			out = append(out, k.rel)
		}
	}
	attr.SortSets(out)
	return out
}

// LastEpoch returns the highest persisted epoch, if any.
func (s *Store) LastEpoch() (uint32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best uint32
	found := false
	for k := range s.index {
		if !found || k.epoch > best {
			best = k.epoch
			found = true
		}
	}
	return best, found
}

// Len returns the number of persisted (epoch, relation) records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Read returns one persisted record, re-verifying its CRC on the way in.
func (s *Store) Read(epoch uint32, rel attr.Set) (*Record, error) {
	s.mu.Lock()
	ent, ok := s.index[indexKey{epoch: epoch, rel: rel}]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("epochstore: epoch %d of %v is not persisted", epoch, rel)
	}
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.mu.Unlock()
	return s.readEntry(ent)
}

func (s *Store) readEntry(ent indexEntry) (*Record, error) {
	f, err := s.fs.OpenFile(s.segName(ent.seg), os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("epochstore: %w", err)
	}
	defer f.Close()
	frame := make([]byte, ent.len)
	if _, err := f.ReadAt(frame, ent.off); err != nil {
		return nil, fmt.Errorf("epochstore: %w", err)
	}
	plen := int64(binary.LittleEndian.Uint32(frame))
	crc := binary.LittleEndian.Uint32(frame[4:])
	if plen != ent.len-frameHeaderSize {
		return nil, fmt.Errorf("%w: frame length changed under us", ErrCorrupt)
	}
	payload := frame[frameHeaderSize:]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	return decodeRecord(payload)
}

// Scan calls fn for every persisted record in (epoch, relation) order.
func (s *Store) Scan(fn func(*Record) error) error {
	s.mu.Lock()
	keys := make([]indexKey, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].epoch != keys[j].epoch {
			return keys[i].epoch < keys[j].epoch
		}
		return keys[i].rel < keys[j].rel
	})
	for _, k := range keys {
		rec, err := s.Read(k.epoch, k.rel)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Recovery reports what Open repaired.
func (s *Store) Recovery() Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close closes the store; further appends and reads fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active != nil {
		return s.active.Close()
	}
	return nil
}
