package epochstore

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"

	"repro/internal/attr"
)

// seededRecords builds a seed-dependent workload of finalized epochs over
// three relations, each record satisfying the engine's ledger identity
// Offered == Processed + Dropped + Late.
func seededRecords(seed uint64, epochs int) [][]Record {
	rels := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("C"), attr.MustParseSet("BCD")}
	var out [][]Record
	for e := 1; e <= epochs; e++ {
		var recs []Record
		for ri, rel := range rels {
			h := mix64(seed ^ uint64(e)<<8 ^ uint64(ri))
			n := int(h % 5)
			rows := make([]Row, n)
			for i := range rows {
				key := make([]uint32, rel.Size())
				for j := range key {
					key[j] = uint32(mix64(h^uint64(i*8+j)) % 1000)
				}
				rows[i] = Row{Key: key, Aggs: []int64{int64(h>>32) - int64(i), int64(i + 1)}}
			}
			dropped, late := h%7, (h>>3)%4
			processed := 50 + h%100
			recs = append(recs, Record{
				Epoch: uint32(e), Rel: rel, Rows: rows,
				Offered:   processed + dropped + late,
				Processed: processed, Dropped: dropped, Late: late,
			})
		}
		out = append(out, recs)
	}
	return out
}

// TestCrashPointRecovery is the crash-point property suite: for each
// seed it replays the same append workload under ~100 simulated power
// cuts — one at every ~1% of the reference run's total written bytes —
// and asserts, for every cut:
//
//  1. the reopened store recovers a clean, duplicate-free prefix of the
//     appended records (never a torn frame, never a reordering),
//  2. every recovered record is byte-equal to its reference copy and
//     satisfies the Offered == Processed + Dropped + Late identity,
//  3. re-appending the full workload completes the log to exactly the
//     reference contents — retries after the crash never duplicate.
func TestCrashPointRecovery(t *testing.T) {
	const (
		cuts     = 100
		nEpochs  = 12
		segBytes = 600 // small enough that the sweep crosses several rotations
	)
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			workload := seededRecords(seed, nEpochs)

			// Reference run, fault-free, to learn total bytes + contents.
			base := t.TempDir()
			refFS := NewFaultFS(nil, Faults{})
			ref, err := Open(base+"/ref", Options{FS: refFS, SegmentBytes: segBytes})
			if err != nil {
				t.Fatal(err)
			}
			for _, recs := range workload {
				if err := ref.AppendEpoch(recs); err != nil {
					t.Fatal(err)
				}
			}
			want := contents(t, ref)
			total := refFS.Written()
			ref.Close()
			if total < cuts {
				t.Fatalf("reference run wrote only %d bytes; workload too small", total)
			}

			for i := 1; i <= cuts; i++ {
				cut := total * int64(i) / cuts
				if cut < 1 {
					cut = 1
				}
				dir := fmt.Sprintf("%s/cut-%03d", base, i)
				ffs := NewFaultFS(nil, Faults{CrashAfterBytes: cut})
				s, err := Open(dir, Options{FS: ffs, SegmentBytes: segBytes})
				if err == nil {
					for _, recs := range workload {
						if err = s.AppendEpoch(recs); err != nil {
							break
						}
					}
					s.Close()
				}
				if err != nil && !errors.Is(err, ErrCrashed) {
					t.Fatalf("cut %d: unexpected non-crash error: %v", cut, err)
				}
				if err == nil && ffs.Crashed() {
					t.Fatalf("cut %d: run completed despite the crash", cut)
				}

				// Restart: reopen on the real filesystem.
				r, err := Open(dir, Options{SegmentBytes: segBytes})
				if err != nil {
					t.Fatalf("cut %d: recovery open failed: %v", cut, err)
				}
				got := contents(t, r)
				if len(got) > len(want) {
					t.Fatalf("cut %d: recovered %d records, more than the %d appended", cut, len(got), len(want))
				}
				if len(got) > 0 && !reflect.DeepEqual(got, want[:len(got)]) {
					t.Fatalf("cut %d: recovered records are not a clean prefix", cut)
				}
				for _, rec := range got {
					if rec.Offered != rec.Processed+rec.Dropped+rec.Late {
						t.Fatalf("cut %d: ledger identity broken in recovered record (epoch %d, %v)",
							cut, rec.Epoch, rec.Rel)
					}
				}

				// Resume: re-deliver the whole workload (at-least-once); the
				// store must dedupe to exactly-once.
				for _, recs := range workload {
					if err := r.AppendEpoch(recs); err != nil {
						t.Fatalf("cut %d: resume append: %v", cut, err)
					}
				}
				if final := contents(t, r); !reflect.DeepEqual(final, want) {
					t.Fatalf("cut %d: resumed store diverges from the reference", cut)
				}
				r.Close()
			}
		})
	}
}

// TestCrashDuringRecoveryItselfIsSafe cuts power while recovery is
// rewriting state (truncation, manifest rebuild) and checks a second
// recovery still lands on the clean prefix.
func TestCrashDuringRecoveryItselfIsSafe(t *testing.T) {
	base := t.TempDir()
	workload := seededRecords(3, 8)

	// Build a store with a torn tail so recovery has repair work to do.
	dir := base + "/store"
	s, err := Open(dir, Options{SegmentBytes: 500})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for _, recs := range workload {
		if err := s.AppendEpoch(recs); err != nil {
			t.Fatal(err)
		}
		want = append(want, recs...)
	}
	seg := s.segName(s.activeID)
	s.Close()
	appendGarbage(t, seg)

	// First recovery attempt crashes almost immediately (cut = 1 byte —
	// inside whatever recovery writes first).
	if _, err := Open(dir, Options{FS: NewFaultFS(nil, Faults{CrashAfterBytes: 1}), SegmentBytes: 500}); err == nil {
		t.Log("recovery finished before writing a byte; nothing to interrupt")
	}

	// Second, clean recovery must still produce the full prefix.
	r, err := Open(dir, Options{SegmentBytes: 500})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer r.Close()
	if got := contents(t, r); !reflect.DeepEqual(got, want) {
		t.Fatal("contents diverge after interrupted recovery")
	}
}

func appendGarbage(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
}
