package epochstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// fuzzSeedInputs returns realistic byte strings for the decoders: encoded
// records (framed and bare), manifests, and mutations of each.
func fuzzSeedInputs(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte

	// Bare record payloads and CRC-framed segment bodies from a real store.
	dir := tb.TempDir() + "/seed-store"
	s, err := Open(dir, Options{SegmentBytes: 300})
	if err != nil {
		tb.Fatal(err)
	}
	for _, recs := range seededRecords(5, 6) {
		if err := s.AppendEpoch(recs); err != nil {
			tb.Fatal(err)
		}
		for i := range recs {
			payload, err := encodeRecord(nil, &recs[i])
			if err != nil {
				tb.Fatal(err)
			}
			seeds = append(seeds, payload)
		}
	}
	s.Close()
	names, err := OSFS{}.ReadDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	for _, name := range names {
		b, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, b)
	}

	// Manifests, valid and mutated.
	man := encodeManifest([]uint32{1, 2, 7})
	seeds = append(seeds, man)
	flip := append([]byte(nil), man...)
	flip[len(flip)-1] ^= 0x80
	seeds = append(seeds, flip)
	seeds = append(seeds, encodeManifest(nil))
	return seeds
}

// FuzzSegmentDecode drives arbitrary bytes through every decoder in the
// store — the frame scanner, the record decoder, the manifest decoder,
// and full Open-time recovery with the bytes standing in for a segment
// body and a manifest. Nothing may panic; whatever survives decoding must
// re-encode to the same bytes (so recovery is idempotent).
func FuzzSegmentDecode(f *testing.F) {
	for _, seed := range fuzzSeedInputs(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame scanner: clean prefix must be in bounds and re-scan stable.
		clean, frames := scanFrames(data)
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("scanFrames clean = %d outside [0, %d]", clean, len(data))
		}
		for _, fr := range frames {
			if fr.off < 0 || fr.off+fr.len > clean {
				t.Fatalf("frame [%d, %d) escapes the clean prefix %d", fr.off, fr.off+fr.len, clean)
			}
		}
		if c2, _ := scanFrames(data[:clean]); c2 != clean {
			t.Fatalf("re-scan of the clean prefix shrank it: %d -> %d", clean, c2)
		}

		// Record decoder: decode/encode round trip.
		if rec, err := decodeRecord(data); err == nil {
			out, err := encodeRecord(nil, rec)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
			if !reflect.DeepEqual(out, data) {
				t.Fatal("record decode/encode round trip changed bytes")
			}
		}

		// Manifest decoder: same round-trip law.
		if segs, err := decodeManifest(data); err == nil {
			if !reflect.DeepEqual(encodeManifest(segs), data) {
				t.Fatal("manifest decode/encode round trip changed bytes")
			}
		}

		// Open-time recovery over the bytes as a segment body: must not
		// panic, must recover a scannable store, and a second open must be
		// clean (recovery reaches a fixed point).
		dir := t.TempDir() + "/store"
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		seg := append([]byte(segMagic), segVersion, 0, 0, 0)
		seg = append(seg, data...)
		if err := os.WriteFile(dir+"/"+segPrefix+"00000001"+segSuffix, seg, 0o644); err != nil {
			t.Fatal(err)
		}
		// And as the manifest, so its decoder sees raw fuzz too.
		if err := os.WriteFile(dir+"/"+manifestName, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on fuzzed store: %v", err)
		}
		n := 0
		if err := st.Scan(func(*Record) error { n++; return nil }); err != nil {
			t.Fatalf("Scan after recovery: %v", err)
		}
		st.Close()
		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		// Recovery reaches a fixed point: the second open repairs nothing.
		// (DuplicateFrames is exempt — fuzzed segments may carry duplicate
		// valid frames, which recovery skips but never rewrites away.)
		if rec := st2.Recovery(); rec.TruncatedBytes != 0 || rec.DroppedSegments != 0 || rec.ManifestRebuilt {
			t.Fatalf("recovery not a fixed point: second open repaired %+v", rec)
		}
		if st2.Len() != n {
			t.Fatalf("second open lost records: %d -> %d", n, st2.Len())
		}
		st2.Close()
	})
}

// TestWriteEpochstoreFuzzCorpus regenerates the checked-in seed corpus
// for FuzzSegmentDecode when run with MAGG_WRITE_CORPUS=1, mirroring the
// checkpoint corpus in internal/core.
func TestWriteEpochstoreFuzzCorpus(t *testing.T) {
	if os.Getenv("MAGG_WRITE_CORPUS") == "" {
		t.Skip("set MAGG_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSegmentDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedInputs(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
