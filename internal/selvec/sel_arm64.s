//go:build arm64

#include "textflag.h"

// Per-lane bit constants: each 32-bit lane of the two compare vectors
// contributes exactly one nonzero byte (1,2,4,8 for the first vector,
// 16,32,64,128 for the second), so ANDing with the all-ones compare
// result and summing every byte yields the 8-bit lane mask with no
// carries.
DATA selLaneBits<>+0(SB)/8, $0x0000000200000001
DATA selLaneBits<>+8(SB)/8, $0x0000000800000004
DATA selLaneBits<>+16(SB)/8, $0x0000002000000010
DATA selLaneBits<>+24(SB)/8, $0x0000008000000040
GLOBL selLaneBits<>(SB), RODATA|NOPTR, $32

// func selEqSIMD(col *uint32, c uint32) uint64
//
// Returns bit j set iff col[j] == c, for j in [0,64). Eight iterations
// of: load 8 lanes, VCMEQ against the broadcast constant, mask to lane
// bits, byte-sum to one mask byte, shift into the result word.
TEXT ·selEqSIMD(SB), NOSPLIT, $0-24
	MOVD col+0(FP), R0
	MOVWU c+8(FP), R1
	VDUP R1, V0.S4
	MOVD $selLaneBits<>(SB), R2
	VLD1 (R2), [V4.B16, V5.B16]
	MOVD ZR, R3 // result accumulator
	MOVD ZR, R4 // lane shift
	MOVD $8, R5 // iterations

eqloop:
	VLD1.P 32(R0), [V1.S4, V2.S4]
	VCMEQ V0.S4, V1.S4, V1.S4
	VCMEQ V0.S4, V2.S4, V2.S4
	VAND V4.B16, V1.B16, V1.B16
	VAND V5.B16, V2.B16, V2.B16
	VORR V2.B16, V1.B16, V1.B16
	VADDV V1.B16, V6
	VMOV V6.B[0], R6
	LSL R4, R6, R6
	ORR R6, R3, R3
	ADD $8, R4
	SUB $1, R5
	CBNZ R5, eqloop

	MOVD R3, ret+16(FP)
	RET

// func selLtSIMD(col *uint32, c uint32) uint64
//
// Returns bit j set iff col[j] < c (unsigned), for j in [0,64). With
// K = c-1 broadcast, a lane passes iff umin(v, K) == v; c == 0 (nothing
// is below zero) is answered up front so the K computation cannot wrap.
TEXT ·selLtSIMD(SB), NOSPLIT, $0-24
	MOVD col+0(FP), R0
	MOVWU c+8(FP), R1
	CBZ R1, ltzero
	SUBW $1, R1, R1
	VDUP R1, V0.S4
	MOVD $selLaneBits<>(SB), R2
	VLD1 (R2), [V4.B16, V5.B16]
	MOVD ZR, R3 // result accumulator
	MOVD ZR, R4 // lane shift
	MOVD $8, R5 // iterations

ltloop:
	VLD1.P 32(R0), [V1.S4, V2.S4]
	VUMIN V0.S4, V1.S4, V6.S4
	VUMIN V0.S4, V2.S4, V7.S4
	VCMEQ V6.S4, V1.S4, V1.S4
	VCMEQ V7.S4, V2.S4, V2.S4
	VAND V4.B16, V1.B16, V1.B16
	VAND V5.B16, V2.B16, V2.B16
	VORR V2.B16, V1.B16, V1.B16
	VADDV V1.B16, V6
	VMOV V6.B[0], R6
	LSL R4, R6, R6
	ORR R6, R3, R3
	ADD $8, R4
	SUB $1, R5
	CBNZ R5, ltloop

	MOVD R3, ret+16(FP)
	RET

ltzero:
	MOVD ZR, ret+16(FP)
	RET
