package selvec

import (
	"math/rand"
	"testing"

	"repro/internal/hashtab"
)

// forEachKernel runs fn once with the vector kernel disabled and, when
// the host supports it, once enabled — the same pattern the hashtab
// match tests use so CI exercises every dispatch path.
func forEachKernel(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	prev := hashtab.SIMDEnabled()
	defer hashtab.SetSIMD(prev)

	hashtab.SetSIMD(false)
	t.Run("generic", fn)
	if hashtab.SIMDAvailable() {
		hashtab.SetSIMD(true)
		t.Run(hashtab.KernelName(), fn)
	}
}

func oracleEq(col []uint32, c uint32) uint64 {
	var w uint64
	for j, v := range col {
		if v == c {
			w |= 1 << uint(j)
		}
	}
	return w
}

func oracleLt(col []uint32, c uint32) uint64 {
	var w uint64
	for j, v := range col {
		if v < c {
			w |= 1 << uint(j)
		}
	}
	return w
}

// boundaryValues are the column/constant values most likely to expose
// widening, bias, or wraparound mistakes in the kernels.
var boundaryValues = []uint32{0, 1, 2, 0x7fffffff, 0x80000000, 0x80000001, 0xfffffffe, 0xffffffff}

func TestSelVecKernelsBoundary(t *testing.T) {
	forEachKernel(t, func(t *testing.T) {
		col := make([]uint32, WordLanes)
		for _, c := range boundaryValues {
			for i := range col {
				col[i] = boundaryValues[i%len(boundaryValues)]
			}
			if got, want := EqWord(col, c), oracleEq(col, c); got != want {
				t.Fatalf("EqWord(boundary, %#x) = %#x, want %#x", c, got, want)
			}
			if got, want := LtWord(col, c), oracleLt(col, c); got != want {
				t.Fatalf("LtWord(boundary, %#x) = %#x, want %#x", c, got, want)
			}
		}
	})
}

func TestSelVecKernelsRandom(t *testing.T) {
	forEachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(10))
		lengths := []int{0, 1, 3, 7, 15, 31, 63, 64}
		for iter := 0; iter < 2000; iter++ {
			n := lengths[rng.Intn(len(lengths))]
			col := make([]uint32, n)
			for i := range col {
				// Small domain so equality actually hits; occasional
				// full-range values exercise the bias path.
				if rng.Intn(8) == 0 {
					col[i] = rng.Uint32()
				} else {
					col[i] = uint32(rng.Intn(16))
				}
			}
			c := uint32(rng.Intn(16))
			if rng.Intn(8) == 0 {
				c = boundaryValues[rng.Intn(len(boundaryValues))]
			}
			if got, want := EqWord(col, c), oracleEq(col, c); got != want {
				t.Fatalf("n=%d EqWord(col, %#x) = %#x, want %#x", n, c, got, want)
			}
			if got, want := LtWord(col, c), oracleLt(col, c); got != want {
				t.Fatalf("n=%d LtWord(col, %#x) = %#x, want %#x", n, c, got, want)
			}
		}
	})
}

// TestSelVecSIMDMatchesGeneric pins the asm kernels lane-for-lane
// against the generic implementation on full words, independent of the
// oracle (catches dispatch-length mistakes).
func TestSelVecSIMDMatchesGeneric(t *testing.T) {
	if !hashtab.SIMDAvailable() {
		t.Skip("no vector kernel on this host")
	}
	rng := rand.New(rand.NewSource(11))
	col := make([]uint32, WordLanes)
	for iter := 0; iter < 5000; iter++ {
		for i := range col {
			col[i] = rng.Uint32() >> uint(rng.Intn(33))
		}
		c := col[rng.Intn(len(col))] // guaranteed at least one equal lane
		if rng.Intn(4) == 0 {
			c = rng.Uint32()
		}
		if got, want := selEqSIMD(&col[0], c), eqWordGeneric(col, c); got != want {
			t.Fatalf("selEqSIMD(col, %#x) = %#x, generic %#x", c, got, want)
		}
		if got, want := selLtSIMD(&col[0], c), ltWordGeneric(col, c); got != want {
			t.Fatalf("selLtSIMD(col, %#x) = %#x, generic %#x", c, got, want)
		}
	}
}

func TestSelVecBitmapHelpers(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 128, 129, 1024} {
		b := Grow(nil, n)
		if len(b) != Words(n) {
			t.Fatalf("Grow(%d): len %d, want %d", n, len(b), Words(n))
		}
		b.SetAll(n)
		if got := b.Count(n); got != n {
			t.Fatalf("SetAll(%d).Count = %d", n, got)
		}
		if tail := b[len(b)-1] &^ TailMask(n); tail != 0 {
			t.Fatalf("SetAll(%d): dead tail bits %#x", n, tail)
		}
		for i := 0; i < n; i++ {
			if !b.Test(i) {
				t.Fatalf("SetAll(%d): lane %d not set", n, i)
			}
		}
		b.Clear(n)
		if got := b.Count(n); got != 0 {
			t.Fatalf("Clear(%d).Count = %d", n, got)
		}
		b.Set(n - 1)
		if !b.Test(n-1) || b.Count(n) != 1 {
			t.Fatalf("Set(%d) not reflected", n-1)
		}
	}
	// Grow must reuse capacity.
	b := Grow(nil, 1024)
	b2 := Grow(b, 64)
	if &b2[0] != &b[0] {
		t.Fatal("Grow reallocated despite sufficient capacity")
	}
}
