package selvec

// The AVX2 kernels evaluate one predicate over 64 lanes (256 bytes of
// column data) per call: eight 8-lane compares, each folded to 8 mask
// bits with VMOVMSKPS and shifted into place. Unsigned less-than uses
// the classic sign-bias trick (x ^ 0x80000000 on both sides, then a
// signed VPCMPGTD), since AVX2 has no unsigned integer compare.

//go:noescape
func selEqSIMD(col *uint32, c uint32) uint64

//go:noescape
func selLtSIMD(col *uint32, c uint32) uint64
