package selvec

// The NEON kernels evaluate one predicate over 64 lanes per call, eight
// lanes (two quadword vectors) per loop iteration. Go's arm64 assembler
// has no unsigned vector compare, so less-than is derived from VUMIN:
// v < c (with c >= 1) iff umin(v, c-1) == v. Mask extraction follows
// the hashtab tag-match kernel: AND the all-ones compare lanes with a
// per-lane bit constant, then fold the bytes to a single mask byte.

//go:noescape
func selEqSIMD(col *uint32, c uint32) uint64

//go:noescape
func selLtSIMD(col *uint32, c uint32) uint64
