// Package selvec implements selection vectors — one bit per record,
// packed 64 lanes to a word — and the branch-free columnar compare
// kernels that produce them.
//
// The representation follows the standard columnar-engine design: a
// predicate over a column of uint32 attribute words is evaluated 64
// lanes at a time into a single uint64 whose bit j answers "does lane j
// pass?". Words compose with plain AND (conjunction), OR (disjunction)
// and ANDNOT (lanes still undecided), and ledger counts fall out of
// popcounts instead of per-record increments. Downstream consumers
// (router scatter, probe setup) iterate set bits rather than compacting
// the batch, so a selective WHERE never copies surviving lanes.
//
// Only two compare kernels exist: equality and unsigned less-than. The
// six source-level comparison ops all normalize onto {eq, lt} plus a
// complement at compile time (see internal/query's filter compiler),
// which keeps the asm surface as small as the hashtab tag-match kernel
// it is modeled on. Each kernel has a branch-free generic form and an
// AVX2/NEON variant selected by the same process-wide MAGG_SIMD switch
// as hashtab (hashtab.SIMDEnabled / hashtab.SetSIMD), so one knob
// governs every vector kernel in the process.
package selvec

import (
	"math/bits"

	"repro/internal/hashtab"
)

// WordLanes is the number of record lanes packed into one selection word.
const WordLanes = 64

// Bitmap is a selection vector: bit j of word w covers record lane
// w*64 + j. The tail word of an n-lane bitmap keeps its dead high bits
// zero, so popcounts over whole words are exact.
type Bitmap []uint64

// Words returns the number of selection words covering n lanes.
func Words(n int) int { return (n + WordLanes - 1) / WordLanes }

// TailMask returns the valid-lane mask of the last word of an n-lane
// bitmap: all ones when n is a multiple of 64, otherwise the low n%64
// bits. n must be positive.
func TailMask(n int) uint64 {
	if r := n & (WordLanes - 1); r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// Grow returns b resized to exactly Words(n) words, reusing the backing
// array when it is large enough. Contents are unspecified; callers
// overwrite every word.
func Grow(b Bitmap, n int) Bitmap {
	w := Words(n)
	if cap(b) < w {
		return make(Bitmap, w)
	}
	return b[:w]
}

// SetAll sets the first n lanes and clears the dead tail bits. The
// bitmap must already have Words(n) words.
func (b Bitmap) SetAll(n int) {
	w := Words(n)
	for i := 0; i < w; i++ {
		b[i] = ^uint64(0)
	}
	if w > 0 {
		b[w-1] = TailMask(n)
	}
}

// Clear zeroes the first Words(n) words.
func (b Bitmap) Clear(n int) {
	for i := 0; i < Words(n); i++ {
		b[i] = 0
	}
}

// Count returns the number of selected lanes among the first n. Dead
// tail bits are zero by construction, so this is a straight popcount.
func (b Bitmap) Count(n int) int {
	total := 0
	for i := 0; i < Words(n); i++ {
		total += bits.OnesCount64(b[i])
	}
	return total
}

// Test reports whether lane i is selected.
func (b Bitmap) Test(i int) bool {
	return b[i>>6]&(uint64(1)<<(uint(i)&63)) != 0
}

// Set selects lane i.
func (b Bitmap) Set(i int) {
	b[i>>6] |= uint64(1) << (uint(i) & 63)
}

// EqWord evaluates col[j] == c over up to 64 lanes, returning the
// selection word; bits past len(col) are zero.
func EqWord(col []uint32, c uint32) uint64 {
	if len(col) == WordLanes && hashtab.SIMDEnabled() {
		return selEqSIMD(&col[0], c)
	}
	return eqWordGeneric(col, c)
}

// LtWord evaluates col[j] < c (unsigned) over up to 64 lanes, returning
// the selection word; bits past len(col) are zero.
func LtWord(col []uint32, c uint32) uint64 {
	if len(col) == WordLanes && hashtab.SIMDEnabled() {
		return selLtSIMD(&col[0], c)
	}
	return ltWordGeneric(col, c)
}

// eqWordGeneric builds the equality word without branches: for 32-bit
// operands widened to uint64, (x^c)-1 underflows to set bit 63 exactly
// when x == c.
func eqWordGeneric(col []uint32, c uint32) uint64 {
	var w uint64
	c64 := uint64(c)
	for j := 0; j < len(col); j++ {
		w |= (((uint64(col[j]) ^ c64) - 1) >> 63) << uint(j)
	}
	return w
}

// ltWordGeneric builds the unsigned less-than word without branches:
// for 32-bit operands widened to uint64, x-c sets bit 63 exactly when
// x < c.
func ltWordGeneric(col []uint32, c uint32) uint64 {
	var w uint64
	c64 := uint64(c)
	for j := 0; j < len(col); j++ {
		w |= ((uint64(col[j]) - c64) >> 63) << uint(j)
	}
	return w
}

// KernelName reports which compare-kernel implementation EqWord/LtWord
// dispatch to for full 64-lane words, mirroring hashtab.KernelName.
func KernelName() string { return hashtab.KernelName() }
