//go:build !amd64 && !arm64

package selvec

import "unsafe"

// On architectures without a vector kernel, hashtab.SIMDEnabled() is
// always false, so these are never reached at run time; they exist only
// to satisfy the dispatch sites.

func selEqSIMD(col *uint32, c uint32) uint64 {
	return eqWordGeneric(unsafe.Slice(col, WordLanes), c)
}

func selLtSIMD(col *uint32, c uint32) uint64 {
	return ltWordGeneric(unsafe.Slice(col, WordLanes), c)
}
