//go:build amd64

#include "textflag.h"

// Sign-bias constant for the unsigned less-than kernel: XORing both
// operands with 0x80000000 maps unsigned order onto signed order, which
// is the only integer compare AVX2 offers.
DATA selBias<>+0(SB)/4, $0x80000000
GLOBL selBias<>(SB), RODATA|NOPTR, $4

// func selEqSIMD(col *uint32, c uint32) uint64
//
// Returns bit j set iff col[j] == c, for j in [0,64). col must have 64
// lanes. Eight unrolled blocks: load 8 lanes, VPCMPEQD against the
// broadcast constant, VMOVMSKPS the lane sign bits down to 8 mask bits,
// shift into the result word.
TEXT ·selEqSIMD(SB), NOSPLIT, $0-24
	MOVQ col+0(FP), SI
	MOVL c+8(FP), CX
	MOVL CX, X0
	VPBROADCASTD X0, Y0

	VMOVDQU (SI), Y1
	VPCMPEQD Y0, Y1, Y1
	VMOVMSKPS Y1, AX

	VMOVDQU 32(SI), Y1
	VPCMPEQD Y0, Y1, Y1
	VMOVMSKPS Y1, DX
	SHLQ $8, DX
	ORQ DX, AX

	VMOVDQU 64(SI), Y1
	VPCMPEQD Y0, Y1, Y1
	VMOVMSKPS Y1, DX
	SHLQ $16, DX
	ORQ DX, AX

	VMOVDQU 96(SI), Y1
	VPCMPEQD Y0, Y1, Y1
	VMOVMSKPS Y1, DX
	SHLQ $24, DX
	ORQ DX, AX

	VMOVDQU 128(SI), Y1
	VPCMPEQD Y0, Y1, Y1
	VMOVMSKPS Y1, DX
	SHLQ $32, DX
	ORQ DX, AX

	VMOVDQU 160(SI), Y1
	VPCMPEQD Y0, Y1, Y1
	VMOVMSKPS Y1, DX
	SHLQ $40, DX
	ORQ DX, AX

	VMOVDQU 192(SI), Y1
	VPCMPEQD Y0, Y1, Y1
	VMOVMSKPS Y1, DX
	SHLQ $48, DX
	ORQ DX, AX

	VMOVDQU 224(SI), Y1
	VPCMPEQD Y0, Y1, Y1
	VMOVMSKPS Y1, DX
	SHLQ $56, DX
	ORQ DX, AX

	// The kernel uses full-width YMM state, so unlike the VEX.128
	// tag-match kernel it must VZEROUPPER before returning to Go code.
	VZEROUPPER
	MOVQ AX, ret+16(FP)
	RET

// func selLtSIMD(col *uint32, c uint32) uint64
//
// Returns bit j set iff col[j] < c (unsigned), for j in [0,64). Both
// sides are sign-biased so signed VPCMPGTD computes the unsigned
// relation: lane passes iff biased(c) > biased(col[j]).
TEXT ·selLtSIMD(SB), NOSPLIT, $0-24
	MOVQ col+0(FP), SI
	MOVL c+8(FP), CX
	XORL $0x80000000, CX
	MOVL CX, X0
	VPBROADCASTD X0, Y0            // biased constant
	VPBROADCASTD selBias<>(SB), Y3 // lane bias

	VMOVDQU (SI), Y1
	VPXOR Y3, Y1, Y1
	VPCMPGTD Y1, Y0, Y2
	VMOVMSKPS Y2, AX

	VMOVDQU 32(SI), Y1
	VPXOR Y3, Y1, Y1
	VPCMPGTD Y1, Y0, Y2
	VMOVMSKPS Y2, DX
	SHLQ $8, DX
	ORQ DX, AX

	VMOVDQU 64(SI), Y1
	VPXOR Y3, Y1, Y1
	VPCMPGTD Y1, Y0, Y2
	VMOVMSKPS Y2, DX
	SHLQ $16, DX
	ORQ DX, AX

	VMOVDQU 96(SI), Y1
	VPXOR Y3, Y1, Y1
	VPCMPGTD Y1, Y0, Y2
	VMOVMSKPS Y2, DX
	SHLQ $24, DX
	ORQ DX, AX

	VMOVDQU 128(SI), Y1
	VPXOR Y3, Y1, Y1
	VPCMPGTD Y1, Y0, Y2
	VMOVMSKPS Y2, DX
	SHLQ $32, DX
	ORQ DX, AX

	VMOVDQU 160(SI), Y1
	VPXOR Y3, Y1, Y1
	VPCMPGTD Y1, Y0, Y2
	VMOVMSKPS Y2, DX
	SHLQ $40, DX
	ORQ DX, AX

	VMOVDQU 192(SI), Y1
	VPXOR Y3, Y1, Y1
	VPCMPGTD Y1, Y0, Y2
	VMOVMSKPS Y2, DX
	SHLQ $48, DX
	ORQ DX, AX

	VMOVDQU 224(SI), Y1
	VPXOR Y3, Y1, Y1
	VPCMPGTD Y1, Y0, Y2
	VMOVMSKPS Y2, DX
	SHLQ $56, DX
	ORQ DX, AX

	VZEROUPPER
	MOVQ AX, ret+16(FP)
	RET
