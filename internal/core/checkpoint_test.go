package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hfta"
	"repro/internal/stream"
)

// TestCheckpointRoundTrip: checkpoint mid-stream (at an epoch boundary),
// restore into a fresh engine, replay from the recorded position, and get
// exactly the answers of an uninterrupted run.
func TestCheckpointRoundTrip(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	opts := Options{M: 8000, Seed: 3}

	// Uninterrupted reference run.
	ref, err := New(pairSQL, groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	want := ref.AllResults()

	// First run: crash mid-epoch (no Finish) with the engine writing its
	// checkpoint at every boundary. The checkpoint the crash leaves behind
	// is the last closed epoch's; the boundary record itself is not counted
	// in its stream position and gets replayed on resume.
	ckpt := filepath.Join(t.TempDir(), "crash.ckpt")
	copts := opts
	copts.CheckpointPath = ckpt
	e1, err := New(pairSQL, groups, copts)
	if err != nil {
		t.Fatal(err)
	}
	const crashAt = 17000 // mid-epoch: 30000 records over 5 epochs
	for i := 0; i < crashAt; i++ {
		if err := e1.Process(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if e1.Stats().Epochs == 0 {
		t.Fatal("crash point never crossed an epoch boundary")
	}

	// Restore into a fresh engine and replay the rest of the stream from
	// the recorded position.
	e2, err := New(pairSQL, groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	consumed, err := e2.RestoreCheckpointFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if consumed == 0 || consumed >= crashAt {
		t.Fatalf("restored stream position %d; want within (0, %d)", consumed, crashAt)
	}
	src := stream.NewSkipSource(stream.NewSliceSource(recs), consumed)
	if err := e2.Run(src); err != nil {
		t.Fatal(err)
	}
	if !hfta.Equal(e2.AllResults(), want) {
		t.Fatal("restored run's results differ from the uninterrupted run")
	}
	// Accounting survived too: every record of the stream ends up counted
	// exactly once across the crash.
	d := e2.Stats().Degradation
	if d.Offered != uint64(len(recs)) || d.Processed != uint64(len(recs)) {
		t.Errorf("restored accounting %+v; want %d offered and processed", d, len(recs))
	}
	if e2.Consumed() != uint64(len(recs)) {
		t.Errorf("restored consumed = %d; want %d", e2.Consumed(), len(recs))
	}
}

// TestCheckpointFileAtomic: WriteCheckpointFile leaves no temp droppings
// and the file restores cleanly.
func TestCheckpointFileAtomic(t *testing.T) {
	recs, groups := testWorkload(t, 20000)
	dir := t.TempDir()
	path := filepath.Join(dir, "engine.ckpt")
	e, err := New(pairSQL, groups, Options{M: 8000, Seed: 3, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "engine.ckpt" {
		t.Errorf("checkpoint dir contains %v; want only engine.ckpt", entries)
	}
	e2, err := New(pairSQL, groups, Options{M: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RestoreCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRejectsCorruptCheckpoints: truncated, corrupted, or
// mismatched checkpoints must fail with ErrBadCheckpoint, never panic or
// restore garbage.
func TestRestoreRejectsCorruptCheckpoints(t *testing.T) {
	recs, groups := testWorkload(t, 20000)
	e, err := New(pairSQL, groups, Options{M: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := e.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	fresh := func() *Engine {
		e, err := New(pairSQL, groups, Options{M: 8000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"bad version", func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 99
			return b
		}()},
		{"truncated header", good[:10]},
		{"truncated body", good[:len(good)-7]},
		{"flipped hash", func() []byte {
			b := append([]byte(nil), good...)
			b[5] ^= 0xff
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := fresh().Restore(bytes.NewReader(tc.data)); !errors.Is(err, ErrBadCheckpoint) {
				t.Errorf("err = %v; want ErrBadCheckpoint", err)
			}
		})
	}

	t.Run("different workload", func(t *testing.T) {
		other, err := New(pairSQL, groups, Options{M: 8000, Seed: 99}) // different seed
		if err != nil {
			t.Fatal(err)
		}
		if _, err := other.Restore(bytes.NewReader(good)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("err = %v; want ErrBadCheckpoint for a different workload", err)
		}
	})

	t.Run("used engine", func(t *testing.T) {
		used := fresh()
		if err := used.Process(recs[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := used.Restore(bytes.NewReader(good)); err == nil {
			t.Error("restore into a used engine accepted")
		}
	})

	t.Run("good checkpoint still restores", func(t *testing.T) {
		if _, err := fresh().Restore(bytes.NewReader(good)); err != nil {
			t.Fatal(err)
		}
	})
}
