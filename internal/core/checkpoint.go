package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/attr"
	"repro/internal/feedgraph"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/sketch"
)

// Epoch checkpoint/restore. A checkpoint captures everything the engine
// needs to resume from the last closed epoch after a crash: the stream
// position (records consumed), the planning inputs (group counts), the
// clock, the execution statistics and degradation history, and any
// retained HFTA rows (epochs not yet streamed out through a result
// handler). It is written at epoch boundaries only, when the LFTA tables
// are empty and every eviction has reached the HFTA, so no partial hash
// table state ever needs to be serialized: a restore rebuilds the plan
// from the restored group counts and replays the open epoch's records
// from the recorded stream position.
//
// Binary format ("MAGK", little-endian), in order: magic, version,
// workload hash, consumed, stats (epochs, replans, peak repairs, result
// errors), cumulative ops, clock snapshot, cumulative degradation,
// per-epoch degradation history, group counts, retained HFTA rows. The
// workload hash covers the query relations, epoch length, aggregates, M,
// and seed, so a checkpoint can only be restored into an engine built
// for the same workload.
//
// Version 2 appends, after the rows: the shed-policy state words (for
// policies implementing ShedPolicyState — UniformShed's EWMA rate and RNG
// position), the measured per-relation flow lengths the adaptive planner
// runs on, and the sharded-deployment state (per-shard budget-split
// weights, stream positions, cumulative ledgers, and the per-epoch
// per-shard ledger history). Together these make a killed
// sharded-and-shedding run resume byte-identically. Version 1 checkpoints
// still load (the v2 section simply defaults to fresh state).
//
// Version 3 appends, after the v2 section, the durability ledger of the
// epoch-store pipeline: how many closed epochs were persisted, how many
// enqueues hit a full persist queue, and the list of unpersisted epochs —
// so a resumed run still knows which epochs never reached the store. The
// engine writes version 3 only when it carries durability state (a store
// attached, or a ledger restored from a v3 image); otherwise it writes
// version 2 byte-identically to previous releases.
//
// Version 4 appends, after the v3 footer, the sliding-window section:
// the window geometry and sketch aggregate list (echoed for validation —
// they are also folded into the workload hash), the composer's window
// cursor, every retained pane (stats, per-relation rows, and serialized
// sketch partials, all in deterministic order with blobs carried
// verbatim so a restore → checkpoint round trip is byte-identical), the
// closed-window ledger history, and any retained window result rows. The
// engine writes version 4 only when the workload composes windows;
// tumbling workloads keep producing v2/v3 images byte-identically to
// previous releases.

const (
	ckptMagic     = "MAGK"
	ckptVersion   = 4
	ckptVersionV3 = 3
	ckptVersionV2 = 2
	ckptVersionV1 = 1

	// Sanity caps on untrusted length fields: a corrupt header must fail
	// cleanly, not demand gigabytes.
	ckptMaxHistory   = 1 << 24
	ckptMaxGroups    = 1 << 20
	ckptMaxRows      = 1 << 28
	ckptMaxShedWords = 1 << 10
	ckptMaxShards    = 1 << 16
	ckptMaxPanes     = 1 << 17 // window size is capped at 65536 epochs
	ckptMaxBlob      = 1 << 24
)

// ErrBadCheckpoint reports a malformed or mismatched checkpoint.
var ErrBadCheckpoint = errors.New("core: malformed checkpoint")

// workloadHash fingerprints the engine's workload-defining inputs.
func (e *Engine) workloadHash() uint64 {
	h := fnv.New64a()
	le := func(v any) { _ = binary.Write(h, binary.LittleEndian, v) }
	le(uint32(e.epochLen))
	le(uint64(e.opts.M))
	le(e.opts.Seed)
	le(uint32(len(e.queries)))
	for _, q := range e.queries {
		le(uint32(q))
	}
	le(uint32(len(e.aggs)))
	for _, a := range e.aggs {
		le(uint32(a.Op))
		le(int64(a.Input))
	}
	if e.winComposer != nil {
		// Windowed workloads fold the window geometry and sketch spec in
		// too; tumbling workloads hash exactly as before, so v1–v3 images
		// stay restorable byte-for-byte.
		spec := e.winComposer.Spec()
		le(spec.Size)
		le(spec.Slide)
		le(uint32(len(e.sketchAggs)))
		for _, sa := range e.sketchAggs {
			le(uint8(sa.Kind))
			le(int64(sa.Input))
			le(math.Float64bits(sa.Q))
		}
		le(e.sketchPrecision())
		le(math.Float64bits(e.digestCompression()))
	}
	return h.Sum64()
}

// Checkpoint serializes the engine state: format v3 when the engine
// carries durability state (an attached epoch store or a restored
// ledger), otherwise v2 — so engines without a store keep producing
// byte-identical images across releases. Call only at an epoch boundary
// (the engine's own CheckpointPath writes satisfy this by construction);
// mid-epoch LFTA table contents are not captured.
func (e *Engine) Checkpoint(w io.Writer) error {
	version := uint8(ckptVersionV2)
	if e.hasDurabilityState() {
		version = ckptVersionV3
	}
	if e.winComposer != nil {
		version = ckptVersion
	}
	return e.checkpointVersion(w, version)
}

// hasDurabilityState reports whether the engine has anything for a v3
// checkpoint's durability footer to record.
func (e *Engine) hasDurabilityState() bool {
	if e.persist != nil {
		return true
	}
	l := e.durable
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.persisted > 0 || len(l.unpersisted) > 0 || l.queueFull > 0
}

// checkpointVersion writes the checkpoint in the requested format
// version; tests use it to produce v1 images for read-compatibility.
func (e *Engine) checkpointVersion(w io.Writer, version uint8) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	var err error
	le := func(v any) {
		if err == nil {
			err = binary.Write(bw, binary.LittleEndian, v)
		}
	}
	writeDeg := func(d Degradation) {
		le(d.Epoch)
		le(d.Offered)
		le(d.Processed)
		le(d.Dropped)
		le(d.Late)
	}
	le(version)
	le(e.workloadHash())
	le(e.consumed)
	le(uint64(e.stats.Epochs))
	le(uint64(e.stats.Replans))
	le(uint64(e.stats.PeakRepairs))
	le(uint64(e.stats.ResultErrors))
	ops := e.Ops()
	le(ops.Probes)
	le(ops.Transfers)
	le(ops.Records)
	started, cur, regressed := e.clock.Snapshot()
	var s8 uint8
	if started {
		s8 = 1
	}
	le(s8)
	le(cur)
	le(regressed)
	writeDeg(e.cumDeg)
	le(uint32(len(e.degHist)))
	for _, d := range e.degHist {
		writeDeg(d)
	}
	rels := e.graph.Relations()
	attr.SortSets(rels)
	le(uint32(len(rels)))
	for _, r := range rels {
		le(uint32(r))
		le(math.Float64bits(e.groups[r]))
	}
	rows := e.agg.AllRows()
	le(uint64(len(rows)))
	for i := range rows {
		r := &rows[i]
		le(uint32(r.Rel))
		le(r.Epoch)
		le(uint8(len(r.Key)))
		for _, k := range r.Key {
			le(k)
		}
		le(uint8(len(r.Aggs)))
		for _, a := range r.Aggs {
			le(uint64(a))
		}
	}
	if version >= 2 {
		// Shed-policy state: the mutable words a stateful policy needs to
		// resume byte-identically (empty for DropTail / no budget).
		var words []uint64
		if carrier, ok := e.shedder.(ShedPolicyState); ok {
			words = carrier.ShedState()
		}
		le(uint32(len(words)))
		for _, wd := range words {
			le(wd)
		}
		// Measured flow lengths (adaptive planning input).
		flowRels := make([]attr.Set, 0, len(e.flowLens))
		for rel := range e.flowLens {
			flowRels = append(flowRels, rel)
		}
		attr.SortSets(flowRels)
		le(uint32(len(flowRels)))
		for _, rel := range flowRels {
			le(uint32(rel))
			le(math.Float64bits(e.flowLens[rel]))
		}
		// Sharded-deployment state.
		le(uint32(e.nShards))
		if e.nShards > 1 {
			for i := 0; i < e.nShards; i++ {
				le(math.Float64bits(e.shardWeight[i]))
				le(e.shardRouted[i])
				writeDeg(e.shardCum[i])
			}
			le(uint32(len(e.shardHist)))
			for _, epoch := range e.shardHist {
				for i := range epoch {
					writeDeg(epoch[i])
				}
			}
		}
	}
	if version >= 3 {
		// Durability footer: the persisted-epoch position and the
		// unpersisted ledger, so Restore + store replay resume exactly.
		d := e.Durability()
		le(uint32(d.Persisted))
		le(uint32(d.QueueFull))
		le(uint32(len(d.Unpersisted)))
		for _, ep := range d.Unpersisted {
			le(ep)
		}
	}
	if version >= 4 {
		// Sliding-window section: geometry and sketch spec (echoed for
		// validation), the window cursor, retained panes, closed-window
		// ledgers, and retained window rows. Pane sketch blobs are written
		// verbatim from the composer.
		spec := e.winComposer.Spec()
		le(spec.Size)
		le(spec.Slide)
		le(uint32(len(e.sketchAggs)))
		for _, sa := range e.sketchAggs {
			le(uint8(sa.Kind))
			le(int64(sa.Input))
			le(math.Float64bits(sa.Q))
		}
		le(e.sketchPrecision())
		le(math.Float64bits(e.digestCompression()))
		le(uint64(e.winComposer.Next()))
		panes := e.winComposer.SnapshotPanes()
		le(uint32(len(panes)))
		for _, p := range panes {
			le(p.Epoch)
			le(p.Stats.Offered)
			le(p.Stats.Processed)
			le(p.Stats.Dropped)
			le(p.Stats.Late)
			le(uint8(len(p.Rels)))
			for _, rs := range p.Rels {
				le(uint32(rs.Rel))
				le(uint32(len(rs.Rows)))
				for i := range rs.Rows {
					r := &rs.Rows[i]
					for _, k := range r.Key {
						le(k)
					}
					for _, a := range r.Aggs {
						le(uint64(a))
					}
				}
				le(uint32(len(rs.Sketches)))
				for _, kb := range rs.Sketches {
					for _, k := range kb.Key {
						le(k)
					}
					le(uint32(len(kb.Blob)))
					le(kb.Blob)
				}
			}
		}
		le(uint32(len(e.windowLeds)))
		for _, l := range e.windowLeds {
			le(l.Window)
			le(l.Start)
			le(l.End)
			le(l.Stats.Offered)
			le(l.Stats.Processed)
			le(l.Stats.Dropped)
			le(l.Stats.Late)
		}
		le(uint64(len(e.windowRows)))
		for i := range e.windowRows {
			r := &e.windowRows[i]
			le(uint32(r.Rel))
			le(r.Window)
			le(r.Start)
			le(r.End)
			for _, k := range r.Key {
				le(k)
			}
			for _, a := range r.Aggs {
				le(uint64(a))
			}
			le(uint8(len(r.Sketch)))
			for _, s := range r.Sketch {
				le(math.Float64bits(s))
			}
		}
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteCheckpointFile writes a checkpoint atomically: a temp file in the
// same directory is renamed over path, so a crash mid-write never
// corrupts the previous checkpoint.
func (e *Engine) WriteCheckpointFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := e.Checkpoint(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Restore loads a checkpoint into a freshly constructed engine for the
// same workload (queries, M, seed) and returns the stream position: the
// number of records the checkpointed engine had consumed, i.e. how many
// leading records of the replayed stream to skip (stream.NewSkipSource)
// before resuming Process. The plan is rebuilt deterministically from the
// restored group counts; measured flow lengths are not carried over, so
// the resumed plan may differ marginally from the one running at the
// crash — answers stay exact under any plan.
func (e *Engine) Restore(r io.Reader) (consumed uint64, err error) {
	if e.consumed != 0 || e.stats.Epochs != 0 {
		return 0, fmt.Errorf("core: Restore requires a freshly constructed engine")
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if string(magic) != ckptMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrBadCheckpoint, magic)
	}
	var rerr error
	le := func(v any) {
		if rerr == nil {
			rerr = binary.Read(br, binary.LittleEndian, v)
		}
	}
	readDeg := func() Degradation {
		var d Degradation
		le(&d.Epoch)
		le(&d.Offered)
		le(&d.Processed)
		le(&d.Dropped)
		le(&d.Late)
		return d
	}
	var version uint8
	le(&version)
	if rerr == nil && (version < ckptVersionV1 || version > ckptVersion) {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, version)
	}
	if rerr == nil && version < 4 && e.winComposer != nil {
		// A windowed workload only ever writes v4 images, so an older
		// version here means a relabeled or foreign image; accepting it
		// would silently drop the pane state.
		return 0, fmt.Errorf("%w: windowed workload requires a v4 checkpoint, got v%d", ErrBadCheckpoint, version)
	}
	var hash uint64
	le(&hash)
	if rerr == nil && hash != e.workloadHash() {
		return 0, fmt.Errorf("%w: checkpoint is for a different workload (queries, M, or seed changed)", ErrBadCheckpoint)
	}
	var epochs, replans, peakRepairs, resultErrors uint64
	le(&consumed)
	le(&epochs)
	le(&replans)
	le(&peakRepairs)
	le(&resultErrors)
	var ops lfta.Ops
	le(&ops.Probes)
	le(&ops.Transfers)
	le(&ops.Records)
	var started uint8
	var cur uint32
	var regressed uint64
	le(&started)
	le(&cur)
	le(&regressed)
	cumDeg := readDeg()
	var nHist uint32
	le(&nHist)
	if rerr == nil && nHist > ckptMaxHistory {
		return 0, fmt.Errorf("%w: implausible history length %d", ErrBadCheckpoint, nHist)
	}
	var hist []Degradation
	for i := uint32(0); rerr == nil && i < nHist; i++ {
		hist = append(hist, readDeg())
	}
	var nGroups uint32
	le(&nGroups)
	if rerr == nil && nGroups > ckptMaxGroups {
		return 0, fmt.Errorf("%w: implausible group count %d", ErrBadCheckpoint, nGroups)
	}
	groups := feedgraph.GroupCounts{}
	for i := uint32(0); rerr == nil && i < nGroups; i++ {
		var rel uint32
		var bits uint64
		le(&rel)
		le(&bits)
		groups[attr.Set(rel)] = math.Float64frombits(bits)
	}
	var nRows uint64
	le(&nRows)
	if rerr == nil && nRows > ckptMaxRows {
		return 0, fmt.Errorf("%w: implausible row count %d", ErrBadCheckpoint, nRows)
	}
	type ckptRow struct {
		rel   attr.Set
		epoch uint32
		key   []uint32
		aggs  []int64
	}
	var rows []ckptRow
	for i := uint64(0); rerr == nil && i < nRows; i++ {
		var rel uint32
		var epoch uint32
		var keyLen, aggLen uint8
		le(&rel)
		le(&epoch)
		le(&keyLen)
		if rerr == nil {
			// Rows must belong to the workload with the query's exact
			// arity: the aggregator's key packing assumes both.
			rs := attr.Set(rel)
			known := false
			for _, q := range e.queries {
				if q == rs {
					known = true
					break
				}
			}
			if !known {
				return 0, fmt.Errorf("%w: row for %v, not a workload query", ErrBadCheckpoint, rs)
			}
			if int(keyLen) != rs.Size() {
				return 0, fmt.Errorf("%w: row key arity %d for %v", ErrBadCheckpoint, keyLen, rs)
			}
		}
		key := make([]uint32, keyLen)
		for j := range key {
			le(&key[j])
		}
		le(&aggLen)
		if rerr == nil && int(aggLen) != len(e.aggs) {
			return 0, fmt.Errorf("%w: row has %d aggregates, workload has %d", ErrBadCheckpoint, aggLen, len(e.aggs))
		}
		aggs := make([]int64, aggLen)
		for j := range aggs {
			var u uint64
			le(&u)
			aggs[j] = int64(u)
		}
		rows = append(rows, ckptRow{rel: attr.Set(rel), epoch: epoch, key: key, aggs: aggs})
	}

	// Version-2 section: shed-policy state, measured flow lengths, and the
	// sharded-deployment state. A v1 image stops here and every v2 field
	// defaults to fresh state.
	var shedWords []uint64
	flows := map[attr.Set]float64{}
	var nCkptShards uint32
	var shardWeights []float64
	var shardRouted []uint64
	var shardCum []Degradation
	var shardHist [][]Degradation
	if rerr == nil && version >= 2 {
		var nWords uint32
		le(&nWords)
		if rerr == nil && nWords > ckptMaxShedWords {
			return 0, fmt.Errorf("%w: implausible shed-state size %d", ErrBadCheckpoint, nWords)
		}
		for i := uint32(0); rerr == nil && i < nWords; i++ {
			var wd uint64
			le(&wd)
			shedWords = append(shedWords, wd)
		}
		var nFlows uint32
		le(&nFlows)
		if rerr == nil && nFlows > ckptMaxGroups {
			return 0, fmt.Errorf("%w: implausible flow-length count %d", ErrBadCheckpoint, nFlows)
		}
		for i := uint32(0); rerr == nil && i < nFlows; i++ {
			var rel uint32
			var bits uint64
			le(&rel)
			le(&bits)
			l := math.Float64frombits(bits)
			if rerr == nil && (math.IsNaN(l) || math.IsInf(l, 0) || l < 0) {
				return 0, fmt.Errorf("%w: flow length %v for %v", ErrBadCheckpoint, l, attr.Set(rel))
			}
			flows[attr.Set(rel)] = l
		}
		le(&nCkptShards)
		if rerr == nil && nCkptShards > ckptMaxShards {
			return 0, fmt.Errorf("%w: implausible shard count %d", ErrBadCheckpoint, nCkptShards)
		}
		if rerr == nil && nCkptShards > 1 {
			for i := uint32(0); rerr == nil && i < nCkptShards; i++ {
				var bits uint64
				le(&bits)
				w := math.Float64frombits(bits)
				if rerr == nil && (math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 || w > 1) {
					return 0, fmt.Errorf("%w: shard weight %v out of range", ErrBadCheckpoint, w)
				}
				shardWeights = append(shardWeights, w)
				var routed uint64
				le(&routed)
				shardRouted = append(shardRouted, routed)
				shardCum = append(shardCum, readDeg())
			}
			var nShardHist uint32
			le(&nShardHist)
			if rerr == nil && nShardHist > ckptMaxHistory {
				return 0, fmt.Errorf("%w: implausible shard history length %d", ErrBadCheckpoint, nShardHist)
			}
			for i := uint32(0); rerr == nil && i < nShardHist; i++ {
				epoch := make([]Degradation, nCkptShards)
				for j := range epoch {
					epoch[j] = readDeg()
				}
				shardHist = append(shardHist, epoch)
			}
		}
	}

	// Version-3 footer: the durability ledger of the epoch-store pipeline.
	var durPersisted, durQueueFull uint32
	var durUnpersisted []uint32
	haveDurability := false
	if rerr == nil && version >= 3 {
		haveDurability = true
		le(&durPersisted)
		le(&durQueueFull)
		var nUnp uint32
		le(&nUnp)
		if rerr == nil && nUnp > ckptMaxHistory {
			return 0, fmt.Errorf("%w: implausible unpersisted-epoch count %d", ErrBadCheckpoint, nUnp)
		}
		for i := uint32(0); rerr == nil && i < nUnp; i++ {
			var ep uint32
			le(&ep)
			durUnpersisted = append(durUnpersisted, ep)
		}
	}

	// Version-4 section: the sliding-window composer state. Parsed only
	// into local state here; the composer is mutated after every
	// cross-check passes.
	knownRel := func(rel attr.Set) bool {
		for _, q := range e.queries {
			if q == rel {
				return true
			}
		}
		return false
	}
	var winNext uint64
	var winPanes []hfta.PaneSnapshot
	var winLeds []hfta.WindowLedger
	var winRows []hfta.WindowRow
	haveWindow := false
	if rerr == nil && version >= 4 {
		haveWindow = true
		if e.winComposer == nil {
			return 0, fmt.Errorf("%w: checkpoint carries window state but the workload is tumbling", ErrBadCheckpoint)
		}
		spec := e.winComposer.Spec()
		var size, slide uint32
		le(&size)
		le(&slide)
		if rerr == nil && (size != spec.Size || slide != spec.Slide) {
			return 0, fmt.Errorf("%w: window %d/%d, engine runs %d/%d", ErrBadCheckpoint, size, slide, spec.Size, spec.Slide)
		}
		var nSaggs uint32
		le(&nSaggs)
		if rerr == nil && int(nSaggs) != len(e.sketchAggs) {
			return 0, fmt.Errorf("%w: %d sketch aggregates, workload has %d", ErrBadCheckpoint, nSaggs, len(e.sketchAggs))
		}
		for i := uint32(0); rerr == nil && i < nSaggs; i++ {
			var kind uint8
			var input int64
			var qbits uint64
			le(&kind)
			le(&input)
			le(&qbits)
			if rerr == nil {
				sa := e.sketchAggs[i]
				if sketch.AggKind(kind) != sa.Kind || int(input) != sa.Input || math.Float64frombits(qbits) != sa.Q {
					return 0, fmt.Errorf("%w: sketch aggregate %d differs from the workload", ErrBadCheckpoint, i)
				}
			}
		}
		var prec uint8
		var compBits uint64
		le(&prec)
		le(&compBits)
		if rerr == nil && (prec != e.sketchPrecision() || math.Float64frombits(compBits) != e.digestCompression()) {
			return 0, fmt.Errorf("%w: sketch parameters differ from the workload", ErrBadCheckpoint)
		}
		le(&winNext)
		if rerr == nil && winNext > math.MaxInt64 {
			return 0, fmt.Errorf("%w: implausible window cursor %d", ErrBadCheckpoint, winNext)
		}
		var nPanes uint32
		le(&nPanes)
		if rerr == nil && nPanes > ckptMaxPanes {
			return 0, fmt.Errorf("%w: implausible pane count %d", ErrBadCheckpoint, nPanes)
		}
		for i := uint32(0); rerr == nil && i < nPanes; i++ {
			var ps hfta.PaneSnapshot
			le(&ps.Epoch)
			le(&ps.Stats.Offered)
			le(&ps.Stats.Processed)
			le(&ps.Stats.Dropped)
			le(&ps.Stats.Late)
			var nRels uint8
			le(&nRels)
			if rerr == nil && int(nRels) > len(e.queries) {
				return 0, fmt.Errorf("%w: pane %d names %d relations, workload has %d", ErrBadCheckpoint, ps.Epoch, nRels, len(e.queries))
			}
			for j := uint8(0); rerr == nil && j < nRels; j++ {
				var rel uint32
				le(&rel)
				rs := hfta.PaneRelSnapshot{Rel: attr.Set(rel)}
				if rerr == nil && !knownRel(rs.Rel) {
					return 0, fmt.Errorf("%w: pane %d names %v, not a workload query", ErrBadCheckpoint, ps.Epoch, rs.Rel)
				}
				arity := rs.Rel.Size()
				var nRows uint32
				le(&nRows)
				if rerr == nil && uint64(nRows) > ckptMaxRows {
					return 0, fmt.Errorf("%w: implausible pane row count %d", ErrBadCheckpoint, nRows)
				}
				for r := uint32(0); rerr == nil && r < nRows; r++ {
					key := make([]uint32, arity)
					for k := range key {
						le(&key[k])
					}
					aggs := make([]int64, len(e.aggs))
					for a := range aggs {
						var u uint64
						le(&u)
						aggs[a] = int64(u)
					}
					rs.Rows = append(rs.Rows, hfta.Row{Rel: rs.Rel, Epoch: ps.Epoch, Key: key, Aggs: aggs})
				}
				var nSk uint32
				le(&nSk)
				if rerr == nil && uint64(nSk) > ckptMaxRows {
					return 0, fmt.Errorf("%w: implausible pane sketch count %d", ErrBadCheckpoint, nSk)
				}
				for s := uint32(0); rerr == nil && s < nSk; s++ {
					key := make([]uint32, arity)
					for k := range key {
						le(&key[k])
					}
					var blobLen uint32
					le(&blobLen)
					if rerr == nil && blobLen > ckptMaxBlob {
						return 0, fmt.Errorf("%w: implausible sketch blob size %d", ErrBadCheckpoint, blobLen)
					}
					blob := make([]byte, blobLen)
					le(blob)
					rs.Sketches = append(rs.Sketches, hfta.KeyBlob{Key: key, Blob: blob})
				}
				ps.Rels = append(ps.Rels, rs)
			}
			winPanes = append(winPanes, ps)
		}
		var nLeds uint32
		le(&nLeds)
		if rerr == nil && nLeds > ckptMaxHistory {
			return 0, fmt.Errorf("%w: implausible window ledger count %d", ErrBadCheckpoint, nLeds)
		}
		for i := uint32(0); rerr == nil && i < nLeds; i++ {
			var l hfta.WindowLedger
			le(&l.Window)
			le(&l.Start)
			le(&l.End)
			le(&l.Stats.Offered)
			le(&l.Stats.Processed)
			le(&l.Stats.Dropped)
			le(&l.Stats.Late)
			winLeds = append(winLeds, l)
		}
		var nWRows uint64
		le(&nWRows)
		if rerr == nil && nWRows > ckptMaxRows {
			return 0, fmt.Errorf("%w: implausible window row count %d", ErrBadCheckpoint, nWRows)
		}
		for i := uint64(0); rerr == nil && i < nWRows; i++ {
			var rel uint32
			le(&rel)
			r := hfta.WindowRow{Rel: attr.Set(rel)}
			if rerr == nil && !knownRel(r.Rel) {
				return 0, fmt.Errorf("%w: window row for %v, not a workload query", ErrBadCheckpoint, r.Rel)
			}
			le(&r.Window)
			le(&r.Start)
			le(&r.End)
			r.Key = make([]uint32, r.Rel.Size())
			for k := range r.Key {
				le(&r.Key[k])
			}
			r.Aggs = make([]int64, len(e.aggs))
			for a := range r.Aggs {
				var u uint64
				le(&u)
				r.Aggs[a] = int64(u)
			}
			var skLen uint8
			le(&skLen)
			if rerr == nil && int(skLen) != len(e.sketchAggs) {
				return 0, fmt.Errorf("%w: window row has %d sketch slots, workload has %d", ErrBadCheckpoint, skLen, len(e.sketchAggs))
			}
			r.Sketch = make([]float64, skLen)
			for s := range r.Sketch {
				var bits uint64
				le(&bits)
				r.Sketch[s] = math.Float64frombits(bits)
			}
			winRows = append(winRows, r)
		}
	}
	if rerr != nil {
		return 0, fmt.Errorf("%w: truncated: %v", ErrBadCheckpoint, rerr)
	}

	// Cross-checks against the engine's own configuration before any state
	// is mutated: the group counts must cover (and be sane for) the
	// feeding graph, the shard count must match the deployment, and a
	// stateful shed image needs a policy able to absorb it.
	for _, rel := range e.graph.Relations() {
		g, err := groups.Get(rel)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
		if math.IsNaN(g) || math.IsInf(g, 0) || g <= 0 {
			return 0, fmt.Errorf("%w: group count %v for %v", ErrBadCheckpoint, g, rel)
		}
	}
	if version >= 2 && int(nCkptShards) != e.nShards && !(nCkptShards <= 1 && e.nShards <= 1) {
		return 0, fmt.Errorf("%w: checkpoint has %d shards, engine runs %d", ErrBadCheckpoint, nCkptShards, e.NumShards())
	}
	var shedCarrier ShedPolicyState
	if len(shedWords) > 0 {
		carrier, ok := e.shedder.(ShedPolicyState)
		if !ok {
			return 0, fmt.Errorf("%w: checkpoint carries shed-policy state but the engine's policy is stateless", ErrBadCheckpoint)
		}
		shedCarrier = carrier
	}

	e.groups = groups
	if len(flows) > 0 {
		e.installFlowLens(flows)
	}
	if err := e.replan(); err != nil {
		return 0, err
	}
	if shedCarrier != nil {
		if err := shedCarrier.RestoreShedState(shedWords); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	}
	if e.nShards > 1 && len(shardWeights) == e.nShards {
		// The weights restore bit-exactly (no renormalization): the
		// resumed run must slice the budget exactly as the crashed run
		// would have, or the byte-identity of its shed decisions breaks.
		copy(e.shardWeight, shardWeights)
		copy(e.shardRouted, shardRouted)
		copy(e.shardCum, shardCum)
		e.shardHist = shardHist
		for i := range e.shardDeg {
			e.shardDeg[i] = Degradation{}
		}
	}
	e.totalOps = ops // the fresh runtime's counters are zero
	e.consumed = consumed
	e.stats.Epochs = int(epochs)
	e.stats.Replans = int(replans)
	e.stats.PeakRepairs = int(peakRepairs)
	e.stats.ResultErrors = int(resultErrors)
	e.clock.RestoreSnapshot(started != 0, cur, regressed)
	e.cumDeg = cumDeg
	e.degHist = hist
	e.deg = Degradation{}
	e.degInit = false
	for _, r := range rows {
		e.agg.Consume(lfta.Eviction{Rel: r.rel, Key: r.key, Aggs: r.aggs, Epoch: r.epoch})
	}
	if haveDurability {
		e.durable.restore(int(durPersisted), durUnpersisted, int(durQueueFull))
	}
	if haveWindow {
		if err := e.winComposer.RestorePanes(int64(winNext), winPanes); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
		e.windowLeds = winLeds
		e.windowRows = winRows
		e.stats.Windows = len(winLeds)
	}
	if e.persist != nil {
		// With a store attached its contents are authoritative over the
		// footer: an epoch persisted after the checkpoint was written, or
		// lost with the store's disk, is reclassified here. Callers that
		// also want the rows back run ReplayStore (which reconciles too).
		e.reconcileStore()
	}
	return consumed, nil
}

// RestoreCheckpointFile restores from the named checkpoint file; see
// Restore.
func (e *Engine) RestoreCheckpointFile(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return e.Restore(f)
}
