package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/attr"
	"repro/internal/hfta"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// windowSQL builds the windowed workload: two queries differing only in
// grouping, each carrying exact aggregates plus all three sketch kinds.
func windowSQL(size, slide uint32) []string {
	const aggs = "count(*) as cnt, sum(C) as sc, max(D) as mx, " +
		"count_distinct(D) as uniq, median(C), percentile(C, 90) as p90"
	w := fmt.Sprintf("window %d slide %d", size, slide)
	return []string{
		fmt.Sprintf("select A, B, %s from R group by A, B, time/10 %s", aggs, w),
		fmt.Sprintf("select B, C, %s from R group by B, C, time/10 %s", aggs, w),
	}
}

// runWindowed builds a windowed engine from the workload SQL, runs the
// record slice through it, and returns it finished.
func runWindowed(t *testing.T, sqls []string, recs []stream.Record, opts Options) *Engine {
	t.Helper()
	e, err := NewFromSample(sqls, recs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Windowed() {
		t.Fatal("windowed workload built a tumbling engine")
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	return e
}

// assertRankIn checks est's rank within the exact sorted value set is
// within tolerance of quantile q (duplicates give the estimate a rank
// interval, not a point).
func assertRankIn(t *testing.T, vals []float64, est, q float64, ctx string) {
	t.Helper()
	if len(vals) == 0 {
		return
	}
	n := float64(len(vals))
	lo := float64(sort.SearchFloat64s(vals, est)) / n
	hi := float64(sort.Search(len(vals), func(i int) bool { return vals[i] > est })) / n
	tol := 0.08 + 1.0/n
	if q < lo-tol || q > hi+tol {
		t.Fatalf("%s: estimate %v covers ranks [%.3f, %.3f], want %.2f ± %.3f (n=%d)",
			ctx, est, lo, hi, q, tol, len(vals))
	}
}

// compareEngineToOracle checks the engine's closed windows — ledgers and
// rows — against the brute-force oracle: exact slots and HLL estimates
// bitwise, t-digest estimates by rank error against the exact value set.
func compareEngineToOracle(t *testing.T, e *Engine, want []hfta.OracleWindow) {
	t.Helper()
	leds := e.WindowLedgers()
	if len(leds) != len(want) {
		t.Fatalf("engine closed %d windows, oracle has %d", len(leds), len(want))
	}
	rows := e.WindowResults()
	used := 0
	for i, ow := range want {
		if leds[i] != ow.Ledger {
			t.Fatalf("window %d: ledger %+v, oracle %+v", i, leds[i], ow.Ledger)
		}
		if st := leds[i].Stats; st.Offered != st.Processed+st.Dropped+st.Late {
			t.Fatalf("window %d: ledger identity broken: %+v", i, st)
		}
		var grows []hfta.WindowRow
		for _, r := range rows {
			if r.Window == ow.Ledger.Window {
				grows = append(grows, r)
			}
		}
		used += len(grows)
		if len(grows) != len(ow.Rows) {
			t.Fatalf("window %d: engine has %d rows, oracle %d", i, len(grows), len(ow.Rows))
		}
		for j := range grows {
			gr, wr := grows[j], ow.Rows[j]
			if gr.Rel != wr.Rel || gr.Window != wr.Window || gr.Start != wr.Start || gr.End != wr.End ||
				!reflect.DeepEqual(gr.Key, wr.Key) || !reflect.DeepEqual(gr.Aggs, wr.Aggs) {
				t.Fatalf("window %d row %d:\n got %+v\nwant %+v", i, j, gr, wr)
			}
			for s := range gr.Sketch {
				if wr.ExactDistinct[s] >= 0 {
					// HLL merging is exactly associative: pane-composed
					// must equal the oracle's direct feed bitwise.
					if gr.Sketch[s] != wr.Sketch[s] {
						t.Fatalf("window %d row %d sketch %d: %v != oracle %v",
							i, j, s, gr.Sketch[s], wr.Sketch[s])
					}
					continue
				}
				assertRankIn(t, wr.Values[s], gr.Sketch[s], e.sketchAggs[s].Q,
					fmt.Sprintf("window %d row %d slot %d", i, j, s))
			}
		}
	}
	if used != len(rows) {
		t.Fatalf("%d engine window rows not matched to any oracle window", len(rows)-used)
	}
}

// TestWindowedOracleGrid is the headline property: pane-composed sliding
// windows are equivalent to brute-force recomputation across a grid of
// (size, slide) geometries — overlapping, tumbling, and sampled — on a
// clean stream and on a chaotic one with timestamp regressions.
func TestWindowedOracleGrid(t *testing.T) {
	recs, _ := testWorkload(t, 30000)
	chaotic, err := stream.Collect(stream.NewChaosSource(stream.NewSliceSource(recs), stream.ChaosOptions{
		Seed: 11, RegressEvery: 40, RegressBy: 15,
	}))
	if err != nil {
		t.Fatal(err)
	}
	streams := []struct {
		name string
		in   []stream.Record
	}{{"clean", recs}, {"chaos", chaotic}}
	grid := []hfta.WindowSpec{
		{Size: 1, Slide: 1}, // tumbling
		{Size: 3, Slide: 2}, // overlapping
		{Size: 4, Slide: 2}, // size a multiple of slide
		{Size: 2, Slide: 3}, // sampled: epochs skipped between windows
		{Size: 5, Slide: 5}, // coarse tumbling
	}
	for _, st := range streams {
		for _, win := range grid {
			t.Run(fmt.Sprintf("%s/size=%d,slide=%d", st.name, win.Size, win.Slide), func(t *testing.T) {
				e := runWindowed(t, windowSQL(win.Size, win.Slide), st.in, Options{M: 8000, Seed: 3})
				want := hfta.WindowOracle(st.in, e.queries, e.aggs, e.sketchAggs, 0, 0, e.epochLen, win)
				compareEngineToOracle(t, e, want)
			})
		}
	}
}

// TestWindowedShardEquivalence: sketch accumulation runs on the
// single-threaded admission path, so windowed results — including sketch
// estimates — are bitwise identical across shard counts, and all equal
// the oracle (satellite of the shard-equivalence suite).
func TestWindowedShardEquivalence(t *testing.T) {
	recs, _ := testWorkload(t, 30000)
	sqls := windowSQL(4, 2)
	var base *Engine
	for _, shards := range []int{0, 2, 4, 8} {
		e := runWindowed(t, sqls, recs, Options{M: 8000, Seed: 3, Shards: shards})
		if base == nil {
			base = e
			want := hfta.WindowOracle(recs, e.queries, e.aggs, e.sketchAggs, 0, 0, e.epochLen, hfta.WindowSpec{Size: 4, Slide: 2})
			compareEngineToOracle(t, e, want)
			continue
		}
		if !reflect.DeepEqual(e.WindowLedgers(), base.WindowLedgers()) {
			t.Fatalf("shards=%d: window ledgers differ from single deployment", shards)
		}
		if !reflect.DeepEqual(e.WindowResults(), base.WindowResults()) {
			t.Fatalf("shards=%d: windowed rows differ from single deployment", shards)
		}
	}
}

// TestWindowedKillRestore: kill the engine mid-window, restore from the
// v4 checkpoint, and finish — the full window output matches the
// uninterrupted run, and the restored engine re-serializes the image
// byte-identically (panes and sketch blobs carried verbatim).
func TestWindowedKillRestore(t *testing.T) {
	recs, _ := testWorkload(t, 30000)
	sqls := windowSQL(3, 2)
	opts := Options{M: 8000, Seed: 3}

	ref := runWindowed(t, sqls, recs, opts)
	wantLeds, wantRows := ref.WindowLedgers(), ref.WindowResults()
	if len(wantLeds) == 0 {
		t.Fatal("reference run closed no windows")
	}

	ckpt := filepath.Join(t.TempDir(), "win.ckpt")
	copts := opts
	copts.CheckpointPath = ckpt
	e1, err := NewFromSample(sqls, recs, copts)
	if err != nil {
		t.Fatal(err)
	}
	const crashAt = 17000
	for i := 0; i < crashAt; i++ {
		if err := e1.Process(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if e1.Stats().Epochs == 0 {
		t.Fatal("crash point never crossed an epoch boundary")
	}
	img, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if img[4] != ckptVersion {
		t.Fatalf("windowed image version = %d; want v%d", img[4], ckptVersion)
	}

	e2, err := NewFromSample(sqls, recs, opts)
	if err != nil {
		t.Fatal(err)
	}
	consumed, err := e2.Restore(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if e2.winComposer.PaneCount() == 0 && e2.winComposer.Next() == 0 && len(e2.WindowLedgers()) == 0 {
		t.Fatal("restore carried no window state; the kill point is vacuous")
	}
	// Byte identity before any further input: restore → checkpoint must
	// reproduce the image exactly.
	var buf bytes.Buffer
	if err := e2.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), img) {
		t.Fatal("restored engine does not re-serialize the v4 image byte-identically")
	}
	if err := e2.Run(stream.NewSkipSource(stream.NewSliceSource(recs), consumed)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e2.WindowLedgers(), wantLeds) {
		t.Fatal("restored run's window ledgers differ from the uninterrupted run")
	}
	if !reflect.DeepEqual(e2.WindowResults(), wantRows) {
		t.Fatal("restored run's windowed rows differ from the uninterrupted run")
	}
}

// TestChaosWindowLedger: timestamp regressions crossing a pane boundary
// count as Late in the window ledger, and every window's ledger obeys
// Offered == Processed + Dropped + Late. With tumbling windows each
// observed epoch lands in exactly one window, so the ledgers also sum to
// the engine's global degradation ledger.
func TestChaosWindowLedger(t *testing.T) {
	recs, _ := testWorkload(t, 30000)
	chaotic, err := stream.Collect(stream.NewChaosSource(stream.NewSliceSource(recs), stream.ChaosOptions{
		Seed: 7, RegressEvery: 25, RegressBy: 30,
	}))
	if err != nil {
		t.Fatal(err)
	}
	e := runWindowed(t, windowSQL(2, 2), chaotic, Options{M: 8000, Seed: 3})
	total := e.Stats().Degradation
	if total.Late == 0 {
		t.Fatal("chaos stream produced no late records; the ledger check is vacuous")
	}
	var sum hfta.PaneStats
	for _, l := range e.WindowLedgers() {
		if l.Stats.Offered != l.Stats.Processed+l.Stats.Dropped+l.Stats.Late {
			t.Fatalf("window %d ledger identity broken: %+v", l.Window, l.Stats)
		}
		sum.Offered += l.Stats.Offered
		sum.Processed += l.Stats.Processed
		sum.Dropped += l.Stats.Dropped
		sum.Late += l.Stats.Late
	}
	if sum.Offered != total.Offered || sum.Processed != total.Processed ||
		sum.Dropped != total.Dropped || sum.Late != total.Late {
		t.Fatalf("tumbling window ledgers sum to %+v; engine ledger %+v", sum, total)
	}
	diag, err := e.Diagnostics()
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Windows) != len(e.WindowLedgers()) {
		t.Fatalf("Diagnostics carries %d window ledgers; engine closed %d", len(diag.Windows), len(e.WindowLedgers()))
	}
	if diag.RetainedPanes != 0 {
		t.Fatalf("finished engine retains %d panes; want 0", diag.RetainedPanes)
	}
}

// TestLateFirstRecordOpensLedger pins the boundary fix: a late record
// arriving as the first record of its accounting epoch (possible right
// after a restore, before any on-time record) must open the ledger so
// its pane still closes — otherwise the window ledgers would lose it and
// the Offered identity would break.
func TestLateFirstRecordOpensLedger(t *testing.T) {
	recs, _ := testWorkload(t, 30000)
	sqls := windowSQL(1, 1)
	opts := Options{M: 8000, Seed: 3}
	ckpt := filepath.Join(t.TempDir(), "late.ckpt")
	copts := opts
	copts.CheckpointPath = ckpt
	e1, err := NewFromSample(sqls, recs, copts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17000; i++ {
		if err := e1.Process(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	e2, err := NewFromSample(sqls, recs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RestoreCheckpointFile(ckpt); err != nil {
		t.Fatal(err)
	}
	_, cur, _ := e2.clock.Snapshot()
	if cur == 0 {
		t.Fatal("restored clock at epoch 0; late-first scenario needs progress")
	}
	before := uint64(0)
	for _, l := range e2.WindowLedgers() {
		before += l.Stats.Late
	}
	// The only post-restore record is late: a timestamp from epoch 0.
	lateRec := recs[0]
	lateRec.Time = 0
	if err := e2.Process(lateRec); err != nil {
		t.Fatal(err)
	}
	if err := e2.Finish(); err != nil {
		t.Fatal(err)
	}
	hist := e2.EpochDegradations()
	last := hist[len(hist)-1]
	if last.Epoch != cur || last.Offered != 1 || last.Late != 1 {
		t.Fatalf("trailing ledger %+v; want epoch %d with 1 offered, 1 late", last, cur)
	}
	var after uint64
	for _, l := range e2.WindowLedgers() {
		after += l.Stats.Late
	}
	if after != before+1 {
		t.Fatalf("window ledgers count %d late records; want %d (the trailing late must reach a pane)", after, before+1)
	}
}

// TestWindowedHaving: HAVING applies to the composed window aggregates
// at window close, not to per-pane values.
func TestWindowedHaving(t *testing.T) {
	recs, _ := testWorkload(t, 30000)
	plain := windowSQL(3, 2)
	const threshold = 40
	having := make([]string, len(plain))
	for i, s := range plain {
		having[i] = s + fmt.Sprintf(" having cnt > %d", threshold)
	}
	all := runWindowed(t, plain, recs, Options{M: 8000, Seed: 3})
	filtered := runWindowed(t, having, recs, Options{M: 8000, Seed: 3})
	if !reflect.DeepEqual(all.WindowLedgers(), filtered.WindowLedgers()) {
		t.Fatal("HAVING changed the window ledgers; it must only filter rows")
	}
	var want []hfta.WindowRow
	for _, r := range all.WindowResults() {
		if r.Aggs[0] > threshold {
			want = append(want, r)
		}
	}
	got := filtered.WindowResults()
	if len(want) == len(all.WindowResults()) || len(want) == 0 {
		t.Fatalf("threshold %d filters nothing or everything (%d of %d); vacuous", threshold, len(want), len(all.WindowResults()))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HAVING kept %d rows; manual filter keeps %d", len(got), len(want))
	}
}

// TestWindowHandlerStreams: with an OnWindow handler installed, windows
// stream out (HAVING applied) instead of accumulating, matching the
// retained rows of a handlerless run.
func TestWindowHandlerStreams(t *testing.T) {
	recs, _ := testWorkload(t, 30000)
	sqls := windowSQL(3, 2)
	ref := runWindowed(t, sqls, recs, Options{M: 8000, Seed: 3})

	var gotRows []hfta.WindowRow
	var gotLeds []hfta.WindowLedger
	seen := map[uint32]bool{}
	opts := Options{M: 8000, Seed: 3}
	opts.OnWindow = func(rel attr.Set, led hfta.WindowLedger, rows []hfta.WindowRow) {
		if !seen[led.Window] {
			seen[led.Window] = true
			gotLeds = append(gotLeds, led)
		}
		// Deep-copy: row storage is recycled after delivery, so a
		// retaining handler must copy the inner slices too.
		for _, r := range rows {
			r.Key = append([]uint32(nil), r.Key...)
			r.Aggs = append([]int64(nil), r.Aggs...)
			if r.Sketch != nil {
				r.Sketch = append([]float64(nil), r.Sketch...)
			}
			gotRows = append(gotRows, r)
		}
	}
	e := runWindowed(t, sqls, recs, opts)
	if len(e.WindowResults()) != 0 {
		t.Fatal("handler installed but rows still accumulated")
	}
	if !reflect.DeepEqual(gotLeds, ref.WindowLedgers()) {
		t.Fatal("streamed ledgers differ from retained ledgers")
	}
	if !reflect.DeepEqual(gotRows, ref.WindowResults()) {
		t.Fatal("streamed rows differ from retained rows")
	}
}

// TestSketchOnlyTumbling: a workload with sketch aggregates and no
// window clause runs as size-1 tumbling windows — one result per epoch,
// sketches evaluated per epoch.
func TestSketchOnlyTumbling(t *testing.T) {
	recs, _ := testWorkload(t, 20000)
	sqls := []string{
		"select A, B, count(*) as cnt, count_distinct(D) as uniq from R group by A, B, time/10",
		"select B, C, count(*) as cnt, count_distinct(D) as uniq from R group by B, C, time/10",
	}
	e := runWindowed(t, sqls, recs, Options{M: 8000, Seed: 3})
	if spec := e.winComposer.Spec(); spec.Size != 1 || spec.Slide != 1 {
		t.Fatalf("sketch-only workload composes %+v; want 1/1 tumbling", spec)
	}
	want := hfta.WindowOracle(recs, e.queries, e.aggs, e.sketchAggs, 0, 0, e.epochLen, hfta.WindowSpec{Size: 1, Slide: 1})
	compareEngineToOracle(t, e, want)
	for _, r := range e.WindowResults() {
		if len(r.Sketch) != len(e.sketchAggs) {
			t.Fatalf("row carries %d sketch slots; want %d", len(r.Sketch), len(e.sketchAggs))
		}
	}
	_ = sketch.DefaultPrecision // anchor the import: precision defaults flow through NewComposer
}
