package core

import (
	"fmt"
	"math"

	"repro/internal/stream"
)

// Degradation is the honest accounting of one epoch's overload behaviour:
// how many records the engine was offered (after the WHERE filter), how
// many it processed exactly, how many it shed for lack of capacity, and
// how many arrived too late for their epoch. The invariant
//
//	Offered == Processed + Dropped + Late
//
// holds at every epoch boundary: every record is accounted for exactly
// once. Answers remain exact over the Processed records; the counters
// quantify what the exactness covers.
type Degradation struct {
	Epoch     uint32
	Offered   uint64
	Processed uint64
	Dropped   uint64 // shed by overload control before any hash-table work
	Late      uint64 // timestamp regressed into an already-closed epoch
}

// SheddingRate returns (Dropped+Late)/Offered, the fraction of the
// offered stream the epoch's answers do not cover.
func (d Degradation) SheddingRate() float64 {
	if d.Offered == 0 {
		return 0
	}
	return float64(d.Dropped+d.Late) / float64(d.Offered)
}

// add folds another epoch's counters into a cumulative total.
func (d *Degradation) add(o Degradation) {
	d.Offered += o.Offered
	d.Processed += o.Processed
	d.Dropped += o.Dropped
	d.Late += o.Late
}

// ShedPolicy decides which records to shed when the engine runs with a
// processing budget (Options.Budget). Admit is consulted for every
// offered record; exhausted reports whether the current stream time
// unit's budget is already spent. EpochEnd delivers the closed epoch's
// degradation so adaptive policies can steer. Policies are used from a
// single goroutine.
type ShedPolicy interface {
	Admit(rec stream.Record, exhausted bool) bool
	EpochEnd(d Degradation)
}

// ShedPolicyState is optionally implemented by shed policies whose
// admission decisions depend on mutable state. Checkpoint format v2
// carries the state words across a crash, so a killed-and-restored run
// sheds exactly the records the uninterrupted run would have shed
// (byte-identical resume). Stateless policies (DropTail) need not
// implement it.
type ShedPolicyState interface {
	// ShedState returns the policy's mutable state as opaque words.
	ShedState() []uint64
	// RestoreShedState resets the policy to a state previously returned
	// by ShedState; it rejects words it cannot interpret.
	RestoreShedState(words []uint64) error
}

// DropTail is the default policy and what a NIC does at line rate: every
// record is admitted while budget remains, and everything after
// exhaustion is dropped. Drops concentrate at the tail of each time unit,
// biasing per-group counts toward early arrivals.
type DropTail struct{}

// Admit implements ShedPolicy.
func (DropTail) Admit(_ stream.Record, exhausted bool) bool { return !exhausted }

// EpochEnd implements ShedPolicy.
func (DropTail) EpochEnd(Degradation) {}

// UniformShed sheds a deterministic pseudo-random fraction of records
// spread uniformly across the epoch, instead of letting drop-tail
// truncate each time unit. The shedding rate is adapted at every epoch
// boundary toward the previous epoch's measured total shed rate (EWMA),
// so under sustained overload the policy converges to dropping the
// unavoidable fraction uniformly — keeping per-group aggregates an
// unbiased downscaling of the true ones — while still hard-dropping when
// the budget is exhausted despite sampling.
type UniformShed struct {
	rate  float64 // current proactive shed probability in [0, 1)
	alpha float64 // EWMA weight of the newest epoch's observation
	x     uint64  // splitmix64 RNG position
}

// NewUniformShed returns a uniform shedder with the given EWMA weight
// (0 < alpha <= 1; 0 defaults to 0.5) and deterministic seed.
func NewUniformShed(alpha float64, seed uint64) *UniformShed {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &UniformShed{alpha: alpha, x: seed ^ 0x5851f42d4c957f2d}
}

// next advances the splitmix64 stream one step.
func (u *UniformShed) next() uint64 {
	u.x += 0x9e3779b97f4a7c15
	z := u.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rate returns the current proactive shedding probability.
func (u *UniformShed) Rate() float64 { return u.rate }

// Admit implements ShedPolicy.
func (u *UniformShed) Admit(_ stream.Record, exhausted bool) bool {
	if exhausted {
		return false
	}
	if u.rate <= 0 {
		return true
	}
	const scale = 1 << 53
	return float64(u.next()>>11)/scale >= u.rate
}

// ShedState implements ShedPolicyState: the EWMA rate and RNG position.
func (u *UniformShed) ShedState() []uint64 {
	return []uint64{math.Float64bits(u.rate), u.x}
}

// RestoreShedState implements ShedPolicyState.
func (u *UniformShed) RestoreShedState(words []uint64) error {
	if len(words) != 2 {
		return fmt.Errorf("core: UniformShed state has %d words, want 2", len(words))
	}
	rate := math.Float64frombits(words[0])
	if math.IsNaN(rate) || rate < 0 || rate > 1 {
		return fmt.Errorf("core: UniformShed rate %v out of range", rate)
	}
	u.rate = rate
	u.x = words[1]
	return nil
}

// EpochEnd implements ShedPolicy: steer the proactive rate toward the
// epoch's measured shed rate.
func (u *UniformShed) EpochEnd(d Degradation) {
	if d.Offered == 0 {
		return
	}
	obs := float64(d.Dropped) / float64(d.Offered)
	u.rate = u.alpha*obs + (1-u.alpha)*u.rate
	if u.rate > 0.95 {
		u.rate = 0.95
	}
}
