package core

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// sumCounts folds streamed rows into per-(query, epoch) count(*) totals.
type epochKey struct {
	rel   attr.Set
	epoch uint32
}

func runShedding(t *testing.T, budget float64, shed ShedPolicy) (*Engine, map[epochKey]uint64) {
	t.Helper()
	recs, groups := testWorkload(t, 30000)
	sums := map[epochKey]uint64{}
	e, err := New(pairSQL, groups, Options{
		M:      8000,
		Seed:   3,
		Budget: budget,
		Shed:   shed,
		OnResults: func(rel attr.Set, epoch uint32, rows []hfta.Row, deg Degradation) {
			for i := range rows {
				sums[epochKey{rel, epoch}] += uint64(rows[i].Aggs[0])
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	return e, sums
}

// TestSheddingAccountingInvariant: with any policy and budget, every
// record is accounted for exactly once — Offered == Processed + Dropped +
// Late per epoch and in total — and the emitted answers are exact over
// exactly the Processed records (each query's count(*) totals sum to the
// epoch's Processed).
func TestSheddingAccountingInvariant(t *testing.T) {
	for _, tc := range []struct {
		name string
		shed ShedPolicy
	}{
		{"droptail", DropTail{}},
		{"uniform", NewUniformShed(0.5, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// 30000 records over 50 time units is 600/tick; budget 900
			// weighted units per tick affords well under 600 records once
			// probes and transfers are charged, forcing steady shedding.
			e, sums := runShedding(t, 900, tc.shed)
			degs := e.EpochDegradations()
			if len(degs) != 5 {
				t.Fatalf("closed %d epochs; want 5", len(degs))
			}
			var totalOffered, totalDropped uint64
			for _, d := range degs {
				if d.Offered != d.Processed+d.Dropped+d.Late {
					t.Errorf("epoch %d: offered %d != processed %d + dropped %d + late %d",
						d.Epoch, d.Offered, d.Processed, d.Dropped, d.Late)
				}
				totalOffered += d.Offered
				totalDropped += d.Dropped
				// Exactness over the processed records: every count(*) query
				// saw exactly the admitted records of the epoch.
				for _, q := range []string{"AB", "BC", "BD", "CD"} {
					rel := attr.MustParseSet(q)
					if got := sums[epochKey{rel, d.Epoch}]; got != d.Processed {
						t.Errorf("epoch %d query %v: counts sum to %d; processed %d",
							d.Epoch, rel, got, d.Processed)
					}
				}
			}
			if totalOffered != 30000 {
				t.Errorf("offered %d records in total; want 30000", totalOffered)
			}
			if totalDropped == 0 {
				t.Error("budget never forced a drop; the test exercises nothing")
			}
			st := e.Stats()
			if st.Degradation.Offered != st.Degradation.Processed+st.Degradation.Dropped+st.Degradation.Late {
				t.Errorf("cumulative accounting broken: %+v", st.Degradation)
			}
			if rate := st.Degradation.SheddingRate(); rate <= 0 || rate >= 1 {
				t.Errorf("shedding rate %v out of (0,1)", rate)
			}
		})
	}
}

// TestSheddingDisabledIsLossless: Budget 0 keeps the engine exact and
// accounts everything as processed.
func TestSheddingDisabledIsLossless(t *testing.T) {
	e, _ := runShedding(t, 0, nil)
	d := e.Stats().Degradation
	if d.Offered != 30000 || d.Processed != 30000 || d.Dropped != 0 || d.Late != 0 {
		t.Errorf("lossless run degraded: %+v", d)
	}
	if d.SheddingRate() != 0 {
		t.Errorf("shedding rate %v; want 0", d.SheddingRate())
	}
}

// TestUniformShedDeterminism: the same seed yields byte-identical
// degradation histories; the policy is reproducible chaos, not noise.
func TestUniformShedDeterminism(t *testing.T) {
	run := func() []Degradation {
		e, _ := runShedding(t, 900, NewUniformShed(0.5, 7))
		return e.EpochDegradations()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs closed %d vs %d epochs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("epoch %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestUniformShedAdapts: under sustained overload the uniform policy
// learns a positive proactive rate and spreads drops across each time
// unit, rather than truncating its tail like drop-tail.
func TestUniformShedAdapts(t *testing.T) {
	u := NewUniformShed(0.5, 7)
	e, _ := runShedding(t, 900, u)
	if u.Rate() <= 0 {
		t.Error("uniform shedder never adapted its rate")
	}
	if e.Stats().Degradation.Dropped == 0 {
		t.Error("no drops under overload")
	}
}

// TestLateRecordsCounted: records regressing into closed epochs are
// dropped as Late, and the remaining answers stay exact.
func TestLateRecordsCounted(t *testing.T) {
	recs, groups := testWorkload(t, 10000)
	// Push 20 records from the last epoch back to time 0 after the stream
	// has advanced: they regress across closed epoch boundaries.
	chaotic := append([]stream.Record(nil), recs...)
	for i := 0; i < 20; i++ {
		r := chaotic[len(chaotic)-1-i]
		chaotic = append(chaotic, stream.Record{Attrs: r.Attrs, Time: 0})
	}
	e, err := New(pairSQL, groups, Options{M: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(chaotic)); err != nil {
		t.Fatal(err)
	}
	d := e.Stats().Degradation
	if d.Late != 20 {
		t.Errorf("late = %d; want 20", d.Late)
	}
	if d.Offered != uint64(len(chaotic)) || d.Processed != uint64(len(recs)) {
		t.Errorf("accounting %+v; want offered %d processed %d", d, len(chaotic), len(recs))
	}
	// The on-time prefix is still answered exactly.
	want := hfta.Reference(recs, e.queries, lfta.CountStar, 10)
	if !hfta.Equal(e.AllResults(), want) {
		t.Error("late records corrupted the on-time answers")
	}
}

// TestShedOptionValidation: malformed overload options are rejected at
// construction.
func TestShedOptionValidation(t *testing.T) {
	_, groups := testWorkload(t, 1000)
	if _, err := New(pairSQL, groups, Options{M: 8000, Budget: -1}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := New(pairSQL, groups, Options{M: 8000, PeakRepairEpochs: 2}); err == nil {
		t.Error("PeakRepairEpochs without PeakEu accepted")
	}
}

// TestOnlinePeakRepair: when the measured end-of-epoch flush cost exceeds
// the configured peak for k consecutive epochs, the engine re-applies the
// peak-load repair to the live allocation and counts it.
func TestOnlinePeakRepair(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	// Underestimate the group counts 50x: the planner believes the peak
	// constraint is met, but the real stream fills far more buckets than
	// modeled, so the measured end-of-epoch flush cost violates PeakEu
	// every epoch and the repair must fire (this is exactly the model-drift
	// scenario the online repair exists for — the plan-time repair alone
	// cannot catch it).
	for r := range groups {
		groups[r] *= 0.02
		if groups[r] < 1 {
			groups[r] = 1
		}
	}
	e, err := New(pairSQL, groups, Options{
		M:                8000,
		Seed:             3,
		PeakEu:           2000,
		PeakRepairEpochs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	if e.Stats().PeakRepairs == 0 {
		t.Error("measured overload never triggered a peak repair")
	}
}
