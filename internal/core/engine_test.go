package core

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

var pairSQL = []string{
	"select A, B, count(*) as cnt from R group by A, B, time/10",
	"select B, C, count(*) as cnt from R group by B, C, time/10",
	"select B, D, count(*) as cnt from R group by B, D, time/10",
	"select C, D, count(*) as cnt from R group by C, D, time/10",
}

func testWorkload(t *testing.T, n int) ([]stream.Record, feedgraph.GroupCounts) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 800, 40)
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Uniform(rng, u, n, 50)
	queries := []attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	}
	groups, err := EstimateGroups(recs, queries)
	if err != nil {
		t.Fatal(err)
	}
	return recs, groups
}

func TestNewValidation(t *testing.T) {
	recs, groups := testWorkload(t, 1000)
	_ = recs
	if _, err := New(nil, groups, Options{M: 10000}); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := New(pairSQL, groups, Options{M: 0}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := New(pairSQL, feedgraph.GroupCounts{}, Options{M: 10000}); err == nil {
		t.Error("missing group counts accepted")
	}
	dup := append(append([]string(nil), pairSQL...),
		"select A, B, count(*) as cnt from R group by A, B, time/10")
	if _, err := New(dup, groups, Options{M: 10000}); err == nil {
		t.Error("duplicate grouping accepted")
	}
}

func TestEngineExactness(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	e, err := New(pairSQL, groups, Options{M: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	queries := []attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	}
	want := hfta.Reference(recs, queries, lfta.CountStar, 10)
	got := e.AllResults()
	if !hfta.Equal(got, want) {
		t.Fatalf("engine results differ from reference: %d vs %d rows", len(got), len(want))
	}
	st := e.Stats()
	if st.Epochs != 5 {
		t.Errorf("epochs = %d; want 5 (50s / 10s)", st.Epochs)
	}
	if st.Ops.Records != uint64(len(recs)) {
		t.Errorf("records = %d", st.Ops.Records)
	}
	if st.ModeledCost <= 0 {
		t.Errorf("modeled cost = %v", st.ModeledCost)
	}
}

func TestEnginePlansPhantoms(t *testing.T) {
	_, groups := testWorkload(t, 20000)
	e, err := New(pairSQL, groups, Options{M: 40000})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Plan().Config.Phantoms()) == 0 {
		t.Error("GCSL chose no phantoms on the pair workload")
	}
	if err := e.Plan().Config.Validate(); err != nil {
		t.Error(err)
	}
	// The graph has the Figure 4 shape.
	if len(e.Graph().Phantoms) != 4 {
		t.Errorf("graph phantoms = %v", e.Graph().Phantoms)
	}
}

func TestEngineWhereFilter(t *testing.T) {
	recs, groups := testWorkload(t, 5000)
	sqls := []string{
		"select A, count(*) as cnt from R where B >= 20 group by A, time/10",
		"select C, count(*) as cnt from R where B >= 20 group by C, time/10",
	}
	qs := []attr.Set{attr.MustParseSet("A"), attr.MustParseSet("C")}
	g2, err := EstimateGroups(recs, qs)
	if err != nil {
		t.Fatal(err)
	}
	_ = groups
	e, err := New(sqls, g2, Options{M: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	// Reference over the filtered records.
	var filtered []stream.Record
	for _, r := range recs {
		if r.Attrs[1] >= 20 {
			filtered = append(filtered, r)
		}
	}
	want := hfta.Reference(filtered, qs, lfta.CountStar, 10)
	if !hfta.Equal(e.AllResults(), want) {
		t.Error("filtered results differ from reference over filtered records")
	}
	if e.Ops().Records != uint64(len(filtered)) {
		t.Errorf("engine processed %d records; want %d after filter", e.Ops().Records, len(filtered))
	}
}

func TestEngineHaving(t *testing.T) {
	recs, _ := testWorkload(t, 20000)
	sqls := []string{
		"select A, count(*) as cnt from R group by A, time/10 having cnt > 50",
		"select B, count(*) as cnt from R group by B, time/10 having cnt > 50",
	}
	qs := []attr.Set{attr.MustParseSet("A"), attr.MustParseSet("B")}
	groups, err := EstimateGroups(recs, qs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sqls, groups, Options{M: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	relA := attr.MustParseSet("A")
	for _, epoch := range e.Epochs(relA) {
		rows, err := e.Results(relA, epoch)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Aggs[0] <= 50 {
				t.Errorf("having let through count %d", r.Aggs[0])
			}
		}
	}
	if _, err := e.Results(attr.MustParseSet("Z"), 0); err == nil {
		t.Error("results for unregistered query accepted")
	}
}

func TestEnginePeakLoadConstraint(t *testing.T) {
	_, groups := testWorkload(t, 20000)
	// First measure the unconstrained E_u, then require 90% of it.
	free, err := New(pairSQL, groups, Options{M: 40000})
	if err != nil {
		t.Fatal(err)
	}
	eu, err := cost.EndOfEpoch(free.Plan().Config, groups, free.Plan().Alloc, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []PeakMethod{PeakShrink, PeakShift} {
		e, err := New(pairSQL, groups, Options{M: 40000, PeakEu: eu * 0.9, PeakFix: method})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		got, err := cost.EndOfEpoch(e.Plan().Config, groups, e.Plan().Alloc, cost.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if got > eu*0.9 {
			t.Errorf("%s: E_u %v exceeds constraint %v", method, got, eu*0.9)
		}
	}
	bad, err := New(pairSQL, groups, Options{M: 40000, PeakEu: 1, PeakFix: "bogus"})
	if err == nil || bad != nil {
		t.Error("bogus peak method accepted")
	}
}

func TestEngineAdaptiveReplan(t *testing.T) {
	// Phase 1: balanced group counts across the queries. Phase 2: the
	// structure shifts — (A, B) cardinality explodes while C and D
	// collapse to a handful of values, so the balanced plan's allocation
	// and phantom choice become clearly suboptimal. The engine should
	// re-plan, and results must stay exact throughout.
	rng := rand.New(rand.NewSource(8))
	schema := stream.MustSchema(4)
	balanced, err := gen.UniformUniverse(rng, schema, 400, 30)
	if err != nil {
		t.Fatal(err)
	}
	skewTuples := make([][]uint32, 3000)
	for i := range skewTuples {
		skewTuples[i] = []uint32{rng.Uint32(), rng.Uint32(), uint32(i % 2), uint32(i % 3)}
	}
	skewed, err := gen.NewUniverse(schema, skewTuples)
	if err != nil {
		t.Fatal(err)
	}
	recs := append([]stream.Record(nil), gen.Uniform(rng, balanced, 20000, 50)...)
	for i, r := range gen.Uniform(rng, skewed, 20000, 50) {
		recs = append(recs, stream.Record{Attrs: r.Attrs, Time: 50 + uint32(i*50/20000)})
	}
	qs := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC"), attr.MustParseSet("BD"), attr.MustParseSet("CD")}
	// Seed the planner with phase-1 statistics only.
	groups, err := EstimateGroups(recs[:20000], qs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(pairSQL, groups, Options{
		M:     40000,
		Seed:  5,
		Adapt: AdaptOptions{Enabled: true, EveryEpochs: 1, MinImprovement: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	want := hfta.Reference(recs, qs, lfta.CountStar, 10)
	if !hfta.Equal(e.AllResults(), want) {
		t.Fatal("adaptive engine results differ from reference")
	}
	if e.Stats().Replans == 0 {
		t.Error("distribution shift triggered no re-plan")
	}
	if e.Stats().Ops.Records != uint64(len(recs)) {
		t.Errorf("ops lost across re-plans: %d records counted of %d", e.Stats().Ops.Records, len(recs))
	}
}

func TestEstimateGroupsMonotone(t *testing.T) {
	recs, groups := testWorkload(t, 10000)
	_ = recs
	if err := groups.CheckMonotone(); err != nil {
		t.Errorf("estimated groups not monotone: %v", err)
	}
}

func TestPlannerVariants(t *testing.T) {
	_, groups := testWorkload(t, 10000)
	for name, planner := range map[string]Planner{
		"GS":        GSPlanner(1.0),
		"NoPhantom": NoPhantomPlanner,
	} {
		e, err := New(pairSQL, groups, Options{M: 40000, Planner: planner})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "NoPhantom" && len(e.Plan().Config.Phantoms()) != 0 {
			t.Errorf("NoPhantom planner chose phantoms")
		}
	}
}
