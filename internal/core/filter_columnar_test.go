package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/attr"
	"repro/internal/hashtab"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/query"
	"repro/internal/stream"
)

// Equivalence suite for the vectorized WHERE path: ProcessColumnBatch
// with a compiled filter must be indistinguishable — results, ledgers,
// stream position, checkpoint contents — from feeding the same records
// through the scalar Process loop, for every tag-scan kernel the build
// supports, across batch-boundary epoch splits, shard counts, and the
// interpreted-filter baseline.

// filterSQL shares one two-conjunction DNF WHERE across both queries
// (the engine requires a common filter): with the testWorkload value
// pool of [0, 40) the first conjunction passes roughly a quarter of the
// stream and the disjunct widens it, so neither everything nor nothing
// survives.
var filterSQL = []string{
	"select A, count(*) as cnt from R where B >= 20 and C < 30 or A = 7 group by A, time/10",
	"select C, count(*) as cnt from R where B >= 20 and C < 30 or A = 7 group by C, time/10",
}

var filterQueries = []attr.Set{attr.MustParseSet("A"), attr.MustParseSet("C")}

// filterKernels enumerates the tag-scan kernel selections to run a test
// under; the caller must defer a SetSIMD restore.
func filterKernels() []bool {
	ks := []bool{false}
	if hashtab.SIMDAvailable() {
		ks = append(ks, true)
	}
	return ks
}

// applyWhere partitions a trace with the interpreted matcher — the
// oracle-side filter.
func applyWhere(t *testing.T, sql string, recs []stream.Record) []stream.Record {
	t.Helper()
	spec, err := query.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	var out []stream.Record
	for _, r := range recs {
		if spec.MatchWhere(r.Attrs) {
			out = append(out, r)
		}
	}
	if len(out) == 0 || len(out) == len(recs) {
		t.Fatalf("WHERE passes %d of %d records; the filter test is vacuous", len(out), len(recs))
	}
	return out
}

// lateWorkload clones a trace and pushes some timestamps back across
// epoch boundaries, so the equivalence runs exercise the late-record
// ledger path alongside filtering and rollovers.
func lateWorkload(t *testing.T, n int) ([]stream.Record, []stream.Record) {
	t.Helper()
	recs, _ := testWorkload(t, n)
	chaotic := make([]stream.Record, len(recs))
	copy(chaotic, recs)
	for i := 0; i < len(chaotic); i++ {
		if i%101 == 42 && chaotic[i].Time >= 25 {
			chaotic[i].Time -= 25 // epochLen is 10: a guaranteed regression
		}
	}
	return recs, chaotic
}

// feedColumnBatches drives an engine through ProcessColumnBatch with
// randomly sized batches (1 .. 2*ColumnBatchLen), so epoch rollovers and
// late records land at arbitrary positions inside batches. It stops at
// stopAt records when stopAt > 0 (a mid-stream crash) and returns how
// many records were fed.
func feedColumnBatches(t *testing.T, e *Engine, recs []stream.Record, rng *rand.Rand, stopAt int) int {
	t.Helper()
	var cb stream.ColumnBatch
	pos := 0
	for pos < len(recs) {
		if stopAt > 0 && pos >= stopAt {
			break
		}
		n := 1 + rng.Intn(2*stream.ColumnBatchLen)
		if rest := len(recs) - pos; n > rest {
			n = rest
		}
		cb.Reset(len(recs[pos].Attrs))
		for i := 0; i < n; i++ {
			cb.Append(recs[pos+i].Attrs, recs[pos+i].Time)
		}
		if err := e.ProcessColumnBatch(&cb); err != nil {
			t.Fatal(err)
		}
		pos += n
	}
	return pos
}

// assertEnginesAgree compares every externally observable outcome of two
// finished runs over the same stream.
func assertEnginesAgree(t *testing.T, label string, got, want *Engine) {
	t.Helper()
	if !hfta.Equal(got.AllResults(), want.AllResults()) {
		t.Errorf("%s: results diverge", label)
	}
	if g, w := got.Stats().Degradation, want.Stats().Degradation; g != w {
		t.Errorf("%s: cumulative ledger %+v; want %+v", label, g, w)
	}
	if g, w := got.Consumed(), want.Consumed(); g != w {
		t.Errorf("%s: consumed %d records; want %d", label, g, w)
	}
	if g, w := got.Ops(), want.Ops(); g != w {
		t.Errorf("%s: ops %+v; want %+v", label, g, w)
	}
	ge, we := got.EpochDegradations(), want.EpochDegradations()
	if len(ge) != len(we) {
		t.Errorf("%s: %d closed epochs; want %d", label, len(ge), len(we))
	} else {
		for i := range ge {
			if ge[i] != we[i] {
				t.Errorf("%s: epoch %d ledger %+v; want %+v", label, ge[i].Epoch, ge[i], we[i])
			}
		}
	}
}

// TestColumnBatchMatchesScalarWithWhere: the vectorized admission path —
// compiled WHERE into a selection bitmap, selection-aware routing and
// probing, mid-batch epoch splits — produces record-for-record identical
// outcomes to the scalar Process loop, on a stream that also carries
// late records, for 1 and 4 shards and under every kernel selection.
func TestColumnBatchMatchesScalarWithWhere(t *testing.T) {
	defer hashtab.SetSIMD(hashtab.SIMDEnabled())
	_, chaotic := lateWorkload(t, 30000)
	groups, err := EstimateGroups(chaotic, filterQueries)
	if err != nil {
		t.Fatal(err)
	}
	for _, simd := range filterKernels() {
		hashtab.SetSIMD(simd)
		for _, shards := range []int{0, 4} {
			name := fmt.Sprintf("kernel=%s/shards=%d", hashtab.KernelName(), shards)
			t.Run(name, func(t *testing.T) {
				opts := Options{M: 8000, Seed: 3, Shards: shards}
				scalar, err := New(filterSQL, groups, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range chaotic {
					if err := scalar.Process(r); err != nil {
						t.Fatal(err)
					}
				}
				if err := scalar.Finish(); err != nil {
					t.Fatal(err)
				}

				columnar, err := New(filterSQL, groups, opts)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(9000 + shards)))
				feedColumnBatches(t, columnar, chaotic, rng, 0)
				if err := columnar.Finish(); err != nil {
					t.Fatal(err)
				}

				assertEnginesAgree(t, name, columnar, scalar)
				if shards > 1 {
					gs, ws := columnar.ShardDegradations(), scalar.ShardDegradations()
					for i := range ws {
						if gs[i] != ws[i] {
							t.Errorf("shard %d ledger %+v; want %+v", i, gs[i], ws[i])
						}
					}
					gp, wp := columnar.ShardPositions(), scalar.ShardPositions()
					for i := range wp {
						if gp[i] != wp[i] {
							t.Errorf("shard %d routed %d records; want %d", i, gp[i], wp[i])
						}
					}
				}
			})
		}
	}
}

// TestColumnarRunShardedWhereMatchesOracle: Run over a columnar source
// takes the vectorized path end to end; with a non-empty WHERE every
// shard count must agree with the per-record single engine and with the
// reference oracle over the interpreted-filtered records.
func TestColumnarRunShardedWhereMatchesOracle(t *testing.T) {
	defer hashtab.SetSIMD(hashtab.SIMDEnabled())
	recs, _ := testWorkload(t, 30000)
	filtered := applyWhere(t, filterSQL[0], recs)
	oracle := hfta.Reference(filtered, filterQueries, lfta.CountStar, 10)
	groups, err := EstimateGroups(recs, filterQueries)
	if err != nil {
		t.Fatal(err)
	}

	scalar, err := New(filterSQL, groups, Options{M: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := scalar.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := scalar.Finish(); err != nil {
		t.Fatal(err)
	}
	if !hfta.Equal(scalar.AllResults(), oracle) {
		t.Fatal("scalar filtered engine differs from the oracle; equivalence baseline is broken")
	}

	for _, simd := range filterKernels() {
		hashtab.SetSIMD(simd)
		for _, shards := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("kernel=%s/shards=%d", hashtab.KernelName(), shards), func(t *testing.T) {
				e, err := New(filterSQL, groups, Options{M: 8000, Seed: 3, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				if err := e.Run(stream.NewSliceSource(recs)); err != nil {
					t.Fatal(err)
				}
				if !hfta.Equal(e.AllResults(), oracle) {
					t.Error("columnar run differs from the oracle")
				}
				if got := e.Consumed(); got != uint64(len(recs)) {
					t.Errorf("consumed %d records; want %d (filtered lanes count toward position)", got, len(recs))
				}
				d := e.Stats().Degradation
				if d.Processed != uint64(len(filtered)) || d.Offered != uint64(len(filtered)) {
					t.Errorf("ledger %+v; want Offered = Processed = %d survivors", d, len(filtered))
				}
				if e.Ops().Records != uint64(len(filtered)) {
					t.Errorf("runtime saw %d records; want %d after filter", e.Ops().Records, len(filtered))
				}
			})
		}
	}
}

// TestInterpretedFilterMatchesCompiled: Options.InterpretedFilter forces
// the per-record DNF walk (the measurement baseline); its results and
// ledgers must match the compiled columnar path exactly.
func TestInterpretedFilterMatchesCompiled(t *testing.T) {
	defer hashtab.SetSIMD(hashtab.SIMDEnabled())
	_, chaotic := lateWorkload(t, 20000)
	groups, err := EstimateGroups(chaotic, filterQueries)
	if err != nil {
		t.Fatal(err)
	}
	interp, err := New(filterSQL, groups, Options{M: 8000, Seed: 3, InterpretedFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if interp.filter != nil || !interp.interp {
		t.Fatal("InterpretedFilter engine compiled its WHERE anyway")
	}
	if err := interp.Run(stream.NewSliceSource(chaotic)); err != nil {
		t.Fatal(err)
	}
	for _, simd := range filterKernels() {
		hashtab.SetSIMD(simd)
		t.Run("kernel="+hashtab.KernelName(), func(t *testing.T) {
			compiled, err := New(filterSQL, groups, Options{M: 8000, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if compiled.filter == nil || compiled.interp {
				t.Fatal("default engine did not compile its WHERE")
			}
			if err := compiled.Run(stream.NewSliceSource(chaotic)); err != nil {
				t.Fatal(err)
			}
			assertEnginesAgree(t, "compiled vs interpreted", compiled, interp)
		})
	}
}

// TestColumnarWhereCheckpointResume: a checkpoint written at a mid-batch
// epoch rollover records the stream position strictly before the rolling
// record with filtered lanes included — so a crash during columnar
// ingest resumes to exactly the uninterrupted run's emissions.
func TestColumnarWhereCheckpointResume(t *testing.T) {
	recs, _ := testWorkload(t, 30000)
	groups, err := EstimateGroups(recs, filterQueries)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			mkOpts := func() Options { return Options{M: 8000, Seed: 3, Shards: shards} }

			wantEmit := emissionMap{}
			ropts := mkOpts()
			ropts.OnResults = collectEmissions(t, wantEmit)
			ref, err := New(filterSQL, groups, ropts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Run(stream.NewSliceSource(recs)); err != nil {
				t.Fatal(err)
			}

			ckpt := filepath.Join(t.TempDir(), "columnar.ckpt")
			copts := mkOpts()
			copts.CheckpointPath = ckpt
			crashEmit := emissionMap{}
			copts.OnResults = collectEmissions(t, crashEmit)
			e1, err := New(filterSQL, groups, copts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(77))
			fed := feedColumnBatches(t, e1, recs, rng, 17000)
			// No Finish: the process is gone mid-stream.

			resumeEmit := emissionMap{}
			popts := mkOpts()
			popts.OnResults = collectEmissions(t, resumeEmit)
			e2, err := New(filterSQL, groups, popts)
			if err != nil {
				t.Fatal(err)
			}
			consumed, err := e2.RestoreCheckpointFile(ckpt)
			if err != nil {
				t.Fatal(err)
			}
			if consumed == 0 || consumed > uint64(fed) {
				t.Fatalf("restored position %d out of range (0, %d]", consumed, fed)
			}
			if err := e2.Run(stream.NewSkipSource(stream.NewSliceSource(recs), consumed)); err != nil {
				t.Fatal(err)
			}

			got := emissionMap{}
			for k, v := range crashEmit {
				got[k] = v
			}
			for k, v := range resumeEmit {
				if prev, dup := got[k]; dup && prev != v {
					t.Errorf("epoch %d of %v emitted differently by crashed and resumed runs", k.epoch, k.rel)
				}
				got[k] = v
			}
			if len(got) != len(wantEmit) {
				t.Fatalf("crash+resume emitted %d (query, epoch) results; uninterrupted run emitted %d",
					len(got), len(wantEmit))
			}
			for k, want := range wantEmit {
				if got[k] != want {
					t.Errorf("epoch %d of %v differs from the uninterrupted run", k.epoch, k.rel)
				}
			}
			if g, w := e2.Stats().Degradation, ref.Stats().Degradation; g != w {
				t.Errorf("resumed cumulative ledger %+v; uninterrupted %+v", g, w)
			}
		})
	}
}

// TestNoWhereZeroFilterOverhead is the regression gate for satellite 4:
// an engine without a WHERE clause must carry no filter state at all —
// no compiled program, no interpreted fallback — so the admission paths
// pay nothing, and the batch path must select every lane.
func TestNoWhereZeroFilterOverhead(t *testing.T) {
	recs, groups := testWorkload(t, 2000)
	e, err := New(pairSQL, groups, Options{M: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.filter != nil || e.interp {
		t.Fatalf("no-WHERE engine carries filter state: filter=%v interp=%v", e.filter != nil, e.interp)
	}
	var cb stream.ColumnBatch
	cb.Reset(len(recs[0].Attrs))
	for i := 0; i < 100; i++ {
		cb.Append(recs[i].Attrs, recs[i].Time)
	}
	if err := e.ProcessColumnBatch(&cb); err != nil {
		t.Fatal(err)
	}
	live := 0
	for i := 0; i < 100; i++ {
		if cb.Sel[i>>6]&(1<<(uint(i)&63)) != 0 {
			live++
		}
	}
	if live != 100 {
		t.Fatalf("no-WHERE batch selected %d of 100 lanes; want all", live)
	}
	if d := e.Stats().Degradation; d.Offered != 100 || d.Processed != 100 {
		t.Fatalf("no-WHERE batch ledger %+v; want 100 offered and processed", d)
	}
}
