package core

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

func TestResultHandlerStreamsAndBoundsMemory(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	queries := []attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	}
	want := hfta.Reference(recs, queries, lfta.CountStar, 10)

	var streamed []hfta.Row
	handled := map[attr.Set]map[uint32]bool{}
	e, err := New(pairSQL, groups, Options{
		M:    8000,
		Seed: 3,
		OnResults: func(rel attr.Set, epoch uint32, rows []hfta.Row, deg Degradation) {
			if handled[rel] == nil {
				handled[rel] = map[uint32]bool{}
			}
			if handled[rel][epoch] {
				t.Errorf("epoch %d of %v delivered twice", epoch, rel)
			}
			handled[rel][epoch] = true
			streamed = append(streamed, rows...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	// Streamed rows cover exactly the reference (order may differ by
	// relation interleaving, so compare as multisets via sort-insensitive
	// total counting).
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d rows; reference has %d", len(streamed), len(want))
	}
	var total, wantTotal int64
	for i := range streamed {
		total += streamed[i].Aggs[0]
		wantTotal += want[i].Aggs[0]
	}
	if total != wantTotal {
		t.Errorf("streamed counts sum to %d; reference %d", total, wantTotal)
	}
	// Engine state was dropped: AllResults must be empty.
	if left := e.AllResults(); len(left) != 0 {
		t.Errorf("%d rows retained despite the result handler", len(left))
	}
	// Every query saw every epoch.
	for _, q := range queries {
		if len(handled[q]) != 5 {
			t.Errorf("query %v delivered %d epochs; want 5", q, len(handled[q]))
		}
	}
}

func TestResultHandlerWithAdaptive(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	delivered := 0
	e, err := New(pairSQL, groups, Options{
		M:    8000,
		Seed: 3,
		Adapt: AdaptOptions{
			Enabled:     true,
			EveryEpochs: 1,
		},
		OnResults: func(rel attr.Set, epoch uint32, rows []hfta.Row, deg Degradation) {
			delivered += len(rows)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	if delivered == 0 {
		t.Error("adaptive engine with handler delivered nothing")
	}
	// Group estimates were refreshed from streamed epochs: the planner's
	// counts now reflect per-epoch measurements, not the sample.
	if e.Groups()[attr.MustParseSet("AB")] <= 0 {
		t.Error("group estimates lost")
	}
}

// TestResultErrorsSurfaced: a failure while emitting one query's epoch is
// counted, does not abort the other queries' deliveries, and the first
// error reaches the caller through Finish instead of being swallowed.
func TestResultErrorsSurfaced(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	delivered := map[attr.Set]int{}
	e, err := New(pairSQL, groups, Options{
		M:    8000,
		Seed: 3,
		OnResults: func(rel attr.Set, epoch uint32, rows []hfta.Row, deg Degradation) {
			delivered[rel]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage one query's spec lookup so its Results call fails on every
	// epoch, simulating a downstream fault in the emission path.
	broken := attr.MustParseSet("BC")
	delete(e.specByRel, broken)

	for _, r := range recs {
		if err := e.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err == nil {
		t.Fatal("Finish swallowed the result errors")
	}
	st := e.Stats()
	if st.ResultErrors != 5 {
		t.Errorf("ResultErrors = %d; want 5 (one per epoch)", st.ResultErrors)
	}
	// The other queries still saw all five epochs.
	for _, q := range []string{"AB", "BD", "CD"} {
		if rel := attr.MustParseSet(q); delivered[rel] != 5 {
			t.Errorf("query %v delivered %d epochs; want 5", rel, delivered[rel])
		}
	}
	if delivered[broken] != 0 {
		t.Errorf("broken query delivered %d epochs; want 0", delivered[broken])
	}
}

func TestDiagnostics(t *testing.T) {
	recs, groups := testWorkload(t, 20000)
	e, err := New(pairSQL, groups, Options{M: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[:10000] {
		if err := e.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	d, err := e.Diagnostics()
	if err != nil {
		t.Fatal(err)
	}
	diags := d.Tables
	if len(diags) != len(e.Plan().Config.Rels) {
		t.Fatalf("diagnostics cover %d of %d tables", len(diags), len(e.Plan().Config.Rels))
	}
	if d.Total.Offered != 10000 || d.Total.Processed != 10000 {
		t.Errorf("degradation totals = %+v; want 10000 offered and processed", d.Total)
	}
	sawRaw, sawQuery := false, false
	for _, d := range diags {
		if d.Buckets < 1 || d.Groups <= 0 {
			t.Errorf("%v: buckets %d, groups %v", d.Rel, d.Buckets, d.Groups)
		}
		if d.ModeledRate < 0 || d.ModeledRate > 1 || d.MeasuredRate < 0 || d.MeasuredRate > 1 {
			t.Errorf("%v: rates %v / %v", d.Rel, d.ModeledRate, d.MeasuredRate)
		}
		if d.IsRaw {
			sawRaw = true
			if d.Probes == 0 {
				t.Errorf("raw table %v saw no probes", d.Rel)
			}
		}
		if d.IsQuery {
			sawQuery = true
		}
	}
	if !sawRaw || !sawQuery {
		t.Error("diagnostics missing raw or query tables")
	}
}
