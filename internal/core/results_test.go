package core

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

func TestResultHandlerStreamsAndBoundsMemory(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	queries := []attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	}
	want := hfta.Reference(recs, queries, lfta.CountStar, 10)

	var streamed []hfta.Row
	handled := map[attr.Set]map[uint32]bool{}
	e, err := New(pairSQL, groups, Options{
		M:    8000,
		Seed: 3,
		OnResults: func(rel attr.Set, epoch uint32, rows []hfta.Row) {
			if handled[rel] == nil {
				handled[rel] = map[uint32]bool{}
			}
			if handled[rel][epoch] {
				t.Errorf("epoch %d of %v delivered twice", epoch, rel)
			}
			handled[rel][epoch] = true
			streamed = append(streamed, rows...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	// Streamed rows cover exactly the reference (order may differ by
	// relation interleaving, so compare as multisets via sort-insensitive
	// total counting).
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d rows; reference has %d", len(streamed), len(want))
	}
	var total, wantTotal int64
	for i := range streamed {
		total += streamed[i].Aggs[0]
		wantTotal += want[i].Aggs[0]
	}
	if total != wantTotal {
		t.Errorf("streamed counts sum to %d; reference %d", total, wantTotal)
	}
	// Engine state was dropped: AllResults must be empty.
	if left := e.AllResults(); len(left) != 0 {
		t.Errorf("%d rows retained despite the result handler", len(left))
	}
	// Every query saw every epoch.
	for _, q := range queries {
		if len(handled[q]) != 5 {
			t.Errorf("query %v delivered %d epochs; want 5", q, len(handled[q]))
		}
	}
}

func TestResultHandlerWithAdaptive(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	delivered := 0
	e, err := New(pairSQL, groups, Options{
		M:    8000,
		Seed: 3,
		Adapt: AdaptOptions{
			Enabled:     true,
			EveryEpochs: 1,
		},
		OnResults: func(rel attr.Set, epoch uint32, rows []hfta.Row) {
			delivered += len(rows)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	if delivered == 0 {
		t.Error("adaptive engine with handler delivered nothing")
	}
	// Group estimates were refreshed from streamed epochs: the planner's
	// counts now reflect per-epoch measurements, not the sample.
	if e.Groups()[attr.MustParseSet("AB")] <= 0 {
		t.Error("group estimates lost")
	}
}

func TestDiagnostics(t *testing.T) {
	recs, groups := testWorkload(t, 20000)
	e, err := New(pairSQL, groups, Options{M: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[:10000] {
		if err := e.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	diags, err := e.Diagnostics()
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != len(e.Plan().Config.Rels) {
		t.Fatalf("diagnostics cover %d of %d tables", len(diags), len(e.Plan().Config.Rels))
	}
	sawRaw, sawQuery := false, false
	for _, d := range diags {
		if d.Buckets < 1 || d.Groups <= 0 {
			t.Errorf("%v: buckets %d, groups %v", d.Rel, d.Buckets, d.Groups)
		}
		if d.ModeledRate < 0 || d.ModeledRate > 1 || d.MeasuredRate < 0 || d.MeasuredRate > 1 {
			t.Errorf("%v: rates %v / %v", d.Rel, d.ModeledRate, d.MeasuredRate)
		}
		if d.IsRaw {
			sawRaw = true
			if d.Probes == 0 {
				t.Errorf("raw table %v saw no probes", d.Rel)
			}
		}
		if d.IsQuery {
			sawQuery = true
		}
	}
	if !sawRaw || !sawQuery {
		t.Error("diagnostics missing raw or query tables")
	}
}
