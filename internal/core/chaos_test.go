package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// The chaos suite: every injected fault — timestamp regressions,
// duplicates, bursts, sink failures, truncation, and a mid-epoch
// kill+restore — must leave the engine with exact answers over the
// records it processed and a degradation ledger in which
// Offered == Processed + Dropped + Late holds exactly.

var chaosQueries = []attr.Set{
	attr.MustParseSet("AB"), attr.MustParseSet("BC"),
	attr.MustParseSet("BD"), attr.MustParseSet("CD"),
}

// assertLedger checks the accounting identity on every closed epoch and
// on the cumulative total.
func assertLedger(t *testing.T, e *Engine, wantOffered uint64) {
	t.Helper()
	for _, d := range e.EpochDegradations() {
		if d.Offered != d.Processed+d.Dropped+d.Late {
			t.Errorf("epoch %d ledger broken: %+v", d.Epoch, d)
		}
	}
	total := e.Stats().Degradation
	if total.Offered != total.Processed+total.Dropped+total.Late {
		t.Errorf("cumulative ledger broken: %+v", total)
	}
	if total.Offered != wantOffered {
		t.Errorf("offered %d records; want %d", total.Offered, wantOffered)
	}
}

// TestChaosRegressions: an unordered stream with cross-epoch timestamp
// regressions degrades to dropping the late records — counted, with the
// on-time remainder answered exactly.
func TestChaosRegressions(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	src := stream.NewChaosSource(stream.NewSliceSource(recs), stream.ChaosOptions{
		Seed: 11, RegressEvery: 40, RegressBy: 15,
	})
	chaotic, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the engine's lateness rule to split the stream into the
	// on-time records (answered exactly) and the late ones (dropped).
	clock := stream.NewClock(10)
	var onTime []stream.Record
	late := uint64(0)
	for _, r := range chaotic {
		if _, _, isLate := clock.Observe(r.Time); isLate {
			late++
		} else {
			onTime = append(onTime, r)
		}
	}
	if late == 0 {
		t.Fatal("chaos injected no cross-epoch regressions; tune RegressBy")
	}

	e, err := New(pairSQL, groups, Options{M: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(chaotic)); err != nil {
		t.Fatal(err)
	}
	assertLedger(t, e, uint64(len(chaotic)))
	d := e.Stats().Degradation
	if d.Late != late {
		t.Errorf("late = %d; replica says %d", d.Late, late)
	}
	want := hfta.Reference(onTime, chaosQueries, lfta.CountStar, 10)
	if !hfta.Equal(e.AllResults(), want) {
		t.Error("on-time records not answered exactly under regressions")
	}
}

// TestChaosDuplicates: at-least-once delivery upstream means duplicates
// are real input — the engine counts them like any record, exactly.
func TestChaosDuplicates(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	src := stream.NewChaosSource(stream.NewSliceSource(recs), stream.ChaosOptions{
		Seed: 11, DuplicateEvery: 25,
	})
	chaotic, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(chaotic)) == uint64(len(recs)) {
		t.Fatal("no duplicates injected")
	}
	e, err := New(pairSQL, groups, Options{M: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(chaotic)); err != nil {
		t.Fatal(err)
	}
	assertLedger(t, e, uint64(len(chaotic)))
	if d := e.Stats().Degradation; d.Processed != uint64(len(chaotic)) {
		t.Errorf("processed %d of %d; duplicates are not overload", d.Processed, len(chaotic))
	}
	want := hfta.Reference(chaotic, chaosQueries, lfta.CountStar, 10)
	if !hfta.Equal(e.AllResults(), want) {
		t.Error("duplicated stream not answered exactly")
	}
}

// TestChaosBurstsUnderBudget: a line-rate burst flooding single time
// units forces the overload control to shed; the ledger stays exact and
// each query's per-epoch counts cover exactly the processed records.
func TestChaosBurstsUnderBudget(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	src := stream.NewChaosSource(stream.NewSliceSource(recs), stream.ChaosOptions{
		Seed: 11, BurstEvery: 100, BurstLen: 60,
	})
	chaotic, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	sums := map[epochKey]uint64{}
	e, err := New(pairSQL, groups, Options{
		M:      8000,
		Seed:   3,
		Budget: 900,
		OnResults: func(rel attr.Set, epoch uint32, rows []hfta.Row, deg Degradation) {
			for i := range rows {
				sums[epochKey{rel, epoch}] += uint64(rows[i].Aggs[0])
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(chaotic)); err != nil {
		t.Fatal(err)
	}
	assertLedger(t, e, uint64(len(chaotic)))
	if e.Stats().Degradation.Dropped == 0 {
		t.Error("bursts never exhausted the budget")
	}
	for _, d := range e.EpochDegradations() {
		for _, q := range chaosQueries {
			if got := sums[epochKey{q, d.Epoch}]; got != d.Processed {
				t.Errorf("epoch %d query %v counted %d; processed %d", d.Epoch, q, got, d.Processed)
			}
		}
	}
}

// TestChaosSinkFailures: lost LFTA→HFTA deliveries degrade the answers
// but never the arithmetic — per query, delivered mass plus lost mass
// equals the processed record count.
func TestChaosSinkFailures(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	faults := lfta.NewFaultySink(lfta.SinkFaults{FailEvery: 7})
	e, err := New(pairSQL, groups, Options{
		M:    8000,
		Seed: 3,
		WrapBatchSink: func(s lfta.BatchSink) lfta.BatchSink {
			return faults.WrapBatch(s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	assertLedger(t, e, uint64(len(recs)))
	if faults.Failures() == 0 {
		t.Fatal("sink fault injector never fired")
	}
	delivered := map[attr.Set]int64{}
	for _, r := range e.AllResults() {
		delivered[r.Rel] += r.Aggs[0]
	}
	for _, q := range chaosQueries {
		_, lost := faults.Lost(q)
		var lostMass int64
		if len(lost) > 0 {
			lostMass = lost[0]
		}
		if got := delivered[q] + lostMass; got != int64(len(recs)) {
			t.Errorf("query %v: delivered %d + lost %d != %d processed",
				q, delivered[q], lostMass, len(recs))
		}
	}
}

// TestChaosTruncation: a mid-epoch connection loss surfaces the stream
// error from Run; the records before the cut are still fully accounted
// and answerable after a manual Finish.
func TestChaosTruncation(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	cut := errors.New("upstream died")
	src := stream.NewChaosSource(stream.NewSliceSource(recs), stream.ChaosOptions{
		TruncateAfter: 17000, TruncateErr: cut,
	})
	e, err := New(pairSQL, groups, Options{M: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(src); !errors.Is(err, cut) {
		t.Fatalf("Run returned %v; want the truncation error", err)
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	assertLedger(t, e, 17000)
	want := hfta.Reference(recs[:17000], chaosQueries, lfta.CountStar, 10)
	if !hfta.Equal(e.AllResults(), want) {
		t.Error("pre-truncation records not answered exactly")
	}
}

// renderRows serializes emitted rows order-insensitively so two runs can
// be compared byte for byte.
func renderRows(rows []hfta.Row) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = fmt.Sprintf("%v|%d|%v|%v", r.Rel, r.Epoch, r.Key, r.Aggs)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// emissionMap collects every OnResults emission keyed by (query, epoch).
type emissionMap map[epochKey]string

func collectEmissions(t *testing.T, dst emissionMap) ResultHandler {
	t.Helper()
	return func(rel attr.Set, epoch uint32, rows []hfta.Row, deg Degradation) {
		k := epochKey{rel, epoch}
		if _, dup := dst[k]; dup {
			t.Errorf("epoch %d of %v emitted twice in one run", epoch, rel)
		}
		dst[k] = renderRows(rows)
	}
}

// TestChaosKillRestore is the acceptance crash test: kill the engine
// mid-epoch, restore a fresh one from its checkpoint, replay from the
// recorded stream position — the union of emissions from the crashed and
// resumed runs must be byte-identical to an uninterrupted run, for every
// closed epoch. DropTail shedding under budget is deterministic and
// stateless, so the identity holds even while the engine is overloaded.
func TestChaosKillRestore(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	for _, budget := range []float64{0, 900} {
		t.Run(fmt.Sprintf("budget=%v", budget), func(t *testing.T) {
			opts := Options{M: 8000, Seed: 3, Budget: budget}

			// Uninterrupted reference run.
			wantEmit := emissionMap{}
			ropts := opts
			ropts.OnResults = collectEmissions(t, wantEmit)
			ref, err := New(pairSQL, groups, ropts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Run(stream.NewSliceSource(recs)); err != nil {
				t.Fatal(err)
			}

			// Crashed run: checkpoint at every boundary, die mid-epoch.
			ckpt := filepath.Join(t.TempDir(), "chaos.ckpt")
			copts := opts
			copts.CheckpointPath = ckpt
			crashEmit := emissionMap{}
			copts.OnResults = collectEmissions(t, crashEmit)
			e1, err := New(pairSQL, groups, copts)
			if err != nil {
				t.Fatal(err)
			}
			const crashAt = 17000
			for i := 0; i < crashAt; i++ {
				if err := e1.Process(recs[i]); err != nil {
					t.Fatal(err)
				}
			}
			// No Finish: the process is gone.

			// Resumed run from the checkpoint.
			resumeEmit := emissionMap{}
			popts := opts
			popts.OnResults = collectEmissions(t, resumeEmit)
			e2, err := New(pairSQL, groups, popts)
			if err != nil {
				t.Fatal(err)
			}
			consumed, err := e2.RestoreCheckpointFile(ckpt)
			if err != nil {
				t.Fatal(err)
			}
			if consumed == 0 || consumed > crashAt {
				t.Fatalf("restored position %d out of range (0, %d]", consumed, crashAt)
			}
			if err := e2.Run(stream.NewSkipSource(stream.NewSliceSource(recs), consumed)); err != nil {
				t.Fatal(err)
			}

			// Merge: the crashed run owns every epoch it emitted before
			// dying; the resumed run owns the rest. Together they must
			// reproduce the uninterrupted run exactly.
			got := emissionMap{}
			for k, v := range crashEmit {
				got[k] = v
			}
			for k, v := range resumeEmit {
				if prev, dup := got[k]; dup && prev != v {
					t.Errorf("epoch %d of %v emitted differently by crashed and resumed runs", k.epoch, k.rel)
				}
				got[k] = v
			}
			if len(got) != len(wantEmit) {
				t.Fatalf("crash+resume emitted %d (query, epoch) results; uninterrupted run emitted %d",
					len(got), len(wantEmit))
			}
			for k, want := range wantEmit {
				if got[k] != want {
					t.Errorf("epoch %d of %v differs from the uninterrupted run", k.epoch, k.rel)
				}
			}

			// The resumed ledger covers the whole stream: closed-epoch
			// history restored from the checkpoint plus the replayed tail.
			assertLedger(t, e2, uint64(len(recs)))
		})
	}
}

// assertShardLedgers checks the sharded accounting invariants: every
// per-shard ledger satisfies the identity on its own, and the per-shard
// ledgers sum exactly to the global ledger — per closed epoch and
// cumulatively.
func assertShardLedgers(t *testing.T, e *Engine) {
	t.Helper()
	epochs := e.EpochDegradations()
	shardEpochs := e.ShardEpochDegradations()
	if len(shardEpochs) != len(epochs) {
		t.Fatalf("per-shard history covers %d epochs; global history %d", len(shardEpochs), len(epochs))
	}
	for i, global := range epochs {
		var sum Degradation
		for _, sd := range shardEpochs[i] {
			if sd.Offered != sd.Processed+sd.Dropped+sd.Late {
				t.Errorf("epoch %d shard ledger broken: %+v", global.Epoch, sd)
			}
			sum.add(sd)
		}
		if sum.Offered != global.Offered || sum.Processed != global.Processed ||
			sum.Dropped != global.Dropped || sum.Late != global.Late {
			t.Errorf("epoch %d: shard ledgers sum to %+v; global ledger %+v", global.Epoch, sum, global)
		}
	}
	var cumSum Degradation
	for _, sd := range e.ShardDegradations() {
		if sd.Offered != sd.Processed+sd.Dropped+sd.Late {
			t.Errorf("cumulative shard ledger broken: %+v", sd)
		}
		cumSum.add(sd)
	}
	total := e.Stats().Degradation
	if cumSum.Offered != total.Offered || cumSum.Processed != total.Processed ||
		cumSum.Dropped != total.Dropped || cumSum.Late != total.Late {
		t.Errorf("cumulative shard ledgers sum to %+v; global %+v", cumSum, total)
	}
}

// shedPolicyFor builds a fresh policy instance per engine: stateful
// policies (UniformShed) must never be shared between runs.
func shedPolicyFor(name string) ShedPolicy {
	if name == "uniform" {
		return NewUniformShed(0.5, 99)
	}
	return DropTail{}
}

// TestChaosShardedLedger extends the chaos suite to the sharded engine:
// under injected faults (regressions, duplicates, bursts) and overload
// shedding, at every shard count, the per-shard ledgers must sum to the
// global ledger and the identity must hold on every epoch.
func TestChaosShardedLedger(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	src := stream.NewChaosSource(stream.NewSliceSource(recs), stream.ChaosOptions{
		Seed:         5,
		RegressEvery: 90, RegressBy: 15,
		DuplicateEvery: 70,
		BurstEvery:     150, BurstLen: 40,
	})
	chaotic, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"droptail", "uniform"} {
		for _, n := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", policy, n), func(t *testing.T) {
				e, err := New(pairSQL, groups, Options{
					M: 8000, Seed: 3, Shards: n,
					Budget: 600, Shed: shedPolicyFor(policy),
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := e.Run(stream.NewSliceSource(chaotic)); err != nil {
					t.Fatal(err)
				}
				assertLedger(t, e, uint64(len(chaotic)))
				d := e.Stats().Degradation
				if d.Dropped == 0 || d.Late == 0 {
					t.Errorf("chaos run saw no shedding (%d) or no late records (%d)", d.Dropped, d.Late)
				}
				if n > 1 {
					assertShardLedgers(t, e)
					var routed uint64
					for _, p := range e.ShardPositions() {
						routed += p
					}
					if routed != uint64(len(chaotic)) {
						t.Errorf("shard positions sum to %d; %d records offered", routed, len(chaotic))
					}
				}
			})
		}
	}
}

// TestChaosEverything turns every fault on at once — regressions,
// duplicates, bursts, overload shedding, sink failures, and a mid-epoch
// kill+restore — and checks the one invariant that must survive all of
// it: the degradation ledger accounts for every record exactly once.
func TestChaosEverything(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	src := stream.NewChaosSource(stream.NewSliceSource(recs), stream.ChaosOptions{
		Seed:         5,
		RegressEvery: 90, RegressBy: 15,
		DuplicateEvery: 70,
		BurstEvery:     150, BurstLen: 40,
	})
	chaotic, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	faults := lfta.NewFaultySink(lfta.SinkFaults{FailEvery: 11})
	ckpt := filepath.Join(t.TempDir(), "everything.ckpt")
	opts := Options{
		M:      8000,
		Seed:   3,
		Budget: 900,
		WrapBatchSink: func(s lfta.BatchSink) lfta.BatchSink {
			return faults.WrapBatch(s)
		},
	}
	copts := opts
	copts.CheckpointPath = ckpt

	e1, err := New(pairSQL, groups, copts)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := len(chaotic) * 2 / 3
	for i := 0; i < crashAt; i++ {
		if err := e1.Process(chaotic[i]); err != nil {
			t.Fatal(err)
		}
	}

	e2, err := New(pairSQL, groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	consumed, err := e2.RestoreCheckpointFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Run(stream.NewSkipSource(stream.NewSliceSource(chaotic), consumed)); err != nil {
		t.Fatal(err)
	}
	assertLedger(t, e2, uint64(len(chaotic)))
	d := e2.Stats().Degradation
	if d.Dropped == 0 || d.Late == 0 {
		t.Errorf("chaos run saw no shedding (%d) or no late records (%d); faults not exercised", d.Dropped, d.Late)
	}
	if faults.Failures() == 0 {
		t.Error("sink faults never fired")
	}
}
