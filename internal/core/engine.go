// Package core is the paper's system put together: a two-level
// multiple-aggregation engine that plans an LFTA configuration (which
// phantoms to instantiate, how to split the memory budget) for a set of
// group-by queries, executes the stream through it, merges exact answers
// at the HFTA, and optionally re-plans adaptively as the stream's group
// counts and clusteredness drift.
//
// The planning default is the paper's best algorithm, GCSL (greedy by
// increasing collision rates with supernode-linear space allocation),
// under the peak-load constraint of Section 3.3 when one is configured.
package core

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/choose"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/spacealloc"
	"repro/internal/stream"
)

// Planner chooses a configuration and allocation for a query workload.
type Planner func(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params) (*choose.Result, error)

// GCSLPlanner is the paper's recommended planner.
func GCSLPlanner(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params) (*choose.Result, error) {
	return choose.GCSL(g, groups, m, p)
}

// GSPlanner returns a Planner running GS with the given φ.
func GSPlanner(phi float64) Planner {
	return func(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params) (*choose.Result, error) {
		return choose.GS(g, groups, m, p, phi)
	}
}

// NoPhantomPlanner instantiates only the queries (SL allocation).
func NoPhantomPlanner(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params) (*choose.Result, error) {
	return choose.NoPhantom(g, groups, m, p, spacealloc.SL)
}

// PeakMethod selects the repair applied when the end-of-epoch cost
// exceeds the peak-load constraint.
type PeakMethod string

// Peak-load repair methods (Section 6.3.4).
const (
	PeakShrink PeakMethod = "shrink"
	PeakShift  PeakMethod = "shift"
)

// AdaptOptions control adaptive re-planning (the paper's Section 8
// direction: configuration choice is fast enough to re-run online).
type AdaptOptions struct {
	Enabled        bool
	EveryEpochs    int     // re-plan cadence in epochs (default 1)
	MinImprovement float64 // fractional modeled-cost gain required to switch (default 0.05)

	// TrackPhantoms maintains a HyperLogLog distinct counter per
	// candidate phantom, so re-planning uses measured group counts for
	// relations that have no hash table (instead of scaling stale
	// estimates by the queries' drift). Costs one hash per candidate per
	// record plus 4 KB per candidate at the default precision.
	TrackPhantoms   bool
	SketchPrecision uint8 // 0 = sketch.DefaultPrecision
}

// ResultHandler receives each query's finalized rows (HAVING applied)
// when an epoch closes. When a handler is installed the engine releases
// the epoch's HFTA state immediately afterwards, so memory stays bounded
// regardless of stream length; without one, results accumulate for later
// retrieval via Results/AllResults.
type ResultHandler func(rel attr.Set, epoch uint32, rows []hfta.Row)

// Options configure an Engine.
type Options struct {
	M       int          // LFTA memory budget in 4-byte units
	Params  cost.Params  // zero value = cost.DefaultParams()
	Planner Planner      // nil = GCSLPlanner
	Seed    uint64       // hash seeds for the LFTA tables
	PeakEu  float64      // peak-load constraint E_p on E_u; 0 = none
	PeakFix PeakMethod   // repair method when PeakEu is set
	Adapt   AdaptOptions // adaptive re-planning

	// OnResults streams finalized epochs out of the engine and bounds
	// its memory; see ResultHandler.
	OnResults ResultHandler
}

// Stats summarize an engine's execution.
type Stats struct {
	Ops         lfta.Ops
	ModeledCost float64 // per-record modeled cost of the active plan
	Replans     int     // adaptive re-plans adopted
	Epochs      int     // epochs completed
}

// Engine is the assembled two-level system.
type Engine struct {
	specs    []*query.Spec
	queries  []attr.Set
	epochLen uint32
	aggs     []lfta.AggSpec

	graph  *feedgraph.Graph
	groups feedgraph.GroupCounts
	opts   Options

	plan  *choose.Result
	rt    *lfta.Runtime
	agg   *hfta.Aggregator
	clock *stream.Clock

	totalOps lfta.Ops // ops accumulated across re-plans
	stats    Stats

	specByRel map[attr.Set]*query.Spec

	// Online group-count sketches for candidate phantoms (adaptive mode
	// with TrackPhantoms), reset every epoch.
	sketches  map[attr.Set]*sketch.HLL
	sketchBuf []uint32
}

// New builds an engine from GSQL query texts (see package query for the
// dialect). The queries must differ only in grouping attributes. groups
// supplies g_R for every relation of the feeding graph — use
// EstimateGroups to measure it from a stream sample.
func New(sqls []string, groups feedgraph.GroupCounts, opts Options) (*Engine, error) {
	specs, err := query.ParseSet(sqls)
	if err != nil {
		return nil, err
	}
	return NewFromSpecs(specs, groups, opts)
}

// NewFromSample builds an engine whose group-count estimates are measured
// from a warm-up sample of the stream — the usual deployment flow.
func NewFromSample(sqls []string, sample []stream.Record, opts Options) (*Engine, error) {
	specs, err := query.ParseSet(sqls)
	if err != nil {
		return nil, err
	}
	queries := make([]attr.Set, len(specs))
	for i, s := range specs {
		queries[i] = s.GroupBy
	}
	groups, err := EstimateGroups(sample, queries)
	if err != nil {
		return nil, err
	}
	return NewFromSpecs(specs, groups, opts)
}

// NewFromSpecs builds an engine from parsed queries.
func NewFromSpecs(specs []*query.Spec, groups feedgraph.GroupCounts, opts Options) (*Engine, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	if opts.M <= 0 {
		return nil, fmt.Errorf("core: memory budget M must be positive, got %d", opts.M)
	}
	if opts.Params.C1 == 0 && opts.Params.C2 == 0 {
		opts.Params = cost.DefaultParams()
	}
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.Planner == nil {
		opts.Planner = GCSLPlanner
	}
	if opts.PeakEu > 0 && opts.PeakFix == "" {
		opts.PeakFix = PeakShift
	}
	if opts.Adapt.Enabled {
		if opts.Adapt.EveryEpochs <= 0 {
			opts.Adapt.EveryEpochs = 1
		}
		if opts.Adapt.MinImprovement <= 0 {
			opts.Adapt.MinImprovement = 0.05
		}
	}

	e := &Engine{
		specs:     specs,
		epochLen:  specs[0].EpochLen,
		aggs:      specs[0].AggSpecs(),
		groups:    groups,
		opts:      opts,
		specByRel: make(map[attr.Set]*query.Spec, len(specs)),
	}
	for _, s := range specs {
		e.queries = append(e.queries, s.GroupBy)
		if prev, dup := e.specByRel[s.GroupBy]; dup {
			return nil, fmt.Errorf("core: queries %q and %q share grouping %v", prev, s, s.GroupBy)
		}
		e.specByRel[s.GroupBy] = s
	}
	g, err := feedgraph.New(e.queries)
	if err != nil {
		return nil, err
	}
	e.graph = g
	for _, r := range g.Relations() {
		if _, err := groups.Get(r); err != nil {
			return nil, fmt.Errorf("core: %v (run EstimateGroups over a sample first)", err)
		}
	}
	if err := e.replan(); err != nil {
		return nil, err
	}
	if opts.Adapt.Enabled && opts.Adapt.TrackPhantoms {
		prec := opts.Adapt.SketchPrecision
		if prec == 0 {
			prec = sketch.DefaultPrecision
		}
		e.sketches = make(map[attr.Set]*sketch.HLL, len(g.Phantoms))
		for _, ph := range g.Phantoms {
			h, err := sketch.New(prec)
			if err != nil {
				return nil, err
			}
			e.sketches[ph] = h
		}
	}
	e.clock = stream.NewClock(e.epochLen)
	return e, nil
}

// planCandidate runs the planner for the current group counts and applies
// the peak-load repair, without touching the running state.
func (e *Engine) planCandidate() (*choose.Result, error) {
	res, err := e.opts.Planner(e.graph, e.groups, e.opts.M, e.opts.Params)
	if err != nil {
		return nil, err
	}
	if e.opts.PeakEu > 0 {
		var fixed cost.Alloc
		switch e.opts.PeakFix {
		case PeakShift:
			fixed, err = spacealloc.Shift(res.Config, e.groups, res.Alloc, e.opts.Params, e.opts.PeakEu)
		case PeakShrink:
			fixed, err = spacealloc.Shrink(res.Config, e.groups, res.Alloc, e.opts.Params, e.opts.PeakEu)
		default:
			return nil, fmt.Errorf("core: unknown peak-load method %q", e.opts.PeakFix)
		}
		if err != nil {
			return nil, fmt.Errorf("core: peak-load repair: %v", err)
		}
		res.Alloc = fixed
		if res.Cost, err = cost.PerRecord(res.Config, e.groups, fixed, e.opts.Params); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// adopt swaps in a fresh runtime executing the plan. Must only run at
// epoch boundaries (tables empty). HFTA state survives the swap.
func (e *Engine) adopt(res *choose.Result) error {
	if e.agg == nil {
		agg, err := hfta.New(e.queries, e.aggs)
		if err != nil {
			return err
		}
		e.agg = agg
	}
	rt, err := lfta.New(res.Config, res.Alloc, e.aggs, e.opts.Seed, nil)
	if err != nil {
		return err
	}
	// Batched transfers: evictions reach the HFTA through the runtime's
	// arena-backed buffer instead of a per-eviction sink call, keeping the
	// record hot path allocation-free. FlushEpoch drains the buffer, so
	// every endEpoch read of HFTA state still sees the complete epoch.
	rt.SetBatchSink(e.agg.ConsumeBatch, 0)
	if e.rt != nil {
		ops := e.rt.Ops()
		e.totalOps.Probes += ops.Probes
		e.totalOps.Transfers += ops.Transfers
		e.totalOps.Records += ops.Records
	}
	e.plan, e.rt = res, rt
	e.stats.ModeledCost = res.Cost
	return nil
}

// replan plans and adopts unconditionally (initial setup).
func (e *Engine) replan() error {
	res, err := e.planCandidate()
	if err != nil {
		return err
	}
	return e.adopt(res)
}

// Plan exposes the active configuration, allocation and modeled cost.
func (e *Engine) Plan() *choose.Result { return e.plan }

// Graph exposes the feeding graph of the workload.
func (e *Engine) Graph() *feedgraph.Graph { return e.graph }

// Groups returns the group-count table the engine currently plans with.
func (e *Engine) Groups() feedgraph.GroupCounts { return e.groups }

// Process feeds one record. Epoch boundaries (per the queries' time
// bucket) trigger the end-of-epoch flush and, if enabled, adaptive
// re-planning.
func (e *Engine) Process(rec stream.Record) error {
	if !e.specs[0].MatchWhere(rec.Attrs) {
		return nil // filtered out before any hash-table work (the F of FTA)
	}
	epoch, rolled := e.clock.Advance(rec.Time)
	if rolled {
		if err := e.endEpoch(); err != nil {
			return err
		}
	}
	e.rt.Process(rec, epoch)
	for rel, h := range e.sketches {
		e.sketchBuf = rel.Project(rec.Attrs, e.sketchBuf)
		h.AddKey(e.sketchBuf)
	}
	return nil
}

// endEpoch flushes the LFTA, emits finalized results, and runs the
// adaptive step.
func (e *Engine) endEpoch() error {
	prevEpoch := e.rt.Epoch()
	e.rt.FlushEpoch()
	e.stats.Epochs++
	e.emitEpoch(prevEpoch)
	if !e.opts.Adapt.Enabled || e.stats.Epochs%e.opts.Adapt.EveryEpochs != 0 {
		return nil
	}
	if e.opts.OnResults == nil {
		// With a result handler the estimates were refreshed inside
		// emitEpoch, before the epoch state was dropped.
		e.refreshGroupEstimates(prevEpoch)
	}
	// Re-evaluate the current plan under the refreshed estimates so the
	// comparison is apples to apples.
	curCost, err := cost.PerRecord(e.plan.Config, e.groups, e.plan.Alloc, e.opts.Params)
	if err != nil {
		curCost = e.plan.Cost
	}
	candidate, err := e.planCandidate()
	if err != nil {
		return err
	}
	if candidate.Cost > curCost*(1-e.opts.Adapt.MinImprovement) {
		e.stats.ModeledCost = curCost
		return nil // not enough improvement: keep the current runtime
	}
	if err := e.adopt(candidate); err != nil {
		return err
	}
	e.stats.Replans++
	return nil
}

// refreshGroupEstimates folds the epoch's measured group counts (from the
// HFTA) and flow lengths (from the LFTA tables) into the planning inputs.
// Queries are measured exactly; phantom estimates scale by the mean drift
// of the queries they cover.
func (e *Engine) refreshGroupEstimates(epoch uint32) {
	drift := 0.0
	n := 0
	for _, q := range e.queries {
		measured := float64(e.agg.GroupCount(q, epoch))
		if measured <= 0 {
			continue
		}
		if old := e.groups[q]; old > 0 {
			drift += measured / old
			n++
		}
		e.groups[q] = measured
	}
	switch {
	case e.sketches != nil:
		// Measured phantom counts from the per-epoch sketches.
		for ph, h := range e.sketches {
			if est := h.Estimate(); est >= 1 {
				e.groups[ph] = est
			}
			h.Reset()
		}
		_ = clampMonotone(e.groups, e.graph)
	case n > 0:
		// No sketches: scale phantom estimates by the queries' mean drift.
		meanDrift := drift / float64(n)
		for _, ph := range e.graph.Phantoms {
			if old := e.groups[ph]; old > 0 {
				e.groups[ph] = old * meanDrift
			}
		}
		_ = clampMonotone(e.groups, e.graph)
	}
	// Flow lengths measured per raw relation feed the rate model. The
	// table counters are reset afterwards so the next measurement covers
	// one epoch, not the whole history.
	stats := e.rt.TableStats()
	flow := make(map[attr.Set]float64, len(stats))
	for rel, st := range stats {
		flow[rel] = st.AvgFlowLength()
	}
	e.rt.ResetTableStats()
	e.opts.Params.FlowLen = func(rel attr.Set) float64 {
		if l, ok := flow[rel]; ok {
			return l
		}
		return 1
	}
}

// clampMonotone repairs g_R ≤ g_S for R ⊆ S after drift scaling.
func clampMonotone(groups feedgraph.GroupCounts, g *feedgraph.Graph) error {
	rels := g.Relations()
	// Process wider relations last so they absorb the max of their subsets.
	attr.SortSets(rels)
	for i := len(rels) - 1; i >= 0; i-- {
		s := rels[i]
		for _, r := range rels {
			if r.ProperSubsetOf(s) && groups[r] > groups[s] {
				groups[s] = groups[r]
			}
		}
	}
	return groups.CheckMonotone()
}

// emitEpoch delivers one closed epoch to the result handler and drops its
// state. Adaptive group-count refreshes read the epoch's counts before
// this runs (refreshGroupEstimates is called from endEpoch after emit
// only when no handler is installed — with a handler, the counts are
// captured here first).
func (e *Engine) emitEpoch(epoch uint32) {
	if e.opts.OnResults == nil {
		return
	}
	if e.opts.Adapt.Enabled {
		// Capture measured group counts before the state is dropped.
		e.refreshGroupEstimates(epoch)
	}
	for _, q := range e.queries {
		rows, err := e.Results(q, epoch)
		if err != nil {
			continue
		}
		e.opts.OnResults(q, epoch, rows)
	}
	e.agg.Drop(epoch)
}

// Finish flushes the final epoch. Call once after the last record.
func (e *Engine) Finish() error {
	if e.clock.Started() {
		epoch := e.rt.Epoch()
		e.rt.FlushEpoch()
		e.stats.Epochs++
		e.emitEpoch(epoch)
	}
	return nil
}

// Run processes an entire source and finishes.
func (e *Engine) Run(src stream.Source) error {
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := e.Process(rec); err != nil {
			return err
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	return e.Finish()
}

// Results returns the finalized rows of one query for an epoch, with the
// query's HAVING clause applied.
func (e *Engine) Results(rel attr.Set, epoch uint32) ([]hfta.Row, error) {
	spec, ok := e.specByRel[rel]
	if !ok {
		return nil, fmt.Errorf("core: %v is not a registered query", rel)
	}
	rows := e.agg.Rows(rel, epoch)
	out := rows[:0:0]
	for _, r := range rows {
		if spec.MatchHaving(r.Aggs) {
			out = append(out, r)
		}
	}
	return out, nil
}

// AllResults returns every finalized row across queries and epochs with
// HAVING applied.
func (e *Engine) AllResults() []hfta.Row {
	var out []hfta.Row
	for _, r := range e.agg.AllRows() {
		if spec := e.specByRel[r.Rel]; spec == nil || spec.MatchHaving(r.Aggs) {
			out = append(out, r)
		}
	}
	return out
}

// Epochs lists the epochs with results for a query.
func (e *Engine) Epochs(rel attr.Set) []uint32 { return e.agg.Epochs(rel) }

// Ops returns cumulative LFTA operation counts, across re-plans.
func (e *Engine) Ops() lfta.Ops {
	ops := e.rt.Ops()
	return lfta.Ops{
		Probes:    e.totalOps.Probes + ops.Probes,
		Transfers: e.totalOps.Transfers + ops.Transfers,
		Records:   e.totalOps.Records + ops.Records,
	}
}

// Stats returns execution statistics.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Ops = e.Ops()
	return s
}

// TableDiagnostic compares one LFTA table's modeled and measured
// behaviour — the operator's view of how well the planner's assumptions
// hold on the live stream.
type TableDiagnostic struct {
	Rel          attr.Set
	IsQuery      bool
	IsRaw        bool
	Buckets      int
	Groups       float64 // planner's g_R
	ModeledRate  float64 // collision rate the plan assumed
	MeasuredRate float64 // observed since the last stats reset
	FlowLength   float64 // observed records per bucket occupancy
	Probes       uint64
}

// Diagnostics reports modeled-vs-measured statistics for every
// instantiated table of the active plan. In adaptive mode the measured
// window is the current epoch (stats reset at each refresh).
func (e *Engine) Diagnostics() ([]TableDiagnostic, error) {
	rates, err := cost.Rates(e.plan.Config, e.groups, e.plan.Alloc, e.opts.Params)
	if err != nil {
		return nil, err
	}
	stats := e.rt.TableStats()
	var out []TableDiagnostic
	for _, r := range e.plan.Config.Rels {
		st := stats[r]
		out = append(out, TableDiagnostic{
			Rel:          r,
			IsQuery:      e.plan.Config.IsQuery(r),
			IsRaw:        e.plan.Config.IsRaw(r),
			Buckets:      e.plan.Alloc[r],
			Groups:       e.groups[r],
			ModeledRate:  rates[r],
			MeasuredRate: st.CollisionRate(),
			FlowLength:   st.AvgFlowLength(),
			Probes:       st.Probes,
		})
	}
	return out, nil
}

// EstimateGroups measures g_R for every relation of the queries' feeding
// graph from a sample of records — how experiments (and deployments with
// a warm-up window) obtain the planner's inputs.
func EstimateGroups(sample []stream.Record, queries []attr.Set) (feedgraph.GroupCounts, error) {
	g, err := feedgraph.New(queries)
	if err != nil {
		return nil, err
	}
	out := feedgraph.GroupCounts{}
	for _, r := range g.Relations() {
		out[r] = float64(gen.CountGroups(sample, r))
	}
	return out, nil
}
